#!/usr/bin/env bash
# Bitrot guard: run one table bench end-to-end on a tiny input. Mirrors the
# CI "bench smoke" step; pass a build dir (default: build).
set -euo pipefail
build_dir="${1:-build}"

export QBS_BENCH_SCALE="${QBS_BENCH_SCALE:-0.01}"
export QBS_BENCH_PAIRS="${QBS_BENCH_PAIRS:-20}"
export QBS_BENCH_DATASETS="${QBS_BENCH_DATASETS:-DO,DB}"

"${build_dir}/bench/bench_table1_datasets"
# Serving-path smoke: stands up the in-process daemon on a loopback socket
# and drives it with the seeded Zipfian workload.
QBS_BENCH_THREADS="${QBS_BENCH_THREADS:-2}" "${build_dir}/bench/bench_serve"
echo "bench smoke: OK"

#!/usr/bin/env bash
# Bitrot guard: run one table bench end-to-end on a tiny input. Mirrors the
# CI "bench smoke" step; pass a build dir (default: build).
set -euo pipefail
build_dir="${1:-build}"

export QBS_BENCH_SCALE="${QBS_BENCH_SCALE:-0.01}"
export QBS_BENCH_PAIRS="${QBS_BENCH_PAIRS:-20}"
export QBS_BENCH_DATASETS="${QBS_BENCH_DATASETS:-DO,DB}"

"${build_dir}/bench/bench_table1_datasets"
echo "bench smoke: OK"

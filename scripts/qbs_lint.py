#!/usr/bin/env python3
"""qbs_lint: machine-checked project invariants (see docs/LINT.md).

Each rule encodes a structural invariant of this codebase that the compiler
alone cannot enforce:

  raw-socket        socket syscalls live only in src/server/socket.cc, so
                    every byte on the wire goes through the EINTR/timeout/
                    fault-injection discipline of the Socket classes.
  raw-mutex         std::mutex & friends live only in src/util/sync.h; all
                    other code takes the annotated wrappers, so clang
                    -Wthread-safety and the lock-rank checker see every lock.
  deprecated-query  the [[deprecated]] pair-based QueryBatch overloads may
                    only be called from their two sanctioned seams. Any new
                    call site either trips -Werror=deprecated-declarations
                    in CI or adds a suppression pragma — which this rule
                    catches.
  unseeded-rng      no rand()/srand()/default-constructed engines in src/:
                    every random sequence must take an explicit seed so
                    failures replay (QBS_DYNAMIC_SEEDS et al.).
  no-cout           library code reports through return values and
                    std::cerr; std::cout belongs to tools/ and bench/
                    (machine-readable output contracts).

Allowlists (scripts/lint_allowlists/<rule>.txt, one repo-relative path per
line, '#' comments) are a ratchet: a violation in a listed file passes, but
a listed file with NO violation fails the run, so entries can only
disappear. raw-socket and raw-mutex ship with empty allowlists — keep them
that way.

Matching is regex over comment-stripped lines. When libclang is importable
it refines raw-mutex/raw-socket hits by discarding matches that fall inside
string literals; without it the regexes alone decide (they are written to
not need the refinement on today's tree).

Usage: qbs_lint.py [--root DIR] [--verbose]
Exit codes: 0 clean, 1 violations or stale allowlist entries, 2 usage.
"""

import argparse
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".cc", ".h"}

# Strip // and /* ... */ comments and string literals enough for line-regex
# matching; multi-line block comments are tracked by the scanner.
LINE_COMMENT_RE = re.compile(r"//.*$")
BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/")


class Rule:
    def __init__(
        self,
        name,
        pattern,
        scopes,
        exempt=(),
        description="",
        match_in_strings=False,
    ):
        self.name = name
        self.pattern = re.compile(pattern)
        self.scopes = scopes  # repo-relative dir prefixes to scan
        self.exempt = set(exempt)  # repo-relative files never scanned
        self.description = description
        # Pragmas carry their payload inside a string literal, so rules
        # targeting them must match before string stripping.
        self.match_in_strings = match_in_strings


RULES = [
    Rule(
        "raw-socket",
        r"::(socket|bind|listen|accept|connect|setsockopt|getsockname"
        r"|getpeername|send|recv|sendto|recvfrom|sendmsg|recvmsg"
        r"|shutdown|close|poll|select|read|write|readv|writev)\s*\(",
        scopes=("src",),
        exempt=("src/server/socket.cc",),
        description="socket syscalls outside src/server/socket.cc",
    ),
    Rule(
        "raw-mutex",
        r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
        r"|shared_mutex|shared_timed_mutex|condition_variable"
        r"|condition_variable_any|lock_guard|unique_lock|shared_lock"
        r"|scoped_lock)\b"
        r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>",
        scopes=("src",),
        exempt=("src/util/sync.h",),
        description="raw std synchronization outside src/util/sync.h",
    ),
    Rule(
        "deprecated-query",
        r"Wdeprecated-declarations",
        scopes=("src", "tests", "bench", "tools", "examples"),
        description="suppression of the deprecated pair-based QueryBatch "
        "overloads outside the sanctioned seams",
        match_in_strings=True,
    ),
    Rule(
        "unseeded-rng",
        r"\bsrand\s*\(|(?<![\w:])rand\s*\(\s*\)"
        r"|\bstd::(mt19937(?:_64)?|minstd_rand0?|default_random_engine)"
        r"\s+\w+\s*;"
        r"|\bstd::random_device\b",
        scopes=("src",),
        description="unseeded randomness in library code",
    ),
    Rule(
        "no-cout",
        r"\bstd::cout\b",
        scopes=("src",),
        description="std::cout in library code",
    ),
]


def load_allowlist(root, rule):
    path = root / "scripts" / "lint_allowlists" / f"{rule.name}.txt"
    entries = set()
    if path.exists():
        for line in path.read_text().splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def try_libclang():
    try:
        import clang.cindex  # noqa: F401

        return clang.cindex
    except ImportError:
        return None


def strip_strings(line):
    # Good enough for these rules: no project string legitimately contains a
    # raw syscall-with-paren or std:: sync type.
    return re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)


def scan_file(path, text, rules):
    violations = []  # (rule, line_number, line_text)
    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        line = BLOCK_COMMENT_RE.sub("", line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block_comment = True
        line = LINE_COMMENT_RE.sub("", line)
        stripped = strip_strings(line)
        if not line.strip():
            continue
        for rule in rules:
            target = line if rule.match_in_strings else stripped
            if rule.pattern.search(target):
                violations.append((rule, lineno, raw.strip()))
    return violations


def run_lint(root, verbose=False, out=sys.stdout):
    """Lints the tree under `root`. Returns the number of failures."""
    root = pathlib.Path(root)
    cindex = try_libclang()
    if verbose and cindex is None:
        print("libclang unavailable: regex-only mode", file=out)

    failures = 0
    allowlists = {rule.name: load_allowlist(root, rule) for rule in RULES}
    # Which allowlisted files actually violated — for the stale-entry check.
    used_allowlist = {rule.name: set() for rule in RULES}

    for rule in RULES:
        files = []
        for scope in rule.scopes:
            scope_dir = root / scope
            if not scope_dir.is_dir():
                continue
            files.extend(
                p
                for p in sorted(scope_dir.rglob("*"))
                if p.suffix in SOURCE_SUFFIXES
            )
        for path in files:
            rel = path.relative_to(root).as_posix()
            if rel in rule.exempt:
                continue
            hits = scan_file(path, path.read_text(errors="replace"), [rule])
            for _, lineno, line in hits:
                if rel in allowlists[rule.name]:
                    used_allowlist[rule.name].add(rel)
                    if verbose:
                        print(
                            f"allowed  [{rule.name}] {rel}:{lineno}: {line}",
                            file=out,
                        )
                    continue
                failures += 1
                print(f"FAIL [{rule.name}] {rel}:{lineno}: {line}", file=out)

    # Ratchet: every allowlist entry must still be needed.
    for rule in RULES:
        for stale in sorted(allowlists[rule.name] - used_allowlist[rule.name]):
            failures += 1
            print(
                f"FAIL [{rule.name}] stale allowlist entry '{stale}' "
                "(no violation found — delete it from "
                f"scripts/lint_allowlists/{rule.name}.txt)",
                file=out,
            )

    if failures == 0:
        print(f"qbs_lint: clean ({len(RULES)} rules)", file=out)
    else:
        print(f"qbs_lint: {failures} failure(s) — see docs/LINT.md", file=out)
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root (default: this script's grandparent)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()
    return 1 if run_lint(args.root, verbose=args.verbose) else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Runs clang-tidy (.clang-tidy config) over EVERY src/ translation unit and
# gates the findings against the committed .clang-tidy-baseline via
# scripts/tidy_baseline.py: a finding absent from the baseline fails, and a
# baseline entry that no longer fires fails too (the baseline only ratchets
# down). This replaced the old changed-files mode — diffing against a base
# ref let debt land whenever a header change surfaced findings in TUs the
# diff didn't touch.
#
# Usage: scripts/run_clang_tidy.sh <build-dir> [--update-baseline]
#
# Run from the repository root against a build dir configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON. CLANG_TIDY overrides the binary
# (CI pins clang-tidy-18 — see docs/LINT.md); TIDY_JOBS the parallelism.
set -euo pipefail

BUILD_DIR=${1:-build}
MODE=check
if [ "${2:-}" = "--update-baseline" ]; then
  MODE=update
fi
TIDY=${CLANG_TIDY:-clang-tidy}
JOBS=${TIDY_JOBS:-$(nproc)}

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

mapfile -t files < <(find src -name '*.cc' | sort)
echo "run_clang_tidy: linting all ${#files[@]} src/ TUs ($MODE mode)"
"$TIDY" --version

# One log per TU so parallel runs can't tear diagnostic lines mid-write
# (tidy_baseline.py would silently miss a torn finding). clang-tidy's exit
# code is ignored on purpose: the baseline comparison is the gate.
logdir=$(mktemp -d)
trap 'rm -rf "$logdir"' EXIT
printf '%s\n' "${files[@]}" \
  | xargs -P "$JOBS" -I{} sh -c \
      'out="$1/$(printf %s {} | tr / _).log"; \
       "$2" -p "$3" {} > "$out" 2>&1 || true' \
      _ "$logdir" "$TIDY" "$BUILD_DIR"

cat "$logdir"/*.log \
  | python3 scripts/tidy_baseline.py "$MODE" --baseline .clang-tidy-baseline

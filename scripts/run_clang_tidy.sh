#!/usr/bin/env bash
# Runs clang-tidy (.clang-tidy config) over src/ translation units against
# a compile_commands.json, warnings-as-errors.
#
# Usage: scripts/run_clang_tidy.sh <build-dir> [base-ref]
#
# With a resolvable base-ref, only the files changed since the merge-base
# are linted (a changed header pulls in its sibling .cc); without one,
# every src/ TU is linted. CI passes the PR base (or the pre-push SHA), so
# the warnings-as-errors gate applies exactly to the changed files.
set -euo pipefail

BUILD_DIR=${1:-build}
BASE_REF=${2:-}
TIDY=${CLANG_TIDY:-clang-tidy}

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

declare -a files=()
if [ -n "$BASE_REF" ] && git rev-parse -q --verify "$BASE_REF^{commit}" \
     > /dev/null 2>&1; then
  base=$(git merge-base "$BASE_REF" HEAD)
  changed=$(git diff --name-only --diff-filter=d "$base" HEAD \
              | grep -E '^src/.*\.(cc|h)$' || true)
  declare -A seen=()
  for f in $changed; do
    if [[ "$f" == *.h ]]; then
      # Lint the header through its sibling TU when one exists; the
      # HeaderFilterRegex surfaces header diagnostics either way.
      f="${f%.h}.cc"
      [ -f "$f" ] || continue
    fi
    if [ -z "${seen[$f]:-}" ]; then
      seen[$f]=1
      files+=("$f")
    fi
  done
  if [ ${#files[@]} -eq 0 ]; then
    echo "run_clang_tidy: no src/ files changed since $base; nothing to lint"
    exit 0
  fi
  echo "run_clang_tidy: linting ${#files[@]} changed file(s) since $base"
else
  while IFS= read -r f; do files+=("$f"); done \
    < <(find src -name '*.cc' | sort)
  echo "run_clang_tidy: no base ref; linting all ${#files[@]} src/ TUs"
fi

"$TIDY" --version
"$TIDY" -p "$BUILD_DIR" --warnings-as-errors='*' "${files[@]}"

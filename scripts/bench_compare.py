#!/usr/bin/env python3
"""Compare two bench CSV dumps and fail on performance regressions.

The bench binaries echo every table row as `csv,...` preceded by a
`csvh,...` header row (see bench/bench_common.cc). This script pairs rows
between a baseline dump and a current dump by (header, first cell) and
compares:

  * every column whose name contains "(ms)" — query latency; and
  * every column whose name contains "(s)"  — construction time (the
    workload-driven gate: an index that got slower to build regresses the
    offline phase even when queries held).

A regression is a current value exceeding baseline * threshold with an
absolute increase of at least the per-unit noise floor (--min-ms /
--min-s); micro-benchmark noise must not fail CI.

Cells that cannot be compared meaningfully are skipped with a warning
instead of gating: a zero (or negative) baseline has no ratio — the
formatter truncates sub-resolution timings to 0.00, and flagging
"0.00 -> anything" as an N-fold regression would fail CI on timer
granularity — and non-finite values (inf/nan from a crashed or division-
degenerate bench cell) are equally meaningless to gate on.

A missing or unreadable *baseline* is not an error: the first run on a
fresh branch has no artifact to compare against, so the script warns and
passes (exit 0). A missing *current* dump is still an error — the bench
just ran, its output must exist.

Usage:
  bench_compare.py baseline.csv current.csv [--threshold 1.25]
                   [--min-ms 0.002] [--min-s 0.05]

Exit codes: 0 = ok (or nothing comparable / no baseline), 1 = regression,
2 = bad current input.
"""

import argparse
import math
import sys


def parse_tables(path):
    """Returns {(header_tuple, row_key): {column: value_str}}."""
    rows = {}
    header = None
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line.startswith("csvh,"):
                header = tuple(line.split(",")[1:])
            elif line.startswith("csv,"):
                cells = line.split(",")[1:]
                if header is None or not cells:
                    continue
                row = dict(zip(header, cells))
                rows[(header, cells[0])] = row
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when current > baseline * threshold")
    ap.add_argument("--min-ms", type=float, default=0.002,
                    help="ignore absolute (ms) increases below this (timer "
                         "noise); QbS per-query averages are microsecond-"
                         "scale, so keep this well under them")
    ap.add_argument("--min-s", type=float, default=0.05,
                    help="ignore absolute construction-time (s) increases "
                         "below this (CI machines jitter small builds)")
    args = ap.parse_args()

    try:
        base = parse_tables(args.baseline)
    except OSError as e:
        print(f"bench_compare: no baseline ({e}); "
              "fresh branch or expired artifact — passing", file=sys.stderr)
        return 0
    try:
        cur = parse_tables(args.current)
    except OSError as e:
        print(f"bench_compare: cannot read current dump: {e}",
              file=sys.stderr)
        return 2

    def gate(col):
        """(kind, noise_floor) for a gated column, else None."""
        if "(ms)" in col:
            return "query", args.min_ms
        if "(s)" in col:
            return "construction", args.min_s
        return None

    compared = 0
    regressions = []
    for key, cur_row in sorted(cur.items()):
        base_row = base.get(key)
        if base_row is None:
            continue  # new dataset/table: nothing to compare against
        for col, cur_val in cur_row.items():
            gated = gate(col)
            if gated is None:
                continue
            kind, floor = gated
            base_val = base_row.get(col)
            if base_val is None:
                continue
            try:
                b = float(base_val)
                c = float(cur_val)
            except ValueError:
                continue  # DNF / OOE / "-" markers
            if not (math.isfinite(b) and math.isfinite(c)) or b <= 0 or c < 0:
                print(f"bench_compare: skipping uncomparable {kind} cell "
                      f"{key[1]}/{col}: baseline={base_val} "
                      f"current={cur_val}", file=sys.stderr)
                continue
            compared += 1
            status = "ok"
            if c > b * args.threshold and c - b >= floor:
                status = "REGRESSION"
                regressions.append((key[1], col, kind, b, c))
            ratio = c / b
            print(f"{key[1]:>12} {col:>12}: {b:9.4f} -> {c:9.4f} "
                  f"({ratio:5.2f}x) {status}")

    if compared == 0:
        print("bench_compare: no comparable cells found; passing")
        return 0
    if regressions:
        print(f"\nbench_compare: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.2f}x:")
        for name, col, kind, b, c in regressions:
            print(f"  [{kind}] {name} {col}: {b:.4f} -> {c:.4f}")
        return 1
    print(f"\nbench_compare: {compared} cells compared, no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare two bench CSV dumps and fail on query-latency regressions.

The bench binaries echo every table row as `csv,...` preceded by a
`csvh,...` header row (see bench/bench_common.cc). This script pairs rows
between a baseline dump and a current dump by (header, first cell) and
compares every column whose name contains "(ms)". A regression is a
current value exceeding baseline * threshold with an absolute increase of
at least --min-ms (micro-benchmark noise floor).

Usage:
  bench_compare.py baseline.csv current.csv [--threshold 1.25] [--min-ms 0.01]

Exit codes: 0 = ok (or nothing comparable), 1 = regression, 2 = bad input.
"""

import argparse
import sys


def parse_tables(path):
    """Returns {(header_tuple, row_key): {column: value_str}}."""
    rows = {}
    header = None
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line.startswith("csvh,"):
                header = tuple(line.split(",")[1:])
            elif line.startswith("csv,"):
                cells = line.split(",")[1:]
                if header is None or not cells:
                    continue
                row = dict(zip(header, cells))
                rows[(header, cells[0])] = row
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when current > baseline * threshold")
    ap.add_argument("--min-ms", type=float, default=0.002,
                    help="ignore absolute increases below this (timer "
                         "noise); QbS per-query averages are microsecond-"
                         "scale, so keep this well under them")
    args = ap.parse_args()

    try:
        base = parse_tables(args.baseline)
        cur = parse_tables(args.current)
    except OSError as e:
        print(f"bench_compare: cannot read input: {e}", file=sys.stderr)
        return 2

    compared = 0
    regressions = []
    for key, cur_row in sorted(cur.items()):
        base_row = base.get(key)
        if base_row is None:
            continue  # new dataset/table: nothing to compare against
        for col, cur_val in cur_row.items():
            if "(ms)" not in col:
                continue
            base_val = base_row.get(col)
            if base_val is None:
                continue
            try:
                b = float(base_val)
                c = float(cur_val)
            except ValueError:
                continue  # DNF / OOE / "-" markers
            compared += 1
            status = "ok"
            if c > b * args.threshold and c - b >= args.min_ms:
                status = "REGRESSION"
                regressions.append((key[1], col, b, c))
            ratio = c / b if b > 0 else float("inf")
            print(f"{key[1]:>12} {col:>12}: {b:9.4f} -> {c:9.4f} ms "
                  f"({ratio:5.2f}x) {status}")

    if compared == 0:
        print("bench_compare: no comparable (ms) cells found; passing")
        return 0
    if regressions:
        print(f"\nbench_compare: {len(regressions)} query-latency "
              f"regression(s) beyond {args.threshold:.2f}x:")
        for name, col, b, c in regressions:
            print(f"  {name} {col}: {b:.4f} -> {c:.4f} ms")
        return 1
    print(f"\nbench_compare: {compared} cells compared, no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gates clang-tidy output against the committed .clang-tidy-baseline.

Findings are normalized to (repo-relative file, check) pairs — line numbers
deliberately excluded, so reflowing code doesn't churn the baseline while a
NEW check firing in a file is always a failure. The baseline is a ratchet
in both directions:

  * a pair in the output but not the baseline  -> fail (new debt)
  * a pair in the baseline but not the output  -> fail (stale entry:
    the debt was paid, delete the line so it can't silently return)

The baseline is empty today; `update` mode exists for the day a
clang-tidy upgrade lands findings that can't be fixed in the same PR.

Usage:
  clang-tidy ... | tidy_baseline.py check  --baseline .clang-tidy-baseline
  clang-tidy ... | tidy_baseline.py update --baseline .clang-tidy-baseline

Exit codes: 0 clean, 1 new/stale findings (check mode), 2 usage.
"""

import argparse
import pathlib
import re
import sys

# "path:line:col: warning: message [check-a,check-b]"
DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):\d+:\d+:\s+(?:warning|error):\s.*"
    r"\[(?P<checks>[\w.,-]+)\]\s*$"
)


def parse_findings(lines, root):
    pairs = set()
    for line in lines:
        m = DIAG_RE.match(line.rstrip("\n"))
        if m is None:
            continue
        path = pathlib.Path(m.group("path"))
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            continue  # system/third-party header: not our debt
        for check in m.group("checks").split(","):
            check = check.strip()
            # clang-diagnostic-* are compiler warnings, owned by QBS_WERROR
            # builds rather than the tidy baseline.
            if check and not check.startswith("clang-diagnostic"):
                pairs.add((rel, check))
    return pairs


def read_baseline(path):
    pairs = set()
    if path.exists():
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            file_part, _, check = line.partition("\t")
            if check:
                pairs.add((file_part, check))
    return pairs


def write_baseline(path, pairs):
    lines = [
        "# clang-tidy debt baseline: one 'file<TAB>check' pair per line.",
        "# Managed by scripts/tidy_baseline.py (scripts/run_clang_tidy.sh",
        "# --update-baseline); entries may only be deleted by fixing the",
        "# finding — stale entries fail the gate.",
    ]
    lines += [f"{f}\t{c}" for f, c in sorted(pairs)]
    path.write_text("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=["check", "update"])
    parser.add_argument("--baseline", required=True, type=pathlib.Path)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
    )
    args = parser.parse_args()

    found = parse_findings(sys.stdin, args.root)

    if args.mode == "update":
        write_baseline(args.baseline, found)
        print(f"tidy_baseline: wrote {len(found)} pair(s) to {args.baseline}")
        return 0

    baseline = read_baseline(args.baseline)
    new = sorted(found - baseline)
    stale = sorted(baseline - found)
    for file_part, check in new:
        print(f"NEW  {file_part}: [{check}] not in baseline")
    for file_part, check in stale:
        print(
            f"STALE  {file_part}: [{check}] no longer fires — "
            f"delete its line from {args.baseline}"
        )
    if new or stale:
        print(
            f"tidy_baseline: {len(new)} new, {len(stale)} stale "
            f"(baseline has {len(baseline)}, run found {len(found)})"
        )
        return 1
    print(f"tidy_baseline: clean ({len(found)} baselined finding(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())

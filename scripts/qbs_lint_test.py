#!/usr/bin/env python3
"""Self-test for qbs_lint.py: every rule must fire on a synthetic violation,
stay quiet on the sanctioned patterns, and the allowlist ratchet must fail
on stale entries. Runs as the `qbs_lint_py` ctest."""

import io
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import qbs_lint  # noqa: E402


def lint_tree(files, allowlists=None):
    """Builds a temp repo with `files` ({relpath: content}) and lints it.
    Returns (failure_count, output_text)."""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for rel, content in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        for rule_name, entries in (allowlists or {}).items():
            path = root / "scripts" / "lint_allowlists" / f"{rule_name}.txt"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("\n".join(entries) + "\n")
        out = io.StringIO()
        failures = qbs_lint.run_lint(root, out=out)
        return failures, out.getvalue()


class QbsLintTest(unittest.TestCase):
    def test_clean_tree_passes(self):
        failures, _ = lint_tree(
            {"src/core/a.cc": 'int main() { return 0; }\n'}
        )
        self.assertEqual(failures, 0)

    def test_raw_socket_fires_outside_socket_cc(self):
        failures, out = lint_tree(
            {"src/server/server.cc": "void F(int fd) { ::shutdown(fd, 2); }\n"}
        )
        self.assertEqual(failures, 1)
        self.assertIn("[raw-socket]", out)

    def test_raw_socket_exempts_socket_cc(self):
        failures, _ = lint_tree(
            {"src/server/socket.cc": "void F(int fd) { ::shutdown(fd, 2); }\n"}
        )
        self.assertEqual(failures, 0)

    def test_raw_mutex_fires_on_type_and_include(self):
        failures, out = lint_tree(
            {
                "src/core/a.h": "#include <mutex>\n",
                "src/core/b.cc": "std::shared_mutex mu;\n",
            }
        )
        self.assertEqual(failures, 2)
        self.assertIn("[raw-mutex]", out)

    def test_raw_mutex_exempts_sync_h(self):
        failures, _ = lint_tree(
            {"src/util/sync.h": "#include <mutex>\nstd::mutex mu;\n"}
        )
        self.assertEqual(failures, 0)

    def test_comment_mentions_do_not_fire(self):
        failures, _ = lint_tree(
            {
                "src/core/a.cc": (
                    "// raw ::send( calls and std::mutex are banned\n"
                    "/* std::condition_variable too,\n"
                    "   even ::recv( across lines */\n"
                    "int x;\n"
                )
            }
        )
        self.assertEqual(failures, 0)

    def test_deprecated_pragma_fires_even_inside_string(self):
        failures, out = lint_tree(
            {
                "src/core/a.cc": (
                    '#pragma GCC diagnostic ignored '
                    '"-Wdeprecated-declarations"\n'
                )
            }
        )
        self.assertEqual(failures, 1)
        self.assertIn("[deprecated-query]", out)

    def test_unseeded_rng_fires_and_seeded_passes(self):
        failures, out = lint_tree(
            {
                "src/gen/a.cc": "int x = rand();\n",
                "src/gen/b.cc": "std::mt19937 gen;\n",
                "src/gen/c.cc": "std::mt19937 gen(seed);\n",  # seeded: OK
            }
        )
        self.assertEqual(failures, 2)
        self.assertIn("[unseeded-rng]", out)

    def test_no_cout_fires_in_src_only(self):
        failures, out = lint_tree(
            {
                "src/core/a.cc": 'void F() { std::cout << 1; }\n',
                "tools/cli.cc": 'void G() { std::cout << 1; }\n',  # out of scope
            }
        )
        self.assertEqual(failures, 1)
        self.assertIn("[no-cout]", out)

    def test_allowlist_admits_violation(self):
        failures, _ = lint_tree(
            {"src/core/a.cc": "std::mutex mu;\n"},
            allowlists={"raw-mutex": ["src/core/a.cc"]},
        )
        self.assertEqual(failures, 0)

    def test_stale_allowlist_entry_fails(self):
        failures, out = lint_tree(
            {"src/core/a.cc": "int x;\n"},
            allowlists={"raw-mutex": ["src/core/a.cc"]},
        )
        self.assertEqual(failures, 1)
        self.assertIn("stale allowlist entry", out)

    def test_real_tree_is_clean(self):
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        out = io.StringIO()
        failures = qbs_lint.run_lint(repo_root, out=out)
        self.assertEqual(failures, 0, out.getvalue())


if __name__ == "__main__":
    unittest.main()

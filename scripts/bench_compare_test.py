#!/usr/bin/env python3
"""Unit tests for bench_compare.py, run in CI via ctest (bench_compare_py).

Each case writes a baseline/current CSV pair in the bench binaries'
csvh,/csv, echo format and checks the gate's exit code: 0 = pass,
1 = regression, 2 = unreadable current dump. The zero-baseline and
non-finite cases pin the skip-with-warning behaviour — a 0.00 construction
cell (timer-resolution truncation) must never gate, and must never crash
the comparison.
"""

import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def run_compare(baseline_text, current_text, *extra_args):
    """Writes the two dumps and returns (exit_code, stdout+stderr)."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.csv")
        cur_path = os.path.join(tmp, "current.csv")
        if baseline_text is not None:
            with open(base_path, "w", encoding="utf-8") as f:
                f.write(baseline_text)
        if current_text is not None:
            with open(cur_path, "w", encoding="utf-8") as f:
                f.write(current_text)
        proc = subprocess.run(
            [sys.executable, SCRIPT, base_path, cur_path, *extra_args],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout + proc.stderr


def table(rows, header="Dataset,q.avg(ms),b.build(s),hit2(%)"):
    lines = ["csvh," + header]
    lines += ["csv," + r for r in rows]
    return "\n".join(lines) + "\n"


class BenchCompareTest(unittest.TestCase):
    def test_no_change_passes(self):
        dump = table(["DO,0.100,2.00,55.0"])
        code, out = run_compare(dump, dump)
        self.assertEqual(code, 0, out)
        self.assertIn("no regressions", out)

    def test_query_latency_regression_fails(self):
        base = table(["DO,0.100,2.00,55.0"])
        cur = table(["DO,0.200,2.00,55.0"])
        code, out = run_compare(base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_construction_time_regression_fails(self):
        base = table(["DO,0.100,2.00,55.0"])
        cur = table(["DO,0.100,3.00,55.0"])
        code, out = run_compare(base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("[construction]", out)

    def test_non_gated_column_ignored(self):
        base = table(["DO,0.100,2.00,55.0"])
        cur = table(["DO,0.100,2.00,99.0"])  # hit2(%) is not gated
        code, out = run_compare(base, cur)
        self.assertEqual(code, 0, out)

    def test_zero_baseline_cell_skips_with_warning(self):
        # A 0.00 construction cell (sub-resolution build) must neither
        # crash nor flag "0.00 -> 0.50" as an infinite regression.
        base = table(["DO,0.100,0.00,55.0"])
        cur = table(["DO,0.100,0.50,55.0"])
        code, out = run_compare(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("skipping uncomparable", out)

    def test_non_finite_cell_skips_with_warning(self):
        base = table(["DO,inf,2.00,55.0"])
        cur = table(["DO,0.100,2.00,55.0"])
        code, out = run_compare(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("skipping uncomparable", out)

    def test_non_numeric_marker_skipped(self):
        base = table(["DO,DNF,2.00,55.0"])
        cur = table(["DO,0.100,2.00,55.0"])
        code, out = run_compare(base, cur)
        self.assertEqual(code, 0, out)

    def test_missing_baseline_passes(self):
        cur = table(["DO,0.100,2.00,55.0"])
        code, out = run_compare(None, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("no baseline", out)

    def test_missing_current_fails(self):
        base = table(["DO,0.100,2.00,55.0"])
        code, out = run_compare(base, None)
        self.assertEqual(code, 2, out)

    def test_new_dataset_row_not_compared(self):
        base = table(["DO,0.100,2.00,55.0"])
        cur = table(["DO,0.100,2.00,55.0", "DB,9.999,9.99,1.0"])
        code, out = run_compare(base, cur)
        self.assertEqual(code, 0, out)

    def test_noise_floor_suppresses_tiny_absolute_increase(self):
        # 3x ratio but only +0.0006ms: below --min-ms, so not a regression.
        base = table(["DO,0.0003,2.00,55.0"])
        cur = table(["DO,0.0009,2.00,55.0"])
        code, out = run_compare(base, cur)
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env bash
# Runs clang-format in check mode over every tracked C++ source.
# Used by the CI format job; run locally before pushing:
#   scripts/check_format.sh          # check only
#   scripts/check_format.sh --fix    # rewrite files in place
set -euo pipefail
cd "$(dirname "$0")/.."

# CI pins the binary via CLANG_FORMAT (formatting drifts across majors).
clang_format="${CLANG_FORMAT:-clang-format}"

mode=(--dry-run --Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

git ls-files 'src/**/*.h' 'src/**/*.cc' 'tests/*.h' 'tests/*.cc' \
             'bench/*.h' 'bench/*.cc' 'examples/*.cpp' 'tools/*.cc' |
  xargs "${clang_format}" "${mode[@]}"
echo "clang-format: OK"

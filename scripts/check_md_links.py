#!/usr/bin/env python3
"""Offline markdown link checker for the repo's documentation set.

Validates every markdown link in the given files (default: README.md and
docs/*.md):

  * relative links must point at an existing file or directory, resolved
    from the linking file's directory;
  * intra-document and cross-document anchors (#section) must match a
    heading in the target file (GitHub slug rules: lowercase, spaces to
    dashes, punctuation stripped);
  * absolute URLs are checked for scheme sanity only (http/https) — no
    network access, so CI stays hermetic and the check never flakes on a
    slow mirror.

Exit status: 0 when every link resolves, 1 otherwise (each failure is
printed as file:line: message). Run as a ctest (`md_links`) and in the CI
docs job; add new documentation files to the default set in ci.yml or pass
them as arguments.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
IMAGE_RE = re.compile(r"\!\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)


def github_slug(title):
    """GitHub's heading -> anchor slug transform (close enough for ours)."""
    slug = re.sub(r"[`*_]", "", title.strip().lower())
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
        slugs = {}
        out = set()
        for m in HEADING_RE.finditer(text):
            slug = github_slug(m.group("title"))
            n = slugs.get(slug, 0)
            slugs[slug] = n + 1
            out.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = out
    return cache[path]


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def rel(path, root):
    try:
        return path.relative_to(root)
    except ValueError:
        return path


def check_file(path, repo_root):
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks: example links in ``` blocks aren't links.
    stripped = CODE_FENCE_RE.sub(lambda m: "\n" * m.group(0).count("\n"),
                                 text)
    failures = []
    for m in list(LINK_RE.finditer(stripped)) + list(
            IMAGE_RE.finditer(stripped)):
        target = m.group("target")
        line = line_of(stripped, m.start())
        where = f"{rel(path, repo_root)}:{line}"
        if target.startswith(("http://", "https://")):
            continue  # external: scheme ok, no network check
        if target.startswith(("mailto:", "ftp:")):
            continue
        if "://" in target:
            failures.append(f"{where}: unsupported scheme in '{target}'")
            continue
        base, _, anchor = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            failures.append(f"{where}: broken link '{target}' "
                            f"(no such file {dest})")
            continue
        if anchor:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                continue  # anchors into non-markdown: out of scope
            if anchor not in anchors_of(dest):
                failures.append(f"{where}: broken anchor '#{anchor}' "
                                f"(no matching heading in "
                                f"{rel(dest, repo_root)})")
    return failures


def main():
    repo_root = Path(__file__).resolve().parent.parent
    if len(sys.argv) > 1:
        files = [Path(a).resolve() for a in sys.argv[1:]]
    else:
        files = [repo_root / "README.md"] + sorted(
            (repo_root / "docs").glob("*.md"))
    failures = []
    for f in files:
        if not f.exists():
            failures.append(f"{f}: file not found")
            continue
        failures.extend(check_file(f, repo_root))
    for failure in failures:
        print(failure)
    checked = ", ".join(str(rel(f, repo_root)) for f in files if f.exists())
    if failures:
        print(f"\n{len(failures)} broken link(s) across: {checked}")
        return 1
    print(f"all markdown links ok: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// ParentPPL — pruned path labelling with parent sets (§3.2).
//
// Extends PPL label entries (r, δ_vr) to triples (r, δ_vr, W_vr), where
// W_vr is the set of *all* neighbours of v one step closer to r — following
// the technique of [Akiba et al. 2013] generalized from one parent to all
// parents so that every shortest path is recoverable. Space grows to
// O(|V||E|) and construction slows down further (the paper's Table 2 shows
// ParentPPL running out of time/memory on 10 of 12 datasets), in exchange
// for faster SPG queries on small graphs.
//
// Parent completeness: the pruned BFS depth array alone under-approximates
// parent sets (a true parent may itself have been pruned), so parents are
// derived after each pruned BFS k via label distance queries, which are
// exact for pairs involving the rank-k landmark (it lies on all its own
// shortest paths).

#ifndef QBS_BASELINES_PARENT_PPL_H_
#define QBS_BASELINES_PARENT_PPL_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_set>
#include <vector>

#include "baselines/ppl.h"
#include "graph/graph.h"
#include "graph/spg.h"

namespace qbs {

struct ParentPplEntry {
  uint32_t rank = 0;
  uint32_t dist = 0;
  // Neighbours of the labelled vertex that are one step closer to the
  // landmark, i.e. the next hops of all shortest paths toward it.
  std::vector<VertexId> parents;
};

class ParentPplIndex {
 public:
  static std::optional<ParentPplIndex> Build(
      const Graph& g, const PplBuildOptions& options = {},
      BuildStatus* status = nullptr);

  uint32_t QueryDistance(VertexId u, VertexId v) const;
  ShortestPathGraph QuerySpg(VertexId u, VertexId v) const;

  const std::vector<ParentPplEntry>& Label(VertexId v) const {
    return labels_[v];
  }
  VertexId LandmarkVertex(uint32_t rank) const { return order_[rank]; }

  uint64_t NumEntries() const;
  uint64_t NumParents() const;
  // Entry bytes + parent bytes (parents dominate: the paper's Table 3 shows
  // roughly 2x the PPL footprint).
  uint64_t SizeBytes() const {
    return NumEntries() * (sizeof(uint32_t) + sizeof(uint32_t)) +
           NumParents() * sizeof(VertexId);
  }

 private:
  ParentPplIndex() = default;

  const ParentPplEntry* FindEntry(VertexId x, uint32_t rank) const;
  // Emits all shortest paths from x to the landmark with rank `rank`,
  // preferring stored parent walks, falling back to decomposition when a
  // pruned label leaves no entry.
  void Walk(VertexId x, uint32_t rank, std::vector<Edge>* edges,
            std::unordered_set<uint64_t>* visited_pairs) const;
  void Expand(VertexId u, VertexId v, std::vector<Edge>* edges,
              std::unordered_set<uint64_t>* visited_pairs) const;

  const Graph* g_ = nullptr;  // not owned
  std::vector<std::vector<ParentPplEntry>> labels_;
  std::vector<VertexId> order_;
  std::vector<uint32_t> rank_of_;
};

}  // namespace qbs

#endif  // QBS_BASELINES_PARENT_PPL_H_

#include "baselines/parent_ppl.h"

#include <algorithm>
#include <numeric>

#include "graph/bfs.h"
#include "graph/frontier.h"
#include "util/check.h"
#include "util/timer.h"

namespace qbs {
namespace {

uint64_t PairKey(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

std::optional<ParentPplIndex> ParentPplIndex::Build(
    const Graph& g, const PplBuildOptions& options, BuildStatus* status) {
  BuildStatus local_status;
  if (status == nullptr) status = &local_status;
  *status = BuildStatus::kOk;

  ParentPplIndex index;
  index.g_ = &g;
  const VertexId n = g.NumVertices();
  index.labels_.resize(n);
  index.order_.resize(n);
  std::iota(index.order_.begin(), index.order_.end(), 0);
  std::sort(index.order_.begin(), index.order_.end(),
            [&g](VertexId a, VertexId b) {
              const uint32_t da = g.Degree(a);
              const uint32_t db = g.Degree(b);
              return da != db ? da > db : a < b;
            });
  index.rank_of_.resize(n);
  for (uint32_t r = 0; r < n; ++r) index.rank_of_[index.order_[r]] = r;

  WallTimer timer;
  uint64_t total_entries = 0;
  uint64_t total_parents = 0;

  // Shared traversal-substrate scratch, reset in O(visited) between roots.
  RootedBfsScratch bfs;
  bfs.Prepare(n);
  auto& depth = bfs.depth;
  auto& queue = bfs.queue;
  std::vector<uint32_t> root_dist(n, kUnreachable);
  std::vector<VertexId> labeled_this_round;

  // Distance from the current root to w via labels (dense root view).
  // Exact for the root's own pairs: the root lies on all its shortest
  // paths, so after round k the pair (root, w) is covered.
  auto root_distance = [&](VertexId w) {
    uint32_t best = kUnreachable;
    for (const ParentPplEntry& e : index.labels_[w]) {
      const uint32_t rd = root_dist[e.rank];
      if (rd != kUnreachable) best = std::min(best, rd + e.dist);
    }
    return best;
  };

  for (uint32_t k = 0; k < n; ++k) {
    const VertexId root = index.order_[k];
    for (const ParentPplEntry& e : index.labels_[root]) {
      root_dist[e.rank] = e.dist;
    }

    // Pruned BFS (Algorithm 1), identical to PPL.
    labeled_this_round.clear();
    queue.push_back(root);
    depth[root] = 0;
    size_t head = 0;
    while (head < queue.size()) {
      const VertexId u = queue[head++];
      const uint32_t du = depth[u];
      const uint32_t via_labels = root_distance(u);
      if (via_labels < du) continue;
      index.labels_[u].push_back(ParentPplEntry{k, du, {}});
      labeled_this_round.push_back(u);
      ++total_entries;
      if (via_labels == du) continue;
      for (VertexId w : g.Neighbors(u)) {
        if (depth[w] == kUnreachable) {
          depth[w] = du + 1;
          queue.push_back(w);
        }
      }
    }

    // Parent derivation: with the round-k entries in place, the root's
    // distance to any vertex is answered exactly by labels, so a neighbour
    // w of a labelled u is a parent iff d_L(root, w) == dist(u) - 1. The
    // pruned-BFS depth array alone would miss parents that were themselves
    // pruned.
    root_dist[k] = 0;
    for (VertexId u : labeled_this_round) {
      ParentPplEntry& entry = index.labels_[u].back();
      QBS_DCHECK(entry.rank == k);
      if (entry.dist == 0) continue;  // the root itself
      for (VertexId w : g.Neighbors(u)) {
        if (root_distance(w) == entry.dist - 1) {
          entry.parents.push_back(w);
        }
      }
      total_parents += entry.parents.size();
    }
    root_dist[k] = kUnreachable;

    bfs.ResetVisited();
    for (const ParentPplEntry& e : index.labels_[root]) {
      root_dist[e.rank] = kUnreachable;
    }

    if (options.max_label_entries > 0 &&
        total_entries + total_parents > options.max_label_entries) {
      *status = BuildStatus::kMemoryBudgetExceeded;
      return std::nullopt;
    }
    if (timer.ElapsedSeconds() > options.time_budget_seconds) {
      *status = BuildStatus::kTimeBudgetExceeded;
      return std::nullopt;
    }
  }
  return index;
}

uint32_t ParentPplIndex::QueryDistance(VertexId u, VertexId v) const {
  QBS_CHECK_LT(u, labels_.size());
  QBS_CHECK_LT(v, labels_.size());
  if (u == v) return 0;
  const auto& lu = labels_[u];
  const auto& lv = labels_[v];
  uint32_t best = kUnreachable;
  size_t i = 0;
  size_t j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i].rank < lv[j].rank) {
      ++i;
    } else if (lu[i].rank > lv[j].rank) {
      ++j;
    } else {
      best = std::min(best, lu[i].dist + lv[j].dist);
      ++i;
      ++j;
    }
  }
  return best;
}

const ParentPplEntry* ParentPplIndex::FindEntry(VertexId x,
                                                uint32_t rank) const {
  const auto& l = labels_[x];
  const auto it = std::lower_bound(
      l.begin(), l.end(), rank,
      [](const ParentPplEntry& e, uint32_t r) { return e.rank < r; });
  return it != l.end() && it->rank == rank ? &*it : nullptr;
}

void ParentPplIndex::Walk(VertexId x, uint32_t rank, std::vector<Edge>* edges,
                          std::unordered_set<uint64_t>* visited_pairs) const {
  const VertexId target = order_[rank];
  if (x == target) return;
  if (!visited_pairs->insert(PairKey(x, target)).second) return;
  const ParentPplEntry* entry = FindEntry(x, rank);
  if (entry != nullptr) {
    if (entry->dist == 1) {
      edges->emplace_back(x, target);
      return;
    }
    for (VertexId w : entry->parents) {
      edges->emplace_back(x, w);
      Walk(w, rank, edges, visited_pairs);
    }
    return;
  }
  // x's label was pruned for this landmark: fall back to decomposition.
  visited_pairs->erase(PairKey(x, target));
  Expand(x, target, edges, visited_pairs);
}

void ParentPplIndex::Expand(VertexId u, VertexId v, std::vector<Edge>* edges,
                            std::unordered_set<uint64_t>* visited_pairs) const {
  if (!visited_pairs->insert(PairKey(u, v)).second) return;
  const uint32_t d = QueryDistance(u, v);
  if (d == 0 || d == kUnreachable) return;
  if (d == 1) {
    edges->emplace_back(u, v);
    return;
  }
  const auto& lu = labels_[u];
  const auto& lv = labels_[v];
  size_t i = 0;
  size_t j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i].rank < lv[j].rank) {
      ++i;
    } else if (lu[i].rank > lv[j].rank) {
      ++j;
    } else {
      if (lu[i].dist + lv[j].dist == d) {
        const uint32_t rank = lu[i].rank;
        const VertexId r = order_[rank];
        if (r != u && r != v) {
          Walk(u, rank, edges, visited_pairs);
          Walk(v, rank, edges, visited_pairs);
        }
      }
      ++i;
      ++j;
    }
  }
  // Neighbour-step completion (see PplIndex::Expand): parent walks only
  // cover paths with an internal common landmark in the labels.
  for (VertexId z : g_->Neighbors(u)) {
    if (QueryDistance(z, v) + 1 == d) {
      edges->emplace_back(u, z);
      Expand(z, v, edges, visited_pairs);
    }
  }
}

ShortestPathGraph ParentPplIndex::QuerySpg(VertexId u, VertexId v) const {
  ShortestPathGraph spg;
  spg.u = u;
  spg.v = v;
  spg.distance = QueryDistance(u, v);
  if (spg.distance == kUnreachable || u == v) return spg;
  std::unordered_set<uint64_t> visited_pairs;
  Expand(u, v, &spg.edges, &visited_pairs);
  spg.Normalize();
  return spg;
}

uint64_t ParentPplIndex::NumEntries() const {
  uint64_t total = 0;
  for (const auto& l : labels_) total += l.size();
  return total;
}

uint64_t ParentPplIndex::NumParents() const {
  uint64_t total = 0;
  for (const auto& l : labels_) {
    for (const auto& e : l) total += e.parents.size();
  }
  return total;
}

}  // namespace qbs

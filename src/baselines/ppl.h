// PPL — Pruned Path Labelling (§3.2, Algorithm 1).
//
// A pruned-BFS 2-hop labelling in the style of Pruned Landmark Labelling
// [Akiba et al. 2013], adapted to guarantee the *2-hop path cover* property
// (Definition 3.2): unlike PLL, a label is still added when the query
// distance equals the BFS depth (only expansion stops), so every shortest
// path — not just one — is covered by label entries.
//
// SPG queries are answered by recursive decomposition at minimizing common
// landmarks (the paper's §3.2 procedure, Example 3.4), completed by a
// neighbour-step expansion: pruning can leave a shortest path without an
// internal common landmark in the labels, so decomposition alone may miss
// edges; stepping to neighbours one hop closer (verified by exact label
// distance queries) restores completeness while keeping — indeed adding to —
// the redundant label-scan cost profile the paper attributes to PPL. The
// paper shows this method fails to scale (DNF/OOE on 7 of 12 datasets);
// build budgets reproduce that behaviour gracefully.

#ifndef QBS_BASELINES_PPL_H_
#define QBS_BASELINES_PPL_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "graph/spg.h"

namespace qbs {

// Why a labelling build stopped.
enum class BuildStatus {
  kOk,
  kTimeBudgetExceeded,    // the paper's DNF (>24h there; configurable here)
  kMemoryBudgetExceeded,  // the paper's OOE
};

struct PplBuildOptions {
  // Wall-clock budget for construction; exceeded => kTimeBudgetExceeded.
  double time_budget_seconds = std::numeric_limits<double>::infinity();
  // Cap on total label entries (each 8 bytes); exceeded =>
  // kMemoryBudgetExceeded. 0 = unlimited.
  uint64_t max_label_entries = 0;
};

// One labelling entry: the landmark is identified by its position in the
// degree-descending landmark order (so per-vertex entry lists are sorted by
// rank and intersect by merging).
struct PplEntry {
  uint32_t rank = 0;
  uint32_t dist = 0;
};

class PplIndex {
 public:
  // Builds the full pruned path labelling (every vertex is a potential
  // landmark, processed in decreasing-degree order). Returns std::nullopt
  // and sets *status when a budget is exceeded. `g` must outlive the index.
  static std::optional<PplIndex> Build(const Graph& g,
                                       const PplBuildOptions& options = {},
                                       BuildStatus* status = nullptr);

  // Exact distance via label intersection; kUnreachable if disconnected.
  uint32_t QueryDistance(VertexId u, VertexId v) const;

  // Exact SPG via recursive decomposition at common landmarks.
  ShortestPathGraph QuerySpg(VertexId u, VertexId v) const;

  const std::vector<PplEntry>& Label(VertexId v) const { return labels_[v]; }
  // Vertex id of the landmark with the given order rank.
  VertexId LandmarkVertex(uint32_t rank) const { return order_[rank]; }
  uint32_t RankOf(VertexId v) const { return rank_of_[v]; }

  uint64_t NumEntries() const;
  // Bytes of all labelling entries (Table 3 footprint: 32-bit landmark +
  // 8-bit distance per entry in the paper; we store 32+32).
  uint64_t SizeBytes() const { return NumEntries() * sizeof(PplEntry); }

 private:
  PplIndex() = default;

  // Recursive SPG expansion with pair memoization.
  void Expand(VertexId u, VertexId v, std::vector<Edge>* edges,
              std::unordered_set<uint64_t>* visited_pairs) const;

  const Graph* g_ = nullptr;  // not owned
  std::vector<std::vector<PplEntry>> labels_;
  std::vector<VertexId> order_;    // rank -> vertex (degree-descending)
  std::vector<uint32_t> rank_of_;  // vertex -> rank
};

}  // namespace qbs

#endif  // QBS_BASELINES_PPL_H_

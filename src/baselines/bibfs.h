// The Bi-BFS baseline (§6.1): an optimized bidirectional BFS answering
// SPG queries online with no precomputation [Goldberg & Harrelson 2005;
// Hayashi et al. 2016]. Expands the cheaper frontier (by degree volume)
// until the frontiers meet, then reconstructs all shortest paths with a
// reverse search over the two BFS level sets.
//
// This is what QbS's guided search degenerates to with zero landmarks; the
// paper's Table 2 compares query times against it. Frontiers live on the
// shared flat traversal substrate (graph/frontier.h), so the baseline and
// the guided search stay apples-to-apples.

#ifndef QBS_BASELINES_BIBFS_H_
#define QBS_BASELINES_BIBFS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/frontier.h"
#include "graph/graph.h"
#include "graph/spg.h"
#include "util/epoch_array.h"

namespace qbs {

// Online bidirectional SPG search over a fixed graph. Holds reusable
// scratch sized to the graph; NOT thread-safe.
class BiBfs {
 public:
  explicit BiBfs(const Graph& g);

  // Exact SPG(u, v). `edges_scanned`, if non-null, receives the number of
  // adjacency entries inspected (search + reverse), for the §6.5 traversal
  // comparison.
  ShortestPathGraph Query(VertexId u, VertexId v,
                          uint64_t* edges_scanned = nullptr);

 private:
  void AddBackwardStart(int t, VertexId w);
  void RunBackwardWalk(int t, uint64_t* scans);

  const Graph& g_;
  EpochArray<uint32_t> depth_[2];
  EpochArray<uint8_t> back_mark_[2];
  LevelStack levels_[2];  // flat BFS levels per side
  // Reverse-search starts as (depth, vertex); sorted descending and walked
  // level-by-level through two flat buffers instead of per-depth buckets.
  std::vector<std::pair<uint32_t, VertexId>> back_starts_[2];
  std::vector<VertexId> walk_cur_, walk_next_;
  std::vector<VertexId> meet_set_;
  std::vector<Edge> edges_;
};

}  // namespace qbs

#endif  // QBS_BASELINES_BIBFS_H_

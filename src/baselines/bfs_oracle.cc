#include "baselines/bfs_oracle.h"

#include "graph/bfs.h"
#include "util/check.h"

namespace qbs {

ShortestPathGraph SpgFromDistances(const Graph& g, VertexId u, VertexId v,
                                   const std::vector<uint32_t>& dist_u,
                                   const std::vector<uint32_t>& dist_v) {
  QBS_CHECK_EQ(dist_u.size(), g.NumVertices());
  QBS_CHECK_EQ(dist_v.size(), g.NumVertices());
  ShortestPathGraph spg;
  spg.u = u;
  spg.v = v;
  spg.distance = dist_u[v];
  if (spg.distance == kUnreachable || u == v) return spg;

  for (VertexId x = 0; x < g.NumVertices(); ++x) {
    if (dist_u[x] == kUnreachable || dist_u[x] >= spg.distance) continue;
    for (VertexId y : g.Neighbors(x)) {
      if (dist_v[y] == kUnreachable) continue;
      if (dist_u[x] + 1 + dist_v[y] == spg.distance) {
        spg.edges.emplace_back(x, y);
      }
    }
  }
  spg.Normalize();
  return spg;
}

ShortestPathGraph SpgByDoubleBfs(const Graph& g, VertexId u, VertexId v) {
  QBS_CHECK_LT(u, g.NumVertices());
  QBS_CHECK_LT(v, g.NumVertices());
  if (u == v) {
    ShortestPathGraph spg;
    spg.u = u;
    spg.v = v;
    spg.distance = 0;
    return spg;
  }
  const std::vector<uint32_t> dist_u = BfsDistances(g, u);
  const std::vector<uint32_t> dist_v = BfsDistances(g, v);
  return SpgFromDistances(g, u, v, dist_u, dist_v);
}

}  // namespace qbs

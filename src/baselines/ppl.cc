#include "baselines/ppl.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "graph/bfs.h"
#include "graph/frontier.h"
#include "util/check.h"
#include "util/timer.h"

namespace qbs {
namespace {

uint64_t PairKey(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

std::optional<PplIndex> PplIndex::Build(const Graph& g,
                                        const PplBuildOptions& options,
                                        BuildStatus* status) {
  BuildStatus local_status;
  if (status == nullptr) status = &local_status;
  *status = BuildStatus::kOk;

  PplIndex index;
  index.g_ = &g;
  const VertexId n = g.NumVertices();
  index.labels_.resize(n);
  index.order_.resize(n);
  std::iota(index.order_.begin(), index.order_.end(), 0);
  std::sort(index.order_.begin(), index.order_.end(),
            [&g](VertexId a, VertexId b) {
              const uint32_t da = g.Degree(a);
              const uint32_t db = g.Degree(b);
              return da != db ? da > db : a < b;
            });
  index.rank_of_.resize(n);
  for (uint32_t r = 0; r < n; ++r) index.rank_of_[index.order_[r]] = r;

  WallTimer timer;
  uint64_t total_entries = 0;

  // Scratch reused across pruned BFSs (shared traversal substrate).
  RootedBfsScratch bfs;
  bfs.Prepare(n);
  auto& depth = bfs.depth;
  auto& queue = bfs.queue;
  // root_dist[r] = distance from the current root to landmark r according
  // to the root's own label (dense view for O(1) lookups during pruning).
  std::vector<uint32_t> root_dist(n, kUnreachable);

  for (uint32_t k = 0; k < n; ++k) {
    const VertexId root = index.order_[k];
    // Load the root's current label (entries from ranks < k).
    for (const PplEntry& e : index.labels_[root]) {
      root_dist[e.rank] = e.dist;
    }

    // Pruned BFS (Algorithm 1).
    queue.push_back(root);
    depth[root] = 0;
    size_t head = 0;
    while (head < queue.size()) {
      const VertexId u = queue[head++];
      const uint32_t du = depth[u];
      // d_{L_{k-1}}(root, u) by merging u's label against the dense root
      // view.
      uint32_t via_labels = kUnreachable;
      for (const PplEntry& e : index.labels_[u]) {
        const uint32_t rd = root_dist[e.rank];
        if (rd != kUnreachable) {
          via_labels = std::min(via_labels, rd + e.dist);
        }
      }
      if (via_labels < du) continue;  // prune: already covered
      index.labels_[u].push_back(PplEntry{k, du});
      ++total_entries;
      if (via_labels == du) continue;  // covered paths: label, don't expand
      for (VertexId w : g.Neighbors(u)) {
        if (depth[w] == kUnreachable) {
          depth[w] = du + 1;
          queue.push_back(w);
        }
      }
    }

    // Reset scratch touched by this BFS.
    bfs.ResetVisited();
    for (const PplEntry& e : index.labels_[root]) {
      root_dist[e.rank] = kUnreachable;
    }

    if (options.max_label_entries > 0 &&
        total_entries > options.max_label_entries) {
      *status = BuildStatus::kMemoryBudgetExceeded;
      return std::nullopt;
    }
    if (timer.ElapsedSeconds() > options.time_budget_seconds) {
      *status = BuildStatus::kTimeBudgetExceeded;
      return std::nullopt;
    }
  }
  return index;
}

uint32_t PplIndex::QueryDistance(VertexId u, VertexId v) const {
  QBS_CHECK_LT(u, labels_.size());
  QBS_CHECK_LT(v, labels_.size());
  if (u == v) return 0;
  const auto& lu = labels_[u];
  const auto& lv = labels_[v];
  uint32_t best = kUnreachable;
  size_t i = 0;
  size_t j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i].rank < lv[j].rank) {
      ++i;
    } else if (lu[i].rank > lv[j].rank) {
      ++j;
    } else {
      best = std::min(best, lu[i].dist + lv[j].dist);
      ++i;
      ++j;
    }
  }
  return best;
}

void PplIndex::Expand(VertexId u, VertexId v, std::vector<Edge>* edges,
                      std::unordered_set<uint64_t>* visited_pairs) const {
  if (!visited_pairs->insert(PairKey(u, v)).second) return;

  const uint32_t d = QueryDistance(u, v);
  if (d == 0 || d == kUnreachable) return;
  if (d == 1) {
    edges->emplace_back(u, v);
    return;
  }
  // V_uv: common landmarks realizing the distance (the paper's recursive
  // decomposition). Pruning does not guarantee an internal common landmark
  // on *every* shortest path, so this covers most but possibly not all
  // paths.
  const auto& lu = labels_[u];
  const auto& lv = labels_[v];
  size_t i = 0;
  size_t j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i].rank < lv[j].rank) {
      ++i;
    } else if (lu[i].rank > lv[j].rank) {
      ++j;
    } else {
      if (lu[i].dist + lv[j].dist == d) {
        const VertexId r = order_[lu[i].rank];
        if (r != u && r != v) {
          Expand(u, r, edges, visited_pairs);
          Expand(r, v, edges, visited_pairs);
        }
      }
      ++i;
      ++j;
    }
  }
  // Neighbour-step completion: every neighbour of u one hop closer to v is
  // on a shortest path (exact label distance check), guaranteeing no path
  // escapes even when no internal landmark covers it.
  for (VertexId z : g_->Neighbors(u)) {
    if (QueryDistance(z, v) + 1 == d) {
      edges->emplace_back(u, z);
      Expand(z, v, edges, visited_pairs);
    }
  }
}

ShortestPathGraph PplIndex::QuerySpg(VertexId u, VertexId v) const {
  ShortestPathGraph spg;
  spg.u = u;
  spg.v = v;
  spg.distance = QueryDistance(u, v);
  if (spg.distance == kUnreachable || u == v) return spg;
  std::unordered_set<uint64_t> visited_pairs;
  Expand(u, v, &spg.edges, &visited_pairs);
  spg.Normalize();
  return spg;
}

uint64_t PplIndex::NumEntries() const {
  uint64_t total = 0;
  for (const auto& l : labels_) total += l.size();
  return total;
}

}  // namespace qbs

// Ground-truth SPG computation by two full breadth-first searches.
//
// An edge (x, y) lies on a shortest u–v path iff
//   d(u,x) + 1 + d(y,v) == d(u,v)   (in either orientation),
// so two BFS distance arrays and one edge sweep produce the exact answer in
// O(|V| + |E|). This is the correctness reference every index in the
// library is validated against; it is intentionally the most obviously
// correct implementation, not the fastest.

#ifndef QBS_BASELINES_BFS_ORACLE_H_
#define QBS_BASELINES_BFS_ORACLE_H_

#include <vector>

#include "graph/graph.h"
#include "graph/spg.h"

namespace qbs {

// Exact SPG(u, v) via two full BFSs and an edge sweep.
ShortestPathGraph SpgByDoubleBfs(const Graph& g, VertexId u, VertexId v);

// Edge sweep given precomputed distance arrays from u and v (exposed so
// callers amortize BFSs across many pairs sharing an endpoint).
ShortestPathGraph SpgFromDistances(const Graph& g, VertexId u, VertexId v,
                                   const std::vector<uint32_t>& dist_u,
                                   const std::vector<uint32_t>& dist_v);

}  // namespace qbs

#endif  // QBS_BASELINES_BFS_ORACLE_H_

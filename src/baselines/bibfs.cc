#include "baselines/bibfs.h"

#include <algorithm>

#include "graph/bfs.h"
#include "util/check.h"

namespace qbs {

BiBfs::BiBfs(const Graph& g) : g_(g) {
  for (int s = 0; s < 2; ++s) {
    depth_[s].Resize(g.NumVertices(), kUnreachable);
    back_mark_[s].Resize(g.NumVertices(), 0);
  }
}

void BiBfs::AddBackwardStart(int t, VertexId w) {
  if (back_mark_[t].IsSet(w)) return;
  back_mark_[t].Set(w, 1);
  back_starts_[t].emplace_back(depth_[t].Get(w), w);
}

void BiBfs::RunBackwardWalk(int t, uint64_t* scans) {
  auto& starts = back_starts_[t];
  if (starts.empty()) return;
  std::sort(starts.begin(), starts.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  size_t si = 0;
  uint32_t level = starts[0].first;
  walk_cur_.clear();
  while (level >= 1) {
    while (si < starts.size() && starts[si].first == level) {
      walk_cur_.push_back(starts[si++].second);
    }
    if (walk_cur_.empty()) {
      if (si >= starts.size()) break;
      level = starts[si].first;  // skip empty levels to the next start
      continue;
    }
    walk_next_.clear();
    for (const VertexId x : walk_cur_) {
      *scans += g_.Degree(x);
      for (VertexId y : g_.Neighbors(x)) {
        if (depth_[t].Get(y) != level - 1) continue;
        edges_.emplace_back(x, y);
        if (!back_mark_[t].IsSet(y)) {
          back_mark_[t].Set(y, 1);
          walk_next_.push_back(y);
        }
      }
    }
    std::swap(walk_cur_, walk_next_);
    --level;
  }
}

ShortestPathGraph BiBfs::Query(VertexId u, VertexId v,
                               uint64_t* edges_scanned) {
  QBS_CHECK_LT(u, g_.NumVertices());
  QBS_CHECK_LT(v, g_.NumVertices());
  uint64_t local_scans = 0;
  uint64_t* scans = edges_scanned != nullptr ? edges_scanned : &local_scans;

  ShortestPathGraph result;
  result.u = u;
  result.v = v;
  if (u == v) {
    result.distance = 0;
    return result;
  }

  for (int s = 0; s < 2; ++s) {
    depth_[s].Reset();
    back_mark_[s].Reset();
    levels_[s].Clear();
    back_starts_[s].clear();
  }
  meet_set_.clear();
  edges_.clear();

  const VertexId endpoint[2] = {u, v};
  uint64_t volume[2] = {g_.Degree(u), g_.Degree(v)};
  for (int s = 0; s < 2; ++s) {
    depth_[s].Set(endpoint[s], 0);
    levels_[s].BeginLevel();
    levels_[s].Push(endpoint[s]);
  }

  uint32_t d[2] = {0, 0};
  bool meet = false;
  while (!meet) {
    if (levels_[0].LevelSize(d[0]) == 0 || levels_[1].LevelSize(d[1]) == 0) {
      result.distance = kUnreachable;
      return result;  // disconnected
    }
    // Expand the side with the smaller frontier volume.
    const int t = volume[0] <= volume[1] ? 0 : 1;
    const int o = 1 - t;
    const uint32_t next_depth = d[t] + 1;
    uint64_t next_volume = 0;
    // Open the next level first so this level's bounds are frozen, then
    // iterate by index: Push may reallocate the flat buffer.
    levels_[t].BeginLevel();
    const size_t begin = levels_[t].LevelBegin(d[t]);
    const size_t end = levels_[t].LevelEnd(d[t]);
    for (size_t idx = begin; idx < end; ++idx) {
      const VertexId x = levels_[t].At(idx);
      for (VertexId w : g_.Neighbors(x)) {
        ++*scans;
        if (depth_[t].IsSet(w)) continue;
        depth_[t].Set(w, next_depth);
        levels_[t].Push(w);
        next_volume += g_.Degree(w);
        if (depth_[o].IsSet(w)) meet_set_.push_back(w);
      }
    }
    volume[t] = next_volume;
    ++d[t];
    meet = !meet_set_.empty();
  }

  result.distance = d[0] + d[1];
  for (const VertexId m : meet_set_) {
    QBS_DCHECK(depth_[0].Get(m) + depth_[1].Get(m) == result.distance);
    AddBackwardStart(0, m);
    AddBackwardStart(1, m);
  }
  RunBackwardWalk(0, scans);
  RunBackwardWalk(1, scans);

  result.edges = edges_;
  result.Normalize();
  return result;
}

}  // namespace qbs

#include "baselines/bibfs.h"

#include <algorithm>

#include "graph/bfs.h"
#include "util/check.h"

namespace qbs {

BiBfs::BiBfs(const Graph& g) : g_(g) {
  for (int s = 0; s < 2; ++s) {
    depth_[s].Resize(g.NumVertices(), kUnreachable);
    back_mark_[s].Resize(g.NumVertices(), 0);
  }
}

void BiBfs::AddBackwardStart(int t, VertexId w) {
  if (back_mark_[t].IsSet(w)) return;
  back_mark_[t].Set(w, 1);
  const uint32_t d = depth_[t].Get(w);
  if (back_buckets_[t].size() <= d) back_buckets_[t].resize(d + 1);
  back_buckets_[t][d].push_back(w);
}

ShortestPathGraph BiBfs::Query(VertexId u, VertexId v,
                               uint64_t* edges_scanned) {
  QBS_CHECK_LT(u, g_.NumVertices());
  QBS_CHECK_LT(v, g_.NumVertices());
  uint64_t local_scans = 0;
  uint64_t* scans = edges_scanned != nullptr ? edges_scanned : &local_scans;

  ShortestPathGraph result;
  result.u = u;
  result.v = v;
  if (u == v) {
    result.distance = 0;
    return result;
  }

  for (int s = 0; s < 2; ++s) {
    depth_[s].Reset();
    back_mark_[s].Reset();
    levels_[s].clear();
    back_buckets_[s].clear();
  }
  meet_set_.clear();
  edges_.clear();

  const VertexId endpoint[2] = {u, v};
  uint64_t volume[2] = {g_.Degree(u), g_.Degree(v)};
  for (int s = 0; s < 2; ++s) {
    depth_[s].Set(endpoint[s], 0);
    levels_[s].push_back({endpoint[s]});
  }

  uint32_t d[2] = {0, 0};
  bool meet = false;
  while (!meet) {
    if (levels_[0][d[0]].empty() || levels_[1][d[1]].empty()) {
      result.distance = kUnreachable;
      return result;  // disconnected
    }
    // Expand the side with the smaller frontier volume.
    const int t = volume[0] <= volume[1] ? 0 : 1;
    const int o = 1 - t;
    std::vector<VertexId> next;
    uint64_t next_volume = 0;
    const uint32_t next_depth = d[t] + 1;
    for (VertexId x : levels_[t][d[t]]) {
      for (VertexId w : g_.Neighbors(x)) {
        ++*scans;
        if (depth_[t].IsSet(w)) continue;
        depth_[t].Set(w, next_depth);
        next.push_back(w);
        next_volume += g_.Degree(w);
        if (depth_[o].IsSet(w)) meet_set_.push_back(w);
      }
    }
    levels_[t].push_back(std::move(next));
    volume[t] = next_volume;
    ++d[t];
    meet = !meet_set_.empty();
  }

  result.distance = d[0] + d[1];
  for (const VertexId m : meet_set_) {
    QBS_DCHECK(depth_[0].Get(m) + depth_[1].Get(m) == result.distance);
    AddBackwardStart(0, m);
    AddBackwardStart(1, m);
  }
  for (int t = 0; t < 2; ++t) {
    auto& buckets = back_buckets_[t];
    for (size_t level = buckets.size(); level-- > 1;) {
      for (size_t i = 0; i < buckets[level].size(); ++i) {
        const VertexId x = buckets[level][i];
        for (VertexId y : g_.Neighbors(x)) {
          ++*scans;
          if (depth_[t].Get(y) != level - 1) continue;
          edges_.emplace_back(x, y);
          AddBackwardStart(t, y);
        }
      }
    }
  }

  result.edges = edges_;
  result.Normalize();
  return result;
}

}  // namespace qbs

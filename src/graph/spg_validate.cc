#include "graph/spg_validate.h"

#include <algorithm>
#include <sstream>

#include "graph/bfs.h"

namespace qbs {
namespace {

SpgValidationResult Fail(const std::string& message) {
  SpgValidationResult r;
  r.ok = false;
  r.error = message;
  return r;
}

std::string EdgeStr(const Edge& e) {
  std::ostringstream oss;
  oss << "(" << e.u << "," << e.v << ")";
  return oss.str();
}

}  // namespace

SpgValidationResult ValidateShortestPathGraph(const Graph& g,
                                              const ShortestPathGraph& spg) {
  if (spg.u >= g.NumVertices() || spg.v >= g.NumVertices()) {
    return Fail("endpoint out of range");
  }
  const auto dist_u = BfsDistances(g, spg.u);
  const auto dist_v = BfsDistances(g, spg.v);
  const uint32_t d = dist_u[spg.v];

  if (spg.distance != d) {
    return Fail("distance mismatch: claimed " +
                std::to_string(spg.distance) + ", actual " +
                std::to_string(d));
  }
  if (d == kUnreachable || spg.u == spg.v) {
    return spg.edges.empty()
               ? SpgValidationResult{true, ""}
               : Fail("trivial/disconnected query must have no edges");
  }

  // Normalization: sorted, unique, u <= v per edge.
  for (size_t i = 0; i < spg.edges.size(); ++i) {
    const Edge& e = spg.edges[i];
    if (e.u > e.v) return Fail("edge not normalized: " + EdgeStr(e));
    if (i > 0 && !(spg.edges[i - 1] < e)) {
      return Fail("edges not sorted/unique at " + EdgeStr(e));
    }
  }

  // Soundness: every claimed edge exists and lies on a shortest path.
  for (const Edge& e : spg.edges) {
    if (e.u >= g.NumVertices() || e.v >= g.NumVertices() ||
        !g.HasEdge(e.u, e.v)) {
      return Fail("edge not in graph: " + EdgeStr(e));
    }
    const bool fwd = dist_u[e.u] != kUnreachable &&
                     dist_v[e.v] != kUnreachable &&
                     dist_u[e.u] + 1 + dist_v[e.v] == d;
    const bool bwd = dist_u[e.v] != kUnreachable &&
                     dist_v[e.u] != kUnreachable &&
                     dist_u[e.v] + 1 + dist_v[e.u] == d;
    if (!fwd && !bwd) {
      return Fail("edge not on any shortest path: " + EdgeStr(e));
    }
  }

  // Completeness: every graph edge on a shortest path is claimed.
  size_t expected = 0;
  for (VertexId x = 0; x < g.NumVertices(); ++x) {
    if (dist_u[x] == kUnreachable || dist_u[x] >= d) continue;
    for (VertexId y : g.Neighbors(x)) {
      if (dist_v[y] != kUnreachable && dist_u[x] + 1 + dist_v[y] == d) {
        ++expected;
        const Edge e = Edge(x, y).Normalized();
        if (!std::binary_search(spg.edges.begin(), spg.edges.end(), e)) {
          return Fail("missing edge " + EdgeStr(e));
        }
      }
    }
  }
  // `expected` counts each undirected edge once per on-path orientation;
  // soundness + the per-edge membership check above make an exact count
  // comparison redundant, so reaching here means the sets are equal.
  return SpgValidationResult{true, ""};
}

}  // namespace qbs

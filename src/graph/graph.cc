#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace qbs {

Graph Graph::FromEdges(VertexId num_vertices, std::vector<Edge> edges) {
  // Normalize, drop self-loops, dedupe.
  size_t out = 0;
  for (const Edge& e : edges) {
    QBS_CHECK_LT(e.u, num_vertices);
    QBS_CHECK_LT(e.v, num_vertices);
    if (e.u == e.v) continue;
    edges[out++] = e.Normalized();
  }
  edges.resize(out);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  // Count degrees.
  for (const Edge& e : edges) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (size_t v = 1; v < g.offsets_.size(); ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }
  g.adjacency_.resize(edges.size() * 2);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  // Each per-vertex slice is sorted because edges were sorted by (u, v) and
  // filled in order for the u side; the v side needs a per-vertex sort.
  for (VertexId v = 0; v < num_vertices; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

Graph Graph::FromCsr(std::vector<uint64_t> offsets,
                     std::vector<VertexId> adjacency) {
  QBS_CHECK(!offsets.empty());
  QBS_CHECK_EQ(offsets.front(), 0u);
  QBS_CHECK_EQ(offsets.back(), adjacency.size());
  QBS_CHECK_EQ(adjacency.size() % 2, 0u);
  const auto n = static_cast<VertexId>(offsets.size() - 1);
  for (VertexId v = 0; v < n; ++v) {
    QBS_CHECK_LE(offsets[v], offsets[v + 1]);
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      QBS_CHECK_LT(adjacency[i], n);
      QBS_CHECK(adjacency[i] != v);
      if (i > offsets[v]) QBS_CHECK_LT(adjacency[i - 1], adjacency[i]);
    }
  }
  return AdoptCsr(std::move(offsets), std::move(adjacency));
}

Graph Graph::AdoptCsr(std::vector<uint64_t> offsets,
                      std::vector<VertexId> adjacency) {
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  QBS_DCHECK(u < NumVertices() && v < NumVertices());
  // Search the smaller list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

uint32_t Graph::MaxDegree() const {
  uint32_t best = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

double Graph::AverageDegree() const {
  if (NumVertices() == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) /
         static_cast<double>(NumVertices());
}

std::vector<Edge> Graph::EdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (VertexId w : Neighbors(v)) {
      if (v < w) edges.emplace_back(v, w);
    }
  }
  return edges;
}

}  // namespace qbs

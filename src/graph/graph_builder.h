// Incremental construction of a Graph from streamed edges, with optional
// automatic growth of the vertex space. Used by the generators and I/O.

#ifndef QBS_GRAPH_GRAPH_BUILDER_H_
#define QBS_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"

namespace qbs {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  // Pre-declares at least `n` vertices (ids [0, n) exist even if isolated).
  explicit GraphBuilder(VertexId n) : num_vertices_(n) {}

  // Adds the undirected edge {u, v}. Grows the vertex space to cover both
  // endpoints. Self-loops and duplicates are tolerated (removed at Build).
  void AddEdge(VertexId u, VertexId v) {
    if (u >= num_vertices_) num_vertices_ = u + 1;
    if (v >= num_vertices_) num_vertices_ = v + 1;
    edges_.emplace_back(u, v);
  }

  void ReserveEdges(size_t n) { edges_.reserve(n); }

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_added_edges() const { return edges_.size(); }

  // Finalizes into an immutable Graph. The builder is left empty.
  Graph Build();

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace qbs

#endif  // QBS_GRAPH_GRAPH_BUILDER_H_

#include "graph/dataset_io.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "graph/components.h"
#include "util/check.h"

#ifdef QBS_HAVE_ZLIB
#include <zlib.h>
#endif

namespace qbs {
namespace {

constexpr uint64_t kMagic = 0x3130465247534251ull;  // "QBSGRF01"

// FNV-1a 64, folded incrementally over the payload arrays. Detects the
// bit flips and truncations a download or disk error introduces; this is
// an integrity check, not an authenticity one (that is what the fetcher's
// SHA-256 over the raw file is for).
class Fnv1a64 {
 public:
  template <typename T>
  void Update(const T* data, size_t count) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(data);
    const size_t size = count * sizeof(T);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  uint64_t Digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVec(std::ifstream& in, std::vector<T>* vec) {
  in.read(reinterpret_cast<char*>(vec->data()),
          static_cast<std::streamsize>(vec->size() * sizeof(T)));
  return static_cast<bool>(in);
}

bool HasGzSuffix(const std::string& path) {
  return path.size() > 3 && path.compare(path.size() - 3, 3, ".gz") == 0;
}

// Graceful CSR validation for untrusted cache payloads: same invariants as
// Graph::FromCsr, but a violation returns false instead of aborting the
// process.
bool ValidCsr(const std::vector<uint64_t>& offsets,
              const std::vector<VertexId>& adjacency) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != adjacency.size() || adjacency.size() % 2 != 0) {
    return false;
  }
  const auto n = static_cast<VertexId>(offsets.size() - 1);
  for (VertexId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) return false;
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (adjacency[i] >= n || adjacency[i] == v) return false;
      if (i > offsets[v] && adjacency[i - 1] >= adjacency[i]) return false;
    }
  }
  return true;
}

#ifdef QBS_HAVE_ZLIB
std::optional<Graph> ReadGzEdgeList(const std::string& path,
                                    const EdgeListReadOptions& options) {
  gzFile gz = gzopen(path.c_str(), "rb");
  if (gz == nullptr) {
    std::cerr << "ReadEdgeListAuto: cannot open " << path << '\n';
    return std::nullopt;
  }
  // 256 KiB decompression window; gzgets returns at most one line per call,
  // and lines longer than the buffer are reassembled below.
  std::vector<char> buf(1 << 18);
  bool stream_error = false;
  auto next_line = [&](std::string* line) {
    line->clear();
    for (;;) {
      if (gzgets(gz, buf.data(), static_cast<int>(buf.size())) == nullptr) {
        int errnum = 0;
        gzerror(gz, &errnum);
        if (errnum != Z_OK && errnum != Z_STREAM_END) stream_error = true;
        return !line->empty();
      }
      line->append(buf.data());
      if (!line->empty() && line->back() == '\n') {
        line->pop_back();
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
    }
  };
  auto graph = ReadEdgeListFromLines(next_line, options, path);
  gzclose(gz);
  if (stream_error) {
    std::cerr << "ReadEdgeListAuto: gzip stream error in " << path
              << '\n';
    return std::nullopt;
  }
  return graph;
}
#endif

}  // namespace

bool GzipSupported() {
#ifdef QBS_HAVE_ZLIB
  return true;
#else
  return false;
#endif
}

std::optional<Graph> ReadEdgeListAuto(const std::string& path,
                                      const EdgeListReadOptions& options) {
  if (!HasGzSuffix(path)) return ReadEdgeList(path, options);
#ifdef QBS_HAVE_ZLIB
  return ReadGzEdgeList(path, options);
#else
  std::cerr << "ReadEdgeListAuto: " << path
            << " is gzip-compressed but this build has no zlib; "
               "decompress it first (gunzip)"
            << '\n';
  return std::nullopt;
#endif
}

bool SaveGraphCache(const Graph& g, const DatasetCacheInfo& info,
                    const std::string& path) {
  // Write to a temp sibling and rename, so a crash mid-write never leaves
  // a half-cache that the next run would have to checksum-reject.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "SaveGraphCache: cannot open " << tmp << '\n';
      return false;
    }
    // An empty Graph has no offsets array at all; persist it as the
    // canonical one-entry CSR so the loader's n+1 offsets always exist.
    static constexpr uint64_t kEmptyOffsets[1] = {0};
    auto offsets = g.RawOffsets();
    if (offsets.empty()) offsets = kEmptyOffsets;
    const auto adjacency = g.RawAdjacency();
    Fnv1a64 checksum;
    checksum.Update(offsets.data(), offsets.size());
    checksum.Update(adjacency.data(), adjacency.size());

    WritePod(out, kMagic);
    WritePod(out, g.NumVertices());
    WritePod(out, g.NumEdges());
    WritePod(out, static_cast<uint8_t>(info.largest_cc_extracted ? 1 : 0));
    WritePod(out, info.raw_vertices);
    WritePod(out, info.raw_edges);
    WritePod(out, info.raw_file_bytes);
    const uint64_t payload_bytes =
        offsets.size() * sizeof(uint64_t) + adjacency.size() * sizeof(VertexId);
    WritePod(out, payload_bytes);
    WritePod(out, checksum.Digest());
    out.write(reinterpret_cast<const char*>(offsets.data()),
              static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
    out.write(
        reinterpret_cast<const char*>(adjacency.data()),
        static_cast<std::streamsize>(adjacency.size() * sizeof(VertexId)));
    if (!out) {
      std::cerr << "SaveGraphCache: write failed for " << tmp << '\n';
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::cerr << "SaveGraphCache: rename to " << path << " failed: "
              << ec.message() << '\n';
    return false;
  }
  return true;
}

std::optional<Graph> LoadGraphCache(const std::string& path,
                                    DatasetCacheInfo* info) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "LoadGraphCache: cannot open " << path << '\n';
    return std::nullopt;
  }
  uint64_t magic = 0;
  VertexId n = 0;
  uint64_t m = 0;
  uint8_t cc_flag = 0;
  DatasetCacheInfo header;
  uint64_t payload_bytes = 0;
  uint64_t stored_checksum = 0;
  if (!ReadPod(in, &magic) || magic != kMagic || !ReadPod(in, &n) ||
      !ReadPod(in, &m) || !ReadPod(in, &cc_flag) || cc_flag > 1 ||
      !ReadPod(in, &header.raw_vertices) || !ReadPod(in, &header.raw_edges) ||
      !ReadPod(in, &header.raw_file_bytes) || !ReadPod(in, &payload_bytes) ||
      !ReadPod(in, &stored_checksum)) {
    std::cerr << "LoadGraphCache: bad header in " << path << '\n';
    return std::nullopt;
  }
  header.largest_cc_extracted = cc_flag == 1;
  // The checksum only covers the payload, so the header's counts must be
  // bounded against the actual file before they size any allocation — a
  // bit-flipped edge count must reject gracefully (and be rebuilt from
  // raw), not die in std::bad_alloc.
  constexpr uint64_t kHeaderBytes = sizeof(kMagic) + sizeof(VertexId) +
                                    sizeof(uint64_t) + sizeof(uint8_t) +
                                    5 * sizeof(uint64_t);
  std::error_code size_ec;
  const auto file_size = std::filesystem::file_size(path, size_ec);
  const uint64_t expect_payload =
      (static_cast<uint64_t>(n) + 1) * sizeof(uint64_t) +
      2 * m * sizeof(VertexId);
  if (size_ec || payload_bytes != file_size - kHeaderBytes ||
      m > file_size / (2 * sizeof(VertexId)) ||
      payload_bytes != expect_payload) {
    std::cerr << "LoadGraphCache: header/payload size mismatch in " << path
              << '\n';
    return std::nullopt;
  }
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1);
  std::vector<VertexId> adjacency(static_cast<size_t>(2 * m));
  if (!ReadVec(in, &offsets) || !ReadVec(in, &adjacency)) {
    std::cerr << "LoadGraphCache: truncated payload in " << path << '\n';
    return std::nullopt;
  }
  Fnv1a64 checksum;
  checksum.Update(offsets.data(), offsets.size());
  checksum.Update(adjacency.data(), adjacency.size());
  if (checksum.Digest() != stored_checksum) {
    std::cerr << "LoadGraphCache: payload checksum mismatch in " << path
              << " (corrupt cache; delete it and re-convert)" << '\n';
    return std::nullopt;
  }
  if (!ValidCsr(offsets, adjacency)) {
    std::cerr << "LoadGraphCache: payload is not a valid CSR in " << path
              << '\n';
    return std::nullopt;
  }
  if (info != nullptr) *info = header;
  // ValidCsr just proved every FromCsr invariant; adopt without a second
  // O(|V| + |E|) CHECK pass.
  return Graph::AdoptCsr(std::move(offsets), std::move(adjacency));
}

std::optional<Graph> Graph::LoadCached(const std::string& path) {
  return LoadGraphCache(path);
}

std::optional<Graph> LoadOrConvertDataset(const std::string& raw_path,
                                          const std::string& cache_path,
                                          DatasetCacheInfo* info) {
  std::error_code ec;
  // Size of the raw file currently on disk (0 when absent): compared with
  // the size recorded at conversion, so a re-downloaded/replaced raw file
  // triggers a rebuild instead of serving the stale cache forever.
  uint64_t raw_bytes_on_disk = 0;
  if (std::filesystem::exists(raw_path, ec)) {
    raw_bytes_on_disk = std::filesystem::file_size(raw_path, ec);
    if (ec) raw_bytes_on_disk = 0;
  }
  if (std::filesystem::exists(cache_path, ec)) {
    DatasetCacheInfo cached_info;
    auto cached = LoadGraphCache(cache_path, &cached_info);
    if (cached.has_value()) {
      if (raw_bytes_on_disk == 0 ||
          cached_info.raw_file_bytes == raw_bytes_on_disk) {
        if (info != nullptr) *info = cached_info;
        return cached;
      }
      std::cerr << "LoadOrConvertDataset: " << raw_path << " changed since "
                << cache_path << " was built; re-converting" << '\n';
    } else {
      std::cerr << "LoadOrConvertDataset: rebuilding rejected cache "
                << cache_path << " from " << raw_path << '\n';
    }
  }
  auto raw = ReadEdgeListAuto(raw_path);
  if (!raw.has_value()) return std::nullopt;

  DatasetCacheInfo built;
  built.raw_vertices = raw->NumVertices();
  built.raw_edges = raw->NumEdges();
  built.raw_file_bytes = raw_bytes_on_disk;
  Graph g;
  // One component pass decides connectivity AND feeds the extraction, so
  // the (typical) disconnected SNAP graph is traversed once, not twice.
  const ComponentInfo components = ConnectedComponents(*raw);
  if (components.num_components <= 1) {
    g = std::move(*raw);
  } else {
    built.largest_cc_extracted = true;
    g = LargestComponent(*raw, components).graph;
  }
  // A failed cache write is only a lost amortization, not a lost graph.
  if (!SaveGraphCache(g, built, cache_path)) {
    std::cerr << "LoadOrConvertDataset: could not write cache " << cache_path
              << " (continuing with the in-memory graph)" << '\n';
  }
  if (info != nullptr) *info = built;
  return g;
}

}  // namespace qbs

#include "graph/bfs.h"

#include <algorithm>

#include "util/check.h"

namespace qbs {

std::vector<uint32_t> BfsDistances(const Graph& g, VertexId source) {
  return BfsDistancesBounded(g, source, kUnreachable - 1);
}

std::vector<uint32_t> BfsDistancesBounded(const Graph& g, VertexId source,
                                          uint32_t max_depth) {
  QBS_CHECK_LT(source, g.NumVertices());
  std::vector<uint32_t> dist(g.NumVertices(), kUnreachable);
  std::vector<VertexId> queue;
  queue.reserve(256);
  dist[source] = 0;
  queue.push_back(source);
  size_t head = 0;
  while (head < queue.size()) {
    const VertexId u = queue[head++];
    const uint32_t du = dist[u];
    if (du >= max_depth) continue;
    for (VertexId w : g.Neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = du + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

uint32_t BiBfsDistance(const Graph& g, VertexId u, VertexId v) {
  QBS_CHECK_LT(u, g.NumVertices());
  QBS_CHECK_LT(v, g.NumVertices());
  if (u == v) return 0;

  // side 0 = from u, side 1 = from v.
  std::vector<uint32_t> dist[2] = {
      std::vector<uint32_t>(g.NumVertices(), kUnreachable),
      std::vector<uint32_t>(g.NumVertices(), kUnreachable)};
  std::vector<VertexId> frontier[2] = {{u}, {v}};
  dist[0][u] = 0;
  dist[1][v] = 0;
  uint32_t depth[2] = {0, 0};

  while (!frontier[0].empty() && !frontier[1].empty()) {
    // Expand the side whose frontier has the smaller total degree.
    uint64_t vol[2] = {0, 0};
    for (int s = 0; s < 2; ++s) {
      for (VertexId x : frontier[s]) vol[s] += g.Degree(x);
    }
    const int s = vol[0] <= vol[1] ? 0 : 1;
    const int o = 1 - s;

    // Scan the whole level before concluding: the first crossing edge found
    // is not necessarily on a shortest path, but the minimum over the level
    // is (any path of length <= depth[s]+1+depth[o] crosses from this
    // frontier into a vertex already settled by the other side).
    uint32_t best = kUnreachable;
    std::vector<VertexId> next;
    for (VertexId x : frontier[s]) {
      for (VertexId w : g.Neighbors(x)) {
        if (dist[o][w] != kUnreachable) {
          best = std::min(best, depth[s] + 1 + dist[o][w]);
        }
        if (dist[s][w] == kUnreachable) {
          dist[s][w] = depth[s] + 1;
          next.push_back(w);
        }
      }
    }
    if (best != kUnreachable) return best;
    ++depth[s];
    frontier[s] = std::move(next);
  }
  return kUnreachable;
}

uint32_t Eccentricity(const Graph& g, VertexId source) {
  const auto dist = BfsDistances(g, source);
  uint32_t ecc = 0;
  for (uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

}  // namespace qbs

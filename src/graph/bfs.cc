#include "graph/bfs.h"

#include <algorithm>

#include "graph/frontier.h"
#include "util/check.h"
#include "util/epoch_array.h"

namespace qbs {
namespace {

// Per-thread traversal scratch reused by the free-function wrappers, so
// tight loops of full-graph BFSs (oracle queries, eccentricity sweeps) pay
// no per-call frontier allocation.
FrontierEngine& ThreadEngine() {
  static thread_local FrontierEngine engine;
  return engine;
}

// Scratch for BiBfsDistance: epoch-reset depth maps plus flat frontier
// buffers, so repeated point-to-point probes (the Fig. 7 workload tooling)
// touch O(traversed) state per call instead of O(|V|).
struct BiBfsScratch {
  EpochArray<uint32_t> depth[2];
  std::vector<VertexId> frontier[2], next;
};

BiBfsScratch& ThreadBiBfsScratch() {
  static thread_local BiBfsScratch scratch;
  return scratch;
}

}  // namespace

std::vector<uint32_t> BfsDistances(const Graph& g, VertexId source) {
  return BfsDistancesBounded(g, source, kUnreachable - 1);
}

std::vector<uint32_t> BfsDistancesBounded(const Graph& g, VertexId source,
                                          uint32_t max_depth) {
  std::vector<uint32_t> dist;
  ThreadEngine().Distances(g, source, max_depth, &dist);
  return dist;
}

uint32_t BiBfsDistance(const Graph& g, VertexId u, VertexId v) {
  QBS_CHECK_LT(u, g.NumVertices());
  QBS_CHECK_LT(v, g.NumVertices());
  if (u == v) return 0;

  BiBfsScratch& s = ThreadBiBfsScratch();
  for (int side = 0; side < 2; ++side) {
    if (s.depth[side].size() != g.NumVertices()) {
      s.depth[side].Resize(g.NumVertices(), kUnreachable);
    } else {
      s.depth[side].Reset();
    }
    s.frontier[side].clear();
  }

  // side 0 = from u, side 1 = from v.
  s.depth[0].Set(u, 0);
  s.depth[1].Set(v, 0);
  s.frontier[0].push_back(u);
  s.frontier[1].push_back(v);
  uint32_t depth[2] = {0, 0};
  uint64_t vol[2] = {g.Degree(u), g.Degree(v)};

  while (!s.frontier[0].empty() && !s.frontier[1].empty()) {
    // Expand the side whose frontier has the smaller total degree.
    const int t = vol[0] <= vol[1] ? 0 : 1;
    const int o = 1 - t;

    // Scan the whole level before concluding: the first crossing edge found
    // is not necessarily on a shortest path, but the minimum over the level
    // is (any path of length <= depth[t]+1+depth[o] crosses from this
    // frontier into a vertex already settled by the other side).
    uint32_t best = kUnreachable;
    s.next.clear();
    uint64_t next_vol = 0;
    for (VertexId x : s.frontier[t]) {
      for (VertexId w : g.Neighbors(x)) {
        if (s.depth[o].IsSet(w)) {
          best = std::min(best, depth[t] + 1 + s.depth[o].Get(w));
        }
        if (!s.depth[t].IsSet(w)) {
          s.depth[t].Set(w, depth[t] + 1);
          s.next.push_back(w);
          next_vol += g.Degree(w);
        }
      }
    }
    if (best != kUnreachable) return best;
    ++depth[t];
    vol[t] = next_vol;
    std::swap(s.frontier[t], s.next);
  }
  return kUnreachable;
}

uint32_t Eccentricity(const Graph& g, VertexId source) {
  const auto dist = BfsDistances(g, source);
  uint32_t ecc = 0;
  for (uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

}  // namespace qbs

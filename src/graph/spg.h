// The answer type of a shortest-path-graph query (Definition 2.2): the
// subgraph containing exactly all shortest paths between two vertices,
// plus analysis helpers (path counting, critical vertices/edges) used by the
// applications the paper motivates in §1 (rerouting, network interdiction,
// common links).

#ifndef QBS_GRAPH_SPG_H_
#define QBS_GRAPH_SPG_H_

#include <cstdint>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"

namespace qbs {

// A shortest path graph between `u` and `v`. Edges are stored normalized
// (smaller endpoint first), sorted, and unique, so two results can be
// compared with operator==.
struct ShortestPathGraph {
  VertexId u = 0;
  VertexId v = 0;
  // d_G(u, v); kUnreachable when u and v are disconnected.
  uint32_t distance = kUnreachable;
  std::vector<Edge> edges;

  bool Connected() const { return distance != kUnreachable; }

  // Sorts and dedupes `edges`. Producers call this once before returning.
  void Normalize();

  // Sorted unique vertices of the SPG. Includes u (== v) for the trivial
  // distance-0 query; empty if disconnected.
  std::vector<VertexId> Vertices() const;

  // Number of distinct shortest paths between u and v, saturating at
  // UINT64_MAX. 1 for u == v, 0 if disconnected.
  uint64_t CountShortestPaths() const;

  // Vertices (excluding u and v) that lie on *every* shortest path.
  // Removing any of them destroys all shortest paths between u and v —
  // the Shortest Path Network Interdiction primitive (§1).
  std::vector<VertexId> CriticalVertices() const;

  // Edges that lie on every shortest path (the Shortest Path Common Links
  // problem, §1).
  std::vector<Edge> CriticalEdges() const;

  friend bool operator==(const ShortestPathGraph& a,
                         const ShortestPathGraph& b) {
    return a.u == b.u && a.v == b.v && a.distance == b.distance &&
           a.edges == b.edges;
  }
};

}  // namespace qbs

#endif  // QBS_GRAPH_SPG_H_

// Immutable CSR (compressed sparse row) representation of an unweighted,
// undirected, simple graph. This is the substrate every index and search in
// the library operates on.
//
// Vertex ids are dense integers [0, NumVertices()). Adjacency lists are
// sorted ascending, self-loops and parallel edges are removed at build time,
// and every undirected edge {u, v} is stored in both lists (as the paper's
// Table 1 does when it reports |G| with "each edge appearing in the
// adjacency lists").

#ifndef QBS_GRAPH_GRAPH_H_
#define QBS_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace qbs {

using VertexId = uint32_t;

class Graph;
struct DatasetCacheInfo;
/// Declared here so the cache loader (graph/dataset_io.h, where the full
/// contract lives) can be befriended for checksum-validated CSR adoption.
std::optional<Graph> LoadGraphCache(const std::string& path,
                                    DatasetCacheInfo* info);

/// An undirected edge. Normalized() orders the endpoints so edge sets can be
/// compared with std::sort + std::unique.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  Edge() = default;
  Edge(VertexId a, VertexId b) : u(a), v(b) {}

  Edge Normalized() const { return u <= v ? Edge(u, v) : Edge(v, u); }

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
};

class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Builds a graph with `num_vertices` vertices from an arbitrary edge list.
  /// Self-loops are dropped; duplicate edges (in either orientation) are
  /// merged. Endpoints must be < num_vertices.
  static Graph FromEdges(VertexId num_vertices, std::vector<Edge> edges);

  /// Adopts already-built CSR arrays verbatim (no normalization). The arrays
  /// must satisfy every Graph invariant — offsets monotone with
  /// offsets[0] == 0 and offsets.back() == adjacency.size(), each adjacency
  /// slice sorted strictly ascending with in-range non-self entries —
  /// which is CHECK-enforced. This is the bit-identical path the dataset
  /// cache loader uses; everything else should go through FromEdges.
  static Graph FromCsr(std::vector<uint64_t> offsets,
                       std::vector<VertexId> adjacency);

  /// Loads a graph from a QBSGRF01 binary cache file written by
  /// SaveGraphCache (graph/dataset_io.h). Returns std::nullopt on I/O
  /// errors, bad magic, or a payload checksum mismatch.
  static std::optional<Graph> LoadCached(const std::string& path);

  /// Number of vertices; valid ids are [0, NumVertices()).
  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges (each {u, v} counted once).
  uint64_t NumEdges() const { return adjacency_.size() / 2; }

  /// Number of neighbours of v (the undirected degree).
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted ascending adjacency list of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// True iff the undirected edge {u, v} exists. O(log deg(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Largest degree over all vertices (0 for the empty graph).
  uint32_t MaxDegree() const;
  /// 2|E| / |V| — both directions counted, as Table 1's "avg. deg" does.
  double AverageDegree() const;

  /// All undirected edges, each once, normalized and sorted.
  std::vector<Edge> EdgeList() const;

  /// Bytes of the adjacency structure (offsets + adjacency), the quantity the
  /// paper's Table 1 reports as |G|.
  uint64_t SizeBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           adjacency_.size() * sizeof(VertexId);
  }

  /// Raw CSR arrays, exposed for binary persistence (graph/dataset_io.h)
  /// and bit-identity tests. offsets has NumVertices()+1 entries; adjacency
  /// holds both directions of every undirected edge.
  std::span<const uint64_t> RawOffsets() const { return offsets_; }
  std::span<const VertexId> RawAdjacency() const { return adjacency_; }

 private:
  /// FromCsr without the invariant CHECKs. Reserved for the cache loader,
  /// which just ran the equivalent graceful validation on the same arrays
  /// (a second O(|V| + |E|) pass per load would cancel much of the cache's
  /// point on billion-edge graphs).
  static Graph AdoptCsr(std::vector<uint64_t> offsets,
                        std::vector<VertexId> adjacency);
  friend std::optional<Graph> LoadGraphCache(const std::string& path,
                                             DatasetCacheInfo* info);

  /// CSR arrays: neighbors of v are adjacency_[offsets_[v] .. offsets_[v+1]).
  std::vector<uint64_t> offsets_;
  std::vector<VertexId> adjacency_;
};

}  // namespace qbs

#endif  // QBS_GRAPH_GRAPH_H_

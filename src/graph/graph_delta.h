// Edit scripts against an immutable CSR Graph.
//
// The Graph class is deliberately immutable (every index and search hot
// path leans on its packed, sorted CSR arrays), so dynamism enters through
// a batch layer instead of per-edge mutation: callers record an ordered
// script of edge insertions and deletions in a GraphDelta, the net effect
// against a concrete base graph is computed with set semantics
// (ComputeNetChanges), and a fresh CSR is materialized once per batch
// (ApplyNetChanges). QbsIndex::ApplyUpdates drives this to repair its
// labelling incrementally — see core/updatable_index.h.
//
// Script semantics (applied in order against the evolving edge set):
//   - inserting an edge that is already present is a no-op (counted);
//   - deleting an edge that is absent is a no-op (counted);
//   - self-loops and out-of-range endpoints are invalid (counted, skipped);
//   - insert-then-delete (or the reverse) of the same edge cancels out.
// The result is the final net insert/delete sets relative to the base
// graph — the only thing index maintenance needs.

#ifndef QBS_GRAPH_GRAPH_DELTA_H_
#define QBS_GRAPH_GRAPH_DELTA_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace qbs {

enum class EdgeOp : uint8_t {
  kInsert = 0,
  kDelete = 1,
};

/// One scripted edit. Endpoints are kept in the order given (normalization
/// happens during net-change computation so wire round trips are faithful).
struct EdgeUpdate {
  EdgeOp op = EdgeOp::kInsert;
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const EdgeUpdate& a, const EdgeUpdate& b) {
    return a.op == b.op && a.u == b.u && a.v == b.v;
  }
};

/// An ordered batch of edge edits. Purely a recording structure — nothing
/// is validated until the delta meets a concrete graph in
/// ComputeNetChanges.
class GraphDelta {
 public:
  GraphDelta() = default;

  void Insert(VertexId u, VertexId v) {
    updates_.push_back({EdgeOp::kInsert, u, v});
  }
  void Delete(VertexId u, VertexId v) {
    updates_.push_back({EdgeOp::kDelete, u, v});
  }
  void Add(const EdgeUpdate& update) { updates_.push_back(update); }

  const std::vector<EdgeUpdate>& updates() const { return updates_; }
  size_t size() const { return updates_.size(); }
  bool empty() const { return updates_.empty(); }
  void Clear() { updates_.clear(); }

 private:
  std::vector<EdgeUpdate> updates_;
};

/// The net effect of a GraphDelta against a base graph: the edges that end
/// up present but weren't (inserts) and absent but were (deletes), both
/// normalized and sorted, plus bookkeeping on script entries that changed
/// nothing.
struct NetChanges {
  std::vector<Edge> inserts;
  std::vector<Edge> deletes;
  /// Inserts of already-present edges / deletes of absent edges, evaluated
  /// in script order against the evolving edge set.
  uint64_t noop_inserts = 0;
  uint64_t noop_deletes = 0;
  /// Self-loops or out-of-range endpoints, skipped.
  uint64_t invalid = 0;

  bool EmptyNet() const { return inserts.empty() && deletes.empty(); }
};

/// Evaluates `delta` in script order against `base` and returns the net
/// insert/delete sets. Never fails: malformed entries are counted in
/// `invalid` and skipped.
NetChanges ComputeNetChanges(const Graph& base, const GraphDelta& delta);

/// Materializes the updated graph: base edges minus `net.deletes` plus
/// `net.inserts`, same vertex count, rebuilt as a packed CSR via
/// Graph::FromEdges. O(|E| log |E|) — batched, not per-edge.
Graph ApplyNetChanges(const Graph& base, const NetChanges& net);

}  // namespace qbs

#endif  // QBS_GRAPH_GRAPH_DELTA_H_

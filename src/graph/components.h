// Connected-component analysis and largest-component extraction.
//
// The paper (§2) assumes connected graphs; the dataset pipeline therefore
// reduces every generated or loaded graph to its largest connected component
// before indexing, exactly as is standard for the SNAP datasets.

#ifndef QBS_GRAPH_COMPONENTS_H_
#define QBS_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace qbs {

struct ComponentInfo {
  // component[v] = id of v's connected component, in [0, num_components).
  std::vector<uint32_t> component;
  uint32_t num_components = 0;
  // sizes[c] = number of vertices in component c.
  std::vector<uint32_t> sizes;
  // Id of a largest component.
  uint32_t largest = 0;
};

// Labels every vertex with its connected component (BFS-based).
ComponentInfo ConnectedComponents(const Graph& g);

// Result of extracting an induced subgraph with relabelled vertices.
struct SubgraphResult {
  Graph graph;
  // to_original[new_id] = vertex id in the source graph.
  std::vector<VertexId> to_original;
};

// Induced subgraph on the largest connected component, vertices relabelled
// to a dense range.
SubgraphResult LargestComponent(const Graph& g);

// As above, reusing an already-computed component labelling of g — callers
// that inspect ConnectedComponents(g) first (e.g. the dataset converter
// deciding whether extraction is needed at all) avoid a second full-graph
// traversal.
SubgraphResult LargestComponent(const Graph& g, const ComponentInfo& info);

// True iff g is connected (or empty).
bool IsConnected(const Graph& g);

}  // namespace qbs

#endif  // QBS_GRAPH_COMPONENTS_H_

// Breadth-first search primitives shared by indexes, baselines, and the
// workload tooling.
//
// The single-source functions run on the direction-optimizing frontier
// engine (graph/frontier.h) with per-thread scratch; callers that want to
// control the traversal mode or reuse buffers explicitly should hold a
// FrontierEngine themselves.

#ifndef QBS_GRAPH_BFS_H_
#define QBS_GRAPH_BFS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace qbs {

// Sentinel distance for unreachable vertices.
inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

// Full single-source BFS. Returns the distance array (kUnreachable for
// vertices not connected to `source`).
std::vector<uint32_t> BfsDistances(const Graph& g, VertexId source);

// Single-source BFS truncated at `max_depth` (inclusive). Vertices farther
// than max_depth keep kUnreachable.
std::vector<uint32_t> BfsDistancesBounded(const Graph& g, VertexId source,
                                          uint32_t max_depth);

// Point-to-point distance via level-synchronous bidirectional BFS, expanding
// the side with the smaller frontier volume (sum of degrees). Returns
// kUnreachable if disconnected. This is the distance kernel of the Bi-BFS
// baseline [Goldberg & Harrelson 2005] and of the workload tooling (Fig. 7).
uint32_t BiBfsDistance(const Graph& g, VertexId u, VertexId v);

// Eccentricity of `source`: max finite BFS distance.
uint32_t Eccentricity(const Graph& g, VertexId source);

}  // namespace qbs

#endif  // QBS_GRAPH_BFS_H_

#include "graph/frontier.h"

#include "util/check.h"

namespace qbs {

void FrontierEngine::Distances(const Graph& g, VertexId source,
                               uint32_t max_depth,
                               std::vector<uint32_t>* dist,
                               TraversalMode mode) {
  QBS_CHECK_LT(source, g.NumVertices());
  const size_t n = g.NumVertices();
  dist->assign(n, kUnreachable);
  stats_ = FrontierStats{};

  cur_.clear();
  next_.clear();
  cur_.push_back(source);
  (*dist)[source] = 0;

  DirOptController dir(policy_, n, g.NumEdges());
  dir.Scout(g.Degree(source));

  uint32_t depth = 0;
  while (!cur_.empty() && depth < max_depth) {
    const uint32_t next_depth = depth + 1;
    next_.clear();

    // A forced mode still runs Step() for its edges-remaining bookkeeping;
    // only the returned direction is overridden.
    bool bottom_up = dir.Step(cur_.size());
    if (mode != TraversalMode::kAuto) {
      bottom_up = mode == TraversalMode::kBottomUp;
    }

    if (bottom_up) {
      // Pull: every unvisited vertex looks for a parent on the frontier and
      // stops at the first hit.
      front_bits_.Resize(n);
      for (VertexId x : cur_) front_bits_.Set(x);
      for (VertexId v = 0; v < n; ++v) {
        if ((*dist)[v] != kUnreachable) continue;
        for (VertexId w : g.Neighbors(v)) {
          ++stats_.edges_scanned;
          if (front_bits_.Test(w)) {
            (*dist)[v] = next_depth;
            next_.push_back(v);
            dir.Scout(g.Degree(v));
            break;
          }
        }
      }
      ++stats_.bottom_up_levels;
    } else {
      // Push: expand the frontier's adjacency.
      for (VertexId x : cur_) {
        stats_.edges_scanned += g.Degree(x);
        for (VertexId w : g.Neighbors(x)) {
          if ((*dist)[w] == kUnreachable) {
            (*dist)[w] = next_depth;
            next_.push_back(w);
            dir.Scout(g.Degree(w));
          }
        }
      }
    }

    std::swap(cur_, next_);
    ++stats_.levels;
    ++depth;
  }
}

}  // namespace qbs

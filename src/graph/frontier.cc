#include "graph/frontier.h"

#include "util/check.h"

namespace qbs {

void FrontierEngine::Distances(const Graph& g, VertexId source,
                               uint32_t max_depth,
                               std::vector<uint32_t>* dist,
                               TraversalMode mode) {
  QBS_CHECK_LT(source, g.NumVertices());
  const size_t n = g.NumVertices();
  dist->assign(n, kUnreachable);
  stats_ = FrontierStats{};

  cur_.clear();
  next_.clear();
  cur_.push_back(source);
  (*dist)[source] = 0;

  // Directed edge endpoints not yet claimed by the traversal; the alpha
  // heuristic compares the frontier's outgoing volume against it.
  uint64_t edges_remaining = 2 * g.NumEdges();
  uint64_t scout_count = g.Degree(source);
  bool bottom_up = false;

  uint32_t depth = 0;
  while (!cur_.empty() && depth < max_depth) {
    const uint32_t next_depth = depth + 1;
    next_.clear();

    if (mode == TraversalMode::kAuto) {
      if (!bottom_up && scout_count > edges_remaining / policy_.alpha) {
        bottom_up = true;
      } else if (bottom_up && cur_.size() < n / policy_.beta) {
        bottom_up = false;
      }
    } else {
      bottom_up = mode == TraversalMode::kBottomUp;
    }

    edges_remaining -= scout_count;
    scout_count = 0;

    if (bottom_up) {
      // Pull: every unvisited vertex looks for a parent on the frontier and
      // stops at the first hit.
      front_bits_.Resize(n);
      for (VertexId x : cur_) front_bits_.Set(x);
      for (VertexId v = 0; v < n; ++v) {
        if ((*dist)[v] != kUnreachable) continue;
        for (VertexId w : g.Neighbors(v)) {
          ++stats_.edges_scanned;
          if (front_bits_.Test(w)) {
            (*dist)[v] = next_depth;
            next_.push_back(v);
            scout_count += g.Degree(v);
            break;
          }
        }
      }
      ++stats_.bottom_up_levels;
    } else {
      // Push: expand the frontier's adjacency.
      for (VertexId x : cur_) {
        stats_.edges_scanned += g.Degree(x);
        for (VertexId w : g.Neighbors(x)) {
          if ((*dist)[w] == kUnreachable) {
            (*dist)[w] = next_depth;
            next_.push_back(w);
            scout_count += g.Degree(w);
          }
        }
      }
    }

    std::swap(cur_, next_);
    ++stats_.levels;
    ++depth;
  }
}

}  // namespace qbs

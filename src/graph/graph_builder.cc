#include "graph/graph_builder.h"

#include <utility>

namespace qbs {

Graph GraphBuilder::Build() {
  Graph g = Graph::FromEdges(num_vertices_, std::move(edges_));
  edges_.clear();
  num_vertices_ = 0;
  return g;
}

}  // namespace qbs

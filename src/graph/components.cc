#include "graph/components.h"

#include <algorithm>

#include "util/check.h"

namespace qbs {

ComponentInfo ConnectedComponents(const Graph& g) {
  ComponentInfo info;
  const VertexId n = g.NumVertices();
  info.component.assign(n, UINT32_MAX);
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (info.component[start] != UINT32_MAX) continue;
    const uint32_t c = info.num_components++;
    uint32_t size = 0;
    queue.clear();
    queue.push_back(start);
    info.component[start] = c;
    size_t head = 0;
    while (head < queue.size()) {
      const VertexId u = queue[head++];
      ++size;
      for (VertexId w : g.Neighbors(u)) {
        if (info.component[w] == UINT32_MAX) {
          info.component[w] = c;
          queue.push_back(w);
        }
      }
    }
    info.sizes.push_back(size);
  }
  if (info.num_components > 0) {
    info.largest = static_cast<uint32_t>(
        std::max_element(info.sizes.begin(), info.sizes.end()) -
        info.sizes.begin());
  }
  return info;
}

SubgraphResult LargestComponent(const Graph& g) {
  if (g.NumVertices() == 0) return {};
  return LargestComponent(g, ConnectedComponents(g));
}

SubgraphResult LargestComponent(const Graph& g, const ComponentInfo& info) {
  SubgraphResult result;
  if (g.NumVertices() == 0) return result;
  QBS_CHECK_EQ(info.component.size(), g.NumVertices());

  std::vector<VertexId> to_new(g.NumVertices(), UINT32_MAX);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (info.component[v] == info.largest) {
      to_new[v] = static_cast<VertexId>(result.to_original.size());
      result.to_original.push_back(v);
    }
  }
  std::vector<Edge> edges;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (to_new[v] == UINT32_MAX) continue;
    for (VertexId w : g.Neighbors(v)) {
      if (v < w && to_new[w] != UINT32_MAX) {
        edges.emplace_back(to_new[v], to_new[w]);
      }
    }
  }
  result.graph = Graph::FromEdges(
      static_cast<VertexId>(result.to_original.size()), std::move(edges));
  return result;
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  return ConnectedComponents(g).num_components == 1;
}

}  // namespace qbs

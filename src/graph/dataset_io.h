// Real-dataset ingestion: raw SNAP/LAW edge lists -> a versioned binary
// graph cache that amortizes parsing and largest-CC extraction across runs.
//
// Cache format QBSGRF01 (little-endian, host-endianness — a single-machine
// artifact like the index files):
//   u64  magic 'QBSGRF01'
//   u32  num_vertices n
//   u64  num_undirected_edges m
//   u8   largest_cc_extracted        (1 = the payload is the largest
//                                     connected component of the raw file,
//                                     vertices relabelled dense)
//   u64  raw_vertices, raw_edges     (the raw file's counts before
//                                     extraction; == n, m when the raw
//                                     graph was already connected)
//   u64  raw_file_bytes              (on-disk size of the raw file the
//                                     cache was converted from; 0 = unknown)
//   u64  payload_bytes
//   u64  payload_checksum            (FNV-1a 64 over the payload bytes)
//   u64  offsets[n + 1]              -- payload from here
//   u32  adjacency[2 m]
//
// The payload is the Graph's CSR verbatim, so a cache round trip is
// bit-identical: Graph::LoadCached(p) after SaveGraphCache(g, ., p) yields
// exactly g's RawOffsets()/RawAdjacency(). Loads verify the checksum and
// reject corrupt or truncated files.
//
// Raw-side reading goes through ReadEdgeListAuto, which adds transparent
// gzip decompression (".gz" suffix, via zlib when built with it) on top of
// graph/edge_list_io.h. tools/fetch_datasets.py downloads the raw files;
// workload/datasets.h maps paper dataset names onto them.

#ifndef QBS_GRAPH_DATASET_IO_H_
#define QBS_GRAPH_DATASET_IO_H_

#include <cstdint>
#include <optional>
#include <string>

#include "graph/edge_list_io.h"
#include "graph/graph.h"

namespace qbs {

// Provenance recorded in a QBSGRF01 header alongside the CSR payload.
struct DatasetCacheInfo {
  // True when the cached graph is the largest connected component of the
  // raw edge list (vertices relabelled to a dense range), the reduction
  // the paper applies to every dataset.
  bool largest_cc_extracted = false;
  // The raw file's vertex/undirected-edge counts before extraction (after
  // dedup of parallel edges and removal of self-loops). Equal to the
  // cached graph's counts when the raw graph was already connected.
  uint64_t raw_vertices = 0;
  uint64_t raw_edges = 0;
  // On-disk byte size of the raw file the cache was converted from (0 =
  // unknown). LoadOrConvertDataset uses it to detect a re-downloaded /
  // replaced raw file and rebuild the cache instead of serving stale data.
  uint64_t raw_file_bytes = 0;
};

// As ReadEdgeList, but paths ending in ".gz" are decompressed on the fly.
// Built without zlib, ".gz" paths fail with a message (plain paths still
// work). Returns std::nullopt on I/O or parse failure.
std::optional<Graph> ReadEdgeListAuto(const std::string& path,
                                      const EdgeListReadOptions& options = {});

// True when this build can decompress ".gz" edge lists (zlib was found).
bool GzipSupported();

// Writes `g` and its provenance to `path` in QBSGRF01 format. Returns
// false on I/O failure.
bool SaveGraphCache(const Graph& g, const DatasetCacheInfo& info,
                    const std::string& path);

// Reads a QBSGRF01 file. Verifies magic, header sanity, and the payload
// checksum; returns std::nullopt (with a stderr message) on any mismatch.
// On success *info (when non-null) receives the header's provenance.
std::optional<Graph> LoadGraphCache(const std::string& path,
                                    DatasetCacheInfo* info = nullptr);

// The cache-or-convert entry point: loads `cache_path` if it exists and
// verifies, otherwise parses `raw_path` (gz-aware), extracts the largest
// connected component, writes the cache, and returns the graph. A cache
// that fails verification — or whose recorded raw-file size disagrees with
// a raw file currently on disk (a re-download replaced it) — is rebuilt
// from the raw file. Returns std::nullopt when neither source yields a
// graph.
std::optional<Graph> LoadOrConvertDataset(const std::string& raw_path,
                                          const std::string& cache_path,
                                          DatasetCacheInfo* info = nullptr);

}  // namespace qbs

#endif  // QBS_GRAPH_DATASET_IO_H_

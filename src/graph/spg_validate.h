// Independent validation of a ShortestPathGraph against its source graph.
//
// Downstream systems that act on SPG answers (interdiction, rerouting)
// can be safety-critical; this validator re-derives the answer's defining
// properties from scratch in O(|V| + |E|) so results from any producer —
// QbsIndex, Bi-BFS, PPL, or an external system — can be checked before use.

#ifndef QBS_GRAPH_SPG_VALIDATE_H_
#define QBS_GRAPH_SPG_VALIDATE_H_

#include <string>

#include "graph/graph.h"
#include "graph/spg.h"

namespace qbs {

struct SpgValidationResult {
  bool ok = false;
  // Human-readable reason when !ok.
  std::string error;
};

// Checks, by two fresh BFSs over `g`, that `spg` is exactly the shortest
// path graph between its endpoints (Definition 2.2):
//   * spg.distance == d_G(u, v) (kUnreachable allowed iff disconnected);
//   * every edge exists in g and lies on a shortest u-v path;
//   * every edge of g on a shortest u-v path is present;
//   * edges are normalized, sorted, and unique.
SpgValidationResult ValidateShortestPathGraph(const Graph& g,
                                              const ShortestPathGraph& spg);

}  // namespace qbs

#endif  // QBS_GRAPH_SPG_VALIDATE_H_

#include "graph/edge_list_io.h"

#include <cctype>
#include <cstdint>
#include <limits>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "graph/graph_builder.h"

namespace qbs {
namespace {

bool ParseUint64(const char*& p, uint64_t* out) {
  while (*p == ' ' || *p == '\t' || *p == ',') ++p;
  if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  uint64_t value = 0;
  while (std::isdigit(static_cast<unsigned char>(*p))) {
    value = value * 10 + static_cast<uint64_t>(*p - '0');
    ++p;
  }
  *out = value;
  return true;
}

}  // namespace

std::optional<Graph> ReadEdgeListFromLines(
    const std::function<bool(std::string*)>& next_line,
    const EdgeListReadOptions& options, const std::string& origin) {
  GraphBuilder builder;
  std::unordered_map<uint64_t, VertexId> relabel_map;
  auto map_id = [&](uint64_t raw) -> VertexId {
    if (!options.relabel) return static_cast<VertexId>(raw);
    auto [it, inserted] =
        relabel_map.try_emplace(raw, static_cast<VertexId>(relabel_map.size()));
    (void)inserted;
    return it->second;
  };

  std::string line;
  size_t line_no = 0;
  while (next_line(&line)) {
    ++line_no;
    if (line.empty()) continue;
    if (options.comment_prefixes.find(line[0]) != std::string::npos) continue;
    const char* p = line.c_str();
    uint64_t a = 0;
    uint64_t b = 0;
    if (!ParseUint64(p, &a) || !ParseUint64(p, &b)) {
      std::cerr << "ReadEdgeList: parse error at " << origin << ":" << line_no
                << '\n';
      return std::nullopt;
    }
    if (!options.relabel &&
        (a > std::numeric_limits<VertexId>::max() ||
         b > std::numeric_limits<VertexId>::max())) {
      std::cerr << "ReadEdgeList: id overflow at " << origin << ":" << line_no
                << " (enable relabel)" << '\n';
      return std::nullopt;
    }
    // Sequence the lookups: first-appearance relabelling must follow the
    // file's left-to-right order (argument evaluation order is unspecified).
    const VertexId ua = map_id(a);
    const VertexId vb = map_id(b);
    builder.AddEdge(ua, vb);
  }
  return builder.Build();
}

std::optional<Graph> ReadEdgeList(const std::string& path,
                                  const EdgeListReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ReadEdgeList: cannot open " << path << '\n';
    return std::nullopt;
  }
  return ReadEdgeListFromLines(
      [&in](std::string* line) {
        return static_cast<bool>(std::getline(in, *line));
      },
      options, path);
}

bool WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "WriteEdgeList: cannot open " << path << '\n';
    return false;
  }
  out << "# " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (v < w) out << v << " " << w << "\n";
    }
  }
  return static_cast<bool>(out);
}

}  // namespace qbs

// Reading and writing SNAP-style whitespace-separated edge lists.
//
// The paper evaluates on 12 public datasets distributed in this format
// (SNAP, KONECT, LAW, Lemur). This loader lets those real files drop into
// the benchmark harness unchanged; the offline test environment uses the
// synthetic dataset registry instead.

#ifndef QBS_GRAPH_EDGE_LIST_IO_H_
#define QBS_GRAPH_EDGE_LIST_IO_H_

#include <functional>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace qbs {

struct EdgeListReadOptions {
  // Lines starting with any of these characters are skipped.
  std::string comment_prefixes = "#%";
  // If true, arbitrary (possibly sparse, 64-bit) ids in the file are
  // relabelled to a dense [0, n) range in first-appearance order. If false,
  // ids are used verbatim and must fit VertexId.
  bool relabel = true;
  // Directed input is treated as undirected (as the paper does; Table 1's
  // |E_un| column).
};

// Reads an edge list from `path`. Returns std::nullopt on I/O or parse
// failure (a message is written to stderr).
std::optional<Graph> ReadEdgeList(const std::string& path,
                                  const EdgeListReadOptions& options = {});

// Parser core shared by the plain-file and gzip readers
// (graph/dataset_io.h): pulls lines from `next_line` (which returns false
// at end of input) and builds the graph. `origin` names the source in
// diagnostics. Returns std::nullopt on parse failure.
std::optional<Graph> ReadEdgeListFromLines(
    const std::function<bool(std::string*)>& next_line,
    const EdgeListReadOptions& options, const std::string& origin);

// Writes `g` as "u v" lines, one undirected edge per line, preceded by a
// "# vertices edges" comment header. Returns false on I/O failure.
bool WriteEdgeList(const Graph& g, const std::string& path);

}  // namespace qbs

#endif  // QBS_GRAPH_EDGE_LIST_IO_H_

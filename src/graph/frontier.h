// The shared traversal substrate: flat reusable frontier buffers, a dense
// visited bitmap, and Beamer-style direction-optimizing BFS over the CSR.
//
// Every breadth-first hot path in the library (per-landmark labelling
// construction, the BFS/Bi-BFS baselines, the guided search) runs on these
// primitives instead of ad-hoc vector-of-vector frontiers. The two ideas:
//
//  1. Flat frontiers. A BFS level is a contiguous span of a single reusable
//     buffer (LevelStack), so per-level allocation disappears and a "how
//     much did this side traverse" question is a pointer subtraction.
//
//  2. Direction switching [Beamer, Asanović & Patterson, SC'12]. When the
//     frontier's outgoing edge volume grows past a fraction of the
//     unexplored edges (alpha), expanding it top-down would touch most of
//     the graph; switching to a bottom-up sweep — every unvisited vertex
//     scans its neighbours for a frontier parent and stops at the first
//     hit — turns the dense middle levels of a small-diameter network from
//     O(frontier edges) into roughly O(unvisited vertices). When the
//     frontier shrinks below |V| / beta the traversal drops back to
//     top-down. The complex networks the paper targets (Table 1) spend
//     almost all their edges in two or three dense levels, which is why
//     construction (one full BFS per landmark, Fig. 10) is the biggest
//     winner.

#ifndef QBS_GRAPH_FRONTIER_H_
#define QBS_GRAPH_FRONTIER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"

namespace qbs {

// Dense bitset sized to the vertex space. Clear() is O(|V| / 64) — cheap
// enough to run once per bottom-up level, and never on the top-down path.
class Bitmap {
 public:
  void Resize(size_t n) { words_.assign((n + 63) / 64, 0); }
  void Clear() { std::fill(words_.begin(), words_.end(), 0ull); }

  void Set(size_t i) { words_[i >> 6] |= 1ull << (i & 63); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }

 private:
  std::vector<uint64_t> words_;
};

// Per-level items stored back-to-back in one buffer. BeginLevel() opens a
// new level; Push() appends to it. Iterate a level by index (LevelBegin /
// LevelEnd + At) when pushing into the next level of the same buffer,
// since Push may reallocate it.
template <typename T>
class LevelBuffer {
 public:
  void Clear() {
    items_.clear();
    offsets_.clear();
  }
  void BeginLevel() { offsets_.push_back(items_.size()); }
  void Push(const T& item) { items_.push_back(item); }

  size_t NumLevels() const { return offsets_.size(); }
  size_t LevelBegin(size_t level) const { return offsets_[level]; }
  size_t LevelEnd(size_t level) const {
    return level + 1 < offsets_.size() ? offsets_[level + 1] : items_.size();
  }
  size_t LevelSize(size_t level) const {
    return LevelEnd(level) - LevelBegin(level);
  }
  const T& At(size_t index) const { return items_[index]; }

  // Stable only until the next Push into this buffer.
  std::span<const T> Level(size_t level) const {
    return {items_.data() + LevelBegin(level),
            items_.data() + LevelEnd(level)};
  }

  // Total items across all levels — the "traversed so far" volume.
  size_t TotalSize() const { return items_.size(); }

 private:
  std::vector<T> items_;
  std::vector<size_t> offsets_;
};

// BFS levels: one contiguous span of vertices per level.
using LevelStack = LevelBuffer<VertexId>;

// Scratch for repeated rooted traversals that cannot direction-switch
// because every visit runs a per-vertex pruning decision (the PPL-family
// pruned BFS): a depth map plus the flat visit queue. The queue doubles as
// the touched list, so the reset between roots is O(visited), not O(|V|).
struct RootedBfsScratch {
  std::vector<uint32_t> depth;  // kUnreachable = unvisited
  std::vector<VertexId> queue;

  void Prepare(VertexId n) {
    depth.assign(n, kUnreachable);
    queue.clear();
    queue.reserve(n);
  }

  void ResetVisited() {
    for (VertexId v : queue) depth[v] = kUnreachable;
    queue.clear();
  }
};

// Direction-switching thresholds. The defaults are the conventional GAP /
// Beamer constants; the equivalence tests and the ablation bench override
// the mode outright instead of tuning these.
struct DirOptPolicy {
  // Go bottom-up when frontier edge volume > unexplored edges / alpha.
  uint32_t alpha = 15;
  // Return top-down when the frontier holds fewer than |V| / beta vertices.
  uint32_t beta = 18;
};

// The Beamer alpha/beta hysteresis itself, factored out of the traversals
// that share it (FrontierEngine and the per-landmark labelling BFS): the
// caller scouts the out-degree of every vertex it settles, and Step()
// consumes the scouted volume to pick the next level's direction.
class DirOptController {
 public:
  // `num_undirected_edges` = |E|; the unexplored-volume budget is the 2|E|
  // directed endpoints. Seed the root's degree via Scout() before the first
  // Step().
  DirOptController(const DirOptPolicy& policy, size_t num_vertices,
                   uint64_t num_undirected_edges)
      : policy_(policy),
        num_vertices_(num_vertices),
        edges_remaining_(2 * num_undirected_edges) {}

  // Accounts the out-degree of a newly settled vertex: the volume the
  // frontier would scan if the next level ran top-down.
  void Scout(uint64_t degree) { scout_count_ += degree; }

  // Picks the direction for the next level given the current frontier
  // size, consuming the scouted volume. Call exactly once per level.
  bool Step(size_t frontier_size) {
    if (!bottom_up_ &&
        scout_count_ > edges_remaining_ / policy_.alpha) {
      bottom_up_ = true;
    } else if (bottom_up_ && frontier_size < num_vertices_ / policy_.beta) {
      bottom_up_ = false;
    }
    edges_remaining_ -= scout_count_;
    scout_count_ = 0;
    return bottom_up_;
  }

 private:
  DirOptPolicy policy_;
  size_t num_vertices_;
  uint64_t edges_remaining_;
  uint64_t scout_count_ = 0;
  bool bottom_up_ = false;
};

enum class TraversalMode {
  kAuto,      // direction-optimizing (the default everywhere)
  kTopDown,   // classic level-synchronous push
  kBottomUp,  // pull every level (test/ablation only; slow on purpose)
};

struct FrontierStats {
  uint32_t levels = 0;
  uint32_t bottom_up_levels = 0;
  uint64_t edges_scanned = 0;
};

// Reusable scratch + driver for single-source (optionally depth-bounded)
// BFS distances. Construct once per thread and reuse: buffers are sized on
// first use and only grow. Not thread-safe.
class FrontierEngine {
 public:
  // Fills dist (resized to |V|, kUnreachable where not reached) with BFS
  // distances from `source`, truncated at `max_depth` (inclusive).
  void Distances(const Graph& g, VertexId source, uint32_t max_depth,
                 std::vector<uint32_t>* dist,
                 TraversalMode mode = TraversalMode::kAuto);

  const FrontierStats& stats() const { return stats_; }
  const DirOptPolicy& policy() const { return policy_; }
  void set_policy(const DirOptPolicy& policy) { policy_ = policy; }

 private:
  DirOptPolicy policy_;
  FrontierStats stats_;
  std::vector<VertexId> cur_, next_;
  Bitmap front_bits_;
};

}  // namespace qbs

#endif  // QBS_GRAPH_FRONTIER_H_

#include "graph/graph_delta.h"

#include <algorithm>
#include <map>

namespace qbs {

NetChanges ComputeNetChanges(const Graph& base, const GraphDelta& delta) {
  NetChanges net;
  const VertexId n = base.NumVertices();
  // Presence of every touched (normalized) edge relative to the evolving
  // edge set; untouched edges keep their base presence. A map keeps the
  // evaluation O(k log k) in the script length k, independent of |E|.
  std::map<Edge, bool> touched;
  for (const EdgeUpdate& upd : delta.updates()) {
    if (upd.u == upd.v || upd.u >= n || upd.v >= n) {
      ++net.invalid;
      continue;
    }
    const Edge e = Edge(upd.u, upd.v).Normalized();
    auto it = touched.find(e);
    const bool present =
        it != touched.end() ? it->second : base.HasEdge(e.u, e.v);
    if (upd.op == EdgeOp::kInsert) {
      if (present) {
        ++net.noop_inserts;
      } else {
        touched[e] = true;
      }
    } else {
      if (!present) {
        ++net.noop_deletes;
      } else {
        touched[e] = false;
      }
    }
  }
  for (const auto& [e, present] : touched) {
    const bool in_base = base.HasEdge(e.u, e.v);
    if (present && !in_base) net.inserts.push_back(e);
    if (!present && in_base) net.deletes.push_back(e);
  }
  // std::map iteration is already sorted; keep the contract explicit.
  std::sort(net.inserts.begin(), net.inserts.end());
  std::sort(net.deletes.begin(), net.deletes.end());
  return net;
}

Graph ApplyNetChanges(const Graph& base, const NetChanges& net) {
  std::vector<Edge> edges = base.EdgeList();
  if (!net.deletes.empty()) {
    // Both lists are normalized + sorted, so one merge pass filters the
    // deletions out.
    std::vector<Edge> kept;
    kept.reserve(edges.size());
    auto del = net.deletes.begin();
    for (const Edge& e : edges) {
      while (del != net.deletes.end() && *del < e) ++del;
      if (del != net.deletes.end() && *del == e) continue;
      kept.push_back(e);
    }
    edges = std::move(kept);
  }
  edges.insert(edges.end(), net.inserts.begin(), net.inserts.end());
  return Graph::FromEdges(base.NumVertices(), std::move(edges));
}

}  // namespace qbs

#include "graph/spg.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/check.h"

namespace qbs {
namespace {

// Saturating 64-bit multiply / add for path counting: shortest path counts
// grow exponentially in dense SPGs and exact values beyond 2^64 are not
// needed by any caller.
uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > std::numeric_limits<uint64_t>::max() - b
             ? std::numeric_limits<uint64_t>::max()
             : a + b;
}
uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<uint64_t>::max() / b) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

// Local view of the SPG with dense vertex ids, BFS levels from `u`, and
// per-vertex shortest path counts from both endpoints.
struct SpgAnalysis {
  std::vector<VertexId> vertices;              // local -> original id
  std::unordered_map<VertexId, uint32_t> id;   // original -> local id
  std::vector<std::vector<uint32_t>> adj;      // local adjacency
  std::vector<uint32_t> level;                 // BFS level from u
  std::vector<uint64_t> from_u;                // #paths u -> w
  std::vector<uint64_t> from_v;                // #paths w -> v
  uint64_t total = 0;                          // #paths u -> v
  bool valid = false;
};

SpgAnalysis Analyze(const ShortestPathGraph& spg) {
  SpgAnalysis a;
  if (!spg.Connected()) return a;
  a.vertices = spg.Vertices();
  for (uint32_t i = 0; i < a.vertices.size(); ++i) a.id[a.vertices[i]] = i;
  a.adj.resize(a.vertices.size());
  for (const Edge& e : spg.edges) {
    const uint32_t x = a.id.at(e.u);
    const uint32_t y = a.id.at(e.v);
    a.adj[x].push_back(y);
    a.adj[y].push_back(x);
  }

  const uint32_t n = static_cast<uint32_t>(a.vertices.size());
  const uint32_t src = a.id.at(spg.u);
  const uint32_t dst = a.id.at(spg.v);
  a.level.assign(n, kUnreachable);
  a.from_u.assign(n, 0);
  a.from_v.assign(n, 0);
  a.level[src] = 0;
  a.from_u[src] = 1;
  std::vector<uint32_t> order{src};
  for (size_t head = 0; head < order.size(); ++head) {
    const uint32_t x = order[head];
    for (uint32_t y : a.adj[x]) {
      if (a.level[y] == kUnreachable) {
        a.level[y] = a.level[x] + 1;
        order.push_back(y);
      }
      if (a.level[y] == a.level[x] + 1) {
        a.from_u[y] = SatAdd(a.from_u[y], a.from_u[x]);
      }
    }
  }
  if (a.level[dst] != spg.distance) {
    // An SPG must realize d(u, v) inside itself; if not, the input edge set
    // is not a valid SPG and counting is meaningless.
    return a;
  }
  // Backward counts, processing vertices by decreasing level.
  std::vector<uint32_t> by_level(order.rbegin(), order.rend());
  a.from_v[dst] = 1;
  for (uint32_t x : by_level) {
    if (x == dst) continue;
    for (uint32_t y : a.adj[x]) {
      if (a.level[y] == a.level[x] + 1) {
        a.from_v[x] = SatAdd(a.from_v[x], a.from_v[y]);
      }
    }
  }
  a.total = a.from_u[dst];
  a.valid = true;
  return a;
}

}  // namespace

void ShortestPathGraph::Normalize() {
  for (Edge& e : edges) e = e.Normalized();
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

std::vector<VertexId> ShortestPathGraph::Vertices() const {
  if (!Connected()) return {};
  std::vector<VertexId> vs;
  vs.reserve(edges.size() * 2 + 2);
  vs.push_back(u);
  vs.push_back(v);
  for (const Edge& e : edges) {
    vs.push_back(e.u);
    vs.push_back(e.v);
  }
  std::sort(vs.begin(), vs.end());
  vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
  return vs;
}

uint64_t ShortestPathGraph::CountShortestPaths() const {
  if (!Connected()) return 0;
  if (u == v) return 1;
  const SpgAnalysis a = Analyze(*this);
  return a.valid ? a.total : 0;
}

std::vector<VertexId> ShortestPathGraph::CriticalVertices() const {
  std::vector<VertexId> result;
  if (!Connected() || u == v) return result;
  const SpgAnalysis a = Analyze(*this);
  if (!a.valid) return result;
  for (uint32_t i = 0; i < a.vertices.size(); ++i) {
    const VertexId orig = a.vertices[i];
    if (orig == u || orig == v) continue;
    // Paths through i = (#paths u->i) * (#paths i->v); i is critical iff all
    // shortest paths pass through it. Saturation makes this conservative:
    // saturated counts compare equal only when both saturate, which at
    // UINT64_MAX path counts is an acceptable approximation.
    if (SatMul(a.from_u[i], a.from_v[i]) == a.total) {
      result.push_back(orig);
    }
  }
  return result;
}

std::vector<Edge> ShortestPathGraph::CriticalEdges() const {
  std::vector<Edge> result;
  if (!Connected() || u == v) return result;
  const SpgAnalysis a = Analyze(*this);
  if (!a.valid) return result;
  for (const Edge& e : edges) {
    uint32_t x = a.id.at(e.u);
    uint32_t y = a.id.at(e.v);
    if (a.level[x] > a.level[y]) std::swap(x, y);
    QBS_DCHECK(a.level[y] == a.level[x] + 1);
    if (SatMul(a.from_u[x], a.from_v[y]) == a.total) {
      result.push_back(e);
    }
  }
  return result;
}

}  // namespace qbs

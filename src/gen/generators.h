// Synthetic graph generators.
//
// The paper evaluates on 12 public complex networks (Table 1). In an offline
// environment we substitute generators that reproduce the structural
// properties the QbS results depend on: heavy-tailed degree distributions
// with hub vertices (Barabási–Albert, R-MAT), small diameter, local
// clustering (Watts–Strogatz), and near-uniform degrees (for the
// Friendster-like case where landmarks cover few pairs). Deterministic
// seeds make every experiment reproducible.
//
// All generators return simple undirected graphs (no self-loops, no
// parallel edges). Structured generators (path, cycle, grid, star, complete,
// binary tree) exist mainly for tests with analytically known shortest path
// graphs.

#ifndef QBS_GEN_GENERATORS_H_
#define QBS_GEN_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace qbs {

// G(n, m) Erdős–Rényi: n vertices, `num_edges` distinct uniform random
// edges.
Graph ErdosRenyi(VertexId n, uint64_t num_edges, uint64_t seed);

// Barabási–Albert preferential attachment: starts from a small clique and
// attaches each new vertex to `m` existing vertices chosen proportionally
// to degree. Produces the power-law hubs typical of social/web networks.
// The result is connected.
Graph BarabasiAlbert(VertexId n, uint32_t m, uint64_t seed);

// Watts–Strogatz small-world: ring lattice with k nearest neighbours per
// vertex (k even), each edge rewired with probability beta. Near-uniform
// degrees — the Friendster-like regime where no vertex dominates.
Graph WattsStrogatz(VertexId n, uint32_t k, double beta, uint64_t seed);

// R-MAT / Kronecker-style recursive generator: 2^scale vertices,
// edge_factor * 2^scale sampled edges with quadrant probabilities
// (a, b, c, implied d = 1-a-b-c). Models web crawls with extreme hubs.
// Duplicates collapse, so the final edge count is slightly lower.
Graph RMat(uint32_t scale, uint32_t edge_factor, double a, double b, double c,
           uint64_t seed);

// Deterministic structured graphs.
Graph PathGraph(VertexId n);
Graph CycleGraph(VertexId n);
Graph GridGraph(uint32_t rows, uint32_t cols);
Graph StarGraph(VertexId n);        // vertex 0 is the hub, n >= 1 vertices
Graph CompleteGraph(VertexId n);
Graph CompleteBinaryTree(VertexId n);

}  // namespace qbs

#endif  // QBS_GEN_GENERATORS_H_

#include "gen/generators.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"
#include "util/check.h"
#include "util/rng.h"

namespace qbs {

Graph ErdosRenyi(VertexId n, uint64_t num_edges, uint64_t seed) {
  QBS_CHECK_GE(n, 2u);
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  QBS_CHECK_LE(num_edges, max_edges);
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  GraphBuilder builder(n);
  builder.ReserveEdges(num_edges);
  while (seen.size() < num_edges) {
    const auto u = static_cast<VertexId>(rng.UniformInt(n));
    const auto v = static_cast<VertexId>(rng.UniformInt(n));
    if (u == v) continue;
    const uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32) |
                         static_cast<uint64_t>(std::max(u, v));
    if (seen.insert(key).second) {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph BarabasiAlbert(VertexId n, uint32_t m, uint64_t seed) {
  QBS_CHECK_GE(m, 1u);
  QBS_CHECK_GT(n, m);
  Rng rng(seed);

  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is sampling proportionally to degree (the classic BA trick).
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(static_cast<size_t>(n) * m * 2);
  GraphBuilder builder(n);

  // Seed graph: clique on the first m+1 vertices so every early vertex has
  // degree >= m and the pool is non-degenerate.
  const VertexId seed_size = m + 1;
  for (VertexId i = 0; i < seed_size; ++i) {
    for (VertexId j = i + 1; j < seed_size; ++j) {
      builder.AddEdge(i, j);
      endpoint_pool.push_back(i);
      endpoint_pool.push_back(j);
    }
  }

  std::vector<VertexId> picks;
  for (VertexId v = seed_size; v < n; ++v) {
    picks.clear();
    // Sample m distinct existing vertices by degree.
    while (picks.size() < m) {
      const VertexId t =
          endpoint_pool[rng.UniformInt(endpoint_pool.size())];
      if (std::find(picks.begin(), picks.end(), t) == picks.end()) {
        picks.push_back(t);
      }
    }
    for (VertexId t : picks) {
      builder.AddEdge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return builder.Build();
}

Graph WattsStrogatz(VertexId n, uint32_t k, double beta, uint64_t seed) {
  QBS_CHECK_GE(n, 3u);
  QBS_CHECK_EQ(k % 2, 0u);
  QBS_CHECK_GE(k, 2u);
  QBS_CHECK_LT(k, n);
  Rng rng(seed);

  // Ring lattice edges as (u, u + d mod n) for d in [1, k/2]; each edge's
  // far endpoint is rewired with probability beta.
  std::unordered_set<uint64_t> present;
  auto key = [](VertexId a, VertexId b) {
    return (static_cast<uint64_t>(std::min(a, b)) << 32) |
           static_cast<uint64_t>(std::max(a, b));
  };
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * (k / 2));
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t d = 1; d <= k / 2; ++d) {
      const VertexId v = static_cast<VertexId>((u + d) % n);
      edges.emplace_back(u, v);
      present.insert(key(u, v));
    }
  }
  for (Edge& e : edges) {
    if (!rng.Bernoulli(beta)) continue;
    // Rewire e.v to a uniform vertex avoiding self-loops and duplicates.
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto w = static_cast<VertexId>(rng.UniformInt(n));
      if (w == e.u || present.contains(key(e.u, w))) continue;
      present.erase(key(e.u, e.v));
      present.insert(key(e.u, w));
      e.v = w;
      break;
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph RMat(uint32_t scale, uint32_t edge_factor, double a, double b, double c,
           uint64_t seed) {
  QBS_CHECK_LE(scale, 28u);
  const double d = 1.0 - a - b - c;
  QBS_CHECK_GE(d, 0.0);
  Rng rng(seed);
  const VertexId n = static_cast<VertexId>(1u) << scale;
  const uint64_t target = static_cast<uint64_t>(edge_factor) * n;

  std::vector<Edge> edges;
  edges.reserve(target);
  for (uint64_t i = 0; i < target; ++i) {
    VertexId u = 0;
    VertexId v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.UniformReal();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph PathGraph(VertexId n) {
  QBS_CHECK_GE(n, 1u);
  std::vector<Edge> edges;
  for (VertexId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::FromEdges(n, std::move(edges));
}

Graph CycleGraph(VertexId n) {
  QBS_CHECK_GE(n, 3u);
  std::vector<Edge> edges;
  for (VertexId i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph::FromEdges(n, std::move(edges));
}

Graph GridGraph(uint32_t rows, uint32_t cols) {
  QBS_CHECK_GE(rows, 1u);
  QBS_CHECK_GE(cols, 1u);
  const VertexId n = rows * cols;
  std::vector<Edge> edges;
  auto id = [cols](uint32_t r, uint32_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph StarGraph(VertexId n) {
  QBS_CHECK_GE(n, 1u);
  std::vector<Edge> edges;
  for (VertexId i = 1; i < n; ++i) edges.emplace_back(0, i);
  return Graph::FromEdges(n, std::move(edges));
}

Graph CompleteGraph(VertexId n) {
  QBS_CHECK_GE(n, 1u);
  std::vector<Edge> edges;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph CompleteBinaryTree(VertexId n) {
  QBS_CHECK_GE(n, 1u);
  std::vector<Edge> edges;
  for (VertexId i = 1; i < n; ++i) edges.emplace_back(i, (i - 1) / 2);
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace qbs

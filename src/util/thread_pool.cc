#include "util/thread_pool.h"

#include <atomic>

#include "util/check.h"

namespace qbs {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    QBS_CHECK(!shutdown_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // shutdown_ must be true here.
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

size_t EffectiveThreads(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  return num_threads;
}

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t index, size_t worker)>& fn) {
  if (count == 0) return;
  num_threads = EffectiveThreads(num_threads);
  if (num_threads > count) num_threads = count;
  if (num_threads == 1) {
    for (size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }

  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    threads.emplace_back([&, w] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i, w);
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace qbs

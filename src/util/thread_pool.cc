#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "util/check.h"

namespace qbs {
namespace {

// Identifies the pool (and worker slot) the current thread belongs to, so
// Schedule can push to the local deque and stealing can skip it.
struct TlsWorker {
  ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local TlsWorker tls_worker;

constexpr size_t kNoHome = static_cast<size_t>(-1);

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  wake_.NotifyAll();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  size_t target;
  {
    MutexLock lock(mu_);
    QBS_CHECK(!shutdown_);
    ++queued_;
    ++pending_;
    target = next_queue_++ % queues_.size();
  }
  const bool local =
      tls_worker.pool == this && tls_worker.index < queues_.size();
  if (local) target = tls_worker.index;
  {
    WorkerQueue& queue = *queues_[target];
    MutexLock qlock(queue.mu);
    if (local) {
      queue.tasks.push_front(std::move(task));  // LIFO for owner
    } else {
      queue.tasks.push_back(std::move(task));
    }
  }
  wake_.NotifyOne();
  event_.NotifyAll();
}

bool ThreadPool::PopOrSteal(size_t home, std::function<void()>* task) {
  const size_t n = queues_.size();
  // Own deque first, LIFO: the task most recently pushed here is the
  // cache-warmest.
  if (home != kNoHome) {
    WorkerQueue& queue = *queues_[home];
    MutexLock qlock(queue.mu);
    if (!queue.tasks.empty()) {
      *task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
      return true;
    }
  }
  // Steal FIFO from a victim, scanning from the next slot over.
  for (size_t off = 0; off < n; ++off) {
    const size_t victim = home == kNoHome ? off : (home + 1 + off) % n;
    if (victim == home) continue;
    WorkerQueue& queue = *queues_[victim];
    MutexLock qlock(queue.mu);
    if (!queue.tasks.empty()) {
      *task = std::move(queue.tasks.back());
      queue.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(std::function<void()>* task) {
  {
    MutexLock lock(mu_);
    --queued_;
  }
  (*task)();
  {
    MutexLock lock(mu_);
    --pending_;
  }
  event_.NotifyAll();
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker = TlsWorker{this, index};
  for (;;) {
    std::function<void()> task;
    if (PopOrSteal(index, &task)) {
      RunTask(&task);
      continue;
    }
    MutexLock lock(mu_);
    while (!shutdown_ && queued_ == 0) wake_.Wait(mu_);
    if (shutdown_ && queued_ == 0) return;
  }
}

bool ThreadPool::TryRunOne() {
  const size_t home =
      tls_worker.pool == this ? tls_worker.index : kNoHome;
  std::function<void()> task;
  if (!PopOrSteal(home, &task)) return false;
  RunTask(&task);
  return true;
}

void ThreadPool::HelpWhile(const std::function<bool()>& done) {
  while (!done()) {
    if (TryRunOne()) continue;
    MutexLock lock(mu_);
    // Park until a task is queued or finishes; the deadline re-checks
    // `done` in case its state changed without a pool event.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
    while (queued_ == 0 && !shutdown_) {
      if (!event_.WaitUntil(mu_, deadline)) break;
    }
  }
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) event_.Wait(mu_);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(0);
  return pool;
}

size_t EffectiveThreads(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  return num_threads;
}

void ParallelFor(size_t count, const ParallelForOptions& options,
                 const std::function<void(size_t index, size_t worker)>& fn) {
  if (count == 0) return;
  size_t workers = EffectiveThreads(options.num_threads);
  if (workers > count) workers = count;
  if (workers == 1) {
    for (size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  size_t grain = options.grain;
  if (grain == 0) grain = std::max<size_t>(1, count / (workers * 8));

  std::atomic<size_t> cursor{0};
  std::atomic<size_t> live{workers - 1};
  const auto run = [&cursor, &fn, count, grain](size_t w) {
    for (;;) {
      const size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= count) return;
      const size_t end = std::min(begin + grain, count);
      for (size_t i = begin; i < end; ++i) fn(i, w);
    }
  };

  ThreadPool& pool = ThreadPool::Shared();
  for (size_t w = 1; w < workers; ++w) {
    pool.Schedule([&run, &live, w] {
      run(w);
      live.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  run(0);
  // Keep draining pool tasks while the scheduled participants finish; this
  // also makes nested ParallelFor calls deadlock-free.
  pool.HelpWhile(
      [&live] { return live.load(std::memory_order_acquire) == 0; });
}

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t index, size_t worker)>& fn) {
  ParallelForOptions options;
  options.num_threads = num_threads;
  ParallelFor(count, options, fn);
}

}  // namespace qbs

// Wall-clock timer used by the benchmark harness and index build statistics.

#ifndef QBS_UTIL_TIMER_H_
#define QBS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace qbs {

// Measures elapsed wall-clock time. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  // Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qbs

#endif  // QBS_UTIL_TIMER_H_

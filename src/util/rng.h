// Deterministic pseudo-random number generation.
//
// All randomized components of the library (graph generators, workload
// samplers, landmark selection) take an explicit seed and route through this
// class so that every experiment is reproducible bit-for-bit.

#ifndef QBS_UTIL_RNG_H_
#define QBS_UTIL_RNG_H_

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace qbs {

// SplitMix64-seeded xoshiro256** generator. Small, fast, and with
// well-understood statistical quality; avoids the implementation-defined
// behaviour of std::default_random_engine across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  // Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  // nearly-divisionless technique.
  uint64_t UniformInt(uint64_t bound) {
    QBS_CHECK_GT(bound, 0u);
    unsigned __int128 m =
        static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound);
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(Next()) *
            static_cast<unsigned __int128>(bound);
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    QBS_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform real in [0, 1).
  double UniformReal() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Returns true with probability `p`.
  bool Bernoulli(double p) { return UniformReal() < p; }

  // Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container& c) {
    for (size_t i = c.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace qbs

#endif  // QBS_UTIL_RNG_H_

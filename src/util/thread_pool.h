// A work-stealing thread pool plus a chunked dynamic ParallelFor.
//
// Workers own per-thread deques: a worker pushes and pops its own deque
// LIFO (cache-warm) and steals FIFO from a victim when empty, so skewed
// task costs (one landmark BFS dominating, one heavy query in a batch)
// rebalance automatically instead of serializing behind a FIFO queue.
//
// ParallelFor hands out index chunks of `grain` iterations from a shared
// cursor — dynamic load balancing at chunk granularity — and runs on a
// process-wide shared pool, so repeated batch calls (QueryBatch) pay no
// thread-spawn cost. The calling thread participates as worker 0 and helps
// drain pool tasks while waiting, which makes nested ParallelFor calls
// deadlock-free.

#ifndef QBS_UTIL_THREAD_POOL_H_
#define QBS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qbs {

// Fixed-size pool of workers with per-worker work-stealing deques.
class ThreadPool {
 public:
  // Creates a pool with `num_threads` workers; 0 means
  // std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Blocks until all scheduled tasks finish.
  ~ThreadPool();

  // Schedules `task` for execution on some worker. Called from a pool
  // worker, the task lands on that worker's own deque (LIFO); otherwise it
  // is distributed round-robin.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished. Call from outside the
  // pool only.
  void Wait();

  // Runs pool tasks on the calling thread until `done` returns true,
  // parking when no task is runnable. This is how ParallelFor joins: the
  // caller keeps stealing work instead of blocking, so a ParallelFor
  // issued from inside a pool task cannot deadlock the pool.
  void HelpWhile(const std::function<bool()>& done);

  // Pops or steals one task and runs it. Returns false if every deque was
  // empty.
  bool TryRunOne();

  size_t num_threads() const { return workers_.size(); }

  // Process-wide pool (hardware-concurrency workers, created on first use)
  // backing ParallelFor.
  static ThreadPool& Shared();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t index);
  bool PopOrSteal(size_t home, std::function<void()>* task);
  void RunTask(std::function<void()>* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Guards sleep/wake and completion signalling; counters are read under it
  // in wait predicates.
  std::mutex mu_;
  std::condition_variable wake_;   // workers: new task or shutdown
  std::condition_variable event_;  // waiters: task completed or scheduled
  size_t queued_ = 0;              // tasks sitting in deques
  size_t pending_ = 0;             // scheduled but not yet finished
  size_t next_queue_ = 0;          // round-robin cursor for external pushes
  bool shutdown_ = false;
};

struct ParallelForOptions {
  // 0 = hardware concurrency, 1 = inline on the calling thread, otherwise
  // the exact worker count (worker indices are [0, count)).
  size_t num_threads = 0;
  // Iterations handed out per grab from the shared cursor; 0 picks
  // count / (workers * 8), clamped to >= 1. Smaller grains rebalance skew
  // better, larger grains amortize the cursor more.
  size_t grain = 0;
};

// Runs fn(i, worker_index) for every i in [0, count), distributed over the
// shared pool in dynamically-balanced chunks. `worker_index` is in
// [0, effective_threads) and lets callers keep per-worker scratch state
// (e.g. a reusable BFS depth array); each worker index is used by exactly
// one thread at a time.
//
// Blocks until all iterations complete.
void ParallelFor(size_t count, const ParallelForOptions& options,
                 const std::function<void(size_t index, size_t worker)>& fn);

// Back-compat convenience: ParallelFor with the default grain.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t index, size_t worker)>& fn);

// Effective number of threads ParallelFor would use for the given request.
size_t EffectiveThreads(size_t num_threads);

}  // namespace qbs

#endif  // QBS_UTIL_THREAD_POOL_H_

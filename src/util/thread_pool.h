// A small fixed-size thread pool plus a ParallelFor convenience wrapper.
//
// QbS labelling construction (Algorithm 2) is embarrassingly parallel across
// landmarks (Lemma 5.2: the labelling scheme is deterministic w.r.t. the
// landmark set), so a simple static work distribution suffices.

#ifndef QBS_UTIL_THREAD_POOL_H_
#define QBS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qbs {

// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  // Creates a pool with `num_threads` workers; 0 means
  // std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Blocks until all scheduled tasks finish.
  ~ThreadPool();

  // Schedules `task` for execution on some worker.
  void Schedule(std::function<void()> task);

  // Blocks until the task queue is empty and all workers are idle.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

// Runs fn(i, worker_index) for every i in [0, count), distributed over
// `num_threads` threads (0 = hardware concurrency, 1 = inline on the calling
// thread). `worker_index` is in [0, effective_threads) and lets callers keep
// per-worker scratch state (e.g. a reusable BFS depth array).
//
// Blocks until all iterations complete.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t index, size_t worker)>& fn);

// Effective number of threads ParallelFor would use for the given request.
size_t EffectiveThreads(size_t num_threads);

}  // namespace qbs

#endif  // QBS_UTIL_THREAD_POOL_H_

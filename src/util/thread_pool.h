// A work-stealing thread pool plus a chunked dynamic ParallelFor.
//
// Workers own per-thread deques: a worker pushes and pops its own deque
// LIFO (cache-warm) and steals FIFO from a victim when empty, so skewed
// task costs (one landmark BFS dominating, one heavy query in a batch)
// rebalance automatically instead of serializing behind a FIFO queue.
//
// ParallelFor hands out index chunks of `grain` iterations from a shared
// cursor — dynamic load balancing at chunk granularity — and runs on a
// process-wide shared pool, so repeated batch calls (QueryBatch) pay no
// thread-spawn cost. The calling thread participates as worker 0 and helps
// drain pool tasks while waiting, which makes nested ParallelFor calls
// deadlock-free.

#ifndef QBS_UTIL_THREAD_POOL_H_
#define QBS_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace qbs {

// Fixed-size pool of workers with per-worker work-stealing deques.
class ThreadPool {
 public:
  // Creates a pool with `num_threads` workers; 0 means
  // std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Blocks until all scheduled tasks finish.
  ~ThreadPool();

  // Schedules `task` for execution on some worker. Called from a pool
  // worker, the task lands on that worker's own deque (LIFO); otherwise it
  // is distributed round-robin.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished. Call from outside the
  // pool only.
  void Wait();

  // Runs pool tasks on the calling thread until `done` returns true,
  // parking when no task is runnable. This is how ParallelFor joins: the
  // caller keeps stealing work instead of blocking, so a ParallelFor
  // issued from inside a pool task cannot deadlock the pool.
  void HelpWhile(const std::function<bool()>& done);

  // Pops or steals one task and runs it. Returns false if every deque was
  // empty.
  bool TryRunOne();

  size_t num_threads() const { return workers_.size(); }

  // Process-wide pool (hardware-concurrency workers, created on first use)
  // backing ParallelFor.
  static ThreadPool& Shared();

 private:
  struct WorkerQueue {
    Mutex mu{LockRank::kThreadPoolQueue};
    std::deque<std::function<void()>> tasks QBS_GUARDED_BY(mu);
  };

  void WorkerLoop(size_t index);
  bool PopOrSteal(size_t home, std::function<void()>* task);
  void RunTask(std::function<void()>* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Guards sleep/wake and completion signalling; counters are read under it
  // in wait loops. Pool locks are leaves of the lock order (tasks execute
  // with no pool lock held, and callers — notably ApplyUpdates under the
  // index writer lock — reach Schedule/HelpWhile with lower-ranked locks
  // held), so pool tasks must only acquire ranks above kIndex.
  Mutex mu_{LockRank::kThreadPool};
  CondVar wake_;   // workers: new task or shutdown
  CondVar event_;  // waiters: task completed or scheduled
  size_t queued_ QBS_GUARDED_BY(mu_) = 0;   // tasks sitting in deques
  size_t pending_ QBS_GUARDED_BY(mu_) = 0;  // scheduled but not yet finished
  // Round-robin cursor for external pushes.
  size_t next_queue_ QBS_GUARDED_BY(mu_) = 0;
  bool shutdown_ QBS_GUARDED_BY(mu_) = false;
};

struct ParallelForOptions {
  // 0 = hardware concurrency, 1 = inline on the calling thread, otherwise
  // the exact worker count (worker indices are [0, count)).
  size_t num_threads = 0;
  // Iterations handed out per grab from the shared cursor; 0 picks
  // count / (workers * 8), clamped to >= 1. Smaller grains rebalance skew
  // better, larger grains amortize the cursor more.
  size_t grain = 0;
};

// Runs fn(i, worker_index) for every i in [0, count), distributed over the
// shared pool in dynamically-balanced chunks. `worker_index` is in
// [0, effective_threads) and lets callers keep per-worker scratch state
// (e.g. a reusable BFS depth array); each worker index is used by exactly
// one thread at a time.
//
// Blocks until all iterations complete.
void ParallelFor(size_t count, const ParallelForOptions& options,
                 const std::function<void(size_t index, size_t worker)>& fn);

// Back-compat convenience: ParallelFor with the default grain.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t index, size_t worker)>& fn);

// Effective number of threads ParallelFor would use for the given request.
size_t EffectiveThreads(size_t num_threads);

}  // namespace qbs

#endif  // QBS_UTIL_THREAD_POOL_H_

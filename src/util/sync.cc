#include "util/sync.h"

#include <cstdio>
#include <cstdlib>

namespace qbs::sync_internal {
namespace {

// Per-thread stack of held locks. Fixed capacity: the project's deepest
// legitimate nesting is four (server lifecycle -> index -> cache shard /
// pool -> pool queue); 32 leaves generous headroom for tests.
constexpr int kMaxHeldLocks = 32;

struct HeldLock {
  const void* mu;
  LockRank rank;
};

thread_local HeldLock t_held[kMaxHeldLocks];
thread_local int t_held_count = 0;

[[noreturn]] void RankCheckFail(const char* what, LockRank acquiring,
                                LockRank held) {
  // stderr + abort, matching the QBS_CHECK family in util/check.h; fprintf
  // keeps this safe to call while locks are held (no iostream locale
  // machinery).
  std::fprintf(stderr,
               "qbs sync: %s: acquiring '%s' (rank %d) while holding '%s' "
               "(rank %d); locks must be acquired in strictly increasing "
               "LockRank order (see docs/ARCHITECTURE.md, Concurrency "
               "contracts)\n",
               what, LockRankName(acquiring), static_cast<int>(acquiring),
               LockRankName(held), static_cast<int>(held));
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void PushLockRank(const void* mu, LockRank rank, bool check_order) {
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i].mu == mu) {
      std::fprintf(stderr,
                   "qbs sync: re-entrant acquisition of '%s' (rank %d): this "
                   "thread already holds the same mutex\n",
                   LockRankName(rank), static_cast<int>(rank));
      std::fflush(stderr);
      std::abort();
    }
  }
  if (check_order && rank != LockRank::kUnranked) {
    for (int i = 0; i < t_held_count; ++i) {
      const LockRank held = t_held[i].rank;
      if (held != LockRank::kUnranked && held >= rank) {
        RankCheckFail("lock-rank inversion", rank, held);
      }
    }
  }
  if (t_held_count >= kMaxHeldLocks) {
    std::fprintf(stderr,
                 "qbs sync: held-lock stack overflow (%d locks held by one "
                 "thread)\n",
                 t_held_count);
    std::fflush(stderr);
    std::abort();
  }
  t_held[t_held_count++] = HeldLock{mu, rank};
}

void PopLockRank(const void* mu) {
  // Locks are usually released in LIFO order, but out-of-order release is
  // legal (it cannot deadlock), so search from the top.
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mu == mu) {
      for (int j = i; j + 1 < t_held_count; ++j) t_held[j] = t_held[j + 1];
      --t_held_count;
      return;
    }
  }
  std::fprintf(stderr,
               "qbs sync: releasing a mutex this thread does not hold "
               "(push/pop pairing bug)\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace qbs::sync_internal

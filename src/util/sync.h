// Annotated synchronization primitives: the ONLY place in src/ where the
// raw standard-library lock types may appear (enforced by qbs_lint's
// raw-mutex rule). Every mutex in the project is one of these wrappers,
// which buys two machine-checked guarantees the raw types cannot give:
//
//   1. Static proof of guarded access. The wrappers carry Clang Thread
//      Safety Analysis capability annotations (Hutchins et al., "C/C++
//      Thread Safety Analysis"), so a field declared
//      `QBS_GUARDED_BY(mu_)` cannot be read or written without the lock
//      — at compile time, for every path, at zero runtime cost. CI builds
//      with `-Wthread-safety -Werror` under clang; under other compilers
//      the annotations expand to nothing.
//
//   2. Deterministic deadlock detection. Each Mutex/SharedMutex carries a
//      LockRank, and debug builds (plus any build configured with
//      -DQBS_LOCK_RANK_CHECKS=ON) maintain a per-thread stack of held
//      locks: acquiring out of ascending-rank order, or re-entrantly,
//      aborts immediately with both ranks named — a potential deadlock
//      becomes a deterministic test failure at the first wrong
//      acquisition, not a 1-in-10^6 hang under load. Release builds
//      compile the checks out entirely.
//
// The project-wide rank table lives in the LockRank enum below and is
// documented (with the per-subsystem capability map) in
// docs/ARCHITECTURE.md § Concurrency contracts. The one sanctioned
// analysis seam is CondVar: its Wait/WaitUntil methods release and
// re-acquire the mutex inside the standard condition variable, which the
// analysis cannot see — they are annotated QBS_REQUIRES(mu) so callers
// must still prove they hold the lock, and waits are written as explicit
// `while (!predicate) cv.Wait(mu);` loops so the predicate reads are
// themselves analyzed under the lock.

#ifndef QBS_UTIL_SYNC_H_
#define QBS_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- Clang Thread Safety Analysis annotation macros -----------------------
//
// QBS_-prefixed spellings of the standard capability attributes (see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under non-clang
// compilers every macro expands to nothing.

#if defined(__clang__)
#define QBS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define QBS_THREAD_ANNOTATION_(x)
#endif

#define QBS_CAPABILITY(x) QBS_THREAD_ANNOTATION_(capability(x))
#define QBS_SCOPED_CAPABILITY QBS_THREAD_ANNOTATION_(scoped_lockable)
#define QBS_GUARDED_BY(x) QBS_THREAD_ANNOTATION_(guarded_by(x))
#define QBS_PT_GUARDED_BY(x) QBS_THREAD_ANNOTATION_(pt_guarded_by(x))
#define QBS_ACQUIRED_BEFORE(...) \
  QBS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define QBS_ACQUIRED_AFTER(...) \
  QBS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define QBS_REQUIRES(...) \
  QBS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define QBS_REQUIRES_SHARED(...) \
  QBS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define QBS_ACQUIRE(...) \
  QBS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define QBS_ACQUIRE_SHARED(...) \
  QBS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define QBS_RELEASE(...) \
  QBS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define QBS_RELEASE_SHARED(...) \
  QBS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define QBS_RELEASE_GENERIC(...) \
  QBS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define QBS_TRY_ACQUIRE(...) \
  QBS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define QBS_TRY_ACQUIRE_SHARED(...) \
  QBS_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))
#define QBS_EXCLUDES(...) QBS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define QBS_ASSERT_CAPABILITY(x) \
  QBS_THREAD_ANNOTATION_(assert_capability(x))
#define QBS_RETURN_CAPABILITY(x) QBS_THREAD_ANNOTATION_(lock_returned(x))
// Escape hatch. Project rule (lint-visible, reviewed): zero uses outside
// sync.h internals — new code must restructure instead of opting out.
#define QBS_NO_THREAD_SAFETY_ANALYSIS \
  QBS_THREAD_ANNOTATION_(no_thread_safety_analysis)

// ---- Lock-rank runtime checker --------------------------------------------

// Whether this build validates lock acquisition order and re-entrancy at
// runtime. Defaults to on whenever NDEBUG is absent (Debug, ASan, UBSan,
// TSan, Coverage build types); -DQBS_LOCK_RANK_CHECKS=ON forces it on in
// any build type.
#if defined(QBS_LOCK_RANK_CHECKS) || !defined(NDEBUG)
#define QBS_LOCK_RANK_CHECKS_ENABLED_ 1
#else
#define QBS_LOCK_RANK_CHECKS_ENABLED_ 0
#endif

namespace qbs {

/// The project-wide lock order: a thread may acquire a mutex only while
/// every lock it already holds has a STRICTLY LOWER rank. The table below
/// is the single source of truth; docs/ARCHITECTURE.md § Concurrency
/// contracts explains each edge. Gaps between values leave room for new
/// locks without renumbering.
///
/// Ordering constraints encoded here (outer → inner):
///   * kIndex → kSearcherPool       (ServeQuery holds the index reader
///                                    lock while leasing a searcher)
///   * kIndex → kResultCacheShard   (cache lookup/insert/clear run inside
///                                    the index reader/writer section)
///   * kIndex → kThreadPool/kThreadPoolQueue
///                                  (ApplyUpdates runs ParallelFor — and
///                                    thus pool scheduling — under the
///                                    index writer lock)
/// Corollary: thread-pool tasks must only acquire ranks above kIndex.
enum class LockRank : int {
  /// Exempt from ordering checks (re-entrancy is still checked). For
  /// tests and short-lived local mutexes that never nest with ranked ones.
  kUnranked = 0,
  /// QueryServer::mu_ — stop/drain handshake + connection bookkeeping.
  kServerLifecycle = 10,
  /// AdmissionGate::mu_ — inflight/queue counters and the busy decision.
  kAdmission = 20,
  /// QueryServer::index_mu_ — readers: the whole query critical section
  /// (cache lookup → execute → cache insert); writer: ApplyUpdates +
  /// cache clear.
  kIndex = 30,
  /// QbsIndex::batch_searchers_mu_ — the QueryBatch searcher pool.
  kSearcherPool = 40,
  /// ResultCache::Shard::mu — one shard's LRU list/map/byte budget.
  kResultCacheShard = 50,
  /// ThreadPool::mu_ — scheduling counters and sleep/wake signalling.
  kThreadPool = 60,
  /// ThreadPool::WorkerQueue::mu — one worker's task deque.
  kThreadPoolQueue = 70,
};

/// Stable diagnostic name for a rank (abort messages name both sides of
/// an inversion with these strings).
constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "kUnranked";
    case LockRank::kServerLifecycle:
      return "kServerLifecycle";
    case LockRank::kAdmission:
      return "kAdmission";
    case LockRank::kIndex:
      return "kIndex";
    case LockRank::kSearcherPool:
      return "kSearcherPool";
    case LockRank::kResultCacheShard:
      return "kResultCacheShard";
    case LockRank::kThreadPool:
      return "kThreadPool";
    case LockRank::kThreadPoolQueue:
      return "kThreadPoolQueue";
  }
  return "k<invalid>";
}

/// True when this build aborts on rank inversions / re-entrant
/// acquisition (tests use this to skip death tests in Release).
constexpr bool LockRankChecksEnabled() {
  return QBS_LOCK_RANK_CHECKS_ENABLED_ != 0;
}

namespace sync_internal {

/// Validates `rank` against the calling thread's held-lock stack (aborts
/// on re-entrancy or a rank >= an already-held rank; kUnranked skips the
/// order check) and records the acquisition. `check_order` is false for
/// try-locks, which cannot deadlock by blocking.
void PushLockRank(const void* mu, LockRank rank, bool check_order);
/// Removes `mu` from the calling thread's held-lock stack (aborts if it
/// was never recorded — a push/pop pairing bug).
void PopLockRank(const void* mu);

}  // namespace sync_internal

// ---- Annotated wrappers ---------------------------------------------------

class CondVar;

/// An exclusive mutex carrying a capability annotation and a LockRank.
/// Prefer the scoped MutexLock guard over manual Lock()/Unlock().
class QBS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kUnranked) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QBS_ACQUIRE() {
#if QBS_LOCK_RANK_CHECKS_ENABLED_
    sync_internal::PushLockRank(this, rank_, /*check_order=*/true);
#endif
    mu_.lock();
  }

  void Unlock() QBS_RELEASE() {
    mu_.unlock();
#if QBS_LOCK_RANK_CHECKS_ENABLED_
    sync_internal::PopLockRank(this);
#endif
  }

  bool TryLock() QBS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if QBS_LOCK_RANK_CHECKS_ENABLED_
    sync_internal::PushLockRank(this, rank_, /*check_order=*/false);
#endif
    return true;
  }

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const LockRank rank_;
};

/// A reader-writer mutex; same capability + rank discipline as Mutex.
/// Use WriterLock / ReaderLock guards.
class QBS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kUnranked) : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() QBS_ACQUIRE() {
#if QBS_LOCK_RANK_CHECKS_ENABLED_
    sync_internal::PushLockRank(this, rank_, /*check_order=*/true);
#endif
    mu_.lock();
  }

  void Unlock() QBS_RELEASE() {
    mu_.unlock();
#if QBS_LOCK_RANK_CHECKS_ENABLED_
    sync_internal::PopLockRank(this);
#endif
  }

  void LockShared() QBS_ACQUIRE_SHARED() {
#if QBS_LOCK_RANK_CHECKS_ENABLED_
    sync_internal::PushLockRank(this, rank_, /*check_order=*/true);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() QBS_RELEASE_SHARED() {
    mu_.unlock_shared();
#if QBS_LOCK_RANK_CHECKS_ENABLED_
    sync_internal::PopLockRank(this);
#endif
  }

  bool TryLock() QBS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if QBS_LOCK_RANK_CHECKS_ENABLED_
    sync_internal::PushLockRank(this, rank_, /*check_order=*/false);
#endif
    return true;
  }

  bool TryLockShared() QBS_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
#if QBS_LOCK_RANK_CHECKS_ENABLED_
    sync_internal::PushLockRank(this, rank_, /*check_order=*/false);
#endif
    return true;
  }

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
};

/// Scoped exclusive lock on a Mutex.
class QBS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QBS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() QBS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class QBS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) QBS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() QBS_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class QBS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) QBS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() QBS_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to Mutex. This is the project's one sanctioned
/// thread-safety-analysis seam: the wait methods release and re-acquire
/// `mu` inside std::condition_variable, which the analysis cannot model.
/// They are annotated QBS_REQUIRES(mu) so every caller must prove it holds
/// the lock, and call sites use explicit predicate loops:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);   // ready_ reads analyzed under mu_
///
/// The waited-on mutex stays on the lock-rank stack for the duration of
/// the wait (it is re-acquired before Wait returns, and a blocked thread
/// cannot introduce a new ordering edge).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified; `mu` is held
  /// again on return. Spurious wakeups happen: always re-check the
  /// predicate in a loop.
  void Wait(Mutex& mu) QBS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// As Wait(), giving up at `deadline`. Returns false iff the deadline
  /// passed before a notification (the predicate may still have become
  /// true — re-check it).
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      QBS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// As WaitUntil() with a relative timeout.
  bool WaitFor(Mutex& mu, int64_t timeout_ms) QBS_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(timeout_ms));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qbs

#endif  // QBS_UTIL_SYNC_H_

// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// The library is built without exceptions (per the project style guide);
// contract violations terminate the process with a diagnostic instead.

#ifndef QBS_UTIL_CHECK_H_
#define QBS_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace qbs {
namespace internal_check {

[[noreturn]] inline void CheckFail(std::string_view file, int line,
                                   std::string_view expr,
                                   std::string_view detail = {}) {
  std::cerr << "QBS_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!detail.empty()) {
    std::cerr << " (" << detail << ")";
  }
  std::cerr << std::endl;
  std::abort();
}

template <typename A, typename B>
[[noreturn]] void CheckOpFail(std::string_view file, int line,
                              std::string_view expr, const A& a, const B& b) {
  std::ostringstream oss;
  oss << "lhs=" << a << " rhs=" << b;
  CheckFail(file, line, expr, oss.str());
}

}  // namespace internal_check
}  // namespace qbs

#define QBS_CHECK(cond)                                             \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::qbs::internal_check::CheckFail(__FILE__, __LINE__, #cond);  \
    }                                                               \
  } while (false)

#define QBS_CHECK_OP_IMPL(a, b, op)                                         \
  do {                                                                      \
    const auto& qbs_check_a = (a);                                          \
    const auto& qbs_check_b = (b);                                          \
    if (!(qbs_check_a op qbs_check_b)) {                                    \
      ::qbs::internal_check::CheckOpFail(__FILE__, __LINE__,                \
                                         #a " " #op " " #b, qbs_check_a,    \
                                         qbs_check_b);                      \
    }                                                                       \
  } while (false)

#define QBS_CHECK_EQ(a, b) QBS_CHECK_OP_IMPL(a, b, ==)
#define QBS_CHECK_NE(a, b) QBS_CHECK_OP_IMPL(a, b, !=)
#define QBS_CHECK_LT(a, b) QBS_CHECK_OP_IMPL(a, b, <)
#define QBS_CHECK_LE(a, b) QBS_CHECK_OP_IMPL(a, b, <=)
#define QBS_CHECK_GT(a, b) QBS_CHECK_OP_IMPL(a, b, >)
#define QBS_CHECK_GE(a, b) QBS_CHECK_OP_IMPL(a, b, >=)

#ifdef NDEBUG
#define QBS_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define QBS_DCHECK(cond) QBS_CHECK(cond)
#endif

#endif  // QBS_UTIL_CHECK_H_

// A minimal over-aligned allocator for STL containers.
//
// The SIMD label-scan kernels (core/label_scan.h) load label rows with
// full-width aligned vector loads; PathLabeling therefore keeps its dense
// matrix in a std::vector<DistT, AlignedAllocator<DistT, 32>> whose
// storage starts on a 32-byte boundary. Combined with the padded row
// stride (a multiple of 16 DistT lanes = 32 bytes), every row starts
// aligned.

#ifndef QBS_UTIL_ALIGNED_H_
#define QBS_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>

namespace qbs {

template <typename T, std::size_t Alignment>
class AlignedAllocator {
  static_assert(Alignment >= alignof(T), "alignment below natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not pow2");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace qbs

#endif  // QBS_UTIL_ALIGNED_H_

// An array with O(1) logical reset, used for BFS visited/depth state that is
// re-initialized once per query. Resetting bumps an epoch counter instead of
// touching every slot, which matters when |V| is large and queries touch only
// a small neighbourhood.

#ifndef QBS_UTIL_EPOCH_ARRAY_H_
#define QBS_UTIL_EPOCH_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace qbs {

// Maps indices to values of type T with a default value for "unset" slots.
// Reset() is O(1) amortized (O(n) once every 2^32 resets when epochs wrap).
//
// The epoch stamp and the value live side by side in one slot, so the
// IsSet-then-Get pattern on the search hot paths costs a single random
// cache-line access instead of one per array.
template <typename T>
class EpochArray {
 public:
  EpochArray() = default;
  EpochArray(size_t size, T default_value) { Resize(size, default_value); }

  void Resize(size_t size, T default_value) {
    default_ = default_value;
    slots_.assign(size, Slot{0, default_value});
    epoch_ = 1;
  }

  size_t size() const { return slots_.size(); }

  // Invalidates all previously Set() values.
  void Reset() {
    ++epoch_;
    if (epoch_ == 0) {
      // Epoch counter wrapped: do a real clear so stale stamps cannot alias.
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  void Set(size_t i, T value) {
    QBS_DCHECK(i < slots_.size());
    slots_[i] = Slot{epoch_, value};
  }

  T Get(size_t i) const {
    QBS_DCHECK(i < slots_.size());
    const Slot& s = slots_[i];
    return s.epoch == epoch_ ? s.value : default_;
  }

  bool IsSet(size_t i) const {
    QBS_DCHECK(i < slots_.size());
    return slots_[i].epoch == epoch_;
  }

 private:
  struct Slot {
    uint32_t epoch;
    T value;
  };

  T default_{};
  uint32_t epoch_ = 1;
  std::vector<Slot> slots_;
};

}  // namespace qbs

#endif  // QBS_UTIL_EPOCH_ARRAY_H_

// An array with O(1) logical reset, used for BFS visited/depth state that is
// re-initialized once per query. Resetting bumps an epoch counter instead of
// touching every slot, which matters when |V| is large and queries touch only
// a small neighbourhood.

#ifndef QBS_UTIL_EPOCH_ARRAY_H_
#define QBS_UTIL_EPOCH_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace qbs {

// Maps indices to values of type T with a default value for "unset" slots.
// Reset() is O(1) amortized (O(n) once every 2^32 resets when epochs wrap).
template <typename T>
class EpochArray {
 public:
  EpochArray() = default;
  EpochArray(size_t size, T default_value)
      : default_(default_value), values_(size, default_value),
        epochs_(size, 0) {}

  void Resize(size_t size, T default_value) {
    default_ = default_value;
    values_.assign(size, default_value);
    epochs_.assign(size, 0);
    epoch_ = 1;
  }

  size_t size() const { return values_.size(); }

  // Invalidates all previously Set() values.
  void Reset() {
    ++epoch_;
    if (epoch_ == 0) {
      // Epoch counter wrapped: do a real clear so stale stamps cannot alias.
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 1;
    }
  }

  void Set(size_t i, T value) {
    QBS_DCHECK(i < values_.size());
    values_[i] = value;
    epochs_[i] = epoch_;
  }

  T Get(size_t i) const {
    QBS_DCHECK(i < values_.size());
    return epochs_[i] == epoch_ ? values_[i] : default_;
  }

  bool IsSet(size_t i) const {
    QBS_DCHECK(i < values_.size());
    return epochs_[i] == epoch_;
  }

 private:
  T default_{};
  uint32_t epoch_ = 1;
  std::vector<T> values_;
  std::vector<uint32_t> epochs_;
};

}  // namespace qbs

#endif  // QBS_UTIL_EPOCH_ARRAY_H_

// Lock-free log-bucketed latency histogram for the serving hot path.
//
// Record() is two atomic increments (relaxed bucket, release total — see
// the Snapshot ordering contract below) — safe from any number of
// connection threads with no mutex on the query path. Buckets are
// half-open powers of two in nanoseconds (bucket i covers [2^i, 2^(i+1))
// ns, bucket 0 covers [0, 2) ns), so percentile estimates carry at most
// one octave of quantization — plenty for p50/p99/p999 on latencies that
// span micro- to milliseconds.

#ifndef QBS_SERVER_LATENCY_HISTOGRAM_H_
#define QBS_SERVER_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace qbs::server {

class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t nanos) {
    const size_t bucket =
        nanos == 0 ? 0 : static_cast<size_t>(std::bit_width(nanos) - 1);
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    // Release pairs with GetSnapshot's acquire load of total_nanos_: a
    // snapshot that observes this sample in the total also observes its
    // bucket increment above.
    total_nanos_.fetch_add(nanos, std::memory_order_release);
  }

  /// A copy for reporting with an ordering contract (asserted by
  /// latency_histogram_test): concurrent Records may or may not be
  /// included and no bucket is ever torn, but every sample summed into
  /// total_nanos has its bucket increment included in count — so
  /// count >= "samples in total_nanos" and MeanMillis() never divides by
  /// an undercounted denominator. After all recording threads are joined
  /// (the shutdown stats dump), the snapshot is exact.
  struct Snapshot {
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t count = 0;
    uint64_t total_nanos = 0;

    /// Upper edge (ns) of the bucket holding the q-quantile sample
    /// (q in [0, 1]); 0 when empty.
    uint64_t QuantileNanos(double q) const {
      if (count == 0) return 0;
      const uint64_t rank = static_cast<uint64_t>(
          q * static_cast<double>(count - 1));
      uint64_t seen = 0;
      for (size_t i = 0; i < kBuckets; ++i) {
        seen += buckets[i];
        if (seen > rank) {
          return i + 1 >= 64 ? UINT64_MAX : (uint64_t{1} << (i + 1)) - 1;
        }
      }
      return UINT64_MAX;
    }

    double QuantileMillis(double q) const {
      return static_cast<double>(QuantileNanos(q)) / 1e6;
    }

    double MeanMillis() const {
      return count == 0 ? 0.0
                        : static_cast<double>(total_nanos) /
                              static_cast<double>(count) / 1e6;
    }
  };

  Snapshot GetSnapshot() const {
    Snapshot snap;
    // total_nanos_ FIRST, with acquire: it synchronizes with the release
    // fetch_add in Record, making every bucket increment of every sample
    // counted in the total visible to the relaxed loads below. (Loading
    // buckets first could observe a total that includes samples whose
    // bucket increments the loads already missed.)
    snap.total_nanos = total_nanos_.load(std::memory_order_acquire);
    for (size_t i = 0; i < kBuckets; ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      snap.count += snap.buckets[i];
    }
    return snap;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> total_nanos_{0};
};

}  // namespace qbs::server

#endif  // QBS_SERVER_LATENCY_HISTOGRAM_H_

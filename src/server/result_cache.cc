#include "server/result_cache.h"

#include <algorithm>
#include <utility>

namespace qbs::server {

ResultCache::ResultCache(const Options& options) {
  const size_t shard_count = std::max<size_t>(options.shards, 1);
  shard_capacity_ = options.capacity_bytes / shard_count;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Key ResultCache::MakeKey(const QueryRequest& request) {
  const uint64_t lo = std::min(request.u, request.v);
  const uint64_t hi = std::max(request.u, request.v);
  Key key;
  key.pair = lo << 32 | hi;
  key.mode_budget = static_cast<uint64_t>(request.mode) << 32 |
                    request.budget;
  return key;
}

size_t ResultCache::ChargedBytes(const Entry& e) {
  return sizeof(Entry) + e.edges.capacity() * sizeof(Edge);
}

bool ResultCache::Lookup(const QueryRequest& request, QueryResponse* out) {
  const Key key = MakeKey(request);
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // MRU
  const Entry& entry = *it->second;
  *out = QueryResponse();
  out->spg.u = request.u;
  out->spg.v = request.v;
  out->spg.distance = entry.distance;
  out->spg.edges = entry.edges;
  out->flags = entry.flags;
  out->cache_hit = true;
  return true;
}

void ResultCache::Insert(const QueryRequest& request,
                         const QueryResponse& response) {
  if (shard_capacity_ == 0) return;
  const Key key = MakeKey(request);
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh in place (deterministic queries make this a no-op payload-
    // wise, but the entry moves to MRU and re-charges its bytes).
    shard.bytes -= it->second->charged_bytes;
    it->second->distance = response.spg.distance;
    it->second->flags = response.flags;
    it->second->edges = response.spg.edges;
    it->second->charged_bytes = ChargedBytes(*it->second);
    shard.bytes += it->second->charged_bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    Entry entry;
    entry.key = key;
    entry.distance = response.spg.distance;
    entry.flags = response.flags;
    entry.edges = response.spg.edges;
    entry.charged_bytes = ChargedBytes(entry);
    if (entry.charged_bytes > shard_capacity_) return;  // never admissible
    shard.lru.push_front(std::move(entry));
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += shard.lru.front().charged_bytes;
    ++shard.insertions;
  }
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.charged_bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.entries += shard.lru.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

void ResultCache::Clear() {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

}  // namespace qbs::server

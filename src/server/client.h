// Blocking client for the `qbs serve` protocol: one TCP connection, one
// outstanding request at a time. Used by the `qbs load` driver, the CLI's
// remote query path, bench_serve workers, and the server/chaos tests.
//
// Robustness surface:
//   * All socket I/O goes through server/socket.h — EINTR-retried,
//     MSG_NOSIGNAL, optionally poll-bounded by ClientOptions timeouts, and
//     fault-injectable for chaos tests.
//   * QueryWithRetry() layers a deterministic RetryPolicy on Query():
//     exponential backoff with seeded jitter, honoring the server's
//     retry_after hint, reconnecting across transport errors, all bounded
//     by an overall deadline. The backoff schedule is a pure function of
//     (policy, retry index) — same seed, same schedule, every run.

#ifndef QBS_SERVER_CLIENT_H_
#define QBS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "core/query_api.h"
#include "server/fault_injection.h"
#include "server/protocol.h"
#include "server/socket.h"

namespace qbs::server {

/// Client-side socket behavior. The defaults preserve the pre-hardening
/// client: block without bound, no faults.
struct ClientOptions {
  /// Max milliseconds to wait for each chunk of a reply (inactivity bound,
  /// not a whole-response deadline); kNoTimeout = block forever.
  int32_t read_timeout_ms = kNoTimeout;
  /// Max milliseconds a request write may stall; kNoTimeout = forever.
  int32_t write_timeout_ms = kNoTimeout;
  /// Chaos hook attached to the connection's socket. Not owned; must
  /// outlive the client. nullptr = no faults.
  FaultInjector* fault_injector = nullptr;
};

/// Deterministic retry schedule for QueryWithRetry. Retry `i` (0-based)
/// sleeps min(max_backoff_ms, base_backoff_ms * multiplier^i), scaled by a
/// seeded jitter factor in [1 - jitter, 1 + jitter] — a pure function of
/// (seed, i), so a replayed run backs off identically. The server's
/// retry_after hint acts as a floor on busy retries.
struct RetryPolicy {
  /// Total tries including the first; >= 1 enforced.
  uint32_t max_attempts = 4;
  uint32_t base_backoff_ms = 10;
  uint32_t max_backoff_ms = 1000;
  double multiplier = 2.0;
  /// Fractional jitter amplitude in [0, 1).
  double jitter = 0.2;
  /// Jitter stream seed (deterministic replay).
  uint64_t seed = 1;
  /// Give up (returning the last status) once the next backoff would pass
  /// this many milliseconds since the first attempt. 0 = unbounded.
  uint32_t overall_deadline_ms = 0;
  /// Reconnect and retry after transport errors (not just kBusy).
  bool retry_transport_errors = true;
};

/// The schedule half of RetryPolicy, exposed for determinism tests.
class RetryBackoff {
 public:
  explicit RetryBackoff(const RetryPolicy& policy) : policy_(policy) {}

  /// Backoff before retry `retry` (0-based), honoring `server_hint_ms` as
  /// a floor. Pure: no internal state, no clock, no global RNG.
  uint32_t DelayMs(uint32_t retry, uint32_t server_hint_ms = 0) const;

 private:
  RetryPolicy policy_;
};

/// What QueryWithRetry did to get its answer.
struct RetryStats {
  uint32_t attempts = 0;           // tries made (>= 1)
  uint32_t busy_retries = 0;       // retries caused by kBusy
  uint32_t transport_retries = 0;  // retries caused by transport errors
  uint32_t reconnects = 0;         // successful reconnections
  uint64_t total_backoff_ms = 0;   // milliseconds slept between tries
  uint32_t last_queue_depth = 0;   // backlog reported by the last kBusy
};

class QueryClient {
 public:
  enum class RpcStatus {
    kOk,    // *response filled
    kBusy,  // admission pushback; retry_after_ms()/busy_queue_depth() set
    kDeadlineExceeded,  // server refused: the request's deadline ran out
    kRemoteError,       // server answered kError; last_error() has the text
    kTransportError,  // connection broken / protocol violation; client dead
  };

  QueryClient() = default;
  ~QueryClient();
  QueryClient(QueryClient&& other) noexcept;
  QueryClient& operator=(QueryClient&& other) noexcept;
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Connects to host:port; returns false (filling last_error()) on
  /// failure. Reconnecting an already-connected client closes the old
  /// connection first. The endpoint and options are remembered for
  /// Reconnect().
  bool Connect(const std::string& host, uint16_t port,
               const ClientOptions& options = {});

  /// Re-dials the endpoint of the last Connect().
  bool Reconnect();

  bool connected() const { return sock_.valid(); }

  /// Sends one request and blocks for its reply.
  RpcStatus Query(const QueryRequest& request, QueryResponse* response);

  /// Query() wrapped in `policy`: retries kBusy (and, when configured,
  /// transport errors — reconnecting first) with deterministic backoff;
  /// returns the first terminal status. kOk, kRemoteError, and
  /// kDeadlineExceeded never retry — the server answered.
  RpcStatus QueryWithRetry(const QueryRequest& request,
                           QueryResponse* response, const RetryPolicy& policy,
                           RetryStats* stats = nullptr);

  /// Sends one edit script and blocks for the kUpdateResponse. The server
  /// must be running with updates enabled (`qbs serve --updatable`);
  /// otherwise it answers kError and this returns kRemoteError. `stats`
  /// (optional) receives the server's apply counters. Flags: kUpdateFlag*.
  RpcStatus Update(const GraphDelta& delta, UpdateStats* stats = nullptr,
                   uint32_t flags = 0);

  /// Round-trips a kPing.
  bool Ping();

  /// Asks the server to shut down; true iff the kShutdownAck arrived.
  bool Shutdown();

  void Close();

  /// Hint from the last kBusy reply (milliseconds).
  uint32_t retry_after_ms() const { return retry_after_ms_; }
  /// Admission backlog reported by the last kBusy reply.
  uint32_t busy_queue_depth() const { return busy_queue_depth_; }
  const std::string& last_error() const { return last_error_; }
  /// Code from the last kError reply (meaningful after kRemoteError /
  /// kDeadlineExceeded).
  ErrorCode last_error_code() const { return last_error_code_; }

 private:
  /// Sends one frame and blocks for the next frame from the server.
  /// Returns false on transport failure (and closes the connection —
  /// framing can't be trusted afterwards).
  bool RoundTrip(FrameType type, std::span<const uint8_t> payload,
                 Frame* reply);
  bool SendFrame(FrameType type, std::span<const uint8_t> payload);
  bool ReadFrame(Frame* reply);

  Socket sock_;
  ClientOptions options_;
  std::string host_;
  uint16_t port_ = 0;
  FrameReader reader_;
  uint32_t retry_after_ms_ = 0;
  uint32_t busy_queue_depth_ = 0;
  ErrorCode last_error_code_ = ErrorCode::kInternal;
  std::string last_error_;
};

}  // namespace qbs::server

#endif  // QBS_SERVER_CLIENT_H_

// Blocking client for the `qbs serve` protocol: one TCP connection, one
// outstanding request at a time. Used by the `qbs load` driver, the CLI's
// remote query path, bench_serve workers, and the server tests.

#ifndef QBS_SERVER_CLIENT_H_
#define QBS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "core/query_api.h"
#include "server/protocol.h"

namespace qbs::server {

class QueryClient {
 public:
  enum class RpcStatus {
    kOk,         // *response filled
    kBusy,       // admission pushback; retry_after_ms() hints when
    kRemoteError,     // server answered kError; last_error() has the text
    kTransportError,  // connection broken / protocol violation; client dead
  };

  QueryClient() = default;
  ~QueryClient();
  QueryClient(QueryClient&& other) noexcept;
  QueryClient& operator=(QueryClient&& other) noexcept;
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Connects to host:port; returns false (filling last_error()) on
  /// failure. Reconnecting an already-connected client closes the old
  /// connection first.
  bool Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Sends one request and blocks for its reply.
  RpcStatus Query(const QueryRequest& request, QueryResponse* response);

  /// Round-trips a kPing.
  bool Ping();

  /// Asks the server to shut down; true iff the kShutdownAck arrived.
  bool Shutdown();

  void Close();

  /// Hint from the last kBusy reply (milliseconds).
  uint32_t retry_after_ms() const { return retry_after_ms_; }
  const std::string& last_error() const { return last_error_; }

 private:
  /// Sends one frame and blocks for the next frame from the server.
  /// Returns false on transport failure (and closes the connection —
  /// framing can't be trusted afterwards).
  bool RoundTrip(FrameType type, std::span<const uint8_t> payload,
                 Frame* reply);
  bool SendFrame(FrameType type, std::span<const uint8_t> payload);
  bool ReadFrame(Frame* reply);

  int fd_ = -1;
  FrameReader reader_;
  uint32_t retry_after_ms_ = 0;
  std::string last_error_;
};

}  // namespace qbs::server

#endif  // QBS_SERVER_CLIENT_H_

#include "server/fault_injection.h"

#include <algorithm>

namespace qbs::server {
namespace {

/// splitmix64: the same mixer the rest of the codebase uses for seeding;
/// good enough to decorrelate (seed, endpoint, op) streams.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic injector: every decision is a pure function of
/// (spec.seed, endpoint_id, op index), so interleaving with other
/// endpoints cannot perturb this endpoint's fault stream.
class PlannedInjector final : public FaultInjector {
 public:
  PlannedInjector(const FaultSpec& spec, uint64_t endpoint_id)
      : spec_(spec), stream_(Mix64(spec.seed) ^ Mix64(~endpoint_id)) {}

  IoFault OnSend(size_t bytes) override {
    const uint64_t op = ++ops_;
    if (PendingReset()) return Reset();
    const uint64_t r = Draw(op);
    if (spec_.reset_at_op != 0 && op == spec_.reset_at_op) return Reset();
    if (Hit(r, 0, spec_.reset_rate)) return Reset();
    if (Hit(r, 1, spec_.torn_frame_rate) && bytes > 1) {
      // Half the frame now; the next op (the resumed tail) resets, so the
      // peer sees a syntactically torn frame.
      reset_next_ = true;
      return {.kind = IoFault::Kind::kShort, .cap = bytes / 2};
    }
    if (Hit(r, 2, spec_.short_send_rate) && bytes > 1) {
      return {.kind = IoFault::Kind::kShort, .cap = (bytes + 1) / 2};
    }
    if (Hit(r, 3, spec_.stall_rate)) {
      return {.kind = IoFault::Kind::kStall, .stall_ms = spec_.stall_ms};
    }
    return {};
  }

  IoFault OnRecv(size_t bytes) override {
    const uint64_t op = ++ops_;
    if (PendingReset()) return Reset();
    const uint64_t r = Draw(op);
    if (spec_.reset_at_op != 0 && op == spec_.reset_at_op) return Reset();
    if (Hit(r, 0, spec_.reset_rate)) return Reset();
    if (Hit(r, 2, spec_.short_recv_rate) && bytes > 1) {
      // A few bytes per read maximizes partial-frame reassembly coverage.
      return {.kind = IoFault::Kind::kShort,
              .cap = std::max<size_t>(1, std::min<size_t>(bytes, 3))};
    }
    if (Hit(r, 3, spec_.stall_rate)) {
      return {.kind = IoFault::Kind::kStall, .stall_ms = spec_.stall_ms};
    }
    return {};
  }

  uint32_t OnQueryDelayMs() override {
    const uint64_t op = ++query_ops_;
    if (spec_.query_delay_rate <= 0.0 || spec_.query_delay_ms == 0) return 0;
    const uint64_t r = Mix64(stream_ ^ Mix64(op ^ 0x71c7u));
    return Hit(r, 0, spec_.query_delay_rate) ? spec_.query_delay_ms : 0;
  }

 private:
  /// One 64-bit draw per op; independent fault classes consume disjoint
  /// 16-bit lanes of it so rates compose without reordering the stream.
  uint64_t Draw(uint64_t op) const { return Mix64(stream_ ^ Mix64(op)); }

  static bool Hit(uint64_t draw, unsigned lane, double rate) {
    if (rate <= 0.0) return false;
    const auto lane_bits =
        static_cast<uint32_t>((draw >> (16 * lane)) & 0xFFFFu);
    return static_cast<double>(lane_bits) < rate * 65536.0;
  }

  bool PendingReset() {
    const bool pending = reset_next_;
    reset_next_ = false;
    return pending;
  }

  static IoFault Reset() { return {.kind = IoFault::Kind::kReset}; }

  const FaultSpec spec_;
  const uint64_t stream_;
  uint64_t ops_ = 0;
  uint64_t query_ops_ = 0;
  bool reset_next_ = false;
};

}  // namespace

std::unique_ptr<FaultInjector> FaultPlan::MakeInjector(
    uint64_t endpoint_id) const {
  return std::make_unique<PlannedInjector>(spec_, endpoint_id);
}

}  // namespace qbs::server

// `qbs serve` — the long-lived query daemon. Loads a QbsIndex once and
// serves concurrent QueryRequest frames (server/protocol.h) over TCP,
// thread-per-connection, with three serving-layer guarantees:
//
//   * Hot-pair caching — every cacheable request consults the sharded LRU
//     ResultCache before touching a searcher; hits replay the payload
//     bit-identically with the cache_hit bit set.
//   * Admission control — at most max_inflight queries execute at once
//     (bounding the SearcherLease pool and memory), at most max_queue more
//     wait; beyond that the daemon answers kBusy immediately instead of
//     building an unbounded backlog (backpressure, not collapse).
//   * Observability — per-class latency histograms (cache hits; label
//     short-circuits, the d <= 2 class; long guided searches) expose
//     p50/p99/p999 split by the work a query actually did.
//
// Shutdown is cooperative and clean: a kShutdown frame (when permitted) or
// RequestStop() stops the accept loop, wakes admission waiters, shuts down
// every connection socket, and Stop() joins/waits until the last
// connection thread exits — no leaked threads, sockets, or searchers
// (ASan/TSan-clean by test).

#ifndef QBS_SERVER_SERVER_H_
#define QBS_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/qbs_index.h"
#include "server/latency_histogram.h"
#include "server/protocol.h"
#include "server/result_cache.h"

namespace qbs::server {

/// Bounded-concurrency admission: Acquire() either admits immediately,
/// waits (if the bounded wait queue has room), or rejects. Exposed
/// separately from the server so backpressure semantics are unit-testable
/// without sockets.
class AdmissionGate {
 public:
  enum class Ticket {
    kAdmitted,  // caller may run; must Release() exactly once
    kRejected,  // queue full — answer kBusy, do NOT Release()
    kShutdown,  // gate shut down while waiting — do NOT Release()
  };

  /// `max_inflight` concurrent admissions (>= 1 enforced); up to
  /// `max_queue` further callers block in FIFO-wakeup order.
  AdmissionGate(size_t max_inflight, size_t max_queue);

  Ticket Acquire();
  void Release();
  /// Wakes every waiter with kShutdown; subsequent Acquires return
  /// kShutdown immediately.
  void Shutdown();

  size_t inflight() const;
  uint64_t rejected() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  const size_t max_inflight_;
  const size_t max_queue_;
  size_t inflight_ = 0;
  size_t waiters_ = 0;
  uint64_t rejected_ = 0;
  bool shutdown_ = false;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port()).
  uint16_t port = 0;
  /// Concurrent executing queries; 0 = hardware concurrency. Also bounds
  /// the searcher pool growth attributable to serving.
  size_t max_inflight = 0;
  /// Admission waiters beyond max_inflight before kBusy.
  size_t max_queue = 64;
  /// Concurrent connections; extras are accepted and closed immediately.
  size_t max_connections = 256;
  /// Hot-pair result cache budget; 0 disables caching entirely.
  size_t cache_bytes = 64u << 20;
  size_t cache_shards = 16;
  /// Advisory retry hint carried in kBusy responses.
  uint32_t busy_retry_ms = 50;
  /// Honor kShutdown frames from clients (on for tests/CI smoke; off for
  /// anything resembling production).
  bool allow_remote_shutdown = true;
  /// Per-frame payload cap for request parsing.
  uint32_t max_request_payload = kMaxRequestPayload;
};

class QueryServer {
 public:
  /// The index (and the graph it was built on) must outlive the server.
  QueryServer(QbsIndex& index, const ServerOptions& options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the accept loop. Returns false (filling
  /// *error) on socket/bind failures.
  bool Start(std::string* error = nullptr);

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Asks the server to stop: no new connections, admission waiters woken,
  /// existing connection sockets shut down. Does not join — call Stop().
  void RequestStop();

  /// Blocks until a stop is requested (RequestStop or a remote kShutdown);
  /// returns immediately if already requested.
  void Wait();
  /// As Wait() with a timeout; returns true iff a stop was requested.
  bool WaitFor(uint32_t timeout_ms);

  /// RequestStop() + join the accept loop and every connection thread.
  /// Idempotent; the destructor calls it.
  void Stop();

  struct StatsSnapshot {
    uint64_t queries = 0;            // executed or cache-answered
    uint64_t busy_rejections = 0;    // kBusy answers (admission)
    uint64_t bad_requests = 0;       // decode/validation errors answered
    uint64_t protocol_errors = 0;    // corrupt streams (connection dropped)
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  // over max_connections
    size_t active_connections = 0;
    ResultCache::Stats cache;
    LatencyHistogram::Snapshot lat_cached;  // served from the result cache
    LatencyHistogram::Snapshot lat_short;   // label short-circuit / no-scan
    LatencyHistogram::Snapshot lat_long;    // guided searches
  };
  StatsSnapshot GetStats() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Handles one decoded frame; returns false when the connection should
  /// close (shutdown, write failure).
  bool HandleFrame(int fd, const Frame& frame);
  /// Executes (or cache-answers) one admitted query and sends the
  /// response; records latency in the matching class histogram.
  bool ServeQuery(int fd, const QueryRequest& request);
  bool SendFrame(int fd, FrameType type, std::span<const uint8_t> payload);

  QbsIndex& index_;
  const ServerOptions options_;
  const VertexId num_vertices_;
  ResultCache cache_;
  AdmissionGate gate_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  // Stop/Wait handshake + connection bookkeeping. Connection threads are
  // detached; Stop() waits for active_connections_ to drain after shutting
  // their sockets down, which gives join semantics without a growing
  // vector of joinable handles on a long-lived daemon.
  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  std::condition_variable drain_cv_;
  bool stop_requested_ = false;
  std::unordered_set<int> conn_fds_;
  size_t active_connections_ = 0;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> busy_rejections_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  LatencyHistogram lat_cached_;
  LatencyHistogram lat_short_;
  LatencyHistogram lat_long_;
};

}  // namespace qbs::server

#endif  // QBS_SERVER_SERVER_H_

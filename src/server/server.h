// `qbs serve` — the long-lived query daemon. Loads a QbsIndex once and
// serves concurrent QueryRequest frames (server/protocol.h) over TCP,
// thread-per-connection, with the serving-layer guarantees:
//
//   * Hot-pair caching — every cacheable request consults the sharded LRU
//     ResultCache before touching a searcher; hits replay the payload
//     bit-identically with the cache_hit bit set.
//   * Admission control — at most max_inflight queries execute at once
//     (bounding the SearcherLease pool and memory), at most max_queue more
//     wait; beyond that the daemon answers kBusy (with the observed queue
//     depth) immediately instead of building an unbounded backlog.
//   * Deadlines — a request's deadline_ms is enforced at every admission
//     boundary: on receipt, after an admission wait (the wait itself is
//     capped at the remaining budget), and after any injected slowness. A
//     request whose budget ran out is answered kDeadlineExceeded, never
//     executed late.
//   * Timeouts — all socket I/O is poll-bounded (server/socket.h): a peer
//     stalling mid-frame is cut off after read_timeout_ms (slowloris
//     defense), a connection idle between requests is reaped after
//     idle_timeout_ms, and a peer not draining responses is cut off after
//     write_timeout_ms. No stalled client can pin a connection thread.
//   * Graceful degradation — past degrade_after_inflight executing
//     queries, new queries are answered from the labelling alone
//     (kResponseFlagDegraded bounds, O(|R|), no searcher, no queueing)
//     instead of deepening the backlog.
//   * Observability — per-class latency histograms (cache hits; label
//     short-circuits; long guided searches) plus counters for every
//     robustness path (busy, deadline-exceeded, degraded, timeouts).
//
// Shutdown is cooperative and clean: a kShutdown frame (when permitted) or
// RequestStop() stops the accept loop, wakes admission waiters, shuts down
// every connection socket, and Stop() joins/waits until the last
// connection thread exits — no leaked threads, sockets, or searchers
// (ASan/TSan-clean by test). Fault injection (server/fault_injection.h)
// hooks each connection's socket and query execution through
// ServerOptions::fault_injector_factory; chaos_test drives every failure
// path above through real loopback connections.

#ifndef QBS_SERVER_SERVER_H_
#define QBS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/qbs_index.h"
#include "server/fault_injection.h"
#include "server/latency_histogram.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/socket.h"
#include "util/sync.h"

namespace qbs::server {

/// Bounded-concurrency admission: Acquire() either admits immediately,
/// waits (if the bounded wait queue has room, optionally up to a caller
/// deadline), or rejects. Exposed separately from the server so
/// backpressure semantics are unit-testable without sockets.
class AdmissionGate {
 public:
  enum class Ticket {
    kAdmitted,  // caller may run; must Release() exactly once
    kRejected,  // queue full — answer kBusy, do NOT Release()
    kTimedOut,  // wait exceeded the caller's budget — do NOT Release()
    kShutdown,  // gate shut down while waiting — do NOT Release()
  };

  /// `max_inflight` concurrent admissions (>= 1 enforced); up to
  /// `max_queue` further callers block in FIFO-wakeup order.
  AdmissionGate(size_t max_inflight, size_t max_queue);

  /// Waits without bound. `queue_depth` (optional) receives the number of
  /// waiters observed at the decision point — the backlog a kBusy answer
  /// reports to the client.
  Ticket Acquire(size_t* queue_depth = nullptr);
  /// As Acquire(), but a queued caller gives up after `timeout_ms`
  /// (negative = wait forever; 0 = never queue, admit-or-reject only).
  Ticket AcquireFor(int64_t timeout_ms, size_t* queue_depth = nullptr);
  void Release();
  /// Wakes every waiter with kShutdown; subsequent Acquires return
  /// kShutdown immediately.
  void Shutdown();

  size_t inflight() const;
  size_t queue_depth() const;
  uint64_t rejected() const;

 private:
  mutable Mutex mu_{LockRank::kAdmission};
  CondVar cv_;
  const size_t max_inflight_;
  const size_t max_queue_;
  size_t inflight_ QBS_GUARDED_BY(mu_) = 0;
  size_t waiters_ QBS_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ QBS_GUARDED_BY(mu_) = 0;
  bool shutdown_ QBS_GUARDED_BY(mu_) = false;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port()).
  uint16_t port = 0;
  /// Concurrent executing queries; 0 = hardware concurrency. Also bounds
  /// the searcher pool growth attributable to serving.
  size_t max_inflight = 0;
  /// Admission waiters beyond max_inflight before kBusy.
  size_t max_queue = 64;
  /// Concurrent connections; extras are accepted and closed immediately.
  size_t max_connections = 256;
  /// Hot-pair result cache budget; 0 disables caching entirely.
  size_t cache_bytes = 64u << 20;
  size_t cache_shards = 16;
  /// Advisory retry hint carried in kBusy responses.
  uint32_t busy_retry_ms = 50;
  /// Honor kShutdown frames from clients (on for tests/CI smoke; off for
  /// anything resembling production).
  bool allow_remote_shutdown = true;
  /// Honor kUpdateRequest frames (edge edit scripts). Requires the index
  /// to be in updatable mode (QbsIndex::EnableUpdates) before Start().
  /// Updates run under a writer lock — queries drain first, the delta
  /// applies, and the result cache is cleared before any query can read it
  /// again, so a served answer is never stale across an applied delta.
  bool allow_updates = false;
  /// Per-frame payload cap for request parsing.
  uint32_t max_request_payload = kMaxRequestPayload;

  /// Max milliseconds a started request frame may take to arrive in full
  /// (slowloris defense); 0 = unbounded.
  uint32_t read_timeout_ms = 5000;
  /// Max milliseconds a connection may sit idle between requests before
  /// the reaper closes it; 0 = unbounded.
  uint32_t idle_timeout_ms = 60000;
  /// Max milliseconds a response write may stall on an undraining peer;
  /// 0 = unbounded.
  uint32_t write_timeout_ms = 5000;
  /// Graceful degradation threshold: when at least this many queries are
  /// executing, new queries are answered with label-only bounds
  /// (kResponseFlagDegraded) instead of queueing. 0 = never degrade.
  size_t degrade_after_inflight = 0;

  /// Test hook: builds one FaultInjector per accepted connection (keyed by
  /// the connection counter) and attaches it to the connection's socket
  /// and query execution. Production servers leave this empty.
  std::function<std::unique_ptr<FaultInjector>(uint64_t connection_id)>
      fault_injector_factory;
};

class QueryServer {
 public:
  /// The index (and the graph it was built on) must outlive the server.
  QueryServer(QbsIndex& index, const ServerOptions& options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the accept loop. Returns false (filling
  /// *error) on socket/bind failures.
  bool Start(std::string* error = nullptr);

  /// The bound port (valid after Start()).
  uint16_t port() const { return listener_.bound_port(); }

  /// Asks the server to stop: no new connections, admission waiters woken,
  /// existing connection sockets shut down. Does not join — call Stop().
  void RequestStop();

  /// Blocks until a stop is requested (RequestStop or a remote kShutdown);
  /// returns immediately if already requested.
  void Wait();
  /// As Wait() with a timeout; returns true iff a stop was requested.
  bool WaitFor(uint32_t timeout_ms);

  /// RequestStop() + join the accept loop and every connection thread.
  /// Idempotent; the destructor calls it.
  void Stop();

  struct StatsSnapshot {
    uint64_t queries = 0;            // executed or cache-answered
    uint64_t updates = 0;            // update frames applied
    uint64_t busy_rejections = 0;    // kBusy answers (admission)
    uint64_t deadline_exceeded = 0;  // kDeadlineExceeded answers
    uint64_t degraded = 0;           // label-only degraded answers
    uint64_t bad_requests = 0;       // decode/validation errors answered
    uint64_t protocol_errors = 0;    // corrupt streams (connection dropped)
    uint64_t read_timeouts = 0;      // mid-frame stalls cut off
    uint64_t idle_timeouts = 0;      // idle connections reaped
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  // over max_connections
    size_t active_connections = 0;
    size_t admission_inflight = 0;     // gauge: queries executing right now
    size_t admission_queue_depth = 0;  // gauge: admission waiters right now
    ResultCache::Stats cache;
    LatencyHistogram::Snapshot lat_cached;  // served from the result cache
    LatencyHistogram::Snapshot lat_short;   // label short-circuit / no-scan
    LatencyHistogram::Snapshot lat_long;    // guided searches
  };
  StatsSnapshot GetStats() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd, uint64_t conn_id);
  /// Handles one decoded frame; returns false when the connection should
  /// close (shutdown, write failure). `reader` is the connection's frame
  /// reader (null in contexts without one); the degraded path drains
  /// already-buffered query frames from it to batch their label scans.
  bool HandleFrame(Socket& sock, FaultInjector* injector, FrameReader* reader,
                   const Frame& frame);
  /// Executes (or cache-answers) one admitted query and sends the
  /// response; records latency in the matching class histogram.
  bool ServeQuery(Socket& sock, FaultInjector* injector, FrameReader* reader,
                  const QueryRequest& request);
  /// Answers from the labelling alone — no searcher, no admission — with
  /// kResponseFlagDegraded bounds (or an exact label-certified distance
  /// when one exists). Under saturation the connection's already-buffered
  /// query frames (up to kScanBatch in total, drained from `reader` —
  /// buffer-only, no socket reads) ride one batched SIMD label sweep;
  /// responses go out in arrival order, and the first non-query or
  /// undecodable frame drained is replayed through HandleFrame afterwards.
  bool ServeDegraded(Socket& sock, FaultInjector* injector,
                     FrameReader* reader, const QueryRequest& request);
  /// Applies one decoded edit script under the writer side of index_mu_
  /// and clears the result cache before releasing it; answers with
  /// kUpdateResponse.
  bool ServeUpdate(Socket& sock, const GraphDelta& delta, uint32_t flags);
  bool SendFrame(Socket& sock, FrameType type,
                 std::span<const uint8_t> payload);
  bool SendError(Socket& sock, ErrorCode code, const std::string& message);

  QbsIndex& index_;
  const ServerOptions options_;
  const VertexId num_vertices_;  // |V| is fixed: edits are edge-level
  ResultCache cache_;
  AdmissionGate gate_;
  /// Readers: every query path that touches the index or the result cache
  /// (lookup through insert, one critical section — so a pre-update
  /// response can never be inserted after the post-update cache clear).
  /// Writer: ServeUpdate, which clears the cache before unlocking. The
  /// index_ and cache_ members above are governed by this capability
  /// through that reader/writer protocol rather than per-field
  /// QBS_GUARDED_BY (the cache has its own internal shard locks, and the
  /// index is read-shared), so the contract is enforced by review plus
  /// the lock-rank checker: kIndex sits below the shard, searcher-pool,
  /// and thread-pool ranks it is held across.
  mutable SharedMutex index_mu_{LockRank::kIndex};

  ListenSocket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  // Stop/Wait handshake + connection bookkeeping. Connection threads are
  // detached; Stop() waits for active_connections_ to drain after shutting
  // their sockets down, which gives join semantics without a growing
  // vector of joinable handles on a long-lived daemon.
  mutable Mutex mu_{LockRank::kServerLifecycle};
  CondVar stop_cv_;
  CondVar drain_cv_;
  bool stop_requested_ QBS_GUARDED_BY(mu_) = false;
  std::unordered_set<int> conn_fds_ QBS_GUARDED_BY(mu_);
  size_t active_connections_ QBS_GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> busy_rejections_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> read_timeouts_{0};
  std::atomic<uint64_t> idle_timeouts_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  LatencyHistogram lat_cached_;
  LatencyHistogram lat_short_;
  LatencyHistogram lat_long_;
};

}  // namespace qbs::server

#endif  // QBS_SERVER_SERVER_H_

// Deterministic fault injection for the serving stack.
//
// A FaultPlan is a pure function from (FaultSpec, endpoint id, operation
// index) to a fault decision: feed the same spec to two plans and ask the
// same endpoint's injector the same sequence of questions, and you get the
// same sequence of answers — which is what makes a chaos run replayable
// and a failure bisectable by seed. The plan covers every failure class
// the serving stack must survive:
//
//   * short reads / short writes  — an op is capped below the requested
//     size, exercising every partial-I/O resume loop;
//   * stalls                      — an op is delayed, exercising the
//     poll-based read/write timeouts and the idle reaper;
//   * connection resets           — an op fails as if the peer vanished,
//     exercising reconnect/retry paths;
//   * torn frames                 — a write is cut short and the NEXT op
//     resets, so the peer observes a syntactically truncated frame;
//   * query slowness              — the server sleeps before executing an
//     admitted query, exercising deadlines, admission queueing, and the
//     graceful-degradation path.
//
// Injectors hook the Socket layer (server/socket.h) through the
// FaultInjector interface; production builds simply never install one, so
// the hot path pays one null-pointer test per syscall.

#ifndef QBS_SERVER_FAULT_INJECTION_H_
#define QBS_SERVER_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace qbs::server {

/// One injected fault on a socket operation.
struct IoFault {
  enum class Kind : uint8_t {
    kNone,   // let the operation through untouched
    kShort,  // cap the operation at `cap` bytes (partial read/write)
    kStall,  // sleep stall_ms, then let the operation through
    kReset,  // fail the operation as if the peer reset the connection
  };
  Kind kind = Kind::kNone;
  size_t cap = 0;
  uint32_t stall_ms = 0;
};

/// Hook consulted by Socket before each send/recv syscall and by the
/// server before executing an admitted query. Implementations must be
/// usable from the one thread driving the socket (no internal locking is
/// required of them).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// Consulted before sending `bytes` (the remaining unsent tail).
  virtual IoFault OnSend(size_t bytes) = 0;
  /// Consulted before a recv of up to `bytes`.
  virtual IoFault OnRecv(size_t bytes) = 0;
  /// Artificial slowness for the next admitted query, in milliseconds
  /// (0 = execute immediately). Server-side injectors only.
  virtual uint32_t OnQueryDelayMs() = 0;
};

/// The scripted fault schedule. All rates are probabilities in [0, 1]
/// drawn per operation from the seeded stream; the scripted `reset_at_op`
/// fires exactly once at the 1-based operation index (sends and recvs
/// share one counter per endpoint), which is how a test tears a frame at
/// a known point.
struct FaultSpec {
  uint64_t seed = 1;

  double short_send_rate = 0.0;  // cap a send at half the requested bytes
  double short_recv_rate = 0.0;  // cap a recv at a few bytes
  double stall_rate = 0.0;       // delay an op by stall_ms
  uint32_t stall_ms = 5;
  double reset_rate = 0.0;  // kill the connection at this op
  /// Tear a frame: cut this send short, then reset on the next op.
  double torn_frame_rate = 0.0;
  /// Scripted reset at exactly this 1-based op index (0 = disabled).
  uint64_t reset_at_op = 0;

  double query_delay_rate = 0.0;  // server-side artificial slowness
  uint32_t query_delay_ms = 0;

  bool HasIoFaults() const {
    return short_send_rate > 0 || short_recv_rate > 0 || stall_rate > 0 ||
           reset_rate > 0 || torn_frame_rate > 0 || reset_at_op > 0;
  }
};

/// Factory for per-endpoint deterministic injectors. Endpoint ids are
/// caller-chosen (the server uses its connection counter, tests use a
/// fixed id per client); the injector for (spec, endpoint) always answers
/// the same op sequence identically.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultSpec& spec) : spec_(spec) {}

  std::unique_ptr<FaultInjector> MakeInjector(uint64_t endpoint_id) const;

  const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
};

}  // namespace qbs::server

#endif  // QBS_SERVER_FAULT_INJECTION_H_

// The hot-pair result cache fronting the `qbs serve` searcher pool: a
// sharded, byte-capacity LRU over deterministic answer payloads.
//
// Key invariants:
//   * Exact keys — a lookup can only ever return the payload stored for
//     the same (unordered pair, mode, budget); there is no hash-collision
//     path to a wrong answer (the full key is compared, not a digest).
//   * Bit-identity — the payload replayed on a hit (distance, flags, SPG
//     edges) is byte-for-byte the payload of the miss that populated it;
//     only the orientation echo (spg.u/spg.v) is re-stamped to match the
//     request, and the cache_hit bit is set. SPG edge sets are normalized
//     (graph/spg.h), so (u, v) and (v, u) share one entry soundly.
//   * Bounded — each shard evicts least-recently-used entries whenever its
//     charged bytes exceed capacity_bytes / shards. Requests flagged
//     kQueryFlagNoCache never read or populate the cache (the serving
//     layer enforces this; the cache itself is flag-agnostic).
//
// Concurrency: shards lock independently, so disjoint hot pairs do not
// serialize on one mutex. Within a shard, Lookup takes the same exclusive
// lock as Insert (it mutates LRU order). Verified race-free under TSan by
// result_cache_test.ConcurrentHammer.

#ifndef QBS_SERVER_RESULT_CACHE_H_
#define QBS_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/query_api.h"
#include "util/sync.h"

namespace qbs::server {

class ResultCache {
 public:
  struct Options {
    /// Total payload-byte budget across all shards. 0 disables caching
    /// (every Lookup misses, Insert is a no-op).
    size_t capacity_bytes = 64u << 20;
    /// Independent LRU shards (rounded up to 1). More shards, less lock
    /// contention, slightly coarser capacity enforcement.
    size_t shards = 16;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;

    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  explicit ResultCache(const Options& options);

  /// On a hit, fills *out with the stored payload re-oriented to the
  /// request's (u, v) order, sets out->cache_hit, and refreshes LRU order.
  /// Returns false (counting a miss) otherwise.
  bool Lookup(const QueryRequest& request, QueryResponse* out);

  /// Stores the deterministic payload of `response` under the request's
  /// canonical key, evicting LRU entries to stay under the shard budget.
  /// Re-inserting an existing key refreshes the payload (idempotent for
  /// deterministic queries). Entries larger than a whole shard's budget
  /// are not admitted.
  void Insert(const QueryRequest& request, const QueryResponse& response);

  /// Aggregated over all shards.
  Stats GetStats() const;

  /// Drops every entry (stat counters survive).
  void Clear();

 private:
  struct Key {
    uint64_t pair;         // min(u,v) << 32 | max(u,v)
    uint64_t mode_budget;  // mode << 32 | budget

    friend bool operator==(const Key& a, const Key& b) {
      return a.pair == b.pair && a.mode_budget == b.mode_budget;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix64-style mix of both words.
      uint64_t x = k.pair ^ (k.mode_budget * 0x9e3779b97f4a7c15ULL);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };

  struct Entry {
    Key key;
    uint32_t distance;
    uint32_t flags;
    std::vector<Edge> edges;
    size_t charged_bytes;
  };

  struct Shard {
    // Shard locks never nest with each other (GetStats/Clear hold one at a
    // time), so a single rank covers all shards.
    Mutex mu{LockRank::kResultCacheShard};
    // MRU at front; Entry owned by the list, map points into it.
    std::list<Entry> lru QBS_GUARDED_BY(mu);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index
        QBS_GUARDED_BY(mu);
    size_t bytes QBS_GUARDED_BY(mu) = 0;
    uint64_t hits QBS_GUARDED_BY(mu) = 0;
    uint64_t misses QBS_GUARDED_BY(mu) = 0;
    uint64_t insertions QBS_GUARDED_BY(mu) = 0;
    uint64_t evictions QBS_GUARDED_BY(mu) = 0;
  };

  static Key MakeKey(const QueryRequest& request);
  static size_t ChargedBytes(const Entry& e);

  Shard& ShardFor(const Key& key) {
    return *shards_[KeyHash()(key) % shards_.size()];
  }

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qbs::server

#endif  // QBS_SERVER_RESULT_CACHE_H_

#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>

#include "core/label_scan.h"
#include "core/sketch.h"

namespace qbs::server {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

int64_t RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : left;
}

/// Tracks one request's deadline budget from the moment its frame was
/// decoded. With no deadline, Expired() is always false and RemainingMs()
/// unbounded.
class DeadlineTracker {
 public:
  explicit DeadlineTracker(uint32_t deadline_ms)
      : bounded_(deadline_ms != kNoDeadline),
        deadline_(Clock::now() + std::chrono::milliseconds(
                                     bounded_ ? deadline_ms : 0)) {}

  bool bounded() const { return bounded_; }
  bool Expired() const { return bounded_ && Clock::now() >= deadline_; }
  /// Admission-wait budget: -1 (wait forever) when unbounded.
  int64_t RemainingForWaitMs() const {
    return bounded_ ? qbs::server::RemainingMs(deadline_) : -1;
  }

 private:
  const bool bounded_;
  const Clock::time_point deadline_;
};

}  // namespace

// ---- AdmissionGate --------------------------------------------------------

AdmissionGate::AdmissionGate(size_t max_inflight, size_t max_queue)
    : max_inflight_(max_inflight == 0 ? 1 : max_inflight),
      max_queue_(max_queue) {}

AdmissionGate::Ticket AdmissionGate::Acquire(size_t* queue_depth) {
  return AcquireFor(-1, queue_depth);
}

AdmissionGate::Ticket AdmissionGate::AcquireFor(int64_t timeout_ms,
                                                size_t* queue_depth) {
  // Waits are explicit predicate loops (not wait(lock, pred) lambdas) so
  // the guarded-field reads stay inside this function's analyzed critical
  // section; queue_depth is reported inline at each decision point for the
  // same reason.
  MutexLock lock(mu_);
  if (shutdown_) {
    if (queue_depth != nullptr) *queue_depth = waiters_;
    return Ticket::kShutdown;
  }
  if (inflight_ < max_inflight_) {
    ++inflight_;
    if (queue_depth != nullptr) *queue_depth = waiters_;
    return Ticket::kAdmitted;
  }
  if (waiters_ >= max_queue_ || timeout_ms == 0) {
    ++rejected_;
    if (queue_depth != nullptr) *queue_depth = waiters_;
    return Ticket::kRejected;
  }
  ++waiters_;
  bool admissible = true;
  if (timeout_ms < 0) {
    while (!shutdown_ && inflight_ >= max_inflight_) cv_.Wait(mu_);
  } else {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!shutdown_ && inflight_ >= max_inflight_) {
      if (!cv_.WaitUntil(mu_, deadline)) break;
    }
    admissible = shutdown_ || inflight_ < max_inflight_;
  }
  --waiters_;
  if (shutdown_) {
    if (queue_depth != nullptr) *queue_depth = waiters_;
    return Ticket::kShutdown;
  }
  if (!admissible) {
    if (queue_depth != nullptr) *queue_depth = waiters_;
    return Ticket::kTimedOut;
  }
  ++inflight_;
  if (queue_depth != nullptr) *queue_depth = waiters_;
  return Ticket::kAdmitted;
}

void AdmissionGate::Release() {
  {
    MutexLock lock(mu_);
    --inflight_;
  }
  cv_.NotifyOne();
}

void AdmissionGate::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

size_t AdmissionGate::inflight() const {
  MutexLock lock(mu_);
  return inflight_;
}

size_t AdmissionGate::queue_depth() const {
  MutexLock lock(mu_);
  return waiters_;
}

uint64_t AdmissionGate::rejected() const {
  MutexLock lock(mu_);
  return rejected_;
}

// ---- QueryServer ----------------------------------------------------------

QueryServer::QueryServer(QbsIndex& index, const ServerOptions& options)
    : index_(index),
      options_(options),
      num_vertices_(index.graph().NumVertices()),
      cache_({.capacity_bytes = options.cache_bytes,
              .shards = options.cache_shards}),
      gate_(options.max_inflight == 0
                ? std::max<size_t>(std::thread::hardware_concurrency(), 1)
                : options.max_inflight,
            options.max_queue) {}

QueryServer::~QueryServer() { Stop(); }

bool QueryServer::Start(std::string* error) {
  if (!listener_.Open(options_.host, options_.port, error)) return false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void QueryServer::RequestStop() {
  {
    MutexLock lock(mu_);
    if (stop_requested_) return;
    stop_requested_ = true;
    stopping_.store(true, std::memory_order_release);
    // Notified under mu_ so a woken Wait()/WaitFor() caller cannot return
    // and destroy the server (and this cv) before the broadcast finishes.
    stop_cv_.NotifyAll();
  }
  gate_.Shutdown();
  // Wake the accept loop and every blocked connection recv.
  listener_.Shutdown();
  MutexLock lock(mu_);
  for (const int fd : conn_fds_) ShutdownFd(fd);
}

void QueryServer::Wait() {
  MutexLock lock(mu_);
  while (!stop_requested_) stop_cv_.Wait(mu_);
}

bool QueryServer::WaitFor(uint32_t timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  MutexLock lock(mu_);
  while (!stop_requested_) {
    if (!stop_cv_.WaitUntil(mu_, deadline)) break;
  }
  return stop_requested_;
}

void QueryServer::Stop() {
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Connection threads are detached; wait for them to drain after their
    // sockets were shut down in RequestStop().
    MutexLock lock(mu_);
    while (active_connections_ != 0) drain_cv_.Wait(mu_);
  }
  listener_.Close();
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = listener_.Accept();
    if (fd < 0) break;  // listener shut down (or unrecoverable)
    if (stopping_.load(std::memory_order_acquire)) {
      CloseFd(fd);
      break;
    }
    bool admitted = false;
    {
      MutexLock lock(mu_);
      if (conn_fds_.size() < options_.max_connections) {
        conn_fds_.insert(fd);
        ++active_connections_;
        admitted = true;
      }
    }
    if (!admitted) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      CloseFd(fd);
      continue;
    }
    const uint64_t conn_id =
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::thread([this, fd, conn_id] { HandleConnection(fd, conn_id); })
        .detach();
  }
}

void QueryServer::HandleConnection(int fd, uint64_t conn_id) {
  {
    // Scoped so the Socket closes fd before the bookkeeping below runs:
    // Stop() must not observe active_connections_ == 0 while the fd is
    // still open (and conn_fds_ must not reference a closed fd).
    Socket sock(fd);
    sock.SetNoDelay();
    std::unique_ptr<FaultInjector> injector;
    if (options_.fault_injector_factory) {
      injector = options_.fault_injector_factory(conn_id);
      sock.set_fault_injector(injector.get());
    }
    FrameReader reader(options_.max_request_payload);
    uint8_t buf[64 * 1024];
    bool open = true;
    // The per-frame read deadline starts when a frame's first bytes land
    // and is re-armed after each decoded frame — so a slowloris trickling
    // a request byte-by-byte cannot extend it.
    Clock::time_point frame_start{};
    while (open && !stopping_.load(std::memory_order_acquire)) {
      const bool mid_frame = reader.PendingBytes() > 0;
      int32_t timeout = kNoTimeout;
      if (mid_frame) {
        if (options_.read_timeout_ms > 0) {
          const int64_t left = RemainingMs(
              frame_start + std::chrono::milliseconds(options_.read_timeout_ms));
          timeout = static_cast<int32_t>(left);
        }
      } else if (options_.idle_timeout_ms > 0) {
        timeout = static_cast<int32_t>(options_.idle_timeout_ms);
      }
      size_t n = 0;
      const IoStatus status = sock.RecvSome(buf, sizeof(buf), &n, timeout);
      if (status == IoStatus::kTimeout) {
        if (mid_frame) {
          read_timeouts_.fetch_add(1, std::memory_order_relaxed);
          // Best-effort notice (the write itself is bounded), then cut the
          // slow peer off — framing can't resume mid-request anyway.
          SendError(sock, ErrorCode::kBadRequest,
                    "request frame timed out mid-read");
        } else {
          idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      if (status != IoStatus::kOk) break;  // peer closed, reset, or shut down
      if (!mid_frame) frame_start = Clock::now();
      reader.Feed(std::span<const uint8_t>(buf, n));
      Frame frame;
      for (;;) {
        const FrameReader::Status frame_status = reader.Next(&frame);
        if (frame_status == FrameReader::Status::kNeedMore) break;
        if (frame_status == FrameReader::Status::kBad) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          SendError(sock, ErrorCode::kBadRequest, reader.error());
          open = false;
          break;
        }
        if (!HandleFrame(sock, injector.get(), &reader, frame)) {
          open = false;
          break;
        }
        frame_start = Clock::now();  // re-arm for the next frame's bytes
      }
    }
  }
  {
    MutexLock lock(mu_);
    conn_fds_.erase(fd);
    --active_connections_;
    // Notified under mu_: once the count hits zero a Stop() waiter may
    // destroy the server, so the broadcast must complete before the lock
    // — and with it the waiter's ability to proceed — is released.
    drain_cv_.NotifyAll();
  }
}

bool QueryServer::HandleFrame(Socket& sock, FaultInjector* injector,
                              FrameReader* reader, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      return SendFrame(sock, FrameType::kPong, {});
    case FrameType::kShutdown: {
      if (!options_.allow_remote_shutdown) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        return SendError(sock, ErrorCode::kBadRequest,
                         "remote shutdown not permitted");
      }
      SendFrame(sock, FrameType::kShutdownAck, {});
      RequestStop();
      return false;
    }
    case FrameType::kQueryRequest: {
      QueryRequest request;
      if (!DecodeQueryRequest(frame.payload, &request)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        return SendError(sock, ErrorCode::kBadRequest,
                         "malformed query payload");
      }
      if (request.u >= num_vertices_ || request.v >= num_vertices_) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        return SendError(sock, ErrorCode::kVertexOutOfRange,
                         "vertex id out of range (|V| = " +
                             std::to_string(num_vertices_) + ")");
      }
      return ServeQuery(sock, injector, reader, request);
    }
    case FrameType::kUpdateRequest: {
      if (!options_.allow_updates) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        return SendError(sock, ErrorCode::kBadRequest,
                         "updates not permitted (serve with --updatable)");
      }
      GraphDelta delta;
      uint32_t flags = 0;
      if (!DecodeUpdateRequest(frame.payload, &delta, &flags)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        return SendError(sock, ErrorCode::kBadRequest,
                         "malformed update payload");
      }
      return ServeUpdate(sock, delta, flags);
    }
    default: {
      // A structurally valid frame the server has no business receiving
      // (e.g. a kQueryResponse). Answer with an error but keep the
      // connection: framing is intact.
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return SendError(sock, ErrorCode::kBadRequest,
                       "unexpected frame type " +
                           std::to_string(static_cast<unsigned>(frame.type)));
    }
  }
}

bool QueryServer::ServeQuery(Socket& sock, FaultInjector* injector,
                             FrameReader* reader,
                             const QueryRequest& request) {
  const DeadlineTracker deadline(request.deadline_ms);
  // Boundary 1: on receipt. deadline_ms == 0 ("already expired") lands
  // here — the request is never executed.
  if (deadline.Expired()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    return SendError(sock, ErrorCode::kDeadlineExceeded,
                     "deadline expired before execution");
  }

  // Graceful degradation: past the saturation threshold, answer from the
  // labelling alone instead of joining the admission queue.
  if (options_.degrade_after_inflight > 0 &&
      gate_.inflight() >= options_.degrade_after_inflight) {
    return ServeDegraded(sock, injector, reader, request);
  }

  size_t queue_depth = 0;
  switch (gate_.AcquireFor(deadline.RemainingForWaitMs(), &queue_depth)) {
    case AdmissionGate::Ticket::kRejected: {
      busy_rejections_.fetch_add(1, std::memory_order_relaxed);
      const std::vector<uint8_t> payload =
          EncodeBusy(options_.busy_retry_ms,
                     static_cast<uint32_t>(std::min<size_t>(
                         queue_depth, std::numeric_limits<uint32_t>::max())));
      return SendFrame(sock, FrameType::kBusy, payload);
    }
    case AdmissionGate::Ticket::kTimedOut:
      // Boundary 2: the admission wait consumed the whole budget.
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      return SendError(sock, ErrorCode::kDeadlineExceeded,
                       "deadline expired waiting for admission");
    case AdmissionGate::Ticket::kShutdown: {
      SendError(sock, ErrorCode::kShuttingDown, "server shutting down");
      return false;
    }
    case AdmissionGate::Ticket::kAdmitted:
      break;
  }

  // Injected query slowness (chaos lever): the sleep holds the admission
  // slot, exactly like a genuinely slow query would.
  if (injector != nullptr) {
    const uint32_t delay_ms = injector->OnQueryDelayMs();
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  }
  // Boundary 3: after any slowness, just before execution.
  if (deadline.Expired()) {
    gate_.Release();
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    return SendError(sock, ErrorCode::kDeadlineExceeded,
                     "deadline expired before execution");
  }

  const uint64_t start = NowNanos();
  QueryResponse response;
  bool cache_hit = false;
  const bool cacheable = options_.cache_bytes > 0 &&
                         (request.flags & kQueryFlagNoCache) == 0;
  {
    // One reader critical section from cache lookup through cache insert:
    // an update (writer) can therefore never interleave between this
    // query's execution and its insert, so the post-update cache clear is
    // final — no stale response sneaks in behind it.
    ReaderLock read_lock(index_mu_);
    if (cacheable) cache_hit = cache_.Lookup(request, &response);
    if (!cache_hit) {
      {
        QbsIndex::SearcherLease lease(index_, 1);
        response = index_.Execute(lease[0], request);
      }
      if (cacheable) cache_.Insert(request, response);
    }
  }
  gate_.Release();
  queries_.fetch_add(1, std::memory_order_relaxed);

  const uint64_t elapsed = NowNanos() - start;
  if (cache_hit) {
    lat_cached_.Record(elapsed);
  } else if (response.stats.label_short_circuits > 0 ||
             response.stats.TotalEdgesScanned() == 0) {
    lat_short_.Record(elapsed);  // answered from labels / pruned, no scan
  } else {
    lat_long_.Record(elapsed);  // a real guided search ran
  }

  const std::vector<uint8_t> payload = EncodeQueryResponse(response);
  return SendFrame(sock, FrameType::kQueryResponse, payload);
}

bool QueryServer::ServeDegraded(Socket& sock, FaultInjector* injector,
                                FrameReader* reader,
                                const QueryRequest& request) {
  // Saturation batching: the degraded path answers from the labelling
  // alone, so any complete query frames the connection has ALREADY
  // buffered (FrameReader::Next only consumes the feed buffer — no socket
  // reads, no blocking) can ride one batched SIMD label sweep instead of
  // one row scan each. The first drained frame that is not a decodable
  // in-range query ends the drain and is replayed through HandleFrame
  // after the batch flushes, preserving arrival order.
  std::vector<QueryRequest> batch;
  batch.push_back(request);
  std::optional<Frame> pending;
  if (reader != nullptr) {
    while (batch.size() < kScanBatch) {
      Frame frame;
      // kNeedMore ends the drain; kBad is sticky, so the connection loop's
      // next Next() call reports it there — never swallowed here.
      if (reader->Next(&frame) != FrameReader::Status::kFrame) break;
      QueryRequest drained;
      if (frame.type != FrameType::kQueryRequest ||
          !DecodeQueryRequest(frame.payload, &drained) ||
          drained.u >= num_vertices_ || drained.v >= num_vertices_) {
        pending = std::move(frame);  // Frame owns its payload
        break;
      }
      batch.push_back(drained);
    }
  }

  bool ok = true;
  {
    const uint64_t start = NowNanos();
    // Same reader discipline as ServeQuery: the labelling read and the
    // cache lookup/insert must not interleave with an update's apply +
    // clear. One critical section covers the whole batch.
    ReaderLock read_lock(index_mu_);
    std::vector<QueryResponse> responses(batch.size());
    // Per-request disposition: 0 = needs a label bound, 1 = answered
    // (cache hit / u == v), 2 = deadline error.
    std::vector<uint8_t> state(batch.size(), 0);
    std::vector<size_t> scan_idx;
    std::vector<VertexId> us;
    std::vector<VertexId> vs;
    for (size_t i = 0; i < batch.size(); ++i) {
      const QueryRequest& req = batch[i];
      // Boundary 1 for drained requests (their receipt is now); a
      // deadline_ms == 0 request is never executed.
      if (DeadlineTracker(req.deadline_ms).Expired()) {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        state[i] = 2;
        continue;
      }
      // A cache hit is cheaper than the label scan and exact — serve it
      // even under saturation.
      const bool cacheable = options_.cache_bytes > 0 &&
                             (req.flags & kQueryFlagNoCache) == 0;
      if (cacheable && cache_.Lookup(req, &responses[i])) {
        queries_.fetch_add(1, std::memory_order_relaxed);
        lat_cached_.Record(NowNanos() - start);
        state[i] = 1;
        continue;
      }
      responses[i].spg.u = req.u;
      responses[i].spg.v = req.v;
      if (req.u == req.v) {
        // Trivially exact, no searcher needed: identical to the fault-free
        // answer, so no degraded flag.
        responses[i].spg.distance = 0;
        state[i] = 1;
        queries_.fetch_add(1, std::memory_order_relaxed);
        if (cacheable) cache_.Insert(req, responses[i]);
        lat_short_.Record(NowNanos() - start);
        continue;
      }
      scan_idx.push_back(i);
      us.push_back(req.u);
      vs.push_back(req.v);
    }
    if (!scan_idx.empty()) {
      std::vector<LabelBound> bounds(scan_idx.size());
      ComputeLabelBoundsBatch(index_.labeling(), index_.meta_graph(),
                              us.data(), vs.data(), scan_idx.size(),
                              kUnreachable, bounds.data());
      for (size_t j = 0; j < scan_idx.size(); ++j) {
        const size_t i = scan_idx[j];
        const QueryRequest& req = batch[i];
        const LabelBound& bound = bounds[j];
        QueryResponse& response = responses[i];
        if (req.mode == QueryMode::kDistance && req.budget == 0 &&
            bound.upper != kUnreachable && bound.lower == bound.upper) {
          // The labels certify the distance exactly and the caller wanted
          // only the distance: this IS the fault-free answer (Execute
          // would have short-circuited the same way), so serve it
          // undegraded.
          response.spg.distance = bound.upper;
        } else {
          response.spg.distance = bound.upper;
          response.degraded_lower = bound.lower;
          response.flags |= kResponseFlagDegraded;
        }
        // Degraded answers are NEVER cached: the cache must only ever
        // replay exact payloads.
        if ((response.flags & kResponseFlagDegraded) != 0) {
          degraded_.fetch_add(1, std::memory_order_relaxed);
        } else {
          queries_.fetch_add(1, std::memory_order_relaxed);
          if (options_.cache_bytes > 0 &&
              (req.flags & kQueryFlagNoCache) == 0) {
            cache_.Insert(req, response);
          }
        }
        lat_short_.Record(NowNanos() - start);
      }
    }
    // Responses flush in arrival order; a write failure closes the
    // connection, so the remaining answers (and any pending frame) die
    // with it.
    for (size_t i = 0; i < batch.size() && ok; ++i) {
      if (state[i] == 2) {
        ok = SendError(sock, ErrorCode::kDeadlineExceeded,
                       "deadline expired before execution");
        continue;
      }
      const std::vector<uint8_t> payload = EncodeQueryResponse(responses[i]);
      ok = SendFrame(sock, FrameType::kQueryResponse, payload);
    }
  }
  // The pending frame replays outside the reader critical section: it may
  // be an update, whose writer lock must not nest under this reader.
  if (ok && pending.has_value()) {
    ok = HandleFrame(sock, injector, reader, *pending);
  }
  return ok;
}

bool QueryServer::ServeUpdate(Socket& sock, const GraphDelta& delta,
                              uint32_t flags) {
  if (!index_.updates_enabled()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return SendError(sock, ErrorCode::kBadRequest,
                     "index was not loaded in updatable mode");
  }
  UpdateStats stats;
  {
    // Writer side: queries drain, the delta applies, and the cache is
    // cleared before any reader can run again — so no answer computed (or
    // cached) against the pre-update index is ever served afterwards.
    // ApplyUpdates schedules pool work while this is held — legal because
    // the pool ranks (kThreadPool*) sit above kIndex.
    WriterLock write_lock(index_mu_);
    UpdateOptions opt;
    opt.consolidate = (flags & kUpdateFlagDefer) == 0;
    stats = index_.ApplyUpdates(delta, opt);
    if (stats.AppliedTotal() > 0) cache_.Clear();
  }
  updates_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<uint8_t> payload = EncodeUpdateResponse(stats);
  return SendFrame(sock, FrameType::kUpdateResponse, payload);
}

bool QueryServer::SendFrame(Socket& sock, FrameType type,
                            std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  AppendFrame(&frame, type, payload);
  const int32_t timeout = options_.write_timeout_ms == 0
                              ? kNoTimeout
                              : static_cast<int32_t>(options_.write_timeout_ms);
  return sock.SendAll(frame, timeout) == IoStatus::kOk;
}

bool QueryServer::SendError(Socket& sock, ErrorCode code,
                            const std::string& message) {
  const std::vector<uint8_t> payload = EncodeError(code, message);
  return SendFrame(sock, FrameType::kError, payload);
}

QueryServer::StatsSnapshot QueryServer::GetStats() const {
  StatsSnapshot snap;
  snap.queries = queries_.load(std::memory_order_relaxed);
  snap.updates = updates_.load(std::memory_order_relaxed);
  snap.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  snap.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  snap.degraded = degraded_.load(std::memory_order_relaxed);
  snap.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  snap.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  snap.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  snap.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  snap.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  snap.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    snap.active_connections = active_connections_;
  }
  snap.admission_inflight = gate_.inflight();
  snap.admission_queue_depth = gate_.queue_depth();
  snap.cache = cache_.GetStats();
  snap.lat_cached = lat_cached_.GetSnapshot();
  snap.lat_short = lat_short_.GetSnapshot();
  snap.lat_long = lat_long_.GetSnapshot();
  return snap;
}

}  // namespace qbs::server

#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace qbs::server {
namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Writes all of `data` to `fd`, riding out EINTR and short writes.
bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// ---- AdmissionGate --------------------------------------------------------

AdmissionGate::AdmissionGate(size_t max_inflight, size_t max_queue)
    : max_inflight_(max_inflight == 0 ? 1 : max_inflight),
      max_queue_(max_queue) {}

AdmissionGate::Ticket AdmissionGate::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Ticket::kShutdown;
  if (inflight_ < max_inflight_) {
    ++inflight_;
    return Ticket::kAdmitted;
  }
  if (waiters_ >= max_queue_) {
    ++rejected_;
    return Ticket::kRejected;
  }
  ++waiters_;
  cv_.wait(lock, [&] { return shutdown_ || inflight_ < max_inflight_; });
  --waiters_;
  if (shutdown_) return Ticket::kShutdown;
  ++inflight_;
  return Ticket::kAdmitted;
}

void AdmissionGate::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  cv_.notify_one();
}

void AdmissionGate::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

size_t AdmissionGate::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

uint64_t AdmissionGate::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

// ---- QueryServer ----------------------------------------------------------

QueryServer::QueryServer(QbsIndex& index, const ServerOptions& options)
    : index_(index),
      options_(options),
      num_vertices_(index.graph().NumVertices()),
      cache_({.capacity_bytes = options.cache_bytes,
              .shards = options.cache_shards}),
      gate_(options.max_inflight == 0
                ? std::max<size_t>(std::thread::hardware_concurrency(), 1)
                : options.max_inflight,
            options.max_queue) {}

QueryServer::~QueryServer() { Stop(); }

bool QueryServer::Start(std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad listen address: " + options_.host;
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = std::string("bind: ") + strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 128) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + strerror(errno);
    }
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void QueryServer::RequestStop() {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_requested_) {
      stop_requested_ = true;
      first = true;
    }
  }
  if (!first) return;
  stopping_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
  gate_.Shutdown();
  // Wake the accept loop (shutdown on a listening socket unblocks accept()
  // on Linux) and every blocked connection recv.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mu_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void QueryServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [&] { return stop_requested_; });
}

bool QueryServer::WaitFor(uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return stop_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [&] { return stop_requested_; });
}

void QueryServer::Stop() {
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Connection threads are detached; wait for them to drain after their
    // sockets were shut down in RequestStop().
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return active_connections_ == 0; });
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable) — stop accepting
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn_fds_.size() < options_.max_connections) {
        conn_fds_.insert(fd);
        ++active_connections_;
        admitted = true;
      }
    }
    if (!admitted) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::thread([this, fd] { HandleConnection(fd); }).detach();
  }
}

void QueryServer::HandleConnection(int fd) {
  FrameReader reader(options_.max_request_payload);
  uint8_t buf[64 * 1024];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or socket shut down
    reader.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
    Frame frame;
    for (;;) {
      const FrameReader::Status status = reader.Next(&frame);
      if (status == FrameReader::Status::kNeedMore) break;
      if (status == FrameReader::Status::kBad) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        const std::vector<uint8_t> payload =
            EncodeError(ErrorCode::kBadRequest, reader.error());
        SendFrame(fd, FrameType::kError, payload);
        open = false;
        break;
      }
      if (!HandleFrame(fd, frame)) {
        open = false;
        break;
      }
    }
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(fd);
    --active_connections_;
  }
  drain_cv_.notify_all();
}

bool QueryServer::HandleFrame(int fd, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      return SendFrame(fd, FrameType::kPong, {});
    case FrameType::kShutdown: {
      if (!options_.allow_remote_shutdown) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        const std::vector<uint8_t> payload = EncodeError(
            ErrorCode::kBadRequest, "remote shutdown not permitted");
        return SendFrame(fd, FrameType::kError, payload);
      }
      SendFrame(fd, FrameType::kShutdownAck, {});
      RequestStop();
      return false;
    }
    case FrameType::kQueryRequest: {
      QueryRequest request;
      if (!DecodeQueryRequest(frame.payload, &request)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        const std::vector<uint8_t> payload =
            EncodeError(ErrorCode::kBadRequest, "malformed query payload");
        return SendFrame(fd, FrameType::kError, payload);
      }
      if (request.u >= num_vertices_ || request.v >= num_vertices_) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        const std::vector<uint8_t> payload = EncodeError(
            ErrorCode::kVertexOutOfRange,
            "vertex id out of range (|V| = " +
                std::to_string(num_vertices_) + ")");
        return SendFrame(fd, FrameType::kError, payload);
      }
      return ServeQuery(fd, request);
    }
    default: {
      // A structurally valid frame the server has no business receiving
      // (e.g. a kQueryResponse). Answer with an error but keep the
      // connection: framing is intact.
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      const std::vector<uint8_t> payload = EncodeError(
          ErrorCode::kBadRequest,
          "unexpected frame type " +
              std::to_string(static_cast<unsigned>(frame.type)));
      return SendFrame(fd, FrameType::kError, payload);
    }
  }
}

bool QueryServer::ServeQuery(int fd, const QueryRequest& request) {
  switch (gate_.Acquire()) {
    case AdmissionGate::Ticket::kRejected: {
      busy_rejections_.fetch_add(1, std::memory_order_relaxed);
      const std::vector<uint8_t> payload = EncodeBusy(options_.busy_retry_ms);
      return SendFrame(fd, FrameType::kBusy, payload);
    }
    case AdmissionGate::Ticket::kShutdown: {
      const std::vector<uint8_t> payload =
          EncodeError(ErrorCode::kShuttingDown, "server shutting down");
      SendFrame(fd, FrameType::kError, payload);
      return false;
    }
    case AdmissionGate::Ticket::kAdmitted:
      break;
  }

  const uint64_t start = NowNanos();
  QueryResponse response;
  bool cache_hit = false;
  const bool cacheable = options_.cache_bytes > 0 &&
                         (request.flags & kQueryFlagNoCache) == 0;
  if (cacheable) cache_hit = cache_.Lookup(request, &response);
  if (!cache_hit) {
    {
      QbsIndex::SearcherLease lease(index_, 1);
      response = index_.Execute(lease[0], request);
    }
    if (cacheable) cache_.Insert(request, response);
  }
  gate_.Release();
  queries_.fetch_add(1, std::memory_order_relaxed);

  const uint64_t elapsed = NowNanos() - start;
  if (cache_hit) {
    lat_cached_.Record(elapsed);
  } else if (response.stats.label_short_circuits > 0 ||
             response.stats.TotalEdgesScanned() == 0) {
    lat_short_.Record(elapsed);  // answered from labels / pruned, no scan
  } else {
    lat_long_.Record(elapsed);  // a real guided search ran
  }

  const std::vector<uint8_t> payload = EncodeQueryResponse(response);
  return SendFrame(fd, FrameType::kQueryResponse, payload);
}

bool QueryServer::SendFrame(int fd, FrameType type,
                            std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  AppendFrame(&frame, type, payload);
  return WriteAll(fd, frame.data(), frame.size());
}

QueryServer::StatsSnapshot QueryServer::GetStats() const {
  StatsSnapshot snap;
  snap.queries = queries_.load(std::memory_order_relaxed);
  snap.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  snap.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  snap.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  snap.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  snap.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.active_connections = active_connections_;
  }
  snap.cache = cache_.GetStats();
  snap.lat_cached = lat_cached_.GetSnapshot();
  snap.lat_short = lat_short_.GetSnapshot();
  snap.lat_long = lat_long_.GetSnapshot();
  return snap;
}

}  // namespace qbs::server

#include "server/protocol.h"

#include <algorithm>
#include <cstring>

namespace qbs::server {
namespace {

void Put16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void Put32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Put64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t Get16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t Get32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

uint64_t Get64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kQueryRequest) &&
         t <= static_cast<uint8_t>(FrameType::kUpdateResponse);
}

}  // namespace

void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 std::span<const uint8_t> payload) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  Put32(out, kProtocolMagic);
  out->push_back(kProtocolVersion);
  out->push_back(static_cast<uint8_t>(type));
  Put16(out, 0);  // reserved
  Put32(out, static_cast<uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

FrameReader::FrameReader(uint32_t max_payload)
    : max_payload_(std::min(max_payload, kMaxFramePayload)) {}

void FrameReader::Feed(std::span<const uint8_t> data) {
  if (bad_) return;  // corrupt streams buffer nothing further
  // Compact lazily: only when the dead prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

FrameReader::Status FrameReader::Next(Frame* frame) {
  if (bad_) return Status::kBad;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Status::kNeedMore;
  const uint8_t* header = buffer_.data() + consumed_;
  if (Get32(header) != kProtocolMagic) {
    bad_ = true;
    error_ = "bad magic";
    return Status::kBad;
  }
  if (header[4] != kProtocolVersion) {
    bad_ = true;
    error_ = "unsupported protocol version " + std::to_string(header[4]);
    return Status::kBad;
  }
  if (!ValidFrameType(header[5])) {
    bad_ = true;
    error_ = "unknown frame type " + std::to_string(header[5]);
    return Status::kBad;
  }
  if (Get16(header + 6) != 0) {
    bad_ = true;
    error_ = "nonzero reserved field";
    return Status::kBad;
  }
  const uint32_t length = Get32(header + 8);
  if (length > max_payload_) {
    bad_ = true;
    error_ = "oversized frame payload (" + std::to_string(length) +
             " > " + std::to_string(max_payload_) + ")";
    return Status::kBad;
  }
  if (available < kFrameHeaderBytes + length) return Status::kNeedMore;
  frame->type = static_cast<FrameType>(header[5]);
  const uint8_t* payload = header + kFrameHeaderBytes;
  frame->payload.assign(payload, payload + length);
  consumed_ += kFrameHeaderBytes + length;
  return Status::kFrame;
}

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(24);
  Put32(&out, request.u);
  Put32(&out, request.v);
  out.push_back(static_cast<uint8_t>(request.mode));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  Put32(&out, request.budget);
  Put32(&out, request.flags);
  Put32(&out, request.deadline_ms);
  return out;
}

bool DecodeQueryRequest(std::span<const uint8_t> payload, QueryRequest* out) {
  if (payload.size() != 24 && payload.size() != 20) return false;
  const uint8_t mode = payload[8];
  if (mode > static_cast<uint8_t>(QueryMode::kSpg)) return false;
  out->u = Get32(payload.data());
  out->v = Get32(payload.data() + 4);
  out->mode = static_cast<QueryMode>(mode);
  out->budget = Get32(payload.data() + 12);
  out->flags = Get32(payload.data() + 16);
  // The 20-byte layout predates deadlines: no deadline requested.
  out->deadline_ms =
      payload.size() == 24 ? Get32(payload.data() + 20) : kNoDeadline;
  return true;
}

std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& response) {
  std::vector<uint8_t> out;
  out.reserve(32 + response.spg.edges.size() * 8);
  Put32(&out, response.spg.u);
  Put32(&out, response.spg.v);
  Put32(&out, response.spg.distance);
  Put32(&out, response.flags);
  out.push_back(response.cache_hit ? 1 : 0);
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  Put64(&out, response.stats.TotalEdgesScanned());
  Put32(&out, static_cast<uint32_t>(response.spg.edges.size()));
  for (const Edge& e : response.spg.edges) {
    Put32(&out, e.u);
    Put32(&out, e.v);
  }
  if ((response.flags & kResponseFlagDegraded) != 0) {
    Put32(&out, response.degraded_lower);
  }
  return out;
}

bool DecodeQueryResponse(std::span<const uint8_t> payload,
                         QueryResponse* out) {
  constexpr size_t kFixed = 32;
  if (payload.size() < kFixed) return false;
  if (payload[17] != 0 || payload[18] != 0 || payload[19] != 0) return false;
  const uint32_t num_edges = Get32(payload.data() + 28);
  const uint32_t flags = Get32(payload.data() + 12);
  const size_t tail = (flags & kResponseFlagDegraded) != 0 ? 4 : 0;
  if (payload.size() != kFixed + static_cast<size_t>(num_edges) * 8 + tail) {
    return false;
  }
  *out = QueryResponse();
  out->spg.u = Get32(payload.data());
  out->spg.v = Get32(payload.data() + 4);
  out->spg.distance = Get32(payload.data() + 8);
  out->flags = flags;
  out->cache_hit = payload[16] != 0;
  // The decoded edge-scan total lands in the search counter: the client
  // only ever reads the aggregate back via TotalEdgesScanned().
  out->stats.edges_scanned_search = Get64(payload.data() + 20);
  out->spg.edges.reserve(num_edges);
  const uint8_t* p = payload.data() + kFixed;
  for (uint32_t i = 0; i < num_edges; ++i, p += 8) {
    out->spg.edges.emplace_back(Get32(p), Get32(p + 4));
  }
  if (tail != 0) out->degraded_lower = Get32(p);
  return true;
}

std::vector<uint8_t> EncodeError(ErrorCode code, const std::string& message) {
  std::vector<uint8_t> out;
  out.reserve(4 + message.size());
  Put32(&out, static_cast<uint32_t>(code));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

bool DecodeError(std::span<const uint8_t> payload, ErrorCode* code,
                 std::string* message) {
  if (payload.size() < 4) return false;
  *code = static_cast<ErrorCode>(Get32(payload.data()));
  message->assign(payload.begin() + 4, payload.end());
  return true;
}

std::vector<uint8_t> EncodeUpdateRequest(const GraphDelta& delta,
                                         uint32_t flags) {
  std::vector<uint8_t> out;
  out.reserve(8 + delta.size() * 12);
  Put32(&out, static_cast<uint32_t>(delta.size()));
  Put32(&out, flags);
  for (const EdgeUpdate& upd : delta.updates()) {
    out.push_back(static_cast<uint8_t>(upd.op));
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
    Put32(&out, upd.u);
    Put32(&out, upd.v);
  }
  return out;
}

bool DecodeUpdateRequest(std::span<const uint8_t> payload, GraphDelta* delta,
                         uint32_t* flags) {
  if (payload.size() < 8) return false;
  const uint32_t count = Get32(payload.data());
  const uint32_t f = Get32(payload.data() + 4);
  if ((f & ~kUpdateFlagDefer) != 0) return false;
  if (payload.size() != 8 + static_cast<size_t>(count) * 12) return false;
  delta->Clear();
  const uint8_t* p = payload.data() + 8;
  for (uint32_t i = 0; i < count; ++i, p += 12) {
    if (p[0] > static_cast<uint8_t>(EdgeOp::kDelete)) return false;
    if (p[1] != 0 || p[2] != 0 || p[3] != 0) return false;
    delta->Add(EdgeUpdate{static_cast<EdgeOp>(p[0]), Get32(p + 4),
                          Get32(p + 8)});
  }
  *flags = f;
  return true;
}

std::vector<uint8_t> EncodeUpdateResponse(const UpdateStats& stats) {
  std::vector<uint8_t> out;
  out.reserve(48);
  Put64(&out, stats.applied_inserts);
  Put64(&out, stats.applied_deletes);
  Put64(&out, stats.noop_updates);
  Put64(&out, stats.invalid_updates);
  Put32(&out, stats.repaired_columns);
  Put32(&out, stats.rebuilt_columns);
  Put32(&out, stats.deferred_columns);
  Put32(&out, 0);  // reserved
  return out;
}

bool DecodeUpdateResponse(std::span<const uint8_t> payload,
                          UpdateStats* stats) {
  if (payload.size() != 48) return false;
  if (Get32(payload.data() + 44) != 0) return false;
  *stats = UpdateStats();
  stats->applied_inserts = Get64(payload.data());
  stats->applied_deletes = Get64(payload.data() + 8);
  stats->noop_updates = Get64(payload.data() + 16);
  stats->invalid_updates = Get64(payload.data() + 24);
  stats->repaired_columns = Get32(payload.data() + 32);
  stats->rebuilt_columns = Get32(payload.data() + 36);
  stats->deferred_columns = Get32(payload.data() + 40);
  return true;
}

std::vector<uint8_t> EncodeBusy(uint32_t retry_after_ms,
                                uint32_t queue_depth) {
  std::vector<uint8_t> out;
  Put32(&out, retry_after_ms);
  Put32(&out, queue_depth);
  return out;
}

bool DecodeBusy(std::span<const uint8_t> payload, uint32_t* retry_after_ms,
                uint32_t* queue_depth) {
  if (payload.size() != 8 && payload.size() != 4) return false;
  *retry_after_ms = Get32(payload.data());
  if (queue_depth != nullptr) {
    *queue_depth = payload.size() == 8 ? Get32(payload.data() + 4) : 0;
  }
  return true;
}

}  // namespace qbs::server

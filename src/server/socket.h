// RAII TCP socket with the I/O discipline the serving stack requires
// everywhere: every syscall rides out EINTR, every send is SIGPIPE-safe
// (MSG_NOSIGNAL) and resumes partial writes, and every operation can be
// bounded by a poll-based timeout so one stalled peer can never pin a
// thread forever (the slowloris defense). Both the daemon (server.cc) and
// the client (client.cc) speak to the network exclusively through this
// class — raw ::send/::recv calls are confined to socket.cc.
//
// An optional FaultInjector (server/fault_injection.h) intercepts each
// operation, which is how the chaos tests drive short reads/writes,
// stalls, resets, and torn frames through the exact code paths production
// traffic uses.

#ifndef QBS_SERVER_SOCKET_H_
#define QBS_SERVER_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "server/fault_injection.h"

namespace qbs::server {

/// Outcome of a socket operation.
enum class IoStatus : uint8_t {
  kOk,       // operation completed
  kTimeout,  // the poll deadline expired before the operation completed
  kClosed,   // orderly EOF from the peer (recv only)
  kError,    // syscall failure (or injected reset); last_errno() says why
};

const char* IoStatusName(IoStatus status);

/// Thread-safe strerror: connection threads report errno concurrently, and
/// strerror(3) may share a static buffer (clang-tidy concurrency-mt-unsafe).
std::string ErrnoString(int errnum);

/// Timeout convention: milliseconds; kNoTimeout (-1) blocks forever,
/// 0 means "already due" (useful when a deadline has run out).
inline constexpr int32_t kNoTimeout = -1;

class Socket {
 public:
  Socket() = default;
  /// Adopts an already-open fd (e.g. from accept()).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Blocking TCP connect to host:port (numeric IPv4). Returns an invalid
  /// socket (filling *error) on failure.
  static Socket ConnectTcp(const std::string& host, uint16_t port,
                           std::string* error);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Installs a fault hook (not owned; must outlive the socket's use).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  void SetNoDelay();

  /// Sends all of `data`, resuming partial writes, riding out EINTR, and
  /// never raising SIGPIPE. `timeout_ms` bounds the TOTAL operation:
  /// kTimeout means the peer stopped draining mid-frame, after which the
  /// stream is torn and the connection should be closed.
  IoStatus SendAll(std::span<const uint8_t> data, int32_t timeout_ms);

  /// Receives up to `capacity` bytes, waiting at most `timeout_ms` for the
  /// first byte. kClosed (with *received = 0) is orderly EOF.
  IoStatus RecvSome(uint8_t* buf, size_t capacity, size_t* received,
                    int32_t timeout_ms);

  /// Shuts down both directions without closing the fd — wakes any thread
  /// blocked in poll/recv on this socket (used by server stop paths).
  void ShutdownBoth();

  void Close();

  /// errno captured at the last kError (ECONNRESET for injected resets).
  int last_errno() const { return last_errno_; }

 private:
  /// Waits for `events` (POLLIN/POLLOUT) within the remaining budget.
  IoStatus PollFor(short events, int32_t timeout_ms);

  int fd_ = -1;
  FaultInjector* injector_ = nullptr;  // not owned
  int last_errno_ = 0;
};

/// Listening TCP socket: confines the listen-side syscalls (socket, bind,
/// listen, accept) to socket.cc the same way Socket confines the stream
/// side, so the qbs_lint raw-socket rule holds with an empty allowlist.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds host:port (numeric IPv4; port 0 picks an ephemeral port) and
  /// starts listening. Returns false and fills *error on failure.
  bool Open(const std::string& host, uint16_t port, std::string* error);

  bool valid() const { return fd_ >= 0; }

  /// The actually-bound port (resolves port 0 to the kernel's pick).
  uint16_t bound_port() const { return port_; }

  /// Blocks until a connection arrives. Returns the accepted fd, or -1
  /// once the listener was Shutdown()/Close()d or accept fails
  /// unrecoverably; EINTR is retried internally.
  int Accept();

  /// Unblocks any Accept() in flight without closing the fd (shutdown on
  /// a listening socket unblocks accept on Linux).
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Shuts down both directions of an fd owned elsewhere — wakes a thread
/// blocked in recv/poll on it. The server's stop path uses this on
/// accepted fds whose owning Socket lives on a connection thread.
void ShutdownFd(int fd);

/// Closes an fd that was never handed to a Socket.
void CloseFd(int fd);

}  // namespace qbs::server

#endif  // QBS_SERVER_SOCKET_H_

#include "server/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace qbs::server {
namespace {

using Clock = std::chrono::steady_clock;

/// Remaining budget in ms, clamped at 0 once the deadline passed.
int32_t RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left <= 0 ? 0 : static_cast<int32_t>(left);
}

// strerror_r has two incompatible signatures (XSI returns int and fills the
// buffer; GNU returns the message pointer); overloads on the return type
// pick the right interpretation at compile time. Each libc uses exactly one,
// so the other overload is always unused.
[[maybe_unused]] std::string StrerrorResult(int rc, const char* buf,
                                            int errnum) {
  return rc == 0 ? std::string(buf)
                 : "errno " + std::to_string(errnum);
}
[[maybe_unused]] std::string StrerrorResult(const char* msg,
                                            const char* /*buf*/,
                                            int /*errnum*/) {
  return msg;
}

}  // namespace

std::string ErrnoString(int errnum) {
  char buf[256];
  buf[0] = '\0';
  return StrerrorResult(strerror_r(errnum, buf, sizeof(buf)), buf, errnum);
}

const char* IoStatusName(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kClosed:
      return "closed";
    case IoStatus::kError:
      return "error";
  }
  return "?";
}

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      injector_(std::exchange(other.injector_, nullptr)),
      last_errno_(other.last_errno_) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    injector_ = std::exchange(other.injector_, nullptr);
    last_errno_ = other.last_errno_;
  }
  return *this;
}

Socket Socket::ConnectTcp(const std::string& host, uint16_t port,
                          std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + ErrnoString(errno);
    return Socket();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address: " + host;
    ::close(fd);
    return Socket();
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error != nullptr) {
      *error = std::string("connect: ") + ErrnoString(errno);
    }
    ::close(fd);
    return Socket();
  }
  return Socket(fd);
}

void Socket::SetNoDelay() {
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoStatus Socket::PollFor(short events, int32_t timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = events;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return IoStatus::kOk;  // readable/writable (or HUP: let the
                                       // syscall surface the close)
    if (rc == 0) return IoStatus::kTimeout;
    if (errno == EINTR) continue;
    last_errno_ = errno;
    return IoStatus::kError;
  }
}

IoStatus Socket::SendAll(std::span<const uint8_t> data, int32_t timeout_ms) {
  const bool bounded = timeout_ms >= 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  size_t sent = 0;
  while (sent < data.size()) {
    size_t want = data.size() - sent;
    if (injector_ != nullptr) {
      const IoFault fault = injector_->OnSend(want);
      switch (fault.kind) {
        case IoFault::Kind::kNone:
          break;
        case IoFault::Kind::kShort:
          want = std::max<size_t>(1, std::min(fault.cap, want));
          break;
        case IoFault::Kind::kStall:
          std::this_thread::sleep_for(
              std::chrono::milliseconds(fault.stall_ms));
          break;
        case IoFault::Kind::kReset:
          // Make the injected reset real: the peer observes the torn
          // stream, and every later op on this socket fails too.
          ShutdownBoth();
          last_errno_ = ECONNRESET;
          return IoStatus::kError;
      }
    }
    const IoStatus ready =
        PollFor(POLLOUT, bounded ? RemainingMs(deadline) : kNoTimeout);
    if (ready != IoStatus::kOk) return ready;
    const ssize_t n = ::send(fd_, data.data() + sent, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // re-poll; EAGAIN can follow a spurious wakeup
      }
      last_errno_ = errno;
      return IoStatus::kError;
    }
    sent += static_cast<size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus Socket::RecvSome(uint8_t* buf, size_t capacity, size_t* received,
                          int32_t timeout_ms) {
  *received = 0;
  size_t want = capacity;
  if (injector_ != nullptr) {
    const IoFault fault = injector_->OnRecv(capacity);
    switch (fault.kind) {
      case IoFault::Kind::kNone:
        break;
      case IoFault::Kind::kShort:
        want = std::max<size_t>(1, std::min(fault.cap, capacity));
        break;
      case IoFault::Kind::kStall:
        std::this_thread::sleep_for(std::chrono::milliseconds(fault.stall_ms));
        break;
      case IoFault::Kind::kReset:
        ShutdownBoth();
        last_errno_ = ECONNRESET;
        return IoStatus::kError;
    }
  }
  for (;;) {
    const IoStatus ready = PollFor(POLLIN, timeout_ms);
    if (ready != IoStatus::kOk) return ready;
    const ssize_t n = ::recv(fd_, buf, want, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      last_errno_ = errno;
      return IoStatus::kError;
    }
    if (n == 0) return IoStatus::kClosed;
    *received = static_cast<size_t>(n);
    return IoStatus::kOk;
  }
}

bool ListenSocket::Open(const std::string& host, uint16_t port,
                        std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + ErrnoString(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad listen address: " + host;
    CloseFd(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = std::string("bind: ") + ErrnoString(errno);
    CloseFd(fd);
    return false;
  }
  if (::listen(fd, 128) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + ErrnoString(errno);
    CloseFd(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + ErrnoString(errno);
    }
    CloseFd(fd);
    return false;
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return true;
}

int ListenSocket::Accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;  // listener shut down, or unrecoverable
  }
}

void ListenSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace qbs::server

#include "server/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

namespace qbs::server {
namespace {

using Clock = std::chrono::steady_clock;

/// splitmix64 finalizer — the jitter stream. Local copy so the backoff
/// schedule is a frozen function of the policy, not of whatever the fault
/// injector's mixer evolves into.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint32_t RetryBackoff::DelayMs(uint32_t retry, uint32_t server_hint_ms) const {
  double base = static_cast<double>(policy_.base_backoff_ms);
  for (uint32_t i = 0; i < retry; ++i) {
    base *= policy_.multiplier;
    if (base >= static_cast<double>(policy_.max_backoff_ms)) break;
  }
  base = std::min(base, static_cast<double>(policy_.max_backoff_ms));
  // Seeded jitter in [1 - jitter, 1 + jitter]: a pure function of
  // (seed, retry), so replays produce the identical schedule.
  const double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    const uint64_t draw = Mix64(policy_.seed ^ Mix64(retry + 1));
    const double unit =
        static_cast<double>(draw >> 11) / 9007199254740992.0;  // [0, 1)
    base *= 1.0 + jitter * (2.0 * unit - 1.0);
  }
  const uint32_t delay =
      static_cast<uint32_t>(std::llround(std::max(base, 0.0)));
  return std::max(delay, server_hint_ms);
}

QueryClient::~QueryClient() { Close(); }

QueryClient::QueryClient(QueryClient&& other) noexcept
    : sock_(std::move(other.sock_)),
      options_(other.options_),
      host_(std::move(other.host_)),
      port_(other.port_),
      reader_(std::move(other.reader_)),
      retry_after_ms_(other.retry_after_ms_),
      busy_queue_depth_(other.busy_queue_depth_),
      last_error_code_(other.last_error_code_),
      last_error_(std::move(other.last_error_)) {}

QueryClient& QueryClient::operator=(QueryClient&& other) noexcept {
  if (this != &other) {
    Close();
    sock_ = std::move(other.sock_);
    options_ = other.options_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    reader_ = std::move(other.reader_);
    retry_after_ms_ = other.retry_after_ms_;
    busy_queue_depth_ = other.busy_queue_depth_;
    last_error_code_ = other.last_error_code_;
    last_error_ = std::move(other.last_error_);
  }
  return *this;
}

bool QueryClient::Connect(const std::string& host, uint16_t port,
                          const ClientOptions& options) {
  Close();
  host_ = host;
  port_ = port;
  options_ = options;
  std::string error;
  Socket sock = Socket::ConnectTcp(host, port, &error);
  if (!sock.valid()) {
    last_error_ = error;
    return false;
  }
  sock.SetNoDelay();
  sock.set_fault_injector(options_.fault_injector);
  sock_ = std::move(sock);
  reader_ = FrameReader();  // fresh framing state for the new stream
  return true;
}

bool QueryClient::Reconnect() {
  if (host_.empty()) {
    last_error_ = "no prior Connect() to redial";
    return false;
  }
  return Connect(host_, port_, options_);
}

void QueryClient::Close() { sock_.Close(); }

bool QueryClient::SendFrame(FrameType type, std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  AppendFrame(&frame, type, payload);
  const IoStatus status = sock_.SendAll(frame, options_.write_timeout_ms);
  if (status != IoStatus::kOk) {
    last_error_ = std::string("send: ") +
                  (status == IoStatus::kTimeout
                       ? "timed out"
                       : ErrnoString(sock_.last_errno()));
    return false;
  }
  return true;
}

bool QueryClient::ReadFrame(Frame* reply) {
  uint8_t buf[64 * 1024];
  for (;;) {
    switch (reader_.Next(reply)) {
      case FrameReader::Status::kFrame:
        return true;
      case FrameReader::Status::kBad:
        last_error_ = "protocol error from server: " + reader_.error();
        return false;
      case FrameReader::Status::kNeedMore:
        break;
    }
    size_t n = 0;
    const IoStatus status =
        sock_.RecvSome(buf, sizeof(buf), &n, options_.read_timeout_ms);
    if (status != IoStatus::kOk) {
      switch (status) {
        case IoStatus::kTimeout:
          last_error_ = "recv: timed out waiting for reply";
          break;
        case IoStatus::kClosed:
          last_error_ = "connection closed by server";
          break;
        default:
          last_error_ = std::string("recv: ") + ErrnoString(sock_.last_errno());
          break;
      }
      return false;
    }
    reader_.Feed(std::span<const uint8_t>(buf, n));
  }
}

bool QueryClient::RoundTrip(FrameType type, std::span<const uint8_t> payload,
                            Frame* reply) {
  if (!sock_.valid()) {
    last_error_ = "not connected";
    return false;
  }
  if (!SendFrame(type, payload) || !ReadFrame(reply)) {
    Close();
    return false;
  }
  return true;
}

QueryClient::RpcStatus QueryClient::Query(const QueryRequest& request,
                                          QueryResponse* response) {
  Frame reply;
  if (!RoundTrip(FrameType::kQueryRequest, EncodeQueryRequest(request),
                 &reply)) {
    return RpcStatus::kTransportError;
  }
  switch (reply.type) {
    case FrameType::kQueryResponse:
      if (!DecodeQueryResponse(reply.payload, response)) {
        last_error_ = "undecodable query response";
        Close();
        return RpcStatus::kTransportError;
      }
      return RpcStatus::kOk;
    case FrameType::kBusy: {
      uint32_t hint = 0;
      uint32_t depth = 0;
      if (DecodeBusy(reply.payload, &hint, &depth)) {
        retry_after_ms_ = hint;
        busy_queue_depth_ = depth;
      }
      return RpcStatus::kBusy;
    }
    case FrameType::kError: {
      ErrorCode code = ErrorCode::kInternal;
      std::string message;
      if (DecodeError(reply.payload, &code, &message)) {
        last_error_ = message;
      } else {
        last_error_ = "undecodable error frame";
      }
      last_error_code_ = code;
      return code == ErrorCode::kDeadlineExceeded
                 ? RpcStatus::kDeadlineExceeded
                 : RpcStatus::kRemoteError;
    }
    default:
      last_error_ = "unexpected reply frame type " +
                    std::to_string(static_cast<unsigned>(reply.type));
      Close();
      return RpcStatus::kTransportError;
  }
}

QueryClient::RpcStatus QueryClient::QueryWithRetry(const QueryRequest& request,
                                                   QueryResponse* response,
                                                   const RetryPolicy& policy,
                                                   RetryStats* stats) {
  const RetryBackoff backoff(policy);
  const uint32_t max_attempts = std::max<uint32_t>(policy.max_attempts, 1);
  const auto start = Clock::now();
  RetryStats local;
  RpcStatus status = RpcStatus::kTransportError;
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const uint32_t hint =
          status == RpcStatus::kBusy ? retry_after_ms_ : 0;
      const uint32_t delay_ms = backoff.DelayMs(attempt - 1, hint);
      if (policy.overall_deadline_ms > 0) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - start)
                .count();
        if (elapsed + delay_ms >= policy.overall_deadline_ms) break;
      }
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      local.total_backoff_ms += delay_ms;
    }
    if (!connected()) {
      if (!Reconnect()) {
        // Counts as a spent attempt: a dead endpoint must not spin the
        // loop without backoff.
        ++local.attempts;
        status = RpcStatus::kTransportError;
        if (!policy.retry_transport_errors) break;
        ++local.transport_retries;
        continue;
      }
      ++local.reconnects;
    }
    ++local.attempts;
    status = Query(request, response);
    if (status == RpcStatus::kOk || status == RpcStatus::kRemoteError ||
        status == RpcStatus::kDeadlineExceeded) {
      break;  // the server answered: terminal either way
    }
    if (status == RpcStatus::kBusy) {
      local.last_queue_depth = busy_queue_depth_;
      ++local.busy_retries;
      continue;
    }
    // kTransportError
    if (!policy.retry_transport_errors) break;
    ++local.transport_retries;
  }
  // The final attempt's failure never fed a retry: don't count it as one.
  if (status == RpcStatus::kBusy && local.busy_retries > 0) {
    --local.busy_retries;
  }
  if (status == RpcStatus::kTransportError && local.transport_retries > 0) {
    --local.transport_retries;
  }
  if (stats != nullptr) *stats = local;
  return status;
}

QueryClient::RpcStatus QueryClient::Update(const GraphDelta& delta,
                                           UpdateStats* stats,
                                           uint32_t flags) {
  Frame reply;
  if (!RoundTrip(FrameType::kUpdateRequest, EncodeUpdateRequest(delta, flags),
                 &reply)) {
    return RpcStatus::kTransportError;
  }
  switch (reply.type) {
    case FrameType::kUpdateResponse: {
      UpdateStats decoded;
      if (!DecodeUpdateResponse(reply.payload, &decoded)) {
        last_error_ = "undecodable update response";
        Close();
        return RpcStatus::kTransportError;
      }
      if (stats != nullptr) *stats = decoded;
      return RpcStatus::kOk;
    }
    case FrameType::kError: {
      ErrorCode code = ErrorCode::kInternal;
      std::string message;
      if (DecodeError(reply.payload, &code, &message)) {
        last_error_ = message;
      } else {
        last_error_ = "undecodable error frame";
      }
      last_error_code_ = code;
      return RpcStatus::kRemoteError;
    }
    default:
      last_error_ = "unexpected reply frame type " +
                    std::to_string(static_cast<unsigned>(reply.type));
      Close();
      return RpcStatus::kTransportError;
  }
}

bool QueryClient::Ping() {
  Frame reply;
  return RoundTrip(FrameType::kPing, {}, &reply) &&
         reply.type == FrameType::kPong;
}

bool QueryClient::Shutdown() {
  Frame reply;
  return RoundTrip(FrameType::kShutdown, {}, &reply) &&
         reply.type == FrameType::kShutdownAck;
}

}  // namespace qbs::server

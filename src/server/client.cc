#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qbs::server {
namespace {

bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

QueryClient::~QueryClient() { Close(); }

QueryClient::QueryClient(QueryClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      reader_(std::move(other.reader_)),
      retry_after_ms_(other.retry_after_ms_),
      last_error_(std::move(other.last_error_)) {}

QueryClient& QueryClient::operator=(QueryClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
    retry_after_ms_ = other.retry_after_ms_;
    last_error_ = std::move(other.last_error_);
  }
  return *this;
}

bool QueryClient::Connect(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    last_error_ = std::string("socket: ") + strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "bad address: " + host;
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    last_error_ = std::string("connect: ") + strerror(errno);
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  reader_ = FrameReader();  // fresh framing state for the new stream
  return true;
}

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool QueryClient::SendFrame(FrameType type, std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  AppendFrame(&frame, type, payload);
  if (!WriteAll(fd_, frame.data(), frame.size())) {
    last_error_ = std::string("send: ") + strerror(errno);
    return false;
  }
  return true;
}

bool QueryClient::ReadFrame(Frame* reply) {
  uint8_t buf[64 * 1024];
  for (;;) {
    switch (reader_.Next(reply)) {
      case FrameReader::Status::kFrame:
        return true;
      case FrameReader::Status::kBad:
        last_error_ = "protocol error from server: " + reader_.error();
        return false;
      case FrameReader::Status::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      last_error_ = n == 0 ? "connection closed by server"
                           : std::string("recv: ") + strerror(errno);
      return false;
    }
    reader_.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
  }
}

bool QueryClient::RoundTrip(FrameType type, std::span<const uint8_t> payload,
                            Frame* reply) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return false;
  }
  if (!SendFrame(type, payload) || !ReadFrame(reply)) {
    Close();
    return false;
  }
  return true;
}

QueryClient::RpcStatus QueryClient::Query(const QueryRequest& request,
                                          QueryResponse* response) {
  Frame reply;
  if (!RoundTrip(FrameType::kQueryRequest, EncodeQueryRequest(request),
                 &reply)) {
    return RpcStatus::kTransportError;
  }
  switch (reply.type) {
    case FrameType::kQueryResponse:
      if (!DecodeQueryResponse(reply.payload, response)) {
        last_error_ = "undecodable query response";
        Close();
        return RpcStatus::kTransportError;
      }
      return RpcStatus::kOk;
    case FrameType::kBusy: {
      uint32_t hint = 0;
      if (DecodeBusy(reply.payload, &hint)) retry_after_ms_ = hint;
      return RpcStatus::kBusy;
    }
    case FrameType::kError: {
      ErrorCode code = ErrorCode::kInternal;
      std::string message;
      if (DecodeError(reply.payload, &code, &message)) {
        last_error_ = message;
      } else {
        last_error_ = "undecodable error frame";
      }
      return RpcStatus::kRemoteError;
    }
    default:
      last_error_ = "unexpected reply frame type " +
                    std::to_string(static_cast<unsigned>(reply.type));
      Close();
      return RpcStatus::kTransportError;
  }
}

bool QueryClient::Ping() {
  Frame reply;
  return RoundTrip(FrameType::kPing, {}, &reply) &&
         reply.type == FrameType::kPong;
}

bool QueryClient::Shutdown() {
  Frame reply;
  return RoundTrip(FrameType::kShutdown, {}, &reply) &&
         reply.type == FrameType::kShutdownAck;
}

}  // namespace qbs::server

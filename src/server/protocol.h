// The `qbs serve` wire protocol: length-prefixed binary frames carrying
// the unified QueryRequest/QueryResponse structs (core/query_api.h).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic     "QBSP" (0x50534251 as a LE u32)
//        4     1  version   kProtocolVersion
//        5     1  type      FrameType
//        6     2  reserved  must be 0
//        8     4  length    payload bytes that follow the 12-byte header
//
// The decoder is defensive by construction: frames are parsed from an
// untrusted byte stream, so a bad magic/version/type, a nonzero reserved
// field, or a length beyond the caller's cap surfaces as kBad — never a
// crash, never unbounded buffering. Truncated input is simply kNeedMore
// until the peer delivers the rest (or closes the connection).
//
// Payload codecs are pure functions over byte vectors, so the whole
// protocol is unit-testable without a socket in sight.

#ifndef QBS_SERVER_PROTOCOL_H_
#define QBS_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/query_api.h"
#include "core/updatable_index.h"
#include "graph/graph_delta.h"

namespace qbs::server {

inline constexpr uint32_t kProtocolMagic = 0x50534251u;  // "QBSP"
inline constexpr uint8_t kProtocolVersion = 1;
/// Frame header bytes before the payload.
inline constexpr size_t kFrameHeaderBytes = 12;
/// Hard ceiling a FrameReader will ever accept, regardless of its
/// configured cap (a response SPG on a huge graph is the largest payload).
inline constexpr uint32_t kMaxFramePayload = 64u << 20;
/// Default cap for server-side request parsing: requests are tiny, so
/// anything large is garbage or abuse.
inline constexpr uint32_t kMaxRequestPayload = 1u << 20;

enum class FrameType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kError = 3,
  /// Admission control pushed back: the request was NOT executed; retry
  /// later. Payload: u32 advisory retry-after hint in milliseconds.
  kBusy = 4,
  kPing = 5,
  kPong = 6,
  /// Ask the daemon to shut down cleanly (answered with kShutdownAck
  /// before the server stops accepting).
  kShutdown = 7,
  kShutdownAck = 8,
  /// An edge edit script for the daemon's index (requires `qbs serve
  /// --updatable`; otherwise answered with a kBadRequest error). Applied
  /// atomically w.r.t. queries, answered with kUpdateResponse.
  kUpdateRequest = 9,
  kUpdateResponse = 10,
};

/// Update-request flag: defer delete-dirtied column rebuilds to a later
/// consolidation instead of rebuilding them in this batch (the index may
/// serve stale answers until then — opt-in eventual consistency).
inline constexpr uint32_t kUpdateFlagDefer = 1u << 0;

/// Error payload codes.
enum class ErrorCode : uint32_t {
  kBadRequest = 1,       // undecodable or malformed request payload
  kVertexOutOfRange = 2, // u or v >= |V|
  kInternal = 3,
  kShuttingDown = 4,
  /// The request's deadline_ms ran out before its query began executing
  /// (at receipt, after an admission wait, or after injected slowness).
  /// The request was NOT executed; the connection stays open.
  kDeadlineExceeded = 5,
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<uint8_t> payload;
};

/// Appends one complete frame (header + payload) to `out`.
void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 std::span<const uint8_t> payload);

/// Incremental frame decoder over an untrusted byte stream.
class FrameReader {
 public:
  enum class Status {
    kFrame,     // *frame was filled with one complete frame
    kNeedMore,  // no complete frame buffered yet
    kBad,       // stream is corrupt; error() says why. Unrecoverable:
                // framing is lost, the connection should be closed.
  };

  /// `max_payload` caps accepted frame lengths (clamped to
  /// kMaxFramePayload).
  explicit FrameReader(uint32_t max_payload = kMaxFramePayload);

  /// Feeds raw bytes from the stream.
  void Feed(std::span<const uint8_t> data);

  /// Extracts the next complete frame, if any. Once kBad is returned every
  /// subsequent call returns kBad.
  Status Next(Frame* frame);

  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet returned as frames: > 0 means a frame is
  /// in flight (the server's read-timeout/idle-reaper distinction).
  size_t PendingBytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already handed out
  uint32_t max_payload_;
  bool bad_ = false;
  std::string error_;
};

// ---- Payload codecs -------------------------------------------------------
// Every Decode* returns false (leaving *out unspecified) on a payload of
// the wrong size or with out-of-range enum values; they never read past
// the span.

/// 24-byte fixed layout, deadline_ms last. Decoding also accepts the
/// 20-byte pre-deadline layout (deadline = kNoDeadline), so a client built
/// before deadlines landed keeps working against a new server.
std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request);
bool DecodeQueryRequest(std::span<const uint8_t> payload, QueryRequest* out);

/// The response payload carries the deterministic answer (u, v, distance,
/// flags, edges), the cache-hit bit, and the total-edge-scan diagnostic.
/// Degraded answers (kResponseFlagDegraded) append the u32 lower bound
/// after the edge list; the flag gates its presence.
std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& response);
bool DecodeQueryResponse(std::span<const uint8_t> payload,
                         QueryResponse* out);

std::vector<uint8_t> EncodeError(ErrorCode code, const std::string& message);
bool DecodeError(std::span<const uint8_t> payload, ErrorCode* code,
                 std::string* message);

/// Update request payload: u32 edit count, u32 flags (kUpdateFlag* only;
/// unknown bits reject), then one 12-byte record per edit — u8 op
/// (EdgeOp), 3 reserved bytes (must be 0), u32 u, u32 v. Endpoint range
/// checks happen server-side against |V| (out-of-range edits count as
/// invalid, they don't poison the frame).
std::vector<uint8_t> EncodeUpdateRequest(const GraphDelta& delta,
                                         uint32_t flags = 0);
bool DecodeUpdateRequest(std::span<const uint8_t> payload, GraphDelta* delta,
                         uint32_t* flags);

/// Update response payload: the UpdateStats the apply produced — four u64
/// counters (applied inserts/deletes, no-ops, invalid) then four u32
/// fields (repaired, rebuilt, deferred columns, reserved 0). 48 bytes.
std::vector<uint8_t> EncodeUpdateResponse(const UpdateStats& stats);
bool DecodeUpdateResponse(std::span<const uint8_t> payload,
                          UpdateStats* stats);

/// Busy payload: retry-after hint + the admission queue depth observed at
/// rejection (how deep the backlog was — `qbs load` turns this into a
/// shed-rate report). Decoding accepts the legacy 4-byte hint-only layout
/// (depth reported as 0).
std::vector<uint8_t> EncodeBusy(uint32_t retry_after_ms,
                                uint32_t queue_depth = 0);
bool DecodeBusy(std::span<const uint8_t> payload, uint32_t* retry_after_ms,
                uint32_t* queue_depth = nullptr);

}  // namespace qbs::server

#endif  // QBS_SERVER_PROTOCOL_H_

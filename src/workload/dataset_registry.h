// The dataset registry: scaled-down synthetic stand-ins for the 12
// real-world networks of Table 1.
//
// The evaluation environment is offline, so the SNAP/KONECT/LAW/Lemur
// downloads are unavailable. Each stand-in reproduces the structural regime
// the QbS results depend on — degree skew (hub-dominated vs. even), density,
// and small diameter — using the matching generator:
//   * Barabási–Albert for social / co-authorship / topology networks with
//     moderate hubs (Douban, DBLP, Skitter, LiveJournal, Orkut);
//   * R-MAT for web/communication graphs with extreme hubs (Youtube,
//     WikiTalk, Baidu, Twitter, uk2007, ClueWeb09);
//   * Watts–Strogatz for Friendster, whose degrees are evenly distributed
//     (the regime where the paper observes near-zero "case (i)" coverage).
//
// Real edge-list files drop in unchanged through ReadEdgeList(); the
// registry only substitutes data, not code paths.

#ifndef QBS_WORKLOAD_DATASET_REGISTRY_H_
#define QBS_WORKLOAD_DATASET_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace qbs {

enum class GeneratorKind {
  kBarabasiAlbert,
  kErdosRenyi,
  kWattsStrogatz,
  kRMat,
};

struct DatasetSpec {
  std::string name;     // paper dataset this stands in for
  std::string abbrev;   // Table 1 abbreviation (DO, DB, ..., CW)
  std::string network_type;
  GeneratorKind kind = GeneratorKind::kBarabasiAlbert;

  // Generator parameters at scale 1.0.
  uint32_t n = 0;        // vertices (BA/ER/WS) — RMat uses rmat_scale
  uint32_t param = 0;    // BA: m; WS: k; ER/RMat: edge factor
  double beta = 0.0;     // WS rewiring probability
  uint32_t rmat_scale = 0;
  double rmat_a = 0.57, rmat_b = 0.19, rmat_c = 0.19;

  // Table 1 reference values (the real dataset), for side-by-side output.
  double paper_vertices_m = 0.0;  // millions
  double paper_edges_m = 0.0;     // millions
  double paper_avg_deg = 0.0;
  double paper_avg_dist = 0.0;
};

// All 12 stand-ins, ordered as Table 1.
const std::vector<DatasetSpec>& PaperDatasets();

// Look up a spec by abbreviation (e.g. "DO"); aborts if unknown.
const DatasetSpec& DatasetByAbbrev(const std::string& abbrev);

// Generates the dataset at the given scale factor (vertex count multiplier;
// R-MAT rounds to the nearest power of two) and reduces it to its largest
// connected component, as is standard for the real datasets. Deterministic.
Graph MakeDataset(const DatasetSpec& spec, double scale = 1.0);

}  // namespace qbs

#endif  // QBS_WORKLOAD_DATASET_REGISTRY_H_

// Seeded synthetic serving workloads for `qbs serve`: Zipfian pair
// popularity (a small universe of distinct pairs, rank-r probability
// proportional to 1/r^s — the classic hot-pair skew that makes a result
// cache earn its keep) with optionally bursty Poisson arrivals (alternating
// base-rate and burst-rate phases).
//
// Everything is a pure function of (graph, options) — same seed, same
// graph, same byte-for-byte request sequence and arrival schedule — so
// load-test results (and cache hit-rates under a single connection) are
// exactly reproducible, which bench_serve and the CI smoke test assert.

#ifndef QBS_WORKLOAD_SYNTHETIC_WORKLOAD_H_
#define QBS_WORKLOAD_SYNTHETIC_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/query_api.h"
#include "graph/graph.h"
#include "workload/query_workload.h"

namespace qbs {

struct WorkloadOptions {
  /// Total requests generated.
  size_t num_queries = 10000;
  /// Size of the distinct-pair universe the Zipfian ranks draw from
  /// (clamped so it stays sampleable). Smaller universe + small s = hotter
  /// workload = higher achievable cache hit-rate.
  size_t num_distinct_pairs = 1000;
  /// Zipf exponent s (rank-r mass proportional to 1/r^s). 0 = uniform over
  /// the universe.
  double zipf_s = 0.99;
  /// Stamped into every request.
  QueryMode mode = QueryMode::kSpg;
  uint32_t budget = 0;
  uint32_t flags = 0;
  /// Per-request relative deadline stamped into every request
  /// (kNoDeadline = none — the server answers kDeadlineExceeded for
  /// requests it cannot start in time).
  uint32_t deadline_ms = kNoDeadline;
  uint64_t seed = 42;

  /// Mean arrival rate in queries/second. 0 = closed loop: every
  /// arrival_ns is 0 and the load driver fires as fast as the server
  /// admits.
  double arrival_rate_qps = 0.0;
  /// Arrivals alternate between phases at the base rate and phases at
  /// base * burst_factor (Poisson within each phase). burst_factor = 1
  /// disables burstiness.
  double burst_factor = 4.0;
  /// Number of alternating phases the query stream is split into.
  size_t phases = 16;
};

struct TimedQuery {
  QueryRequest request;
  /// Scheduled arrival offset from workload start (0 in closed-loop mode).
  uint64_t arrival_ns = 0;
};

/// The distinct-pair universe in Zipf rank order (rank 0 = hottest).
/// Deterministic in options.seed; pairs have u != v when |V| > 1.
std::vector<QueryPair> WorkloadUniverse(const Graph& g,
                                        const WorkloadOptions& options);

/// The full request stream with arrival schedule. Deterministic in
/// options.seed.
std::vector<TimedQuery> GenerateWorkload(const Graph& g,
                                         const WorkloadOptions& options);

}  // namespace qbs

#endif  // QBS_WORKLOAD_SYNTHETIC_WORKLOAD_H_

#include "workload/synthetic_workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace qbs {

std::vector<QueryPair> WorkloadUniverse(const Graph& g,
                                        const WorkloadOptions& options) {
  // Re-derive the same universe GenerateWorkload uses: the seed stream for
  // universe sampling is decoupled (fixed offset) from the rank-draw
  // stream so changing num_queries never reshuffles which pairs are hot.
  const size_t universe = std::max<size_t>(options.num_distinct_pairs, 1);
  return SampleQueryPairs(g, universe, options.seed ^ 0x9e3779b97f4a7c15ULL);
}

std::vector<TimedQuery> GenerateWorkload(const Graph& g,
                                         const WorkloadOptions& options) {
  QBS_CHECK_GT(g.NumVertices(), 0u);
  const std::vector<QueryPair> universe = WorkloadUniverse(g, options);
  const size_t n = universe.size();

  // Zipfian CDF over ranks 0..n-1: mass(r) = 1 / (r + 1)^s.
  std::vector<double> cdf(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), options.zipf_s);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;

  Rng rng(options.seed);
  std::vector<TimedQuery> out;
  out.reserve(options.num_queries);

  // Bursty arrival schedule: the stream is cut into `phases` equal chunks
  // alternating base rate and base * burst_factor, Poisson (exponential
  // inter-arrivals) within each phase. Rate 0 = closed loop, arrival 0.
  const size_t phases = std::max<size_t>(options.phases, 1);
  const size_t phase_len =
      std::max<size_t>((options.num_queries + phases - 1) / phases, 1);
  const double base_qps = options.arrival_rate_qps;
  double clock_ns = 0.0;

  for (size_t i = 0; i < options.num_queries; ++i) {
    const double u = rng.UniformReal();
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const QueryPair& pair = universe[std::min(rank, n - 1)];

    TimedQuery q;
    q.request = QueryRequest(pair.u, pair.v, options.mode, options.budget,
                             options.flags, options.deadline_ms);
    if (base_qps > 0.0) {
      const bool burst = (i / phase_len) % 2 == 1;
      const double rate =
          base_qps * (burst ? std::max(options.burst_factor, 1e-9) : 1.0);
      // Exponential inter-arrival; 1 - U keeps log's argument in (0, 1].
      clock_ns += -std::log(1.0 - rng.UniformReal()) / rate * 1e9;
      q.arrival_ns = static_cast<uint64_t>(clock_ns);
    }
    out.push_back(q);
  }
  return out;
}

}  // namespace qbs

#include "workload/datasets.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "workload/dataset_registry.h"

namespace qbs {
namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<RealDatasetSpec> BuildRealRegistry() {
  auto entry = [](const char* name, const char* abbrev, const char* file,
                  const char* url, uint64_t hv, uint64_t he, double pv,
                  double pe) {
    RealDatasetSpec s;
    s.name = name;
    s.abbrev = abbrev;
    s.file = file;
    s.url = url;
    s.host_vertices = hv;
    s.host_edges = he;
    s.paper_vertices_m = pv;
    s.paper_edges_m = pe;
    return s;
  };
  // Table 1 order. URLs are the plain whitespace edge-list mirrors; hosts
  // that only ship zip/WebGraph/XML containers (Douban, Baidu, Twitter,
  // uk2007, ClueWeb09) carry an empty URL and must be fetched and unpacked
  // manually into <data_dir>/raw/ under the listed filename —
  // tools/fetch_datasets.py prints per-dataset instructions for those.
  // SHA-256 pins are trust-on-first-use until filled in (see the fetcher).
  std::vector<RealDatasetSpec> specs;
  specs.push_back(entry("douban", "DO", "soc-douban.txt", "", 154908, 327162,
                        0.2, 0.3));
  specs.push_back(entry(
      "dblp", "DB", "com-dblp.ungraph.txt.gz",
      "https://snap.stanford.edu/data/bigdata/communities/"
      "com-dblp.ungraph.txt.gz",
      317080, 1049866, 0.3, 1.1));
  specs.push_back(entry(
      "youtube", "YT", "com-youtube.ungraph.txt.gz",
      "https://snap.stanford.edu/data/bigdata/communities/"
      "com-youtube.ungraph.txt.gz",
      1134890, 2987624, 1.1, 3.0));
  specs.push_back(entry("wikitalk", "WK", "wiki-Talk.txt.gz",
                        "https://snap.stanford.edu/data/wiki-Talk.txt.gz",
                        2394385, 5021410, 2.4, 5.0));
  specs.push_back(entry("skitter", "SK", "as-skitter.txt.gz",
                        "https://snap.stanford.edu/data/as-skitter.txt.gz",
                        1696415, 11095298, 1.7, 11.1));
  specs.push_back(entry("baidu", "BA", "baidu-baike.txt", "", 2141300,
                        17794839, 2.1, 17.8));
  specs.push_back(entry(
      "livejournal", "LJ", "com-lj.ungraph.txt.gz",
      "https://snap.stanford.edu/data/bigdata/communities/"
      "com-lj.ungraph.txt.gz",
      3997962, 34681189, 4.8, 68.5));
  specs.push_back(entry(
      "orkut", "OR", "com-orkut.ungraph.txt.gz",
      "https://snap.stanford.edu/data/bigdata/communities/"
      "com-orkut.ungraph.txt.gz",
      3072441, 117185083, 3.1, 117.0));
  specs.push_back(entry("twitter", "TW", "twitter-2010.txt", "", 41652230,
                        1468365182, 41.7, 1500.0));
  specs.push_back(entry(
      "friendster", "FR", "com-friendster.ungraph.txt.gz",
      "https://snap.stanford.edu/data/bigdata/communities/"
      "com-friendster.ungraph.txt.gz",
      65608366, 1806067135, 65.6, 1800.0));
  specs.push_back(entry("uk2007", "UK", "uk-2007-05.txt", "", 105896555,
                        3738733648ull, 106.0, 3700.0));
  specs.push_back(entry("clueweb09", "CW", "clueweb09.txt", "", 1684868322ull,
                        7811385827ull, 1700.0, 7800.0));
  // Not in Table 1: a ~5 MB SNAP network that exercises the full
  // fetch -> convert -> cache -> bench pipeline in seconds.
  specs.push_back(entry("epinions", "", "soc-Epinions1.txt.gz",
                        "https://snap.stanford.edu/data/soc-Epinions1.txt.gz",
                        75879, 508837, 0.0, 0.0));
  return specs;
}

}  // namespace

const std::vector<RealDatasetSpec>& RealDatasets() {
  static const std::vector<RealDatasetSpec>* const kRegistry =
      new std::vector<RealDatasetSpec>(BuildRealRegistry());
  return *kRegistry;
}

const RealDatasetSpec* FindRealDataset(const std::string& name) {
  const std::string key = Lower(name);
  for (const RealDatasetSpec& s : RealDatasets()) {
    if (s.name == key || (!s.abbrev.empty() && Lower(s.abbrev) == key)) {
      return &s;
    }
  }
  return nullptr;
}

std::string AvailableDatasetNames() {
  std::string out;
  for (const RealDatasetSpec& s : RealDatasets()) {
    if (!out.empty()) out += ", ";
    out += s.name;
    if (!s.abbrev.empty()) out += " (" + s.abbrev + ")";
  }
  return out;
}

std::string DefaultDataDir() {
  // Read once during dataset resolution, before any worker threads exist;
  // nothing in the process calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("QBS_DATA_DIR");
  return env == nullptr || *env == '\0' ? std::string("data")
                                        : std::string(env);
}

std::string RawPathFor(const RealDatasetSpec& spec,
                       const std::string& data_dir) {
  return (std::filesystem::path(data_dir) / "raw" / spec.file).string();
}

std::string CachePathFor(const RealDatasetSpec& spec,
                         const std::string& data_dir) {
  return (std::filesystem::path(data_dir) / "cache" / (spec.name + ".qbsgrf"))
      .string();
}

std::optional<ResolvedDataset> ResolveDataset(const std::string& name,
                                              const std::string& data_dir,
                                              double synthetic_scale) {
  const RealDatasetSpec* spec = FindRealDataset(name);
  if (spec == nullptr) {
    std::cerr << "ResolveDataset: unknown dataset '" << name
              << "'. Available: " << AvailableDatasetNames() << '\n';
    return std::nullopt;
  }

  ResolvedDataset out;
  out.name = spec->name;
  out.abbrev = spec->abbrev;
  out.paper_vertices_m = spec->paper_vertices_m;
  out.paper_edges_m = spec->paper_edges_m;

  namespace fs = std::filesystem;
  const fs::path raw = RawPathFor(*spec, data_dir);
  const fs::path cache = CachePathFor(*spec, data_dir);
  std::error_code ec;
  const bool have_cache = fs::exists(cache, ec);
  const bool have_raw = fs::exists(raw, ec);
  if (have_cache || have_raw) {
    if (!have_cache) {
      fs::create_directories(cache.parent_path(), ec);  // best-effort
    }
    auto graph =
        LoadOrConvertDataset(raw.string(), cache.string(), &out.cache_info);
    if (graph.has_value()) {
      out.source = have_cache ? "cache" : "raw";
      out.graph = std::move(*graph);
      if (spec->host_vertices != 0 &&
          out.cache_info.raw_vertices != spec->host_vertices) {
        std::cerr << "ResolveDataset: " << spec->name << " parsed "
                  << out.cache_info.raw_vertices << " vertices but the host "
                  << "page reports " << spec->host_vertices
                  << " — wrong or truncated file?" << '\n';
      }
      return out;
    }
    std::cerr << "ResolveDataset: local data for '" << spec->name
              << "' unreadable, falling back" << '\n';
  }

  if (spec->abbrev.empty()) {
    std::cerr << "ResolveDataset: no local data for '" << spec->name
              << "' and no synthetic stand-in exists for it. Run: "
              << "tools/fetch_datasets.py --only " << spec->name << '\n';
    return std::nullopt;
  }
  std::cerr << "ResolveDataset: no local data for '" << spec->name
            << "' (expected " << raw.string() << "); using the synthetic "
            << "stand-in " << spec->abbrev << " at scale " << synthetic_scale
            << ". Run tools/fetch_datasets.py --only " << spec->name
            << " for the real graph." << '\n';
  out.source = "stand-in";
  out.graph = MakeDataset(DatasetByAbbrev(spec->abbrev), synthetic_scale);
  return out;
}

}  // namespace qbs

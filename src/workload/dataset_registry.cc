#include "workload/dataset_registry.h"

#include <cmath>

#include "gen/generators.h"
#include "graph/components.h"
#include "util/check.h"

namespace qbs {
namespace {

// GCC 12 at -O2 reports a spurious -Wmaybe-uninitialized inside
// std::string's copy when the spec structs below are pushed into the
// registry vector (a known false positive with inlined SSO strings).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

std::vector<DatasetSpec> BuildRegistry() {
  std::vector<DatasetSpec> specs;
  auto ba = [&](const char* name, const char* ab, const char* type,
                uint32_t n, uint32_t m, double pv, double pe, double pdeg,
                double pdist) {
    DatasetSpec s;
    s.name = name;
    s.abbrev = ab;
    s.network_type = type;
    s.kind = GeneratorKind::kBarabasiAlbert;
    s.n = n;
    s.param = m;
    s.paper_vertices_m = pv;
    s.paper_edges_m = pe;
    s.paper_avg_deg = pdeg;
    s.paper_avg_dist = pdist;
    specs.push_back(s);
  };
  auto rmat = [&](const char* name, const char* ab, const char* type,
                  uint32_t scale, uint32_t ef, double a, double pv, double pe,
                  double pdeg, double pdist) {
    DatasetSpec s;
    s.name = name;
    s.abbrev = ab;
    s.network_type = type;
    s.kind = GeneratorKind::kRMat;
    s.rmat_scale = scale;
    s.param = ef;
    s.rmat_a = a;
    s.rmat_b = (1.0 - a) / 3.0;
    s.rmat_c = (1.0 - a) / 3.0;
    s.paper_vertices_m = pv;
    s.paper_edges_m = pe;
    s.paper_avg_deg = pdeg;
    s.paper_avg_dist = pdist;
    specs.push_back(s);
  };
  auto ws = [&](const char* name, const char* ab, const char* type,
                uint32_t n, uint32_t k, double beta, double pv, double pe,
                double pdeg, double pdist) {
    DatasetSpec s;
    s.name = name;
    s.abbrev = ab;
    s.network_type = type;
    s.kind = GeneratorKind::kWattsStrogatz;
    s.n = n;
    s.param = k;
    s.beta = beta;
    s.paper_vertices_m = pv;
    s.paper_edges_m = pe;
    s.paper_avg_deg = pdeg;
    s.paper_avg_dist = pdist;
    specs.push_back(s);
  };

  // Ordered and parameterized after Table 1. Scale is roughly 1/25th to
  // 1/13000th of the real vertex counts; average degree and skew regime are
  // matched to the real network.
  ba("Douban", "DO", "social", 8000, 2, 0.2, 0.3, 4.2, 5.2);
  ba("DBLP", "DB", "co-authorship", 10000, 3, 0.3, 1.1, 6.6, 6.8);
  rmat("Youtube", "YT", "social", 14, 3, 0.57, 1.1, 3.0, 5.27, 5.3);
  rmat("WikiTalk", "WK", "communication", 14, 2, 0.62, 2.4, 5.0, 3.89, 3.9);
  ba("Skitter", "SK", "computer", 12000, 6, 1.7, 11.1, 13.08, 5.1);
  rmat("Baidu", "BA", "web", 14, 8, 0.60, 2.1, 17.8, 15.89, 4.1);
  ba("LiveJournal", "LJ", "social", 16000, 9, 4.8, 68.5, 17.79, 5.5);
  ba("Orkut", "OR", "social", 12000, 38, 3.1, 117.0, 76.28, 4.2);
  rmat("Twitter", "TW", "social", 15, 29, 0.60, 41.7, 1500.0, 57.74, 3.6);
  ws("Friendster", "FR", "social", 32768, 56, 0.3, 65.6, 1800.0, 55.06, 4.8);
  rmat("uk2007", "UK", "web", 15, 31, 0.60, 106.0, 3700.0, 62.77, 5.6);
  rmat("ClueWeb09", "CW", "computer", 17, 5, 0.62, 1700.0, 7800.0, 9.27,
       7.5);
  return specs;
}

#pragma GCC diagnostic pop

}  // namespace

const std::vector<DatasetSpec>& PaperDatasets() {
  static const std::vector<DatasetSpec>* const kRegistry =
      new std::vector<DatasetSpec>(BuildRegistry());
  return *kRegistry;
}

const DatasetSpec& DatasetByAbbrev(const std::string& abbrev) {
  for (const DatasetSpec& s : PaperDatasets()) {
    if (s.abbrev == abbrev) return s;
  }
  QBS_CHECK(false && "unknown dataset abbreviation");
  __builtin_unreachable();
}

Graph MakeDataset(const DatasetSpec& spec, double scale) {
  QBS_CHECK_GT(scale, 0.0);
  // Seed derived from the abbreviation so datasets differ but runs are
  // reproducible.
  uint64_t seed = 0x9bL;
  for (char c : spec.abbrev) seed = seed * 131 + static_cast<uint64_t>(c);

  Graph g;
  switch (spec.kind) {
    case GeneratorKind::kBarabasiAlbert:
      g = BarabasiAlbert(
          static_cast<VertexId>(std::lround(spec.n * scale)), spec.param,
          seed);
      break;
    case GeneratorKind::kErdosRenyi: {
      const auto n = static_cast<VertexId>(std::lround(spec.n * scale));
      g = ErdosRenyi(n, static_cast<uint64_t>(spec.param) * n, seed);
      break;
    }
    case GeneratorKind::kWattsStrogatz:
      g = WattsStrogatz(
          static_cast<VertexId>(std::lround(spec.n * scale)), spec.param,
          spec.beta, seed);
      break;
    case GeneratorKind::kRMat: {
      const int extra = static_cast<int>(std::lround(std::log2(scale)));
      const auto s = static_cast<uint32_t>(
          std::max(4, static_cast<int>(spec.rmat_scale) + extra));
      g = RMat(s, spec.param, spec.rmat_a, spec.rmat_b, spec.rmat_c, seed);
      break;
    }
  }
  return LargestComponent(g).graph;
}

}  // namespace qbs

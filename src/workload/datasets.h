// The real-dataset registry: paper dataset names -> raw file -> binary
// cache, with the synthetic Table-1 stand-ins as the offline fallback.
//
// tools/fetch_datasets.py downloads the raw edge lists into
// <data_dir>/raw/ (SHA-256 verified); this registry maps a paper name
// ("dblp", "youtube", ...; Table 1 abbreviations also accepted) onto that
// file, converts it once into <data_dir>/cache/<name>.qbsgrf
// (graph/dataset_io.h, largest-CC extracted), and loads the cache on every
// later run. When no real data is present — CI and the offline evaluation
// environment — resolution falls back to the synthetic stand-in of
// workload/dataset_registry.h, so every caller keeps working network-free.

#ifndef QBS_WORKLOAD_DATASETS_H_
#define QBS_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/dataset_io.h"
#include "graph/graph.h"

namespace qbs {

// One downloadable dataset the paper evaluates on (plus Epinions, a small
// SNAP network kept as the pipeline's smoke dataset).
struct RealDatasetSpec {
  std::string name;    // registry key, lowercase ("dblp")
  std::string abbrev;  // Table 1 abbreviation linking to the synthetic
                       // stand-in; empty when the dataset is not in Table 1
  std::string file;    // raw filename under <data_dir>/raw/
  std::string url;     // plain edge-list mirror; empty = no such mirror
                       // exists (WebGraph/zip-only hosts), fetch manually
  std::string sha256;  // expected SHA-256 of the raw file; empty = not
                       // pinned yet (the fetcher then records the hash it
                       // saw on first download and verifies later runs
                       // against that)
  // Vertex/edge counts the hosting page reports for the raw file (edges as
  // the host counts them, directed for directed sources). Informational:
  // shown by the fetcher's --list and used as a post-parse sanity warning.
  uint64_t host_vertices = 0;
  uint64_t host_edges = 0;
  // Table 1 reference values (largest CC, millions); 0 for non-paper
  // datasets.
  double paper_vertices_m = 0.0;
  double paper_edges_m = 0.0;
};

// All registry entries, paper order (Table 1) with Epinions appended.
const std::vector<RealDatasetSpec>& RealDatasets();

// Case-insensitive lookup by name ("dblp") or Table 1 abbreviation ("DB").
// Returns nullptr when unknown.
const RealDatasetSpec* FindRealDataset(const std::string& name);

// Comma-separated "name (ABBREV)" list of every registry entry, for
// error messages and usage text.
std::string AvailableDatasetNames();

// The default data directory: $QBS_DATA_DIR if set, else "data" (relative
// to the working directory, the layout tools/fetch_datasets.py creates).
std::string DefaultDataDir();

// Canonical on-disk locations of a dataset's artifacts under `data_dir` —
// the single definition of the layout, shared by the resolver, the CLI's
// status command, and the tests.
std::string RawPathFor(const RealDatasetSpec& spec,
                       const std::string& data_dir);
std::string CachePathFor(const RealDatasetSpec& spec,
                         const std::string& data_dir);

// A dataset resolved to a concrete graph.
struct ResolvedDataset {
  Graph graph;
  // Where the graph came from: "cache" (binary cache hit), "raw"
  // (parsed + cache written this run), or "stand-in" (synthetic fallback).
  std::string source;
  std::string name;    // registry name, or stand-in name for fallbacks
  std::string abbrev;  // Table 1 abbreviation ("" for non-paper datasets)
  // Provenance from the cache header (raw counts, largest-CC flag); all
  // zero for stand-ins.
  DatasetCacheInfo cache_info;
  // Table 1 reference values for side-by-side reporting (0 when unknown).
  double paper_vertices_m = 0.0;
  double paper_edges_m = 0.0;
};

// Resolves `name` (real-dataset name or Table 1 abbreviation) to a graph:
//   1. <data_dir>/cache/<name>.qbsgrf when present and valid;
//   2. else <data_dir>/raw/<spec.file>, converting and writing the cache;
//   3. else the synthetic stand-in generated at `synthetic_scale`
//      (with a stderr notice), when the dataset has a Table 1 abbreviation.
// Unknown names and datasets with neither local data nor a stand-in return
// std::nullopt with a message listing the available names.
std::optional<ResolvedDataset> ResolveDataset(const std::string& name,
                                              const std::string& data_dir,
                                              double synthetic_scale = 1.0);

}  // namespace qbs

#endif  // QBS_WORKLOAD_DATASETS_H_

#include "workload/query_workload.h"

#include "graph/bfs.h"
#include "util/check.h"
#include "util/rng.h"

namespace qbs {

std::vector<QueryPair> SampleQueryPairs(const Graph& g, size_t count,
                                        uint64_t seed) {
  QBS_CHECK_GE(g.NumVertices(), 2u);
  Rng rng(seed);
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const auto u = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    const auto v = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    if (u == v) continue;
    pairs.push_back(QueryPair{u, v});
  }
  return pairs;
}

double DistanceDistribution::Mean() const {
  uint64_t connected = 0;
  uint64_t sum = 0;
  for (size_t d = 0; d < counts.size(); ++d) {
    connected += counts[d];
    sum += counts[d] * d;
  }
  return connected == 0
             ? 0.0
             : static_cast<double>(sum) / static_cast<double>(connected);
}

DistanceDistribution ComputeDistanceDistribution(
    const Graph& g, std::span<const QueryPair> pairs) {
  DistanceDistribution dist;
  dist.total = pairs.size();
  for (const QueryPair& p : pairs) {
    const uint32_t d = BiBfsDistance(g, p.u, p.v);
    if (d == kUnreachable) {
      ++dist.disconnected;
      continue;
    }
    if (dist.counts.size() <= d) dist.counts.resize(d + 1, 0);
    ++dist.counts[d];
  }
  return dist;
}

}  // namespace qbs

// Query workload sampling and distance-distribution analysis (§6.1
// "Queries", Fig. 7): the paper evaluates on 10,000 uniformly sampled
// vertex pairs per dataset.

#ifndef QBS_WORKLOAD_QUERY_WORKLOAD_H_
#define QBS_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace qbs {

struct QueryPair {
  VertexId u = 0;
  VertexId v = 0;
};

// Samples `count` uniform random vertex pairs with u != v. Deterministic in
// `seed`.
std::vector<QueryPair> SampleQueryPairs(const Graph& g, size_t count,
                                        uint64_t seed);

struct DistanceDistribution {
  // counts[d] = number of pairs at distance d.
  std::vector<uint64_t> counts;
  uint64_t disconnected = 0;
  uint64_t total = 0;

  double FractionAt(uint32_t d) const {
    return total == 0 || d >= counts.size()
               ? 0.0
               : static_cast<double>(counts[d]) / static_cast<double>(total);
  }
  // Mean over connected pairs (Table 1's "avg. dist" column).
  double Mean() const;
};

// Distances of the given pairs via bidirectional BFS.
DistanceDistribution ComputeDistanceDistribution(
    const Graph& g, std::span<const QueryPair> pairs);

}  // namespace qbs

#endif  // QBS_WORKLOAD_QUERY_WORKLOAD_H_

// Sketch computation (Definition 4.5, Algorithm 3).
//
// A sketch for SPG(u, v) is the subgraph of {u, v} ∪ R induced by the
// minimum-length u→landmark→…→landmark→v routes implied by the labelling
// scheme. It yields:
//   * d⊤_uv  — an upper bound on d_G(u, v) that is tight whenever some
//              shortest path passes through a landmark (Corollary 4.6);
//   * anchors — the (landmark, δ) pairs connecting u and v into the sketch;
//   * meta-edges on the shortest meta-paths between minimizing landmark
//     pairs;
//   * d*_u, d*_v — per-side search depth suggestions (Eq. 4).
//
// With the meta-graph APSP precomputed (§5.2) this costs
// O(|L(u)|·|L(v)| + |E_M|) = O(|R|^2).

#ifndef QBS_CORE_SKETCH_H_
#define QBS_CORE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/labeling.h"
#include "core/meta_graph.h"
#include "core/types.h"
#include "graph/bfs.h"
#include "graph/graph.h"

namespace qbs {

/// An edge (t, r) of the sketch between an endpoint t ∈ {u, v} and a
/// landmark, weighted σ_S(t, r) = d_G(t, r). delta == 0 iff t is itself that
/// landmark.
struct SketchAnchor {
  LandmarkIndex landmark = 0;
  DistT delta = 0;

  friend bool operator==(const SketchAnchor& a, const SketchAnchor& b) {
    return a.landmark == b.landmark && a.delta == b.delta;
  }
  friend bool operator<(const SketchAnchor& a, const SketchAnchor& b) {
    return a.landmark != b.landmark ? a.landmark < b.landmark
                                    : a.delta < b.delta;
  }
};

struct Sketch {
  /// d⊤_uv of Eq. 3; kUnreachable when no landmark route connects u and v.
  uint32_t d_top = kUnreachable;
  /// Sketch edges (u, r) and (v, r') over all minimizing pairs.
  std::vector<SketchAnchor> u_anchors;
  std::vector<SketchAnchor> v_anchors;
  /// Meta-edges lying on a shortest meta-path of some minimizing pair.
  std::vector<MetaEdge> meta_edges;
  /// Eq. 4 search-depth guides (0 when a side has no anchors or is itself a
  /// landmark).
  uint32_t d_star_u = 0;
  uint32_t d_star_v = 0;
};

/// Reusable buffers for sketch computation: queries are microsecond-scale,
/// so per-query allocations are a measurable constant factor.
struct SketchScratch {
  std::vector<SketchAnchor> cu, cv;
  std::vector<std::pair<LandmarkIndex, LandmarkIndex>> min_pairs;
  std::vector<uint8_t> meta_edge_used;
};

/// Computes the sketch for SPG(u, v). Either endpoint may be a landmark, in
/// which case it participates with the virtual entry (itself, 0).
Sketch ComputeSketch(const PathLabeling& labeling, const MetaGraph& meta,
                     VertexId u, VertexId v);

/// Allocation-free variant: clears and refills *sketch using *scratch.
/// With with_meta_edges = false, the meta-edge sweep (the O(|E_M| · pairs)
/// part) is skipped and sketch->meta_edges stays empty; call
/// ComputeSketchMetaEdges later to fill it. The guided search defers the
/// sweep this way because most queries resolve entirely inside the
/// sparsified graph and never read the meta-edges. With reuse_candidates =
/// true, scratch->cu / scratch->cv are taken as already filled (by
/// ComputeAnchorCandidatesInto for the same u, v) instead of re-scanning
/// the label rows — the guided search shares one scan between the label
/// bound check and the sketch.
void ComputeSketchInto(const PathLabeling& labeling, const MetaGraph& meta,
                       VertexId u, VertexId v, Sketch* sketch,
                       SketchScratch* scratch, bool with_meta_edges = true,
                       bool reuse_candidates = false);

/// Allocation-free AnchorCandidates: clears and refills *out with the label
/// entries of `t` in ascending landmark order (or the single virtual entry
/// for a landmark).
void ComputeAnchorCandidatesInto(const PathLabeling& labeling, VertexId t,
                                 std::vector<SketchAnchor>* out);

/// Runs the deferred meta-edge sweep for a sketch produced by
/// ComputeSketchInto(..., /*with_meta_edges=*/false) with the same scratch
/// (which still holds the minimizing pairs).
void ComputeSketchMetaEdges(const MetaGraph& meta, Sketch* sketch,
                            SketchScratch* scratch);

/// The label entries of `t` as sketch-anchor candidates: its stored label,
/// or {(rank(t), 0)} if t is a landmark.
std::vector<SketchAnchor> AnchorCandidates(const PathLabeling& labeling,
                                           VertexId t);

/// True iff the bit-parallel masks of a shared landmark witness a per-
/// neighbour lower bound one above |du - dv|: a bit j set on both sides pins
/// d(u_j, u) and d(u_j, v) exactly (S^{-1} = delta - 1, S^0 = delta), and
/// the pinned distances disagree hardest when the smaller-delta side holds
/// the S^{-1} bit and the larger-delta side the S^0 bit (or the deltas tie
/// and any S^{-1}/S^0 cross bit exists). Bits unset on either side pin
/// nothing, so all-zero masks (e.g. a v1 load that never built them) can
/// never lift the bound — the refinement degrades to "no witnesses".
inline bool BpMaskLowerLift(const BpMask& mu, const BpMask& mv, DistT du,
                            DistT dv) {
  if (du == dv) {
    return ((mu.s_minus & mv.s_zero) | (mu.s_zero & mv.s_minus)) != 0;
  }
  if (du > dv) return (mu.s_zero & mv.s_minus) != 0;
  return (mu.s_minus & mv.s_zero) != 0;
}

/// Distance bounds on d_G(u, v) read from the labelling alone — one fused
/// scan of the two label rows, O(|R|), no graph access.
struct LabelBound {
  /// max |δ_{u,r} - δ_{v,r}| over landmarks present in both labels (triangle
  /// inequality), lifted by one per landmark when a bit-parallel mask
  /// witness (BpMaskLowerLift) pins a selected neighbour's exact distances
  /// harder than the deltas alone; 0 when the labels share no landmark.
  uint32_t lower = 0;
  /// min over shared landmarks of δ_{u,r} + δ_{v,r}, refined by the
  /// bit-parallel masks when present: a common S_r^{-1} witness subtracts 2
  /// (the path u .. w .. v through the witness w skips r on both sides), an
  /// S^{-1}/S^0 cross witness subtracts 1. Every refined value is realized
  /// by an actual path, so this is a sound upper bound; kUnreachable when no
  /// landmark is shared.
  uint32_t upper = kUnreachable;
};

/// Computes LabelBound for (u, v). Landmark endpoints are handled via the
/// other side's label row (exact when present: the endpoint is itself the
/// landmark) or, for a landmark pair, the meta-graph APSP distance (exact by
/// Corollary 4.6 — the endpoints are landmarks on every path). Requires
/// u != v.
///
/// `refine_cutoff` bounds the mask work: a landmark's masks are only
/// consulted when the unrefined candidate could drop to <= refine_cutoff
/// (refinement subtracts at most 2). The query hot path passes 2 — it only
/// acts on a certified d <= 2 — which skips the mask cache lines for every
/// farther landmark; the default refines everything (tightest bound). The
/// lower-bound lift rides the same gate: only landmarks whose masks are
/// read for the upper refinement can lift `lower`.
LabelBound ComputeLabelBound(const PathLabeling& labeling,
                             const MetaGraph& meta, VertexId u, VertexId v,
                             uint32_t refine_cutoff = kUnreachable);

/// Batched ComputeLabelBound: bounds[i] for the pair (us[i], vs[i]), each
/// with us[i] != vs[i]. Non-landmark pairs stream through the active SIMD
/// kernel's interleaved batch sweep (core/label_scan.h) in kScanBatch
/// groups; pairs with a landmark endpoint take the scalar special cases.
/// Results are identical to n calls of ComputeLabelBound.
void ComputeLabelBoundsBatch(const PathLabeling& labeling,
                             const MetaGraph& meta, const VertexId* us,
                             const VertexId* vs, size_t n,
                             uint32_t refine_cutoff, LabelBound* bounds);

/// As ComputeLabelBound for non-landmark-pair queries, over candidate rows
/// already produced by ComputeAnchorCandidatesInto(u) / (v) — a sorted
/// merge on landmark index, no label-row re-scan. (A landmark endpoint is
/// its single virtual entry; a landmark *pair* never shares a candidate, so
/// callers handle that case via MetaGraph::Distance first.)
LabelBound ComputeLabelBoundFromCandidates(
    const PathLabeling& labeling, const std::vector<SketchAnchor>& cu,
    const std::vector<SketchAnchor>& cv, VertexId u, VertexId v,
    uint32_t refine_cutoff = kUnreachable);

}  // namespace qbs

#endif  // QBS_CORE_SKETCH_H_

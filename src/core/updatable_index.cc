#include "core/updatable_index.h"

#include <algorithm>

#include "graph/bfs.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qbs {
namespace {

enum class ColumnImpact : uint8_t {
  kUnaffected = 0,  // nothing in this batch touches the column
  kRepair = 1,      // decrease-only depth repair + rederivation suffices
  kRebuild = 2,     // a parent edge died (or the column was already dirty)
};

// Classifies column i against its OLD exact depths and masks (see the
// header for the per-edge rules and why they are sound for whole batches:
// every individually-"unaffected" edit provably changes no depth, label,
// meta-edge, or mask bit, so their composition changes none either).
ColumnImpact ClassifyColumn(const PathLabeling& labeling, LandmarkIndex i,
                            const LabelColumnState& state,
                            const NetChanges& net) {
  const bool bp = labeling.has_bp_masks();
  const auto& depth = state.depth;
  bool repair = false;
  for (const Edge& e : net.deletes) {
    const uint32_t du = depth[e.u];
    const uint32_t dv = depth[e.v];
    if (du == kUnreachable && dv == kUnreachable) continue;
    // An existing edge has |du - dv| <= 1 with both ends reachable or
    // neither; anything else (defensively) rebuilds too.
    if (du != dv) return ColumnImpact::kRebuild;
    if (!bp) continue;
    // Same-level delete: distances hold; only a realized S^0 witness can
    // die. S⁻(u) & S⁰(v) is exact — any bit u contributed to v's S^0
    // through this edge is in both.
    const BpMask mu = labeling.GetBpMask(e.u, i);
    const BpMask mv = labeling.GetBpMask(e.v, i);
    if (((mu.s_minus & mv.s_zero) | (mv.s_minus & mu.s_zero)) != 0) {
      repair = true;
    }
  }
  for (const Edge& e : net.inserts) {
    const uint32_t du = depth[e.u];
    const uint32_t dv = depth[e.v];
    // Both ends unreachable from r: the new edge lives entirely in the
    // unreachable region and cannot connect it to r.
    if (du == kUnreachable && dv == kUnreachable) continue;
    if (du == dv) {
      // Same-level insert: distances and parent edges hold; only the S^0
      // masks can gain a witness (a bit of one side's S⁻ the other side
      // doesn't already carry in S⁻ or S⁰).
      if (!bp) continue;
      const BpMask mu = labeling.GetBpMask(e.u, i);
      const BpMask mv = labeling.GetBpMask(e.v, i);
      if (((mu.s_minus & ~(mv.s_minus | mv.s_zero)) |
           (mv.s_minus & ~(mu.s_minus | mu.s_zero))) != 0) {
        repair = true;
      }
      continue;
    }
    // One end unreachable, or depths differ: distances shrink and/or a new
    // parent edge appears — both decrease-only, hence repairable.
    repair = true;
  }
  return repair ? ColumnImpact::kRepair : ColumnImpact::kUnaffected;
}

// Decrease-only multi-source partial BFS on the NEW graph: seeds every
// inserted edge's deeper endpoint from the shallower one, then propagates
// improvements in depth order through a bucket queue. Exact for
// insert-only depth change (a vertex whose distance shrinks lies past an
// inserted edge; induction on the new distance), and for mixed batches
// whose deletes are all same-level under the old depths (those deletes
// change no distance, so "old depths on the new graph" is a valid
// overestimate to relax from). Touches only the shrinking region — the
// bounded partial BFS of the ROADMAP item.
void RepairColumnDepths(const Graph& g, const std::vector<Edge>& inserts,
                        std::vector<uint32_t>* depth_io) {
  auto& depth = *depth_io;
  std::vector<std::vector<VertexId>> buckets;
  auto relax = [&](VertexId v, uint32_t nd) {
    if (nd >= depth[v]) return;
    depth[v] = nd;
    if (buckets.size() <= nd) buckets.resize(nd + 1);
    buckets[nd].push_back(v);
  };
  for (const Edge& e : inserts) {
    if (depth[e.u] != kUnreachable) relax(e.v, depth[e.u] + 1);
    if (depth[e.v] != kUnreachable) relax(e.u, depth[e.v] + 1);
  }
  for (size_t d = 0; d < buckets.size(); ++d) {
    for (size_t idx = 0; idx < buckets[d].size(); ++idx) {
      const VertexId u = buckets[d][idx];
      if (depth[u] != d) continue;  // superseded by a later improvement
      for (VertexId w : g.Neighbors(u)) {
        relax(w, static_cast<uint32_t>(d) + 1);
      }
    }
  }
}

// Rebuilds the meta-graph from the per-column meta lists. Each meta-edge
// is discovered from both endpoint columns; duplicates collapse, and when
// a deferred (stale) column disagrees with a fresh one the minimum weight
// wins until Consolidate() restores exactness. With no dirty columns every
// duplicate agrees, so the result is canonical.
MetaGraph RebuildMeta(uint32_t k, const UpdatableState& state) {
  std::vector<MetaEdge> all;
  for (const auto& col : state.columns) {
    for (const MetaEdge& e : col.meta) {
      all.push_back(e.a <= e.b ? e : MetaEdge{e.b, e.a, e.weight});
    }
  }
  std::sort(all.begin(), all.end());
  MetaGraph meta(k);
  for (size_t idx = 0; idx < all.size(); ++idx) {
    if (idx > 0 && all[idx].a == all[idx - 1].a &&
        all[idx].b == all[idx - 1].b) {
      continue;  // operator< orders by weight last: first entry is the min
    }
    meta.AddEdge(all[idx].a, all[idx].b, all[idx].weight);
  }
  meta.Finalize();
  return meta;
}

}  // namespace

void InitUpdatableState(const Graph& g, PathLabeling& labeling,
                        UpdatableState* state, size_t num_threads) {
  const uint32_t k = labeling.num_landmarks();
  state->columns.assign(k, {});
  state->dirty.assign(k, 0);
  if (k == 0) return;
  const size_t workers = std::min<size_t>(EffectiveThreads(num_threads), k);
  ParallelFor(k, workers, [&](size_t i, size_t) {
    RebuildLabelColumn(g, labeling, static_cast<LandmarkIndex>(i),
                       &state->columns[i]);
  });
}

UpdateStats ApplyNetToLabeling(const Graph& new_graph, const NetChanges& net,
                               PathLabeling* labeling, MetaGraph* meta,
                               UpdatableState* state,
                               const UpdateOptions& options) {
  UpdateStats stats;
  stats.applied_inserts = net.inserts.size();
  stats.applied_deletes = net.deletes.size();
  const uint32_t k = labeling->num_landmarks();
  QBS_CHECK_EQ(state->columns.size(), static_cast<size_t>(k));
  if (k == 0) {
    *meta = RebuildMeta(0, *state);
    return stats;
  }
  const size_t workers =
      std::min<size_t>(EffectiveThreads(options.num_threads), k);

  // Phase 1: classify every column against its old depths/masks. Read-only
  // over the pre-edit state, so no ordering hazards with phase 2.
  std::vector<ColumnImpact> impact(k, ColumnImpact::kUnaffected);
  ParallelFor(k, workers, [&](size_t i, size_t) {
    impact[i] = state->dirty[i] != 0
                    ? ColumnImpact::kRebuild
                    : ClassifyColumn(*labeling, static_cast<LandmarkIndex>(i),
                                     state->columns[i], net);
  });

  // Phase 2: repair / rebuild affected columns against the new graph.
  // Columns are independent (Lemma 5.2), and every write — label column,
  // mask column, S_r slot, LabelColumnState — is column-private.
  ParallelFor(k, workers, [&](size_t i, size_t) {
    const auto li = static_cast<LandmarkIndex>(i);
    switch (impact[i]) {
      case ColumnImpact::kUnaffected:
        break;
      case ColumnImpact::kRepair:
        RepairColumnDepths(new_graph, net.inserts, &state->columns[i].depth);
        RederiveLabelColumn(new_graph, *labeling, li, &state->columns[i]);
        break;
      case ColumnImpact::kRebuild:
        if (options.consolidate) {
          RebuildLabelColumn(new_graph, *labeling, li, &state->columns[i]);
          state->dirty[i] = 0;
        } else {
          state->dirty[i] = 1;
        }
        break;
    }
  });
  for (uint32_t i = 0; i < k; ++i) {
    if (impact[i] == ColumnImpact::kRepair) ++stats.repaired_columns;
    if (impact[i] == ColumnImpact::kRebuild) {
      if (options.consolidate) {
        ++stats.rebuilt_columns;
      } else {
        ++stats.deferred_columns;
      }
    }
  }

  *meta = RebuildMeta(k, *state);
  return stats;
}

uint32_t ConsolidateDirtyColumns(const Graph& g, PathLabeling* labeling,
                                 MetaGraph* meta, UpdatableState* state,
                                 size_t num_threads) {
  const uint32_t k = labeling->num_landmarks();
  QBS_CHECK_EQ(state->columns.size(), static_cast<size_t>(k));
  std::vector<LandmarkIndex> dirty_cols;
  for (uint32_t i = 0; i < k; ++i) {
    if (state->dirty[i] != 0) dirty_cols.push_back(i);
  }
  if (dirty_cols.empty()) return 0;
  const size_t workers =
      std::min<size_t>(EffectiveThreads(num_threads), dirty_cols.size());
  ParallelFor(dirty_cols.size(), workers, [&](size_t idx, size_t) {
    const LandmarkIndex i = dirty_cols[idx];
    RebuildLabelColumn(g, *labeling, i, &state->columns[i]);
    state->dirty[i] = 0;
  });
  *meta = RebuildMeta(k, *state);
  return static_cast<uint32_t>(dirty_cols.size());
}

}  // namespace qbs

// The meta-graph M = (R, E_R, σ) of Definition 4.1: landmarks are vertices,
// an edge (r, r') exists iff at least one shortest path between r and r' in
// G passes through no other landmark, and its weight is d_G(r, r').
//
// After Finalize(), all-pairs shortest path distances over M are
// materialized (|R| is tiny — 20 by default — so Floyd–Warshall is
// instantaneous), which reduces sketch construction from O(|R|^4) to
// O(|R|^2) exactly as §5.2 prescribes.

#ifndef QBS_CORE_META_GRAPH_H_
#define QBS_CORE_META_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "graph/bfs.h"

namespace qbs {

struct MetaEdge {
  LandmarkIndex a = 0;  // a < b (landmark indices, not vertex ids)
  LandmarkIndex b = 0;
  uint32_t weight = 0;  // d_G(landmark a, landmark b)

  friend bool operator==(const MetaEdge& x, const MetaEdge& y) {
    return x.a == y.a && x.b == y.b && x.weight == y.weight;
  }
  friend bool operator<(const MetaEdge& x, const MetaEdge& y) {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.weight < y.weight;
  }
};

class MetaGraph {
 public:
  MetaGraph() = default;
  explicit MetaGraph(uint32_t num_landmarks);

  uint32_t num_landmarks() const { return k_; }

  // Adds an undirected meta-edge. Idempotent: construction discovers each
  // edge from both endpoint BFSs with identical weight (the weight is
  // d_G(a, b), which is unique).
  void AddEdge(LandmarkIndex a, LandmarkIndex b, uint32_t weight);

  // Direct meta-edge weight, or kUnreachable if (a, b) is not a meta-edge.
  uint32_t EdgeWeight(LandmarkIndex a, LandmarkIndex b) const {
    return weight_[Idx(a, b)];
  }

  // Runs APSP over the weighted meta-graph. Must be called after all
  // AddEdge calls and before Distance()/EdgeOnShortestPath().
  void Finalize();

  // d_M(a, b): shortest path distance in the meta-graph. For landmarks this
  // equals d_G(a, b) (subpaths of shortest paths split at consecutive
  // landmarks are meta-edges). kUnreachable if disconnected in M.
  uint32_t Distance(LandmarkIndex a, LandmarkIndex b) const {
    return dist_[Idx(a, b)];
  }

  // All meta-edges, each once (a < b), sorted.
  const std::vector<MetaEdge>& Edges() const { return edges_; }

  // True iff meta-edge `e` lies on at least one shortest path between
  // landmarks s and t in the meta-graph (used by sketching to collect the
  // meta shortest-path graph of a minimizing landmark pair).
  bool EdgeOnShortestPath(const MetaEdge& e, LandmarkIndex s,
                          LandmarkIndex t) const;

  bool finalized() const { return finalized_; }

  // Bytes of the edge list + weight matrix (the paper notes this stays
  // under 0.01 MB even at |R| = 100).
  uint64_t SizeBytes() const;

 private:
  size_t Idx(LandmarkIndex a, LandmarkIndex b) const {
    return static_cast<size_t>(a) * k_ + b;
  }

  uint32_t k_ = 0;
  bool finalized_ = false;
  std::vector<uint32_t> weight_;  // dense k*k, kUnreachable = no edge
  std::vector<uint32_t> dist_;    // dense k*k APSP result
  std::vector<MetaEdge> edges_;
};

}  // namespace qbs

#endif  // QBS_CORE_META_GRAPH_H_

#include "core/qbs_index.h"

#include <algorithm>
#include <iostream>
#include <utility>

#include "core/label_scan.h"
#include "core/serialization.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace qbs {

QbsIndex QbsIndex::Build(const Graph& g, const QbsOptions& options) {
  return BuildWithLandmarks(
      g,
      SelectLandmarks(g, options.num_landmarks, options.landmark_strategy,
                      options.seed),
      options);
}

QbsIndex QbsIndex::BuildWithLandmarks(const Graph& g,
                                      std::vector<VertexId> landmarks,
                                      const QbsOptions& options) {
  QbsIndex index;
  index.g_ = &g;
  if (options.force_scalar_scan) SetActiveScanKernel(ScanKernel::kScalar);

  WallTimer timer;
  LabelingBuildOptions build_options;
  build_options.num_threads = options.num_threads;
  build_options.bit_parallel = options.bit_parallel;
  build_options.bp_fused = options.bp_fused;
  index.mask_prune_ = options.mask_prune;
  index.scheme_ = std::make_unique<LabelingScheme>(
      BuildLabelingScheme(g, landmarks, build_options));
  index.timings_.labeling_seconds = timer.ElapsedSeconds();

  if (options.precompute_delta) {
    timer.Reset();
    index.delta_ = std::make_unique<DeltaCache>(
        DeltaCache::Build(g, index.scheme_->labeling, index.scheme_->meta,
                          options.num_threads));
    index.timings_.delta_seconds = timer.ElapsedSeconds();
  }

  index.sparsified_ = std::make_unique<Graph>(
      MakeSparsifiedGraph(g, index.scheme_->labeling));
  index.searcher_ = std::make_unique<GuidedSearcher>(
      g, *index.sparsified_, index.scheme_->labeling, index.scheme_->meta,
      index.delta_.get());
  index.searcher_->set_mask_prune(index.mask_prune_);
  return index;
}

std::optional<QbsIndex> QbsIndex::LoadFromFile(const Graph& g,
                                               const std::string& path,
                                               const QbsOptions& options) {
  auto scheme = LoadLabelingScheme(path);
  if (!scheme.has_value()) return std::nullopt;
  if (scheme->labeling.num_vertices() != g.NumVertices()) {
    std::cerr << "QbsIndex::LoadFromFile: index was built for "
              << scheme->labeling.num_vertices() << " vertices, graph has "
              << g.NumVertices() << std::endl;
    return std::nullopt;
  }
  QbsIndex index;
  index.g_ = &g;
  if (options.force_scalar_scan) SetActiveScanKernel(ScanKernel::kScalar);
  index.mask_prune_ = options.mask_prune;
  index.scheme_ = std::make_unique<LabelingScheme>(std::move(*scheme));
  if (options.precompute_delta) {
    WallTimer timer;
    index.delta_ = std::make_unique<DeltaCache>(
        DeltaCache::Build(g, index.scheme_->labeling, index.scheme_->meta,
                          options.num_threads));
    index.timings_.delta_seconds = timer.ElapsedSeconds();
  }
  index.sparsified_ = std::make_unique<Graph>(
      MakeSparsifiedGraph(g, index.scheme_->labeling));
  index.searcher_ = std::make_unique<GuidedSearcher>(
      g, *index.sparsified_, index.scheme_->labeling, index.scheme_->meta,
      index.delta_.get());
  index.searcher_->set_mask_prune(index.mask_prune_);
  return index;
}

bool QbsIndex::Save(const std::string& path) const {
  return SaveLabelingScheme(*scheme_, path);
}

ShortestPathGraph QbsIndex::Query(VertexId u, VertexId v,
                                  SearchStats* stats) {
  return searcher_->Query(u, v, stats);
}

QueryResponse QbsIndex::Query(const QueryRequest& request) {
  return Execute(*searcher_, request);
}

QueryResponse QbsIndex::Execute(GuidedSearcher& searcher,
                                const QueryRequest& request) const {
  return Execute(searcher, request, nullptr);
}

QueryResponse QbsIndex::Execute(GuidedSearcher& searcher,
                                const QueryRequest& request,
                                const LabelBound* certify) const {
  QBS_CHECK_LT(request.u, g_->NumVertices());
  QBS_CHECK_LT(request.v, g_->NumVertices());
  QueryResponse response;
  if (request.budget > 0 && request.u != request.v) {
    // One O(|R|) label-row scan can certify d > budget before any search
    // runs; the response then reports "unknown, provably beyond budget".
    const LabelBound bound = ComputeLabelBound(
        scheme_->labeling, scheme_->meta, request.u, request.v);
    if (bound.lower > request.budget) {
      response.spg.u = request.u;
      response.spg.v = request.v;
      response.flags |= kResponseFlagBudgetPruned;
      return response;
    }
  }
  response.spg = searcher.Query(request.u, request.v, &response.stats,
                                certify);
  if (request.budget > 0 && response.spg.Connected() &&
      response.spg.distance > request.budget) {
    response.flags |= kResponseFlagBudgetExceeded;
    response.spg.edges.clear();
    response.spg.edges.shrink_to_fit();
  } else if (request.mode == QueryMode::kDistance) {
    response.spg.edges.clear();
    response.spg.edges.shrink_to_fit();
  }
  return response;
}

QbsIndex::SearcherLease::SearcherLease(QbsIndex& index, size_t count)
    : index_(index) {
  searchers_.reserve(count);
  {
    MutexLock lock(*index_.batch_searchers_mu_);
    while (!index_.batch_searchers_.empty() && searchers_.size() < count) {
      searchers_.push_back(std::move(index_.batch_searchers_.back()));
      index_.batch_searchers_.pop_back();
    }
  }
  try {
    while (searchers_.size() < count) {
      auto searcher = std::make_unique<GuidedSearcher>(
          *index_.g_, *index_.sparsified_, index_.scheme_->labeling,
          index_.scheme_->meta, index_.delta_.get());
      searcher->set_mask_prune(index_.mask_prune_);
      searchers_.push_back(std::move(searcher));
    }
  } catch (...) {
    // A failed top-up (searcher construction is O(|V|) of allocation) must
    // not eat what was already checked out: the destructor will not run
    // for a throwing constructor, so check everything back in here.
    MutexLock lock(*index_.batch_searchers_mu_);
    for (auto& s : searchers_) {
      index_.batch_searchers_.push_back(std::move(s));
    }
    throw;
  }
}

QbsIndex::SearcherLease::~SearcherLease() {
  MutexLock lock(*index_.batch_searchers_mu_);
  for (auto& s : searchers_) {
    index_.batch_searchers_.push_back(std::move(s));
  }
}

size_t QbsIndex::BatchSearcherPoolSize() const {
  MutexLock lock(*batch_searchers_mu_);
  return batch_searchers_.size();
}

std::vector<QueryResponse> QbsIndex::QueryBatch(
    const std::vector<QueryRequest>& requests, const BatchOptions& options) {
  std::vector<QueryResponse> results(requests.size());
  const size_t workers = std::min(EffectiveThreads(options.num_threads),
                                  std::max<size_t>(requests.size(), 1));
  // Certify pre-pass: stream every eligible pair's fast-path bound
  // (refine_cutoff 2) through the batched SIMD row sweep, kScanBatch pairs
  // per interleaved scan, before fanning the queries out. Workers then
  // skip their per-query certify row scan; certified d <= 2 pairs (the
  // bulk of small-world workloads) never touch their label rows again.
  std::vector<LabelBound> certify_bounds;
  std::vector<const LabelBound*> certify(requests.size(), nullptr);
  bool have_certify = false;
  if (scheme_->labeling.has_bp_masks() && requests.size() >= 2) {
    const VertexId n = g_->NumVertices();
    std::vector<size_t> idx;
    std::vector<VertexId> us;
    std::vector<VertexId> vs;
    idx.reserve(requests.size());
    us.reserve(requests.size());
    vs.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const QueryRequest& r = requests[i];
      // Out-of-range pairs are left for Execute's range CHECK; identical
      // pairs never consult the certify bound.
      if (r.u == r.v || r.u >= n || r.v >= n) continue;
      idx.push_back(i);
      us.push_back(r.u);
      vs.push_back(r.v);
    }
    if (!idx.empty()) {
      certify_bounds.resize(idx.size());
      const size_t blocks = (idx.size() + kScanBatch - 1) / kScanBatch;
      ParallelForOptions pre;
      pre.num_threads = workers;
      ParallelFor(blocks, pre, [&](size_t b, size_t) {
        const size_t begin = b * kScanBatch;
        const size_t count = std::min(kScanBatch, idx.size() - begin);
        ComputeLabelBoundsBatch(scheme_->labeling, scheme_->meta,
                                us.data() + begin, vs.data() + begin, count,
                                /*refine_cutoff=*/2,
                                certify_bounds.data() + begin);
      });
      for (size_t j = 0; j < idx.size(); ++j) {
        certify[idx[j]] = &certify_bounds[j];
      }
      have_certify = true;
    }
  }
  // One searcher per worker, checked out of the persistent pool (topped up
  // to `workers` if needed); all share the labelling, meta-graph, D cache,
  // and the materialized sparsified graph (read-only). The RAII lease
  // keeps concurrent QueryBatch calls from ever sharing a searcher AND
  // returns every searcher when a query throws mid-batch, so the pool
  // never shrinks across failed batches.
  SearcherLease lease(*this, workers);
  ParallelForOptions pf;
  pf.num_threads = workers;
  pf.grain = options.grain;
  ParallelFor(requests.size(), pf, [&](size_t i, size_t worker) {
    results[i] = Execute(lease[worker], requests[i],
                         have_certify ? certify[i] : nullptr);
  });
  return results;
}

// The deprecated pair-based wrappers. Defined with the warning suppressed:
// the definitions themselves must not trip -Werror builds.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

std::vector<ShortestPathGraph> QbsIndex::QueryBatch(
    const std::vector<std::pair<VertexId, VertexId>>& pairs,
    const BatchOptions& options) {
  std::vector<QueryRequest> requests;
  requests.reserve(pairs.size());
  for (const auto& [u, v] : pairs) requests.emplace_back(u, v);
  std::vector<QueryResponse> responses = QueryBatch(requests, options);
  std::vector<ShortestPathGraph> results;
  results.reserve(responses.size());
  for (auto& r : responses) results.push_back(std::move(r.spg));
  return results;
}

std::vector<ShortestPathGraph> QbsIndex::QueryBatch(
    const std::vector<std::pair<VertexId, VertexId>>& pairs,
    size_t num_threads) {
  BatchOptions options;
  options.num_threads = num_threads;
  return QueryBatch(pairs, options);
}

#pragma GCC diagnostic pop

void QbsIndex::EnableUpdates(Graph* mutable_graph, size_t num_threads) {
  QBS_CHECK(mutable_graph == g_);  // the very graph the index was built on
  mutable_g_ = mutable_graph;
  updatable_ = std::make_unique<UpdatableState>();
  InitUpdatableState(*g_, scheme_->labeling, updatable_.get(), num_threads);
}

UpdateStats QbsIndex::ApplyUpdates(const GraphDelta& delta,
                                   const UpdateOptions& options) {
  QBS_CHECK(updatable_ != nullptr);  // EnableUpdates() first
  const NetChanges net = ComputeNetChanges(*g_, delta);
  UpdateStats stats;
  stats.noop_updates = net.noop_inserts + net.noop_deletes;
  stats.invalid_updates = net.invalid;
  if (net.EmptyNet()) {
    // Nothing changes in the graph; at most an overdue consolidation runs.
    if (options.consolidate && updatable_->HasDirty()) {
      stats.rebuilt_columns = Consolidate(options.num_threads);
    }
    return stats;
  }
  Graph new_graph = ApplyNetChanges(*g_, net);
  // Classification reads the OLD depths/masks (still held in updatable_
  // and the labelling), never the old adjacency — so the graph swaps in
  // first. Move-assignment keeps *g_'s address stable, which every live
  // searcher references.
  *mutable_g_ = std::move(new_graph);
  const UpdateStats col =
      ApplyNetToLabeling(*g_, net, &scheme_->labeling, &scheme_->meta,
                         updatable_.get(), options);
  stats.applied_inserts = col.applied_inserts;
  stats.applied_deletes = col.applied_deletes;
  stats.repaired_columns = col.repaired_columns;
  stats.rebuilt_columns = col.rebuilt_columns;
  stats.deferred_columns = col.deferred_columns;
  RefreshDerived(options.num_threads);
  return stats;
}

uint32_t QbsIndex::Consolidate(size_t num_threads) {
  QBS_CHECK(updatable_ != nullptr);
  const uint32_t rebuilt =
      ConsolidateDirtyColumns(*g_, &scheme_->labeling, &scheme_->meta,
                              updatable_.get(), num_threads);
  if (rebuilt > 0) RefreshDerived(num_threads);
  return rebuilt;
}

void QbsIndex::RefreshDerived(size_t num_threads) {
  if (delta_ != nullptr) {
    *delta_ = DeltaCache::Build(*g_, scheme_->labeling, scheme_->meta,
                                num_threads);
  }
  *sparsified_ = MakeSparsifiedGraph(*g_, scheme_->labeling);
}

uint32_t QbsIndex::DistanceUpperBound(VertexId u, VertexId v) const {
  QBS_CHECK_LT(u, g_->NumVertices());
  QBS_CHECK_LT(v, g_->NumVertices());
  if (u == v) return 0;
  const uint32_t d_top =
      ComputeSketch(scheme_->labeling, scheme_->meta, u, v).d_top;
  if (!scheme_->labeling.has_bp_masks()) return d_top;
  return std::min(
      d_top, ComputeLabelBound(scheme_->labeling, scheme_->meta, u, v).upper);
}

}  // namespace qbs

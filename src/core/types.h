// Shared scalar types for the QbS core.

#ifndef QBS_CORE_TYPES_H_
#define QBS_CORE_TYPES_H_

#include <cstdint>

namespace qbs {

// Distance stored in a path label. 16 bits: complex networks have tiny
// diameters (the paper stores 8 bits), but the test suite exercises
// high-diameter structured graphs too. 0xFFFF marks "landmark not in label".
using DistT = uint16_t;
inline constexpr DistT kInfDist = 0xFFFF;

// Index of a landmark within the landmark set R (not a vertex id).
using LandmarkIndex = uint32_t;

}  // namespace qbs

#endif  // QBS_CORE_TYPES_H_

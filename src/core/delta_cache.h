// Precomputed shortest path graphs between landmarks (the Δ of Table 3 and
// §5.2): for every meta-edge (r, r'), the union of all shortest r–r' paths
// in G that pass through no other landmark. Queries then splice these
// cached segments instead of re-deriving them, realizing the §6.5(3)
// efficiency source ("QbS can avoid the computation of shortest paths
// between high-degree landmarks ... since these shortest paths can be
// precomputed").

#ifndef QBS_CORE_DELTA_CACHE_H_
#define QBS_CORE_DELTA_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/labeling.h"
#include "core/meta_graph.h"
#include "graph/graph.h"

namespace qbs {

// Recomputes (online) the landmark-free shortest path graph of one
// meta-edge via label-guided frontier expansion. Shared by the Δ-cache
// builder and the recover search's uncached path. `edge_scans`, if
// non-null, is incremented per adjacency entry inspected.
std::vector<Edge> RecoverMetaSegment(const Graph& g, const PathLabeling& l,
                                     const MetaEdge& e,
                                     uint64_t* edge_scans = nullptr);

class DeltaCache {
 public:
  DeltaCache() = default;

  // Precomputes the segment for every meta-edge, in parallel.
  static DeltaCache Build(const Graph& g, const PathLabeling& labeling,
                          const MetaGraph& meta, size_t num_threads);

  // Cached segment edges for meta-edge (a, b); nullptr if absent.
  const std::vector<Edge>* Lookup(LandmarkIndex a, LandmarkIndex b) const {
    const auto it = segments_.find(Key(a, b));
    return it == segments_.end() ? nullptr : &it->second;
  }

  // size(Δ): bytes of all cached segment edges.
  uint64_t SizeBytes() const;

  size_t NumSegments() const { return segments_.size(); }

 private:
  static uint64_t Key(LandmarkIndex a, LandmarkIndex b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::unordered_map<uint64_t, std::vector<Edge>> segments_;
};

}  // namespace qbs

#endif  // QBS_CORE_DELTA_CACHE_H_

#include "core/label_scan.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>

#include "util/check.h"

#if QBS_HAVE_AVX2_KERNELS
#include <immintrin.h>
#endif

namespace qbs {
namespace {

// Refinement subtracts at most 2, so candidates above refine_cutoff + 2
// cannot land at or below the cutoff; saturate so the default (cutoff =
// kUnreachable) refines every shared lane.
inline uint32_t MaxRefinable(uint32_t refine_cutoff) {
  return refine_cutoff > kUnreachable - 2 ? kUnreachable : refine_cutoff + 2;
}

// The 16-bit clamp the kernels gate with. Lanes whose SATURATED sum is
// <= this are candidates; FinishRowBound re-gates with the exact sum.
inline uint16_t GateLimit16(uint32_t max_refinable) {
  return static_cast<uint16_t>(std::min<uint32_t>(max_refinable, 0xFFFFu));
}

inline uint32_t GateWordCount(uint32_t lanes) { return (lanes + 63) / 64; }

// Strides up to this many lanes (|R| <= 512) keep the gate bitmask on the
// stack; larger ones (differential-harness territory) fall back to a heap
// buffer.
constexpr uint32_t kMaxStackWords = 8;

// --- Scalar reference kernels. ---

void RowBoundScalar(const DistT* ru, const DistT* rv, uint32_t lanes,
                    uint16_t gate_limit, RowAgg* agg, uint64_t* gate_words) {
  uint32_t base_max = 0;
  uint32_t sum_min = kUnreachable;
  bool any = false;
  for (uint32_t i = 0; i < lanes; ++i) {
    const DistT du = ru[i];
    const DistT dv = rv[i];
    if (du == kInfDist || dv == kInfDist) continue;
    any = true;
    const uint32_t base = du > dv ? du - dv : dv - du;
    if (base > base_max) base_max = base;
    const uint32_t sum = static_cast<uint32_t>(du) + dv;
    if (sum < sum_min) sum_min = sum;
    // Same saturating over-approximation as the vector kernels, so the
    // gate words are bit-identical across kernels (test-asserted), not
    // just the post-pass outputs.
    if (gate_words != nullptr && std::min<uint32_t>(sum, 0xFFFFu) <= gate_limit) {
      gate_words[i >> 6] |= 1ull << (i & 63);
    }
  }
  agg->any = any;
  agg->base_max = base_max;
  agg->sum_min = any ? sum_min : kUnreachable;
}

void RowBoundBatchScalar(RowBoundTask* tasks, size_t n, uint32_t lanes,
                         uint16_t gate_limit) {
  for (size_t p = 0; p < n; ++p) {
    RowBoundScalar(tasks[p].ru, tasks[p].rv, lanes, gate_limit, &tasks[p].agg,
                   tasks[p].gate_words);
  }
}

void RowCandidatesScalar(const DistT* row, uint32_t lanes,
                         std::vector<SketchAnchor>* out) {
  for (uint32_t i = 0; i < lanes; ++i) {
    const DistT d = row[i];
    if (d != kInfDist) out->push_back(SketchAnchor{i, d});
  }
}

bool LowerExceedsScalar(const DistT* rx, const DistT* ro, const BpMask* mx,
                        const BpMask* mo, uint32_t lanes, uint16_t threshold) {
  for (uint32_t i = 0; i < lanes; ++i) {
    const DistT dx = rx[i];
    if (dx == kInfDist) continue;
    const DistT dother = ro[i];
    if (dother == kInfDist) continue;
    const uint32_t base = dx > dother ? dx - dother : dother - dx;
    if (base > threshold) return true;
    if (base == threshold && BpMaskLowerLift(mx[i], mo[i], dx, dother)) {
      return true;
    }
  }
  return false;
}

const ScanOps kScalarOps = {ScanKernel::kScalar,  "scalar",
                            RowBoundScalar,       RowBoundBatchScalar,
                            RowCandidatesScalar,  LowerExceedsScalar};

#if QBS_HAVE_AVX2_KERNELS

// --- AVX2 kernels: 16 uint16 lanes per 256-bit vector. ---

// Compacts a 32-bit epi8 movemask of 16-bit-lane compare results (2
// identical bits per lane) into one bit per lane.
inline uint32_t CompactLaneMask(uint32_t m) {
  m &= 0x55555555u;
  m = (m | (m >> 1)) & 0x33333333u;
  m = (m | (m >> 2)) & 0x0F0F0F0Fu;
  m = (m | (m >> 4)) & 0x00FF00FFu;
  m = (m | (m >> 8)) & 0x0000FFFFu;
  return m;
}

__attribute__((target("avx2"))) inline uint16_t HMinEpu16(__m256i v) {
  const __m128i folded = _mm_min_epu16(_mm256_castsi256_si128(v),
                                       _mm256_extracti128_si256(v, 1));
  // minpos returns the minimum of 8 uint16 lanes in the low word.
  return static_cast<uint16_t>(
      _mm_cvtsi128_si32(_mm_minpos_epu16(folded)) & 0xFFFF);
}

__attribute__((target("avx2"))) inline uint16_t HMaxEpu16(__m256i v) {
  // max = ~min(~v): complement maps the unsigned order onto itself
  // reversed, and minpos only exists for minimums.
  const __m256i inv = _mm256_xor_si256(v, _mm256_set1_epi16(-1));
  return static_cast<uint16_t>(0xFFFFu - HMinEpu16(inv));
}

// One 16-lane block of the fused two-row scan; shared by the single-pair
// and batched kernels so they stay bit-identical by construction.
__attribute__((target("avx2"))) inline void RowBoundBlockAvx2(
    const DistT* ru, const DistT* rv, uint32_t i, __m256i vgate,
    __m256i* vbase, __m256i* vmin, __m256i* vany, uint64_t* gate_words) {
  const __m256i inf = _mm256_set1_epi16(-1);
  const __m256i du =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(ru + i));
  const __m256i dv =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(rv + i));
  // A lane participates only when present in BOTH rows; padding lanes are
  // kInfDist on every row, so they are absent here by construction.
  const __m256i absent = _mm256_or_si256(_mm256_cmpeq_epi16(du, inf),
                                         _mm256_cmpeq_epi16(dv, inf));
  // |du - dv| exactly: one of the two saturating subtractions is the true
  // difference, the other is 0.
  const __m256i base = _mm256_or_si256(_mm256_subs_epu16(du, dv),
                                       _mm256_subs_epu16(dv, du));
  *vbase = _mm256_max_epu16(*vbase, _mm256_andnot_si256(absent, base));
  // Saturating min-plus: sat(du + dv) = min(true sum, 0xFFFF), and min of
  // saturated sums = sat(min of true sums) — exact unless it lands on the
  // sentinel (the finalizer recomputes that rare case). Absent lanes are
  // forced to 0xFFFF so they never win the min.
  const __m256i sum = _mm256_or_si256(_mm256_adds_epu16(du, dv), absent);
  *vmin = _mm256_min_epu16(*vmin, sum);
  *vany = _mm256_or_si256(*vany, _mm256_andnot_si256(absent, inf));
  if (gate_words != nullptr) {
    // sum <= gate via min(sum, gate) == sum (no unsigned 16-bit compare
    // in AVX2). Absent lanes sit at 0xFFFF and would pass when gate ==
    // 0xFFFF, so mask them off explicitly.
    const __m256i le = _mm256_cmpeq_epi16(_mm256_min_epu16(sum, vgate), sum);
    const uint32_t bits = CompactLaneMask(static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_andnot_si256(absent, le))));
    gate_words[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
}

__attribute__((target("avx2"))) inline void RowBoundFinalizeAvx2(
    const DistT* ru, const DistT* rv, uint32_t lanes, __m256i vbase,
    __m256i vmin, __m256i vany, RowAgg* agg) {
  const bool any = !_mm256_testz_si256(vany, vany);
  agg->any = any;
  if (!any) {
    agg->base_max = 0;
    agg->sum_min = kUnreachable;
    return;
  }
  agg->base_max = HMaxEpu16(vbase);
  const uint16_t sat = HMinEpu16(vmin);
  if (sat != 0xFFFF) {
    agg->sum_min = sat;
    return;
  }
  // Every shared lane's saturated sum hit the sentinel: the true minimum
  // is somewhere in [0xFFFF, 2 * 0xFFFE]. Recompute it exactly (rare —
  // it needs both distances near the 16-bit ceiling on every shared
  // landmark, which the differential harness's saturating families do
  // produce).
  uint32_t sum_min = kUnreachable;
  for (uint32_t i = 0; i < lanes; ++i) {
    const DistT du = ru[i];
    const DistT dv = rv[i];
    if (du == kInfDist || dv == kInfDist) continue;
    const uint32_t sum = static_cast<uint32_t>(du) + dv;
    if (sum < sum_min) sum_min = sum;
  }
  agg->sum_min = sum_min;
}

__attribute__((target("avx2"))) void RowBoundAvx2(const DistT* ru,
                                                  const DistT* rv,
                                                  uint32_t lanes,
                                                  uint16_t gate_limit,
                                                  RowAgg* agg,
                                                  uint64_t* gate_words) {
  const __m256i vgate = _mm256_set1_epi16(static_cast<short>(gate_limit));
  __m256i vbase = _mm256_setzero_si256();
  __m256i vmin = _mm256_set1_epi16(-1);
  __m256i vany = _mm256_setzero_si256();
  for (uint32_t i = 0; i < lanes; i += 16) {
    RowBoundBlockAvx2(ru, rv, i, vgate, &vbase, &vmin, &vany, gate_words);
  }
  RowBoundFinalizeAvx2(ru, rv, lanes, vbase, vmin, vany, agg);
}

// The batched variant interleaves pairs within each 16-lane block: when
// several in-flight queries share an endpoint (hot vertices under Zipfian
// load) or their rows share cache lines, the block stays in L1 across all
// pairs instead of being re-fetched per query.
__attribute__((target("avx2"))) void RowBoundBatchAvx2(RowBoundTask* tasks,
                                                       size_t n,
                                                       uint32_t lanes,
                                                       uint16_t gate_limit) {
  QBS_DCHECK(n <= kScanBatch);
  const __m256i vgate = _mm256_set1_epi16(static_cast<short>(gate_limit));
  __m256i vbase[kScanBatch];
  __m256i vmin[kScanBatch];
  __m256i vany[kScanBatch];
  for (size_t p = 0; p < n; ++p) {
    vbase[p] = _mm256_setzero_si256();
    vmin[p] = _mm256_set1_epi16(-1);
    vany[p] = _mm256_setzero_si256();
  }
  for (uint32_t i = 0; i < lanes; i += 16) {
    for (size_t p = 0; p < n; ++p) {
      RowBoundBlockAvx2(tasks[p].ru, tasks[p].rv, i, vgate, &vbase[p],
                        &vmin[p], &vany[p], tasks[p].gate_words);
    }
  }
  for (size_t p = 0; p < n; ++p) {
    RowBoundFinalizeAvx2(tasks[p].ru, tasks[p].rv, lanes, vbase[p], vmin[p],
                         vany[p], &tasks[p].agg);
  }
}

__attribute__((target("avx2"))) void RowCandidatesAvx2(
    const DistT* row, uint32_t lanes, std::vector<SketchAnchor>* out) {
  const __m256i inf = _mm256_set1_epi16(-1);
  for (uint32_t i = 0; i < lanes; i += 16) {
    const __m256i d =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(row + i));
    const uint32_t absent =
        static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi16(d, inf)));
    uint32_t present = CompactLaneMask(~absent);
    while (present != 0) {
      const uint32_t j = static_cast<uint32_t>(std::countr_zero(present));
      present &= present - 1;
      out->push_back(SketchAnchor{i + j, row[i + j]});
    }
  }
}

__attribute__((target("avx2"))) bool LowerExceedsAvx2(
    const DistT* rx, const DistT* ro, const BpMask* mx, const BpMask* mo,
    uint32_t lanes, uint16_t threshold) {
  const __m256i inf = _mm256_set1_epi16(-1);
  const __m256i vt = _mm256_set1_epi16(static_cast<short>(threshold));
  for (uint32_t i = 0; i < lanes; i += 16) {
    const __m256i dx =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(rx + i));
    const __m256i dother =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(ro + i));
    const __m256i absent = _mm256_or_si256(_mm256_cmpeq_epi16(dx, inf),
                                           _mm256_cmpeq_epi16(dother, inf));
    const __m256i base = _mm256_or_si256(_mm256_subs_epu16(dx, dother),
                                         _mm256_subs_epu16(dother, dx));
    // base >= threshold via max(base, t) == base; shared lanes only.
    const __m256i ge = _mm256_andnot_si256(
        absent, _mm256_cmpeq_epi16(_mm256_max_epu16(base, vt), base));
    if (_mm256_testz_si256(ge, ge)) continue;
    const uint32_t ge_bits =
        CompactLaneMask(static_cast<uint32_t>(_mm256_movemask_epi8(ge)));
    const uint32_t eq_bits = CompactLaneMask(static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi16(base, vt))));
    if ((ge_bits & ~eq_bits) != 0) return true;  // some base > threshold
    // Lanes sitting exactly at the threshold: only these read their mask
    // cache lines, matching the scalar kernel's access pattern.
    uint32_t witness = ge_bits & eq_bits;
    while (witness != 0) {
      const uint32_t lane =
          i + static_cast<uint32_t>(std::countr_zero(witness));
      witness &= witness - 1;
      if (BpMaskLowerLift(mx[lane], mo[lane], rx[lane], ro[lane])) {
        return true;
      }
    }
  }
  return false;
}

const ScanOps kAvx2Ops = {ScanKernel::kAvx2,  "avx2",
                          RowBoundAvx2,       RowBoundBatchAvx2,
                          RowCandidatesAvx2,  LowerExceedsAvx2};

#endif  // QBS_HAVE_AVX2_KERNELS

std::atomic<const ScanOps*> g_active_ops{nullptr};

const ScanOps* ResolveActiveOps() {
  const ScanKernel kernel =
      ResolveScanKernel(CpuHasAvx2(), std::getenv("QBS_FORCE_SCALAR_SCAN"));
  return &ScanOpsFor(kernel);
}

}  // namespace

const ScanOps& ScalarScanOps() { return kScalarOps; }

const ScanOps& ScanOpsFor(ScanKernel kernel) {
#if QBS_HAVE_AVX2_KERNELS
  if (kernel == ScanKernel::kAvx2 && CpuHasAvx2()) return kAvx2Ops;
#endif
  (void)kernel;
  return kScalarOps;
}

std::vector<ScanKernel> SupportedScanKernels() {
  std::vector<ScanKernel> kernels = {ScanKernel::kScalar};
#if QBS_HAVE_AVX2_KERNELS
  if (CpuHasAvx2()) kernels.push_back(ScanKernel::kAvx2);
#endif
  return kernels;
}

bool CpuHasAvx2() {
#if QBS_HAVE_AVX2_KERNELS
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

ScanKernel ResolveScanKernel(bool cpu_has_avx2,
                             const char* force_scalar_env) {
  const bool forced =
      force_scalar_env != nullptr && force_scalar_env[0] != '\0' &&
      !(force_scalar_env[0] == '0' && force_scalar_env[1] == '\0');
  if (forced || !cpu_has_avx2 || QBS_HAVE_AVX2_KERNELS == 0) {
    return ScanKernel::kScalar;
  }
  return ScanKernel::kAvx2;
}

const ScanOps& ActiveScanOps() {
  const ScanOps* ops = g_active_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // A racing duplicate resolve is benign: both threads store the same
    // pointer (the resolution is a pure function of process state).
    ops = ResolveActiveOps();
    g_active_ops.store(ops, std::memory_order_release);
  }
  return *ops;
}

ScanKernel ActiveScanKernel() { return ActiveScanOps().kernel; }

void SetActiveScanKernel(ScanKernel kernel) {
  g_active_ops.store(&ScanOpsFor(kernel), std::memory_order_release);
}

LabelBound FinishRowBound(const RowAgg& agg, const uint64_t* gate_words,
                          uint32_t lanes, const DistT* ru, const DistT* rv,
                          const BpMask* mu, const BpMask* mv,
                          uint32_t max_refinable) {
  LabelBound bound;
  if (!agg.any) return bound;  // no shared landmark: {0, kUnreachable}
  bound.lower = agg.base_max;
  bound.upper = agg.sum_min;
  if (gate_words == nullptr || mu == nullptr || mv == nullptr) return bound;
  // The in-loop scalar lift is order-independent once decomposed: the
  // final lower bound is base_max + 1 iff some lane passing the refine
  // gate sits exactly at base_max and carries a BpMaskLowerLift witness
  // (a lift from any smaller base is always overtaken by base_max, and a
  // base_max lane's `base >= lower` precondition holds whenever such a
  // lane is reached). That is what makes a vector pass + this post-pass
  // bit-identical to the sequential merge.
  bool lifted = false;
  const uint32_t words = GateWordCount(lanes);
  for (uint32_t w = 0; w < words; ++w) {
    uint64_t bits = gate_words[w];
    while (bits != 0) {
      const uint32_t i =
          w * 64 + static_cast<uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const DistT du = ru[i];
      const DistT dv = rv[i];
      uint32_t cand = static_cast<uint32_t>(du) + dv;
      // Exact re-gate: the kernels' saturating compare may admit lanes
      // whose true sum exceeds the limit (only possible when the limit
      // itself clamps at 0xFFFF).
      if (cand > max_refinable) continue;
      const BpMask& a = mu[i];
      const BpMask& b = mv[i];
      if ((a.s_minus & b.s_minus) != 0) {
        cand -= 2;
      } else if ((a.s_minus & b.s_zero) != 0 || (a.s_zero & b.s_minus) != 0) {
        cand -= 1;
      }
      if (cand < bound.upper) bound.upper = cand;
      if (!lifted) {
        const uint32_t base = du > dv ? du - dv : dv - du;
        if (base == agg.base_max && BpMaskLowerLift(a, b, du, dv)) {
          lifted = true;
        }
      }
    }
  }
  if (lifted) bound.lower = agg.base_max + 1;
  return bound;
}

LabelBound ComputeLabelBoundRows(const PathLabeling& labeling, VertexId u,
                                 VertexId v, uint32_t refine_cutoff,
                                 const ScanOps& ops) {
  QBS_DCHECK(!labeling.IsLandmark(u) && !labeling.IsLandmark(v));
  const uint32_t lanes = labeling.row_stride();
  const DistT* ru = labeling.Row(u);
  const DistT* rv = labeling.Row(v);
  const bool bp = labeling.has_bp_masks();
  const uint32_t max_refinable = MaxRefinable(refine_cutoff);
  uint64_t stack_words[kMaxStackWords] = {};
  std::vector<uint64_t> heap_words;
  uint64_t* words = nullptr;
  if (bp && lanes > 0) {
    const uint32_t nwords = GateWordCount(lanes);
    if (nwords <= kMaxStackWords) {
      words = stack_words;
    } else {
      heap_words.assign(nwords, 0);
      words = heap_words.data();
    }
  }
  RowAgg agg;
  ops.row_bound(ru, rv, lanes, GateLimit16(max_refinable), &agg, words);
  return FinishRowBound(agg, words, lanes, ru, rv,
                        bp ? labeling.BpRow(u) : nullptr,
                        bp ? labeling.BpRow(v) : nullptr, max_refinable);
}

LabelBound ComputeLabelBoundRows(const PathLabeling& labeling, VertexId u,
                                 VertexId v, uint32_t refine_cutoff) {
  return ComputeLabelBoundRows(labeling, u, v, refine_cutoff,
                               ActiveScanOps());
}

void ComputeLabelBoundRowsBatch(const PathLabeling& labeling,
                                const VertexId* us, const VertexId* vs,
                                size_t n, uint32_t refine_cutoff,
                                LabelBound* bounds, const ScanOps& ops) {
  const uint32_t lanes = labeling.row_stride();
  const bool bp = labeling.has_bp_masks() && lanes > 0;
  const uint32_t max_refinable = MaxRefinable(refine_cutoff);
  const uint16_t gate_limit = GateLimit16(max_refinable);
  const uint32_t nwords = GateWordCount(lanes);
  uint64_t stack_words[kScanBatch * kMaxStackWords];
  std::vector<uint64_t> heap_words;
  for (size_t begin = 0; begin < n; begin += kScanBatch) {
    const size_t group = std::min(kScanBatch, n - begin);
    uint64_t* words = nullptr;
    if (bp) {
      if (nwords <= kMaxStackWords) {
        std::fill(stack_words, stack_words + group * nwords, 0);
        words = stack_words;
      } else {
        heap_words.assign(group * nwords, 0);
        words = heap_words.data();
      }
    }
    RowBoundTask tasks[kScanBatch];
    for (size_t p = 0; p < group; ++p) {
      tasks[p].ru = labeling.Row(us[begin + p]);
      tasks[p].rv = labeling.Row(vs[begin + p]);
      tasks[p].gate_words = bp ? words + p * nwords : nullptr;
    }
    ops.row_bound_batch(tasks, group, lanes, gate_limit);
    for (size_t p = 0; p < group; ++p) {
      bounds[begin + p] = FinishRowBound(
          tasks[p].agg, tasks[p].gate_words, lanes, tasks[p].ru, tasks[p].rv,
          bp ? labeling.BpRow(us[begin + p]) : nullptr,
          bp ? labeling.BpRow(vs[begin + p]) : nullptr, max_refinable);
    }
  }
}

bool RowLowerBoundExceeds(const PathLabeling& labeling, VertexId x,
                          VertexId other, uint32_t threshold,
                          const ScanOps& ops) {
  QBS_DCHECK(labeling.has_bp_masks());
  // base = |dx - dother| <= 0xFFFE always (both distances < kInfDist), so
  // larger thresholds can neither be exceeded nor matched.
  if (threshold > 0xFFFEu) return false;
  return ops.lower_exceeds(labeling.Row(x), labeling.Row(other),
                           labeling.BpRow(x), labeling.BpRow(other),
                           labeling.row_stride(),
                           static_cast<uint16_t>(threshold));
}

}  // namespace qbs

#include "core/labeling.h"

#include <algorithm>
#include <utility>

#include "graph/bfs.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qbs {
namespace {

// Per-worker scratch reused across the BFSs this worker runs.
struct BfsScratch {
  std::vector<uint32_t> depth;      // kUnreachable = unvisited
  std::vector<VertexId> touched;    // vertices whose depth was set
  // Level queues: vertices to be labelled (QL) / not labelled (QN).
  std::vector<VertexId> cur_l, cur_n, next_l, next_n;

  void Init(VertexId n) { depth.assign(n, kUnreachable); }

  void ResetTouched() {
    for (VertexId v : touched) depth[v] = kUnreachable;
    touched.clear();
  }
};

// Algorithm 2, one landmark: a level-synchronous BFS from landmarks[i] with
// two queues. Vertices first reached from a QL vertex have a shortest path
// from the root avoiding other landmarks: non-landmarks get a label and
// join QL; landmarks produce a meta-edge and join QN. Vertices first
// reached from QN join QN silently. QL is expanded before QN at each level,
// so a vertex reachable both ways at the same depth is classified QL.
void LabelFromLandmark(const Graph& g, const PathLabeling& labeling,
                       LandmarkIndex i, PathLabeling* out,
                       std::vector<MetaEdge>* meta_edges, BfsScratch* s) {
  const VertexId root = labeling.LandmarkVertex(i);
  s->ResetTouched();
  s->cur_l.clear();
  s->cur_n.clear();
  s->depth[root] = 0;
  s->touched.push_back(root);
  s->cur_l.push_back(root);

  uint32_t level = 0;
  while (!s->cur_l.empty() || !s->cur_n.empty()) {
    s->next_l.clear();
    s->next_n.clear();
    const uint32_t next_depth = level + 1;
    QBS_CHECK_LT(next_depth, static_cast<uint32_t>(kInfDist));
    for (VertexId u : s->cur_l) {
      for (VertexId v : g.Neighbors(u)) {
        if (s->depth[v] != kUnreachable) continue;
        s->depth[v] = next_depth;
        s->touched.push_back(v);
        const int32_t rank = labeling.LandmarkRank(v);
        if (rank >= 0) {
          s->next_n.push_back(v);
          meta_edges->push_back(
              MetaEdge{i, static_cast<LandmarkIndex>(rank), next_depth});
        } else {
          s->next_l.push_back(v);
          out->Set(v, i, static_cast<DistT>(next_depth));
        }
      }
    }
    for (VertexId u : s->cur_n) {
      for (VertexId v : g.Neighbors(u)) {
        if (s->depth[v] != kUnreachable) continue;
        s->depth[v] = next_depth;
        s->touched.push_back(v);
        s->next_n.push_back(v);
      }
    }
    std::swap(s->cur_l, s->next_l);
    std::swap(s->cur_n, s->next_n);
    ++level;
  }
}

}  // namespace

PathLabeling::PathLabeling(VertexId num_vertices,
                           std::vector<VertexId> landmarks)
    : num_vertices_(num_vertices), landmarks_(std::move(landmarks)) {
  landmark_rank_.assign(num_vertices_, -1);
  for (size_t i = 0; i < landmarks_.size(); ++i) {
    QBS_CHECK_LT(landmarks_[i], num_vertices_);
    QBS_CHECK_EQ(landmark_rank_[landmarks_[i]], -1);  // distinct
    landmark_rank_[landmarks_[i]] = static_cast<int32_t>(i);
  }
  dist_.assign(static_cast<size_t>(num_vertices_) * landmarks_.size(),
               kInfDist);
}

uint64_t PathLabeling::NumEntries() const {
  uint64_t count = 0;
  for (DistT d : dist_) {
    if (d != kInfDist) ++count;
  }
  return count;
}

LabelingScheme BuildLabelingScheme(const Graph& g,
                                   const std::vector<VertexId>& landmarks,
                                   const LabelingBuildOptions& options) {
  LabelingScheme scheme;
  scheme.labeling = PathLabeling(g.NumVertices(), landmarks);
  const auto k = static_cast<uint32_t>(landmarks.size());
  scheme.meta = MetaGraph(k);
  if (k == 0) {
    scheme.meta.Finalize();
    return scheme;
  }

  // One BFS per landmark. Label-matrix columns are disjoint across BFSs and
  // meta-edge lists are per-landmark, so workers never contend.
  const size_t workers = std::min<size_t>(EffectiveThreads(options.num_threads), k);
  std::vector<BfsScratch> scratch(workers);
  for (auto& s : scratch) s.Init(g.NumVertices());
  std::vector<std::vector<MetaEdge>> local_meta(k);

  ParallelFor(k, workers, [&](size_t i, size_t worker) {
    LabelFromLandmark(g, scheme.labeling, static_cast<LandmarkIndex>(i),
                      &scheme.labeling, &local_meta[i], &scratch[worker]);
  });

  // Each meta-edge is discovered from both endpoints (the existence
  // condition is symmetric); keep one copy and let AddEdge cross-check the
  // duplicate's weight.
  for (const auto& edges : local_meta) {
    for (const MetaEdge& e : edges) {
      scheme.meta.AddEdge(e.a, e.b, e.weight);
    }
  }
  scheme.meta.Finalize();
  return scheme;
}

}  // namespace qbs

#include "core/labeling.h"

#include <algorithm>
#include <utility>

#include "graph/bfs.h"
#include "graph/frontier.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qbs {
namespace {

// Per-worker scratch reused across the BFSs this worker runs.
struct BfsScratch {
  std::vector<uint32_t> depth;  // kUnreachable = unvisited
  // Level queues: vertices to be labelled (QL) / not labelled (QN).
  std::vector<VertexId> cur_l, cur_n, next_l, next_n;
  // Frontier membership bitmaps, rebuilt only for bottom-up levels.
  Bitmap bits_l, bits_n;
  // Every settled vertex in settle order (level-sorted: level d vertices
  // all precede level d+1). The bit-parallel mask sweep replays it.
  std::vector<VertexId> order;
  DirOptPolicy policy;
};

// Classifies and enqueues the vertex v, newly reached at `next_depth`.
// `via_l` says whether some shortest predecessor is in QL: vertices first
// reached from a QL vertex have a shortest path from the root avoiding
// other landmarks, so non-landmarks get a label (written into this BFS's
// own column `col`) and join QL while landmarks produce a meta-edge and
// join QN. Vertices reached only from QN join QN silently.
inline void Settle(VertexId v, bool via_l, uint32_t next_depth,
                   const PathLabeling& labeling, LandmarkIndex i, DistT* col,
                   std::vector<MetaEdge>* meta_edges, BfsScratch* s) {
  s->depth[v] = next_depth;
  s->order.push_back(v);
  if (!via_l) {
    s->next_n.push_back(v);
    return;
  }
  const int32_t rank = labeling.LandmarkRank(v);
  if (rank >= 0) {
    s->next_n.push_back(v);
    meta_edges->push_back(
        MetaEdge{i, static_cast<LandmarkIndex>(rank), next_depth});
  } else {
    s->next_l.push_back(v);
    col[v] = static_cast<DistT>(next_depth);
  }
}

// Top-down expansion of one frontier queue. With kBp, the expanding
// vertex's (final) S^{-1} mask is ORed into every neighbour at the next
// level — the scan already visits every parent edge, including those into
// vertices another parent discovered first, so the fused propagation costs
// no extra traversals. A zero mask propagates nothing and takes the plain
// loop.
template <bool kBp>
void ExpandTopDown(const Graph& g, const PathLabeling& labeling,
                   LandmarkIndex i, DistT* col,
                   std::vector<MetaEdge>* meta_edges, BfsScratch* s,
                   DirOptController* dir, [[maybe_unused]] BpMask* bp_col,
                   const std::vector<VertexId>& frontier, bool via_l,
                   uint32_t next_depth) {
  for (const VertexId u : frontier) {
    if constexpr (kBp) {
      const uint64_t mu = bp_col[u].s_minus;
      if (mu != 0) {
        for (VertexId v : g.Neighbors(u)) {
          if (s->depth[v] == kUnreachable) {
            Settle(v, via_l, next_depth, labeling, i, col, meta_edges, s);
            dir->Scout(g.Degree(v));
            bp_col[v].s_minus |= mu;
          } else if (s->depth[v] == next_depth) {
            bp_col[v].s_minus |= mu;
          }
        }
        continue;
      }
    }
    for (VertexId v : g.Neighbors(u)) {
      if (s->depth[v] != kUnreachable) continue;
      Settle(v, via_l, next_depth, labeling, i, col, meta_edges, s);
      dir->Scout(g.Degree(v));
    }
  }
}

// Algorithm 2, one landmark: a level-synchronous BFS from landmarks[i] with
// two queues (QL / QN) on the shared frontier substrate. QL classification
// takes priority: a vertex reachable both ways at the same depth counts as
// QL. Dense middle levels run bottom-up (every unvisited vertex scans its
// neighbourhood for a QL parent first, then a QN parent), which preserves
// the priority rule and cuts the per-landmark full-graph sweep — the
// construction-time hot path (Fig. 10) — to a fraction of its edges.
//
// With kBp set, the BFS also builds this landmark's S^{-1} masks inline
// (bp_col non-null, pre-zeroed, seeded here with the selected neighbours),
// replacing the reference replay's full ~2|E| S^{-1} sweep:
//   * top-down levels OR the expanding vertex's final mask into every
//     neighbour at the next level — exactly the parent edges the replay
//     sweep re-derives, at zero extra edge traversals;
//   * bottom-up levels keep their first-parent early exit (the pull cannot
//     collect every parent mask without forfeiting its main win) and
//     instead scatter masks afterwards from the frontier vertices whose
//     mask is nonzero. Masks are sparse — only <= 64 of a hub landmark's
//     neighbours are seeded, and bits spread no faster than the seeds'
//     neighbourhoods — so the scatter touches a small slice of the level's
//     adjacency where the replay sweep re-scans all of it.
// Level synchrony makes a level's masks final before the next level reads
// them, which is what makes the inline propagation equal to the
// level-ordered reference sweep bit for bit.
template <bool kBp>
void LabelFromLandmarkImpl(const Graph& g, const PathLabeling& labeling,
                           LandmarkIndex i, DistT* col,
                           std::vector<MetaEdge>* meta_edges, BfsScratch* s,
                           BpMask* bp_col) {
  const VertexId root = labeling.LandmarkVertex(i);
  const VertexId n = g.NumVertices();
  s->depth.assign(n, kUnreachable);
  s->cur_l.clear();
  s->cur_n.clear();
  s->order.clear();
  s->depth[root] = 0;
  s->order.push_back(root);
  s->cur_l.push_back(root);

  if constexpr (kBp) {
    // Seed bit j at u_j itself: d(u_j, u_j) = 0 = depth(u_j) - 1. All
    // selected vertices are non-landmark neighbours of the root, so they
    // settle at depth 1 and the seed is their whole mask.
    const auto& selected = labeling.BpSelected(i);
    for (size_t j = 0; j < selected.size(); ++j) {
      bp_col[selected[j]].s_minus = 1ull << j;
    }
  }

  DirOptController dir(s->policy, n, g.NumEdges());
  dir.Scout(g.Degree(root));

  uint32_t level = 0;
  while (!s->cur_l.empty() || !s->cur_n.empty()) {
    s->next_l.clear();
    s->next_n.clear();
    const uint32_t next_depth = level + 1;
    QBS_CHECK_LT(next_depth, static_cast<uint32_t>(kInfDist));

    const bool bottom_up = dir.Step(s->cur_l.size() + s->cur_n.size());

    if (bottom_up) {
      s->bits_l.Resize(n);
      s->bits_n.Resize(n);
      for (VertexId x : s->cur_l) s->bits_l.Set(x);
      for (VertexId x : s->cur_n) s->bits_n.Set(x);
      for (VertexId v = 0; v < n; ++v) {
        if (s->depth[v] != kUnreachable) continue;
        // Scan for a QL parent (which wins) before accepting a QN parent.
        bool via_l = false;
        bool via_n = false;
        for (VertexId w : g.Neighbors(v)) {
          if (s->bits_l.Test(w)) {
            via_l = true;
            break;
          }
          via_n |= s->bits_n.Test(w);
        }
        if (!via_l && !via_n) continue;
        Settle(v, via_l, next_depth, labeling, i, col, meta_edges, s);
        dir.Scout(g.Degree(v));
      }
      if constexpr (kBp) {
        // The early-exit pull saw only a fraction of the parent edges, so
        // this level's S^{-1} still has to flow. Two exact ways to move it;
        // pick the cheaper by adjacency volume (the masks' own
        // direction-optimization):
        //   scatter — from frontier vertices whose mask is nonzero (zero
        //   masks propagate nothing; right after the seeds, that is a
        //   handful of vertices);
        //   gather — every just-settled vertex ORs its depth-(d-1)
        //   neighbours (right when a small tail level hangs off a huge
        //   frontier).
        uint64_t vol_scatter = 0;
        for (const VertexId w : s->cur_l) {
          if (bp_col[w].s_minus != 0) vol_scatter += g.Degree(w);
        }
        for (const VertexId w : s->cur_n) {
          if (bp_col[w].s_minus != 0) vol_scatter += g.Degree(w);
        }
        uint64_t vol_gather = 0;
        for (const VertexId v : s->next_l) vol_gather += g.Degree(v);
        for (const VertexId v : s->next_n) vol_gather += g.Degree(v);
        if (vol_scatter <= vol_gather) {
          auto scatter = [&](const std::vector<VertexId>& frontier) {
            for (const VertexId w : frontier) {
              const uint64_t m = bp_col[w].s_minus;
              if (m == 0) continue;
              for (VertexId v : g.Neighbors(w)) {
                if (s->depth[v] == next_depth) bp_col[v].s_minus |= m;
              }
            }
          };
          scatter(s->cur_l);
          scatter(s->cur_n);
        } else {
          auto gather = [&](const std::vector<VertexId>& settled) {
            for (const VertexId v : settled) {
              uint64_t m = 0;
              for (VertexId w : g.Neighbors(v)) {
                if (s->depth[w] == level) m |= bp_col[w].s_minus;
              }
              bp_col[v].s_minus |= m;  // |=: level-1 seeds must survive
            }
          };
          gather(s->next_l);
          gather(s->next_n);
        }
      }
    } else {
      // QL is expanded before QN at each level, so a vertex reachable both
      // ways at the same depth is classified QL.
      ExpandTopDown<kBp>(g, labeling, i, col, meta_edges, s, &dir, bp_col,
                         s->cur_l, /*via_l=*/true, next_depth);
      ExpandTopDown<kBp>(g, labeling, i, col, meta_edges, s, &dir, bp_col,
                         s->cur_n, /*via_l=*/false, next_depth);
    }
    std::swap(s->cur_l, s->next_l);
    std::swap(s->cur_n, s->next_n);
    ++level;
  }
}

// Non-fused entry: the BFS alone. Mask columns are then filled by the
// two-sweep replay (ComputeBpColumn) if requested.
void LabelFromLandmark(const Graph& g, const PathLabeling& labeling,
                       LandmarkIndex i, DistT* col,
                       std::vector<MetaEdge>* meta_edges, BfsScratch* s) {
  LabelFromLandmarkImpl<false>(g, labeling, i, col, meta_edges, s, nullptr);
}

// Selects S_r for the landmark rooted at `root`: its first <= 64
// non-landmark neighbours in adjacency (ascending id) order.
std::vector<VertexId> SelectBpNeighbors(const Graph& g,
                                        const PathLabeling& labeling,
                                        VertexId root) {
  std::vector<VertexId> selected;
  for (VertexId w : g.Neighbors(root)) {
    if (labeling.IsLandmark(w)) continue;
    selected.push_back(w);
    if (selected.size() == 64) break;
  }
  return selected;
}

// The S^0 gather kernel over order[begin, end): each vertex ORs same-level
// neighbours' S^{-1} and parents' S^0, minus its own S^{-1}. Requires
// parents' s_zero to be final, which the settle order guarantees for both
// the full replay sweep and the fused path's per-level ranges — keep this
// the single definition of the recurrence, or the fused-vs-replay
// bit-identity breaks.
void GatherBpSZero(const Graph& g, const std::vector<uint32_t>& depth,
                   const std::vector<VertexId>& order, size_t begin,
                   size_t end, BpMask* col) {
  for (size_t idx = begin; idx < end; ++idx) {
    const VertexId v = order[idx];
    const uint32_t d = depth[v];
    if (d == 0) continue;
    uint64_t z = 0;
    for (VertexId w : g.Neighbors(v)) {
      if (depth[w] == d) {
        z |= col[w].s_minus;
      } else if (depth[w] + 1 == d) {
        z |= col[w].s_zero;
      }
    }
    col[v].s_zero = z & ~col[v].s_minus;
  }
}

// The replay S^0 sweep (same-level masks are not final while a level
// expands, so S^0 never fuses into the BFS itself): S^0 candidates come
// from same-level neighbours' S^{-1} AND parents' S^0, replayed in settle
// order so parents' S^0 is final before their children's, minus S^{-1}(v).
void ComputeBpSZeroSweep(const Graph& g, const std::vector<uint32_t>& depth,
                         const std::vector<VertexId>& order, BpMask* col) {
  GatherBpSZero(g, depth, order, 0, order.size(), col);
}

// The fused-path S^0 sweep: per-level direction choice between the gather
// above (every level vertex scans its adjacency) and zero-skipping
// scatters (only vertices whose mask is nonzero push it — a zero mask
// contributes nothing to any neighbour). Per level d of the level-sorted
// settle order, scatter means:
//   1. parents at d-1 with nonzero (finalized) S^0 push it to depth-d
//      neighbours;
//   2. level-d vertices with nonzero S^{-1} push it to same-depth
//      neighbours;
//   3. the level finalizes: s_zero &= ~s_minus.
// Step 3 of level d-1 runs before step 1 of level d, so parents always
// push finalized masks — the same ordering the settle-order gather relies
// on, hence bit-identical results whichever direction each level picks.
void ComputeBpSZeroFused(const Graph& g, const std::vector<uint32_t>& depth,
                         const std::vector<VertexId>& order, BpMask* col) {
  size_t prev_begin = 0;
  size_t prev_end = 0;
  size_t begin = 0;
  while (begin < order.size()) {
    const uint32_t d = depth[order[begin]];
    size_t end = begin;
    while (end < order.size() && depth[order[end]] == d) ++end;

    uint64_t vol_gather = 0;
    for (size_t idx = begin; idx < end; ++idx) {
      vol_gather += g.Degree(order[idx]);
    }
    uint64_t vol_scatter = 0;
    for (size_t idx = prev_begin; idx < prev_end; ++idx) {
      if (col[order[idx]].s_zero != 0) vol_scatter += g.Degree(order[idx]);
    }
    for (size_t idx = begin; idx < end; ++idx) {
      if (col[order[idx]].s_minus != 0) vol_scatter += g.Degree(order[idx]);
    }

    if (vol_scatter <= vol_gather) {
      for (size_t idx = prev_begin; idx < prev_end; ++idx) {
        const VertexId w = order[idx];
        const uint64_t z = col[w].s_zero;
        if (z == 0) continue;
        for (VertexId v : g.Neighbors(w)) {
          if (depth[v] == d) col[v].s_zero |= z;
        }
      }
      for (size_t idx = begin; idx < end; ++idx) {
        const VertexId w = order[idx];
        const uint64_t m = col[w].s_minus;
        if (m == 0) continue;
        for (VertexId v : g.Neighbors(w)) {
          if (depth[v] == d) col[v].s_zero |= m;
        }
      }
      for (size_t idx = begin; idx < end; ++idx) {
        const VertexId v = order[idx];
        col[v].s_zero &= ~col[v].s_minus;
      }
    } else {
      GatherBpSZero(g, depth, order, begin, end, col);
    }
    prev_begin = begin;
    prev_end = end;
    begin = end;
  }
}

// Fills this landmark's mask column from the finished BFS (depth array +
// level-sorted settle order). Two level-synchronous sweeps:
//   S^{-1} flows down parent edges only (a shortest u_j..v path enters v
//   through a predecessor w with depth(w) = depth(v) - 1 and
//   d(u_j, w) = depth(w) - 1), seeded with bit j at the selected vertex
//   u_j itself (d(u_j, u_j) = 0 = depth(u_j) - 1);
//   S^{0} candidates come from same-level neighbours' S^{-1} AND parents'
//   S^{0} (the predecessor of a length-depth(v) path sits at depth(v) - 1
//   with d(u_j, w) = depth(w), or at depth(v) with d(u_j, w) =
//   depth(w) - 1), minus S^{-1}(v) — both sources can also witness the
//   one-closer distance.
// Replaying the settle order keeps both sweeps in level order without
// re-bucketing (parents' S^{0} is final before their children's), and
// `col` slices a zero-initialized buffer, so unreached vertices keep empty
// masks.
void ComputeBpColumn(const Graph& g, const std::vector<VertexId>& selected,
                     const std::vector<uint32_t>& depth,
                     const std::vector<VertexId>& order, BpMask* col) {
  if (selected.empty()) return;
  for (size_t j = 0; j < selected.size(); ++j) {
    col[selected[j]].s_minus = 1ull << j;
  }
  for (const VertexId v : order) {
    const uint32_t d = depth[v];
    if (d < 2) continue;  // root and level 1 are fully seeded above
    uint64_t m = 0;
    for (VertexId w : g.Neighbors(v)) {
      if (depth[w] == d - 1) m |= col[w].s_minus;
    }
    col[v].s_minus = m;
  }
  ComputeBpSZeroSweep(g, depth, order, col);
}

}  // namespace

PathLabeling::PathLabeling(VertexId num_vertices,
                           std::vector<VertexId> landmarks)
    : num_vertices_(num_vertices), landmarks_(std::move(landmarks)) {
  landmark_rank_.assign(num_vertices_, -1);
  for (size_t i = 0; i < landmarks_.size(); ++i) {
    QBS_CHECK_LT(landmarks_[i], num_vertices_);
    QBS_CHECK_EQ(landmark_rank_[landmarks_[i]], -1);  // distinct
    landmark_rank_[landmarks_[i]] = static_cast<int32_t>(i);
  }
  // Rows are padded to the SIMD lane width; padding lanes hold kInfDist
  // forever (Set never writes past |R|), which is what lets the row
  // kernels scan the full stride without a tail loop.
  stride_ = (static_cast<uint32_t>(landmarks_.size()) + kLabelRowLaneAlign -
             1) /
            kLabelRowLaneAlign * kLabelRowLaneAlign;
  dist_.assign(static_cast<size_t>(num_vertices_) * stride_, kInfDist);
}

uint64_t PathLabeling::NumEntries() const {
  uint64_t count = 0;
  for (DistT d : dist_) {
    if (d != kInfDist) ++count;
  }
  return count;
}

void PathLabeling::AssignFromColumns(const std::vector<DistT>& cols) {
  const size_t n = num_vertices_;
  const size_t k = landmarks_.size();
  QBS_CHECK_EQ(cols.size(), n * k);
  // Blocked transpose: a 64x64 tile of DistT spans 8KB on each side, so
  // both the column-major source tile and the vertex-major target tile stay
  // cache-resident.
  constexpr size_t kTile = 64;
  for (size_t v0 = 0; v0 < n; v0 += kTile) {
    const size_t v1 = std::min(v0 + kTile, n);
    for (size_t i0 = 0; i0 < k; i0 += kTile) {
      const size_t i1 = std::min(i0 + kTile, k);
      for (size_t v = v0; v < v1; ++v) {
        for (size_t i = i0; i < i1; ++i) {
          dist_[v * stride_ + i] = cols[i * n + v];
        }
      }
    }
  }
}

void PathLabeling::EnableBpMasks() {
  bp_.assign(static_cast<size_t>(num_vertices_) * landmarks_.size(),
             BpMask{});
  bp_selected_.assign(landmarks_.size(), {});
}

void PathLabeling::SetBpSelected(LandmarkIndex i,
                                 std::vector<VertexId> selected) {
  QBS_CHECK_LE(selected.size(), 64u);
  bp_selected_[i] = std::move(selected);
}

void PathLabeling::AssignBpFromColumns(const std::vector<BpMask>& cols) {
  const size_t n = num_vertices_;
  const size_t k = landmarks_.size();
  QBS_CHECK_EQ(cols.size(), n * k);
  QBS_CHECK_EQ(bp_.size(), n * k);
  // A BpMask is 16 bytes, so a 32x32 tile spans 16KB per side.
  constexpr size_t kTile = 32;
  for (size_t v0 = 0; v0 < n; v0 += kTile) {
    const size_t v1 = std::min(v0 + kTile, n);
    for (size_t i0 = 0; i0 < k; i0 += kTile) {
      const size_t i1 = std::min(i0 + kTile, k);
      for (size_t v = v0; v < v1; ++v) {
        for (size_t i = i0; i < i1; ++i) {
          bp_[v * k + i] = cols[i * n + v];
        }
      }
    }
  }
}

LabelingScheme BuildLabelingScheme(const Graph& g,
                                   const std::vector<VertexId>& landmarks,
                                   const LabelingBuildOptions& options) {
  LabelingScheme scheme;
  scheme.labeling = PathLabeling(g.NumVertices(), landmarks);
  const auto k = static_cast<uint32_t>(landmarks.size());
  scheme.meta = MetaGraph(k);
  if (k == 0) {
    scheme.meta.Finalize();
    return scheme;
  }

  // One BFS per landmark. Each BFS streams labels into its own
  // landmark-major column and meta-edge lists are per-landmark, so workers
  // never contend; a single blocked transpose then fills the vertex-major
  // query matrix. When bit-parallel masks are on, the finished BFS (depth
  // array + settle order) feeds the mask sweeps before the worker moves on,
  // into a mask column of the same landmark-major layout.
  const size_t workers =
      std::min<size_t>(EffectiveThreads(options.num_threads), k);
  std::vector<BfsScratch> scratch(workers);
  std::vector<std::vector<MetaEdge>> local_meta(k);
  std::vector<DistT> cols(static_cast<size_t>(g.NumVertices()) * k, kInfDist);
  std::vector<BpMask> bp_cols;
  if (options.bit_parallel) {
    scheme.labeling.EnableBpMasks();
    bp_cols.assign(static_cast<size_t>(g.NumVertices()) * k, BpMask{});
    for (LandmarkIndex i = 0; i < k; ++i) {
      scheme.labeling.SetBpSelected(
          i, SelectBpNeighbors(g, scheme.labeling, landmarks[i]));
    }
  }

  ParallelFor(k, workers, [&](size_t i, size_t worker) {
    DistT* label_col =
        cols.data() + i * static_cast<size_t>(g.NumVertices());
    BpMask* bp_col =
        options.bit_parallel
            ? bp_cols.data() + i * static_cast<size_t>(g.NumVertices())
            : nullptr;
    if (options.bit_parallel && options.bp_fused) {
      // Fused: the BFS propagates S^{-1} inline; S^0 follows by per-level
      // zero-skipping scatters instead of a full replay sweep.
      LabelFromLandmarkImpl<true>(g, scheme.labeling,
                                  static_cast<LandmarkIndex>(i), label_col,
                                  &local_meta[i], &scratch[worker], bp_col);
      ComputeBpSZeroFused(g, scratch[worker].depth, scratch[worker].order,
                          bp_col);
      return;
    }
    LabelFromLandmark(g, scheme.labeling, static_cast<LandmarkIndex>(i),
                      label_col, &local_meta[i], &scratch[worker]);
    if (options.bit_parallel) {
      ComputeBpColumn(
          g, scheme.labeling.BpSelected(static_cast<LandmarkIndex>(i)),
          scratch[worker].depth, scratch[worker].order, bp_col);
    }
  });
  scheme.labeling.AssignFromColumns(cols);
  if (options.bit_parallel) scheme.labeling.AssignBpFromColumns(bp_cols);

  // Each meta-edge is discovered from both endpoints (the existence
  // condition is symmetric); keep one copy and let AddEdge cross-check the
  // duplicate's weight.
  for (const auto& edges : local_meta) {
    for (const MetaEdge& e : edges) {
      scheme.meta.AddEdge(e.a, e.b, e.weight);
    }
  }
  scheme.meta.Finalize();
  return scheme;
}

void RebuildLabelColumn(const Graph& g, PathLabeling& labeling,
                        LandmarkIndex i, LabelColumnState* state) {
  const VertexId n = g.NumVertices();
  std::vector<DistT> col(n, kInfDist);
  std::vector<MetaEdge> meta;
  BfsScratch s;
  if (labeling.has_bp_masks()) {
    // S_r is an adjacency property, so edge edits at the root can change
    // it — refresh before seeding.
    labeling.SetBpSelected(
        i, SelectBpNeighbors(g, labeling, labeling.LandmarkVertex(i)));
    std::vector<BpMask> bp_col(n, BpMask{});
    LabelFromLandmarkImpl<true>(g, labeling, i, col.data(), &meta, &s,
                                bp_col.data());
    ComputeBpSZeroFused(g, s.depth, s.order, bp_col.data());
    for (VertexId v = 0; v < n; ++v) labeling.SetBpMask(v, i, bp_col[v]);
  } else {
    LabelFromLandmark(g, labeling, i, col.data(), &meta, &s);
  }
  for (VertexId v = 0; v < n; ++v) labeling.Set(v, i, col[v]);
  std::sort(meta.begin(), meta.end());
  state->depth = std::move(s.depth);
  state->meta = std::move(meta);
}

void RederiveLabelColumn(const Graph& g, PathLabeling& labeling,
                         LandmarkIndex i, LabelColumnState* state) {
  const VertexId n = g.NumVertices();
  const std::vector<uint32_t>& depth = state->depth;
  QBS_CHECK_EQ(depth.size(), static_cast<size_t>(n));

  // Level-sorted settle order via counting sort (ascending id within each
  // level). Any level-sorted order derives identical labels and masks: the
  // QL rule and both mask recurrences only compare depths across edges.
  uint32_t max_depth = 0;
  size_t reached = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (depth[v] == kUnreachable) continue;
    ++reached;
    max_depth = std::max(max_depth, depth[v]);
  }
  QBS_CHECK_LT(max_depth, static_cast<uint32_t>(kInfDist));
  std::vector<size_t> level_begin(static_cast<size_t>(max_depth) + 2, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (depth[v] != kUnreachable) ++level_begin[depth[v] + 1];
  }
  for (size_t d = 1; d < level_begin.size(); ++d) {
    level_begin[d] += level_begin[d - 1];
  }
  std::vector<VertexId> order(reached);
  std::vector<size_t> cursor(level_begin.begin(), level_begin.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    if (depth[v] != kUnreachable) order[cursor[depth[v]]++] = v;
  }

  // QL reclassification in level order: the root seeds QL; a vertex is QL
  // iff some depth-(d-1) parent is QL and it is not itself a landmark.
  // Non-landmark QL vertices carry the label; landmarks first reached via a
  // QL parent produce the meta-edge — exactly Settle()'s rule, driven by
  // exact depths instead of discovery order.
  for (VertexId v = 0; v < n; ++v) labeling.Set(v, i, kInfDist);
  std::vector<MetaEdge> meta;
  std::vector<uint8_t> ql(n, 0);
  for (const VertexId v : order) {
    const uint32_t d = depth[v];
    if (d == 0) {
      ql[v] = 1;  // the root joins QL even though it is a landmark
      continue;
    }
    bool via_l = false;
    for (VertexId w : g.Neighbors(v)) {
      // depth[w] + 1 wraps to 0 for unreached w; d >= 1 here, so no match.
      if (depth[w] + 1 == d && ql[w] != 0) {
        via_l = true;
        break;
      }
    }
    const int32_t rank = labeling.LandmarkRank(v);
    if (rank >= 0) {
      if (via_l) {
        meta.push_back(MetaEdge{i, static_cast<LandmarkIndex>(rank), d});
      }
    } else if (via_l) {
      ql[v] = 1;
      labeling.Set(v, i, static_cast<DistT>(d));
    }
  }

  if (labeling.has_bp_masks()) {
    labeling.SetBpSelected(
        i, SelectBpNeighbors(g, labeling, labeling.LandmarkVertex(i)));
    std::vector<BpMask> bp_col(n, BpMask{});
    ComputeBpColumn(g, labeling.BpSelected(i), depth, order, bp_col.data());
    for (VertexId v = 0; v < n; ++v) labeling.SetBpMask(v, i, bp_col[v]);
  }
  std::sort(meta.begin(), meta.end());
  state->meta = std::move(meta);
}

}  // namespace qbs

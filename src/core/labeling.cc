#include "core/labeling.h"

#include <algorithm>
#include <utility>

#include "graph/bfs.h"
#include "graph/frontier.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qbs {
namespace {

// Per-worker scratch reused across the BFSs this worker runs.
struct BfsScratch {
  std::vector<uint32_t> depth;  // kUnreachable = unvisited
  // Level queues: vertices to be labelled (QL) / not labelled (QN).
  std::vector<VertexId> cur_l, cur_n, next_l, next_n;
  // Frontier membership bitmaps, rebuilt only for bottom-up levels.
  Bitmap bits_l, bits_n;
  // Every settled vertex in settle order (level-sorted: level d vertices
  // all precede level d+1). The bit-parallel mask sweep replays it.
  std::vector<VertexId> order;
  DirOptPolicy policy;
};

// Classifies and enqueues the vertex v, newly reached at `next_depth`.
// `via_l` says whether some shortest predecessor is in QL: vertices first
// reached from a QL vertex have a shortest path from the root avoiding
// other landmarks, so non-landmarks get a label (written into this BFS's
// own column `col`) and join QL while landmarks produce a meta-edge and
// join QN. Vertices reached only from QN join QN silently.
inline void Settle(VertexId v, bool via_l, uint32_t next_depth,
                   const PathLabeling& labeling, LandmarkIndex i, DistT* col,
                   std::vector<MetaEdge>* meta_edges, BfsScratch* s) {
  s->depth[v] = next_depth;
  s->order.push_back(v);
  if (!via_l) {
    s->next_n.push_back(v);
    return;
  }
  const int32_t rank = labeling.LandmarkRank(v);
  if (rank >= 0) {
    s->next_n.push_back(v);
    meta_edges->push_back(
        MetaEdge{i, static_cast<LandmarkIndex>(rank), next_depth});
  } else {
    s->next_l.push_back(v);
    col[v] = static_cast<DistT>(next_depth);
  }
}

// Algorithm 2, one landmark: a level-synchronous BFS from landmarks[i] with
// two queues (QL / QN) on the shared frontier substrate. QL classification
// takes priority: a vertex reachable both ways at the same depth counts as
// QL. Dense middle levels run bottom-up (every unvisited vertex scans its
// neighbourhood for a QL parent first, then a QN parent), which preserves
// the priority rule and cuts the per-landmark full-graph sweep — the
// construction-time hot path (Fig. 10) — to a fraction of its edges.
void LabelFromLandmark(const Graph& g, const PathLabeling& labeling,
                       LandmarkIndex i, DistT* col,
                       std::vector<MetaEdge>* meta_edges, BfsScratch* s) {
  const VertexId root = labeling.LandmarkVertex(i);
  const VertexId n = g.NumVertices();
  s->depth.assign(n, kUnreachable);
  s->cur_l.clear();
  s->cur_n.clear();
  s->order.clear();
  s->depth[root] = 0;
  s->order.push_back(root);
  s->cur_l.push_back(root);

  uint64_t edges_remaining = 2 * g.NumEdges();
  uint64_t scout_count = g.Degree(root);
  bool bottom_up = false;

  uint32_t level = 0;
  while (!s->cur_l.empty() || !s->cur_n.empty()) {
    s->next_l.clear();
    s->next_n.clear();
    const uint32_t next_depth = level + 1;
    QBS_CHECK_LT(next_depth, static_cast<uint32_t>(kInfDist));

    if (!bottom_up && scout_count > edges_remaining / s->policy.alpha) {
      bottom_up = true;
    } else if (bottom_up &&
               s->cur_l.size() + s->cur_n.size() < n / s->policy.beta) {
      bottom_up = false;
    }
    edges_remaining -= scout_count;
    scout_count = 0;

    if (bottom_up) {
      s->bits_l.Resize(n);
      s->bits_n.Resize(n);
      for (VertexId x : s->cur_l) s->bits_l.Set(x);
      for (VertexId x : s->cur_n) s->bits_n.Set(x);
      for (VertexId v = 0; v < n; ++v) {
        if (s->depth[v] != kUnreachable) continue;
        // Scan for a QL parent (which wins) before accepting a QN parent.
        bool via_l = false;
        bool via_n = false;
        for (VertexId w : g.Neighbors(v)) {
          if (s->bits_l.Test(w)) {
            via_l = true;
            break;
          }
          via_n |= s->bits_n.Test(w);
        }
        if (!via_l && !via_n) continue;
        Settle(v, via_l, next_depth, labeling, i, col, meta_edges, s);
        scout_count += g.Degree(v);
      }
    } else {
      // QL is expanded before QN at each level, so a vertex reachable both
      // ways at the same depth is classified QL.
      for (VertexId u : s->cur_l) {
        for (VertexId v : g.Neighbors(u)) {
          if (s->depth[v] != kUnreachable) continue;
          Settle(v, /*via_l=*/true, next_depth, labeling, i, col, meta_edges,
                 s);
          scout_count += g.Degree(v);
        }
      }
      for (VertexId u : s->cur_n) {
        for (VertexId v : g.Neighbors(u)) {
          if (s->depth[v] != kUnreachable) continue;
          Settle(v, /*via_l=*/false, next_depth, labeling, i, col, meta_edges,
                 s);
          scout_count += g.Degree(v);
        }
      }
    }
    std::swap(s->cur_l, s->next_l);
    std::swap(s->cur_n, s->next_n);
    ++level;
  }
}

// Selects S_r for the landmark rooted at `root`: its first <= 64
// non-landmark neighbours in adjacency (ascending id) order.
std::vector<VertexId> SelectBpNeighbors(const Graph& g,
                                        const PathLabeling& labeling,
                                        VertexId root) {
  std::vector<VertexId> selected;
  for (VertexId w : g.Neighbors(root)) {
    if (labeling.IsLandmark(w)) continue;
    selected.push_back(w);
    if (selected.size() == 64) break;
  }
  return selected;
}

// Fills this landmark's mask column from the finished BFS (depth array +
// level-sorted settle order). Two level-synchronous sweeps:
//   S^{-1} flows down parent edges only (a shortest u_j..v path enters v
//   through a predecessor w with depth(w) = depth(v) - 1 and
//   d(u_j, w) = depth(w) - 1), seeded with bit j at the selected vertex
//   u_j itself (d(u_j, u_j) = 0 = depth(u_j) - 1);
//   S^{0} candidates come from same-level neighbours' S^{-1} AND parents'
//   S^{0} (the predecessor of a length-depth(v) path sits at depth(v) - 1
//   with d(u_j, w) = depth(w), or at depth(v) with d(u_j, w) =
//   depth(w) - 1), minus S^{-1}(v) — both sources can also witness the
//   one-closer distance.
// Replaying the settle order keeps both sweeps in level order without
// re-bucketing (parents' S^{0} is final before their children's), and
// `col` slices a zero-initialized buffer, so unreached vertices keep empty
// masks.
void ComputeBpColumn(const Graph& g, const std::vector<VertexId>& selected,
                     const std::vector<uint32_t>& depth,
                     const std::vector<VertexId>& order, BpMask* col) {
  if (selected.empty()) return;
  for (size_t j = 0; j < selected.size(); ++j) {
    col[selected[j]].s_minus = 1ull << j;
  }
  for (const VertexId v : order) {
    const uint32_t d = depth[v];
    if (d < 2) continue;  // root and level 1 are fully seeded above
    uint64_t m = 0;
    for (VertexId w : g.Neighbors(v)) {
      if (depth[w] == d - 1) m |= col[w].s_minus;
    }
    col[v].s_minus = m;
  }
  for (const VertexId v : order) {
    const uint32_t d = depth[v];
    if (d == 0) continue;
    uint64_t z = 0;
    for (VertexId w : g.Neighbors(v)) {
      if (depth[w] == d) {
        z |= col[w].s_minus;
      } else if (depth[w] + 1 == d) {
        z |= col[w].s_zero;
      }
    }
    col[v].s_zero = z & ~col[v].s_minus;
  }
}

}  // namespace

PathLabeling::PathLabeling(VertexId num_vertices,
                           std::vector<VertexId> landmarks)
    : num_vertices_(num_vertices), landmarks_(std::move(landmarks)) {
  landmark_rank_.assign(num_vertices_, -1);
  for (size_t i = 0; i < landmarks_.size(); ++i) {
    QBS_CHECK_LT(landmarks_[i], num_vertices_);
    QBS_CHECK_EQ(landmark_rank_[landmarks_[i]], -1);  // distinct
    landmark_rank_[landmarks_[i]] = static_cast<int32_t>(i);
  }
  dist_.assign(static_cast<size_t>(num_vertices_) * landmarks_.size(),
               kInfDist);
}

uint64_t PathLabeling::NumEntries() const {
  uint64_t count = 0;
  for (DistT d : dist_) {
    if (d != kInfDist) ++count;
  }
  return count;
}

void PathLabeling::AssignFromColumns(const std::vector<DistT>& cols) {
  const size_t n = num_vertices_;
  const size_t k = landmarks_.size();
  QBS_CHECK_EQ(cols.size(), n * k);
  // Blocked transpose: a 64x64 tile of DistT spans 8KB on each side, so
  // both the column-major source tile and the vertex-major target tile stay
  // cache-resident.
  constexpr size_t kTile = 64;
  for (size_t v0 = 0; v0 < n; v0 += kTile) {
    const size_t v1 = std::min(v0 + kTile, n);
    for (size_t i0 = 0; i0 < k; i0 += kTile) {
      const size_t i1 = std::min(i0 + kTile, k);
      for (size_t v = v0; v < v1; ++v) {
        for (size_t i = i0; i < i1; ++i) {
          dist_[v * k + i] = cols[i * n + v];
        }
      }
    }
  }
}

void PathLabeling::EnableBpMasks() {
  bp_.assign(static_cast<size_t>(num_vertices_) * landmarks_.size(),
             BpMask{});
  bp_selected_.assign(landmarks_.size(), {});
}

void PathLabeling::SetBpSelected(LandmarkIndex i,
                                 std::vector<VertexId> selected) {
  QBS_CHECK_LE(selected.size(), 64u);
  bp_selected_[i] = std::move(selected);
}

void PathLabeling::AssignBpFromColumns(const std::vector<BpMask>& cols) {
  const size_t n = num_vertices_;
  const size_t k = landmarks_.size();
  QBS_CHECK_EQ(cols.size(), n * k);
  QBS_CHECK_EQ(bp_.size(), n * k);
  // A BpMask is 16 bytes, so a 32x32 tile spans 16KB per side.
  constexpr size_t kTile = 32;
  for (size_t v0 = 0; v0 < n; v0 += kTile) {
    const size_t v1 = std::min(v0 + kTile, n);
    for (size_t i0 = 0; i0 < k; i0 += kTile) {
      const size_t i1 = std::min(i0 + kTile, k);
      for (size_t v = v0; v < v1; ++v) {
        for (size_t i = i0; i < i1; ++i) {
          bp_[v * k + i] = cols[i * n + v];
        }
      }
    }
  }
}

LabelingScheme BuildLabelingScheme(const Graph& g,
                                   const std::vector<VertexId>& landmarks,
                                   const LabelingBuildOptions& options) {
  LabelingScheme scheme;
  scheme.labeling = PathLabeling(g.NumVertices(), landmarks);
  const auto k = static_cast<uint32_t>(landmarks.size());
  scheme.meta = MetaGraph(k);
  if (k == 0) {
    scheme.meta.Finalize();
    return scheme;
  }

  // One BFS per landmark. Each BFS streams labels into its own
  // landmark-major column and meta-edge lists are per-landmark, so workers
  // never contend; a single blocked transpose then fills the vertex-major
  // query matrix. When bit-parallel masks are on, the finished BFS (depth
  // array + settle order) feeds the mask sweeps before the worker moves on,
  // into a mask column of the same landmark-major layout.
  const size_t workers =
      std::min<size_t>(EffectiveThreads(options.num_threads), k);
  std::vector<BfsScratch> scratch(workers);
  std::vector<std::vector<MetaEdge>> local_meta(k);
  std::vector<DistT> cols(static_cast<size_t>(g.NumVertices()) * k, kInfDist);
  std::vector<BpMask> bp_cols;
  if (options.bit_parallel) {
    scheme.labeling.EnableBpMasks();
    bp_cols.assign(static_cast<size_t>(g.NumVertices()) * k, BpMask{});
    for (LandmarkIndex i = 0; i < k; ++i) {
      scheme.labeling.SetBpSelected(
          i, SelectBpNeighbors(g, scheme.labeling, landmarks[i]));
    }
  }

  ParallelFor(k, workers, [&](size_t i, size_t worker) {
    LabelFromLandmark(g, scheme.labeling, static_cast<LandmarkIndex>(i),
                      cols.data() + i * static_cast<size_t>(g.NumVertices()),
                      &local_meta[i], &scratch[worker]);
    if (options.bit_parallel) {
      ComputeBpColumn(
          g, scheme.labeling.BpSelected(static_cast<LandmarkIndex>(i)),
          scratch[worker].depth, scratch[worker].order,
          bp_cols.data() + i * static_cast<size_t>(g.NumVertices()));
    }
  });
  scheme.labeling.AssignFromColumns(cols);
  if (options.bit_parallel) scheme.labeling.AssignBpFromColumns(bp_cols);

  // Each meta-edge is discovered from both endpoints (the existence
  // condition is symmetric); keep one copy and let AddEdge cross-check the
  // duplicate's weight.
  for (const auto& edges : local_meta) {
    for (const MetaEdge& e : edges) {
      scheme.meta.AddEdge(e.a, e.b, e.weight);
    }
  }
  scheme.meta.Finalize();
  return scheme;
}

}  // namespace qbs

// Incremental maintenance of the QbS labelling scheme under edge edits.
//
// The labelling is uniquely determined by (G, R) (Lemma 5.2), so dynamism
// reduces to: given a batch of net edge changes, bring every landmark
// column — labels, bit-parallel masks, meta-edges — to exactly what a
// from-scratch build on the new graph would produce. The machinery here
// does that column by column:
//
//   1. Detection. Each column keeps its exact BFS depth array
//      (LabelColumnState, captured at EnableUpdates / rebuild time). An
//      edited edge (u, v) can only affect column r if the stored depths
//      (and, for same-level edits, the stored masks) say so:
//        insert — both endpoints unreachable from r: nothing changes; one
//          unreachable or |d(u)-d(v)| >= 2: distances shrink; |diff| == 1:
//          a new parent edge (QL / mask flow changes); d(u) == d(v):
//          distances hold, only the S^0 masks can gain a witness —
//          affected iff (S⁻(u) & ~(S⁻(v)|S⁰(v))) | (sym.) != 0.
//        delete — |d(u)-d(v)| == 1: a parent edge died, distances can
//          grow — the column is dirty and needs a full rebuild; d(u) ==
//          d(v): distances hold, affected iff a realized S^0 witness dies:
//          (S⁻(u) & S⁰(v)) | (S⁻(v) & S⁰(u)) != 0.
//   2. Repair (insert-affected, no dirty deletes): a decrease-only
//      multi-source partial BFS on the new graph, seeded from the inserted
//      edges' shallower endpoints, updates the depth array to exact new
//      distances; RederiveLabelColumn then recomputes QL, labels,
//      meta-edges, and masks from those depths — bit-identical to a fresh
//      BFS, because every derived quantity is a function of exact depths.
//   3. Consolidation (delete-dirty columns): a full column rebuild
//      (RebuildLabelColumn). With UpdateOptions::consolidate = false the
//      rebuild is deferred SVS-style — the column serves stale answers
//      until Consolidate() runs — so deletion-heavy churn can amortize
//      rebuilds. QbsIndex::ApplyUpdates defaults to eager consolidation
//      (the index is exact when it returns).
//
// The meta-graph is rebuilt from the per-column meta lists each batch
// (|R|^2 edges — negligible); with deferred columns in play, conflicting
// stale weights resolve to the minimum, restored exactly on consolidation.
//
// Concurrency: nothing here takes a lock, by design. ApplyUpdates mutates
// the labelling in place and is serialized by the caller — the server
// holds its index_mu_ WriterLock (rank kIndex) across the whole batch,
// and the parallel per-column repair it schedules on the thread pool is
// legal under that lock precisely because the pool ranks sit above
// kIndex. See docs/ARCHITECTURE.md §12 (Concurrency contracts).

#ifndef QBS_CORE_UPDATABLE_INDEX_H_
#define QBS_CORE_UPDATABLE_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/labeling.h"
#include "core/meta_graph.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"

namespace qbs {

struct UpdateOptions {
  /// Rebuild delete-dirty columns in this batch (true, the default: the
  /// index is exact when ApplyUpdates returns) or defer them SVS-style
  /// until Consolidate() (false: dirty columns serve stale answers).
  bool consolidate = true;
  /// Column repair/rebuild threads: 0 = all hardware threads.
  size_t num_threads = 0;
};

struct UpdateStats {
  /// Net edge changes actually applied to the graph.
  uint64_t applied_inserts = 0;
  uint64_t applied_deletes = 0;
  /// Script entries that changed nothing (insert of an existing edge,
  /// delete of an absent one) and malformed entries (self-loop,
  /// out-of-range endpoint), skipped.
  uint64_t noop_updates = 0;
  uint64_t invalid_updates = 0;
  /// Columns repaired by partial BFS + rederivation (insert-affected).
  uint32_t repaired_columns = 0;
  /// Columns rebuilt from scratch (delete-dirty, eager consolidation).
  uint32_t rebuilt_columns = 0;
  /// Columns left dirty for a later Consolidate() (consolidate = false).
  uint32_t deferred_columns = 0;

  uint64_t AppliedTotal() const { return applied_inserts + applied_deletes; }
};

/// Per-column maintenance state: the exact BFS depths + meta-edges of every
/// landmark column (LabelColumnState) and the dirty flags of columns whose
/// rebuild was deferred. Owned by QbsIndex once EnableUpdates() has run.
struct UpdatableState {
  std::vector<LabelColumnState> columns;
  /// dirty[i] != 0: column i's labels/masks/meta/depths are stale (a
  /// deferred delete); every detection short-circuits to "rebuild".
  std::vector<uint8_t> dirty;

  bool HasDirty() const {
    for (uint8_t d : dirty) {
      if (d != 0) return true;
    }
    return false;
  }
};

/// Initializes `state` for (g, labeling): runs one labelling BFS per column
/// to capture exact depths and meta-edges, rewriting the labels/masks
/// bit-identically in passing (so it is safe after LoadFromFile too).
/// Costs about one labelling build.
void InitUpdatableState(const Graph& g, PathLabeling& labeling,
                        UpdatableState* state, size_t num_threads);

/// Applies an already-computed net change set to the labelling. `new_graph`
/// must be the post-edit graph (ApplyNetChanges); detection reads the OLD
/// depths/masks still held in `state`/`labeling`. Repairs or rebuilds every
/// affected column in parallel, rewrites the meta-graph, and updates
/// `state` in place. Returns the column-level stats (the applied/noop
/// script counters are the caller's, from ComputeNetChanges).
UpdateStats ApplyNetToLabeling(const Graph& new_graph, const NetChanges& net,
                               PathLabeling* labeling, MetaGraph* meta,
                               UpdatableState* state,
                               const UpdateOptions& options);

/// Rebuilds every dirty column against the current graph and rewrites the
/// meta-graph. Returns the number of columns rebuilt (0 = nothing dirty).
uint32_t ConsolidateDirtyColumns(const Graph& g, PathLabeling* labeling,
                                 MetaGraph* meta, UpdatableState* state,
                                 size_t num_threads);

}  // namespace qbs

#endif  // QBS_CORE_UPDATABLE_INDEX_H_

// SIMD label-row scan kernels with runtime dispatch.
//
// The per-query label scan — ComputeLabelBound's fused row merge,
// ComputeAnchorCandidatesInto's present-entry extraction, and the guided
// search's per-frontier-vertex lower-bound check — is a dense O(|R|) loop
// executed on every query. This header vectorizes all three with AVX2
// (min-plus over du+dv for the upper bound, max-abs-diff over |du-dv| for
// the lower bound, movemask for presence and refine-gate bits), plus a
// batched variant that streams up to kScanBatch query pairs through one
// interleaved row sweep for cache reuse.
//
// Bit-identity contract: every kernel produces byte-identical results to
// the scalar reference on every input (tests/simd_scan_test.cc asserts
// this over generated row families). The design that makes it provable:
//
//   * Label rows are padded to kLabelRowLaneAlign lanes with kInfDist
//     (core/labeling.h), so kernels scan full 16-lane blocks — an absent
//     lane contributes base 0 to the max, 0xFFFF to the min, and no
//     candidate/gate bit.
//   * uint16 saturating adds are exact up to the sentinel: the saturated
//     row minimum equals min(true minimum, 0xFFFF), so the one case where
//     they can differ (saturated min == 0xFFFF with shared lanes present)
//     falls back to an exact 32-bit recompute — RowAgg::sum_min is always
//     the exact value.
//   * Everything order-dependent or mask-touching (the -2/-1 upper
//     refinement, the +1 lower lift) lives in one shared scalar post-pass
//     (FinishRowBound) driven by a per-lane candidate bitmask. Kernels
//     may OVER-approximate the refine gate (the saturating compare admits
//     lanes whose true 32-bit sum exceeds the limit); the post-pass
//     re-gates every candidate lane with the exact sum, so the final
//     LabelBound is identical no matter which kernel filled the bits.
//
// Dispatch: resolved once per process from CPUID (AVX2 support) and the
// QBS_FORCE_SCALAR_SCAN environment variable (non-empty, not "0" =
// forced scalar); QbsOptions::force_scalar_scan flips the same
// process-wide switch programmatically. The scalar kernels are always
// compiled; the AVX2 kernels are compiled on x86-64 via per-function
// target attributes and selected only when the CPU reports AVX2.

#ifndef QBS_CORE_LABEL_SCAN_H_
#define QBS_CORE_LABEL_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/labeling.h"
#include "core/sketch.h"
#include "core/types.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QBS_HAVE_AVX2_KERNELS 1
#else
#define QBS_HAVE_AVX2_KERNELS 0
#endif

namespace qbs {

/// Which label-scan kernel family a ScanOps table implements.
enum class ScanKernel : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

/// Pairs processed per batched row sweep (the "stream 4-8 queries through
/// one scan" unit). Also the server's degraded-path drain cap.
inline constexpr size_t kScanBatch = 8;

/// Order-independent aggregates of one fused two-row scan, prior to the
/// mask post-pass. sum_min is EXACT (32-bit; kernels recompute on
/// saturation), so FinishRowBound never needs the rows for the unrefined
/// upper bound.
struct RowAgg {
  uint32_t base_max = 0;            ///< max |du - dv| over shared lanes
  uint32_t sum_min = kUnreachable;  ///< min du + dv over shared lanes
  bool any = false;                 ///< any lane present in both rows
};

/// One pair's slice of a batched row-bound sweep.
struct RowBoundTask {
  const DistT* ru = nullptr;
  const DistT* rv = nullptr;
  RowAgg agg;
  uint64_t* gate_words = nullptr;  ///< null = skip gate bits (no masks)
};

/// The kernel table. `lanes` is always the padded row stride (a multiple
/// of kLabelRowLaneAlign; 0 is legal and a no-op). `gate_limit` is the
/// 16-bit clamp of max_refinable; kernels set bit i of gate_words for
/// every shared lane whose SATURATED sum is <= gate_limit (a superset of
/// the exactly-gated lanes; callers re-check with exact sums).
/// gate_words spans lanes/64 (rounded up) zeroed words when non-null.
struct ScanOps {
  ScanKernel kernel;
  const char* name;
  /// Fused two-row aggregate + refine-gate bits.
  void (*row_bound)(const DistT* ru, const DistT* rv, uint32_t lanes,
                    uint16_t gate_limit, RowAgg* agg, uint64_t* gate_words);
  /// Batched row_bound over tasks[0..n): identical per-task results, one
  /// interleaved sweep so shared row blocks stay cache-hot.
  void (*row_bound_batch)(RowBoundTask* tasks, size_t n, uint32_t lanes,
                          uint16_t gate_limit);
  /// Appends SketchAnchor{i, row[i]} for every present lane, ascending i.
  void (*row_candidates)(const DistT* row, uint32_t lanes,
                         std::vector<SketchAnchor>* out);
  /// True iff some shared lane has |rx - ro| > threshold, or == threshold
  /// with a BpMaskLowerLift witness (mx/mo are the unpadded mask rows;
  /// only consulted for lanes exactly at the threshold). threshold must
  /// be <= 0xFFFE (the maximum representable base).
  bool (*lower_exceeds)(const DistT* rx, const DistT* ro, const BpMask* mx,
                        const BpMask* mo, uint32_t lanes, uint16_t threshold);
};

/// The scalar reference table (always available).
const ScanOps& ScalarScanOps();

/// The table for a specific kernel. Requesting kAvx2 where the kernels
/// are not compiled returns the scalar table.
const ScanOps& ScanOpsFor(ScanKernel kernel);

/// Every kernel table compiled into this binary that the RUNNING CPU can
/// execute (the differential harness iterates this).
std::vector<ScanKernel> SupportedScanKernels();

/// True iff the running CPU reports AVX2.
bool CpuHasAvx2();

/// Pure dispatch rule, exposed for the dispatch unit test: scalar when
/// the AVX2 kernels are not compiled, when the CPU lacks AVX2, or when
/// the env value forces it (non-null, non-empty, not "0").
ScanKernel ResolveScanKernel(bool cpu_has_avx2, const char* force_scalar_env);

/// The process-wide active table: resolved on first use from CPUID and
/// getenv("QBS_FORCE_SCALAR_SCAN"), overridable via SetActiveScanKernel.
const ScanOps& ActiveScanOps();
ScanKernel ActiveScanKernel();

/// Overrides the active kernel process-wide (QbsOptions::force_scalar_scan
/// and tests). Requesting kAvx2 without compiled/supported AVX2 kernels
/// falls back to scalar.
void SetActiveScanKernel(ScanKernel kernel);

/// --- Row-level entry points (kernel-dispatched). ---

/// ComputeLabelBound's row path for a NON-landmark pair u, v (their label
/// rows are scanned directly; landmark endpoints have no stored rows —
/// core/sketch.cc handles those via the virtual-entry merge). Bit-identical
/// to ComputeLabelBoundFromCandidates over the same rows.
LabelBound ComputeLabelBoundRows(const PathLabeling& labeling, VertexId u,
                                 VertexId v, uint32_t refine_cutoff,
                                 const ScanOps& ops);
LabelBound ComputeLabelBoundRows(const PathLabeling& labeling, VertexId u,
                                 VertexId v, uint32_t refine_cutoff);

/// Batched ComputeLabelBoundRows: bounds[i] for the NON-landmark pairs
/// (us[i], vs[i]), one interleaved sweep per kScanBatch group.
void ComputeLabelBoundRowsBatch(const PathLabeling& labeling,
                                const VertexId* us, const VertexId* vs,
                                size_t n, uint32_t refine_cutoff,
                                LabelBound* bounds, const ScanOps& ops);

/// The guided search's per-frontier-vertex prune check (see
/// GuidedSearcher::LabelLowerBoundExceeds): true iff the label rows of x
/// and `other` certify d_G(x, other) > threshold. Requires
/// labeling.has_bp_masks().
bool RowLowerBoundExceeds(const PathLabeling& labeling, VertexId x,
                          VertexId other, uint32_t threshold,
                          const ScanOps& ops);

/// The shared scalar post-pass, exposed for the differential harness:
/// folds the mask refinement (-2/-1 on the upper bound) and the lower
/// lift (+1 where a gated lane at base_max has a BpMaskLowerLift witness)
/// into the kernel aggregates. `gate_words` may over-approximate the
/// refine gate; every candidate lane is re-gated with its exact sum.
LabelBound FinishRowBound(const RowAgg& agg, const uint64_t* gate_words,
                          uint32_t lanes, const DistT* ru, const DistT* rv,
                          const BpMask* mu, const BpMask* mv,
                          uint32_t max_refinable);

}  // namespace qbs

#endif  // QBS_CORE_LABEL_SCAN_H_

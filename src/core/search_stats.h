// Counters describing the work a single query performed. These back the
// §6.5 ablation (edges traversed by QbS vs. Bi-BFS) and the Fig. 8 pair
// coverage analysis.

#ifndef QBS_CORE_SEARCH_STATS_H_
#define QBS_CORE_SEARCH_STATS_H_

#include <cstdint>

#include "graph/bfs.h"

namespace qbs {

// Which of the three cases of Eq. 5 a query fell into, i.e. how landmarks
// covered the pair (Fig. 8's categories).
enum class PairCoverage {
  // All shortest paths pass through >= 1 landmark (d_G⁻ > d⊤).
  kAllThroughLandmarks,
  // Some but not all shortest paths pass through a landmark (d_G⁻ == d⊤).
  kSomeThroughLandmarks,
  // No shortest path passes through a landmark (d_G⁻ < d⊤).
  kNoneThroughLandmarks,
  // u and v are disconnected.
  kDisconnected,
};

struct SearchStats {
  // Edge scans during the sketch-guided bi-directional search on G⁻.
  uint64_t edges_scanned_search = 0;
  // Adjacency entries skipped because the endpoint is a landmark (the
  // edges sparsification removed).
  uint64_t landmark_edges_skipped = 0;
  // Edge scans during the reverse search (G⁻ paths).
  uint64_t edges_scanned_reverse = 0;
  // Edge scans during the recover search (G^L paths), excluding Δ-cache
  // hits.
  uint64_t edges_scanned_recover = 0;
  // Segments served from the precomputed Δ cache.
  uint64_t delta_cache_hits = 0;
  // Adjacency entries scanned by the label-guided d <= 2 direct resolution
  // (edge probe + common-neighbour intersection). These scans replace the
  // sketch + search machinery entirely for close pairs.
  uint64_t edges_scanned_direct = 0;
  // Queries resolved by the bit-parallel label fast path: distance and the
  // full SPG produced with zero search/reverse/recover edge scans.
  uint64_t label_short_circuits = 0;
  // Frontier vertices the mask-lifted label lower bound pruned from the
  // sketch-guided search: their depth plus a certified lower bound to the
  // far endpoint already exceeded the search budget, so their adjacency
  // was never scanned.
  uint64_t lb_prunes = 0;

  uint32_t d_top = kUnreachable;         // sketch upper bound d⊤
  uint32_t d_sparsified = kUnreachable;  // d_G⁻(u, v) when determined
  // Bit-parallel label upper bound for this query (core/sketch.h
  // ComputeLabelBound); kUnreachable when masks are disabled or no landmark
  // is shared. Never smaller than the true distance.
  uint32_t d_label_upper = kUnreachable;
  PairCoverage coverage = PairCoverage::kDisconnected;

  uint64_t TotalEdgesScanned() const {
    return edges_scanned_search + edges_scanned_reverse +
           edges_scanned_recover + edges_scanned_direct;
  }

  void Accumulate(const SearchStats& o) {
    edges_scanned_search += o.edges_scanned_search;
    landmark_edges_skipped += o.landmark_edges_skipped;
    edges_scanned_reverse += o.edges_scanned_reverse;
    edges_scanned_recover += o.edges_scanned_recover;
    delta_cache_hits += o.delta_cache_hits;
    edges_scanned_direct += o.edges_scanned_direct;
    label_short_circuits += o.label_short_circuits;
    lb_prunes += o.lb_prunes;
  }
};

}  // namespace qbs

#endif  // QBS_CORE_SEARCH_STATS_H_

#include "core/sketch.h"

#include <algorithm>

#include "util/check.h"

namespace qbs {

void ComputeAnchorCandidatesInto(const PathLabeling& labeling, VertexId t,
                                 std::vector<SketchAnchor>* out) {
  out->clear();
  const int32_t rank = labeling.LandmarkRank(t);
  if (rank >= 0) {
    out->push_back(SketchAnchor{static_cast<LandmarkIndex>(rank), 0});
    return;
  }
  const uint32_t k = labeling.num_landmarks();
  for (LandmarkIndex i = 0; i < k; ++i) {
    const DistT d = labeling.Get(t, i);
    if (d != kInfDist) out->push_back(SketchAnchor{i, d});
  }
}

std::vector<SketchAnchor> AnchorCandidates(const PathLabeling& labeling,
                                           VertexId t) {
  std::vector<SketchAnchor> out;
  ComputeAnchorCandidatesInto(labeling, t, &out);
  return out;
}

Sketch ComputeSketch(const PathLabeling& labeling, const MetaGraph& meta,
                     VertexId u, VertexId v) {
  Sketch sketch;
  SketchScratch scratch;
  ComputeSketchInto(labeling, meta, u, v, &sketch, &scratch);
  return sketch;
}

void ComputeSketchInto(const PathLabeling& labeling, const MetaGraph& meta,
                       VertexId u, VertexId v, Sketch* sketch,
                       SketchScratch* scratch, bool with_meta_edges,
                       bool reuse_candidates) {
  QBS_DCHECK(meta.finalized());
  sketch->d_top = kUnreachable;
  sketch->u_anchors.clear();
  sketch->v_anchors.clear();
  sketch->meta_edges.clear();
  sketch->d_star_u = 0;
  sketch->d_star_v = 0;

  if (!reuse_candidates) {
    ComputeAnchorCandidatesInto(labeling, u, &scratch->cu);
    ComputeAnchorCandidatesInto(labeling, v, &scratch->cv);
  }

  // Pass 1: d⊤ = min over candidate pairs (Eq. 3). Pairs with r == r'
  // (single common landmark) are included: d_M(r, r) = 0.
  for (const SketchAnchor& a : scratch->cu) {
    for (const SketchAnchor& b : scratch->cv) {
      const uint32_t mid = meta.Distance(a.landmark, b.landmark);
      if (mid == kUnreachable) continue;
      const uint32_t total = a.delta + mid + b.delta;
      sketch->d_top = std::min(sketch->d_top, total);
    }
  }
  if (sketch->d_top == kUnreachable) return;

  // Pass 2: anchors and minimizing (r, r') pairs.
  scratch->min_pairs.clear();
  for (const SketchAnchor& a : scratch->cu) {
    for (const SketchAnchor& b : scratch->cv) {
      const uint32_t mid = meta.Distance(a.landmark, b.landmark);
      if (mid == kUnreachable) continue;
      if (a.delta + mid + b.delta != sketch->d_top) continue;
      sketch->u_anchors.push_back(a);
      sketch->v_anchors.push_back(b);
      scratch->min_pairs.emplace_back(a.landmark, b.landmark);
    }
  }
  auto dedupe = [](std::vector<SketchAnchor>& anchors) {
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
  };
  dedupe(sketch->u_anchors);
  dedupe(sketch->v_anchors);

  // Pass 3: the meta-edge sweep, skippable for callers that only need it
  // on the recover path.
  if (with_meta_edges) ComputeSketchMetaEdges(meta, sketch, scratch);

  // Eq. 4: d*_t = max σ_S(r, t) − 1, clamped at 0 (a landmark endpoint has
  // the single anchor σ = 0 and needs no sparsified-graph search).
  for (const SketchAnchor& a : sketch->u_anchors) {
    if (a.delta > 0) {
      sketch->d_star_u = std::max<uint32_t>(sketch->d_star_u, a.delta - 1u);
    }
  }
  for (const SketchAnchor& b : sketch->v_anchors) {
    if (b.delta > 0) {
      sketch->d_star_v = std::max<uint32_t>(sketch->d_star_v, b.delta - 1u);
    }
  }
}

LabelBound ComputeLabelBoundFromCandidates(
    const PathLabeling& labeling, const std::vector<SketchAnchor>& cu,
    const std::vector<SketchAnchor>& cv, VertexId u, VertexId v,
    uint32_t refine_cutoff) {
  QBS_DCHECK(u != v);
  LabelBound bound;
  const bool bp = labeling.has_bp_masks();
  // Refinement subtracts at most 2, so candidates above this line cannot
  // land at or below refine_cutoff; saturate so the default refines all.
  const uint32_t max_refinable = refine_cutoff > kUnreachable - 2
                                     ? kUnreachable
                                     : refine_cutoff + 2;
  // Sorted merge on landmark index (both rows ascend by construction).
  size_t iu = 0;
  size_t iv = 0;
  while (iu < cu.size() && iv < cv.size()) {
    if (cu[iu].landmark < cv[iv].landmark) {
      ++iu;
      continue;
    }
    if (cv[iv].landmark < cu[iu].landmark) {
      ++iv;
      continue;
    }
    const LandmarkIndex i = cu[iu].landmark;
    const DistT du = cu[iu].delta;
    const DistT dv = cv[iv].delta;
    ++iu;
    ++iv;
    const uint32_t base = du > dv ? du - dv : dv - du;
    bound.lower = std::max<uint32_t>(bound.lower, base);
    uint32_t cand = static_cast<uint32_t>(du) + dv;
    if (bp && cand <= max_refinable) {
      const BpMask mu = labeling.GetBpMask(u, i);
      const BpMask mv = labeling.GetBpMask(v, i);
      if ((mu.s_minus & mv.s_minus) != 0) {
        cand -= 2;
      } else if ((mu.s_minus & mv.s_zero) != 0 ||
                 (mu.s_zero & mv.s_minus) != 0) {
        cand -= 1;
      }
      if (base >= bound.lower && BpMaskLowerLift(mu, mv, du, dv)) {
        bound.lower = base + 1;
      }
    }
    bound.upper = std::min(bound.upper, cand);
  }
  return bound;
}

LabelBound ComputeLabelBound(const PathLabeling& labeling,
                             const MetaGraph& meta, VertexId u, VertexId v,
                             uint32_t refine_cutoff) {
  QBS_DCHECK(u != v);
  const int32_t rank_u = labeling.LandmarkRank(u);
  const int32_t rank_v = labeling.LandmarkRank(v);
  if (rank_u >= 0 && rank_v >= 0) {
    // Landmark pair: d_M is the exact distance (Corollary 4.6).
    LabelBound bound;
    const uint32_t d = meta.Distance(static_cast<LandmarkIndex>(rank_u),
                                     static_cast<LandmarkIndex>(rank_v));
    bound.upper = d;
    bound.lower = d == kUnreachable ? 0 : d;
    return bound;
  }
  // A landmark endpoint contributes its virtual (rank, 0) entry, so the
  // merge degenerates to the other side's label for that landmark — the
  // exact distance when present.
  return ComputeLabelBoundFromCandidates(
      labeling, AnchorCandidates(labeling, u), AnchorCandidates(labeling, v),
      u, v, refine_cutoff);
}

void ComputeSketchMetaEdges(const MetaGraph& meta, Sketch* sketch,
                            SketchScratch* scratch) {
  // One sweep over the meta-edges, testing membership in any minimizing
  // pair's shortest meta-path graph.
  sketch->meta_edges.clear();
  const auto& edges = meta.Edges();
  scratch->meta_edge_used.assign(edges.size(), 0);
  for (size_t e = 0; e < edges.size(); ++e) {
    for (const auto& [r, r2] : scratch->min_pairs) {
      if (meta.EdgeOnShortestPath(edges[e], r, r2)) {
        scratch->meta_edge_used[e] = 1;
        sketch->meta_edges.push_back(edges[e]);
        break;
      }
    }
  }
}

}  // namespace qbs

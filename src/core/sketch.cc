#include "core/sketch.h"

#include <algorithm>

#include "core/label_scan.h"
#include "util/check.h"

namespace qbs {

void ComputeAnchorCandidatesInto(const PathLabeling& labeling, VertexId t,
                                 std::vector<SketchAnchor>* out) {
  out->clear();
  const int32_t rank = labeling.LandmarkRank(t);
  if (rank >= 0) {
    out->push_back(SketchAnchor{static_cast<LandmarkIndex>(rank), 0});
    return;
  }
  // Kernel-dispatched present-lane extraction; padding lanes are kInfDist
  // and contribute nothing, so scanning the full stride is equivalent to
  // the per-landmark loop.
  ActiveScanOps().row_candidates(labeling.Row(t), labeling.row_stride(), out);
}

std::vector<SketchAnchor> AnchorCandidates(const PathLabeling& labeling,
                                           VertexId t) {
  std::vector<SketchAnchor> out;
  ComputeAnchorCandidatesInto(labeling, t, &out);
  return out;
}

Sketch ComputeSketch(const PathLabeling& labeling, const MetaGraph& meta,
                     VertexId u, VertexId v) {
  Sketch sketch;
  SketchScratch scratch;
  ComputeSketchInto(labeling, meta, u, v, &sketch, &scratch);
  return sketch;
}

void ComputeSketchInto(const PathLabeling& labeling, const MetaGraph& meta,
                       VertexId u, VertexId v, Sketch* sketch,
                       SketchScratch* scratch, bool with_meta_edges,
                       bool reuse_candidates) {
  QBS_DCHECK(meta.finalized());
  sketch->d_top = kUnreachable;
  sketch->u_anchors.clear();
  sketch->v_anchors.clear();
  sketch->meta_edges.clear();
  sketch->d_star_u = 0;
  sketch->d_star_v = 0;

  if (!reuse_candidates) {
    ComputeAnchorCandidatesInto(labeling, u, &scratch->cu);
    ComputeAnchorCandidatesInto(labeling, v, &scratch->cv);
  }

  // Pass 1: d⊤ = min over candidate pairs (Eq. 3). Pairs with r == r'
  // (single common landmark) are included: d_M(r, r) = 0.
  for (const SketchAnchor& a : scratch->cu) {
    for (const SketchAnchor& b : scratch->cv) {
      const uint32_t mid = meta.Distance(a.landmark, b.landmark);
      if (mid == kUnreachable) continue;
      const uint32_t total = a.delta + mid + b.delta;
      sketch->d_top = std::min(sketch->d_top, total);
    }
  }
  if (sketch->d_top == kUnreachable) return;

  // Pass 2: anchors and minimizing (r, r') pairs.
  scratch->min_pairs.clear();
  for (const SketchAnchor& a : scratch->cu) {
    for (const SketchAnchor& b : scratch->cv) {
      const uint32_t mid = meta.Distance(a.landmark, b.landmark);
      if (mid == kUnreachable) continue;
      if (a.delta + mid + b.delta != sketch->d_top) continue;
      sketch->u_anchors.push_back(a);
      sketch->v_anchors.push_back(b);
      scratch->min_pairs.emplace_back(a.landmark, b.landmark);
    }
  }
  auto dedupe = [](std::vector<SketchAnchor>& anchors) {
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
  };
  dedupe(sketch->u_anchors);
  dedupe(sketch->v_anchors);

  // Pass 3: the meta-edge sweep, skippable for callers that only need it
  // on the recover path.
  if (with_meta_edges) ComputeSketchMetaEdges(meta, sketch, scratch);

  // Eq. 4: d*_t = max σ_S(r, t) − 1, clamped at 0 (a landmark endpoint has
  // the single anchor σ = 0 and needs no sparsified-graph search).
  for (const SketchAnchor& a : sketch->u_anchors) {
    if (a.delta > 0) {
      sketch->d_star_u = std::max<uint32_t>(sketch->d_star_u, a.delta - 1u);
    }
  }
  for (const SketchAnchor& b : sketch->v_anchors) {
    if (b.delta > 0) {
      sketch->d_star_v = std::max<uint32_t>(sketch->d_star_v, b.delta - 1u);
    }
  }
}

LabelBound ComputeLabelBoundFromCandidates(
    const PathLabeling& labeling, const std::vector<SketchAnchor>& cu,
    const std::vector<SketchAnchor>& cv, VertexId u, VertexId v,
    uint32_t refine_cutoff) {
  QBS_DCHECK(u != v);
  LabelBound bound;
  const bool bp = labeling.has_bp_masks();
  // Refinement subtracts at most 2, so candidates above this line cannot
  // land at or below refine_cutoff; saturate so the default refines all.
  const uint32_t max_refinable = refine_cutoff > kUnreachable - 2
                                     ? kUnreachable
                                     : refine_cutoff + 2;
  // Sorted merge on landmark index (both rows ascend by construction).
  size_t iu = 0;
  size_t iv = 0;
  while (iu < cu.size() && iv < cv.size()) {
    if (cu[iu].landmark < cv[iv].landmark) {
      ++iu;
      continue;
    }
    if (cv[iv].landmark < cu[iu].landmark) {
      ++iv;
      continue;
    }
    const LandmarkIndex i = cu[iu].landmark;
    const DistT du = cu[iu].delta;
    const DistT dv = cv[iv].delta;
    ++iu;
    ++iv;
    const uint32_t base = du > dv ? du - dv : dv - du;
    bound.lower = std::max<uint32_t>(bound.lower, base);
    uint32_t cand = static_cast<uint32_t>(du) + dv;
    if (bp && cand <= max_refinable) {
      const BpMask mu = labeling.GetBpMask(u, i);
      const BpMask mv = labeling.GetBpMask(v, i);
      if ((mu.s_minus & mv.s_minus) != 0) {
        cand -= 2;
      } else if ((mu.s_minus & mv.s_zero) != 0 ||
                 (mu.s_zero & mv.s_minus) != 0) {
        cand -= 1;
      }
      if (base >= bound.lower && BpMaskLowerLift(mu, mv, du, dv)) {
        bound.lower = base + 1;
      }
    }
    bound.upper = std::min(bound.upper, cand);
  }
  return bound;
}

namespace {

// A (landmark, non-landmark) pair shares at most the landmark's own lane:
// its virtual (rank, 0) entry against the other side's stored label. One
// scalar lane of the candidate merge — no vectors, no row scan.
LabelBound OneLandmarkLabelBound(const PathLabeling& labeling, VertexId u,
                                 VertexId v, int32_t rank_u, int32_t rank_v,
                                 uint32_t refine_cutoff) {
  LabelBound bound;
  const LandmarkIndex i =
      static_cast<LandmarkIndex>(rank_u >= 0 ? rank_u : rank_v);
  const DistT du = rank_u >= 0 ? DistT{0} : labeling.Get(u, i);
  const DistT dv = rank_v >= 0 ? DistT{0} : labeling.Get(v, i);
  if (du == kInfDist || dv == kInfDist) return bound;
  const uint32_t max_refinable = refine_cutoff > kUnreachable - 2
                                     ? kUnreachable
                                     : refine_cutoff + 2;
  const uint32_t base = du > dv ? du - dv : dv - du;
  bound.lower = base;
  uint32_t cand = static_cast<uint32_t>(du) + dv;
  if (labeling.has_bp_masks() && cand <= max_refinable) {
    const BpMask mu = labeling.GetBpMask(u, i);
    const BpMask mv = labeling.GetBpMask(v, i);
    if ((mu.s_minus & mv.s_minus) != 0) {
      cand -= 2;
    } else if ((mu.s_minus & mv.s_zero) != 0 || (mu.s_zero & mv.s_minus) != 0) {
      cand -= 1;
    }
    if (BpMaskLowerLift(mu, mv, du, dv)) bound.lower = base + 1;
  }
  bound.upper = std::min(bound.upper, cand);
  return bound;
}

}  // namespace

LabelBound ComputeLabelBound(const PathLabeling& labeling,
                             const MetaGraph& meta, VertexId u, VertexId v,
                             uint32_t refine_cutoff) {
  QBS_DCHECK(u != v);
  const int32_t rank_u = labeling.LandmarkRank(u);
  const int32_t rank_v = labeling.LandmarkRank(v);
  if (rank_u >= 0 && rank_v >= 0) {
    // Landmark pair: d_M is the exact distance (Corollary 4.6).
    LabelBound bound;
    const uint32_t d = meta.Distance(static_cast<LandmarkIndex>(rank_u),
                                     static_cast<LandmarkIndex>(rank_v));
    bound.upper = d;
    bound.lower = d == kUnreachable ? 0 : d;
    return bound;
  }
  if (rank_u >= 0 || rank_v >= 0) {
    return OneLandmarkLabelBound(labeling, u, v, rank_u, rank_v,
                                 refine_cutoff);
  }
  // Non-landmark pair: the kernel-dispatched fused row scan, bit-identical
  // to the candidate merge over the same rows.
  return ComputeLabelBoundRows(labeling, u, v, refine_cutoff);
}

void ComputeLabelBoundsBatch(const PathLabeling& labeling,
                             const MetaGraph& meta, const VertexId* us,
                             const VertexId* vs, size_t n,
                             uint32_t refine_cutoff, LabelBound* bounds) {
  // Split off pairs needing the scalar special cases; everything else
  // streams through the interleaved batch kernel.
  std::vector<size_t> row_idx;
  std::vector<VertexId> row_us;
  std::vector<VertexId> row_vs;
  row_idx.reserve(n);
  row_us.reserve(n);
  row_vs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (labeling.IsLandmark(us[i]) || labeling.IsLandmark(vs[i])) {
      bounds[i] = ComputeLabelBound(labeling, meta, us[i], vs[i],
                                    refine_cutoff);
    } else {
      row_idx.push_back(i);
      row_us.push_back(us[i]);
      row_vs.push_back(vs[i]);
    }
  }
  if (row_idx.empty()) return;
  std::vector<LabelBound> row_bounds(row_idx.size());
  ComputeLabelBoundRowsBatch(labeling, row_us.data(), row_vs.data(),
                             row_idx.size(), refine_cutoff, row_bounds.data(),
                             ActiveScanOps());
  for (size_t j = 0; j < row_idx.size(); ++j) {
    bounds[row_idx[j]] = row_bounds[j];
  }
}

void ComputeSketchMetaEdges(const MetaGraph& meta, Sketch* sketch,
                            SketchScratch* scratch) {
  // One sweep over the meta-edges, testing membership in any minimizing
  // pair's shortest meta-path graph.
  sketch->meta_edges.clear();
  const auto& edges = meta.Edges();
  scratch->meta_edge_used.assign(edges.size(), 0);
  for (size_t e = 0; e < edges.size(); ++e) {
    for (const auto& [r, r2] : scratch->min_pairs) {
      if (meta.EdgeOnShortestPath(edges[e], r, r2)) {
        scratch->meta_edge_used[e] = 1;
        sketch->meta_edges.push_back(edges[e]);
        break;
      }
    }
  }
}

}  // namespace qbs

#include "core/sketch.h"

#include <algorithm>

#include "util/check.h"

namespace qbs {

namespace {

void AnchorCandidatesInto(const PathLabeling& labeling, VertexId t,
                          std::vector<SketchAnchor>* out) {
  out->clear();
  const int32_t rank = labeling.LandmarkRank(t);
  if (rank >= 0) {
    out->push_back(SketchAnchor{static_cast<LandmarkIndex>(rank), 0});
    return;
  }
  const uint32_t k = labeling.num_landmarks();
  for (LandmarkIndex i = 0; i < k; ++i) {
    const DistT d = labeling.Get(t, i);
    if (d != kInfDist) out->push_back(SketchAnchor{i, d});
  }
}

}  // namespace

std::vector<SketchAnchor> AnchorCandidates(const PathLabeling& labeling,
                                           VertexId t) {
  std::vector<SketchAnchor> out;
  AnchorCandidatesInto(labeling, t, &out);
  return out;
}

Sketch ComputeSketch(const PathLabeling& labeling, const MetaGraph& meta,
                     VertexId u, VertexId v) {
  Sketch sketch;
  SketchScratch scratch;
  ComputeSketchInto(labeling, meta, u, v, &sketch, &scratch);
  return sketch;
}

void ComputeSketchInto(const PathLabeling& labeling, const MetaGraph& meta,
                       VertexId u, VertexId v, Sketch* sketch,
                       SketchScratch* scratch, bool with_meta_edges) {
  QBS_DCHECK(meta.finalized());
  sketch->d_top = kUnreachable;
  sketch->u_anchors.clear();
  sketch->v_anchors.clear();
  sketch->meta_edges.clear();
  sketch->d_star_u = 0;
  sketch->d_star_v = 0;

  AnchorCandidatesInto(labeling, u, &scratch->cu);
  AnchorCandidatesInto(labeling, v, &scratch->cv);

  // Pass 1: d⊤ = min over candidate pairs (Eq. 3). Pairs with r == r'
  // (single common landmark) are included: d_M(r, r) = 0.
  for (const SketchAnchor& a : scratch->cu) {
    for (const SketchAnchor& b : scratch->cv) {
      const uint32_t mid = meta.Distance(a.landmark, b.landmark);
      if (mid == kUnreachable) continue;
      const uint32_t total = a.delta + mid + b.delta;
      sketch->d_top = std::min(sketch->d_top, total);
    }
  }
  if (sketch->d_top == kUnreachable) return;

  // Pass 2: anchors and minimizing (r, r') pairs.
  scratch->min_pairs.clear();
  for (const SketchAnchor& a : scratch->cu) {
    for (const SketchAnchor& b : scratch->cv) {
      const uint32_t mid = meta.Distance(a.landmark, b.landmark);
      if (mid == kUnreachable) continue;
      if (a.delta + mid + b.delta != sketch->d_top) continue;
      sketch->u_anchors.push_back(a);
      sketch->v_anchors.push_back(b);
      scratch->min_pairs.emplace_back(a.landmark, b.landmark);
    }
  }
  auto dedupe = [](std::vector<SketchAnchor>& anchors) {
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
  };
  dedupe(sketch->u_anchors);
  dedupe(sketch->v_anchors);

  // Pass 3: the meta-edge sweep, skippable for callers that only need it
  // on the recover path.
  if (with_meta_edges) ComputeSketchMetaEdges(meta, sketch, scratch);

  // Eq. 4: d*_t = max σ_S(r, t) − 1, clamped at 0 (a landmark endpoint has
  // the single anchor σ = 0 and needs no sparsified-graph search).
  for (const SketchAnchor& a : sketch->u_anchors) {
    if (a.delta > 0) {
      sketch->d_star_u = std::max<uint32_t>(sketch->d_star_u, a.delta - 1u);
    }
  }
  for (const SketchAnchor& b : sketch->v_anchors) {
    if (b.delta > 0) {
      sketch->d_star_v = std::max<uint32_t>(sketch->d_star_v, b.delta - 1u);
    }
  }
}

void ComputeSketchMetaEdges(const MetaGraph& meta, Sketch* sketch,
                            SketchScratch* scratch) {
  // One sweep over the meta-edges, testing membership in any minimizing
  // pair's shortest meta-path graph.
  sketch->meta_edges.clear();
  const auto& edges = meta.Edges();
  scratch->meta_edge_used.assign(edges.size(), 0);
  for (size_t e = 0; e < edges.size(); ++e) {
    for (const auto& [r, r2] : scratch->min_pairs) {
      if (meta.EdgeOnShortestPath(edges[e], r, r2)) {
        scratch->meta_edge_used[e] = 1;
        sketch->meta_edges.push_back(edges[e]);
        break;
      }
    }
  }
}

}  // namespace qbs

// Landmark selection strategies (§6.1 "Landmarks").
//
// The paper selects the |R| highest-degree vertices: removing them sparsifies
// the graph the most, and distances through high-degree hubs estimate true
// distances well [Potamias et al. 2009]. A random strategy is provided as the
// natural ablation and as a hook for the future-work item on selection
// strategies (§8).

#ifndef QBS_CORE_LANDMARK_SELECTION_H_
#define QBS_CORE_LANDMARK_SELECTION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace qbs {

enum class LandmarkStrategy {
  kHighestDegree,         // paper default: top-|R| by degree
  kRandom,                // uniform random (ablation)
  kDegreeWeightedRandom,  // sample proportionally to degree
  kApproxCloseness,       // most-central by sampled-BFS closeness (§8 hook)
};

// Returns `count` distinct landmark vertex ids. kHighestDegree and
// kApproxCloseness are deterministic given (g, seed); kRandom and
// kDegreeWeightedRandom depend on `seed` only. `count` is clamped to the
// number of vertices.
std::vector<VertexId> SelectLandmarks(const Graph& g, uint32_t count,
                                      LandmarkStrategy strategy, uint64_t seed);

// Human-readable strategy name (for benchmark output).
const char* LandmarkStrategyName(LandmarkStrategy strategy);

}  // namespace qbs

#endif  // QBS_CORE_LANDMARK_SELECTION_H_

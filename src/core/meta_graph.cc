#include "core/meta_graph.h"

#include <algorithm>

#include "util/check.h"

namespace qbs {

MetaGraph::MetaGraph(uint32_t num_landmarks) : k_(num_landmarks) {
  weight_.assign(static_cast<size_t>(k_) * k_, kUnreachable);
  for (LandmarkIndex i = 0; i < k_; ++i) weight_[Idx(i, i)] = 0;
}

void MetaGraph::AddEdge(LandmarkIndex a, LandmarkIndex b, uint32_t weight) {
  QBS_CHECK(!finalized_);
  QBS_CHECK_LT(a, k_);
  QBS_CHECK_LT(b, k_);
  QBS_CHECK_NE(a, b);
  QBS_CHECK_GT(weight, 0u);
  if (a > b) std::swap(a, b);
  const uint32_t existing = weight_[Idx(a, b)];
  if (existing != kUnreachable) {
    // Rediscovery from the other endpoint's BFS must agree.
    QBS_CHECK_EQ(existing, weight);
    return;
  }
  weight_[Idx(a, b)] = weight;
  weight_[Idx(b, a)] = weight;
  edges_.push_back(MetaEdge{a, b, weight});
}

void MetaGraph::Finalize() {
  QBS_CHECK(!finalized_);
  std::sort(edges_.begin(), edges_.end());
  dist_ = weight_;
  // Floyd–Warshall; k_ <= ~100, so k^3 is negligible next to labelling.
  for (LandmarkIndex m = 0; m < k_; ++m) {
    for (LandmarkIndex i = 0; i < k_; ++i) {
      const uint32_t dim = dist_[Idx(i, m)];
      if (dim == kUnreachable) continue;
      for (LandmarkIndex j = 0; j < k_; ++j) {
        const uint32_t dmj = dist_[Idx(m, j)];
        if (dmj == kUnreachable) continue;
        const uint32_t via = dim + dmj;
        if (via < dist_[Idx(i, j)]) dist_[Idx(i, j)] = via;
      }
    }
  }
  finalized_ = true;
}

bool MetaGraph::EdgeOnShortestPath(const MetaEdge& e, LandmarkIndex s,
                                   LandmarkIndex t) const {
  QBS_DCHECK(finalized_);
  const uint32_t dst = Distance(s, t);
  if (dst == kUnreachable) return false;
  const uint32_t sa = Distance(s, e.a);
  const uint32_t sb = Distance(s, e.b);
  const uint32_t at = Distance(e.a, t);
  const uint32_t bt = Distance(e.b, t);
  if (sa != kUnreachable && bt != kUnreachable &&
      sa + e.weight + bt == dst) {
    return true;
  }
  if (sb != kUnreachable && at != kUnreachable &&
      sb + e.weight + at == dst) {
    return true;
  }
  return false;
}

uint64_t MetaGraph::SizeBytes() const {
  return edges_.size() * sizeof(MetaEdge) + weight_.size() * sizeof(uint32_t);
}

}  // namespace qbs

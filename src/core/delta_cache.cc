#include "core/delta_cache.h"

#include <unordered_set>

#include "util/check.h"
#include "util/thread_pool.h"

namespace qbs {

std::vector<Edge> RecoverMetaSegment(const Graph& g, const PathLabeling& l,
                                     const MetaEdge& e,
                                     uint64_t* edge_scans) {
  std::vector<Edge> edges;
  const VertexId a_vertex = l.LandmarkVertex(e.a);
  const VertexId b_vertex = l.LandmarkVertex(e.b);
  if (e.weight == 1) {
    edges.emplace_back(a_vertex, b_vertex);
    return edges;
  }

  // Internal vertices of landmark-free shortest a–b paths are exactly the
  // non-landmarks w with δ_{w,a} = level and δ_{w,b} = weight − level: the
  // two label entries certify landmark-free shortest half-paths that
  // concatenate to length d_G(a, b). Expand level by level starting from
  // a's neighbourhood; each valid level-(l+1) vertex is adjacent to a valid
  // level-l vertex (its predecessor on such a path), so the frontier walk
  // is complete.
  std::vector<VertexId> frontier;
  std::unordered_set<VertexId> seen;
  if (edge_scans != nullptr) *edge_scans += g.Degree(a_vertex);
  for (VertexId w : g.Neighbors(a_vertex)) {
    if (l.IsLandmark(w)) continue;
    if (l.Get(w, e.a) == 1 &&
        l.Get(w, e.b) == static_cast<DistT>(e.weight - 1)) {
      edges.emplace_back(a_vertex, w);
      if (seen.insert(w).second) frontier.push_back(w);
    }
  }
  for (uint32_t level = 1; level + 1 < e.weight; ++level) {
    std::vector<VertexId> next;
    for (VertexId x : frontier) {
      if (edge_scans != nullptr) *edge_scans += g.Degree(x);
      for (VertexId y : g.Neighbors(x)) {
        if (l.IsLandmark(y)) continue;
        if (l.Get(y, e.a) == static_cast<DistT>(level + 1) &&
            l.Get(y, e.b) == static_cast<DistT>(e.weight - level - 1)) {
          edges.emplace_back(x, y);
          if (seen.insert(y).second) next.push_back(y);
        }
      }
    }
    frontier = std::move(next);
  }
  // The final frontier holds the level (weight-1) vertices: each is
  // adjacent to b (its label distance to b is 1).
  for (VertexId x : frontier) {
    QBS_DCHECK(l.Get(x, e.b) == 1);
    edges.emplace_back(x, b_vertex);
  }
  return edges;
}

DeltaCache DeltaCache::Build(const Graph& g, const PathLabeling& labeling,
                             const MetaGraph& meta, size_t num_threads) {
  DeltaCache cache;
  const auto& edges = meta.Edges();
  std::vector<std::vector<Edge>> segments(edges.size());
  ParallelFor(edges.size(), num_threads, [&](size_t i, size_t) {
    segments[i] = RecoverMetaSegment(g, labeling, edges[i]);
  });
  for (size_t i = 0; i < edges.size(); ++i) {
    cache.segments_.emplace(Key(edges[i].a, edges[i].b),
                            std::move(segments[i]));
  }
  return cache;
}

uint64_t DeltaCache::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& [key, edges] : segments_) {
    (void)key;
    bytes += edges.size() * sizeof(Edge);
  }
  return bytes;
}

}  // namespace qbs

// Guided searching (Algorithm 4): answers SPG(u, v) by a sketch-guided
// bi-directional BFS on the sparsified graph G⁻ = G[V \ R], followed by a
// reverse search (paths avoiding landmarks, G⁻_uv) and/or a recover search
// (paths through landmarks, G^L_uv) according to Eq. 5:
//
//          ⎧ G^L_uv               if d_G⁻(u,v) > d⊤
//   G_uv = ⎨ G⁻_uv ∪ G^L_uv       if d_G⁻(u,v) = d⊤
//          ⎩ G⁻_uv                otherwise.
//
// The sparsified graph G⁻ is materialized as its own CSR at construction
// (as the paper does): searches never touch edges incident to landmarks.
// SearchStats::landmark_edges_skipped reports how many adjacency entries
// sparsification removed from the traversal, the §6.5(1) effect.

#ifndef QBS_CORE_GUIDED_SEARCH_H_
#define QBS_CORE_GUIDED_SEARCH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/delta_cache.h"
#include "core/labeling.h"
#include "core/meta_graph.h"
#include "core/search_stats.h"
#include "core/sketch.h"
#include "graph/graph.h"
#include "graph/spg.h"
#include "util/epoch_array.h"

namespace qbs {

// Executes guided searches against a fixed labelling scheme. Holds scratch
// state sized to the graph, so construct once and reuse; NOT thread-safe —
// use one searcher per thread.
class GuidedSearcher {
 public:
  // All referenced objects must outlive the searcher. `delta` may be null
  // (recover search then re-derives landmark segments from labels online).
  // This constructor materializes its own copy of the sparsified graph.
  GuidedSearcher(const Graph& g, const PathLabeling& labeling,
                 const MetaGraph& meta, const DeltaCache* delta = nullptr);

  // As above, but shares a pre-materialized sparsified graph G[V \ R]
  // (see MakeSparsifiedGraph) — the cheap way to construct one searcher
  // per thread against the same index.
  GuidedSearcher(const Graph& g, const Graph& sparsified,
                 const PathLabeling& labeling, const MetaGraph& meta,
                 const DeltaCache* delta);

  // Answers SPG(u, v). Computes the sketch internally. `stats`, if
  // non-null, receives the per-query counters.
  ShortestPathGraph Query(VertexId u, VertexId v,
                          SearchStats* stats = nullptr);

  // As Query(), but with a caller-supplied sketch (exposed for tests and
  // phase microbenchmarks).
  ShortestPathGraph QueryWithSketch(VertexId u, VertexId v,
                                    const Sketch& sketch,
                                    SearchStats* stats = nullptr);

 private:
  // Expands side `t` of the bi-directional search by one level; appends
  // newly met vertices (already settled by the other side) to meet_set_.
  void ExpandLevel(int t, SearchStats* stats);

  // §4.3: prefer the side whose sketch depth guide d* is not yet met,
  // breaking ties toward the smaller traversed set.
  int PickSide(const Sketch& sketch, const uint32_t d[2]) const;

  // Registers `w` as a start of the backward walk on side t.
  void AddBackwardStart(int t, VertexId w);

  // Emits all edges of all shortest chains from the registered start
  // vertices back to the side-t endpoint, following depth_[t] levels
  // downward (reverse search; also used to splice Z vertices into paths).
  void RunBackwardWalk(int t, SearchStats* stats);

  // Emits all edges of all landmark-free shortest paths from w to landmark
  // `r`, walking label distances down to 1 (recover search).
  void LabelWalk(VertexId w, LandmarkIndex r, SearchStats* stats);

  const Graph& g_;        // original graph (landmark adjacency for recovery)
  Graph gminus_storage_;  // owned G⁻ when not shared
  const Graph* gminus_;   // the sparsified graph actually traversed
  const PathLabeling& labeling_;
  const MetaGraph& meta_;
  const DeltaCache* delta_;

  // Per-query scratch (epoch-reset).
  EpochArray<uint32_t> depth_[2];
  EpochArray<uint8_t> back_mark_[2];
  // Level and bucket vectors are high-water-marked and reused across
  // queries to avoid per-query allocation churn (queries on complex
  // networks touch few levels, so this is the dominant constant factor).
  std::vector<std::vector<VertexId>> levels_[2];        // BFS levels
  size_t num_levels_[2] = {0, 0};
  std::vector<std::vector<VertexId>> back_buckets_[2];  // by depth
  size_t num_buckets_[2] = {0, 0};
  std::vector<VertexId> meet_set_;
  std::unordered_set<uint64_t> walk_mark_;  // (landmark, vertex) visited
  std::vector<Edge> edges_;                 // accumulating answer
  Sketch sketch_scratch_;
  SketchScratch sketch_buffers_;
};

// Materializes the sparsified graph G[V \ R]: same vertex ids, only the
// edges with neither endpoint a landmark.
Graph MakeSparsifiedGraph(const Graph& g, const PathLabeling& labeling);

}  // namespace qbs

#endif  // QBS_CORE_GUIDED_SEARCH_H_

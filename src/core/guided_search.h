// Guided searching (Algorithm 4): answers SPG(u, v) by a sketch-guided
// bi-directional BFS on the sparsified graph G⁻ = G[V \ R], followed by a
// reverse search (paths avoiding landmarks, G⁻_uv) and/or a recover search
// (paths through landmarks, G^L_uv) according to Eq. 5:
//
//          ⎧ G^L_uv               if d_G⁻(u,v) > d⊤
//   G_uv = ⎨ G⁻_uv ∪ G^L_uv       if d_G⁻(u,v) = d⊤
//          ⎩ G⁻_uv                otherwise.
//
// The sparsified graph G⁻ is materialized as its own CSR at construction
// (as the paper does): searches never touch edges incident to landmarks.
// SearchStats::landmark_edges_skipped reports how many adjacency entries
// sparsification removed from the traversal, the §6.5(1) effect.

#ifndef QBS_CORE_GUIDED_SEARCH_H_
#define QBS_CORE_GUIDED_SEARCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/delta_cache.h"
#include "core/labeling.h"
#include "core/meta_graph.h"
#include "core/search_stats.h"
#include "core/sketch.h"
#include "graph/frontier.h"
#include "graph/graph.h"
#include "graph/spg.h"
#include "util/epoch_array.h"

namespace qbs {

// Minimum sketch bound d⊤ for the mask-guided search machinery (refined
// budget + per-vertex lower-bound pruning) to engage. Short-budget
// searches expand a handful of small levels; the O(|R|) bound merge, its
// mask cache lines, and the per-frontier-vertex row checks would cost more
// than the scans they could save. Long budgets are where frontiers balloon
// and label rows genuinely discriminate.
inline constexpr uint32_t kMaskPruneMinBudget = 6;

// Executes guided searches against a fixed labelling scheme. Holds scratch
// state sized to the graph, so construct once and reuse; NOT thread-safe —
// use one searcher per thread.
class GuidedSearcher {
 public:
  // All referenced objects must outlive the searcher. `delta` may be null
  // (recover search then re-derives landmark segments from labels online).
  // This constructor materializes its own copy of the sparsified graph.
  GuidedSearcher(const Graph& g, const PathLabeling& labeling,
                 const MetaGraph& meta, const DeltaCache* delta = nullptr);

  // As above, but shares a pre-materialized sparsified graph G[V \ R]
  // (see MakeSparsifiedGraph) — the cheap way to construct one searcher
  // per thread against the same index.
  GuidedSearcher(const Graph& g, const Graph& sparsified,
                 const PathLabeling& labeling, const MetaGraph& meta,
                 const DeltaCache* delta);

  // Answers SPG(u, v). When the labelling carries bit-parallel masks, d <= 2
  // pairs resolve on a label-guided fast path (ComputeLabelBound + an edge
  // probe / common-neighbour intersection) with zero search, reverse, or
  // recover edge scans; everything else computes the sketch internally and
  // runs the guided search. `stats`, if non-null, receives the per-query
  // counters. `certify`, if non-null, must be
  // ComputeLabelBound(labeling, meta, u, v, /*refine_cutoff=*/2) for this
  // exact pair — batch callers (QbsIndex::QueryBatch) precompute it through
  // the SIMD batch kernel so the fast-path check costs no per-query row
  // scan here.
  ShortestPathGraph Query(VertexId u, VertexId v, SearchStats* stats = nullptr,
                          const LabelBound* certify = nullptr);

  // As Query(), but with a caller-supplied sketch (exposed for tests and
  // phase microbenchmarks).
  ShortestPathGraph QueryWithSketch(VertexId u, VertexId v,
                                    const Sketch& sketch,
                                    SearchStats* stats = nullptr);

  // Enables/disables the mask-guided search pruning (on by default): the
  // refined label upper bound caps the bi-directional search budget below
  // d⊤, and frontier vertices whose depth plus mask-lifted label lower
  // bound to the far endpoint exceed that budget are not expanded. Off
  // reproduces the unpruned traversal exactly (the ablation baseline);
  // answers are identical either way.
  void set_mask_prune(bool enabled) { mask_prune_ = enabled; }

 private:
  // The label-certified d <= 2 fast path. `bound` is the pair's certify
  // bound (refine_cutoff 2), computed by Query() or handed in by a batch
  // caller. Returns true and fills *result (an exact SPG) when it
  // certifies d(u, v) <= 2; the SPG is then a single edge probe or a
  // sorted-adjacency intersection away — no sketch, search, reverse, or
  // recover work at all. Returns false — leaving *result untouched — when
  // the labels cannot certify it (the guided search then resolves the
  // pair, still recover-free when the distance turns out <= 2).
  bool TryLabelFastPath(VertexId u, VertexId v, const LabelBound& bound,
                        SearchStats* stats, ShortestPathGraph* result);

  // Fills result->edges with the exact SPG of a pair KNOWN to be at
  // distance 1 or 2 (direct edge, or one (u,w) + (w,v) pair per common
  // neighbour w). Returns {landmark witnesses, total witnesses} of the
  // distance-2 intersection ({0, 0} for distance 1) so callers can
  // classify coverage.
  std::pair<size_t, size_t> EmitShortSpgEdges(VertexId u, VertexId v,
                                              uint32_t distance,
                                              SearchStats* stats,
                                              ShortestPathGraph* result);

  // Expands side `t` of the bi-directional search by one level; appends
  // newly met vertices (already settled by the other side) to meet_set_.
  void ExpandLevel(int t, SearchStats* stats);

  // §4.3: prefer the side whose sketch depth guide d* is not yet met,
  // breaking ties toward the smaller traversed set.
  int PickSide(const Sketch& sketch, const uint32_t d[2]) const;

  // Marks `w` as on-path: a start of the backward walk on side t.
  void AddBackwardStart(int t, VertexId w);

  // True iff the label rows of x and `other` certify d_G(x, other) >
  // threshold: max over shared landmarks of |δ_x - δ_other|, lifted by one
  // where a bit-parallel mask witness pins a selected neighbour's exact
  // distances (BpMaskLowerLift). One O(|R|) row scan; masks are only read
  // for landmarks sitting exactly at the threshold.
  bool LabelLowerBoundExceeds(VertexId x, VertexId other,
                              uint32_t threshold) const;

  // Serial identifying the current query's walk session for landmark r;
  // walk-mark slots holding it are "visited for r in this query".
  uint64_t WalkSerial(LandmarkIndex r);

  // Emits all edges of all shortest chains from the registered start
  // vertices back to the side-t endpoint, following depth_[t] levels
  // downward (reverse search; also used to splice Z vertices into paths).
  void RunBackwardWalk(int t, SearchStats* stats);

  // Emits all edges of all landmark-free shortest paths from w to landmark
  // `r`, walking label distances down to 1 (recover search).
  void LabelWalk(VertexId w, LandmarkIndex r, SearchStats* stats);

  const Graph& g_;        // original graph (landmark adjacency for recovery)
  Graph gminus_storage_;  // owned G⁻ when not shared
  const Graph* gminus_;   // the sparsified graph actually traversed
  const PathLabeling& labeling_;
  const MetaGraph& meta_;
  const DeltaCache* delta_;

  // Per-query scratch (epoch-reset). All traversal state lives in flat
  // reusable buffers from the shared substrate (graph/frontier.h): BFS
  // levels are contiguous spans of one buffer per side, the reverse search
  // walks (depth, vertex) start pairs through two flat buffers, and the
  // recover-search visited set is a serial-stamped array — no per-query
  // allocation and no hashing on the query hot path.
  EpochArray<uint32_t> depth_[2];
  EpochArray<uint8_t> back_mark_[2];
  LevelStack levels_[2];  // flat BFS levels per side
  // Level-crossing edges (x at level L, w at level L+1), recorded while the
  // forward expansion scans them anyway. The reverse search then replays
  // these lists downward instead of re-scanning walk-vertex adjacencies
  // with random depth lookups: every parent of an on-path vertex is here.
  LevelBuffer<std::pair<VertexId, VertexId>> crossing_[2];
  std::vector<VertexId> meet_set_;
  // (landmark, vertex) visited marks for label walks: walk_mark_[v] holds
  // the serial of the last walk session that visited v; sessions are
  // per-(query, landmark) via walk_session_, so clearing is O(1) per query
  // and marks persist across the u-side and v-side walks of one landmark.
  std::vector<uint64_t> walk_mark_;
  EpochArray<uint64_t> walk_session_;  // landmark -> session serial
  uint64_t walk_serial_ = 0;
  std::vector<VertexId> walk_stack_;  // LabelWalk DFS stack
  std::vector<VertexId> common_scratch_;  // fast-path common neighbours
  std::vector<Edge> edges_;  // accumulating answer
  Sketch sketch_scratch_;
  SketchScratch sketch_buffers_;
  // True while sketch_scratch_ holds a sketch whose meta-edge sweep was
  // deferred; QueryWithSketch then completes it only if the recover search
  // actually runs (most queries never read the meta-edges).
  bool lazy_sketch_ = false;

  // Mask-guided search pruning (see set_mask_prune). query_bound_ holds the
  // fully refined label bound Query() computed for the pair now in flight;
  // have_query_bound_ is the handoff flag to QueryWithSketch (mirroring
  // lazy_sketch_), so direct QueryWithSketch callers never see stale
  // bounds. prune_other_/prune_budget_ parameterize the frontier prune
  // while the stage-1 search runs (ExpandLevel derives each level's
  // threshold as budget - depth).
  bool mask_prune_ = true;
  LabelBound query_bound_;
  bool have_query_bound_ = false;
  bool prune_active_ = false;
  VertexId prune_other_[2] = {0, 0};  // far endpoint per search side
  uint32_t prune_budget_ = kUnreachable;
};

// Materializes the sparsified graph G[V \ R]: same vertex ids, only the
// edges with neither endpoint a landmark.
Graph MakeSparsifiedGraph(const Graph& g, const PathLabeling& labeling);

}  // namespace qbs

#endif  // QBS_CORE_GUIDED_SEARCH_H_

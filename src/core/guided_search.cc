#include "core/guided_search.h"

#include <algorithm>

#include "core/label_scan.h"
#include "util/check.h"

namespace qbs {

Graph MakeSparsifiedGraph(const Graph& g, const PathLabeling& labeling) {
  std::vector<Edge> edges;
  edges.reserve(g.NumEdges());
  for (VertexId x = 0; x < g.NumVertices(); ++x) {
    if (labeling.IsLandmark(x)) continue;
    for (VertexId w : g.Neighbors(x)) {
      if (x < w && !labeling.IsLandmark(w)) edges.emplace_back(x, w);
    }
  }
  return Graph::FromEdges(g.NumVertices(), std::move(edges));
}

GuidedSearcher::GuidedSearcher(const Graph& g, const PathLabeling& labeling,
                               const MetaGraph& meta, const DeltaCache* delta)
    : g_(g), labeling_(labeling), meta_(meta), delta_(delta) {
  QBS_CHECK_EQ(g.NumVertices(), labeling.num_vertices());
  QBS_CHECK(meta.finalized());
  // Materialize G⁻ = G[V \ R] once; searches then traverse it directly
  // instead of filtering per edge.
  gminus_storage_ = MakeSparsifiedGraph(g, labeling);
  gminus_ = &gminus_storage_;
  for (int s = 0; s < 2; ++s) {
    depth_[s].Resize(g.NumVertices(), kUnreachable);
    back_mark_[s].Resize(g.NumVertices(), 0);
  }
  walk_mark_.assign(g.NumVertices(), 0);
  walk_session_.Resize(labeling.num_landmarks(), 0);
}

GuidedSearcher::GuidedSearcher(const Graph& g, const Graph& sparsified,
                               const PathLabeling& labeling,
                               const MetaGraph& meta, const DeltaCache* delta)
    : g_(g), gminus_(&sparsified), labeling_(labeling), meta_(meta),
      delta_(delta) {
  QBS_CHECK_EQ(g.NumVertices(), labeling.num_vertices());
  QBS_CHECK_EQ(sparsified.NumVertices(), g.NumVertices());
  QBS_CHECK(meta.finalized());
  for (int s = 0; s < 2; ++s) {
    depth_[s].Resize(g.NumVertices(), kUnreachable);
    back_mark_[s].Resize(g.NumVertices(), 0);
  }
  walk_mark_.assign(g.NumVertices(), 0);
  walk_session_.Resize(labeling.num_landmarks(), 0);
}

ShortestPathGraph GuidedSearcher::Query(VertexId u, VertexId v,
                                        SearchStats* stats,
                                        const LabelBound* certify) {
  if (u != v && labeling_.has_bp_masks()) {
    // Certify-level bound: handed in by a batch caller (who computed it
    // through the SIMD batch kernel), or one kernel-dispatched fused row
    // scan here. Certified pairs finish without ever scanning candidates.
    const LabelBound bound =
        certify != nullptr
            ? *certify
            : ComputeLabelBound(labeling_, meta_, u, v, /*refine_cutoff=*/2);
    ShortestPathGraph result;
    if (TryLabelFastPath(u, v, bound, stats, &result)) return result;
    ComputeAnchorCandidatesInto(labeling_, u, &sketch_buffers_.cu);
    ComputeAnchorCandidatesInto(labeling_, v, &sketch_buffers_.cv);
    ComputeSketchInto(labeling_, meta_, u, v, &sketch_scratch_,
                      &sketch_buffers_, /*with_meta_edges=*/false,
                      /*reuse_candidates=*/true);
    const uint32_t d_top = sketch_scratch_.d_top;
    if (mask_prune_ && d_top != kUnreachable &&
        d_top >= kMaskPruneMinBudget && !labeling_.IsLandmark(u) &&
        !labeling_.IsLandmark(v)) {
      // Refined bound for a long-range search the fast path could not
      // avoid: the refined upper caps the stage-1 budget below d⊤ when a
      // mask witness shortens the best landmark route. Cutoff d⊤ - 1 keeps
      // the mask cache lines untouched for any landmark whose route cannot
      // undercut the sketch bound, and the d⊤ gate skips the whole merge
      // for short searches, whose few small levels cost less than the
      // bound — those run the PR 3 query path unchanged.
      query_bound_ = ComputeLabelBoundRows(labeling_, u, v, d_top - 1);
      have_query_bound_ = true;
    }
    lazy_sketch_ = true;
    return QueryWithSketch(u, v, sketch_scratch_, stats);
  }
  ComputeSketchInto(labeling_, meta_, u, v, &sketch_scratch_,
                    &sketch_buffers_, /*with_meta_edges=*/false);
  lazy_sketch_ = true;
  return QueryWithSketch(u, v, sketch_scratch_, stats);
}

std::pair<size_t, size_t> GuidedSearcher::EmitShortSpgEdges(
    VertexId u, VertexId v, uint32_t distance, SearchStats* stats,
    ShortestPathGraph* result) {
  result->edges.clear();
  if (distance == 1) {
    result->edges.emplace_back(u, v);
    result->Normalize();
    return {0, 0};
  }
  QBS_DCHECK(distance == 2);
  // Common-neighbour intersection over the sorted adjacency lists: every
  // shortest path of a distance-2 pair is u - w - v with w in N(u) ∩ N(v).
  // Skewed degrees (hub endpoints) binary-search the small list through
  // the big one; similar degrees linear-merge, clamped to the id range the
  // small list can reach — either way the cost tracks the smaller
  // neighbourhood, not the hub's.
  std::span<const VertexId> small = g_.Neighbors(u);
  std::span<const VertexId> big = g_.Neighbors(v);
  if (small.size() > big.size()) std::swap(small, big);
  common_scratch_.clear();
  if (!small.empty() && small.size() * 8 <= big.size()) {
    for (const VertexId w : small) {
      ++stats->edges_scanned_direct;
      if (std::binary_search(big.begin(), big.end(), w)) {
        common_scratch_.push_back(w);
      }
    }
  } else if (!small.empty()) {
    const auto* lo =
        std::lower_bound(big.data(), big.data() + big.size(), small.front());
    const auto* hi =
        std::upper_bound(lo, big.data() + big.size(), small.back());
    size_t iu = 0;
    while (iu < small.size() && lo != hi) {
      ++stats->edges_scanned_direct;
      if (small[iu] < *lo) {
        ++iu;
      } else if (*lo < small[iu]) {
        ++lo;
      } else {
        common_scratch_.push_back(small[iu]);
        ++iu;
        ++lo;
      }
    }
  }
  QBS_DCHECK(!common_scratch_.empty());  // distance 2 implies a witness
  result->edges.reserve(2 * common_scratch_.size());
  size_t landmark_witnesses = 0;
  for (const VertexId w : common_scratch_) {
    if (labeling_.IsLandmark(w)) ++landmark_witnesses;
    result->edges.emplace_back(u, w);
    result->edges.emplace_back(w, v);
  }
  result->Normalize();
  return {landmark_witnesses, common_scratch_.size()};
}

bool GuidedSearcher::TryLabelFastPath(VertexId u, VertexId v,
                                      const LabelBound& bound,
                                      SearchStats* stats,
                                      ShortestPathGraph* result) {
  QBS_CHECK_LT(u, g_.NumVertices());
  QBS_CHECK_LT(v, g_.NumVertices());
  // `bound` carries only certify-level refinement (cutoff 2): landmarks
  // whose unrefined candidate cannot reach 2 skipped their mask cache
  // lines, so far pairs paid one fused row scan and nothing else.
  if (stats != nullptr) stats->d_label_upper = bound.upper;
  if (bound.upper > 2) return false;  // not certified: run the guided search
  QBS_DCHECK(bound.upper >= 1);       // upper == 0 would force u == v

  SearchStats local_stats;
  SearchStats* s = stats != nullptr ? stats : &local_stats;
  const bool endpoint_lm = labeling_.IsLandmark(u) || labeling_.IsLandmark(v);

  result->u = u;
  result->v = v;
  uint32_t distance = bound.upper;
  if (bound.upper == 2) {
    // The certificate pins d to {1, 2}; one edge probe (HasEdge searches
    // the smaller adjacency list itself) settles which.
    s->edges_scanned_direct += 1;
    if (g_.HasEdge(u, v)) distance = 1;
  }
  result->distance = distance;
  const auto [landmark_witnesses, total_witnesses] =
      EmitShortSpgEdges(u, v, distance, s, result);
  if (distance == 1) {
    s->coverage = endpoint_lm ? PairCoverage::kAllThroughLandmarks
                              : PairCoverage::kNoneThroughLandmarks;
  } else if (endpoint_lm || landmark_witnesses == total_witnesses) {
    s->coverage = PairCoverage::kAllThroughLandmarks;
  } else if (landmark_witnesses > 0) {
    s->coverage = PairCoverage::kSomeThroughLandmarks;
  } else {
    s->coverage = PairCoverage::kNoneThroughLandmarks;
  }
  ++s->label_short_circuits;
  return true;
}

int GuidedSearcher::PickSide(const Sketch& sketch, const uint32_t d[2]) const {
  const bool want_u = sketch.d_star_u > d[0];
  const bool want_v = sketch.d_star_v > d[1];
  if (want_u != want_v) return want_u ? 0 : 1;
  // Tie: expand the side that has traversed less so far. Flat levels make
  // this a buffer-length read instead of a per-level sum.
  return levels_[0].TotalSize() <= levels_[1].TotalSize() ? 0 : 1;
}

bool GuidedSearcher::LabelLowerBoundExceeds(VertexId x, VertexId other,
                                            uint32_t threshold) const {
  // Kernel-dispatched: the AVX2 variant compares 16 lanes per step and
  // only reads mask cache lines for lanes sitting exactly at the
  // threshold, matching this check's scalar access pattern.
  return RowLowerBoundExceeds(labeling_, x, other, threshold,
                              ActiveScanOps());
}

void GuidedSearcher::ExpandLevel(int t, SearchStats* stats) {
  const int o = 1 - t;
  const uint32_t next_depth = static_cast<uint32_t>(levels_[t].NumLevels());
  // A vertex at this depth only matters if some u–v path of length <=
  // budget runs through it, which needs lb(x, far endpoint) <= budget -
  // depth; anything the labels certify farther is skipped whole-adjacency.
  // Sound because a vertex on any length-<= budget G⁻ path always passes
  // the test (lb never exceeds the true distance), so every meet and every
  // reverse/Z-walk parent the later stages read is still discovered at its
  // true depth.
  const uint32_t cur_depth = next_depth - 1;
  const bool prune = prune_active_ && prune_budget_ != kUnreachable &&
                     prune_budget_ >= cur_depth;
  const uint32_t threshold = prune_budget_ - cur_depth;
  // Open the next level first so the current level's bounds are frozen,
  // then iterate by index: Push may reallocate the flat buffer.
  levels_[t].BeginLevel();
  crossing_[t].BeginLevel();  // pairs (x @ next_depth-1, w @ next_depth)
  const size_t begin = levels_[t].LevelBegin(next_depth - 1);
  const size_t end = levels_[t].LevelEnd(next_depth - 1);
  // The row check costs O(|R|); it can only pay for vertices whose
  // adjacency scan is at least comparable, so low-degree vertices expand
  // unchecked.
  const uint32_t min_check_degree = (labeling_.num_landmarks() + 1) / 2;
  for (size_t idx = begin; idx < end; ++idx) {
    const VertexId x = levels_[t].At(idx);
    if (prune && gminus_->Degree(x) >= min_check_degree &&
        LabelLowerBoundExceeds(x, prune_other_[t], threshold)) {
      ++stats->lb_prunes;
      continue;
    }
    stats->edges_scanned_search += gminus_->Degree(x);
    stats->landmark_edges_skipped += g_.Degree(x) - gminus_->Degree(x);
    for (VertexId w : gminus_->Neighbors(x)) {
      if (!depth_[t].IsSet(w)) {
        depth_[t].Set(w, next_depth);
        levels_[t].Push(w);
        crossing_[t].Push({x, w});
        if (depth_[o].IsSet(w)) meet_set_.push_back(w);
      } else if (depth_[t].Get(w) == next_depth) {
        // w was already discovered on this level via another parent; the
        // reverse search needs every parent edge.
        crossing_[t].Push({x, w});
      }
    }
  }
}

void GuidedSearcher::AddBackwardStart(int t, VertexId w) {
  if (back_mark_[t].IsSet(w)) return;
  back_mark_[t].Set(w, 1);
  QBS_DCHECK(depth_[t].Get(w) != kUnreachable);
}

void GuidedSearcher::RunBackwardWalk(int t, SearchStats* stats) {
  // Replay the recorded crossing-edge lists from the deepest level down:
  // an edge (x, w) with w marked on-path puts x on-path one level lower,
  // so marks propagate ahead of the scan front.
  auto& crossing = crossing_[t];
  for (size_t level = crossing.NumLevels(); level-- > 0;) {
    stats->edges_scanned_reverse += crossing.LevelSize(level);
    for (const auto& [x, w] : crossing.Level(level)) {
      if (!back_mark_[t].IsSet(w)) continue;
      edges_.emplace_back(w, x);
      back_mark_[t].Set(x, 1);
    }
  }
}

uint64_t GuidedSearcher::WalkSerial(LandmarkIndex r) {
  if (!walk_session_.IsSet(r)) walk_session_.Set(r, ++walk_serial_);
  return walk_session_.Get(r);
}

void GuidedSearcher::LabelWalk(VertexId w, LandmarkIndex r,
                               SearchStats* stats) {
  const uint64_t serial = WalkSerial(r);
  if (walk_mark_[w] == serial) return;
  walk_mark_[w] = serial;
  const VertexId target = labeling_.LandmarkVertex(r);
  walk_stack_.clear();
  walk_stack_.push_back(w);
  while (!walk_stack_.empty()) {
    const VertexId x = walk_stack_.back();
    walk_stack_.pop_back();
    const DistT dx = labeling_.Get(x, r);
    QBS_DCHECK(dx != kInfDist && dx > 0);
    if (dx == 1) {
      edges_.emplace_back(x, target);
      continue;
    }
    stats->edges_scanned_recover += gminus_->Degree(x);
    for (VertexId y : gminus_->Neighbors(x)) {
      if (labeling_.Get(y, r) != dx - 1) continue;
      edges_.emplace_back(x, y);
      if (walk_mark_[y] != serial) {
        walk_mark_[y] = serial;
        walk_stack_.push_back(y);
      }
    }
  }
}

ShortestPathGraph GuidedSearcher::QueryWithSketch(VertexId u, VertexId v,
                                                  const Sketch& sketch,
                                                  SearchStats* stats) {
  QBS_CHECK_LT(u, g_.NumVertices());
  QBS_CHECK_LT(v, g_.NumVertices());
  const bool lazy_sketch = lazy_sketch_;
  lazy_sketch_ = false;
  // Label bound handed over by Query(); direct callers get the neutral
  // default (upper = ∞, lower = 0), i.e. the unpruned search.
  const LabelBound label_bound =
      have_query_bound_ ? query_bound_ : LabelBound{};
  have_query_bound_ = false;
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  stats->d_top = sketch.d_top;
  if (label_bound.upper != kUnreachable) {
    stats->d_label_upper = label_bound.upper;
  }

  ShortestPathGraph result;
  result.u = u;
  result.v = v;
  if (u == v) {
    result.distance = 0;
    stats->coverage = PairCoverage::kNoneThroughLandmarks;
    return result;
  }

  // Reset per-query scratch (buffers are reused; only logical clears).
  for (int s = 0; s < 2; ++s) {
    depth_[s].Reset();
    back_mark_[s].Reset();
    levels_[s].Clear();
    crossing_[s].Clear();
  }
  meet_set_.clear();
  walk_session_.Reset();
  edges_.clear();

  const bool u_lm = labeling_.IsLandmark(u);
  const bool v_lm = labeling_.IsLandmark(v);
  const VertexId endpoint[2] = {u, v};
  for (int s = 0; s < 2; ++s) {
    levels_[s].BeginLevel();
    if (!labeling_.IsLandmark(endpoint[s])) {
      depth_[s].Set(endpoint[s], 0);
      levels_[s].Push(endpoint[s]);
    }
  }

  // Stage 1: sketch-guided bi-directional search on G⁻. A landmark endpoint
  // does not exist in G⁻, so the search is skipped entirely in that case
  // (every shortest path then passes through a landmark and the recover
  // search reconstructs all of them).
  uint32_t d[2] = {0, 0};
  bool meet = false;
  if (!u_lm && !v_lm) {
    // Search budget: meets beyond it cannot change the answer. The refined
    // label upper bound can undercut d⊤ (a mask witness shortens the best
    // landmark route by up to 2); then d_G < d⊤, so no shortest path
    // crosses a landmark (Corollary 4.6 is tight for landmark-crossing
    // pairs), d_G⁻ = d_G <= budget, and the meet still happens in budget.
    const uint32_t budget = std::min(sketch.d_top, label_bound.upper);
    // Per-vertex pruning is gated on the masks (like the d <= 2 direct
    // emission below) so bit_parallel = false reproduces the pre-mask
    // traversal exactly, and on a long-range budget (kMaskPruneMinBudget):
    // on small-diameter budgets every vertex sits within a landmark hop or
    // two of both endpoints, |δ_x - δ_o| never clears the threshold, and
    // the O(|R|) row check per frontier vertex would be pure overhead.
    prune_active_ = mask_prune_ && labeling_.has_bp_masks() &&
                    budget != kUnreachable && budget >= kMaskPruneMinBudget;
    prune_budget_ = budget;
    prune_other_[0] = v;
    prune_other_[1] = u;
    const bool bounded = budget != kUnreachable;
    while (!bounded || d[0] + d[1] < budget) {
      if (levels_[0].LevelSize(d[0]) == 0 || levels_[1].LevelSize(d[1]) == 0) {
        break;  // G⁻ exhausted on one side: d_G⁻(u, v) = ∞.
      }
      const int t = PickSide(sketch, d);
      ExpandLevel(t, stats);
      ++d[t];
      if (!meet_set_.empty()) {
        meet = true;
        break;
      }
    }
    prune_active_ = false;
  }

  const uint32_t d_minus = meet ? d[0] + d[1] : kUnreachable;
  stats->d_sparsified = d_minus;
  result.distance = std::min(d_minus, sketch.d_top);
  if (result.distance == kUnreachable) {
    stats->coverage = PairCoverage::kDisconnected;
    return result;  // disconnected
  }
  if (d_minus < sketch.d_top) {
    stats->coverage = PairCoverage::kNoneThroughLandmarks;
  } else if (d_minus == sketch.d_top) {
    stats->coverage = PairCoverage::kSomeThroughLandmarks;
  } else {
    stats->coverage = PairCoverage::kAllThroughLandmarks;
  }

  // Close pairs the labels could not certify still skip the reverse and
  // recover stages: with the distance now known to be 1 or 2, the exact
  // SPG is a direct edge / common-neighbour emission, so d <= 2 queries
  // never scan a reverse or recover edge regardless of certification.
  // Gated on the masks so bit_parallel = false reproduces the pre-mask
  // query path exactly (the ablation baseline).
  if (result.distance <= 2 && labeling_.has_bp_masks()) {
    EmitShortSpgEdges(u, v, result.distance, stats, &result);
    return result;
  }

  // Stage 2: reverse search (G⁻_uv) — runs iff the frontiers met, i.e.
  // d_G⁻(u, v) <= d⊤. Every shortest u–v path in G⁻ crosses the meeting
  // level at a vertex in meet_set_, so walking depth levels backwards from
  // the meet set on both sides emits exactly G⁻_uv.
  if (meet) {
    for (const VertexId m : meet_set_) {
      QBS_DCHECK(depth_[0].Get(m) + depth_[1].Get(m) == d_minus);
      AddBackwardStart(0, m);
      AddBackwardStart(1, m);
    }
  }

  // Stage 3: recover search (G^L_uv) — runs iff d⊤ realizes the distance.
  if (sketch.d_top == result.distance) {
    // (a) Landmark-to-landmark segments for every sketch meta-edge. A
    // deferred sweep is completed here, now that the recover search is
    // known to run (`sketch` aliases sketch_scratch_ on this path).
    if (lazy_sketch) {
      ComputeSketchMetaEdges(meta_, &sketch_scratch_, &sketch_buffers_);
    }
    for (const MetaEdge& e : sketch.meta_edges) {
      const std::vector<Edge>* cached =
          delta_ != nullptr ? delta_->Lookup(e.a, e.b) : nullptr;
      if (cached != nullptr) {
        ++stats->delta_cache_hits;
        edges_.insert(edges_.end(), cached->begin(), cached->end());
      } else {
        const std::vector<Edge> segment =
            RecoverMetaSegment(g_, labeling_, e, &stats->edges_scanned_recover);
        edges_.insert(edges_.end(), segment.begin(), segment.end());
      }
    }
    // (b) Z pairs (Lines 19-23): for each sketch anchor (r, t), the
    // on-path vertices w closest to r that the side-t search discovered,
    // at depth dm = min(σ−1, d_t) with δ_{w,r} + dm = σ. Each contributes
    // a label walk w → r (the part beyond the search horizon) and a
    // backward walk w → t (the part inside it).
    for (int t = 0; t < 2; ++t) {
      const auto& anchors = t == 0 ? sketch.u_anchors : sketch.v_anchors;
      for (const SketchAnchor& anchor : anchors) {
        if (anchor.delta == 0) continue;  // endpoint is the landmark itself
        const uint32_t sigma = anchor.delta;
        const uint32_t dm = std::min(sigma - 1, d[t]);
        QBS_DCHECK(dm < levels_[t].NumLevels());
        for (const VertexId w : levels_[t].Level(dm)) {
          const DistT dwr = labeling_.Get(w, anchor.landmark);
          if (dwr == kInfDist || dwr + dm != sigma) continue;
          LabelWalk(w, anchor.landmark, stats);
          AddBackwardStart(t, w);
        }
      }
    }
  }

  // Backward walks emit both the reverse-search paths and the endpoint
  // sides of recovered paths, sharing marks so overlapping parts are
  // walked once (§4.3: "the search for parts of shortest paths that have
  // already been found in the reversed search can be skipped").
  RunBackwardWalk(0, stats);
  RunBackwardWalk(1, stats);

  // Copy (not move) so edges_ keeps its high-water capacity across queries;
  // the copy is one exact-sized allocation instead of the regrowth churn.
  result.edges.assign(edges_.begin(), edges_.end());
  result.Normalize();
  return result;
}

}  // namespace qbs

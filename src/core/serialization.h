// Binary persistence for the labelling scheme, so the offline phase runs
// once and query servers load the precomputed index at startup.
//
// Current format (version QBSIDX02, little-endian, host-endianness — the
// index is a single-machine artifact like the paper's):
//   u64  magic 'QBSIDX02'
//   u32  num_vertices
//   u32  num_landmarks k
//   u32  landmarks[k]            (vertex ids)
//   u16  labels[num_vertices*k]  (kInfDist = absent)
//   u8   has_bp_masks            (0 or 1)
//   if has_bp_masks:
//     per landmark: u32 count (<= 64), u32 selected[count]  (vertex ids)
//     (u64 s_minus, u64 s_zero) * num_vertices*k            (vertex-major)
//   u64  num_meta_edges
//   (u32 a, u32 b, u32 weight) * num_meta_edges
//
// Version QBSIDX01 is the same layout without the bit-parallel section;
// the loader still reads v1 files (masks simply come back disabled, and
// queries fall back to the sketch-guided search). Save() always writes v2.
//
// The Δ cache is intentionally not stored: rebuilding it from the loaded
// labels is a fast parallel pass, and skipping it keeps files small.

#ifndef QBS_CORE_SERIALIZATION_H_
#define QBS_CORE_SERIALIZATION_H_

#include <optional>
#include <string>

#include "core/labeling.h"

namespace qbs {

// Writes the labelling scheme to `path`. Returns false on I/O failure (a
// message goes to stderr).
bool SaveLabelingScheme(const LabelingScheme& scheme,
                        const std::string& path);

// Reads a labelling scheme previously written by SaveLabelingScheme.
// Returns std::nullopt on I/O failure, bad magic, or a corrupt layout.
std::optional<LabelingScheme> LoadLabelingScheme(const std::string& path);

}  // namespace qbs

#endif  // QBS_CORE_SERIALIZATION_H_

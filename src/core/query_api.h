// The unified query surface: every way of asking the index a question —
// the CLI, the benches, QueryBatch, and the `qbs serve` wire protocol —
// speaks QueryRequest/QueryResponse. The request carries the pair, the
// answer mode, an optional distance budget, and behavior flags; the
// response carries the answer payload (distance + shortest-path-graph
// edges), the per-query work counters, and serving metadata (cache hit).
//
// The answer payload of a response is a pure function of
// (index, u, v, mode, budget): the hot-pair result cache keys on exactly
// those fields and replays the payload bit-identically, which is what lets
// the serving layer treat hits and misses as interchangeable.

#ifndef QBS_CORE_QUERY_API_H_
#define QBS_CORE_QUERY_API_H_

#include <cstdint>

#include "core/search_stats.h"
#include "graph/graph.h"
#include "graph/spg.h"

namespace qbs {

/// What the caller wants back.
enum class QueryMode : uint8_t {
  /// Distance only: the response's SPG carries d_G(u, v) and no edges.
  kDistance = 0,
  /// The full shortest path graph (Definition 2.2).
  kSpg = 1,
};

/// QueryRequest::flags bits.
/// Serving only: never answer this request from (or insert it into) the
/// hot-pair result cache. The index itself ignores it.
inline constexpr uint32_t kQueryFlagNoCache = 1u << 0;

/// QueryRequest::deadline_ms value meaning "no deadline" (the default).
/// Any other value — including 0, which is "already expired" — is a
/// relative budget in milliseconds, measured by the server from the moment
/// the request frame is decoded. A request whose deadline runs out before
/// its query starts executing is answered with a kDeadlineExceeded error
/// instead of being executed late.
inline constexpr uint32_t kNoDeadline = 0xFFFFFFFFu;

/// QueryResponse::flags bits.
/// The label lower bound certified d_G(u, v) > budget before any search
/// ran: the distance is *unknown* (reported kUnreachable) but provably
/// beyond the budget.
inline constexpr uint32_t kResponseFlagBudgetPruned = 1u << 0;
/// The query resolved and d_G(u, v) > budget: the distance is exact but
/// the SPG edges are omitted from the payload.
inline constexpr uint32_t kResponseFlagBudgetExceeded = 1u << 1;
/// Graceful degradation: an overloaded server answered from the labelling
/// alone instead of queueing the query. spg.distance carries the label
/// UPPER bound on d_G(u, v) (kUnreachable when the labels certify
/// nothing), degraded_lower the matching lower bound, and spg.edges is
/// empty. Degraded answers are never cached and never compare
/// SameAnswer-equal to an exact answer (the flag differs by design).
inline constexpr uint32_t kResponseFlagDegraded = 1u << 2;

struct QueryRequest {
  VertexId u = 0;
  VertexId v = 0;
  QueryMode mode = QueryMode::kSpg;
  /// 0 = unlimited. Otherwise the caller only cares about pairs within
  /// `budget` hops: a pair certified (label lower bound) or resolved to be
  /// farther answers without SPG edges and with the corresponding response
  /// flag set.
  uint32_t budget = 0;
  /// kQueryFlag* bits.
  uint32_t flags = 0;
  /// Serving only: relative deadline in milliseconds (kNoDeadline = none;
  /// 0 = already expired). Not part of the answer payload — the result
  /// cache ignores it — but enforced by the server at every admission
  /// boundary. The index itself ignores it.
  uint32_t deadline_ms = kNoDeadline;

  QueryRequest() = default;
  QueryRequest(VertexId u_in, VertexId v_in, QueryMode m = QueryMode::kSpg,
               uint32_t budget_in = 0, uint32_t flags_in = 0,
               uint32_t deadline_ms_in = kNoDeadline)
      : u(u_in),
        v(v_in),
        mode(m),
        budget(budget_in),
        flags(flags_in),
        deadline_ms(deadline_ms_in) {}

  friend bool operator==(const QueryRequest& a, const QueryRequest& b) {
    return a.u == b.u && a.v == b.v && a.mode == b.mode &&
           a.budget == b.budget && a.flags == b.flags &&
           a.deadline_ms == b.deadline_ms;
  }
};

struct QueryResponse {
  /// The answer payload. spg.u / spg.v echo the request orientation;
  /// spg.distance is d_G(u, v) (kUnreachable when disconnected or budget-
  /// pruned); spg.edges is empty for mode == kDistance and for over-budget
  /// answers.
  ShortestPathGraph spg;
  /// Work counters for this query. Diagnostic: a cache hit performs no
  /// search, so stats are NOT part of the cached payload.
  SearchStats stats;
  /// kResponseFlag* bits. Part of the deterministic payload (a budget-
  /// pruned answer must replay as budget-pruned).
  uint32_t flags = 0;
  /// Serving metadata: answered from the hot-pair result cache. Never set
  /// by the index itself.
  bool cache_hit = false;
  /// Lower bound companion to a kResponseFlagDegraded answer (spg.distance
  /// is the upper bound). Meaningless — and zero — otherwise.
  uint32_t degraded_lower = 0;

  uint32_t distance() const { return spg.distance; }
  bool degraded() const { return (flags & kResponseFlagDegraded) != 0; }

  /// True iff two responses carry the same deterministic answer payload —
  /// everything except the diagnostic stats and the cache_hit bit. This is
  /// the bit-identity the result cache guarantees.
  friend bool SameAnswer(const QueryResponse& a, const QueryResponse& b) {
    return a.spg == b.spg && a.flags == b.flags;
  }
};

}  // namespace qbs

#endif  // QBS_CORE_QUERY_API_H_

// QbsIndex — the public facade of the library.
//
// Usage:
//
//   Graph g = ...;                       // must outlive the index
//   QbsIndex index = QbsIndex::Build(g, {.num_landmarks = 20});
//   ShortestPathGraph spg = index.Query(u, v);
//
// Build() runs the offline phase (labelling scheme construction, Algorithm
// 2, optionally in parallel = the paper's QbS-P, plus the optional Δ
// precomputation); Query() runs the online phase (sketching, Algorithm 3,
// then guided searching, Algorithm 4).

#ifndef QBS_CORE_QBS_INDEX_H_
#define QBS_CORE_QBS_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/delta_cache.h"
#include "core/guided_search.h"
#include "core/labeling.h"
#include "core/landmark_selection.h"
#include "core/meta_graph.h"
#include "core/query_api.h"
#include "core/search_stats.h"
#include "core/sketch.h"
#include "core/updatable_index.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "graph/spg.h"
#include "util/sync.h"

namespace qbs {

struct QbsOptions {
  /// |R|; the paper's default is 20 (§6.1). Clamped to |V|.
  uint32_t num_landmarks = 20;
  LandmarkStrategy landmark_strategy = LandmarkStrategy::kHighestDegree;
  /// Seed for the random landmark strategy.
  uint64_t seed = 42;
  /// Labelling construction threads: 1 = sequential QbS, 0 = all hardware
  /// threads (QbS-P), otherwise the exact count.
  size_t num_threads = 1;
  /// Precompute Δ: the shortest path graphs between landmarks (§5.2), so
  /// queries splice cached segments instead of re-deriving them. On by
  /// default — the paper's QbS includes Δ (Table 3 reports its size for
  /// every dataset); turn off to trade query time for build time/space.
  bool precompute_delta = true;
  /// Build Akiba-style bit-parallel masks (the 64 nearest non-landmark
  /// neighbours of each landmark) alongside the labels. Queries then answer
  /// d(s, t) <= 2 pairs straight from the labelling — no sketch, search, or
  /// recover work — and DistanceUpperBound() tightens. Costs 16 bytes per
  /// label slot plus one extra adjacency sweep per landmark at build.
  bool bit_parallel = true;
  /// Fuse the S^{-1} mask propagation into the labelling BFS instead of
  /// replaying two post-BFS sweeps per landmark (LabelingBuildOptions::
  /// bp_fused). Identical masks either way; off only for the fused-vs-
  /// replay ablation and equivalence tests.
  bool bp_fused = true;
  /// Mask-guided search pruning (GuidedSearcher::set_mask_prune): the
  /// refined label upper bound caps the search budget and mask-lifted
  /// per-vertex lower bounds skip frontier vertices that cannot lie on a
  /// relevant path. Identical answers either way; off for ablation.
  bool mask_prune = true;
  /// Force the scalar label-scan kernels (core/label_scan.h), the
  /// programmatic equivalent of QBS_FORCE_SCALAR_SCAN=1. The kernel switch
  /// is process-wide (SetActiveScanKernel at Build/Load), not per-index;
  /// answers are bit-identical either way — this exists for ablations and
  /// for pinning down kernel-specific misbehaviour in the field.
  bool force_scalar_scan = false;
};

struct QbsBuildTimings {
  double labeling_seconds = 0.0;
  double delta_seconds = 0.0;
};

class QbsIndex {
 public:
  /// Builds an index over `g`, which must outlive the index.
  static QbsIndex Build(const Graph& g, const QbsOptions& options = {});

  /// As Build(), with caller-chosen landmarks (distinct vertex ids).
  static QbsIndex BuildWithLandmarks(const Graph& g,
                                     std::vector<VertexId> landmarks,
                                     const QbsOptions& options = {});

  /// Loads a labelling scheme previously written by Save() and finishes the
  /// index against `g` (which must be the same graph the scheme was built
  /// on; vertex-count mismatches are rejected). Honors
  /// options.precompute_delta / num_threads for the Δ rebuild. Returns
  /// std::nullopt on I/O or format errors.
  static std::optional<QbsIndex> LoadFromFile(const Graph& g,
                                              const std::string& path,
                                              const QbsOptions& options = {});

  /// Persists the labelling scheme (labels + meta-graph; Δ is rebuilt on
  /// load). Returns false on I/O failure.
  bool Save(const std::string& path) const;

  QbsIndex(QbsIndex&&) = default;
  QbsIndex& operator=(QbsIndex&&) = default;

  /// Answers SPG(u, v) exactly. Non-const: reuses the index's single
  /// searcher scratch, so serialize calls to Query(); for concurrent reads
  /// use QueryBatch (which checks searchers out of a locked pool).
  ShortestPathGraph Query(VertexId u, VertexId v,
                          SearchStats* stats = nullptr);

  /// The unified query surface (core/query_api.h): answers one request —
  /// mode, budget, and flags included — on the index's single searcher.
  /// Same serialization caveat as the scalar Query().
  QueryResponse Query(const QueryRequest& request);

  /// Tuning knobs for QueryBatch.
  struct BatchOptions {
    /// 0 = all hardware threads.
    size_t num_threads = 0;
    /// Queries handed to a worker per grab from the shared cursor (the
    /// ParallelFor grain); 0 picks requests/(threads*8). Smaller values
    /// rebalance skewed query costs better.
    size_t grain = 0;
  };

  /// Answers many requests in parallel — the canonical batch entry point.
  /// Workers share the index's read-only state and the materialized
  /// sparsified graph, and draw searchers from a persistent pool (grown on
  /// first use, reused across batches); results align with `requests`.
  /// Safe to call concurrently with other QueryBatch calls on the same
  /// index (each call checks searchers out of the pool under a lock), but
  /// not with the single-searcher Query().
  std::vector<QueryResponse> QueryBatch(
      const std::vector<QueryRequest>& requests,
      const BatchOptions& options);
  std::vector<QueryResponse> QueryBatch(
      const std::vector<QueryRequest>& requests) {
    return QueryBatch(requests, BatchOptions());
  }

  /// Executes one request on a caller-managed searcher (e.g. one held via
  /// SearcherLease by a server connection). Thread-safe as long as each
  /// searcher is used by one thread at a time; this is the primitive both
  /// QueryBatch and the `qbs serve` daemon are built on.
  QueryResponse Execute(GuidedSearcher& searcher,
                        const QueryRequest& request) const;

  /// As Execute(), with an optional precomputed certify bound for the
  /// request's pair — ComputeLabelBound(labeling, meta, u, v, 2), null to
  /// compute it inline. QueryBatch precomputes these through the SIMD
  /// batch kernel (ComputeLabelBoundsBatch) so workers skip the per-query
  /// fast-path row scan.
  QueryResponse Execute(GuidedSearcher& searcher, const QueryRequest& request,
                        const LabelBound* certify) const;

  /// Deprecated pair-based batch forms, kept as thin wrappers over the
  /// QueryRequest vector form (mode = kSpg, no budget).
  [[deprecated("use QueryBatch(std::vector<QueryRequest>, BatchOptions)")]]
  std::vector<ShortestPathGraph> QueryBatch(
      const std::vector<std::pair<VertexId, VertexId>>& pairs,
      const BatchOptions& options);

  [[deprecated("use QueryBatch(std::vector<QueryRequest>, BatchOptions)")]]
  std::vector<ShortestPathGraph> QueryBatch(
      const std::vector<std::pair<VertexId, VertexId>>& pairs,
      size_t num_threads = 0);

  /// RAII checkout of `count` searchers from the QueryBatch pool, topping
  /// the pool up with freshly constructed ones as needed. The destructor
  /// returns every searcher, so a query that throws mid-batch (e.g. an
  /// allocation failure surfacing through ParallelFor's inline worker)
  /// unwinds without shrinking the pool. QueryBatch checks its workers'
  /// searchers out through this guard; exposed for its regression tests.
  class SearcherLease {
   public:
    SearcherLease(QbsIndex& index, size_t count);
    ~SearcherLease();
    SearcherLease(const SearcherLease&) = delete;
    SearcherLease& operator=(const SearcherLease&) = delete;

    GuidedSearcher& operator[](size_t i) { return *searchers_[i]; }
    size_t size() const { return searchers_.size(); }

   private:
    QbsIndex& index_;
    std::vector<std::unique_ptr<GuidedSearcher>> searchers_;
  };

  /// Searchers currently idle in the QueryBatch pool (observability for the
  /// lease regression tests and capacity debugging).
  size_t BatchSearcherPoolSize() const;

  /// --- Dynamic updates (core/updatable_index.h). ---

  /// Switches the index into updatable mode: captures the exact per-column
  /// BFS state incremental maintenance detects against (one relabelling
  /// pass — so it also works on an index restored by LoadFromFile, whose
  /// file format carries no depth arrays). `mutable_graph` must be the very
  /// graph object the index was built on (CHECK-enforced); ApplyUpdates
  /// move-assigns the post-edit CSR into it, keeping its address — which
  /// every live searcher references — stable. |V| is fixed for the life of
  /// the index: edits are edge-level.
  void EnableUpdates(Graph* mutable_graph, size_t num_threads = 0);

  bool updates_enabled() const { return updatable_ != nullptr; }

  /// Applies an edit script: computes the net edge changes, swaps in the
  /// updated graph, repairs/rebuilds exactly the affected label columns,
  /// and refreshes the meta-graph, Δ cache, and sparsified graph. With
  /// options.consolidate (default) the index answers every query exactly
  /// as a from-scratch build on the new graph would — bit-identically —
  /// when this returns; with consolidate = false, delete-dirtied columns
  /// are deferred to Consolidate() and may serve stale answers until then.
  /// Requires EnableUpdates(). NOT thread-safe against concurrent queries:
  /// callers must quiesce query traffic (the server wraps this in a writer
  /// lock) — searcher scratch is per-query, but the labelling and graph
  /// mutate in place here.
  UpdateStats ApplyUpdates(const GraphDelta& delta,
                           const UpdateOptions& options = {});

  /// Rebuilds any columns left dirty by deferred updates. Returns the
  /// number rebuilt (0 = already clean). Same thread-safety caveat as
  /// ApplyUpdates.
  uint32_t Consolidate(size_t num_threads = 0);

  /// True iff deferred deletes have left stale columns behind.
  bool HasDirtyColumns() const {
    return updatable_ != nullptr && updatable_->HasDirty();
  }

  /// An upper bound on d_G(u, v): the sketch bound d⊤ (Eq. 3) — tight
  /// whenever a shortest path crosses a landmark — further tightened by the
  /// bit-parallel label bound when masks are present (tight whenever a
  /// shortest path crosses a landmark's selected neighbourhood). O(|R|^2),
  /// no search.
  uint32_t DistanceUpperBound(VertexId u, VertexId v) const;

  /// size(BP): bytes of the bit-parallel mask matrix (0 when built with
  /// bit_parallel = false).
  uint64_t BpMaskSizeBytes() const {
    return scheme_->labeling.BpSizeBytes();
  }

  /// The graph the index was built on (read-only; useful for request
  /// validation in serving layers).
  const Graph& graph() const { return *g_; }

  /// The landmark set R, in label-index order.
  const std::vector<VertexId>& landmarks() const {
    return scheme_->labeling.landmarks();
  }
  /// The path labelling L (read-only).
  const PathLabeling& labeling() const { return scheme_->labeling; }
  /// The landmark meta-graph M (read-only).
  const MetaGraph& meta_graph() const { return scheme_->meta; }
  /// The Δ cache, or nullptr when built with precompute_delta = false.
  const DeltaCache* delta_cache() const { return delta_.get(); }
  /// Wall-clock timings of the offline phase.
  const QbsBuildTimings& timings() const { return timings_; }

  /// size(L): bytes of the path labelling (Table 3).
  uint64_t LabelingSizeBytes() const {
    return scheme_->labeling.SizeBytes();
  }
  /// size(Δ): bytes of the precomputed landmark shortest path graphs
  /// (Table 3); 0 when precompute_delta is off.
  uint64_t DeltaSizeBytes() const {
    return delta_ == nullptr ? 0 : delta_->SizeBytes();
  }
  /// Bytes of the meta-graph (edge list + APSP table).
  uint64_t MetaGraphSizeBytes() const { return scheme_->meta.SizeBytes(); }

 private:
  QbsIndex() = default;

  /// Rebuilds the structures derived from (graph, labelling, meta) after a
  /// mutation: the Δ cache (when enabled) and the sparsified graph, both
  /// move-assigned in place so searcher references stay valid.
  void RefreshDerived(size_t num_threads);

  const Graph* g_ = nullptr;  // not owned
  /// Heap-allocated so GuidedSearcher's references survive moves.
  std::unique_ptr<LabelingScheme> scheme_;
  std::unique_ptr<Graph> sparsified_;  // shared G⁻ for all searchers
  std::unique_ptr<DeltaCache> delta_;
  std::unique_ptr<GuidedSearcher> searcher_;
  /// Idle searchers for QueryBatch, grown on demand and reused across
  /// batches (a searcher holds O(|V|) scratch; rebuilding per batch would
  /// dominate small batches). Each call checks out what it needs under the
  /// mutex, so concurrent QueryBatch calls never share a searcher.
  /// Heap-allocated because Mutex is immovable and QbsIndex is movable;
  /// the capability follows the unique_ptr, so annotations deref it.
  std::unique_ptr<Mutex> batch_searchers_mu_ =
      std::make_unique<Mutex>(LockRank::kSearcherPool);
  std::vector<std::unique_ptr<GuidedSearcher>> batch_searchers_
      QBS_GUARDED_BY(*batch_searchers_mu_);
  QbsBuildTimings timings_;
  /// Mask-guided pruning setting applied to every searcher this index
  /// constructs (QbsOptions::mask_prune).
  bool mask_prune_ = true;
  /// Set by EnableUpdates: the same object g_ points at, held mutably so
  /// ApplyUpdates can move-assign the post-edit CSR into it.
  Graph* mutable_g_ = nullptr;
  /// Per-column maintenance state; non-null iff updates are enabled.
  std::unique_ptr<UpdatableState> updatable_;
};

}  // namespace qbs

#endif  // QBS_CORE_QBS_INDEX_H_

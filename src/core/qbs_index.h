// QbsIndex — the public facade of the library.
//
// Usage:
//
//   Graph g = ...;                       // must outlive the index
//   QbsIndex index = QbsIndex::Build(g, {.num_landmarks = 20});
//   ShortestPathGraph spg = index.Query(u, v);
//
// Build() runs the offline phase (labelling scheme construction, Algorithm
// 2, optionally in parallel = the paper's QbS-P, plus the optional Δ
// precomputation); Query() runs the online phase (sketching, Algorithm 3,
// then guided searching, Algorithm 4).

#ifndef QBS_CORE_QBS_INDEX_H_
#define QBS_CORE_QBS_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/delta_cache.h"
#include "core/guided_search.h"
#include "core/labeling.h"
#include "core/landmark_selection.h"
#include "core/meta_graph.h"
#include "core/search_stats.h"
#include "core/sketch.h"
#include "graph/graph.h"
#include "graph/spg.h"

namespace qbs {

struct QbsOptions {
  // |R|; the paper's default is 20 (§6.1). Clamped to |V|.
  uint32_t num_landmarks = 20;
  LandmarkStrategy landmark_strategy = LandmarkStrategy::kHighestDegree;
  // Seed for the random landmark strategy.
  uint64_t seed = 42;
  // Labelling construction threads: 1 = sequential QbS, 0 = all hardware
  // threads (QbS-P), otherwise the exact count.
  size_t num_threads = 1;
  // Precompute Δ: the shortest path graphs between landmarks (§5.2), so
  // queries splice cached segments instead of re-deriving them. On by
  // default — the paper's QbS includes Δ (Table 3 reports its size for
  // every dataset); turn off to trade query time for build time/space.
  bool precompute_delta = true;
};

struct QbsBuildTimings {
  double labeling_seconds = 0.0;
  double delta_seconds = 0.0;
};

class QbsIndex {
 public:
  // Builds an index over `g`, which must outlive the index.
  static QbsIndex Build(const Graph& g, const QbsOptions& options = {});

  // As Build(), with caller-chosen landmarks (distinct vertex ids).
  static QbsIndex BuildWithLandmarks(const Graph& g,
                                     std::vector<VertexId> landmarks,
                                     const QbsOptions& options = {});

  // Loads a labelling scheme previously written by Save() and finishes the
  // index against `g` (which must be the same graph the scheme was built
  // on; vertex-count mismatches are rejected). Honors
  // options.precompute_delta / num_threads for the Δ rebuild. Returns
  // std::nullopt on I/O or format errors.
  static std::optional<QbsIndex> LoadFromFile(const Graph& g,
                                              const std::string& path,
                                              const QbsOptions& options = {});

  // Persists the labelling scheme (labels + meta-graph; Δ is rebuilt on
  // load). Returns false on I/O failure.
  bool Save(const std::string& path) const;

  QbsIndex(QbsIndex&&) = default;
  QbsIndex& operator=(QbsIndex&&) = default;

  // Answers SPG(u, v) exactly. Non-const: reuses per-index search scratch;
  // use QueryBatch (or one GuidedSearcher per thread) for concurrent reads.
  ShortestPathGraph Query(VertexId u, VertexId v,
                          SearchStats* stats = nullptr);

  // Answers many queries in parallel (num_threads = 0 means all hardware
  // threads). Workers share the index's read-only state and the
  // materialized sparsified graph; results align with `pairs`.
  std::vector<ShortestPathGraph> QueryBatch(
      const std::vector<std::pair<VertexId, VertexId>>& pairs,
      size_t num_threads = 0);

  // The sketch upper bound d⊤ (Eq. 3) — an upper bound on d_G(u, v), tight
  // whenever a shortest path crosses a landmark. O(|R|^2), no search.
  uint32_t DistanceUpperBound(VertexId u, VertexId v) const;

  const std::vector<VertexId>& landmarks() const {
    return scheme_->labeling.landmarks();
  }
  const PathLabeling& labeling() const { return scheme_->labeling; }
  const MetaGraph& meta_graph() const { return scheme_->meta; }
  const DeltaCache* delta_cache() const { return delta_.get(); }
  const QbsBuildTimings& timings() const { return timings_; }

  // size(L): bytes of the path labelling (Table 3).
  uint64_t LabelingSizeBytes() const {
    return scheme_->labeling.SizeBytes();
  }
  // size(Δ): bytes of the precomputed landmark shortest path graphs
  // (Table 3); 0 when precompute_delta is off.
  uint64_t DeltaSizeBytes() const {
    return delta_ == nullptr ? 0 : delta_->SizeBytes();
  }
  uint64_t MetaGraphSizeBytes() const { return scheme_->meta.SizeBytes(); }

 private:
  QbsIndex() = default;

  const Graph* g_ = nullptr;  // not owned
  // Heap-allocated so GuidedSearcher's references survive moves.
  std::unique_ptr<LabelingScheme> scheme_;
  std::unique_ptr<Graph> sparsified_;  // shared G⁻ for all searchers
  std::unique_ptr<DeltaCache> delta_;
  std::unique_ptr<GuidedSearcher> searcher_;
  QbsBuildTimings timings_;
};

}  // namespace qbs

#endif  // QBS_CORE_QBS_INDEX_H_

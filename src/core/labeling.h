// The QbS labelling scheme L = (M, L) of Definition 4.2 and its
// construction (Algorithm 2).
//
// For each vertex u ∉ R, L(u) contains (r, d_G(u, r)) iff at least one
// shortest path between u and r passes through no other landmark. The
// companion meta-graph M records how landmarks interconnect.
//
// Storage: a dense |V| × |R| matrix of DistT (kInfDist = entry absent).
// With the paper's default |R| = 20 a label is 40 bytes — "not much larger
// than the original graph", usually far smaller.
//
// Lemma 5.2: the scheme is uniquely determined by (G, R), independent of
// landmark order, so construction parallelizes per landmark with no
// coordination (QbS-P).

#ifndef QBS_CORE_LABELING_H_
#define QBS_CORE_LABELING_H_

#include <cstdint>
#include <vector>

#include "core/meta_graph.h"
#include "core/types.h"
#include "graph/graph.h"

namespace qbs {

class PathLabeling {
 public:
  PathLabeling() = default;
  PathLabeling(VertexId num_vertices, std::vector<VertexId> landmarks);

  uint32_t num_landmarks() const {
    return static_cast<uint32_t>(landmarks_.size());
  }
  VertexId num_vertices() const { return num_vertices_; }

  const std::vector<VertexId>& landmarks() const { return landmarks_; }
  VertexId LandmarkVertex(LandmarkIndex i) const { return landmarks_[i]; }

  // Landmark index of v, or -1 if v is not a landmark.
  int32_t LandmarkRank(VertexId v) const { return landmark_rank_[v]; }
  bool IsLandmark(VertexId v) const { return landmark_rank_[v] >= 0; }

  // δ_{v, r_i}, or kInfDist if r_i ∉ L(v). Landmarks carry no stored labels
  // (Definition 4.2 assigns labels to V \ R only).
  DistT Get(VertexId v, LandmarkIndex i) const {
    return dist_[static_cast<size_t>(v) * num_landmarks() + i];
  }

  void Set(VertexId v, LandmarkIndex i, DistT d) {
    dist_[static_cast<size_t>(v) * num_landmarks() + i] = d;
  }

  // Number of finite labelling entries: size(L) = Σ_v |L(v)| (§2).
  uint64_t NumEntries() const;

  // Bulk-fills the matrix from a landmark-major buffer (cols[i * |V| + v]).
  // Construction writes labels column-wise — each landmark BFS streams its
  // own |V|-sized column sequentially — and transposes once at the end,
  // instead of scattering one cache line per labelled vertex across the
  // whole vertex-major matrix on every BFS.
  void AssignFromColumns(const std::vector<DistT>& cols);

  // Bytes of the dense label matrix, the quantity Table 3 reports as
  // size(L) (the paper stores |R| fixed-width slots per vertex, as we do).
  uint64_t SizeBytes() const { return dist_.size() * sizeof(DistT); }

 private:
  VertexId num_vertices_ = 0;
  std::vector<VertexId> landmarks_;
  std::vector<int32_t> landmark_rank_;
  std::vector<DistT> dist_;
};

struct LabelingScheme {
  PathLabeling labeling;
  MetaGraph meta;
};

struct LabelingBuildOptions {
  // 1 = sequential (paper's QbS); 0 = hardware concurrency (QbS-P);
  // otherwise the exact thread count.
  size_t num_threads = 1;
};

// Runs Algorithm 2: one two-queue level-synchronous BFS per landmark.
// Landmark vertex ids must be distinct and valid. The result is
// deterministic w.r.t. (g, landmarks) regardless of thread count or
// landmark order (Lemma 5.2); only the landmark *indexing* follows the
// given order.
LabelingScheme BuildLabelingScheme(const Graph& g,
                                   const std::vector<VertexId>& landmarks,
                                   const LabelingBuildOptions& options = {});

}  // namespace qbs

#endif  // QBS_CORE_LABELING_H_

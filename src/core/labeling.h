// The QbS labelling scheme L = (M, L) of Definition 4.2 and its
// construction (Algorithm 2).
//
// For each vertex u ∉ R, L(u) contains (r, d_G(u, r)) iff at least one
// shortest path between u and r passes through no other landmark. The
// companion meta-graph M records how landmarks interconnect.
//
// Storage: a dense |V| × |R| matrix of DistT (kInfDist = entry absent).
// With the paper's default |R| = 20 a label is 40 bytes — "not much larger
// than the original graph", usually far smaller.
//
// Lemma 5.2: the scheme is uniquely determined by (G, R), independent of
// landmark order, so construction parallelizes per landmark with no
// coordination (QbS-P).
//
// Bit-parallel extension (Akiba, Iwata & Yoshida, SIGMOD'13 §4.2): each
// landmark r additionally selects S_r, its first <= 64 non-landmark
// neighbours, and every vertex v stores two 64-bit masks relative to
// d_G(r, v):
//   S_r^{-1}(v) = { u in S_r : d_G(u, v) = d_G(r, v) - 1 }
//   S_r^{ 0}(v) = { u in S_r : d_G(u, v) = d_G(r, v)     }
// A query pair (s, t) with labels for r then refines the landmark route
// d(s,r) + d(r,t) by -2 (common S^{-1} witness) or -1 (S^{-1}/S^0 cross
// witness) without touching the graph, which certifies most d <= 2 pairs
// straight from the labelling (core/sketch.h ComputeLabelBound).

#ifndef QBS_CORE_LABELING_H_
#define QBS_CORE_LABELING_H_

#include <cstdint>
#include <vector>

#include "core/meta_graph.h"
#include "core/types.h"
#include "graph/graph.h"
#include "util/aligned.h"

namespace qbs {

/// Label rows are padded to a multiple of this many DistT lanes (16 lanes
/// x 2 bytes = one 32-byte AVX2 vector) and the matrix storage is 32-byte
/// aligned, so the SIMD row kernels (core/label_scan.h) scan whole rows
/// with full-width aligned loads and no tail loop. Padding lanes always
/// hold kInfDist — the "entry absent" sentinel — so every kernel can scan
/// the padded width blindly: an absent lane contributes nothing to any
/// bound, candidate list, or witness check.
inline constexpr uint32_t kLabelRowLaneAlign = 16;

/// The dense label matrix storage: 32-byte aligned for the SIMD kernels.
using LabelMatrix = std::vector<DistT, AlignedAllocator<DistT, 32>>;

/// Per-(vertex, landmark) bit-parallel masks over the landmark's selected
/// neighbour set S_r (bit j = j-th entry of BpSelected(r)).
struct BpMask {
  uint64_t s_minus = 0;  // selected neighbours at distance d_G(r, v) - 1
  uint64_t s_zero = 0;   // selected neighbours at distance d_G(r, v)

  friend bool operator==(const BpMask& a, const BpMask& b) {
    return a.s_minus == b.s_minus && a.s_zero == b.s_zero;
  }
};

class PathLabeling {
 public:
  /// Empty labelling (no vertices, no landmarks).
  PathLabeling() = default;
  /// Allocates the |V| x |R| matrix, all entries absent (kInfDist).
  PathLabeling(VertexId num_vertices, std::vector<VertexId> landmarks);

  /// |R|, the landmark count the matrix was built with.
  uint32_t num_landmarks() const {
    return static_cast<uint32_t>(landmarks_.size());
  }
  /// |V| of the graph the labelling describes.
  VertexId num_vertices() const { return num_vertices_; }

  /// The landmark vertex ids, in index order.
  const std::vector<VertexId>& landmarks() const { return landmarks_; }
  /// Vertex id of the i-th landmark.
  VertexId LandmarkVertex(LandmarkIndex i) const { return landmarks_[i]; }

  /// Landmark index of v, or -1 if v is not a landmark.
  int32_t LandmarkRank(VertexId v) const { return landmark_rank_[v]; }
  /// True iff v ∈ R.
  bool IsLandmark(VertexId v) const { return landmark_rank_[v] >= 0; }

  /// δ_{v, r_i}, or kInfDist if r_i ∉ L(v). Landmarks carry no stored labels
  /// (Definition 4.2 assigns labels to V \ R only).
  DistT Get(VertexId v, LandmarkIndex i) const {
    return dist_[static_cast<size_t>(v) * stride_ + i];
  }

  void Set(VertexId v, LandmarkIndex i, DistT d) {
    dist_[static_cast<size_t>(v) * stride_ + i] = d;
  }

  /// The label row of v: `row_stride()` DistT lanes, 32-byte aligned.
  /// Lanes [num_landmarks(), row_stride()) are padding and always hold
  /// kInfDist (see kLabelRowLaneAlign) — kernels scan the full stride.
  const DistT* Row(VertexId v) const {
    return dist_.data() + static_cast<size_t>(v) * stride_;
  }

  /// Lanes per row: num_landmarks() rounded up to kLabelRowLaneAlign.
  uint32_t row_stride() const { return stride_; }

  /// Number of finite labelling entries: size(L) = Σ_v |L(v)| (§2).
  uint64_t NumEntries() const;

  /// Bulk-fills the matrix from a landmark-major buffer (cols[i * |V| + v]).
  /// Construction writes labels column-wise — each landmark BFS streams its
  /// own |V|-sized column sequentially — and transposes once at the end,
  /// instead of scattering one cache line per labelled vertex across the
  /// whole vertex-major matrix on every BFS.
  void AssignFromColumns(const std::vector<DistT>& cols);

  /// Bytes of the dense label matrix, the quantity Table 3 reports as
  /// size(L) (the paper stores |R| fixed-width slots per vertex, as we do).
  /// Logical |V| x |R| bytes — row padding is an in-memory layout detail
  /// and is excluded to keep the number paper-comparable.
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(num_vertices_) * num_landmarks() *
           sizeof(DistT);
  }

  /// --- Bit-parallel masks (optional; empty unless enabled at build). ---

  bool has_bp_masks() const { return !bp_.empty(); }

  /// Allocates the mask matrix and the per-landmark selected-neighbour slots.
  /// Idempotent shape-wise; called by construction and the loader.
  void EnableBpMasks();

  BpMask GetBpMask(VertexId v, LandmarkIndex i) const {
    return bp_[static_cast<size_t>(v) * num_landmarks() + i];
  }
  void SetBpMask(VertexId v, LandmarkIndex i, const BpMask& m) {
    bp_[static_cast<size_t>(v) * num_landmarks() + i] = m;
  }

  /// The mask row of v (num_landmarks() entries, unpadded — the kernels
  /// only gather masks for the few lanes that pass the refine gate).
  /// Only valid when has_bp_masks().
  const BpMask* BpRow(VertexId v) const {
    return bp_.data() + static_cast<size_t>(v) * num_landmarks();
  }

  /// S_r of landmark i: the selected non-landmark neighbours, in the bit
  /// order the masks use. Empty when masks are disabled.
  const std::vector<VertexId>& BpSelected(LandmarkIndex i) const {
    return bp_selected_[i];
  }
  void SetBpSelected(LandmarkIndex i, std::vector<VertexId> selected);

  /// Bulk-fills the mask matrix from a landmark-major buffer, mirroring
  /// AssignFromColumns.
  void AssignBpFromColumns(const std::vector<BpMask>& cols);

  /// Bytes of the bit-parallel mask matrix (reported separately from
  /// size(L) to keep the Table 3 quantity paper-comparable).
  uint64_t BpSizeBytes() const { return bp_.size() * sizeof(BpMask); }

 private:
  VertexId num_vertices_ = 0;
  uint32_t stride_ = 0;  // row lanes: |R| rounded up to kLabelRowLaneAlign
  std::vector<VertexId> landmarks_;
  std::vector<int32_t> landmark_rank_;
  LabelMatrix dist_;  // |V| x stride_, 32-byte aligned, padding = kInfDist
  std::vector<BpMask> bp_;  // vertex-major |V| x |R|; empty = disabled
  std::vector<std::vector<VertexId>> bp_selected_;  // S_r per landmark
};

struct LabelingScheme {
  PathLabeling labeling;
  MetaGraph meta;
};

struct LabelingBuildOptions {
  /// 1 = sequential (paper's QbS); 0 = hardware concurrency (QbS-P);
  /// otherwise the exact thread count.
  size_t num_threads = 1;
  /// Build the Akiba-style bit-parallel masks alongside the labels. Costs
  /// 16 bytes per label slot; buys label-only d <= 2 answers and tighter
  /// distance bounds at query time.
  bool bit_parallel = true;
  /// Fuse the S^{-1} mask propagation into the labelling BFS itself:
  /// top-down levels OR parent masks along the edges the expansion scans
  /// anyway, and bottom-up levels collect them during the (full-adjacency)
  /// pull, so only the S^0 sweep replays the settle order afterwards —
  /// one post-BFS sweep per landmark instead of two. Off = the reference
  /// two-sweep replay (kept for the bit-identity equivalence tests and the
  /// fused-vs-replay ablation). Masks are identical either way.
  bool bp_fused = true;
};

/// Runs Algorithm 2: one two-queue level-synchronous BFS per landmark.
/// Landmark vertex ids must be distinct and valid. The result is
/// deterministic w.r.t. (g, landmarks) regardless of thread count or
/// landmark order (Lemma 5.2); only the landmark *indexing* follows the
/// given order.
LabelingScheme BuildLabelingScheme(const Graph& g,
                                   const std::vector<VertexId>& landmarks,
                                   const LabelingBuildOptions& options = {});

/// --- Incremental maintenance entry points (core/updatable_index.h). ---

/// Exact BFS state of one landmark column, captured at (re)build time so
/// incremental maintenance can detect affected columns from stored depths
/// and rederive labels after partial repairs. depth[v] = d_G(r_i, v) for
/// every vertex (kUnreachable when disconnected — unlike the label matrix,
/// which only keeps pruned entries); meta holds the column's meta-edges
/// (a = this column's landmark index), sorted.
struct LabelColumnState {
  std::vector<uint32_t> depth;
  std::vector<MetaEdge> meta;
};

/// Rebuilds landmark column i from scratch against `g`: refreshes S_r when
/// masks are enabled, runs the labelling BFS, fills the mask column, writes
/// the column into `labeling` (labels + masks, vertex-major), and captures
/// the exact depth array + meta-edges into `state`. Equivalent to the slice
/// of BuildLabelingScheme for this landmark — bit-identical labels/masks.
void RebuildLabelColumn(const Graph& g, PathLabeling& labeling,
                        LandmarkIndex i, LabelColumnState* state);

/// Rederives landmark column i's labels, meta-edges, and masks from an
/// already-exact depth array in state->depth (e.g. after a partial BFS
/// repair against the updated graph): recomputes the QL classification
/// level by level and replays the mask sweeps. Bit-identical to
/// RebuildLabelColumn(g, ...) whenever state->depth matches the BFS depths
/// on `g` — the QL rule and both mask recurrences depend only on exact
/// depths, not on traversal order. state->meta is rewritten; S_r is
/// refreshed from `g`'s adjacency when masks are enabled.
void RederiveLabelColumn(const Graph& g, PathLabeling& labeling,
                         LandmarkIndex i, LabelColumnState* state);

}  // namespace qbs

#endif  // QBS_CORE_LABELING_H_

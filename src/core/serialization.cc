#include "core/serialization.h"

#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

namespace qbs {
namespace {

constexpr uint64_t kMagic = 0x3130584449534251ull;  // "QBSIDX01"

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

bool SaveLabelingScheme(const LabelingScheme& scheme,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "SaveLabelingScheme: cannot open " << path << std::endl;
    return false;
  }
  const PathLabeling& l = scheme.labeling;
  WritePod(out, kMagic);
  WritePod(out, l.num_vertices());
  WritePod(out, l.num_landmarks());
  for (VertexId r : l.landmarks()) WritePod(out, r);
  for (VertexId v = 0; v < l.num_vertices(); ++v) {
    for (LandmarkIndex i = 0; i < l.num_landmarks(); ++i) {
      WritePod(out, l.Get(v, i));
    }
  }
  const auto& edges = scheme.meta.Edges();
  WritePod(out, static_cast<uint64_t>(edges.size()));
  for (const MetaEdge& e : edges) {
    WritePod(out, e.a);
    WritePod(out, e.b);
    WritePod(out, e.weight);
  }
  return static_cast<bool>(out);
}

std::optional<LabelingScheme> LoadLabelingScheme(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "LoadLabelingScheme: cannot open " << path << std::endl;
    return std::nullopt;
  }
  uint64_t magic = 0;
  VertexId num_vertices = 0;
  uint32_t k = 0;
  if (!ReadPod(in, &magic) || magic != kMagic ||
      !ReadPod(in, &num_vertices) || !ReadPod(in, &k)) {
    std::cerr << "LoadLabelingScheme: bad header in " << path << std::endl;
    return std::nullopt;
  }
  std::vector<VertexId> landmarks(k);
  for (auto& r : landmarks) {
    if (!ReadPod(in, &r) || r >= num_vertices) {
      std::cerr << "LoadLabelingScheme: bad landmark" << std::endl;
      return std::nullopt;
    }
  }
  LabelingScheme scheme;
  scheme.labeling = PathLabeling(num_vertices, std::move(landmarks));
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (LandmarkIndex i = 0; i < k; ++i) {
      DistT d = kInfDist;
      if (!ReadPod(in, &d)) {
        std::cerr << "LoadLabelingScheme: truncated labels" << std::endl;
        return std::nullopt;
      }
      scheme.labeling.Set(v, i, d);
    }
  }
  uint64_t num_edges = 0;
  if (!ReadPod(in, &num_edges)) {
    std::cerr << "LoadLabelingScheme: truncated meta header" << std::endl;
    return std::nullopt;
  }
  scheme.meta = MetaGraph(k);
  for (uint64_t e = 0; e < num_edges; ++e) {
    LandmarkIndex a = 0;
    LandmarkIndex b = 0;
    uint32_t w = 0;
    if (!ReadPod(in, &a) || !ReadPod(in, &b) || !ReadPod(in, &w) || a >= k ||
        b >= k || a == b || w == 0) {
      std::cerr << "LoadLabelingScheme: bad meta edge" << std::endl;
      return std::nullopt;
    }
    scheme.meta.AddEdge(a, b, w);
  }
  scheme.meta.Finalize();
  return scheme;
}

}  // namespace qbs

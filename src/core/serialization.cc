#include "core/serialization.h"

#include <cstdint>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

namespace qbs {
namespace {

constexpr uint64_t kMagicV1 = 0x3130584449534251ull;  // "QBSIDX01"
constexpr uint64_t kMagicV2 = 0x3230584449534251ull;  // "QBSIDX02"

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// Reads the optional bit-parallel section of a v2 file into *labeling.
bool ReadBpSection(std::ifstream& in, PathLabeling* labeling) {
  uint8_t has_bp = 0;
  if (!ReadPod(in, &has_bp) || has_bp > 1) {
    std::cerr << "LoadLabelingScheme: bad bit-parallel flag\n";
    return false;
  }
  if (has_bp == 0) return true;
  labeling->EnableBpMasks();
  const uint32_t k = labeling->num_landmarks();
  const VertexId n = labeling->num_vertices();
  for (LandmarkIndex i = 0; i < k; ++i) {
    uint32_t count = 0;
    if (!ReadPod(in, &count) || count > 64) {
      std::cerr << "LoadLabelingScheme: bad selected-neighbour count\n";
      return false;
    }
    std::vector<VertexId> selected(count);
    for (auto& w : selected) {
      if (!ReadPod(in, &w) || w >= n) {
        std::cerr << "LoadLabelingScheme: bad selected neighbour\n";
        return false;
      }
    }
    labeling->SetBpSelected(i, std::move(selected));
  }
  for (VertexId v = 0; v < n; ++v) {
    for (LandmarkIndex i = 0; i < k; ++i) {
      BpMask m;
      if (!ReadPod(in, &m.s_minus) || !ReadPod(in, &m.s_zero)) {
        std::cerr << "LoadLabelingScheme: truncated masks\n";
        return false;
      }
      labeling->SetBpMask(v, i, m);
    }
  }
  return true;
}

}  // namespace

bool SaveLabelingScheme(const LabelingScheme& scheme,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "SaveLabelingScheme: cannot open " << path << '\n';
    return false;
  }
  const PathLabeling& l = scheme.labeling;
  WritePod(out, kMagicV2);
  WritePod(out, l.num_vertices());
  WritePod(out, l.num_landmarks());
  for (VertexId r : l.landmarks()) WritePod(out, r);
  for (VertexId v = 0; v < l.num_vertices(); ++v) {
    for (LandmarkIndex i = 0; i < l.num_landmarks(); ++i) {
      WritePod(out, l.Get(v, i));
    }
  }
  const uint8_t has_bp = l.has_bp_masks() ? 1 : 0;
  WritePod(out, has_bp);
  if (has_bp != 0) {
    for (LandmarkIndex i = 0; i < l.num_landmarks(); ++i) {
      const auto& selected = l.BpSelected(i);
      WritePod(out, static_cast<uint32_t>(selected.size()));
      for (VertexId w : selected) WritePod(out, w);
    }
    for (VertexId v = 0; v < l.num_vertices(); ++v) {
      for (LandmarkIndex i = 0; i < l.num_landmarks(); ++i) {
        const BpMask m = l.GetBpMask(v, i);
        WritePod(out, m.s_minus);
        WritePod(out, m.s_zero);
      }
    }
  }
  const auto& edges = scheme.meta.Edges();
  WritePod(out, static_cast<uint64_t>(edges.size()));
  for (const MetaEdge& e : edges) {
    WritePod(out, e.a);
    WritePod(out, e.b);
    WritePod(out, e.weight);
  }
  return static_cast<bool>(out);
}

std::optional<LabelingScheme> LoadLabelingScheme(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "LoadLabelingScheme: cannot open " << path << '\n';
    return std::nullopt;
  }
  uint64_t magic = 0;
  VertexId num_vertices = 0;
  uint32_t k = 0;
  if (!ReadPod(in, &magic) || (magic != kMagicV1 && magic != kMagicV2) ||
      !ReadPod(in, &num_vertices) || !ReadPod(in, &k)) {
    std::cerr << "LoadLabelingScheme: bad header in " << path << '\n';
    return std::nullopt;
  }
  std::vector<VertexId> landmarks(k);
  for (auto& r : landmarks) {
    if (!ReadPod(in, &r) || r >= num_vertices) {
      std::cerr << "LoadLabelingScheme: bad landmark\n";
      return std::nullopt;
    }
  }
  LabelingScheme scheme;
  scheme.labeling = PathLabeling(num_vertices, std::move(landmarks));
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (LandmarkIndex i = 0; i < k; ++i) {
      DistT d = kInfDist;
      if (!ReadPod(in, &d)) {
        std::cerr << "LoadLabelingScheme: truncated labels\n";
        return std::nullopt;
      }
      scheme.labeling.Set(v, i, d);
    }
  }
  if (magic == kMagicV2 && !ReadBpSection(in, &scheme.labeling)) {
    return std::nullopt;
  }
  uint64_t num_edges = 0;
  if (!ReadPod(in, &num_edges)) {
    std::cerr << "LoadLabelingScheme: truncated meta header\n";
    return std::nullopt;
  }
  scheme.meta = MetaGraph(k);
  for (uint64_t e = 0; e < num_edges; ++e) {
    LandmarkIndex a = 0;
    LandmarkIndex b = 0;
    uint32_t w = 0;
    if (!ReadPod(in, &a) || !ReadPod(in, &b) || !ReadPod(in, &w) || a >= k ||
        b >= k || a == b || w == 0) {
      std::cerr << "LoadLabelingScheme: bad meta edge\n";
      return std::nullopt;
    }
    scheme.meta.AddEdge(a, b, w);
  }
  scheme.meta.Finalize();
  return scheme;
}

}  // namespace qbs

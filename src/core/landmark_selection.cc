#include "core/landmark_selection.h"

#include <algorithm>
#include <numeric>

#include "graph/bfs.h"
#include "util/rng.h"

namespace qbs {
namespace {

// Sample `count` distinct vertices with probability proportional to degree,
// via rejection sampling over the adjacency array (each vertex appears
// deg(v) times among edge endpoints).
std::vector<VertexId> DegreeWeightedSample(const Graph& g, uint32_t count,
                                           Rng* rng) {
  std::vector<VertexId> picks;
  std::vector<bool> picked(g.NumVertices(), false);
  // Flatten endpoints lazily: choose a random edge and endpoint.
  const uint64_t num_edges = g.NumEdges();
  std::vector<Edge> edges = g.EdgeList();
  uint64_t attempts = 0;
  const uint64_t max_attempts = 64ull * count + 1024;
  while (picks.size() < count && num_edges > 0 && attempts < max_attempts) {
    ++attempts;
    const Edge& e = edges[rng->UniformInt(num_edges)];
    const VertexId v = rng->Bernoulli(0.5) ? e.u : e.v;
    if (!picked[v]) {
      picked[v] = true;
      picks.push_back(v);
    }
  }
  // Degenerate graphs (few non-isolated vertices): top up deterministically.
  for (VertexId v = 0; picks.size() < count; ++v) {
    if (!picked[v]) {
      picked[v] = true;
      picks.push_back(v);
    }
  }
  return picks;
}

// Approximate closeness centrality: BFS from a few sampled sources; rank
// vertices by total distance to the samples (ascending = most central).
// Costs O(samples * |E|); a practical instantiation of the paper's §8
// future-work item on landmark selection strategies.
std::vector<VertexId> ApproxClosenessSelect(const Graph& g, uint32_t count,
                                            uint64_t seed) {
  constexpr uint32_t kSamples = 8;
  Rng rng(seed);
  std::vector<uint64_t> total(g.NumVertices(), 0);
  for (uint32_t s = 0; s < kSamples; ++s) {
    const auto source = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    const auto dist = BfsDistances(g, source);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      // Penalize unreachability strongly so central vertices stay in the
      // giant component.
      total[v] += dist[v] == kUnreachable ? g.NumVertices() : dist[v];
    }
  }
  std::vector<VertexId> vertices(g.NumVertices());
  std::iota(vertices.begin(), vertices.end(), 0);
  std::partial_sort(vertices.begin(), vertices.begin() + count,
                    vertices.end(), [&](VertexId a, VertexId b) {
                      return total[a] != total[b] ? total[a] < total[b]
                                                  : a < b;
                    });
  vertices.resize(count);
  return vertices;
}

}  // namespace

std::vector<VertexId> SelectLandmarks(const Graph& g, uint32_t count,
                                      LandmarkStrategy strategy,
                                      uint64_t seed) {
  const VertexId n = g.NumVertices();
  if (count > n) count = n;
  std::vector<VertexId> vertices(n);
  std::iota(vertices.begin(), vertices.end(), 0);

  switch (strategy) {
    case LandmarkStrategy::kHighestDegree:
      std::partial_sort(vertices.begin(), vertices.begin() + count,
                        vertices.end(), [&g](VertexId a, VertexId b) {
                          const uint32_t da = g.Degree(a);
                          const uint32_t db = g.Degree(b);
                          return da != db ? da > db : a < b;
                        });
      break;
    case LandmarkStrategy::kRandom: {
      Rng rng(seed);
      // Partial Fisher-Yates: draw `count` distinct vertices.
      for (uint32_t i = 0; i < count; ++i) {
        const size_t j =
            i + static_cast<size_t>(rng.UniformInt(n - i));
        std::swap(vertices[i], vertices[j]);
      }
      break;
    }
    case LandmarkStrategy::kDegreeWeightedRandom: {
      Rng rng(seed);
      return DegreeWeightedSample(g, count, &rng);
    }
    case LandmarkStrategy::kApproxCloseness:
      if (n == 0) return {};
      return ApproxClosenessSelect(g, count, seed);
  }
  vertices.resize(count);
  return vertices;
}

const char* LandmarkStrategyName(LandmarkStrategy strategy) {
  switch (strategy) {
    case LandmarkStrategy::kHighestDegree:
      return "degree";
    case LandmarkStrategy::kRandom:
      return "random";
    case LandmarkStrategy::kDegreeWeightedRandom:
      return "deg-weighted";
    case LandmarkStrategy::kApproxCloseness:
      return "closeness";
  }
  return "unknown";
}

}  // namespace qbs

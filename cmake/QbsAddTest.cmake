# qbs_add_test(<name>
#   SOURCES <files...>
#   [LABELS <labels...>]          # ctest labels: unit / integration / stress
#   [LIBS <targets...>]           # extra link targets besides qbs_core
#   [TIMEOUT <seconds>]           # default 120
#   [ARGS <args...>])             # extra argv passed to the test binary
#
# Builds one GoogleTest binary and registers it with ctest. Modeled on
# Katana's AddUnitTest.cmake: one function call per test file keeps the
# per-directory lists declarative.
function(qbs_add_test name)
  cmake_parse_arguments(ARG "" "TIMEOUT" "SOURCES;LABELS;LIBS;ARGS" ${ARGN})

  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "qbs_add_test(${name}): SOURCES is required")
  endif()
  if(NOT ARG_TIMEOUT)
    set(ARG_TIMEOUT 120)
  endif()

  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name} PRIVATE qbs_core qbs_warnings
                                        GTest::gtest_main ${ARG_LIBS})
  target_include_directories(${name} PRIVATE "${PROJECT_SOURCE_DIR}")
  # Checked-in binary fixtures (e.g. the v1 index file serialization_test
  # proves the current loader still reads).
  target_compile_definitions(
    ${name} PRIVATE QBS_TEST_DATA_DIR="${PROJECT_SOURCE_DIR}/tests/data")

  add_test(NAME ${name} COMMAND ${name} ${ARG_ARGS})
  set_tests_properties(${name} PROPERTIES TIMEOUT ${ARG_TIMEOUT})
  if(ARG_LABELS)
    set_tests_properties(${name} PROPERTIES LABELS "${ARG_LABELS}")
  endif()
endfunction()

# Build-type plumbing: default to Release, and add sanitizer build types
# (ASan = address+undefined, UBSan = undefined only, TSan = thread) plus a
# Coverage type (gcov instrumentation for the CI coverage job) so that
# `cmake -DCMAKE_BUILD_TYPE=ASan` or the matching preset just works.

get_property(_qbs_multi_config GLOBAL PROPERTY GENERATOR_IS_MULTI_CONFIG)

if(NOT _qbs_multi_config)
  if(NOT CMAKE_BUILD_TYPE)
    message(STATUS "No build type selected, defaulting to Release")
    set(CMAKE_BUILD_TYPE
        "Release"
        CACHE STRING "Build type" FORCE)
  endif()
  set_property(
    CACHE CMAKE_BUILD_TYPE
    PROPERTY STRINGS
             "Debug;Release;RelWithDebInfo;MinSizeRel;ASan;UBSan;TSan;Coverage"
  )
endif()

set(_qbs_asan_flags
    "-O1 -g -fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
)
set(_qbs_ubsan_flags "-O1 -g -fsanitize=undefined -fno-sanitize-recover=all")
set(_qbs_tsan_flags "-O1 -g -fsanitize=thread")
# gcov line coverage; -O0 keeps line attribution exact, and the tests are
# fast enough that the unit label stays in CI budget uninstrumented-speed.
set(_qbs_coverage_flags "-O0 -g --coverage")

foreach(_cfg ASAN UBSAN TSAN COVERAGE)
  string(TOLOWER ${_cfg} _cfg_lower)
  set(CMAKE_CXX_FLAGS_${_cfg}
      "${_qbs_${_cfg_lower}_flags}"
      CACHE STRING "C++ flags for ${_cfg} builds" FORCE)
  set(CMAKE_EXE_LINKER_FLAGS_${_cfg}
      "${_qbs_${_cfg_lower}_flags}"
      CACHE STRING "Linker flags for ${_cfg} builds" FORCE)
  set(CMAKE_SHARED_LINKER_FLAGS_${_cfg}
      "${_qbs_${_cfg_lower}_flags}"
      CACHE STRING "Shared linker flags for ${_cfg} builds" FORCE)
endforeach()

// Quickstart: build a graph, build a QbS index, answer a
// shortest-path-graph query, and inspect the result.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/qbs_index.h"
#include "gen/generators.h"
#include "graph/spg.h"
#include "workload/query_workload.h"

int main() {
  // 1. A graph. Any undirected simple graph works; here a scale-free
  //    network of 50k vertices. Real edge lists load via ReadEdgeList().
  const qbs::Graph graph = qbs::BarabasiAlbert(50000, 3, /*seed=*/7);
  std::printf("graph: %u vertices, %llu edges\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // 2. Offline phase: construct the labelling scheme (20 highest-degree
  //    landmarks, parallel construction = the paper's QbS-P).
  qbs::QbsOptions options;
  options.num_landmarks = 20;
  options.num_threads = 0;  // all hardware threads
  qbs::QbsIndex index = qbs::QbsIndex::Build(graph, options);
  std::printf("index: built in %.3fs (+%.3fs for Delta), labels %.2f MB\n",
              index.timings().labeling_seconds,
              index.timings().delta_seconds,
              static_cast<double>(index.LabelingSizeBytes()) / (1 << 20));

  // 3. Online phase: SPG queries.
  const auto pairs = qbs::SampleQueryPairs(graph, 3, /*seed=*/99);
  for (const auto& [u, v] : pairs) {
    qbs::SearchStats stats;
    const qbs::ShortestPathGraph spg = index.Query(u, v, &stats);
    std::printf(
        "\nSPG(%u, %u): distance %u, %zu vertices, %zu edges, "
        "%llu shortest paths\n",
        u, v, spg.distance, spg.Vertices().size(), spg.edges.size(),
        static_cast<unsigned long long>(spg.CountShortestPaths()));
    std::printf("  sketch bound d_top=%u, edges scanned: %llu "
                "(sparsification skipped %llu)\n",
                stats.d_top,
                static_cast<unsigned long long>(stats.TotalEdgesScanned()),
                static_cast<unsigned long long>(
                    stats.landmark_edges_skipped));
    std::printf("  first edges:");
    for (size_t i = 0; i < spg.edges.size() && i < 8; ++i) {
      std::printf(" (%u,%u)", spg.edges[i].u, spg.edges[i].v);
    }
    std::printf("%s\n", spg.edges.size() > 8 ? " ..." : "");
  }
  return 0;
}

// Social-tie strength analysis — the paper's Figure 1 motivation.
//
// Two pairs of users at the same distance are indistinguishable by a
// point-to-point shortest path query, but their shortest path *graphs*
// reveal how strongly they are connected: many parallel shortest paths
// mean many independent social routes (strong structural tie); a single
// path means a fragile connection.
//
//   $ ./examples/social_tie_strength

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/qbs_index.h"
#include "workload/dataset_registry.h"
#include "workload/query_workload.h"

int main() {
  // A social-network stand-in (LiveJournal-like preferential attachment).
  const qbs::Graph graph =
      qbs::MakeDataset(qbs::DatasetByAbbrev("LJ"), /*scale=*/0.5);
  std::printf("social network: %u users, %llu friendships\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  qbs::QbsOptions options;
  options.num_threads = 0;
  qbs::QbsIndex index = qbs::QbsIndex::Build(graph, options);

  // Collect pairs at the same distance and compare their tie structure.
  struct Tie {
    qbs::VertexId u, v;
    uint64_t paths;
    size_t spg_vertices;
    size_t critical;  // vertices every shortest path depends on
  };
  constexpr uint32_t kTargetDistance = 4;
  std::vector<Tie> ties;
  for (const auto& [u, v] : qbs::SampleQueryPairs(graph, 4000, 11)) {
    const auto spg = index.Query(u, v);
    if (spg.distance != kTargetDistance) continue;
    ties.push_back(Tie{u, v, spg.CountShortestPaths(),
                       spg.Vertices().size(),
                       spg.CriticalVertices().size()});
    if (ties.size() >= 200) break;
  }
  std::sort(ties.begin(), ties.end(),
            [](const Tie& a, const Tie& b) { return a.paths > b.paths; });

  std::printf("\nAll pairs below are at distance %u — identical for a "
              "point-to-point query —\nyet their shortest path graphs "
              "differ sharply:\n\n",
              kTargetDistance);
  std::printf("%-8s %-8s %-14s %-12s %-18s %s\n", "userA", "userB",
              "#short.paths", "SPG size", "critical brokers", "tie");
  auto print = [](const Tie& t) {
    const char* label = t.paths >= 10  ? "strong (redundant)"
                        : t.paths >= 3 ? "moderate"
                                       : "fragile";
    std::printf("%-8u %-8u %-14llu %-12zu %-18zu %s\n", t.u, t.v,
                static_cast<unsigned long long>(t.paths), t.spg_vertices,
                t.critical, label);
  };
  const size_t show = std::min<size_t>(5, ties.size());
  for (size_t i = 0; i < show; ++i) print(ties[i]);
  std::printf("   ...\n");
  for (size_t i = ties.size() >= show ? ties.size() - show : 0;
       i < ties.size(); ++i) {
    print(ties[i]);
  }

  // Aggregate: strong ties have no critical brokers; fragile ties depend
  // on a few cut vertices (the interdiction example explores this).
  uint64_t strong_no_broker = 0;
  uint64_t strong = 0;
  uint64_t fragile_with_broker = 0;
  uint64_t fragile = 0;
  for (const Tie& t : ties) {
    if (t.paths >= 10) {
      ++strong;
      if (t.critical == 0) ++strong_no_broker;
    } else if (t.paths <= 2) {
      ++fragile;
      if (t.critical > 0) ++fragile_with_broker;
    }
  }
  if (strong > 0 && fragile > 0) {
    std::printf("\n%llu/%llu strong ties need no single broker; "
                "%llu/%llu fragile ties depend on at least one.\n",
                static_cast<unsigned long long>(strong_no_broker),
                static_cast<unsigned long long>(strong),
                static_cast<unsigned long long>(fragile_with_broker),
                static_cast<unsigned long long>(fragile));
  }
  return 0;
}

// Shortest Path Network Interdiction — one of the problems the paper's
// introduction motivates: find the critical vertices and edges whose
// removal destroys ALL shortest paths between two endpoints (e.g. to harden
// infrastructure against attacks, or to place monitors on unavoidable
// routes).
//
// The shortest path graph makes this a local computation: a vertex/edge is
// critical iff every shortest path passes through it, which path counting
// over the SPG DAG answers exactly.
//
//   $ ./examples/network_interdiction

#include <cstdio>

#include "baselines/bfs_oracle.h"
#include "core/qbs_index.h"
#include "graph/bfs.h"
#include "workload/dataset_registry.h"
#include "workload/query_workload.h"

namespace {

// Re-checks criticality by actually deleting the vertex and measuring the
// new distance (demonstration-only; the SPG answer needs no recomputation).
uint32_t DistanceWithout(const qbs::Graph& g, qbs::VertexId removed,
                         qbs::VertexId u, qbs::VertexId v) {
  std::vector<qbs::Edge> edges;
  for (const qbs::Edge& e : g.EdgeList()) {
    if (e.u != removed && e.v != removed) edges.push_back(e);
  }
  const qbs::Graph h = qbs::Graph::FromEdges(g.NumVertices(), edges);
  return qbs::BiBfsDistance(h, u, v);
}

}  // namespace

int main() {
  // A computer-network stand-in (Skitter-like internet topology).
  const qbs::Graph graph =
      qbs::MakeDataset(qbs::DatasetByAbbrev("SK"), /*scale=*/0.5);
  std::printf("network: %u routers, %llu links\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  qbs::QbsOptions options;
  options.num_threads = 0;
  qbs::QbsIndex index = qbs::QbsIndex::Build(graph, options);

  // Scan for endpoint pairs whose communication is interdictable: some
  // vertex lies on ALL of their shortest paths.
  std::printf("\n%-8s %-8s %-6s %-8s %-10s %-10s %s\n", "src", "dst", "dist",
              "#paths", "critical", "cut-links", "verified");
  int shown = 0;
  for (const auto& [u, v] : qbs::SampleQueryPairs(graph, 2000, 5)) {
    const auto spg = index.Query(u, v);
    if (!spg.Connected() || spg.distance < 3) continue;
    const auto critical = spg.CriticalVertices();
    const auto cut_links = spg.CriticalEdges();
    if (critical.empty() && cut_links.empty()) continue;

    // Independent verification: removing a critical vertex must strictly
    // increase the distance (or disconnect the pair).
    bool verified = true;
    if (!critical.empty()) {
      const uint32_t after = DistanceWithout(graph, critical[0], u, v);
      verified = after > spg.distance;
    }
    std::printf("%-8u %-8u %-6u %-8llu %-10zu %-10zu %s\n", u, v,
                spg.distance,
                static_cast<unsigned long long>(spg.CountShortestPaths()),
                critical.size(), cut_links.size(),
                verified ? "yes" : "NO");
    if (++shown == 10) break;
  }

  if (shown == 0) {
    std::printf("(no interdictable pairs in the sample — the network is "
                "highly redundant)\n");
  } else {
    std::printf(
        "\nEach row lists vertices/links lying on every shortest path of "
        "the pair;\nremoving any one forces the pair onto strictly longer "
        "routes (verified above\nby deletion + re-search). Computing this "
        "from the SPG is exact — unlike\nsampling one shortest path, which "
        "misses alternative routes.\n");
  }
  return 0;
}

// Shortest Path Rerouting — another problem from the paper's introduction:
// given two shortest paths between the same endpoints, find a step-by-step
// reconfiguration from one to the other where consecutive paths differ in
// exactly one vertex (each step keeps a valid shortest path, e.g. for
// migrating live traffic without ever leaving an optimal route).
//
// The shortest path graph is exactly the search space: every shortest path
// is a u→v chain in the SPG DAG, so path enumeration and the
// reconfiguration BFS both run on the (small) SPG instead of the full
// graph.
//
//   $ ./examples/route_rerouting

#include <algorithm>
#include <cstdio>
#include <map>
#include <queue>
#include <vector>

#include "core/qbs_index.h"
#include "graph/bfs.h"
#include "workload/dataset_registry.h"
#include "workload/query_workload.h"

namespace {

using Path = std::vector<qbs::VertexId>;

// Enumerates shortest paths (as vertex sequences) from the SPG by DFS over
// its level DAG, up to `limit`.
std::vector<Path> EnumeratePaths(const qbs::ShortestPathGraph& spg,
                                 size_t limit) {
  std::map<qbs::VertexId, std::vector<qbs::VertexId>> forward;
  std::map<qbs::VertexId, uint32_t> level;
  // Levels via BFS from u inside the SPG.
  std::map<qbs::VertexId, std::vector<qbs::VertexId>> adj;
  for (const qbs::Edge& e : spg.edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::queue<qbs::VertexId> queue;
  queue.push(spg.u);
  level[spg.u] = 0;
  while (!queue.empty()) {
    const qbs::VertexId x = queue.front();
    queue.pop();
    for (qbs::VertexId y : adj[x]) {
      if (!level.contains(y)) {
        level[y] = level[x] + 1;
        queue.push(y);
      }
      if (level[y] == level[x] + 1) forward[x].push_back(y);
    }
  }
  std::vector<Path> paths;
  Path current{spg.u};
  // Iterative DFS with explicit branch stack.
  struct Frame {
    qbs::VertexId vertex;
    size_t next_child = 0;
  };
  std::vector<Frame> stack{{spg.u, 0}};
  while (!stack.empty() && paths.size() < limit) {
    Frame& frame = stack.back();
    if (frame.vertex == spg.v) {
      paths.push_back(current);
      stack.pop_back();
      current.pop_back();
      continue;
    }
    const auto& children = forward[frame.vertex];
    if (frame.next_child >= children.size()) {
      stack.pop_back();
      current.pop_back();
      continue;
    }
    const qbs::VertexId child = children[frame.next_child++];
    stack.push_back({child, 0});
    current.push_back(child);
  }
  return paths;
}

// Paths are adjacent in the reconfiguration graph iff they differ in
// exactly one vertex (same length, aligned positions).
bool DifferInOneVertex(const Path& a, const Path& b) {
  if (a.size() != b.size()) return false;
  int diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i] && ++diff > 1) return false;
  }
  return diff == 1;
}

void PrintPath(const Path& p) {
  for (size_t i = 0; i < p.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : "-", p[i]);
  }
}

}  // namespace

int main() {
  const qbs::Graph graph =
      qbs::MakeDataset(qbs::DatasetByAbbrev("DB"), /*scale=*/0.5);
  std::printf("collaboration network: %u vertices, %llu edges\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  qbs::QbsOptions options;
  options.num_threads = 0;
  qbs::QbsIndex index = qbs::QbsIndex::Build(graph, options);

  // Find a pair with several shortest paths and try to reroute between the
  // two most different ones.
  for (const auto& [u, v] : qbs::SampleQueryPairs(graph, 3000, 21)) {
    const auto spg = index.Query(u, v);
    const uint64_t count = spg.CountShortestPaths();
    if (spg.distance < 3 || count < 3 || count > 64) continue;

    const auto paths = EnumeratePaths(spg, 64);
    // BFS over the reconfiguration graph (paths adjacent iff they differ in
    // exactly one vertex), starting from paths[0]; reroute to the farthest
    // reachable path.
    std::vector<int> prev(paths.size(), -1);
    std::vector<bool> seen(paths.size(), false);
    std::queue<size_t> queue;
    queue.push(0);
    seen[0] = true;
    size_t target = 0;
    while (!queue.empty()) {
      const size_t i = queue.front();
      queue.pop();
      target = i;  // BFS order: the last dequeued path is a farthest one
      for (size_t j = 0; j < paths.size(); ++j) {
        if (!seen[j] && DifferInOneVertex(paths[i], paths[j])) {
          seen[j] = true;
          prev[j] = static_cast<int>(i);
          queue.push(j);
        }
      }
    }

    std::printf("\nSPG(%u, %u): distance %u, %llu shortest paths\n", u, v,
                spg.distance, static_cast<unsigned long long>(count));
    if (target == 0) {
      std::printf("  paths[0] has no single-vertex-swap neighbour — the "
                  "reconfiguration graph is\n  disconnected here (a known "
                  "phenomenon in rerouting); trying another pair.\n");
      continue;
    }
    std::vector<size_t> sequence;
    for (int i = static_cast<int>(target); i != -1; i = prev[i]) {
      sequence.push_back(static_cast<size_t>(i));
    }
    std::reverse(sequence.begin(), sequence.end());
    std::printf("  rerouting sequence (%zu steps, each swaps one vertex, "
                "every step stays shortest):\n",
                sequence.size() - 1);
    for (size_t step = 0; step < sequence.size(); ++step) {
      std::printf("   %2zu: ", step);
      PrintPath(paths[sequence[step]]);
      std::printf("\n");
    }
    return 0;
  }
  std::printf("no suitable pair found in the sample\n");
  return 0;
}

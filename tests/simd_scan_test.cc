// Differential-testing harness for the SIMD label-scan kernels
// (core/label_scan.h): every compiled kernel must produce BIT-IDENTICAL
// results to the scalar reference — aggregates, gate words, candidate
// lists, lower-bound witnesses, and the final LabelBound — on generated
// label-row families chosen to hit the kernels' edge lanes: all-absent
// rows, single-present lanes, strides straddling the 16-lane block
// boundary (|R| in {1, 7, 8, 31, 32, 33, 64, 257}), and saturating
// distances near the kInfDist sentinel. Also covers the runtime dispatch
// (CPUID x QBS_FORCE_SCALAR_SCAN), the batched kernel, and the row
// padding/alignment invariant through build and serialization.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/label_scan.h"
#include "core/labeling.h"
#include "core/landmark_selection.h"
#include "core/qbs_index.h"
#include "core/serialization.h"
#include "core/sketch.h"
#include "gen/generators.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

// Restores the process-wide active kernel on scope exit, so tests that
// flip it can never leak the override into later tests.
class ScopedScanKernel {
 public:
  explicit ScopedScanKernel(ScanKernel kernel)
      : saved_(ActiveScanKernel()) {
    SetActiveScanKernel(kernel);
  }
  ~ScopedScanKernel() { SetActiveScanKernel(saved_); }
  ScopedScanKernel(const ScopedScanKernel&) = delete;
  ScopedScanKernel& operator=(const ScopedScanKernel&) = delete;

 private:
  ScanKernel saved_;
};

// Label-row families the generator draws from. Values stay in
// [1, 0xFFFE]: a stored label of a non-landmark vertex is never 0 (that
// would make the vertex the landmark itself), and the scalar reference's
// unchecked -2 refinement assumes sums >= 2.
enum class RowFamily {
  kAllUnreachable,   // every lane absent
  kSingleLandmark,   // exactly one present lane
  kSparse,           // ~30% present, small distances
  kDenseSmall,       // every lane present, small distances
  kRandomWide,       // ~70% present, values across the full range
  kSaturating,       // present values within 16 of the sentinel
};

constexpr RowFamily kFamilies[] = {
    RowFamily::kAllUnreachable, RowFamily::kSingleLandmark,
    RowFamily::kSparse,         RowFamily::kDenseSmall,
    RowFamily::kRandomWide,     RowFamily::kSaturating,
};

void FillRow(PathLabeling* labeling, VertexId t, RowFamily family,
             std::mt19937_64* rng) {
  const uint32_t k = labeling->num_landmarks();
  std::uniform_int_distribution<uint32_t> small(1, 40);
  std::uniform_int_distribution<uint32_t> wide(1, 0xFFFE);
  std::uniform_int_distribution<uint32_t> sat(0xFFF0, 0xFFFE);
  std::uniform_int_distribution<uint32_t> pct(0, 99);
  switch (family) {
    case RowFamily::kAllUnreachable:
      break;  // rows start all-kInfDist
    case RowFamily::kSingleLandmark:
      labeling->Set(t, static_cast<LandmarkIndex>((*rng)() % k),
                    static_cast<DistT>(small(*rng)));
      break;
    case RowFamily::kSparse:
      for (LandmarkIndex i = 0; i < k; ++i) {
        if (pct(*rng) < 30) labeling->Set(t, i, static_cast<DistT>(small(*rng)));
      }
      break;
    case RowFamily::kDenseSmall:
      for (LandmarkIndex i = 0; i < k; ++i) {
        labeling->Set(t, i, static_cast<DistT>(small(*rng)));
      }
      break;
    case RowFamily::kRandomWide:
      for (LandmarkIndex i = 0; i < k; ++i) {
        if (pct(*rng) < 70) labeling->Set(t, i, static_cast<DistT>(wide(*rng)));
      }
      break;
    case RowFamily::kSaturating:
      for (LandmarkIndex i = 0; i < k; ++i) {
        if (pct(*rng) < 80) labeling->Set(t, i, static_cast<DistT>(sat(*rng)));
      }
      break;
  }
  if (labeling->has_bp_masks()) {
    for (LandmarkIndex i = 0; i < k; ++i) {
      // ~25% bit density; occasionally all-zero (the "masks never built"
      // degradation the refinement must tolerate).
      BpMask m;
      if (pct(*rng) >= 10) {
        m.s_minus = (*rng)() & (*rng)();
        m.s_zero = (*rng)() & (*rng)();
      }
      labeling->SetBpMask(t, i, m);
    }
  }
}

// A labelling whose first k vertices are the landmarks and whose
// remaining `extra` vertices carry synthetic rows (filled by the caller).
PathLabeling MakeSyntheticLabeling(uint32_t k, VertexId extra,
                                   bool with_masks) {
  std::vector<VertexId> landmarks(k);
  for (uint32_t i = 0; i < k; ++i) landmarks[i] = i;
  PathLabeling labeling(k + extra, std::move(landmarks));
  if (with_masks) labeling.EnableBpMasks();
  return labeling;
}

// The pre-kernel scalar loops, kept alive here as independent references
// so a bug introduced into the scalar ScanOps cannot silently propagate
// into every comparison.
std::vector<SketchAnchor> ReferenceCandidates(const PathLabeling& labeling,
                                              VertexId t) {
  std::vector<SketchAnchor> out;
  for (LandmarkIndex i = 0; i < labeling.num_landmarks(); ++i) {
    const DistT d = labeling.Get(t, i);
    if (d != kInfDist) out.push_back(SketchAnchor{i, d});
  }
  return out;
}

bool ReferenceLowerExceeds(const PathLabeling& labeling, VertexId x,
                           VertexId other, uint32_t threshold) {
  for (LandmarkIndex i = 0; i < labeling.num_landmarks(); ++i) {
    const DistT dx = labeling.Get(x, i);
    if (dx == kInfDist) continue;
    const DistT dother = labeling.Get(other, i);
    if (dother == kInfDist) continue;
    const uint32_t base = dx > dother ? dx - dother : dother - dx;
    if (base > threshold) return true;
    if (base == threshold &&
        BpMaskLowerLift(labeling.GetBpMask(x, i),
                        labeling.GetBpMask(other, i), dx, dother)) {
      return true;
    }
  }
  return false;
}

LabelBound ReferenceBound(const PathLabeling& labeling, VertexId u,
                          VertexId v, uint32_t refine_cutoff) {
  return ComputeLabelBoundFromCandidates(labeling, ReferenceCandidates(labeling, u),
                                         ReferenceCandidates(labeling, v), u, v,
                                         refine_cutoff);
}

std::string KernelName(ScanKernel kernel) {
  return ScanOpsFor(kernel).name;
}

// --- Dispatch. ---

TEST(SimdScanDispatch, ResolveHonorsCpuAndForceEnv) {
  // No AVX2 on the CPU: scalar, regardless of the env value.
  EXPECT_EQ(ResolveScanKernel(false, nullptr), ScanKernel::kScalar);
  EXPECT_EQ(ResolveScanKernel(false, "1"), ScanKernel::kScalar);
  EXPECT_EQ(ResolveScanKernel(false, "0"), ScanKernel::kScalar);
  // AVX2 present and not forced off: the vector kernel when compiled.
  const ScanKernel preferred = QBS_HAVE_AVX2_KERNELS != 0
                                   ? ScanKernel::kAvx2
                                   : ScanKernel::kScalar;
  EXPECT_EQ(ResolveScanKernel(true, nullptr), preferred);
  // Unset, empty, and literal "0" all mean "not forced".
  EXPECT_EQ(ResolveScanKernel(true, ""), preferred);
  EXPECT_EQ(ResolveScanKernel(true, "0"), preferred);
  // Any other non-empty value forces scalar.
  EXPECT_EQ(ResolveScanKernel(true, "1"), ScanKernel::kScalar);
  EXPECT_EQ(ResolveScanKernel(true, "true"), ScanKernel::kScalar);
  EXPECT_EQ(ResolveScanKernel(true, "00"), ScanKernel::kScalar);
}

TEST(SimdScanDispatch, ScanOpsForFallsBackToScalar) {
  EXPECT_EQ(ScanOpsFor(ScanKernel::kScalar).kernel, ScanKernel::kScalar);
  EXPECT_STREQ(ScanOpsFor(ScanKernel::kScalar).name, "scalar");
  // Requesting AVX2 yields AVX2 only where the CPU can run it; otherwise
  // the scalar table (never a crash, never a null).
  const ScanOps& avx = ScanOpsFor(ScanKernel::kAvx2);
  if (QBS_HAVE_AVX2_KERNELS != 0 && CpuHasAvx2()) {
    EXPECT_EQ(avx.kernel, ScanKernel::kAvx2);
  } else {
    EXPECT_EQ(avx.kernel, ScanKernel::kScalar);
  }
}

TEST(SimdScanDispatch, SupportedKernelsAlwaysIncludeScalar) {
  const auto kernels = SupportedScanKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), ScanKernel::kScalar);
  for (const ScanKernel kernel : kernels) {
    EXPECT_NE(ScanOpsFor(kernel).row_bound, nullptr);
    EXPECT_NE(ScanOpsFor(kernel).row_bound_batch, nullptr);
    EXPECT_NE(ScanOpsFor(kernel).row_candidates, nullptr);
    EXPECT_NE(ScanOpsFor(kernel).lower_exceeds, nullptr);
  }
}

TEST(SimdScanDispatch, SetActiveKernelOverridesAndRestores) {
  const ScanKernel before = ActiveScanKernel();
  {
    ScopedScanKernel force(ScanKernel::kScalar);
    EXPECT_EQ(ActiveScanKernel(), ScanKernel::kScalar);
    EXPECT_STREQ(ActiveScanOps().name, "scalar");
  }
  EXPECT_EQ(ActiveScanKernel(), before);
}

// The forced-scalar index option and the scalar fallback answer queries
// correctly even when a faster kernel is available (this is what a
// non-AVX2 machine runs unconditionally).
TEST(SimdScanDispatch, ScalarFallbackServesIdenticalQueries) {
  Graph g = BarabasiAlbert(300, 3, 7);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex fast = QbsIndex::Build(g, options);
  std::vector<QueryPair> pairs = SampleQueryPairs(g, 60, 7);
  std::vector<ShortestPathGraph> expected;
  expected.reserve(pairs.size());
  for (const auto& [u, v] : pairs) expected.push_back(fast.Query(u, v));

  QbsOptions scalar_options = options;
  scalar_options.force_scalar_scan = true;
  QbsIndex scalar = QbsIndex::Build(g, scalar_options);
  EXPECT_EQ(ActiveScanKernel(), ScanKernel::kScalar);
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(scalar.Query(pairs[i].u, pairs[i].v), expected[i])
        << "u=" << pairs[i].u << " v=" << pairs[i].v;
  }
  // Restore the dispatch-resolved kernel (honoring QBS_FORCE_SCALAR_SCAN,
  // so the forced-scalar CI leg stays forced) for the rest of the suite.
  SetActiveScanKernel(
      ResolveScanKernel(CpuHasAvx2(), std::getenv("QBS_FORCE_SCALAR_SCAN")));
}

// --- Differential bit-identity over generated row families. ---

class SimdScanDifferential : public ::testing::TestWithParam<uint32_t> {};

// The full wrapper path: ComputeLabelBoundRows must equal the candidate-
// merge reference for every kernel, family pair, cutoff, and mask state.
TEST_P(SimdScanDifferential, RowBoundMatchesReferenceEverywhere) {
  const uint32_t k = GetParam();
  const auto kernels = SupportedScanKernels();
  const uint32_t cutoffs[] = {0, 2, 5, kUnreachable - 1, kUnreachable};
  for (const bool with_masks : {false, true}) {
    for (const RowFamily fu : kFamilies) {
      for (const RowFamily fv : kFamilies) {
        for (uint64_t seed = 1; seed <= 3; ++seed) {
          std::mt19937_64 rng(seed * 7919 + k * 31 +
                              static_cast<uint64_t>(fu) * 131 +
                              static_cast<uint64_t>(fv) * 1031 + with_masks);
          PathLabeling labeling = MakeSyntheticLabeling(k, 2, with_masks);
          const VertexId u = k;
          const VertexId v = k + 1;
          FillRow(&labeling, u, fu, &rng);
          FillRow(&labeling, v, fv, &rng);
          for (const uint32_t cutoff : cutoffs) {
            const LabelBound want = ReferenceBound(labeling, u, v, cutoff);
            for (const ScanKernel kernel : kernels) {
              const LabelBound got = ComputeLabelBoundRows(
                  labeling, u, v, cutoff, ScanOpsFor(kernel));
              ASSERT_EQ(got.lower, want.lower)
                  << KernelName(kernel) << " k=" << k << " seed=" << seed
                  << " fu=" << static_cast<int>(fu)
                  << " fv=" << static_cast<int>(fv) << " cutoff=" << cutoff
                  << " masks=" << with_masks;
              ASSERT_EQ(got.upper, want.upper)
                  << KernelName(kernel) << " k=" << k << " seed=" << seed
                  << " fu=" << static_cast<int>(fu)
                  << " fv=" << static_cast<int>(fv) << " cutoff=" << cutoff
                  << " masks=" << with_masks;
            }
          }
        }
      }
    }
  }
}

// One level deeper than the wrapper: the raw kernel outputs — RowAgg
// fields AND the refine-gate bitmask — must match the scalar kernel bit
// for bit (the gate over-approximation is part of the contract: scalar
// and vector kernels share the same saturating formula).
TEST_P(SimdScanDifferential, RawAggregatesAndGateWordsBitIdentical) {
  const uint32_t k = GetParam();
  const auto kernels = SupportedScanKernels();
  const uint16_t gate_limits[] = {0, 4, 41, 0xFFF0, 0xFFFF};
  for (const RowFamily fu : kFamilies) {
    for (const RowFamily fv : kFamilies) {
      std::mt19937_64 rng(k * 97 + static_cast<uint64_t>(fu) * 11 +
                          static_cast<uint64_t>(fv));
      PathLabeling labeling = MakeSyntheticLabeling(k, 2, /*with_masks=*/true);
      const VertexId u = k;
      const VertexId v = k + 1;
      FillRow(&labeling, u, fu, &rng);
      FillRow(&labeling, v, fv, &rng);
      const uint32_t lanes = labeling.row_stride();
      const size_t nwords = (lanes + 63) / 64;
      for (const uint16_t gate_limit : gate_limits) {
        RowAgg want_agg;
        std::vector<uint64_t> want_words(nwords, 0);
        ScalarScanOps().row_bound(labeling.Row(u), labeling.Row(v), lanes,
                                  gate_limit, &want_agg, want_words.data());
        for (const ScanKernel kernel : kernels) {
          RowAgg agg;
          std::vector<uint64_t> words(nwords, 0);
          ScanOpsFor(kernel).row_bound(labeling.Row(u), labeling.Row(v),
                                       lanes, gate_limit, &agg, words.data());
          ASSERT_EQ(agg.any, want_agg.any) << KernelName(kernel) << " k=" << k;
          ASSERT_EQ(agg.base_max, want_agg.base_max)
              << KernelName(kernel) << " k=" << k << " gate=" << gate_limit;
          ASSERT_EQ(agg.sum_min, want_agg.sum_min)
              << KernelName(kernel) << " k=" << k << " gate=" << gate_limit;
          ASSERT_EQ(words, want_words)
              << KernelName(kernel) << " k=" << k << " gate=" << gate_limit;
          // The no-gate variant (null gate_words) must agree on the aggs.
          RowAgg agg_nogate;
          ScanOpsFor(kernel).row_bound(labeling.Row(u), labeling.Row(v),
                                       lanes, gate_limit, &agg_nogate,
                                       nullptr);
          ASSERT_EQ(agg_nogate.base_max, want_agg.base_max);
          ASSERT_EQ(agg_nogate.sum_min, want_agg.sum_min);
          ASSERT_EQ(agg_nogate.any, want_agg.any);
        }
      }
    }
  }
}

TEST_P(SimdScanDifferential, CandidateExtractionBitIdentical) {
  const uint32_t k = GetParam();
  const auto kernels = SupportedScanKernels();
  for (const RowFamily family : kFamilies) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      std::mt19937_64 rng(seed * 131 + k + static_cast<uint64_t>(family));
      PathLabeling labeling =
          MakeSyntheticLabeling(k, 1, /*with_masks=*/false);
      const VertexId t = k;
      FillRow(&labeling, t, family, &rng);
      const std::vector<SketchAnchor> want = ReferenceCandidates(labeling, t);
      for (const ScanKernel kernel : kernels) {
        std::vector<SketchAnchor> got;
        ScanOpsFor(kernel).row_candidates(labeling.Row(t),
                                          labeling.row_stride(), &got);
        ASSERT_EQ(got, want) << KernelName(kernel) << " k=" << k
                             << " family=" << static_cast<int>(family)
                             << " seed=" << seed;
      }
    }
  }
}

TEST_P(SimdScanDifferential, LowerExceedsWitnessesBitIdentical) {
  const uint32_t k = GetParam();
  const auto kernels = SupportedScanKernels();
  for (const RowFamily fu : kFamilies) {
    for (const RowFamily fv : kFamilies) {
      std::mt19937_64 rng(k * 1301 + static_cast<uint64_t>(fu) * 17 +
                          static_cast<uint64_t>(fv) * 257);
      PathLabeling labeling = MakeSyntheticLabeling(k, 2, /*with_masks=*/true);
      const VertexId u = k;
      const VertexId v = k + 1;
      FillRow(&labeling, u, fu, &rng);
      FillRow(&labeling, v, fv, &rng);
      // Thresholds bracketing the true base maximum, plus the extremes
      // (0xFFFE is the largest base two finite labels can produce, and
      // anything above must return false through the clamp).
      RowAgg agg;
      ScalarScanOps().row_bound(labeling.Row(u), labeling.Row(v),
                                labeling.row_stride(), 0, &agg, nullptr);
      std::vector<uint32_t> thresholds = {0, 1, 2, 3, 0xFFFE, 0xFFFF,
                                          kUnreachable};
      if (agg.any) {
        if (agg.base_max > 0) thresholds.push_back(agg.base_max - 1);
        thresholds.push_back(agg.base_max);
        thresholds.push_back(agg.base_max + 1);
      }
      for (const uint32_t threshold : thresholds) {
        const bool want =
            threshold > 0xFFFEu
                ? false
                : ReferenceLowerExceeds(labeling, u, v, threshold);
        for (const ScanKernel kernel : kernels) {
          ASSERT_EQ(RowLowerBoundExceeds(labeling, u, v, threshold,
                                         ScanOpsFor(kernel)),
                    want)
              << KernelName(kernel) << " k=" << k
              << " threshold=" << threshold << " fu=" << static_cast<int>(fu)
              << " fv=" << static_cast<int>(fv);
        }
      }
    }
  }
}

// The batched sweep must reproduce the single-pair kernel exactly, pair
// by pair, for every kernel — including groups smaller than kScanBatch
// and pairs drawn from different families within one group.
TEST_P(SimdScanDifferential, BatchedSweepMatchesSinglePairScans) {
  const uint32_t k = GetParam();
  const auto kernels = SupportedScanKernels();
  constexpr size_t kPairs = 11;  // one full group + a partial group
  for (const bool with_masks : {false, true}) {
    std::mt19937_64 rng(k * 733 + with_masks);
    PathLabeling labeling =
        MakeSyntheticLabeling(k, 2 * kPairs, with_masks);
    std::vector<VertexId> us(kPairs);
    std::vector<VertexId> vs(kPairs);
    constexpr size_t kNumFamilies = std::size(kFamilies);
    for (size_t p = 0; p < kPairs; ++p) {
      us[p] = static_cast<VertexId>(k + 2 * p);
      vs[p] = static_cast<VertexId>(k + 2 * p + 1);
      FillRow(&labeling, us[p], kFamilies[p % kNumFamilies], &rng);
      FillRow(&labeling, vs[p], kFamilies[(p + 3) % kNumFamilies], &rng);
    }
    for (const uint32_t cutoff : {uint32_t{2}, kUnreachable}) {
      for (const ScanKernel kernel : kernels) {
        std::vector<LabelBound> batch(kPairs);
        ComputeLabelBoundRowsBatch(labeling, us.data(), vs.data(), kPairs,
                                   cutoff, batch.data(), ScanOpsFor(kernel));
        for (size_t p = 0; p < kPairs; ++p) {
          const LabelBound single = ComputeLabelBoundRows(
              labeling, us[p], vs[p], cutoff, ScanOpsFor(kernel));
          ASSERT_EQ(batch[p].lower, single.lower)
              << KernelName(kernel) << " k=" << k << " pair=" << p
              << " cutoff=" << cutoff << " masks=" << with_masks;
          ASSERT_EQ(batch[p].upper, single.upper)
              << KernelName(kernel) << " k=" << k << " pair=" << p
              << " cutoff=" << cutoff << " masks=" << with_masks;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, SimdScanDifferential,
                         ::testing::Values(1u, 7u, 8u, 31u, 32u, 33u, 64u,
                                           257u));

// --- Batched bounds over a real index (landmark special cases mixed in).

TEST(SimdScanBatch, ComputeLabelBoundsBatchMatchesScalarCalls) {
  Graph g = BarabasiAlbert(400, 3, 19);
  QbsOptions options;
  options.num_landmarks = 12;
  QbsIndex index = QbsIndex::Build(g, options);
  const PathLabeling& labeling = index.labeling();
  const MetaGraph& meta = index.meta_graph();

  std::vector<VertexId> us;
  std::vector<VertexId> vs;
  for (const auto& [u, v] : SampleQueryPairs(g, 100, 19)) {
    if (u == v) continue;
    us.push_back(u);
    vs.push_back(v);
  }
  // Landmark-pair and one-landmark cases must flow through the scalar
  // special cases inside the batch.
  const auto& landmarks = index.landmarks();
  us.push_back(landmarks[0]);
  vs.push_back(landmarks[1]);
  VertexId non_landmark = 0;
  while (labeling.IsLandmark(non_landmark)) ++non_landmark;
  us.push_back(landmarks[2]);
  vs.push_back(non_landmark);
  ASSERT_FALSE(labeling.IsLandmark(vs.back()));

  for (const uint32_t cutoff : {uint32_t{2}, kUnreachable}) {
    std::vector<LabelBound> batch(us.size());
    ComputeLabelBoundsBatch(labeling, meta, us.data(), vs.data(), us.size(),
                            cutoff, batch.data());
    for (size_t i = 0; i < us.size(); ++i) {
      const LabelBound want =
          ComputeLabelBound(labeling, meta, us[i], vs[i], cutoff);
      ASSERT_EQ(batch[i].lower, want.lower)
          << "u=" << us[i] << " v=" << vs[i] << " cutoff=" << cutoff;
      ASSERT_EQ(batch[i].upper, want.upper)
          << "u=" << us[i] << " v=" << vs[i] << " cutoff=" << cutoff;
    }
  }
}

// --- The row padding/alignment invariant, through build and load. ---

void CheckPaddingInvariant(const PathLabeling& labeling) {
  const uint32_t k = labeling.num_landmarks();
  const uint32_t stride = labeling.row_stride();
  EXPECT_EQ(stride, (k + kLabelRowLaneAlign - 1) / kLabelRowLaneAlign *
                        kLabelRowLaneAlign);
  for (VertexId v = 0; v < labeling.num_vertices(); ++v) {
    const DistT* row = labeling.Row(v);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(row) % 32, 0u) << "v=" << v;
    for (uint32_t i = k; i < stride; ++i) {
      ASSERT_EQ(row[i], kInfDist) << "padding lane " << i << " of v=" << v;
    }
  }
  // Padding must not leak into the paper-facing size(L).
  EXPECT_EQ(labeling.SizeBytes(),
            static_cast<uint64_t>(labeling.num_vertices()) * k * sizeof(DistT));
}

TEST(SimdScanPadding, RowsPaddedAndAlignedAfterBuildAndLoad) {
  Graph g = BarabasiAlbert(200, 3, 5);
  // k = 20 -> stride 32: a non-trivial pad of 12 lanes.
  const auto landmarks =
      SelectLandmarks(g, 20, LandmarkStrategy::kHighestDegree, 5);
  const auto scheme = BuildLabelingScheme(g, landmarks);
  CheckPaddingInvariant(scheme.labeling);

  // The serialization round trip rebuilds the padded, aligned matrix via
  // the constructor + Set path: the invariant must survive a load.
  const std::string path =
      ::testing::TempDir() + "/simd_scan_padding_roundtrip.qbs";
  ASSERT_TRUE(SaveLabelingScheme(scheme, path));
  auto loaded = LoadLabelingScheme(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  CheckPaddingInvariant(loaded->labeling);
  ASSERT_EQ(loaded->labeling.num_landmarks(), scheme.labeling.num_landmarks());
  for (VertexId v = 0; v < scheme.labeling.num_vertices(); ++v) {
    for (LandmarkIndex i = 0; i < scheme.labeling.num_landmarks(); ++i) {
      ASSERT_EQ(loaded->labeling.Get(v, i), scheme.labeling.Get(v, i));
    }
  }
}

}  // namespace
}  // namespace qbs

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/components.h"

namespace qbs {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Graph g = ErdosRenyi(100, 250, 1);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 250u);
}

TEST(ErdosRenyiTest, DeterministicBySeed) {
  Graph a = ErdosRenyi(50, 100, 7);
  Graph b = ErdosRenyi(50, 100, 7);
  Graph c = ErdosRenyi(50, 100, 8);
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
  EXPECT_NE(a.EdgeList(), c.EdgeList());
}

TEST(BarabasiAlbertTest, ConnectedWithExpectedSize) {
  Graph g = BarabasiAlbert(500, 3, 2);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_TRUE(IsConnected(g));
  // Seed clique C(4,2)=6 edges + 3 per subsequent vertex.
  EXPECT_EQ(g.NumEdges(), 6u + 3u * (500 - 4));
}

TEST(BarabasiAlbertTest, ProducesHubs) {
  Graph g = BarabasiAlbert(2000, 2, 3);
  // Preferential attachment should give a max degree far above the mean.
  EXPECT_GT(g.MaxDegree(), 5 * static_cast<uint32_t>(g.AverageDegree()));
}

TEST(BarabasiAlbertTest, MinDegreeAtLeastM) {
  Graph g = BarabasiAlbert(300, 4, 5);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_GE(g.Degree(v), 4u);
  }
}

TEST(WattsStrogatzTest, NoRewireIsRingLattice) {
  Graph g = WattsStrogatz(20, 4, 0.0, 1);
  EXPECT_EQ(g.NumEdges(), 40u);
  for (VertexId v = 0; v < 20; ++v) {
    EXPECT_EQ(g.Degree(v), 4u);
  }
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(WattsStrogatzTest, RewiringKeepsDegreesNearUniform) {
  Graph g = WattsStrogatz(1000, 6, 0.3, 4);
  EXPECT_EQ(g.NumVertices(), 1000u);
  // Degrees stay concentrated (the Friendster-like regime): max degree is
  // a small multiple of the mean, unlike BA/R-MAT hubs.
  EXPECT_LT(g.MaxDegree(), 4 * static_cast<uint32_t>(g.AverageDegree()));
}

TEST(RMatTest, SizeAndSkew) {
  Graph g = RMat(12, 8, 0.57, 0.19, 0.19, 6);
  EXPECT_EQ(g.NumVertices(), 1u << 12);
  EXPECT_GT(g.NumEdges(), 0u);
  // Recursive quadrant bias concentrates edges on low-id vertices.
  EXPECT_GT(g.MaxDegree(), 10 * static_cast<uint32_t>(g.AverageDegree()));
}

TEST(RMatTest, DeterministicBySeed) {
  Graph a = RMat(10, 4, 0.57, 0.19, 0.19, 11);
  Graph b = RMat(10, 4, 0.57, 0.19, 0.19, 11);
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
}

TEST(StructuredGraphsTest, PathCycleGridStarCompleteTree) {
  EXPECT_EQ(PathGraph(5).NumEdges(), 4u);
  EXPECT_EQ(CycleGraph(5).NumEdges(), 5u);
  EXPECT_EQ(GridGraph(3, 4).NumEdges(), 3u * 3 + 4u * 2);
  EXPECT_EQ(StarGraph(6).NumEdges(), 5u);
  EXPECT_EQ(CompleteGraph(6).NumEdges(), 15u);
  EXPECT_EQ(CompleteBinaryTree(7).NumEdges(), 6u);
  EXPECT_TRUE(IsConnected(GridGraph(3, 4)));
  EXPECT_TRUE(IsConnected(CompleteBinaryTree(15)));
}

TEST(StructuredGraphsTest, SingleVertexEdgeCases) {
  EXPECT_EQ(PathGraph(1).NumVertices(), 1u);
  EXPECT_EQ(PathGraph(1).NumEdges(), 0u);
  EXPECT_EQ(StarGraph(1).NumEdges(), 0u);
  EXPECT_EQ(CompleteGraph(1).NumEdges(), 0u);
}

// Property sweep: all generators produce simple graphs (no self loops or
// parallel edges — guaranteed by Graph::FromEdges, checked end to end).
class GeneratorSimplicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSimplicity, AllFamiliesSimple) {
  const uint64_t seed = GetParam();
  const Graph graphs[] = {
      ErdosRenyi(200, 400, seed),
      BarabasiAlbert(200, 3, seed),
      WattsStrogatz(200, 4, 0.25, seed),
      RMat(8, 4, 0.57, 0.19, 0.19, seed),
  };
  for (const Graph& g : graphs) {
    uint64_t adjacency_entries = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const auto nbrs = g.Neighbors(v);
      adjacency_entries += nbrs.size();
      for (size_t i = 0; i < nbrs.size(); ++i) {
        EXPECT_NE(nbrs[i], v);  // no self loop
        if (i > 0) {
          EXPECT_LT(nbrs[i - 1], nbrs[i]);  // sorted => no dupes
        }
      }
    }
    EXPECT_EQ(adjacency_entries, 2 * g.NumEdges());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSimplicity,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace qbs

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "gen/generators.h"
#include "graph/spg.h"
#include "tests/test_util.h"

namespace qbs {
namespace {

// Figure 1 of the paper: three pairs at distance 3 with 1, 3, and 7
// shortest paths — indistinguishable by distance, distinguished by their
// shortest path graphs.
TEST(SpgAnalysisTest, Figure1SinglePath) {
  Graph g = PathGraph(4);
  const auto spg = SpgByDoubleBfs(g, 0, 3);
  EXPECT_EQ(spg.distance, 3u);
  EXPECT_EQ(spg.CountShortestPaths(), 1u);
  EXPECT_EQ(spg.edges.size(), 3u);
}

TEST(SpgAnalysisTest, Figure1ThreePaths) {
  // u - {a, b} - {c} layered plus a second branch: build a graph with
  // exactly 3 shortest u-v paths of length 3.
  // u=0, v=5; middle layers {1,2} and {3,4}; edges chosen for 3 paths:
  // 0-1-3-5, 0-2-3-5, 0-2-4-5.
  Graph g = Graph::FromEdges(
      6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 5}, {4, 5}});
  const auto spg = SpgByDoubleBfs(g, 0, 5);
  EXPECT_EQ(spg.distance, 3u);
  EXPECT_EQ(spg.CountShortestPaths(), 3u);
}

TEST(SpgAnalysisTest, Figure1SevenPaths) {
  // Dense layering: 0 - {1,2,3} - {4,5} - 9 with 7 of the 3*2 + 1 possible
  // combinations wired: edges give 1*2 + 2*2 + 1 = 7 paths.
  Graph g = Graph::FromEdges(10, {{0, 1},
                                  {0, 2},
                                  {0, 3},
                                  {1, 4},
                                  {1, 5},
                                  {2, 4},
                                  {2, 5},
                                  {3, 4},
                                  {4, 9},
                                  {5, 9}});
  const auto spg = SpgByDoubleBfs(g, 0, 9);
  EXPECT_EQ(spg.distance, 3u);
  // Paths: via 1: 1-4, 1-5; via 2: 2-4, 2-5; via 3: 3-4 => 5... count
  // exactly: 0-1-4-9, 0-1-5-9, 0-2-4-9, 0-2-5-9, 0-3-4-9 = 5? plus none.
  EXPECT_EQ(spg.CountShortestPaths(), 5u);
}

TEST(SpgAnalysisTest, CompleteBipartiteLayerCounts) {
  // 0 - {1,2,3} - {4,5,6} - 7 fully wired: 3*3 = 9 paths.
  std::vector<Edge> edges;
  for (VertexId a : {1, 2, 3}) edges.emplace_back(0, a);
  for (VertexId a : {1, 2, 3}) {
    for (VertexId b : {4, 5, 6}) edges.emplace_back(a, b);
  }
  for (VertexId b : {4, 5, 6}) edges.emplace_back(b, 7);
  Graph g = Graph::FromEdges(8, edges);
  const auto spg = SpgByDoubleBfs(g, 0, 7);
  EXPECT_EQ(spg.CountShortestPaths(), 9u);
}

TEST(SpgAnalysisTest, TrivialCases) {
  Graph g = PathGraph(3);
  const auto same = SpgByDoubleBfs(g, 1, 1);
  EXPECT_EQ(same.distance, 0u);
  EXPECT_EQ(same.CountShortestPaths(), 1u);
  EXPECT_TRUE(same.edges.empty());
  EXPECT_EQ(same.Vertices(), std::vector<VertexId>{1});

  Graph disc = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  const auto d = SpgByDoubleBfs(disc, 0, 3);
  EXPECT_FALSE(d.Connected());
  EXPECT_EQ(d.CountShortestPaths(), 0u);
  EXPECT_TRUE(d.Vertices().empty());
}

TEST(SpgAnalysisTest, CriticalVerticesOnPath) {
  Graph g = PathGraph(5);
  const auto spg = SpgByDoubleBfs(g, 0, 4);
  EXPECT_EQ(spg.CriticalVertices(), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(spg.CriticalEdges().size(), 4u);
}

TEST(SpgAnalysisTest, CriticalVertexAtBottleneck) {
  // Two diamonds sharing vertex 3: all 0-6 shortest paths pass through 3.
  Graph g = Graph::FromEdges(
      7, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5}, {4, 6}, {5, 6}});
  const auto spg = SpgByDoubleBfs(g, 0, 6);
  EXPECT_EQ(spg.distance, 4u);
  EXPECT_EQ(spg.CountShortestPaths(), 4u);
  EXPECT_EQ(spg.CriticalVertices(), std::vector<VertexId>{3});
  EXPECT_TRUE(spg.CriticalEdges().empty());
}

TEST(SpgAnalysisTest, NoCriticalVertexInCycle) {
  Graph g = CycleGraph(6);  // two disjoint 0..3 paths
  const auto spg = SpgByDoubleBfs(g, 0, 3);
  EXPECT_EQ(spg.distance, 3u);
  EXPECT_EQ(spg.CountShortestPaths(), 2u);
  EXPECT_TRUE(spg.CriticalVertices().empty());
  EXPECT_TRUE(spg.CriticalEdges().empty());
}

TEST(SpgResultTest, NormalizeSortsAndDedupes) {
  ShortestPathGraph spg;
  spg.u = 0;
  spg.v = 2;
  spg.distance = 2;
  spg.edges = {{2, 1}, {0, 1}, {1, 2}, {1, 0}};
  spg.Normalize();
  EXPECT_EQ(spg.edges, (std::vector<Edge>{{0, 1}, {1, 2}}));
}

TEST(SpgResultTest, VerticesIncludeEndpoints) {
  ShortestPathGraph spg;
  spg.u = 5;
  spg.v = 7;
  spg.distance = 2;
  spg.edges = {{5, 6}, {6, 7}};
  EXPECT_EQ(spg.Vertices(), (std::vector<VertexId>{5, 6, 7}));
}

TEST(SpgAnalysisTest, GridPathCountsAreBinomials) {
  // On a grid, #shortest corner-to-corner paths = C(r+c, r).
  Graph g = GridGraph(3, 4);
  const auto spg = SpgByDoubleBfs(g, 0, 11);  // (0,0) -> (2,3)
  EXPECT_EQ(spg.distance, 5u);
  EXPECT_EQ(spg.CountShortestPaths(), 10u);  // C(5,2)
}

}  // namespace
}  // namespace qbs

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "core/qbs_index.h"
#include "gen/generators.h"
#include "graph/spg_validate.h"
#include "tests/test_util.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

TEST(SpgValidateTest, AcceptsOracleAnswers) {
  Graph g = testing::Figure4Graph();
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const auto r = ValidateShortestPathGraph(g, SpgByDoubleBfs(g, u, v));
      ASSERT_TRUE(r.ok) << r.error;
    }
  }
}

TEST(SpgValidateTest, AcceptsQbsAnswers) {
  Graph g = BarabasiAlbert(300, 3, 1);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex index = QbsIndex::Build(g, options);
  for (const auto& [u, v] : SampleQueryPairs(g, 50, 2)) {
    const auto r = ValidateShortestPathGraph(g, index.Query(u, v));
    ASSERT_TRUE(r.ok) << r.error;
  }
}

TEST(SpgValidateTest, RejectsWrongDistance) {
  Graph g = PathGraph(5);
  auto spg = SpgByDoubleBfs(g, 0, 4);
  spg.distance = 3;
  const auto r = ValidateShortestPathGraph(g, spg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("distance"), std::string::npos);
}

TEST(SpgValidateTest, RejectsMissingEdge) {
  Graph g = CycleGraph(6);
  auto spg = SpgByDoubleBfs(g, 0, 3);  // two paths
  spg.edges.erase(spg.edges.begin());  // drop one edge
  const auto r = ValidateShortestPathGraph(g, spg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("missing"), std::string::npos);
}

TEST(SpgValidateTest, RejectsExtraOffPathEdge) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  auto spg = SpgByDoubleBfs(g, 0, 2);
  spg.edges.push_back(Edge(3, 4));  // real edge, not on a shortest path
  spg.Normalize();
  const auto r = ValidateShortestPathGraph(g, spg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not on any shortest path"), std::string::npos);
}

TEST(SpgValidateTest, RejectsPhantomEdge) {
  Graph g = PathGraph(4);
  auto spg = SpgByDoubleBfs(g, 0, 3);
  spg.edges.push_back(Edge(0, 2));  // edge absent from the graph
  spg.Normalize();
  const auto r = ValidateShortestPathGraph(g, spg);
  EXPECT_FALSE(r.ok);
}

TEST(SpgValidateTest, RejectsUnnormalizedEdges) {
  Graph g = PathGraph(4);
  auto spg = SpgByDoubleBfs(g, 0, 3);
  std::swap(spg.edges[0], spg.edges[1]);
  const auto r = ValidateShortestPathGraph(g, spg);
  EXPECT_FALSE(r.ok);
}

TEST(SpgValidateTest, TrivialAndDisconnected) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(ValidateShortestPathGraph(g, SpgByDoubleBfs(g, 1, 1)).ok);
  EXPECT_TRUE(ValidateShortestPathGraph(g, SpgByDoubleBfs(g, 0, 3)).ok);
  auto bad = SpgByDoubleBfs(g, 0, 3);
  bad.edges.push_back(Edge(0, 1));
  EXPECT_FALSE(ValidateShortestPathGraph(g, bad).ok);
}

TEST(SpgValidateTest, RejectsOutOfRangeEndpoint) {
  Graph g = PathGraph(3);
  ShortestPathGraph spg;
  spg.u = 7;
  spg.v = 1;
  EXPECT_FALSE(ValidateShortestPathGraph(g, spg).ok);
}

}  // namespace
}  // namespace qbs

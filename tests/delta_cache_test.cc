#include <algorithm>

#include <gtest/gtest.h>

#include "core/delta_cache.h"
#include "core/labeling.h"
#include "core/landmark_selection.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "tests/test_util.h"

namespace qbs {
namespace {

// Brute-force reference: edges of all shortest a-b paths in G whose
// internal vertices avoid every other landmark — computed on the masked
// graph (other landmarks removed) via the double-BFS edge condition.
std::vector<Edge> BruteForceSegment(const Graph& g,
                                    const std::vector<VertexId>& landmarks,
                                    VertexId a, VertexId b) {
  std::vector<bool> removed(g.NumVertices(), false);
  for (VertexId r : landmarks) {
    if (r != a && r != b) removed[r] = true;
  }
  std::vector<Edge> masked_edges;
  for (const Edge& e : g.EdgeList()) {
    if (!removed[e.u] && !removed[e.v]) masked_edges.push_back(e);
  }
  const Graph masked = Graph::FromEdges(g.NumVertices(), masked_edges);
  const auto da = BfsDistances(masked, a);
  const auto db = BfsDistances(masked, b);
  // Segments exist only for meta-edges, whose weight is the TRUE distance
  // d_G(a, b); the masked graph realizes it by Definition 4.1.
  const uint32_t d = da[b];
  std::vector<Edge> result;
  for (const Edge& e : masked.EdgeList()) {
    const bool fwd = da[e.u] != kUnreachable && db[e.v] != kUnreachable &&
                     da[e.u] + 1 + db[e.v] == d;
    const bool bwd = da[e.v] != kUnreachable && db[e.u] != kUnreachable &&
                     da[e.v] + 1 + db[e.u] == d;
    if (fwd || bwd) result.push_back(e);
  }
  std::sort(result.begin(), result.end());
  return result;
}

class DeltaSegmentProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaSegmentProperty, SegmentsMatchBruteForce) {
  const uint64_t seed = GetParam();
  Graph g = BarabasiAlbert(200, 2, seed);
  const auto landmarks =
      SelectLandmarks(g, 8, LandmarkStrategy::kHighestDegree, seed);
  const auto scheme = BuildLabelingScheme(g, landmarks);
  for (const MetaEdge& e : scheme.meta.Edges()) {
    auto got = RecoverMetaSegment(g, scheme.labeling, e);
    for (Edge& edge : got) edge = edge.Normalized();
    std::sort(got.begin(), got.end());
    got.erase(std::unique(got.begin(), got.end()), got.end());
    const auto want =
        BruteForceSegment(g, landmarks, landmarks[e.a], landmarks[e.b]);
    ASSERT_EQ(got, want) << "meta edge (" << e.a << "," << e.b << ") w="
                         << e.weight;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaSegmentProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DeltaCacheTest, CoversEveryMetaEdge) {
  Graph g = testing::Figure4Graph();
  const auto scheme = BuildLabelingScheme(g, testing::Figure4Landmarks());
  const DeltaCache cache =
      DeltaCache::Build(g, scheme.labeling, scheme.meta, 2);
  EXPECT_EQ(cache.NumSegments(), scheme.meta.Edges().size());
  for (const MetaEdge& e : scheme.meta.Edges()) {
    const auto* segment = cache.Lookup(e.a, e.b);
    ASSERT_NE(segment, nullptr);
    EXPECT_FALSE(segment->empty());
    // Lookup is orientation-insensitive.
    EXPECT_EQ(cache.Lookup(e.b, e.a), segment);
  }
  EXPECT_GT(cache.SizeBytes(), 0u);
}

TEST(DeltaCacheTest, Figure4DirectAdjacency) {
  // Meta-edge (1, 2) has weight 1: its segment is exactly the edge between
  // the landmark vertices.
  Graph g = testing::Figure4Graph();
  const auto scheme = BuildLabelingScheme(g, testing::Figure4Landmarks());
  const auto segment = RecoverMetaSegment(
      g, scheme.labeling, MetaEdge{0, 1, 1});
  ASSERT_EQ(segment.size(), 1u);
  EXPECT_EQ(segment[0].Normalized(), Edge(0, 1));
}

TEST(DeltaCacheTest, Figure4TwoHopSegment) {
  // Meta-edge (1, 3) has weight 2 via vertex 4 only (Example 4.3).
  Graph g = testing::Figure4Graph();
  const auto scheme = BuildLabelingScheme(g, testing::Figure4Landmarks());
  auto segment =
      RecoverMetaSegment(g, scheme.labeling, MetaEdge{0, 2, 2});
  for (Edge& e : segment) e = e.Normalized();
  std::sort(segment.begin(), segment.end());
  EXPECT_EQ(segment, testing::PaperEdgeSet({{1, 4}, {4, 3}}));
}

TEST(DeltaCacheTest, MissingPairReturnsNull) {
  Graph g = testing::Figure4Graph();
  const auto scheme = BuildLabelingScheme(g, testing::Figure4Landmarks());
  const DeltaCache cache =
      DeltaCache::Build(g, scheme.labeling, scheme.meta, 1);
  // (0, 0) is not a meta-edge.
  EXPECT_EQ(cache.Lookup(0, 0), nullptr);
}

}  // namespace
}  // namespace qbs

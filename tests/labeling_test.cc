#include <string>

#include <gtest/gtest.h>

#include "core/labeling.h"
#include "core/landmark_selection.h"
#include "gen/generators.h"
#include "graph/components.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace qbs {
namespace {

using testing::Figure4Graph;
using testing::Figure4Landmarks;

// Expected labels from the paper's Figure 4(c) (paper vertex -> entries).
struct ExpectedLabel {
  int vertex;  // paper id
  std::vector<std::pair<int, int>> entries;  // (paper landmark id, dist)
};

const ExpectedLabel kFigure4Labels[] = {
    {4, {{1, 1}, {3, 1}}},
    {5, {{1, 1}, {3, 3}}},
    {6, {{1, 1}}},
    {7, {{1, 2}, {2, 2}}},
    {8, {{2, 1}}},
    {9, {{2, 1}}},
    {10, {{2, 2}, {3, 3}}},
    {11, {{2, 3}, {3, 2}}},
    {12, {{3, 1}}},
    {13, {{1, 3}, {3, 1}}},
    {14, {{1, 2}, {3, 2}}},
};

void CheckFigure4Labels(const LabelingScheme& scheme) {
  const PathLabeling& l = scheme.labeling;
  for (const auto& expected : kFigure4Labels) {
    const VertexId v = static_cast<VertexId>(expected.vertex - 1);
    for (uint32_t i = 0; i < 3; ++i) {
      DistT want = kInfDist;
      for (const auto& [lm, d] : expected.entries) {
        if (lm - 1 == static_cast<int>(i)) want = static_cast<DistT>(d);
      }
      EXPECT_EQ(l.Get(v, i), want)
          << "vertex " << expected.vertex << " landmark " << i + 1;
    }
  }
  // Landmarks carry no labels.
  for (VertexId lm : Figure4Landmarks()) {
    for (uint32_t i = 0; i < 3; ++i) {
      EXPECT_EQ(l.Get(lm, i), kInfDist);
    }
  }
}

TEST(LabelingTest, Figure4GoldenLabels) {
  const auto scheme = BuildLabelingScheme(Figure4Graph(), Figure4Landmarks());
  CheckFigure4Labels(scheme);
}

TEST(LabelingTest, Figure4GoldenMetaGraph) {
  // Example 4.3/4.4: meta-edges (1,2) weight 1, (2,3) weight 1, and (1,3)
  // weight 2 (one shortest path 1-4-3 avoiding landmark 2).
  const auto scheme = BuildLabelingScheme(Figure4Graph(), Figure4Landmarks());
  EXPECT_EQ(scheme.meta.Edges().size(), 3u);
  EXPECT_EQ(scheme.meta.EdgeWeight(0, 1), 1u);
  EXPECT_EQ(scheme.meta.EdgeWeight(1, 2), 1u);
  EXPECT_EQ(scheme.meta.EdgeWeight(0, 2), 2u);
}

TEST(LabelingTest, Figure4ParallelMatchesSequential) {
  LabelingBuildOptions parallel;
  parallel.num_threads = 4;
  const auto seq = BuildLabelingScheme(Figure4Graph(), Figure4Landmarks());
  const auto par =
      BuildLabelingScheme(Figure4Graph(), Figure4Landmarks(), parallel);
  CheckFigure4Labels(par);
  EXPECT_EQ(seq.meta.Edges(), par.meta.Edges());
  EXPECT_EQ(seq.labeling.NumEntries(), par.labeling.NumEntries());
}

TEST(LabelingTest, NumEntriesAndSize) {
  const auto scheme = BuildLabelingScheme(Figure4Graph(), Figure4Landmarks());
  // Figure 4(c) lists 18 entries over 11 labelled vertices.
  EXPECT_EQ(scheme.labeling.NumEntries(), 18u);
  EXPECT_EQ(scheme.labeling.SizeBytes(), 14u * 3u * sizeof(DistT));
}

TEST(LabelingTest, EmptyLandmarkSet) {
  const auto scheme = BuildLabelingScheme(Figure4Graph(), {});
  EXPECT_EQ(scheme.labeling.NumEntries(), 0u);
  EXPECT_EQ(scheme.meta.num_landmarks(), 0u);
}

TEST(LabelingTest, SingleLandmarkLabelsWholeComponent) {
  Graph g = PathGraph(6);
  const auto scheme = BuildLabelingScheme(g, {0});
  for (VertexId v = 1; v < 6; ++v) {
    EXPECT_EQ(scheme.labeling.Get(v, 0), v);
  }
  EXPECT_TRUE(scheme.meta.Edges().empty());
}

TEST(LabelingTest, DisconnectedVertexUnlabeled) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  const auto scheme = BuildLabelingScheme(g, {0});
  EXPECT_EQ(scheme.labeling.Get(1, 0), 1);
  EXPECT_EQ(scheme.labeling.Get(2, 0), kInfDist);
  EXPECT_EQ(scheme.labeling.Get(3, 0), kInfDist);
}

// Lemma 5.2 (determinism): permuting the landmark order produces the same
// labelling up to column reindexing, sequentially and in parallel.
class LabelingDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LabelingDeterminism, OrderAndThreadInvariant) {
  const uint64_t seed = GetParam();
  Graph g = BarabasiAlbert(300, 3, seed);
  std::vector<VertexId> landmarks = SelectLandmarks(
      g, 8, LandmarkStrategy::kHighestDegree, seed);
  const auto base = BuildLabelingScheme(g, landmarks);

  std::vector<VertexId> shuffled = landmarks;
  Rng rng(seed * 7 + 1);
  rng.Shuffle(shuffled);
  LabelingBuildOptions par;
  par.num_threads = 0;  // all hardware threads
  const auto perm = BuildLabelingScheme(g, shuffled, par);

  // Map shuffled column -> base column and compare every entry.
  std::vector<uint32_t> to_base(landmarks.size());
  for (uint32_t i = 0; i < shuffled.size(); ++i) {
    const auto it =
        std::find(landmarks.begin(), landmarks.end(), shuffled[i]);
    ASSERT_NE(it, landmarks.end());
    to_base[i] = static_cast<uint32_t>(it - landmarks.begin());
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t i = 0; i < shuffled.size(); ++i) {
      ASSERT_EQ(perm.labeling.Get(v, i), base.labeling.Get(v, to_base[i]))
          << "v=" << v;
    }
  }
  // Meta-graphs agree after rank translation.
  for (uint32_t i = 0; i < shuffled.size(); ++i) {
    for (uint32_t j = 0; j < shuffled.size(); ++j) {
      ASSERT_EQ(perm.meta.EdgeWeight(i, j),
                base.meta.EdgeWeight(to_base[i], to_base[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelingDeterminism,
                         ::testing::Values(1, 2, 3, 4));

// Brute-force conformance with Definition 4.2 / 4.1 across families, seeds
// and landmark counts.
struct DefinitionParam {
  int family;
  uint64_t seed;
  uint32_t k;
};

class LabelingDefinition : public ::testing::TestWithParam<DefinitionParam> {
};

TEST_P(LabelingDefinition, MatchesBruteForce) {
  const auto& p = GetParam();
  Graph g;
  switch (p.family) {
    case 0:
      g = BarabasiAlbert(120, 2, p.seed);
      break;
    case 1:
      g = LargestComponent(ErdosRenyi(120, 220, p.seed)).graph;
      break;
    case 2:
      g = WattsStrogatz(120, 4, 0.2, p.seed);
      break;
    default:
      g = GridGraph(10, 12);
      break;
  }
  const auto landmarks =
      SelectLandmarks(g, p.k, LandmarkStrategy::kHighestDegree, p.seed);
  const auto scheme = BuildLabelingScheme(g, landmarks);
  std::string message;
  EXPECT_TRUE(testing::VerifyLabelingDefinition(g, scheme, &message))
      << message;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LabelingDefinition,
    ::testing::Values(DefinitionParam{0, 1, 4}, DefinitionParam{0, 2, 8},
                      DefinitionParam{1, 3, 4}, DefinitionParam{1, 4, 8},
                      DefinitionParam{2, 5, 4}, DefinitionParam{2, 6, 8},
                      DefinitionParam{3, 7, 5},
                      DefinitionParam{0, 8, 1},
                      DefinitionParam{1, 9, 16}));

TEST(LandmarkSelectionTest, HighestDegreeOrder) {
  Graph g = StarGraph(10);
  const auto landmarks =
      SelectLandmarks(g, 3, LandmarkStrategy::kHighestDegree, 0);
  ASSERT_EQ(landmarks.size(), 3u);
  EXPECT_EQ(landmarks[0], 0u);  // the hub
  // Remaining ties broken by ascending id.
  EXPECT_EQ(landmarks[1], 1u);
  EXPECT_EQ(landmarks[2], 2u);
}

TEST(LandmarkSelectionTest, RandomDistinctAndSeeded) {
  Graph g = CycleGraph(50);
  const auto a = SelectLandmarks(g, 10, LandmarkStrategy::kRandom, 5);
  const auto b = SelectLandmarks(g, 10, LandmarkStrategy::kRandom, 5);
  EXPECT_EQ(a, b);
  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(LandmarkSelectionTest, CountClampedToVertices) {
  Graph g = PathGraph(5);
  EXPECT_EQ(
      SelectLandmarks(g, 100, LandmarkStrategy::kHighestDegree, 0).size(),
      5u);
}

}  // namespace
}  // namespace qbs

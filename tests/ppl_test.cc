#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "baselines/ppl.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/components.h"
#include "tests/test_util.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

TEST(PplTest, Figure3DistanceQueries) {
  Graph g = testing::Figure3Graph();
  auto index = PplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  // Example 3.1: d(3, 7) = 4 (paper ids).
  EXPECT_EQ(index->QueryDistance(2, 6), 4u);
  EXPECT_EQ(index->QueryDistance(0, 6), 3u);
  EXPECT_EQ(index->QueryDistance(4, 5), 1u);
  EXPECT_EQ(index->QueryDistance(3, 3), 0u);
}

TEST(PplTest, Figure3SpgAnswer) {
  Graph g = testing::Figure3Graph();
  auto index = PplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  const auto spg = index->QuerySpg(2, 6);
  EXPECT_EQ(spg, SpgByDoubleBfs(g, 2, 6));
  EXPECT_EQ(spg.edges, testing::PaperEdgeSet({{3, 1},
                                              {1, 2},
                                              {3, 4},
                                              {4, 2},
                                              {2, 5},
                                              {5, 7}}));
}

TEST(PplTest, EveryVertexHasSelfEntry) {
  Graph g = BarabasiAlbert(100, 2, 3);
  auto index = PplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    bool self = false;
    for (const PplEntry& e : index->Label(v)) {
      if (index->LandmarkVertex(e.rank) == v) {
        EXPECT_EQ(e.dist, 0u);
        self = true;
      }
    }
    EXPECT_TRUE(self) << "v=" << v;
  }
}

TEST(PplTest, LabelsSortedByRankWithTrueDistances) {
  Graph g = WattsStrogatz(150, 4, 0.2, 4);
  auto index = PplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto dist = BfsDistances(g, v);
    uint32_t prev_rank = 0;
    bool first = true;
    for (const PplEntry& e : index->Label(v)) {
      if (!first) {
        EXPECT_GT(e.rank, prev_rank);
      }
      first = false;
      prev_rank = e.rank;
      EXPECT_EQ(e.dist, dist[index->LandmarkVertex(e.rank)]);
    }
  }
}

TEST(PplTest, PrunedSmallerThanNaiveLabelling) {
  // The naive method stores |V| entries per vertex; pruning must beat that.
  Graph g = BarabasiAlbert(200, 3, 5);
  auto index = PplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  EXPECT_LT(index->NumEntries(),
            static_cast<uint64_t>(g.NumVertices()) * g.NumVertices() / 4);
}

TEST(PplTest, TimeBudgetExceeded) {
  Graph g = BarabasiAlbert(2000, 3, 6);
  PplBuildOptions options;
  options.time_budget_seconds = 0.0;  // immediate DNF
  BuildStatus status;
  EXPECT_FALSE(PplIndex::Build(g, options, &status).has_value());
  EXPECT_EQ(status, BuildStatus::kTimeBudgetExceeded);
}

TEST(PplTest, MemoryBudgetExceeded) {
  Graph g = BarabasiAlbert(500, 3, 7);
  PplBuildOptions options;
  options.max_label_entries = 100;  // absurdly small => OOE
  BuildStatus status;
  EXPECT_FALSE(PplIndex::Build(g, options, &status).has_value());
  EXPECT_EQ(status, BuildStatus::kMemoryBudgetExceeded);
}

TEST(PplTest, DisconnectedPairs) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  auto index = PplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(index->QueryDistance(0, 5), kUnreachable);
  EXPECT_FALSE(index->QuerySpg(0, 5).Connected());
  EXPECT_EQ(index->QuerySpg(0, 2), SpgByDoubleBfs(g, 0, 2));
}

// Property sweep: PPL distances and SPGs match the oracle.
struct SweepParam {
  int family;
  uint64_t seed;
};

class PplOracleSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PplOracleSweep, MatchesOracle) {
  const auto& p = GetParam();
  Graph g;
  switch (p.family) {
    case 0:
      g = BarabasiAlbert(250, 2, p.seed);
      break;
    case 1:
      g = LargestComponent(ErdosRenyi(250, 450, p.seed)).graph;
      break;
    case 2:
      g = WattsStrogatz(250, 4, 0.2, p.seed);
      break;
    case 3:
      g = GridGraph(12, 15);
      break;
    default:
      g = LargestComponent(RMat(8, 3, 0.57, 0.19, 0.19, p.seed)).graph;
      break;
  }
  auto index = PplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  const auto pairs = SampleQueryPairs(g, 50, p.seed + 31);
  for (const auto& [u, v] : pairs) {
    const auto want = SpgByDoubleBfs(g, u, v);
    EXPECT_EQ(index->QueryDistance(u, v), want.distance);
    ASSERT_EQ(index->QuerySpg(u, v), want) << "u=" << u << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PplOracleSweep,
    ::testing::Values(SweepParam{0, 1}, SweepParam{0, 2}, SweepParam{1, 3},
                      SweepParam{1, 4}, SweepParam{2, 5}, SweepParam{2, 6},
                      SweepParam{3, 7}, SweepParam{4, 8}, SweepParam{4, 9}));

// 2-hop path cover (Definition 3.2) spot check: for every sampled pair at
// distance >= 2, every shortest path must carry an internal common
// landmark realizing the distance. We verify the weaker but necessary
// consequence used by the query algorithm: the SPG decomposes exactly
// (covered by the oracle equality above) and at least one internal
// minimizing landmark exists.
TEST(PplTest, InternalMinimizingLandmarkExists) {
  Graph g = BarabasiAlbert(200, 2, 11);
  auto index = PplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  const auto pairs = SampleQueryPairs(g, 60, 12);
  for (const auto& [u, v] : pairs) {
    const uint32_t d = index->QueryDistance(u, v);
    if (d < 2 || d == kUnreachable) continue;
    bool internal = false;
    for (const PplEntry& eu : index->Label(u)) {
      for (const PplEntry& ev : index->Label(v)) {
        if (eu.rank == ev.rank && eu.dist + ev.dist == d) {
          const VertexId r = index->LandmarkVertex(eu.rank);
          if (r != u && r != v) internal = true;
        }
      }
    }
    EXPECT_TRUE(internal) << "u=" << u << " v=" << v;
  }
}

}  // namespace
}  // namespace qbs

// End-to-end `qbs serve` daemon tests over real loopback sockets: protocol
// round trips, cached-vs-uncached bit-identity (the serving acceptance
// contract), admission backpressure, defensive handling of garbage bytes,
// and clean shutdown (no leaked threads/sockets — this whole binary runs
// under ASan/UBSan in CI).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/qbs_index.h"
#include "gen/generators.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/query_workload.h"
#include "workload/synthetic_workload.h"

namespace qbs::server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : g_(BarabasiAlbert(600, 3, 13)) {
    QbsOptions options;
    options.num_landmarks = 12;
    index_ = QbsIndex::Build(g_, options);
  }

  // Starts a server on an ephemeral loopback port.
  std::unique_ptr<QueryServer> StartServer(ServerOptions options = {}) {
    auto server = std::make_unique<QueryServer>(*index_, options);
    std::string error;
    EXPECT_TRUE(server->Start(&error)) << error;
    return server;
  }

  QueryClient ConnectTo(const QueryServer& server) {
    QueryClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server.port()))
        << client.last_error();
    return client;
  }

  Graph g_;
  std::optional<QbsIndex> index_;
};

TEST_F(ServerTest, AnswersMatchTheIndex) {
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  for (const auto& [u, v] : SampleQueryPairs(g_, 50, 7)) {
    QueryResponse response;
    ASSERT_EQ(client.Query(QueryRequest(u, v), &response),
              QueryClient::RpcStatus::kOk)
        << client.last_error();
    EXPECT_EQ(response.spg, index_->Query(u, v)) << u << "," << v;
  }
}

TEST_F(ServerTest, CachedResponseIsBitIdenticalToUncached) {
  // The acceptance contract: asking twice must yield the same answer
  // payload, with only the cache_hit bit distinguishing the replay.
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  for (const auto& [u, v] : SampleQueryPairs(g_, 30, 8)) {
    const QueryRequest request(u, v);
    QueryResponse first, second;
    ASSERT_EQ(client.Query(request, &first), QueryClient::RpcStatus::kOk);
    ASSERT_EQ(client.Query(request, &second), QueryClient::RpcStatus::kOk);
    EXPECT_FALSE(first.cache_hit);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_TRUE(SameAnswer(first, second)) << u << "," << v;
  }
  const auto stats = server->GetStats();
  EXPECT_EQ(stats.cache.hits, 30u);
  EXPECT_EQ(stats.queries, 60u);
}

TEST_F(ServerTest, NoCacheFlagBypassesTheCache) {
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  const QueryRequest request(1, 500, QueryMode::kSpg, 0, kQueryFlagNoCache);
  QueryResponse first, second;
  ASSERT_EQ(client.Query(request, &first), QueryClient::RpcStatus::kOk);
  ASSERT_EQ(client.Query(request, &second), QueryClient::RpcStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(server->GetStats().cache.hits, 0u);
}

TEST_F(ServerTest, DistanceModeOmitsEdges) {
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  QueryResponse response;
  ASSERT_EQ(client.Query(QueryRequest(2, 400, QueryMode::kDistance),
                         &response),
            QueryClient::RpcStatus::kOk);
  EXPECT_TRUE(response.spg.edges.empty());
  EXPECT_EQ(response.distance(), index_->Query(2, 400).distance);
}

TEST_F(ServerTest, VertexOutOfRangeIsARemoteErrorNotACrash) {
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  QueryResponse response;
  EXPECT_EQ(client.Query(QueryRequest(g_.NumVertices(), 0), &response),
            QueryClient::RpcStatus::kRemoteError);
  // The connection survives a rejected request.
  ASSERT_EQ(client.Query(QueryRequest(0, 1), &response),
            QueryClient::RpcStatus::kOk);
  EXPECT_EQ(server->GetStats().bad_requests, 1u);
}

TEST_F(ServerTest, GarbageBytesCloseTheConnectionWithoutCrashing) {
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  // Speak HTTP at the daemon through a raw socket.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char junk[] = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(::send(fd, junk, sizeof(junk) - 1, 0), 0);
  // Server answers with an error frame and closes; drain until EOF.
  char buf[1024];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);

  // The daemon is still fully alive for well-behaved clients.
  QueryResponse response;
  ASSERT_EQ(client.Query(QueryRequest(0, 1), &response),
            QueryClient::RpcStatus::kOk);
  EXPECT_GE(server->GetStats().protocol_errors, 1u);
}

TEST_F(ServerTest, PingPong) {
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  EXPECT_TRUE(client.Ping());
}

TEST_F(ServerTest, RemoteShutdownStopsTheServer) {
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  ASSERT_TRUE(client.Shutdown());
  EXPECT_TRUE(server->WaitFor(5000));
  server->Stop();
}

TEST_F(ServerTest, RemoteShutdownCanBeDisallowed) {
  ServerOptions options;
  options.allow_remote_shutdown = false;
  auto server = StartServer(options);
  QueryClient client = ConnectTo(*server);
  EXPECT_FALSE(client.Shutdown());
  // Still serving.
  QueryResponse response;
  EXPECT_EQ(client.Query(QueryRequest(0, 1), &response),
            QueryClient::RpcStatus::kOk);
  EXPECT_FALSE(server->WaitFor(50));
}

TEST_F(ServerTest, ConcurrentClientsAllGetCorrectAnswers) {
  ServerOptions options;
  options.max_inflight = 4;
  auto server = StartServer(options);
  const auto pairs = SampleQueryPairs(g_, 120, 17);
  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryClient client;
      if (!client.Connect("127.0.0.1", server->port())) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = c; i < pairs.size(); i += 2) {
        QueryResponse response;
        for (;;) {
          const auto status =
              client.Query(QueryRequest(pairs[i].u, pairs[i].v), &response);
          if (status == QueryClient::RpcStatus::kBusy) continue;  // retry
          if (status != QueryClient::RpcStatus::kOk) failures.fetch_add(1);
          break;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  // Spot-check correctness against the index after the fact.
  QueryClient client = ConnectTo(*server);
  for (size_t i = 0; i < 10; ++i) {
    QueryResponse response;
    ASSERT_EQ(client.Query(QueryRequest(pairs[i].u, pairs[i].v), &response),
              QueryClient::RpcStatus::kOk);
    EXPECT_EQ(response.spg, index_->Query(pairs[i].u, pairs[i].v));
  }
}

TEST_F(ServerTest, StopUnblocksAndJoinsEverything) {
  // Destroying a server with live connections must not hang or leak: the
  // fixture's ASan run is the leak assertion.
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  QueryResponse response;
  ASSERT_EQ(client.Query(QueryRequest(0, 1), &response),
            QueryClient::RpcStatus::kOk);
  server->Stop();  // connection is still open — Stop must shut it down
  EXPECT_NE(client.Query(QueryRequest(0, 1), &response),
            QueryClient::RpcStatus::kOk);
}

TEST(AdmissionGateTest, RejectsWhenQueueFull) {
  AdmissionGate gate(/*max_inflight=*/1, /*max_queue=*/0);
  ASSERT_EQ(gate.Acquire(), AdmissionGate::Ticket::kAdmitted);
  // No queue slots: the second caller bounces immediately.
  EXPECT_EQ(gate.Acquire(), AdmissionGate::Ticket::kRejected);
  EXPECT_EQ(gate.rejected(), 1u);
  gate.Release();
  EXPECT_EQ(gate.Acquire(), AdmissionGate::Ticket::kAdmitted);
  gate.Release();
}

TEST(AdmissionGateTest, QueuedCallerAdmittedAfterRelease) {
  AdmissionGate gate(/*max_inflight=*/1, /*max_queue=*/1);
  ASSERT_EQ(gate.Acquire(), AdmissionGate::Ticket::kAdmitted);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    if (gate.Acquire() == AdmissionGate::Ticket::kAdmitted) {
      admitted.store(true);
      gate.Release();
    }
  });
  // Give the waiter time to enqueue, then free the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  gate.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(AdmissionGateTest, ShutdownWakesWaiters) {
  AdmissionGate gate(/*max_inflight=*/1, /*max_queue=*/4);
  ASSERT_EQ(gate.Acquire(), AdmissionGate::Ticket::kAdmitted);
  std::thread waiter([&] {
    EXPECT_EQ(gate.Acquire(), AdmissionGate::Ticket::kShutdown);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.Shutdown();
  waiter.join();
  EXPECT_EQ(gate.Acquire(), AdmissionGate::Ticket::kShutdown);
}

TEST(AdmissionGateTest, AcquireForZeroNeverQueues) {
  AdmissionGate gate(/*max_inflight=*/1, /*max_queue=*/8);
  ASSERT_EQ(gate.AcquireFor(0), AdmissionGate::Ticket::kAdmitted);
  // Queue has room, but a zero budget means admit-or-reject only.
  EXPECT_EQ(gate.AcquireFor(0), AdmissionGate::Ticket::kRejected);
  gate.Release();
}

TEST(AdmissionGateTest, AcquireForTimesOutWhenSlotNeverFrees) {
  AdmissionGate gate(/*max_inflight=*/1, /*max_queue=*/4);
  ASSERT_EQ(gate.Acquire(), AdmissionGate::Ticket::kAdmitted);
  EXPECT_EQ(gate.AcquireFor(30), AdmissionGate::Ticket::kTimedOut);
  gate.Release();
  // The timed-out waiter left no residue: the slot is freely admissible.
  EXPECT_EQ(gate.AcquireFor(30), AdmissionGate::Ticket::kAdmitted);
  gate.Release();
}

TEST(AdmissionGateTest, RejectionReportsQueueDepth) {
  AdmissionGate gate(/*max_inflight=*/1, /*max_queue=*/1);
  ASSERT_EQ(gate.Acquire(), AdmissionGate::Ticket::kAdmitted);
  std::thread waiter([&] {
    EXPECT_EQ(gate.Acquire(), AdmissionGate::Ticket::kAdmitted);
    gate.Release();
  });
  while (gate.queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  size_t depth = 0;
  EXPECT_EQ(gate.AcquireFor(0, &depth), AdmissionGate::Ticket::kRejected);
  EXPECT_EQ(depth, 1u);  // the backlog a kBusy answer reports
  gate.Release();
  waiter.join();
}

TEST_F(ServerTest, DeadlineZeroIsAnsweredDeadlineExceededImmediately) {
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  QueryResponse response;
  QueryRequest request(1, 400);
  request.deadline_ms = 0;  // "already expired": must never execute
  EXPECT_EQ(client.Query(request, &response),
            QueryClient::RpcStatus::kDeadlineExceeded);
  EXPECT_EQ(client.last_error_code(), ErrorCode::kDeadlineExceeded);
  // The connection survives and the request was not executed or cached.
  const auto stats = server->GetStats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.queries, 0u);
  request.deadline_ms = kNoDeadline;
  ASSERT_EQ(client.Query(request, &response), QueryClient::RpcStatus::kOk);
  EXPECT_FALSE(response.cache_hit);
}

TEST_F(ServerTest, GenerousDeadlineAnswersIdenticallyToNoDeadline) {
  auto server = StartServer();
  QueryClient client = ConnectTo(*server);
  for (const auto& [u, v] : SampleQueryPairs(g_, 20, 21)) {
    QueryRequest no_deadline(u, v, QueryMode::kSpg, 0, kQueryFlagNoCache);
    QueryRequest generous = no_deadline;
    generous.deadline_ms = 60000;
    QueryResponse a, b;
    ASSERT_EQ(client.Query(no_deadline, &a), QueryClient::RpcStatus::kOk);
    ASSERT_EQ(client.Query(generous, &b), QueryClient::RpcStatus::kOk);
    EXPECT_TRUE(SameAnswer(a, b)) << u << "," << v;
  }
  EXPECT_EQ(server->GetStats().deadline_exceeded, 0u);
}

TEST_F(ServerTest, BusyResponseCarriesQueueDepth) {
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 1;
  // Every admitted query sleeps, so the slot and the one queue seat fill
  // up and stay full while the probe arrives.
  const FaultPlan plan([] {
    FaultSpec spec;
    spec.query_delay_rate = 1.0;
    spec.query_delay_ms = 400;
    return spec;
  }());
  options.fault_injector_factory = [&plan](uint64_t conn_id) {
    return plan.MakeInjector(conn_id);
  };
  auto server = StartServer(options);

  std::vector<std::thread> hogs;
  for (int i = 0; i < 2; ++i) {
    hogs.emplace_back([&, i] {
      QueryClient hog;
      if (!hog.Connect("127.0.0.1", server->port())) return;
      QueryResponse ignored;
      QueryRequest slow(1, 2 + i, QueryMode::kSpg, 0, kQueryFlagNoCache);
      hog.Query(slow, &ignored);
    });
  }
  // Wait until one hog is executing (sleeping in the injector) and the
  // other occupies the single queue seat — only then is kBusy guaranteed.
  for (;;) {
    const auto stats = server->GetStats();
    if (stats.admission_inflight >= 1 && stats.admission_queue_depth >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  QueryClient probe = ConnectTo(*server);
  QueryResponse response;
  QueryRequest request(5, 6, QueryMode::kSpg, 0, kQueryFlagNoCache);
  EXPECT_EQ(probe.Query(request, &response), QueryClient::RpcStatus::kBusy);
  EXPECT_EQ(probe.busy_queue_depth(), 1u);  // the queued hog
  for (auto& h : hogs) h.join();
  server->Stop();
}

TEST_F(ServerTest, ServedWorkloadHitRateIsDeterministic) {
  // Same seed, fresh server, single connection => exactly the same
  // hit-rate (the workload and the LRU are both deterministic).
  WorkloadOptions workload;
  workload.num_queries = 800;
  workload.num_distinct_pairs = 60;
  workload.zipf_s = 1.0;
  workload.seed = 99;
  const auto queries = GenerateWorkload(g_, workload);

  const auto run_once = [&]() -> uint64_t {
    auto server = StartServer();
    QueryClient client = ConnectTo(*server);
    uint64_t hits = 0;
    for (const auto& q : queries) {
      QueryResponse response;
      EXPECT_EQ(client.Query(q.request, &response),
                QueryClient::RpcStatus::kOk);
      hits += response.cache_hit ? 1 : 0;
    }
    return hits;
  };
  const uint64_t first = run_once();
  const uint64_t second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0u);
}

}  // namespace
}  // namespace qbs::server

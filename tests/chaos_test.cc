// Chaos suite: seeded fault plans driven through REAL loopback connections
// against the `qbs serve` daemon. The contract asserted for every plan:
//
//   * no hangs   — every client wait is poll-bounded (and the whole binary
//                  runs under a ctest timeout);
//   * no crashes — the server survives every plan and still answers a
//                  clean probe afterwards;
//   * every query either matches the fault-free answer bit-for-bit
//     (SameAnswer) or fails TYPED: kBusy, kDeadlineExceeded, a degraded
//     answer whose bounds bracket the true distance, or a transport error
//     after which the client can reconnect. Silent wrong answers are the
//     one outcome chaos must never produce.
//
// Fault decisions are pure functions of (seed, endpoint, op index) —
// FaultPlanDeterminism locks that in — so any failing plan replays
// exactly from its FaultSpec.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/qbs_index.h"
#include "gen/generators.h"
#include "server/client.h"
#include "server/fault_injection.h"
#include "server/server.h"
#include "workload/query_workload.h"

namespace qbs::server {
namespace {

// ---- FaultPlan determinism ------------------------------------------------

struct FaultTrace {
  std::vector<uint8_t> kinds;
  std::vector<size_t> caps;
  std::vector<uint32_t> delays;

  friend bool operator==(const FaultTrace& a, const FaultTrace& b) {
    return a.kinds == b.kinds && a.caps == b.caps && a.delays == b.delays;
  }
};

// Records the injector's decisions over a fixed op sequence WITHOUT
// executing them (stalls would otherwise sleep for real).
FaultTrace TraceInjector(FaultInjector& injector, size_t ops) {
  FaultTrace trace;
  for (size_t i = 0; i < ops; ++i) {
    const IoFault fault =
        i % 2 == 0 ? injector.OnSend(4096) : injector.OnRecv(4096);
    trace.kinds.push_back(static_cast<uint8_t>(fault.kind));
    trace.caps.push_back(fault.cap);
    trace.delays.push_back(injector.OnQueryDelayMs());
  }
  return trace;
}

TEST(FaultPlanTest, SameSeedSameEndpointReplaysIdentically) {
  FaultSpec spec;
  spec.seed = 0xC0FFEEull;
  spec.short_send_rate = 0.3;
  spec.short_recv_rate = 0.3;
  spec.stall_rate = 0.2;
  spec.reset_rate = 0.05;
  spec.torn_frame_rate = 0.1;
  spec.query_delay_rate = 0.5;
  spec.query_delay_ms = 7;

  const FaultPlan plan_a(spec);
  const FaultPlan plan_b(spec);
  for (const uint64_t endpoint : {0ull, 1ull, 42ull}) {
    auto ia = plan_a.MakeInjector(endpoint);
    auto ib = plan_b.MakeInjector(endpoint);
    EXPECT_EQ(TraceInjector(*ia, 512), TraceInjector(*ib, 512))
        << "endpoint " << endpoint;
  }
}

TEST(FaultPlanTest, DifferentSeedsOrEndpointsDiverge) {
  FaultSpec spec;
  spec.seed = 1;
  spec.short_send_rate = 0.5;
  spec.stall_rate = 0.25;
  const FaultPlan plan(spec);

  FaultSpec other = spec;
  other.seed = 2;
  const FaultPlan other_plan(other);

  auto base = plan.MakeInjector(0);
  auto reseeded = other_plan.MakeInjector(0);
  auto shifted = plan.MakeInjector(1);
  const FaultTrace base_trace = TraceInjector(*base, 512);
  EXPECT_NE(base_trace, TraceInjector(*reseeded, 512));
  EXPECT_NE(base_trace, TraceInjector(*shifted, 512));
}

TEST(FaultPlanTest, ScriptedResetFiresExactlyOnce) {
  FaultSpec spec;
  spec.reset_at_op = 3;
  const FaultPlan plan(spec);
  auto injector = plan.MakeInjector(0);
  size_t resets = 0;
  for (size_t op = 1; op <= 16; ++op) {
    const IoFault fault = injector->OnSend(64);
    if (fault.kind == IoFault::Kind::kReset) {
      EXPECT_EQ(op, 3u);
      ++resets;
    }
  }
  EXPECT_EQ(resets, 1u);
}

// ---- Loopback chaos plans -------------------------------------------------

struct ChaosPlan {
  const char* name;
  FaultSpec client;         // faults on the client's socket
  FaultSpec server;         // faults on every server connection socket
  uint32_t deadline_ms = kNoDeadline;
  size_t max_inflight = 4;
  size_t degrade_after_inflight = 0;
  size_t num_queries = 60;
};

FaultSpec ClientShortReads(uint64_t seed) {
  FaultSpec s;
  s.seed = seed;
  s.short_recv_rate = 0.8;
  return s;
}

FaultSpec ClientShortWritesAndStalls(uint64_t seed) {
  FaultSpec s;
  s.seed = seed;
  s.short_send_rate = 0.8;
  s.stall_rate = 0.15;
  s.stall_ms = 2;
  return s;
}

FaultSpec TornFrames(uint64_t seed) {
  FaultSpec s;
  s.seed = seed;
  s.torn_frame_rate = 0.2;
  return s;
}

FaultSpec Resets(uint64_t seed, double rate) {
  FaultSpec s;
  s.seed = seed;
  s.reset_rate = rate;
  return s;
}

FaultSpec ServerShortWritesAndStalls(uint64_t seed) {
  FaultSpec s;
  s.seed = seed;
  s.short_send_rate = 0.7;
  s.stall_rate = 0.1;
  s.stall_ms = 2;
  return s;
}

FaultSpec SlowQueries(uint64_t seed, uint32_t delay_ms, double rate) {
  FaultSpec s;
  s.seed = seed;
  s.query_delay_rate = rate;
  s.query_delay_ms = delay_ms;
  return s;
}

FaultSpec Combined(uint64_t seed) {
  FaultSpec s;
  s.seed = seed;
  s.short_send_rate = 0.3;
  s.short_recv_rate = 0.3;
  s.stall_rate = 0.1;
  s.stall_ms = 2;
  s.reset_rate = 0.02;
  s.torn_frame_rate = 0.05;
  return s;
}

std::vector<ChaosPlan> Plans() {
  std::vector<ChaosPlan> plans;
  // 1. Client reads arrive in tiny chunks: FrameReader reassembly.
  plans.push_back({.name = "client-short-reads",
                   .client = ClientShortReads(11)});
  // 2. Client writes fragment and stall: server-side frame reassembly
  //    under its read timeout.
  plans.push_back({.name = "client-short-writes-stalls",
                   .client = ClientShortWritesAndStalls(22)});
  // 3. Client tears frames mid-request; the server must drop the torn
  //    stream, the client must reconnect.
  plans.push_back({.name = "client-torn-frames",
                   .client = TornFrames(33)});
  // 4. Client-side random resets: reconnect/retry discipline.
  plans.push_back({.name = "client-resets",
                   .client = Resets(44, 0.04)});
  // 5. Server responses fragment and stall: client-side reassembly.
  plans.push_back({.name = "server-short-writes-stalls",
                   .server = ServerShortWritesAndStalls(55)});
  // 6. Server-side resets: every query either answers or fails typed.
  plans.push_back({.name = "server-resets",
                   .server = Resets(66, 0.04)});
  // 7. Slow queries + tight deadlines: kDeadlineExceeded, never a late
  //    execution, never a hang.
  plans.push_back({.name = "slow-queries-tight-deadline",
                   .server = SlowQueries(77, 30, 0.5),
                   .deadline_ms = 10,
                   .max_inflight = 2});
  // 8. Saturation + degradation: slow queries hold every slot, the
  //    overflow is answered with label bounds instead of queueing.
  plans.push_back({.name = "saturation-degrades",
                   .server = SlowQueries(88, 15, 1.0),
                   .max_inflight = 1,
                   .degrade_after_inflight = 1});
  // 9. Everything at once, two seeds: the kitchen sink must still never
  //    produce a silent wrong answer.
  plans.push_back({.name = "combined-a",
                   .client = Combined(99),
                   .server = Combined(100)});
  plans.push_back({.name = "combined-b",
                   .client = Combined(101),
                   .server = Combined(102),
                   .deadline_ms = 2000});
  return plans;
}

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest() : g_(BarabasiAlbert(500, 3, 17)) {
    QbsOptions options;
    options.num_landmarks = 10;
    index_ = QbsIndex::Build(g_, options);
  }

  Graph g_;
  std::optional<QbsIndex> index_;
};

TEST_F(ChaosTest, EveryPlanYieldsExactAnswersOrTypedErrors) {
  const std::vector<QueryPair> pairs = SampleQueryPairs(g_, 60, 5);

  // Fault-free ground truth, computed directly against the index (no
  // sockets involved).
  std::vector<QueryResponse> expected;
  {
    QbsIndex::SearcherLease lease(*index_, 1);
    for (const auto& [u, v] : pairs) {
      expected.push_back(index_->Execute(lease[0], QueryRequest(u, v)));
    }
  }

  size_t plans_run = 0;
  for (const ChaosPlan& plan : Plans()) {
    SCOPED_TRACE(plan.name);
    ++plans_run;

    const FaultPlan server_plan(plan.server);
    ServerOptions options;
    options.max_inflight = plan.max_inflight;
    options.degrade_after_inflight = plan.degrade_after_inflight;
    options.read_timeout_ms = 1000;
    options.idle_timeout_ms = 10000;
    options.write_timeout_ms = 2000;
    if (plan.server.HasIoFaults() || plan.server.query_delay_rate > 0) {
      options.fault_injector_factory = [&server_plan](uint64_t conn_id) {
        return server_plan.MakeInjector(conn_id);
      };
    }
    QueryServer server(*index_, options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    const FaultPlan client_plan(plan.client);
    std::unique_ptr<FaultInjector> client_injector;
    ClientOptions client_options;
    client_options.read_timeout_ms = 3000;
    client_options.write_timeout_ms = 3000;
    if (plan.client.HasIoFaults()) {
      client_injector = client_plan.MakeInjector(/*endpoint_id=*/1);
      client_options.fault_injector = client_injector.get();
    }

    QueryClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), client_options))
        << client.last_error();

    // Saturation plans need a competing connection actually holding the
    // inflight slots (a single sequential client never observes its own
    // concurrency): a hog loops slow no-cache queries until the plan ends.
    std::atomic<bool> hog_stop{false};
    std::thread hog;
    if (plan.degrade_after_inflight > 0) {
      hog = std::thread([&] {
        QueryClient hog_client;
        ClientOptions hog_options;
        hog_options.read_timeout_ms = 3000;
        if (!hog_client.Connect("127.0.0.1", server.port(), hog_options)) {
          return;
        }
        while (!hog_stop.load()) {
          QueryResponse ignored;
          QueryRequest slow(pairs[1].u, pairs[1].v);
          slow.flags = kQueryFlagNoCache;
          if (hog_client.Query(slow, &ignored) ==
              QueryClient::RpcStatus::kTransportError) {
            return;
          }
        }
      });
      // Let the hog occupy the slot before the first measured query.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    size_t ok = 0, degraded = 0, busy = 0, deadline = 0, transport = 0;
    for (size_t i = 0; i < plan.num_queries; ++i) {
      const QueryPair& pair = pairs[i % pairs.size()];
      QueryRequest request(pair.u, pair.v);
      request.deadline_ms = plan.deadline_ms;
      // No-cache keeps every request on the execute path, so server-side
      // faults (slowness, degradation) actually engage each time.
      request.flags = kQueryFlagNoCache;
      QueryResponse response;
      const auto status = client.Query(request, &response);
      switch (status) {
        case QueryClient::RpcStatus::kOk: {
          const QueryResponse& truth = expected[i % pairs.size()];
          if (response.degraded()) {
            ++degraded;
            // Degraded answers must bracket the true distance:
            // lower <= d <= upper (upper == kUnreachable means the labels
            // certified nothing above).
            EXPECT_LE(response.degraded_lower, truth.spg.distance);
            EXPECT_GE(response.spg.distance, truth.spg.distance);
            EXPECT_TRUE(response.spg.edges.empty());
            EXPECT_FALSE(response.cache_hit);
          } else {
            ++ok;
            // The headline chaos assertion: an undegraded success is
            // bit-identical to the fault-free answer.
            EXPECT_TRUE(SameAnswer(response, truth))
                << "pair (" << pair.u << "," << pair.v << ")";
          }
          break;
        }
        case QueryClient::RpcStatus::kBusy:
          ++busy;
          break;
        case QueryClient::RpcStatus::kDeadlineExceeded:
          ++deadline;
          break;
        case QueryClient::RpcStatus::kRemoteError:
          // Typed, but nothing in these plans should provoke one: the
          // requests are all well-formed and in range.
          ADD_FAILURE() << "unexpected remote error: "
                        << client.last_error();
          break;
        case QueryClient::RpcStatus::kTransportError: {
          ++transport;
          // Typed connection error: the client must be able to come back.
          ASSERT_TRUE(client.Reconnect()) << client.last_error();
          break;
        }
      }
    }

    hog_stop.store(true);
    if (hog.joinable()) hog.join();

    // The plan must have produced SOME terminal outcomes, and the server
    // must still be alive and exact afterwards.
    EXPECT_EQ(ok + degraded + busy + deadline + transport,
              plan.num_queries);
    if (!client.connected()) {
      ASSERT_TRUE(client.Reconnect()) << client.last_error();
    }
    QueryClient probe;
    ClientOptions probe_options;
    probe_options.read_timeout_ms = 3000;
    ASSERT_TRUE(probe.Connect("127.0.0.1", server.port(), probe_options));
    QueryResponse after;
    ASSERT_EQ(probe.Query(QueryRequest(pairs[0].u, pairs[0].v), &after),
              QueryClient::RpcStatus::kOk)
        << probe.last_error();
    EXPECT_TRUE(SameAnswer(after, expected[0]));

    if (plan.degrade_after_inflight > 0) {
      // The hog held the only slot nearly the whole time: the saturation
      // plan must actually have exercised the degradation path.
      EXPECT_GT(server.GetStats().degraded, 0u);
      EXPECT_GT(degraded, 0u);
    }
    server.Stop();
  }
  EXPECT_GE(plans_run, 8u);
}

// A mid-frame stall longer than the server's read timeout gets the
// connection reaped (slowloris defense) — and the server stays healthy.
TEST_F(ChaosTest, SlowlorisConnectionIsReaped) {
  ServerOptions options;
  options.read_timeout_ms = 50;
  options.idle_timeout_ms = 10000;
  QueryServer server(*index_, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  QueryClient victim;
  ClientOptions victim_options;
  victim_options.read_timeout_ms = 2000;
  ASSERT_TRUE(victim.Connect("127.0.0.1", server.port(), victim_options));
  // Hand-feed half a request frame, then stall past the read timeout.
  {
    std::vector<uint8_t> frame;
    AppendFrame(&frame, FrameType::kQueryRequest,
                EncodeQueryRequest(QueryRequest(1, 2)));
    std::string connect_error;
    Socket raw = Socket::ConnectTcp("127.0.0.1", server.port(),
                                    &connect_error);
    ASSERT_TRUE(raw.valid()) << connect_error;
    const std::span<const uint8_t> half(frame.data(), frame.size() / 2);
    ASSERT_EQ(raw.SendAll(half, 1000), IoStatus::kOk);
    // Wait for the reaper, then observe the cut-off: the next read hits
    // EOF (or an error frame followed by EOF), never a hang.
    uint8_t buf[256];
    size_t n = 0;
    IoStatus status;
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    do {
      status = raw.RecvSome(buf, sizeof(buf), &n, 1000);
    } while (status == IoStatus::kOk &&
             std::chrono::steady_clock::now() < give_up);
    EXPECT_NE(status, IoStatus::kTimeout);
  }

  // The healthy connection is unaffected.
  QueryResponse response;
  ASSERT_EQ(victim.Query(QueryRequest(3, 4), &response),
            QueryClient::RpcStatus::kOk)
      << victim.last_error();
  const auto stats = server.GetStats();
  EXPECT_GE(stats.read_timeouts, 1u);
  server.Stop();
}

// An idle connection is reaped after idle_timeout_ms; an active one with
// in-flight frames is not.
TEST_F(ChaosTest, IdleConnectionIsReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 50;
  options.read_timeout_ms = 5000;
  QueryServer server(*index_, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  QueryClient client;
  ClientOptions client_options;
  client_options.read_timeout_ms = 3000;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), client_options));
  QueryResponse response;
  ASSERT_EQ(client.Query(QueryRequest(1, 2), &response),
            QueryClient::RpcStatus::kOk);
  // Go idle past the reaper threshold: the next query hits a dead socket
  // — a typed transport error — and a fresh connect works fine.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(client.Query(QueryRequest(1, 2), &response),
            QueryClient::RpcStatus::kTransportError);
  ASSERT_TRUE(client.Reconnect()) << client.last_error();
  ASSERT_EQ(client.Query(QueryRequest(1, 2), &response),
            QueryClient::RpcStatus::kOk);
  EXPECT_GE(server.GetStats().idle_timeouts, 1u);
  server.Stop();
}

}  // namespace
}  // namespace qbs::server

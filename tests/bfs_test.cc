#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/components.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

TEST(BfsTest, PathGraphDistances) {
  Graph g = PathGraph(6);
  const auto d = BfsDistances(g, 0);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(d[v], v);
  }
}

TEST(BfsTest, StarGraphDistances) {
  Graph g = StarGraph(10);
  const auto from_hub = BfsDistances(g, 0);
  const auto from_leaf = BfsDistances(g, 3);
  for (VertexId v = 1; v < 10; ++v) {
    EXPECT_EQ(from_hub[v], 1u);
    EXPECT_EQ(from_leaf[v], v == 3 ? 0u : 2u);
  }
}

TEST(BfsTest, DisconnectedIsUnreachable) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  const auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(BfsTest, BoundedStopsAtMaxDepth) {
  Graph g = PathGraph(10);
  const auto d = BfsDistancesBounded(g, 0, 3);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[4], kUnreachable);
}

TEST(BfsTest, GridDistancesAreManhattan) {
  Graph g = GridGraph(4, 5);
  const auto d = BfsDistances(g, 0);
  for (uint32_t r = 0; r < 4; ++r) {
    for (uint32_t c = 0; c < 5; ++c) {
      EXPECT_EQ(d[r * 5 + c], r + c);
    }
  }
}

TEST(BiBfsDistanceTest, TrivialCases) {
  Graph g = PathGraph(5);
  EXPECT_EQ(BiBfsDistance(g, 2, 2), 0u);
  EXPECT_EQ(BiBfsDistance(g, 0, 4), 4u);
  EXPECT_EQ(BiBfsDistance(g, 1, 2), 1u);
}

TEST(BiBfsDistanceTest, Disconnected) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(BiBfsDistance(g, 0, 3), kUnreachable);
}

TEST(BiBfsDistanceTest, CycleAntipodes) {
  Graph g = CycleGraph(10);
  EXPECT_EQ(BiBfsDistance(g, 0, 5), 5u);
  EXPECT_EQ(BiBfsDistance(g, 0, 7), 3u);
}

struct BiBfsSweepParam {
  int kind;  // 0 = BA, 1 = ER, 2 = WS
  uint64_t seed;
};

class BiBfsSweep : public ::testing::TestWithParam<BiBfsSweepParam> {};

// Property: bidirectional distance equals full-BFS distance on random
// graphs of several families, for many pairs.
TEST_P(BiBfsSweep, MatchesFullBfs) {
  const auto& p = GetParam();
  Graph g;
  switch (p.kind) {
    case 0:
      g = BarabasiAlbert(300, 2, p.seed);
      break;
    case 1:
      g = LargestComponent(ErdosRenyi(300, 500, p.seed)).graph;
      break;
    default:
      g = WattsStrogatz(300, 4, 0.2, p.seed);
      break;
  }
  const auto pairs = SampleQueryPairs(g, 50, p.seed + 1);
  for (const auto& [u, v] : pairs) {
    const auto full = BfsDistances(g, u);
    EXPECT_EQ(BiBfsDistance(g, u, v), full[v]) << "u=" << u << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, BiBfsSweep,
                         ::testing::Values(BiBfsSweepParam{0, 1},
                                           BiBfsSweepParam{0, 2},
                                           BiBfsSweepParam{1, 3},
                                           BiBfsSweepParam{1, 4},
                                           BiBfsSweepParam{2, 5},
                                           BiBfsSweepParam{2, 6}));

TEST(EccentricityTest, PathEndpoints) {
  Graph g = PathGraph(8);
  EXPECT_EQ(Eccentricity(g, 0), 7u);
  EXPECT_EQ(Eccentricity(g, 4), 4u);
}

}  // namespace
}  // namespace qbs

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "baselines/bibfs.h"
#include "gen/generators.h"
#include "graph/components.h"
#include "tests/test_util.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

TEST(BiBfsTest, Figure3QueryAnswer) {
  Graph g = testing::Figure3Graph();
  BiBfs bibfs(g);
  const auto spg = bibfs.Query(2, 6);
  EXPECT_EQ(spg, SpgByDoubleBfs(g, 2, 6));
}

TEST(BiBfsTest, TrivialAndDisconnected) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}});
  BiBfs bibfs(g);
  EXPECT_EQ(bibfs.Query(1, 1).distance, 0u);
  EXPECT_FALSE(bibfs.Query(0, 4).Connected());
  EXPECT_EQ(bibfs.Query(0, 2).distance, 2u);
}

TEST(BiBfsTest, ReusedAcrossQueries) {
  Graph g = CycleGraph(12);
  BiBfs bibfs(g);
  for (VertexId v = 1; v < 12; ++v) {
    EXPECT_EQ(bibfs.Query(0, v), SpgByDoubleBfs(g, 0, v)) << "v=" << v;
  }
}

TEST(BiBfsTest, ScansFewerEdgesThanTwoFullBfs) {
  Graph g = BarabasiAlbert(3000, 3, 31);
  BiBfs bibfs(g);
  uint64_t scanned = 0;
  bibfs.Query(100, 2000, &scanned);
  // Must touch something, and far less than two full sweeps.
  EXPECT_GT(scanned, 0u);
  EXPECT_LT(scanned, 4 * g.NumEdges());
}

struct SweepParam {
  int family;
  uint64_t seed;
  uint32_t pairs;
};

class BiBfsOracleSweep : public ::testing::TestWithParam<SweepParam> {};

// Property: Bi-BFS equals the double-BFS oracle on every sampled pair of
// several graph families.
TEST_P(BiBfsOracleSweep, MatchesOracle) {
  const auto& p = GetParam();
  Graph g;
  switch (p.family) {
    case 0:
      g = BarabasiAlbert(400, 2, p.seed);
      break;
    case 1:
      g = LargestComponent(ErdosRenyi(400, 700, p.seed)).graph;
      break;
    case 2:
      g = WattsStrogatz(400, 6, 0.15, p.seed);
      break;
    case 3:
      g = LargestComponent(RMat(9, 3, 0.57, 0.19, 0.19, p.seed)).graph;
      break;
    default:
      g = GridGraph(18, 20);
      break;
  }
  BiBfs bibfs(g);
  const auto pairs = SampleQueryPairs(g, p.pairs, p.seed + 99);
  for (const auto& [u, v] : pairs) {
    const auto got = bibfs.Query(u, v);
    const auto want = SpgByDoubleBfs(g, u, v);
    ASSERT_EQ(got, want) << "u=" << u << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, BiBfsOracleSweep,
    ::testing::Values(SweepParam{0, 1, 40}, SweepParam{0, 2, 40},
                      SweepParam{1, 3, 40}, SweepParam{1, 4, 40},
                      SweepParam{2, 5, 40}, SweepParam{2, 6, 40},
                      SweepParam{3, 7, 40}, SweepParam{3, 8, 40},
                      SweepParam{4, 9, 40}));

}  // namespace
}  // namespace qbs

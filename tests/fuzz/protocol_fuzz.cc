// libFuzzer target for the QBSP wire surface: the incremental FrameReader
// and every payload codec. The decoders parse untrusted bytes, so the
// properties fuzzed here are exactly the ones the server relies on:
//
//   * no crash / OOB / UB on any byte stream, however torn up (ASan/UBSan
//     catch violations);
//   * bounded buffering (the reader's payload cap holds);
//   * decode → encode → decode is the identity on every payload the
//     decoder accepts (a decoded value always re-encodes canonically).
//
// Built two ways: with QBS_FUZZ_LIBFUZZER under clang -fsanitize=fuzzer
// for real fuzzing, and with a standalone main() that replays the
// checked-in corpus — that driver runs as a plain ctest in every build, so
// corpus regressions are caught even where libFuzzer isn't available.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/query_api.h"
#include "server/protocol.h"

namespace {

using namespace qbs;
using namespace qbs::server;

void ExerciseCodecs(std::span<const uint8_t> payload) {
  QueryRequest request;
  if (DecodeQueryRequest(payload, &request)) {
    // Round-trip property: an accepted request re-encodes to a payload
    // that decodes back to the same value.
    QueryRequest again;
    if (!DecodeQueryRequest(EncodeQueryRequest(request), &again) ||
        !(again == request)) {
      __builtin_trap();
    }
  }
  QueryResponse response;
  if (DecodeQueryResponse(payload, &response)) {
    QueryResponse again;
    if (!DecodeQueryResponse(EncodeQueryResponse(response), &again) ||
        !SameAnswer(again, response) ||
        again.degraded_lower != response.degraded_lower ||
        again.cache_hit != response.cache_hit) {
      __builtin_trap();
    }
  }
  uint32_t retry = 0;
  uint32_t depth = 0;
  if (DecodeBusy(payload, &retry, &depth)) {
    uint32_t retry2 = 0;
    uint32_t depth2 = 0;
    if (!DecodeBusy(EncodeBusy(retry, depth), &retry2, &depth2) ||
        retry2 != retry || depth2 != depth) {
      __builtin_trap();
    }
  }
  GraphDelta delta;
  uint32_t flags = 0;
  if (DecodeUpdateRequest(payload, &delta, &flags)) {
    GraphDelta delta2;
    uint32_t flags2 = 0;
    if (!DecodeUpdateRequest(EncodeUpdateRequest(delta, flags), &delta2,
                             &flags2) ||
        flags2 != flags || !(delta2.updates() == delta.updates())) {
      __builtin_trap();
    }
  }
  UpdateStats stats;
  if (DecodeUpdateResponse(payload, &stats)) {
    UpdateStats stats2;
    if (!DecodeUpdateResponse(EncodeUpdateResponse(stats), &stats2) ||
        stats2.applied_inserts != stats.applied_inserts ||
        stats2.applied_deletes != stats.applied_deletes ||
        stats2.noop_updates != stats.noop_updates ||
        stats2.invalid_updates != stats.invalid_updates ||
        stats2.repaired_columns != stats.repaired_columns ||
        stats2.rebuilt_columns != stats.rebuilt_columns ||
        stats2.deferred_columns != stats.deferred_columns) {
      __builtin_trap();
    }
  }
  ErrorCode code;
  std::string message;
  (void)DecodeError(payload, &code, &message);
}

void RunOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> input(data, size);

  // The whole input as a raw payload for every codec.
  ExerciseCodecs(input);

  // The input as a frame stream, fed in ragged growing chunks so header/
  // payload boundaries land everywhere; every decoded frame's payload goes
  // through the codecs again.
  FrameReader reader(/*max_payload=*/1u << 16);
  size_t off = 0;
  size_t chunk = 1;
  while (off < input.size()) {
    const size_t len = std::min(chunk, input.size() - off);
    reader.Feed(input.subspan(off, len));
    off += len;
    chunk = chunk * 2 + 1;
    Frame frame;
    while (reader.Next(&frame) == FrameReader::Status::kFrame) {
      ExerciseCodecs(frame.payload);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  RunOneInput(data, size);
  return 0;
}

#ifndef QBS_FUZZ_LIBFUZZER
// Standalone corpus driver: replays every file passed on the command line
// (the checked-in corpus under tests/fuzz/corpus/) through the target.
#include <cstdio>
#include <fstream>
#include <iterator>

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "protocol_fuzz: cannot open %s\n", argv[i]);
      return 1;
    }
    const std::vector<uint8_t> bytes(std::istreambuf_iterator<char>(in), {});
    RunOneInput(bytes.data(), bytes.size());
    ++ran;
  }
  std::printf("protocol_fuzz: replayed %d corpus inputs cleanly\n", ran);
  return 0;
}
#endif

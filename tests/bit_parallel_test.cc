// Bit-parallel label masks: definitional correctness against brute-force
// BFS, soundness/tightness of the label distance bounds, and the d <= 2
// label-only query fast path (distance AND full SPG with zero search,
// reverse, or recover edge scans).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "core/label_scan.h"
#include "core/labeling.h"
#include "core/landmark_selection.h"
#include "core/qbs_index.h"
#include "core/serialization.h"
#include "core/sketch.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/components.h"
#include "tests/test_util.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

Graph FamilyGraph(int family, uint64_t seed) {
  switch (family) {
    case 0:
      return BarabasiAlbert(150, 3, seed);
    case 1:
      return LargestComponent(ErdosRenyi(150, 320, seed)).graph;
    case 2:
      return WattsStrogatz(150, 4, 0.2, seed);
    default:
      return GridGraph(10, 12);
  }
}

struct BpParam {
  int family;
  uint64_t seed;
  uint32_t k;
};

class BitParallelDefinition : public ::testing::TestWithParam<BpParam> {};

// S_r^{-1}(v) / S_r^{0}(v) bits must match their definition exactly: bit j
// set iff the j-th selected neighbour u_j of r satisfies
// d(u_j, v) == d(r, v) - 1 (resp. == d(r, v)), for every vertex v.
TEST_P(BitParallelDefinition, MasksMatchBruteForce) {
  const auto& p = GetParam();
  Graph g = FamilyGraph(p.family, p.seed);
  const auto landmarks =
      SelectLandmarks(g, p.k, LandmarkStrategy::kHighestDegree, p.seed);
  const auto scheme = BuildLabelingScheme(g, landmarks);
  const PathLabeling& l = scheme.labeling;
  ASSERT_TRUE(l.has_bp_masks());

  for (LandmarkIndex i = 0; i < l.num_landmarks(); ++i) {
    const VertexId root = l.LandmarkVertex(i);
    const auto depth = BfsDistances(g, root);

    // The selected set is the first <= 64 non-landmark neighbours of root
    // in adjacency order.
    std::vector<VertexId> expected_selected;
    for (VertexId w : g.Neighbors(root)) {
      if (l.IsLandmark(w)) continue;
      expected_selected.push_back(w);
      if (expected_selected.size() == 64) break;
    }
    ASSERT_EQ(l.BpSelected(i), expected_selected);

    std::vector<std::vector<uint32_t>> dsel;
    dsel.reserve(expected_selected.size());
    for (VertexId u : expected_selected) dsel.push_back(BfsDistances(g, u));

    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const BpMask m = l.GetBpMask(v, i);
      if (depth[v] == 0 || depth[v] == kUnreachable) {
        EXPECT_EQ(m.s_minus, 0u) << "root/unreached v=" << v;
        EXPECT_EQ(m.s_zero, 0u) << "root/unreached v=" << v;
        continue;
      }
      uint64_t want_minus = 0;
      uint64_t want_zero = 0;
      for (size_t j = 0; j < expected_selected.size(); ++j) {
        if (dsel[j][v] + 1 == depth[v]) want_minus |= 1ull << j;
        if (dsel[j][v] == depth[v]) want_zero |= 1ull << j;
      }
      ASSERT_EQ(m.s_minus, want_minus)
          << "landmark " << i << " v=" << v << " depth=" << depth[v];
      ASSERT_EQ(m.s_zero, want_zero)
          << "landmark " << i << " v=" << v << " depth=" << depth[v];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitParallelDefinition,
                         ::testing::Values(BpParam{0, 1, 4}, BpParam{0, 2, 8},
                                           BpParam{1, 3, 6}, BpParam{2, 4, 4},
                                           BpParam{3, 5, 5},
                                           BpParam{0, 6, 1}));

// Fused-sweep equivalence: masks built by the fused top-down/bottom-up
// propagation (bp_fused = true, the default) are bit-identical to the
// two-sweep replay reference on every graph family, sequentially and in
// parallel. The fused path must be a pure optimization.
TEST_P(BitParallelDefinition, FusedSweepMatchesTwoSweepReplay) {
  const auto& p = GetParam();
  Graph g = FamilyGraph(p.family, p.seed);
  const auto landmarks =
      SelectLandmarks(g, p.k, LandmarkStrategy::kHighestDegree, p.seed);
  LabelingBuildOptions replay_options;
  replay_options.bp_fused = false;
  const auto replay = BuildLabelingScheme(g, landmarks, replay_options);
  for (const size_t threads : {size_t{1}, size_t{0}}) {
    LabelingBuildOptions fused_options;
    fused_options.num_threads = threads;
    const auto fused = BuildLabelingScheme(g, landmarks, fused_options);
    ASSERT_TRUE(fused.labeling.has_bp_masks());
    for (LandmarkIndex i = 0; i < fused.labeling.num_landmarks(); ++i) {
      ASSERT_EQ(fused.labeling.BpSelected(i), replay.labeling.BpSelected(i));
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (LandmarkIndex i = 0; i < fused.labeling.num_landmarks(); ++i) {
        ASSERT_EQ(fused.labeling.GetBpMask(v, i),
                  replay.labeling.GetBpMask(v, i))
            << "threads=" << threads << " v=" << v << " landmark=" << i;
      }
      for (LandmarkIndex i = 0; i < fused.labeling.num_landmarks(); ++i) {
        ASSERT_EQ(fused.labeling.Get(v, i), replay.labeling.Get(v, i));
      }
    }
  }
}

// Parallel construction produces the identical masks (Lemma 5.2 analogue:
// the masks are a pure function of (G, R)).
TEST(BitParallelTest, ParallelMatchesSequential) {
  Graph g = BarabasiAlbert(400, 3, 11);
  const auto landmarks =
      SelectLandmarks(g, 12, LandmarkStrategy::kHighestDegree, 11);
  LabelingBuildOptions par;
  par.num_threads = 0;
  const auto seq = BuildLabelingScheme(g, landmarks);
  const auto p = BuildLabelingScheme(g, landmarks, par);
  for (LandmarkIndex i = 0; i < seq.labeling.num_landmarks(); ++i) {
    ASSERT_EQ(seq.labeling.BpSelected(i), p.labeling.BpSelected(i));
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (LandmarkIndex i = 0; i < seq.labeling.num_landmarks(); ++i) {
      ASSERT_EQ(seq.labeling.GetBpMask(v, i), p.labeling.GetBpMask(v, i));
    }
  }
}

class BitParallelQuery : public ::testing::TestWithParam<BpParam> {};

// The label bounds never disagree with BfsDistances: lower <= d <= upper
// for every pair sharing a landmark, with or without the mask refinement —
// for EVERY compiled scan kernel (scalar, AVX2) and the batched sweep,
// which must all also agree with each other bit for bit.
TEST_P(BitParallelQuery, LabelBoundsNeverDisagreeWithBfs) {
  const auto& p = GetParam();
  Graph g = FamilyGraph(p.family, p.seed);
  QbsOptions options;
  options.num_landmarks = p.k;
  QbsIndex index = QbsIndex::Build(g, options);
  const PathLabeling& l = index.labeling();

  std::vector<VertexId> us;
  std::vector<VertexId> vs;
  std::vector<uint32_t> dists;
  for (const auto& [u, v] : SampleQueryPairs(g, 120, p.seed)) {
    if (u == v) continue;
    us.push_back(u);
    vs.push_back(v);
    dists.push_back(BfsDistances(g, u)[v]);
  }

  const ScanKernel saved = ActiveScanKernel();
  std::vector<LabelBound> first_kernel_bounds;
  for (const ScanKernel kernel : SupportedScanKernels()) {
    SetActiveScanKernel(kernel);
    const char* kname = ScanOpsFor(kernel).name;
    std::vector<LabelBound> batched(us.size());
    ComputeLabelBoundsBatch(l, index.meta_graph(), us.data(), vs.data(),
                            us.size(), kUnreachable, batched.data());
    for (size_t i = 0; i < us.size(); ++i) {
      const VertexId u = us[i];
      const VertexId v = vs[i];
      const uint32_t d = dists[i];
      const LabelBound bound = ComputeLabelBound(l, index.meta_graph(), u, v);
      if (d != kUnreachable) {
        EXPECT_LE(bound.lower, d) << kname << " u=" << u << " v=" << v;
        EXPECT_GE(index.DistanceUpperBound(u, v), d) << kname;
      }
      if (bound.upper != kUnreachable) {
        EXPECT_GE(bound.upper, d) << kname << " u=" << u << " v=" << v;
      }
      // The batched sweep is the same bound, and every kernel agrees with
      // the first (scalar).
      ASSERT_EQ(batched[i].lower, bound.lower)
          << kname << " u=" << u << " v=" << v;
      ASSERT_EQ(batched[i].upper, bound.upper)
          << kname << " u=" << u << " v=" << v;
      if (kernel == SupportedScanKernels().front()) {
        first_kernel_bounds.push_back(bound);
      } else {
        ASSERT_EQ(bound.lower, first_kernel_bounds[i].lower)
            << kname << " u=" << u << " v=" << v;
        ASSERT_EQ(bound.upper, first_kernel_bounds[i].upper)
            << kname << " u=" << u << " v=" << v;
      }
    }
  }
  SetActiveScanKernel(saved);
}

// Property test for the mask-lifted lower bound: for every pair reachable
// from a spread of sources, ComputeLabelBound().lower never exceeds the
// true BFS distance (a lifted witness must pin real per-neighbour
// distances, never invent slack).
TEST_P(BitParallelQuery, LowerBoundNeverExceedsBfsDistances) {
  const auto& p = GetParam();
  Graph g = FamilyGraph(p.family, p.seed);
  QbsOptions options;
  options.num_landmarks = p.k;
  QbsIndex index = QbsIndex::Build(g, options);
  const PathLabeling& l = index.labeling();

  std::vector<VertexId> sources = index.landmarks();
  for (VertexId s = 0; s < g.NumVertices();
       s += g.NumVertices() / 8 + 1) {
    sources.push_back(s);
  }
  const ScanKernel saved = ActiveScanKernel();
  for (const ScanKernel kernel : SupportedScanKernels()) {
    SetActiveScanKernel(kernel);
    const char* kname = ScanOpsFor(kernel).name;
    size_t lifted = 0;
    for (const VertexId s : sources) {
      const auto dist = BfsDistances(g, s);
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        if (s == t) continue;
        const LabelBound bound = ComputeLabelBound(l, index.meta_graph(), s, t);
        if (dist[t] != kUnreachable) {
          ASSERT_LE(bound.lower, dist[t]) << kname << " s=" << s << " t=" << t;
          if (bound.upper != kUnreachable) {
            ASSERT_GE(bound.upper, dist[t])
                << kname << " s=" << s << " t=" << t;
          }
        } else {
          // Disconnected pairs share no landmark: nothing to bound.
          ASSERT_EQ(bound.lower, 0u) << kname;
          ASSERT_EQ(bound.upper, kUnreachable) << kname;
        }
        if (bound.lower > 0 && bound.lower == dist[t]) ++lifted;
      }
    }
    EXPECT_GT(lifted, 0u) << kname;  // the bound is tight somewhere
  }
  SetActiveScanKernel(saved);
}

// d <= 2 queries never scan a reverse or recover edge: label-certified
// pairs short-circuit entirely (zero search scans too), and uncertified
// close pairs emit their SPG directly after the search fixes the distance.
// d >= 3 pairs must never short-circuit.
TEST_P(BitParallelQuery, ShortDistancesAnsweredFromLabels) {
  const auto& p = GetParam();
  Graph g = FamilyGraph(p.family, p.seed);
  QbsOptions options;
  options.num_landmarks = p.k;
  QbsIndex index = QbsIndex::Build(g, options);

  // Collect pairs at each true distance from a handful of sources,
  // including landmark endpoints (resolved via the other side's label row).
  std::vector<VertexId> sources = index.landmarks();
  for (VertexId s = 0; s < g.NumVertices() && sources.size() < p.k + 6;
       s += g.NumVertices() / 6 + 1) {
    sources.push_back(s);
  }
  size_t checked_close = 0;
  size_t checked_far = 0;
  size_t certified = 0;
  for (const VertexId s : sources) {
    const auto dist = BfsDistances(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      const bool close = dist[t] <= 2;
      if (close && checked_close > 600) continue;
      if (!close && checked_far > 200) continue;
      SearchStats stats;
      const auto spg = index.Query(s, t, &stats);
      ASSERT_EQ(spg, SpgByDoubleBfs(g, s, t)) << "s=" << s << " t=" << t;
      if (close) {
        ++checked_close;
        // Never any reverse or recover work for a d <= 2 pair.
        EXPECT_EQ(stats.edges_scanned_reverse, 0u) << "s=" << s << " t=" << t;
        EXPECT_EQ(stats.edges_scanned_recover, 0u) << "s=" << s << " t=" << t;
        EXPECT_EQ(stats.delta_cache_hits, 0u);
        if (s != t && stats.d_label_upper <= 2) {
          // Certified: answered from labels alone, zero search scans.
          ++certified;
          EXPECT_EQ(stats.label_short_circuits, 1u)
              << "s=" << s << " t=" << t << " d=" << dist[t];
          EXPECT_EQ(stats.edges_scanned_search, 0u)
              << "s=" << s << " t=" << t;
        }
      } else {
        ++checked_far;
        EXPECT_EQ(stats.label_short_circuits, 0u)
            << "s=" << s << " t=" << t << " d=" << dist[t];
      }
    }
  }
  EXPECT_GT(checked_close, 0u);
  EXPECT_GT(checked_far, 0u);
  // The sweep must actually exercise the certified fast path (sources
  // include the landmarks, whose neighbourhoods always certify).
  EXPECT_GT(certified, 0u);
}

// Masks off reproduces the pre-mask behavior bit for bit: identical SPGs,
// no short circuits, no label bound.
TEST_P(BitParallelQuery, DisabledMasksMatchEnabled) {
  const auto& p = GetParam();
  Graph g = FamilyGraph(p.family, p.seed);
  QbsOptions on;
  on.num_landmarks = p.k;
  QbsOptions off = on;
  off.bit_parallel = false;
  QbsIndex index_on = QbsIndex::Build(g, on);
  QbsIndex index_off = QbsIndex::Build(g, off);
  EXPECT_FALSE(index_off.labeling().has_bp_masks());
  EXPECT_EQ(index_off.BpMaskSizeBytes(), 0u);
  EXPECT_GT(index_on.BpMaskSizeBytes(), 0u);
  for (const auto& [u, v] : SampleQueryPairs(g, 80, p.seed + 1)) {
    SearchStats stats_off;
    const auto a = index_on.Query(u, v);
    const auto b = index_off.Query(u, v, &stats_off);
    ASSERT_EQ(a, b) << "u=" << u << " v=" << v;
    EXPECT_EQ(stats_off.label_short_circuits, 0u);
    EXPECT_EQ(stats_off.d_label_upper, kUnreachable);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitParallelQuery,
                         ::testing::Values(BpParam{0, 21, 8},
                                           BpParam{1, 22, 10},
                                           BpParam{2, 23, 6},
                                           BpParam{3, 24, 5},
                                           BpParam{0, 25, 20}));

// QueryBatch runs the same fast path through the pooled searchers.
TEST(BitParallelTest, QueryBatchAgreesWithSerialQueries) {
  Graph g = BarabasiAlbert(500, 4, 31);
  QbsOptions options;
  options.num_landmarks = 16;
  QbsIndex index = QbsIndex::Build(g, options);
  std::vector<QueryRequest> requests;
  for (const auto& [u, v] : SampleQueryPairs(g, 200, 31)) {
    requests.emplace_back(u, v);
  }
  // Mix in known-close pairs so the batch exercises the short circuit.
  for (VertexId u = 0; u < 20; ++u) {
    for (VertexId w : g.Neighbors(u)) {
      requests.emplace_back(u, w);
      break;
    }
  }
  QbsIndex::BatchOptions four;
  four.num_threads = 4;
  const auto batch = index.QueryBatch(requests, four);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(batch[i].spg, index.Query(requests[i].u, requests[i].v))
        << "pair " << i;
  }
}

// Landmark endpoints: the fast path serves (landmark, x) pairs at d <= 2
// and landmark-landmark pairs via the meta-graph distance.
TEST(BitParallelTest, LandmarkEndpointsShortCircuit) {
  Graph g = testing::Figure4Graph();
  QbsIndex index =
      QbsIndex::BuildWithLandmarks(g, testing::Figure4Landmarks(), {});
  size_t certified = 0;
  for (const VertexId r : index.landmarks()) {
    const auto dist = BfsDistances(g, r);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      SearchStats stats;
      const auto spg = index.Query(r, t, &stats);
      ASSERT_EQ(spg, SpgByDoubleBfs(g, r, t)) << "r=" << r << " t=" << t;
      if (r != t && dist[t] <= 2) {
        EXPECT_EQ(stats.edges_scanned_recover, 0u) << "r=" << r << " t=" << t;
        EXPECT_EQ(stats.edges_scanned_reverse, 0u) << "r=" << r << " t=" << t;
        if (stats.d_label_upper <= 2) {
          ++certified;
          EXPECT_EQ(stats.label_short_circuits, 1u)
              << "r=" << r << " t=" << t;
          EXPECT_EQ(stats.edges_scanned_search, 0u);
        }
      }
    }
  }
  EXPECT_GT(certified, 0u);
}

// Mask-guided pruning: identical answers with strictly fewer search edge
// scans on the queries where all shortest paths cross landmarks (the
// widest, least fruitful frontiers — exactly where a certified
// depth + lower bound > budget cuts whole subtrees). A small-world ring
// keeps distances long-range, which is the regime the pruning targets
// (short-budget searches skip the per-vertex check entirely).
TEST(BitParallelTest, MaskPruneReducesAllThroughLandmarkScans) {
  // A wide small-world ring: distances stay long-range (budgets clear
  // kMaskPruneMinBudget) and degrees clear the per-vertex check gate.
  Graph g = WattsStrogatz(1200, 20, 0.01, 77);
  QbsOptions pruned_options;
  pruned_options.num_landmarks = 16;
  QbsOptions unpruned_options = pruned_options;
  unpruned_options.mask_prune = false;
  QbsIndex pruned = QbsIndex::Build(g, pruned_options);
  QbsIndex unpruned = QbsIndex::Build(g, unpruned_options);

  uint64_t pruned_scans = 0;
  uint64_t unpruned_scans = 0;
  uint64_t prunes = 0;
  size_t all_through = 0;
  for (const auto& [u, v] : SampleQueryPairs(g, 400, 77)) {
    SearchStats sp;
    SearchStats su;
    const auto a = pruned.Query(u, v, &sp);
    const auto b = unpruned.Query(u, v, &su);
    ASSERT_EQ(a, b) << "u=" << u << " v=" << v;
    EXPECT_EQ(su.lb_prunes, 0u);
    prunes += sp.lb_prunes;
    if (su.coverage == PairCoverage::kAllThroughLandmarks &&
        su.label_short_circuits == 0) {
      ++all_through;
      pruned_scans += sp.edges_scanned_search;
      unpruned_scans += su.edges_scanned_search;
    }
  }
  ASSERT_GT(all_through, 0u);
  EXPECT_GT(prunes, 0u);
  EXPECT_LE(pruned_scans, unpruned_scans);
  EXPECT_LT(pruned_scans, unpruned_scans)
      << "pruning never fired on " << all_through
      << " kAllThroughLandmarks searches";
  std::printf("all-through searches: %zu, prunes: %llu, "
              "edges_scanned_search %llu -> %llu (%.2fx)\n",
              all_through, static_cast<unsigned long long>(prunes),
              static_cast<unsigned long long>(unpruned_scans),
              static_cast<unsigned long long>(pruned_scans),
              unpruned_scans > 0 ? static_cast<double>(unpruned_scans) /
                                       static_cast<double>(std::max<uint64_t>(
                                           pruned_scans, 1))
                                 : 0.0);
}

// Loading a v1 (QBSIDX01) file with bit_parallel requested cannot invent
// masks: the index runs mask-less (sound bounds, oracle-exact queries).
// And force-enabling empty masks on such a scheme must degrade to "no
// witnesses": bounds identical to the mask-less ones, never tighter.
TEST(BitParallelTest, V1LoadThenQueryWithMasksRequested) {
  const std::string fixture =
      std::string(QBS_TEST_DATA_DIR) + "/figure4_v1.qbsidx";
  Graph g = testing::Figure4Graph();
  QbsOptions options;
  options.bit_parallel = true;  // requested, but a v1 file has none
  auto index = QbsIndex::LoadFromFile(g, fixture, options);
  ASSERT_TRUE(index.has_value());
  EXPECT_FALSE(index->labeling().has_bp_masks());
  EXPECT_EQ(index->BpMaskSizeBytes(), 0u);

  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    const auto dist = BfsDistances(g, u);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      SearchStats stats;
      ASSERT_EQ(index->Query(u, v, &stats), SpgByDoubleBfs(g, u, v))
          << "u=" << u << " v=" << v;
      EXPECT_EQ(stats.label_short_circuits, 0u);
      if (u != v && dist[v] != kUnreachable) {
        EXPECT_GE(index->DistanceUpperBound(u, v), dist[v]);
        const LabelBound bound =
            ComputeLabelBound(index->labeling(), index->meta_graph(), u, v);
        EXPECT_LE(bound.lower, dist[v]);
      }
    }
  }

  // Adversarial variant: a scheme whose mask matrix exists but is all
  // zeros (what a loader bug would produce). Upper refinement and lower
  // lift both require set bits on both sides, so every bound must equal
  // the mask-less one.
  auto scheme = LoadLabelingScheme(fixture);
  ASSERT_TRUE(scheme.has_value());
  auto empty_masks = LoadLabelingScheme(fixture);
  ASSERT_TRUE(empty_masks.has_value());
  empty_masks->labeling.EnableBpMasks();
  ASSERT_TRUE(empty_masks->labeling.has_bp_masks());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (u == v) continue;
      const LabelBound plain =
          ComputeLabelBound(scheme->labeling, scheme->meta, u, v);
      const LabelBound with_empty =
          ComputeLabelBound(empty_masks->labeling, empty_masks->meta, u, v);
      EXPECT_EQ(with_empty.lower, plain.lower) << "u=" << u << " v=" << v;
      EXPECT_EQ(with_empty.upper, plain.upper) << "u=" << u << " v=" << v;
    }
  }
}

// Save/Load round-trips the masks and the selected sets; a loaded index
// short-circuits exactly like the one that was saved.
TEST(BitParallelTest, SerializationRoundTripPreservesMasks) {
  const std::string path = ::testing::TempDir() + "/bp_index.qbsidx";
  Graph g = BarabasiAlbert(300, 3, 41);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex built = QbsIndex::Build(g, options);
  ASSERT_TRUE(built.Save(path));
  auto loaded = QbsIndex::LoadFromFile(g, path, options);
  ASSERT_TRUE(loaded.has_value());
  const PathLabeling& a = built.labeling();
  const PathLabeling& b = loaded->labeling();
  ASSERT_TRUE(b.has_bp_masks());
  for (LandmarkIndex i = 0; i < a.num_landmarks(); ++i) {
    ASSERT_EQ(a.BpSelected(i), b.BpSelected(i));
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (LandmarkIndex i = 0; i < a.num_landmarks(); ++i) {
      ASSERT_EQ(a.GetBpMask(v, i), b.GetBpMask(v, i));
    }
  }
  for (const auto& [u, v] : SampleQueryPairs(g, 60, 41)) {
    SearchStats sa;
    SearchStats sb;
    ASSERT_EQ(built.Query(u, v, &sa), loaded->Query(u, v, &sb));
    EXPECT_EQ(sa.label_short_circuits, sb.label_short_circuits);
    EXPECT_EQ(sa.d_label_upper, sb.d_label_upper);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qbs

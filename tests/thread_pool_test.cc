#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qbs {
namespace {

// Work stealing under skewed task costs: a few heavy tasks scheduled first
// must not serialize the many light ones behind them, and every task must
// run exactly once.
TEST(ThreadPoolStressTest, SkewedTaskCosts) {
  constexpr int kTasks = 400;
  std::vector<std::atomic<int>> runs(kTasks);
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.Schedule([&runs, i] {
        if (i % 97 == 0) {
          // Heavy outlier: ~100x the cost of a light task.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        runs[i].fetch_add(1);
      });
    }
    pool.Wait();
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolStressTest, ScheduleFromInsideTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.Schedule([&pool, &count] {
        count.fetch_add(1);
        for (int j = 0; j < 5; ++j) {
          pool.Schedule([&count] { count.fetch_add(1); });
        }
      });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 20 * 6);
  }
}

TEST(ThreadPoolStressTest, ManyWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.Schedule([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 8);
  }
}

TEST(ParallelForGrainTest, SkewedIterationCostsCoverAllIndices) {
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelForOptions options;
  options.num_threads = 6;
  options.grain = 4;  // small grain so the skew rebalances across chunks
  ParallelFor(kCount, options, [&](size_t i, size_t worker) {
    ASSERT_LT(worker, 6u);
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForGrainTest, GrainLargerThanCount) {
  std::vector<std::atomic<int>> hits(10);
  ParallelForOptions options;
  options.num_threads = 4;
  options.grain = 100;
  ParallelFor(hits.size(), options,
              [&](size_t i, size_t) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForGrainTest, NestedParallelForDoesNotDeadlock) {
  std::atomic<int> total{0};
  ParallelFor(8, 4, [&](size_t, size_t) {
    ParallelFor(16, 2, [&](size_t, size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelForGrainTest, WorkerIndicesAreExclusive) {
  // Two iterations sharing a worker index must never run concurrently:
  // per-worker scratch (BFS depth arrays, batch searchers) relies on it.
  constexpr size_t kWorkers = 4;
  std::atomic<int> in_flight[kWorkers] = {};
  std::atomic<bool> ok{true};
  ParallelForOptions options;
  options.num_threads = kWorkers;
  options.grain = 1;
  ParallelFor(200, options, [&](size_t, size_t worker) {
    if (in_flight[worker].fetch_add(1) != 0) ok = false;
    std::this_thread::yield();
    in_flight[worker].fetch_sub(1);
  });
  EXPECT_TRUE(ok.load());
}

TEST(ParallelForGrainTest, ConcurrentCallersShareThePool) {
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 3; ++t) {
    callers.emplace_back([&total] {
      ParallelFor(100, 3, [&](size_t, size_t) { total.fetch_add(1); });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 300);
}

}  // namespace
}  // namespace qbs

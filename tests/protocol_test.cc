// Wire-protocol framing and codec tests: the FrameReader parses untrusted
// bytes, so truncated, oversized, and garbage streams must surface as
// clean kNeedMore/kBad statuses — never a crash or unbounded buffering —
// and every payload codec must reject malformed payloads.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"

namespace qbs::server {
namespace {

std::vector<uint8_t> FrameOf(FrameType type,
                             const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  AppendFrame(&out, type, payload);
  return out;
}

TEST(ProtocolTest, RoundTripsEveryFrameType) {
  for (const FrameType type :
       {FrameType::kQueryRequest, FrameType::kQueryResponse,
        FrameType::kError, FrameType::kBusy, FrameType::kPing,
        FrameType::kPong, FrameType::kShutdown, FrameType::kShutdownAck}) {
    const std::vector<uint8_t> payload{1, 2, 3};
    FrameReader reader;
    reader.Feed(FrameOf(type, payload));
    Frame frame;
    ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kNeedMore);
  }
}

TEST(ProtocolTest, ByteAtATimeDelivery) {
  const QueryRequest request(7, 11, QueryMode::kDistance, 5, 1);
  const auto bytes = FrameOf(FrameType::kQueryRequest,
                             EncodeQueryRequest(request));
  FrameReader reader;
  Frame frame;
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (i + 1 < bytes.size()) {
      reader.Feed(std::span<const uint8_t>(&bytes[i], 1));
      ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kNeedMore)
          << "byte " << i;
    } else {
      reader.Feed(std::span<const uint8_t>(&bytes[i], 1));
      ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame);
    }
  }
  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(frame.payload, &decoded));
  EXPECT_EQ(decoded, request);
}

TEST(ProtocolTest, CoalescedFramesInOneFeed) {
  std::vector<uint8_t> stream;
  AppendFrame(&stream, FrameType::kPing, {});
  AppendFrame(&stream, FrameType::kPong, {});
  AppendFrame(&stream, FrameType::kBusy, EncodeBusy(25));
  FrameReader reader;
  reader.Feed(stream);
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPing);
  ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPong);
  ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kBusy);
  uint32_t retry = 0;
  ASSERT_TRUE(DecodeBusy(frame.payload, &retry));
  EXPECT_EQ(retry, 25u);
  EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kNeedMore);
}

TEST(ProtocolTest, GarbageMagicIsBadAndSticky) {
  FrameReader reader;
  const std::vector<uint8_t> garbage{'G', 'E', 'T', ' ', '/', ' ', 'H',
                                     'T', 'T', 'P', '/', '1', '.', '1'};
  reader.Feed(garbage);
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kBad);
  EXPECT_FALSE(reader.error().empty());
  // Sticky: even valid bytes fed afterwards do not resurrect the stream.
  reader.Feed(FrameOf(FrameType::kPing, {}));
  EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kBad);
}

TEST(ProtocolTest, RejectsWrongVersionTypeAndReserved) {
  const auto base = FrameOf(FrameType::kPing, {});
  {
    auto bytes = base;
    bytes[4] = kProtocolVersion + 1;
    FrameReader reader;
    reader.Feed(bytes);
    Frame frame;
    EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kBad);
  }
  {
    auto bytes = base;
    bytes[5] = 0;  // below the valid FrameType range
    FrameReader reader;
    reader.Feed(bytes);
    Frame frame;
    EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kBad);
  }
  {
    auto bytes = base;
    bytes[5] = 200;  // above the valid FrameType range
    FrameReader reader;
    reader.Feed(bytes);
    Frame frame;
    EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kBad);
  }
  {
    auto bytes = base;
    bytes[6] = 1;  // reserved must be zero
    FrameReader reader;
    reader.Feed(bytes);
    Frame frame;
    EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kBad);
  }
}

TEST(ProtocolTest, OversizedLengthRejectedWithoutBuffering) {
  // A header advertising a payload beyond the reader's cap must fail fast
  // (the reader never waits for — or allocates — the advertised bytes).
  FrameReader reader(/*max_payload=*/1024);
  std::vector<uint8_t> bytes = FrameOf(FrameType::kPing, {});
  bytes[8] = 0xFF;  // length = 0xFFFF... far over the 1 KiB cap
  bytes[9] = 0xFF;
  reader.Feed(bytes);
  Frame frame;
  EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kBad);
}

TEST(ProtocolTest, TruncatedStreamStaysNeedMore) {
  auto bytes = FrameOf(FrameType::kQueryRequest,
                       EncodeQueryRequest(QueryRequest(1, 2)));
  bytes.resize(bytes.size() - 5);  // drop the payload tail
  FrameReader reader;
  reader.Feed(bytes);
  Frame frame;
  EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kNeedMore);
}

TEST(ProtocolTest, QueryRequestCodecRoundTrip) {
  const QueryRequest request(123456, 654321, QueryMode::kDistance,
                             /*budget_in=*/7, /*flags_in=*/kQueryFlagNoCache);
  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(request), &decoded));
  EXPECT_EQ(decoded, request);
}

TEST(ProtocolTest, QueryRequestCodecRejectsMalformed) {
  auto payload = EncodeQueryRequest(QueryRequest(1, 2));
  QueryRequest out;
  {
    auto truncated = payload;
    truncated.pop_back();
    EXPECT_FALSE(DecodeQueryRequest(truncated, &out));
  }
  {
    auto oversized = payload;
    oversized.push_back(0);
    EXPECT_FALSE(DecodeQueryRequest(oversized, &out));
  }
  {
    auto bad_mode = payload;
    bad_mode[8] = 9;  // not a QueryMode
    EXPECT_FALSE(DecodeQueryRequest(bad_mode, &out));
  }
}

TEST(ProtocolTest, QueryResponseCodecRoundTrip) {
  QueryResponse response;
  response.spg.u = 3;
  response.spg.v = 9;
  response.spg.distance = 4;
  response.spg.edges = {{3, 5}, {5, 7}, {7, 9}};
  response.flags = kResponseFlagBudgetExceeded;
  response.cache_hit = true;
  response.stats.edges_scanned_search = 12345;

  QueryResponse decoded;
  ASSERT_TRUE(DecodeQueryResponse(EncodeQueryResponse(response), &decoded));
  EXPECT_TRUE(SameAnswer(decoded, response));
  EXPECT_EQ(decoded.spg.u, 3u);
  EXPECT_EQ(decoded.spg.v, 9u);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_EQ(decoded.stats.TotalEdgesScanned(),
            response.stats.TotalEdgesScanned());
}

TEST(ProtocolTest, QueryResponseCodecRejectsMalformed) {
  QueryResponse response;
  response.spg.u = 1;
  response.spg.v = 2;
  response.spg.distance = 1;
  response.spg.edges = {{1, 2}};
  const auto payload = EncodeQueryResponse(response);
  QueryResponse out;
  {
    auto truncated = payload;
    truncated.resize(4);
    EXPECT_FALSE(DecodeQueryResponse(truncated, &out));
  }
  {
    // Edge count advertising more edges than bytes present.
    auto lying = payload;
    lying[28] = 0xFF;
    EXPECT_FALSE(DecodeQueryResponse(lying, &out));
  }
  {
    auto bad_pad = payload;
    bad_pad[17] = 1;
    EXPECT_FALSE(DecodeQueryResponse(bad_pad, &out));
  }
}

TEST(ProtocolTest, QueryRequestCodecCarriesDeadline) {
  QueryRequest request(7, 8, QueryMode::kSpg, 0, 0, /*deadline_ms_in=*/250);
  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(request), &decoded));
  EXPECT_EQ(decoded.deadline_ms, 250u);
  EXPECT_EQ(decoded, request);
  // deadline 0 ("already expired") is a real value, distinct from the
  // kNoDeadline default.
  request.deadline_ms = 0;
  ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(request), &decoded));
  EXPECT_EQ(decoded.deadline_ms, 0u);
}

TEST(ProtocolTest, QueryRequestCodecAcceptsLegacy20ByteLayout) {
  // A pre-deadline client sends 20 bytes; it must decode with no deadline.
  auto payload = EncodeQueryRequest(QueryRequest(11, 22, QueryMode::kDistance,
                                                 /*budget_in=*/3,
                                                 /*flags_in=*/0,
                                                 /*deadline_ms_in=*/99));
  ASSERT_EQ(payload.size(), 24u);
  payload.resize(20);
  QueryRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(payload, &decoded));
  EXPECT_EQ(decoded.u, 11u);
  EXPECT_EQ(decoded.v, 22u);
  EXPECT_EQ(decoded.mode, QueryMode::kDistance);
  EXPECT_EQ(decoded.budget, 3u);
  EXPECT_EQ(decoded.deadline_ms, kNoDeadline);
}

TEST(ProtocolTest, DegradedResponseCodecRoundTripsTheLowerBound) {
  QueryResponse response;
  response.spg.u = 4;
  response.spg.v = 17;
  response.spg.distance = 9;  // upper bound
  response.flags = kResponseFlagDegraded;
  response.degraded_lower = 6;

  const auto payload = EncodeQueryResponse(response);
  QueryResponse decoded;
  ASSERT_TRUE(DecodeQueryResponse(payload, &decoded));
  EXPECT_TRUE(decoded.degraded());
  EXPECT_EQ(decoded.degraded_lower, 6u);
  EXPECT_EQ(decoded.distance(), 9u);
  EXPECT_TRUE(SameAnswer(decoded, response));

  // The trailing bound is gated by the flag: with the flag set but the
  // tail missing (or doubled), the payload is malformed, never misread.
  QueryResponse out;
  {
    auto missing_tail = payload;
    missing_tail.resize(missing_tail.size() - 4);
    EXPECT_FALSE(DecodeQueryResponse(missing_tail, &out));
  }
  {
    auto extra_tail = payload;
    extra_tail.insert(extra_tail.end(), {0, 0, 0, 0});
    EXPECT_FALSE(DecodeQueryResponse(extra_tail, &out));
  }
  // And an undegraded response must not carry a tail.
  QueryResponse plain;
  plain.spg.u = 1;
  plain.spg.v = 2;
  plain.spg.distance = 1;
  auto plain_payload = EncodeQueryResponse(plain);
  plain_payload.insert(plain_payload.end(), {1, 2, 3, 4});
  EXPECT_FALSE(DecodeQueryResponse(plain_payload, &out));
}

TEST(ProtocolTest, BusyCodecCarriesQueueDepthAndAcceptsLegacy) {
  const auto payload = EncodeBusy(/*retry_after_ms=*/40, /*queue_depth=*/7);
  ASSERT_EQ(payload.size(), 8u);
  uint32_t retry = 0;
  uint32_t depth = 0;
  ASSERT_TRUE(DecodeBusy(payload, &retry, &depth));
  EXPECT_EQ(retry, 40u);
  EXPECT_EQ(depth, 7u);
  // Depth out-param is optional.
  ASSERT_TRUE(DecodeBusy(payload, &retry));
  // Legacy 4-byte hint-only payload decodes with depth 0.
  auto legacy = payload;
  legacy.resize(4);
  depth = 123;
  ASSERT_TRUE(DecodeBusy(legacy, &retry, &depth));
  EXPECT_EQ(retry, 40u);
  EXPECT_EQ(depth, 0u);
  // Anything else is malformed.
  auto bad = payload;
  bad.resize(6);
  EXPECT_FALSE(DecodeBusy(bad, &retry, &depth));
}

TEST(ProtocolTest, ErrorCodecRoundTrip) {
  const auto payload = EncodeError(ErrorCode::kVertexOutOfRange, "nope");
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  ASSERT_TRUE(DecodeError(payload, &code, &message));
  EXPECT_EQ(code, ErrorCode::kVertexOutOfRange);
  EXPECT_EQ(message, "nope");
  EXPECT_FALSE(DecodeError(std::vector<uint8_t>{1, 2}, &code, &message));
}

TEST(ProtocolTest, LongStreamCompactsWithoutLosingFrames) {
  // Many frames through one reader: the lazy compaction path must never
  // drop or duplicate a frame.
  FrameReader reader;
  std::vector<uint8_t> stream;
  constexpr int kFrames = 500;
  for (int i = 0; i < kFrames; ++i) {
    AppendFrame(&stream, FrameType::kBusy,
                EncodeBusy(static_cast<uint32_t>(i)));
  }
  // Feed in ragged 37-byte chunks so frame boundaries never align.
  int seen = 0;
  Frame frame;
  for (size_t off = 0; off < stream.size(); off += 37) {
    const size_t len = std::min<size_t>(37, stream.size() - off);
    reader.Feed(std::span<const uint8_t>(stream.data() + off, len));
    while (reader.Next(&frame) == FrameReader::Status::kFrame) {
      uint32_t value = 0;
      ASSERT_TRUE(DecodeBusy(frame.payload, &value));
      ASSERT_EQ(value, static_cast<uint32_t>(seen));
      ++seen;
    }
  }
  EXPECT_EQ(seen, kFrames);
}

}  // namespace
}  // namespace qbs::server

// Shared test fixtures: the paper's worked-example graphs and brute-force
// validators used by the property tests.

#ifndef QBS_TESTS_TEST_UTIL_H_
#define QBS_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <utility>
#include <vector>

#include "core/labeling.h"
#include "graph/bfs.h"
#include "graph/graph.h"
#include "graph/spg.h"

namespace qbs::testing {

// Builds a graph from 1-indexed edge pairs (the paper's figures number
// vertices from 1); vertex k in the paper is vertex k-1 here.
inline Graph FromPaperEdges(
    VertexId n, std::initializer_list<std::pair<int, int>> edges) {
  std::vector<Edge> e;
  for (const auto& [a, b] : edges) {
    e.emplace_back(static_cast<VertexId>(a - 1), static_cast<VertexId>(b - 1));
  }
  return Graph::FromEdges(n, std::move(e));
}

// The 7-vertex graph of Figure 3 (paper ids 1..7 -> 0..6). The SPG(3, 7)
// answer is {3-1, 1-2, 3-4, 4-2, 2-5, 5-7} (paper ids).
inline Graph Figure3Graph() {
  return FromPaperEdges(7, {{1, 2},
                            {1, 3},
                            {2, 4},
                            {3, 4},
                            {2, 5},
                            {2, 6},
                            {5, 6},
                            {5, 7}});
}

// The 14-vertex running-example graph of Figures 2/4/5/6 (paper ids 1..14
// -> 0..13), reconstructed to be consistent with every published artifact:
// the path labelling table (Fig. 4c), the meta-graph (Fig. 4b, Example
// 4.3), the sketch for SPG(6, 11) (Example 4.7: d⊤ = 5, d*_6 = 0,
// d*_11 = 2), the bi-directional BFS trace (Example 4.8: P_6 =
// {5,7,8,14}, P_11 = {10,12,9,8}, meeting at 8), and the final answer in
// Figure 6(f).
inline Graph Figure4Graph() {
  return FromPaperEdges(14, {{1, 2},
                             {1, 4},
                             {1, 5},
                             {1, 6},
                             {2, 3},
                             {2, 8},
                             {2, 9},
                             {3, 4},
                             {3, 12},
                             {3, 13},
                             {5, 6},
                             {5, 14},
                             {6, 7},
                             {7, 8},
                             {8, 9},
                             {9, 10},
                             {10, 11},
                             {11, 12},
                             {13, 14}});
}

// Landmarks of the running example: paper vertices {1, 2, 3}.
inline std::vector<VertexId> Figure4Landmarks() { return {0, 1, 2}; }

// Normalized edge set from 1-indexed pairs, for comparing against SPG
// results.
inline std::vector<Edge> PaperEdgeSet(
    std::initializer_list<std::pair<int, int>> edges) {
  std::vector<Edge> e;
  for (const auto& [a, b] : edges) {
    e.push_back(Edge(static_cast<VertexId>(a - 1),
                     static_cast<VertexId>(b - 1))
                    .Normalized());
  }
  std::sort(e.begin(), e.end());
  return e;
}

// Distance from `from` to `to` in g with the vertices in `removed` deleted
// (kUnreachable if none). Used to brute-force the labelling definition.
inline uint32_t MaskedDistance(const Graph& g, VertexId from, VertexId to,
                               const std::vector<bool>& removed) {
  if (removed[from] || removed[to]) return kUnreachable;
  std::vector<uint32_t> dist(g.NumVertices(), kUnreachable);
  std::vector<VertexId> queue{from};
  dist[from] = 0;
  size_t head = 0;
  while (head < queue.size()) {
    const VertexId u = queue[head++];
    if (u == to) return dist[u];
    for (VertexId w : g.Neighbors(u)) {
      if (removed[w] || dist[w] != kUnreachable) continue;
      dist[w] = dist[u] + 1;
      queue.push_back(w);
    }
  }
  return dist[to];
}

// Brute-force check of Definition 4.2 (+ Definition 4.1 for the meta-graph)
// against a labelling scheme. Returns true and fills *message on success;
// aborts via gtest assertions are left to the caller.
inline bool VerifyLabelingDefinition(const Graph& g,
                                     const LabelingScheme& scheme,
                                     std::string* message) {
  const PathLabeling& l = scheme.labeling;
  const uint32_t k = l.num_landmarks();
  std::vector<std::vector<uint32_t>> true_dist(k);
  for (uint32_t i = 0; i < k; ++i) {
    true_dist[i] = BfsDistances(g, l.LandmarkVertex(i));
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t i = 0; i < k; ++i) {
      const DistT stored = l.Get(v, i);
      if (l.IsLandmark(v)) {
        if (stored != kInfDist) {
          *message = "landmark has a stored label";
          return false;
        }
        continue;
      }
      // Entry iff a shortest path exists avoiding all other landmarks.
      std::vector<bool> removed(g.NumVertices(), false);
      for (uint32_t j = 0; j < k; ++j) {
        if (j != i) removed[l.LandmarkVertex(j)] = true;
      }
      const uint32_t masked =
          MaskedDistance(g, v, l.LandmarkVertex(i), removed);
      const bool expect_entry =
          masked != kUnreachable && masked == true_dist[i][v];
      if (expect_entry != (stored != kInfDist)) {
        *message = "label presence mismatch at v=" + std::to_string(v) +
                   " landmark=" + std::to_string(i);
        return false;
      }
      if (expect_entry && stored != true_dist[i][v]) {
        *message = "label distance mismatch at v=" + std::to_string(v);
        return false;
      }
    }
  }
  // Meta-graph edges (Definition 4.1).
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j) {
      std::vector<bool> removed(g.NumVertices(), false);
      for (uint32_t m = 0; m < k; ++m) {
        if (m != i && m != j) removed[l.LandmarkVertex(m)] = true;
      }
      const uint32_t masked =
          MaskedDistance(g, l.LandmarkVertex(i), l.LandmarkVertex(j), removed);
      const uint32_t truth = true_dist[i][l.LandmarkVertex(j)];
      const bool expect_edge = masked != kUnreachable && masked == truth;
      const uint32_t w = scheme.meta.EdgeWeight(i, j);
      if (expect_edge != (w != kUnreachable)) {
        *message = "meta edge presence mismatch at (" + std::to_string(i) +
                   "," + std::to_string(j) + ")";
        return false;
      }
      if (expect_edge && w != truth) {
        *message = "meta edge weight mismatch";
        return false;
      }
    }
  }
  return true;
}

}  // namespace qbs::testing

#endif  // QBS_TESTS_TEST_UTIL_H_

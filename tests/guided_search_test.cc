#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "core/guided_search.h"
#include "core/labeling.h"
#include "core/landmark_selection.h"
#include "gen/generators.h"
#include "tests/test_util.h"

namespace qbs {
namespace {

using testing::Figure4Graph;
using testing::Figure4Landmarks;
using testing::PaperEdgeSet;

class GuidedSearchFigure4Test : public ::testing::Test {
 protected:
  GuidedSearchFigure4Test()
      : graph_(Figure4Graph()),
        scheme_(BuildLabelingScheme(graph_, Figure4Landmarks())),
        searcher_(graph_, scheme_.labeling, scheme_.meta) {}

  Graph graph_;
  LabelingScheme scheme_;
  GuidedSearcher searcher_;
};

// Example 4.8 / Figure 6(f): the full answer of SPG(6, 11).
TEST_F(GuidedSearchFigure4Test, GoldenAnswerSpg6_11) {
  SearchStats stats;
  const auto spg = searcher_.Query(5, 10, &stats);  // paper 6 and 11
  EXPECT_EQ(spg.distance, 5u);
  EXPECT_EQ(spg.edges, PaperEdgeSet({// G⁻ path 6-7-8-9-10-11
                                     {6, 7},
                                     {7, 8},
                                     {8, 9},
                                     {9, 10},
                                     {10, 11},
                                     // landmark paths
                                     {6, 1},
                                     {1, 2},
                                     {2, 9},
                                     {2, 3},
                                     {3, 12},
                                     {12, 11},
                                     {1, 4},
                                     {4, 3}}));
  // d_G⁻ = d⊤ = 5: the "some through landmarks" case of Eq. 5.
  EXPECT_EQ(stats.d_top, 5u);
  EXPECT_EQ(stats.d_sparsified, 5u);
  EXPECT_EQ(stats.coverage, PairCoverage::kSomeThroughLandmarks);
  EXPECT_EQ(spg, SpgByDoubleBfs(graph_, 5, 10));
}

TEST_F(GuidedSearchFigure4Test, AllPairsMatchOracle) {
  for (VertexId u = 0; u < graph_.NumVertices(); ++u) {
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      ASSERT_EQ(searcher_.Query(u, v), SpgByDoubleBfs(graph_, u, v))
          << "u=" << u + 1 << " v=" << v + 1 << " (paper ids)";
    }
  }
}

TEST_F(GuidedSearchFigure4Test, LandmarkEndpointQueries) {
  // Landmark to non-landmark, non-landmark to landmark, landmark pair.
  EXPECT_EQ(searcher_.Query(0, 10), SpgByDoubleBfs(graph_, 0, 10));
  EXPECT_EQ(searcher_.Query(7, 2), SpgByDoubleBfs(graph_, 7, 2));
  EXPECT_EQ(searcher_.Query(0, 2), SpgByDoubleBfs(graph_, 0, 2));
  EXPECT_EQ(searcher_.Query(0, 1), SpgByDoubleBfs(graph_, 0, 1));
}

TEST_F(GuidedSearchFigure4Test, SelfQuery) {
  const auto spg = searcher_.Query(4, 4);
  EXPECT_EQ(spg.distance, 0u);
  EXPECT_TRUE(spg.edges.empty());
}

TEST_F(GuidedSearchFigure4Test, AdjacentNonLandmarks) {
  const auto spg = searcher_.Query(4, 13);  // paper 5 - 14
  EXPECT_EQ(spg.distance, 1u);
  EXPECT_EQ(spg.edges, PaperEdgeSet({{5, 14}}));
}

TEST_F(GuidedSearchFigure4Test, StatsTrackSparsification) {
  SearchStats stats;
  searcher_.Query(5, 10, &stats);
  EXPECT_GT(stats.edges_scanned_search, 0u);
  EXPECT_GT(stats.landmark_edges_skipped, 0u);
  EXPECT_GT(stats.edges_scanned_recover, 0u);
}

TEST(GuidedSearchTest, DisconnectedPair) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto scheme = BuildLabelingScheme(g, {1});
  GuidedSearcher searcher(g, scheme.labeling, scheme.meta);
  SearchStats stats;
  const auto spg = searcher.Query(0, 5, &stats);
  EXPECT_FALSE(spg.Connected());
  EXPECT_TRUE(spg.edges.empty());
  EXPECT_EQ(stats.coverage, PairCoverage::kDisconnected);
}

TEST(GuidedSearchTest, ComponentWithoutLandmarks) {
  // The pair lives in a component no landmark touches: pure G⁻ search.
  Graph g = Graph::FromEdges(7, {{0, 1}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
                                 {2, 6}});
  const auto scheme = BuildLabelingScheme(g, {0});
  GuidedSearcher searcher(g, scheme.labeling, scheme.meta);
  SearchStats stats;
  const auto spg = searcher.Query(2, 4, &stats);
  EXPECT_EQ(spg, SpgByDoubleBfs(g, 2, 4));
  EXPECT_EQ(stats.coverage, PairCoverage::kNoneThroughLandmarks);
}

TEST(GuidedSearchTest, AllPathsThroughLandmarkHub) {
  Graph g = StarGraph(12);
  const auto scheme = BuildLabelingScheme(g, {0});
  GuidedSearcher searcher(g, scheme.labeling, scheme.meta);
  SearchStats stats;
  const auto spg = searcher.Query(3, 9, &stats);
  EXPECT_EQ(spg, SpgByDoubleBfs(g, 3, 9));
  EXPECT_EQ(stats.coverage, PairCoverage::kAllThroughLandmarks);
  // The sparsified star is edgeless: nothing to scan.
  EXPECT_EQ(stats.d_sparsified, kUnreachable);
}

TEST(GuidedSearchTest, DeltaCacheGivesSameAnswers) {
  Graph g = BarabasiAlbert(300, 3, 77);
  const auto scheme = BuildLabelingScheme(
      g, SelectLandmarks(g, 8, LandmarkStrategy::kHighestDegree, 0));
  const DeltaCache delta =
      DeltaCache::Build(g, scheme.labeling, scheme.meta, 1);
  GuidedSearcher plain(g, scheme.labeling, scheme.meta);
  GuidedSearcher cached(g, scheme.labeling, scheme.meta, &delta);
  uint64_t hits = 0;
  for (VertexId u = 0; u < 60; u += 3) {
    for (VertexId v = 100; v < 160; v += 7) {
      SearchStats stats;
      ASSERT_EQ(cached.Query(u, v, &stats), plain.Query(u, v));
      hits += stats.delta_cache_hits;
    }
  }
  EXPECT_GT(hits, 0u);
}

TEST(GuidedSearchTest, QueryWithPrecomputedSketch) {
  Graph g = testing::Figure4Graph();
  const auto scheme = BuildLabelingScheme(g, testing::Figure4Landmarks());
  GuidedSearcher searcher(g, scheme.labeling, scheme.meta);
  const Sketch sketch = ComputeSketch(scheme.labeling, scheme.meta, 5, 10);
  EXPECT_EQ(searcher.QueryWithSketch(5, 10, sketch),
            SpgByDoubleBfs(g, 5, 10));
}

TEST(GuidedSearchTest, PathGraphLongDistances) {
  // High-diameter regime: every label distance large, search bounded.
  Graph g = PathGraph(200);
  const auto scheme = BuildLabelingScheme(g, {100});
  GuidedSearcher searcher(g, scheme.labeling, scheme.meta);
  EXPECT_EQ(searcher.Query(0, 199), SpgByDoubleBfs(g, 0, 199));
  EXPECT_EQ(searcher.Query(50, 150), SpgByDoubleBfs(g, 50, 150));
  EXPECT_EQ(searcher.Query(0, 99), SpgByDoubleBfs(g, 0, 99));
}

}  // namespace
}  // namespace qbs

#include <gtest/gtest.h>

#include "core/labeling.h"
#include "core/landmark_selection.h"
#include "core/meta_graph.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "tests/test_util.h"

namespace qbs {
namespace {

TEST(MetaGraphTest, AddEdgeIdempotentAndSymmetric) {
  MetaGraph m(3);
  m.AddEdge(0, 1, 2);
  m.AddEdge(1, 0, 2);  // rediscovery from the other endpoint
  EXPECT_EQ(m.Edges().size(), 1u);
  EXPECT_EQ(m.EdgeWeight(0, 1), 2u);
  EXPECT_EQ(m.EdgeWeight(1, 0), 2u);
  EXPECT_EQ(m.EdgeWeight(0, 2), kUnreachable);
}

TEST(MetaGraphTest, ApspOnTriangle) {
  MetaGraph m(3);
  m.AddEdge(0, 1, 1);
  m.AddEdge(1, 2, 1);
  m.AddEdge(0, 2, 5);  // direct edge longer than the 2-hop route
  m.Finalize();
  EXPECT_EQ(m.Distance(0, 2), 2u);
  EXPECT_EQ(m.Distance(0, 0), 0u);
  EXPECT_EQ(m.Distance(2, 0), 2u);
}

TEST(MetaGraphTest, DisconnectedLandmarks) {
  MetaGraph m(4);
  m.AddEdge(0, 1, 3);
  m.AddEdge(2, 3, 1);
  m.Finalize();
  EXPECT_EQ(m.Distance(0, 2), kUnreachable);
  EXPECT_EQ(m.Distance(1, 3), kUnreachable);
}

TEST(MetaGraphTest, EdgeOnShortestPath) {
  // 0 -1- 1 -1- 2 and direct 0 -2- 2: both routes are shortest (length 2).
  MetaGraph m(3);
  m.AddEdge(0, 1, 1);
  m.AddEdge(1, 2, 1);
  m.AddEdge(0, 2, 2);
  m.Finalize();
  for (const MetaEdge& e : m.Edges()) {
    EXPECT_TRUE(m.EdgeOnShortestPath(e, 0, 2));
  }
  // Edge (1,2) is not on a shortest 0-1 path.
  EXPECT_FALSE(m.EdgeOnShortestPath(MetaEdge{1, 2, 1}, 0, 1));
}

TEST(MetaGraphTest, Figure4EdgeOnShortestPath) {
  const auto scheme = BuildLabelingScheme(testing::Figure4Graph(),
                                          testing::Figure4Landmarks());
  const MetaGraph& m = scheme.meta;
  // d_M(1,3) = 2 via direct edge and via 1-2-3 (Example 4.7's sketch).
  EXPECT_EQ(m.Distance(0, 2), 2u);
  EXPECT_TRUE(m.EdgeOnShortestPath(MetaEdge{0, 2, 2}, 0, 2));
  EXPECT_TRUE(m.EdgeOnShortestPath(MetaEdge{0, 1, 1}, 0, 2));
  EXPECT_TRUE(m.EdgeOnShortestPath(MetaEdge{1, 2, 1}, 0, 2));
}

// Property: meta-graph APSP distances equal true graph distances between
// landmarks (subpaths of shortest paths split at consecutive landmarks are
// meta-edges, so d_M == d_G on R x R).
class MetaDistanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetaDistanceProperty, MetaApspEqualsGraphDistance) {
  const uint64_t seed = GetParam();
  Graph g = BarabasiAlbert(250, 2, seed);
  const auto landmarks =
      SelectLandmarks(g, 10, LandmarkStrategy::kHighestDegree, seed);
  const auto scheme = BuildLabelingScheme(g, landmarks);
  for (uint32_t i = 0; i < landmarks.size(); ++i) {
    const auto dist = BfsDistances(g, landmarks[i]);
    for (uint32_t j = 0; j < landmarks.size(); ++j) {
      EXPECT_EQ(scheme.meta.Distance(i, j), dist[landmarks[j]])
          << "i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetaDistanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MetaGraphTest, SizeBytesSmall) {
  MetaGraph m(100);
  m.Finalize();
  // The paper notes a |R|=100 meta-graph stays well under 0.01 MB of edge
  // data; our dense weight matrix is 40 KB, edges none.
  EXPECT_LT(m.SizeBytes(), 100u * 100u * sizeof(uint32_t) + 1024u);
}

}  // namespace
}  // namespace qbs

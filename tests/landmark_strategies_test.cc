#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "core/landmark_selection.h"
#include "core/qbs_index.h"
#include "gen/generators.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

std::vector<LandmarkStrategy> AllStrategies() {
  return {LandmarkStrategy::kHighestDegree, LandmarkStrategy::kRandom,
          LandmarkStrategy::kDegreeWeightedRandom,
          LandmarkStrategy::kApproxCloseness};
}

TEST(LandmarkStrategiesTest, AllProduceDistinctValidVertices) {
  Graph g = BarabasiAlbert(500, 3, 1);
  for (LandmarkStrategy s : AllStrategies()) {
    const auto landmarks = SelectLandmarks(g, 25, s, 7);
    ASSERT_EQ(landmarks.size(), 25u) << LandmarkStrategyName(s);
    auto sorted = landmarks;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << LandmarkStrategyName(s);
    for (VertexId v : landmarks) EXPECT_LT(v, g.NumVertices());
  }
}

TEST(LandmarkStrategiesTest, DeterministicForSeed) {
  Graph g = WattsStrogatz(400, 4, 0.2, 2);
  for (LandmarkStrategy s : AllStrategies()) {
    EXPECT_EQ(SelectLandmarks(g, 10, s, 42), SelectLandmarks(g, 10, s, 42))
        << LandmarkStrategyName(s);
  }
}

TEST(LandmarkStrategiesTest, DegreeWeightedFavorsHubs) {
  Graph g = StarGraph(2000);
  // The hub holds half of all edge endpoints; sampling 10 landmarks by
  // degree weight must include it (probability of missing ~ 2^-10 per
  // draw, and the sampler retries).
  const auto landmarks = SelectLandmarks(
      g, 10, LandmarkStrategy::kDegreeWeightedRandom, 3);
  EXPECT_NE(std::find(landmarks.begin(), landmarks.end(), 0u),
            landmarks.end());
}

TEST(LandmarkStrategiesTest, ClosenessPicksCenterOfPath) {
  Graph g = PathGraph(101);
  const auto landmarks =
      SelectLandmarks(g, 1, LandmarkStrategy::kApproxCloseness, 5);
  ASSERT_EQ(landmarks.size(), 1u);
  // The path's closeness centre is near the middle; sampled closeness
  // should land well away from the endpoints.
  EXPECT_GT(landmarks[0], 15u);
  EXPECT_LT(landmarks[0], 85u);
}

TEST(LandmarkStrategiesTest, StrategyNameCovered) {
  for (LandmarkStrategy s : AllStrategies()) {
    EXPECT_STRNE(LandmarkStrategyName(s), "unknown");
  }
}

TEST(LandmarkStrategiesTest, DegenerateGraphsDoNotHang) {
  // Graph with many isolated vertices: degree-weighted sampling must fall
  // back instead of spinning on rejections.
  Graph g = Graph::FromEdges(100, {{0, 1}});
  const auto landmarks = SelectLandmarks(
      g, 50, LandmarkStrategy::kDegreeWeightedRandom, 1);
  EXPECT_EQ(landmarks.size(), 50u);
}

// Every strategy yields a correct index (exactness is strategy-independent;
// Lemma 5.2 fixes the scheme once R is fixed).
class StrategyCorrectness
    : public ::testing::TestWithParam<LandmarkStrategy> {};

TEST_P(StrategyCorrectness, QueriesMatchOracle) {
  Graph g = BarabasiAlbert(300, 2, 11);
  QbsOptions options;
  options.num_landmarks = 12;
  options.landmark_strategy = GetParam();
  QbsIndex index = QbsIndex::Build(g, options);
  for (const auto& [u, v] : SampleQueryPairs(g, 50, 13)) {
    ASSERT_EQ(index.Query(u, v), SpgByDoubleBfs(g, u, v))
        << LandmarkStrategyName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, StrategyCorrectness,
    ::testing::Values(LandmarkStrategy::kHighestDegree,
                      LandmarkStrategy::kRandom,
                      LandmarkStrategy::kDegreeWeightedRandom,
                      LandmarkStrategy::kApproxCloseness));

}  // namespace
}  // namespace qbs

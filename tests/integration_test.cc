// End-to-end integration: every method of the paper's Table 2 comparison
// produces identical SPG answers on a registry dataset, and the QbS-P
// parallel build matches the sequential one.

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "baselines/bibfs.h"
#include "baselines/parent_ppl.h"
#include "baselines/ppl.h"
#include "core/qbs_index.h"
#include "workload/dataset_registry.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(MakeDataset(DatasetByAbbrev("DO"), 0.15));
    pairs_ = new std::vector<QueryPair>(SampleQueryPairs(*graph_, 40, 3));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete pairs_;
    graph_ = nullptr;
    pairs_ = nullptr;
  }
  static Graph* graph_;
  static std::vector<QueryPair>* pairs_;
};

Graph* IntegrationTest::graph_ = nullptr;
std::vector<QueryPair>* IntegrationTest::pairs_ = nullptr;

TEST_F(IntegrationTest, AllMethodsAgreeOnDataset) {
  const Graph& g = *graph_;
  QbsOptions options;
  options.num_landmarks = 20;
  options.precompute_delta = true;
  QbsIndex qbs = QbsIndex::Build(g, options);
  BiBfs bibfs(g);
  auto ppl = PplIndex::Build(g);
  auto parent_ppl = ParentPplIndex::Build(g);
  ASSERT_TRUE(ppl.has_value());
  ASSERT_TRUE(parent_ppl.has_value());

  for (const auto& [u, v] : *pairs_) {
    const auto oracle = SpgByDoubleBfs(g, u, v);
    ASSERT_EQ(qbs.Query(u, v), oracle) << "QbS u=" << u << " v=" << v;
    ASSERT_EQ(bibfs.Query(u, v), oracle) << "BiBFS u=" << u << " v=" << v;
    ASSERT_EQ(ppl->QuerySpg(u, v), oracle) << "PPL u=" << u << " v=" << v;
    ASSERT_EQ(parent_ppl->QuerySpg(u, v), oracle)
        << "ParentPPL u=" << u << " v=" << v;
  }
}

TEST_F(IntegrationTest, ParallelBuildMatchesSequential) {
  const Graph& g = *graph_;
  QbsOptions seq;
  seq.num_landmarks = 20;
  seq.num_threads = 1;
  QbsOptions par = seq;
  par.num_threads = 0;  // QbS-P: all threads
  QbsIndex a = QbsIndex::Build(g, seq);
  QbsIndex b = QbsIndex::Build(g, par);
  EXPECT_EQ(a.labeling().NumEntries(), b.labeling().NumEntries());
  EXPECT_EQ(a.meta_graph().Edges(), b.meta_graph().Edges());
  for (const auto& [u, v] : *pairs_) {
    ASSERT_EQ(a.Query(u, v), b.Query(u, v));
  }
}

TEST_F(IntegrationTest, QbsLabelingSmallerThanGraph) {
  // The paper: "labelling sizes constructed by QbS are generally smaller
  // than the original sizes of graphs" at |R| = 20. This holds for the
  // denser datasets (Table 3; Douban itself is the exception where the
  // label matrix slightly exceeds the tiny graph).
  Graph g = MakeDataset(DatasetByAbbrev("OR"), 0.05);
  QbsOptions options;
  options.num_landmarks = 20;
  QbsIndex index = QbsIndex::Build(g, options);
  EXPECT_LT(index.LabelingSizeBytes(), g.SizeBytes());
}

TEST_F(IntegrationTest, QbsTraversesFewerEdgesThanBiBfs) {
  // §6.5: sparsification + sketch guidance reduce edges traversed.
  const Graph& g = *graph_;
  QbsOptions options;
  options.num_landmarks = 20;
  QbsIndex index = QbsIndex::Build(g, options);
  BiBfs bibfs(g);
  uint64_t qbs_scans = 0;
  uint64_t bibfs_scans = 0;
  for (const auto& [u, v] : *pairs_) {
    SearchStats stats;
    index.Query(u, v, &stats);
    qbs_scans += stats.TotalEdgesScanned();
    uint64_t scans = 0;
    bibfs.Query(u, v, &scans);
    bibfs_scans += scans;
  }
  EXPECT_LT(qbs_scans, bibfs_scans);
}

}  // namespace
}  // namespace qbs

#include "graph/frontier.h"

#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/graph.h"

namespace qbs {
namespace {

// Reference level-synchronous BFS, the seed implementation the frontier
// engine replaced. Every traversal mode must reproduce it exactly.
std::vector<uint32_t> ReferenceBfs(const Graph& g, VertexId source,
                                   uint32_t max_depth) {
  std::vector<uint32_t> dist(g.NumVertices(), kUnreachable);
  std::vector<VertexId> queue{source};
  dist[source] = 0;
  size_t head = 0;
  while (head < queue.size()) {
    const VertexId u = queue[head++];
    if (dist[u] >= max_depth) continue;
    for (VertexId w : g.Neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

void ExpectAllModesMatchReference(const Graph& g, VertexId source,
                                  uint32_t max_depth) {
  const auto expected = ReferenceBfs(g, source, max_depth);
  FrontierEngine engine;
  std::vector<uint32_t> dist;
  for (TraversalMode mode : {TraversalMode::kAuto, TraversalMode::kTopDown,
                             TraversalMode::kBottomUp}) {
    engine.Distances(g, source, max_depth, &dist, mode);
    ASSERT_EQ(dist, expected)
        << "mode=" << static_cast<int>(mode) << " source=" << source;
  }
}

TEST(BitmapTest, SetTestClear) {
  Bitmap b;
  b.Resize(130);
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(129));
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  b.Clear();
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(129));
}

TEST(LevelStackTest, LevelsAreContiguousSpans) {
  LevelStack levels;
  levels.BeginLevel();
  levels.Push(7);
  levels.BeginLevel();
  levels.Push(1);
  levels.Push(2);
  levels.BeginLevel();  // empty level
  ASSERT_EQ(levels.NumLevels(), 3u);
  EXPECT_EQ(levels.LevelSize(0), 1u);
  EXPECT_EQ(levels.LevelSize(1), 2u);
  EXPECT_EQ(levels.LevelSize(2), 0u);
  EXPECT_EQ(levels.TotalSize(), 3u);
  const auto l1 = levels.Level(1);
  EXPECT_EQ(std::vector<VertexId>(l1.begin(), l1.end()),
            (std::vector<VertexId>{1, 2}));
  levels.Clear();
  EXPECT_EQ(levels.NumLevels(), 0u);
  EXPECT_EQ(levels.TotalSize(), 0u);
}

TEST(FrontierEngineTest, StructuredGraphs) {
  ExpectAllModesMatchReference(PathGraph(17), 0, kUnreachable - 1);
  ExpectAllModesMatchReference(CycleGraph(12), 3, kUnreachable - 1);
  ExpectAllModesMatchReference(StarGraph(50), 1, kUnreachable - 1);
  ExpectAllModesMatchReference(CompleteGraph(9), 4, kUnreachable - 1);
  ExpectAllModesMatchReference(GridGraph(8, 9), 10, kUnreachable - 1);
}

TEST(FrontierEngineTest, SingleVertexAndDisconnected) {
  ExpectAllModesMatchReference(PathGraph(1), 0, kUnreachable - 1);
  // Two components: BFS from one must leave the other unreachable.
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  ExpectAllModesMatchReference(g, 0, kUnreachable - 1);
  ExpectAllModesMatchReference(g, 4, kUnreachable - 1);
}

TEST(FrontierEngineTest, RandomizedErdosRenyiEquivalence) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = ErdosRenyi(600, 1800, seed);
    for (VertexId source : {VertexId{0}, VertexId{123}, VertexId{599}}) {
      ExpectAllModesMatchReference(g, source, kUnreachable - 1);
    }
  }
}

TEST(FrontierEngineTest, RandomizedBarabasiAlbertEquivalence) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = BarabasiAlbert(800, 4, seed);
    for (VertexId source : {VertexId{0}, VertexId{400}, VertexId{799}}) {
      ExpectAllModesMatchReference(g, source, kUnreachable - 1);
    }
  }
}

TEST(FrontierEngineTest, BoundedDepthEquivalence) {
  Graph g = BarabasiAlbert(500, 3, 11);
  for (uint32_t max_depth : {0u, 1u, 2u, 3u}) {
    ExpectAllModesMatchReference(g, 17, max_depth);
  }
}

TEST(FrontierEngineTest, EngineIsReusableAcrossGraphs) {
  FrontierEngine engine;
  std::vector<uint32_t> dist;
  Graph small = PathGraph(5);
  Graph large = ErdosRenyi(400, 1200, 9);
  engine.Distances(large, 0, kUnreachable - 1, &dist);
  EXPECT_EQ(dist, ReferenceBfs(large, 0, kUnreachable - 1));
  engine.Distances(small, 4, kUnreachable - 1, &dist);
  EXPECT_EQ(dist, ReferenceBfs(small, 4, kUnreachable - 1));
}

TEST(FrontierEngineTest, StatsCountLevelsAndDirections) {
  Graph g = CompleteGraph(64);  // one dense level: bottom-up should fire
  FrontierEngine engine;
  std::vector<uint32_t> dist;
  engine.Distances(g, 0, kUnreachable - 1, &dist, TraversalMode::kAuto);
  EXPECT_GE(engine.stats().bottom_up_levels, 1u);
  const uint64_t auto_scans = engine.stats().edges_scanned;
  engine.Distances(g, 0, kUnreachable - 1, &dist, TraversalMode::kTopDown);
  EXPECT_EQ(engine.stats().bottom_up_levels, 0u);
  // Top-down expands every discovered vertex's full adjacency (including
  // the final level that discovers nothing): 63 + 63 * 63.
  EXPECT_EQ(engine.stats().edges_scanned, 63u + 63u * 63u);
  EXPECT_LT(auto_scans, engine.stats().edges_scanned);
}

TEST(RootedBfsScratchTest, ResetIsScopedToVisited) {
  RootedBfsScratch s;
  s.Prepare(10);
  s.depth[3] = 1;
  s.queue.push_back(3);
  s.ResetVisited();
  EXPECT_EQ(s.depth[3], kUnreachable);
  EXPECT_TRUE(s.queue.empty());
}

}  // namespace
}  // namespace qbs

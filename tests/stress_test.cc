// Exhaustive and adversarial stress tests: small random graphs where EVERY
// vertex pair is compared against the oracle, plus structurally nasty
// configurations (bridges, dumbbells, landmark-saturated graphs,
// multi-component graphs with landmarks stranded in one component).

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "baselines/bibfs.h"
#include "baselines/parent_ppl.h"
#include "baselines/ppl.h"
#include "core/qbs_index.h"
#include "gen/generators.h"
#include "graph/components.h"
#include "util/rng.h"

namespace qbs {
namespace {

// A random simple connected graph with n vertices and ~m extra edges over
// a random spanning tree.
Graph RandomConnectedGraph(VertexId n, uint32_t extra_edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) {
    edges.emplace_back(v, static_cast<VertexId>(rng.UniformInt(v)));
  }
  for (uint32_t i = 0; i < extra_edges; ++i) {
    const auto a = static_cast<VertexId>(rng.UniformInt(n));
    const auto b = static_cast<VertexId>(rng.UniformInt(n));
    if (a != b) edges.emplace_back(a, b);
  }
  return Graph::FromEdges(n, edges);
}

struct ExhaustiveParam {
  VertexId n;
  uint32_t extra;
  uint32_t landmarks;
  uint64_t seed;
};

class ExhaustiveAllPairs : public ::testing::TestWithParam<ExhaustiveParam> {
};

TEST_P(ExhaustiveAllPairs, QbsEqualsOracleOnEveryPair) {
  const auto& p = GetParam();
  Graph g = RandomConnectedGraph(p.n, p.extra, p.seed);
  QbsOptions options;
  options.num_landmarks = p.landmarks;
  options.seed = p.seed;
  QbsIndex index = QbsIndex::Build(g, options);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    const auto dist_u = BfsDistances(g, u);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const auto dist_v = BfsDistances(g, v);
      const auto want = SpgFromDistances(g, u, v, dist_u, dist_v);
      ASSERT_EQ(index.Query(u, v), want)
          << "n=" << p.n << " seed=" << p.seed << " u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExhaustiveAllPairs,
    ::testing::Values(ExhaustiveParam{24, 10, 3, 1},
                      ExhaustiveParam{24, 30, 5, 2},
                      ExhaustiveParam{30, 15, 0, 3},   // no landmarks
                      ExhaustiveParam{30, 15, 30, 4},  // all landmarks
                      ExhaustiveParam{40, 20, 8, 5},
                      ExhaustiveParam{40, 60, 20, 6},
                      ExhaustiveParam{16, 100, 4, 7},  // near-complete
                      ExhaustiveParam{50, 5, 10, 8})); // near-tree

TEST(StressTest, DumbbellBridge) {
  // Two cliques joined by a long path; the bridge path is critical.
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 6; ++i) {
    for (VertexId j = i + 1; j < 6; ++j) edges.emplace_back(i, j);
  }
  for (VertexId i = 10; i < 16; ++i) {
    for (VertexId j = i + 1; j < 16; ++j) edges.emplace_back(i, j);
  }
  edges.emplace_back(0, 6);
  edges.emplace_back(6, 7);
  edges.emplace_back(7, 8);
  edges.emplace_back(8, 10);
  Graph g = Graph::FromEdges(16, edges);
  QbsOptions options;
  options.num_landmarks = 4;
  QbsIndex index = QbsIndex::Build(g, options);
  for (VertexId u = 0; u < 16; ++u) {
    for (VertexId v = 0; v < 16; ++v) {
      ASSERT_EQ(index.Query(u, v), SpgByDoubleBfs(g, u, v));
    }
  }
  // The bridge vertices are on all shortest 3 -> 13 paths.
  const auto spg = index.Query(3, 13);
  const auto critical = spg.CriticalVertices();
  EXPECT_NE(std::find(critical.begin(), critical.end(), 7u), critical.end());
}

TEST(StressTest, LandmarksStrandedInOtherComponent) {
  // All landmarks end up in the big component; the small one must still be
  // answered (pure sparsified search, empty sketches).
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 30; ++i) {
    edges.emplace_back(i, (i + 1) % 30);
    edges.emplace_back(i, (i + 2) % 30);  // dense-ish ring
  }
  // Small far component: a 5-cycle.
  for (VertexId i = 30; i < 35; ++i) {
    edges.emplace_back(i, i == 34 ? 30 : i + 1);
  }
  Graph g = Graph::FromEdges(35, edges);
  QbsOptions options;
  options.num_landmarks = 5;  // degree selection picks ring vertices
  QbsIndex index = QbsIndex::Build(g, options);
  for (VertexId r : index.landmarks()) EXPECT_LT(r, 30u);
  for (VertexId u = 30; u < 35; ++u) {
    for (VertexId v = 30; v < 35; ++v) {
      ASSERT_EQ(index.Query(u, v), SpgByDoubleBfs(g, u, v));
    }
    // Cross-component queries are disconnected.
    EXPECT_FALSE(index.Query(u, 0).Connected());
  }
}

TEST(StressTest, RepeatedQueriesAreIdempotent) {
  Graph g = RandomConnectedGraph(200, 150, 9);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto first = index.Query(5, 150);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(index.Query(5, 150), first);
    // Interleave other queries to perturb the scratch state.
    index.Query(static_cast<VertexId>(i), static_cast<VertexId>(199 - i));
  }
}

TEST(StressTest, AllBaselinesAgreeOnNastyGraph) {
  // A graph with heavy shortest-path multiplicity: layered complete
  // bipartite blocks.
  std::vector<Edge> edges;
  auto layer = [](int l, int i) { return static_cast<VertexId>(l * 4 + i); };
  for (int l = 0; l < 4; ++l) {
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        edges.emplace_back(layer(l, i), layer(l + 1, j));
      }
    }
  }
  Graph g = Graph::FromEdges(20, edges);
  QbsOptions options;
  options.num_landmarks = 3;
  QbsIndex qbs = QbsIndex::Build(g, options);
  BiBfs bibfs(g);
  auto ppl = PplIndex::Build(g);
  auto pppl = ParentPplIndex::Build(g);
  ASSERT_TRUE(ppl.has_value());
  ASSERT_TRUE(pppl.has_value());
  for (VertexId u = 0; u < 20; ++u) {
    for (VertexId v = 0; v < 20; ++v) {
      const auto want = SpgByDoubleBfs(g, u, v);
      ASSERT_EQ(qbs.Query(u, v), want);
      ASSERT_EQ(bibfs.Query(u, v), want);
      ASSERT_EQ(ppl->QuerySpg(u, v), want);
      ASSERT_EQ(pppl->QuerySpg(u, v), want);
    }
  }
  // 4 layers of complete bipartite K4,4: 4^3 = 64 corner-to-corner paths.
  EXPECT_EQ(qbs.Query(0, 16).CountShortestPaths(), 64u);
}

TEST(StressTest, HighDiameterWithFewLandmarks) {
  // Long cycle: distances up to 150; exercises deep level vectors and the
  // d* guidance on both sides.
  Graph g = CycleGraph(300);
  QbsOptions options;
  options.num_landmarks = 3;
  QbsIndex index = QbsIndex::Build(g, options);
  for (VertexId v : {1u, 75u, 149u, 150u, 151u, 299u}) {
    ASSERT_EQ(index.Query(0, v), SpgByDoubleBfs(g, 0, v)) << v;
  }
  // Antipodal pair on an even cycle: exactly two shortest paths.
  EXPECT_EQ(index.Query(0, 150).CountShortestPaths(), 2u);
}

}  // namespace
}  // namespace qbs

#include <gtest/gtest.h>

#include "core/labeling.h"
#include "core/landmark_selection.h"
#include "core/sketch.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/components.h"
#include "tests/test_util.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

using testing::Figure4Graph;
using testing::Figure4Landmarks;

class SketchFigure4Test : public ::testing::Test {
 protected:
  SketchFigure4Test()
      : graph_(Figure4Graph()),
        scheme_(BuildLabelingScheme(graph_, Figure4Landmarks())) {}
  Graph graph_;
  LabelingScheme scheme_;
};

// Example 4.7 / Figure 6(b): the sketch for SPG(6, 11).
TEST_F(SketchFigure4Test, GoldenSketchForSpg6_11) {
  const Sketch s = ComputeSketch(scheme_.labeling, scheme_.meta, 5, 10);
  EXPECT_EQ(s.d_top, 5u);
  // Anchors: (1, 6) with sigma 1; (2, 11) sigma 3; (3, 11) sigma 2.
  ASSERT_EQ(s.u_anchors.size(), 1u);
  EXPECT_EQ(s.u_anchors[0], (SketchAnchor{0, 1}));
  ASSERT_EQ(s.v_anchors.size(), 2u);
  EXPECT_EQ(s.v_anchors[0], (SketchAnchor{1, 3}));
  EXPECT_EQ(s.v_anchors[1], (SketchAnchor{2, 2}));
  // Meta-edges (1,2), (2,3), (1,3) all participate.
  EXPECT_EQ(s.meta_edges.size(), 3u);
  // Example 4.8: d*_6 = 0 and d*_11 = 2.
  EXPECT_EQ(s.d_star_u, 0u);
  EXPECT_EQ(s.d_star_v, 2u);
}

TEST_F(SketchFigure4Test, SketchIsSymmetricInBound) {
  const Sketch a = ComputeSketch(scheme_.labeling, scheme_.meta, 5, 10);
  const Sketch b = ComputeSketch(scheme_.labeling, scheme_.meta, 10, 5);
  EXPECT_EQ(a.d_top, b.d_top);
  EXPECT_EQ(a.meta_edges, b.meta_edges);
  EXPECT_EQ(a.u_anchors, b.v_anchors);
}

TEST_F(SketchFigure4Test, LandmarkEndpointUsesVirtualAnchor) {
  // Query from landmark 1 (vertex 0): single anchor (rank 0, delta 0).
  const Sketch s = ComputeSketch(scheme_.labeling, scheme_.meta, 0, 10);
  ASSERT_EQ(s.u_anchors.size(), 1u);
  EXPECT_EQ(s.u_anchors[0], (SketchAnchor{0, 0}));
  EXPECT_EQ(s.d_star_u, 0u);
  // d(1, 11) = 4 (1-2-9-10-11 via landmarks or 1-2-3-12-11): d_top tight.
  EXPECT_EQ(s.d_top, 4u);
}

TEST_F(SketchFigure4Test, BothEndpointsLandmarks) {
  const Sketch s = ComputeSketch(scheme_.labeling, scheme_.meta, 0, 2);
  EXPECT_EQ(s.d_top, 2u);  // d_M(1, 3) = 2
  EXPECT_EQ(s.u_anchors.size(), 1u);
  EXPECT_EQ(s.v_anchors.size(), 1u);
}

TEST_F(SketchFigure4Test, NoLandmarkRouteIsUnbounded) {
  // A 2-vertex component disconnected from all landmarks.
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto scheme = BuildLabelingScheme(g, {1});
  const Sketch s = ComputeSketch(scheme.labeling, scheme.meta, 3, 5);
  EXPECT_EQ(s.d_top, kUnreachable);
  EXPECT_TRUE(s.u_anchors.empty());
}

// Property (Corollary 4.6): d⊤ >= d_G(u, v); equality iff some shortest
// path passes through a landmark.
struct BoundParam {
  int family;
  uint64_t seed;
  uint32_t k;
};

class SketchBoundProperty : public ::testing::TestWithParam<BoundParam> {};

TEST_P(SketchBoundProperty, UpperBoundAndTightness) {
  const auto& p = GetParam();
  Graph g;
  switch (p.family) {
    case 0:
      g = BarabasiAlbert(250, 2, p.seed);
      break;
    case 1:
      g = WattsStrogatz(250, 4, 0.2, p.seed);
      break;
    default:
      g = LargestComponent(RMat(8, 4, 0.57, 0.19, 0.19, p.seed)).graph;
      break;
  }
  const auto landmarks =
      SelectLandmarks(g, p.k, LandmarkStrategy::kHighestDegree, p.seed);
  const auto scheme = BuildLabelingScheme(g, landmarks);
  std::vector<bool> is_landmark(g.NumVertices(), false);
  for (VertexId r : landmarks) is_landmark[r] = true;

  const auto pairs = SampleQueryPairs(g, 60, p.seed + 1);
  for (const auto& [u, v] : pairs) {
    const auto dist_u = BfsDistances(g, u);
    const Sketch s = ComputeSketch(scheme.labeling, scheme.meta, u, v);
    ASSERT_GE(s.d_top, dist_u[v]);
    // Tight iff a shortest path crosses a landmark, which we brute-force:
    // exists r with d(u,r) + d(r,v) == d(u,v).
    const auto dist_v = BfsDistances(g, v);
    bool through_landmark = false;
    for (VertexId r : landmarks) {
      if (dist_u[r] != kUnreachable && dist_v[r] != kUnreachable &&
          dist_u[r] + dist_v[r] == dist_u[v]) {
        through_landmark = true;
        break;
      }
    }
    EXPECT_EQ(s.d_top == dist_u[v], through_landmark)
        << "u=" << u << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SketchBoundProperty,
    ::testing::Values(BoundParam{0, 1, 5}, BoundParam{0, 2, 10},
                      BoundParam{1, 3, 5}, BoundParam{1, 4, 10},
                      BoundParam{2, 5, 5}, BoundParam{2, 6, 10}));

}  // namespace
}  // namespace qbs

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/edge_list_io.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace qbs {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, BasicConstruction) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, RemovesSelfLoopsAndDuplicates) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_FALSE(g.HasEdge(2, 2));
}

TEST(GraphTest, NeighborsSortedAscending) {
  Graph g = Graph::FromEdges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1], nbrs[i]);
  }
}

TEST(GraphTest, IsolatedVertices) {
  Graph g = Graph::FromEdges(10, {{0, 1}});
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.Degree(5), 0u);
  EXPECT_TRUE(g.Neighbors(5).empty());
}

TEST(GraphTest, MaxAndAverageDegree) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.MaxDegree(), 3u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 6.0 / 4.0);
}

TEST(GraphTest, EdgeListRoundTrip) {
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 3}};
  Graph g = Graph::FromEdges(4, edges);
  EXPECT_EQ(g.EdgeList(), edges);
}

TEST(GraphTest, SizeBytesGrowsWithEdges) {
  Graph small = Graph::FromEdges(4, {{0, 1}});
  Graph large = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_GT(large.SizeBytes(), small.SizeBytes());
}

TEST(GraphBuilderTest, GrowsVertexSpace) {
  GraphBuilder b;
  b.AddEdge(0, 5);
  b.AddEdge(9, 2);
  Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphBuilderTest, PredeclaredVertices) {
  GraphBuilder b(7);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 7u);
}

TEST(GraphBuilderTest, ToleratesDuplicatesAndLoops) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(1, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
}

class EdgeListIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/edges.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(EdgeListIoTest, WriteReadRoundTrip) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}, {0, 4}});
  ASSERT_TRUE(WriteEdgeList(g, path_));
  EdgeListReadOptions options;
  options.relabel = false;  // preserve ids for an exact round trip
  auto back = ReadEdgeList(path_, options);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->NumVertices(), 5u);
  EXPECT_EQ(back->EdgeList(), g.EdgeList());
}

TEST_F(EdgeListIoTest, SkipsCommentsAndRelabels) {
  std::ofstream out(path_);
  out << "# SNAP-style comment\n"
      << "% KONECT-style comment\n"
      << "1000 2000\n"
      << "2000 3000\n";
  out.close();
  auto g = ReadEdgeList(path_);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumVertices(), 3u);  // relabelled densely
  EXPECT_EQ(g->NumEdges(), 2u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(1, 2));
}

TEST_F(EdgeListIoTest, DirectedInputBecomesUndirected) {
  std::ofstream out(path_);
  out << "0 1\n1 0\n";
  out.close();
  EdgeListReadOptions options;
  options.relabel = false;
  auto g = ReadEdgeList(path_, options);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST_F(EdgeListIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadEdgeList("/nonexistent/file.txt").has_value());
}

TEST_F(EdgeListIoTest, ParseErrorFails) {
  std::ofstream out(path_);
  out << "not numbers\n";
  out.close();
  EXPECT_FALSE(ReadEdgeList(path_).has_value());
}

}  // namespace
}  // namespace qbs

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "core/qbs_index.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/components.h"
#include "tests/test_util.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

TEST(QbsIndexTest, BuildAndQuerySmoke) {
  Graph g = BarabasiAlbert(500, 3, 1);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex index = QbsIndex::Build(g, options);
  EXPECT_EQ(index.landmarks().size(), 10u);
  EXPECT_GT(index.LabelingSizeBytes(), 0u);
  EXPECT_GT(index.DeltaSizeBytes(), 0u);  // Δ precomputed by default

  QbsOptions no_delta = options;
  no_delta.precompute_delta = false;
  QbsIndex lean = QbsIndex::Build(g, no_delta);
  EXPECT_EQ(lean.DeltaSizeBytes(), 0u);
  EXPECT_EQ(lean.Query(50, 400), index.Query(50, 400));
  const auto spg = index.Query(50, 400);
  EXPECT_EQ(spg, SpgByDoubleBfs(g, 50, 400));
}

TEST(QbsIndexTest, MoveSemanticsKeepSearcherValid) {
  Graph g = BarabasiAlbert(200, 2, 2);
  QbsOptions options;
  options.num_landmarks = 5;
  QbsIndex index = QbsIndex::Build(g, options);
  QbsIndex moved = std::move(index);
  EXPECT_EQ(moved.Query(10, 100), SpgByDoubleBfs(g, 10, 100));
}

TEST(QbsIndexTest, DistanceUpperBoundIsUpperBound) {
  Graph g = BarabasiAlbert(300, 2, 3);
  QbsOptions options;
  options.num_landmarks = 8;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto pairs = SampleQueryPairs(g, 100, 17);
  for (const auto& [u, v] : pairs) {
    const uint32_t bound = index.DistanceUpperBound(u, v);
    EXPECT_GE(bound, BiBfsDistance(g, u, v));
  }
  EXPECT_EQ(index.DistanceUpperBound(7, 7), 0u);
}

TEST(QbsIndexTest, LandmarksClampedToGraph) {
  Graph g = PathGraph(5);
  QbsOptions options;
  options.num_landmarks = 50;
  QbsIndex index = QbsIndex::Build(g, options);
  EXPECT_EQ(index.landmarks().size(), 5u);
  // Every vertex is a landmark: queries are pure recover searches.
  EXPECT_EQ(index.Query(0, 4), SpgByDoubleBfs(g, 0, 4));
}

TEST(QbsIndexTest, ZeroLandmarksDegeneratesToBiBfs) {
  Graph g = BarabasiAlbert(200, 2, 4);
  QbsOptions options;
  options.num_landmarks = 0;
  QbsIndex index = QbsIndex::Build(g, options);
  EXPECT_EQ(index.Query(3, 150), SpgByDoubleBfs(g, 3, 150));
  EXPECT_EQ(index.DistanceUpperBound(3, 150), kUnreachable);
}

TEST(QbsIndexTest, TimingsPopulated) {
  Graph g = BarabasiAlbert(300, 3, 5);
  QbsOptions options;
  options.num_landmarks = 8;
  options.precompute_delta = true;
  QbsIndex index = QbsIndex::Build(g, options);
  EXPECT_GT(index.timings().labeling_seconds, 0.0);
  EXPECT_GE(index.timings().delta_seconds, 0.0);
  EXPECT_GT(index.DeltaSizeBytes(), 0u);
}

TEST(QbsIndexTest, BuildWithExplicitLandmarks) {
  Graph g = testing::Figure4Graph();
  QbsIndex index =
      QbsIndex::BuildWithLandmarks(g, testing::Figure4Landmarks());
  EXPECT_EQ(index.landmarks(), testing::Figure4Landmarks());
  EXPECT_EQ(index.Query(5, 10), SpgByDoubleBfs(g, 5, 10));
}

// The central correctness property: QbS answers == oracle answers on every
// sampled pair, across graph families, landmark counts, strategies, thread
// counts, and the delta-cache toggle.
struct SweepParam {
  int family;
  uint64_t seed;
  uint32_t num_landmarks;
  LandmarkStrategy strategy;
  size_t threads;
  bool delta;
};

class QbsOracleSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(QbsOracleSweep, MatchesOracleEverywhere) {
  const auto& p = GetParam();
  Graph g;
  switch (p.family) {
    case 0:
      g = BarabasiAlbert(350, 2, p.seed);
      break;
    case 1:
      g = LargestComponent(ErdosRenyi(350, 600, p.seed)).graph;
      break;
    case 2:
      g = WattsStrogatz(350, 6, 0.2, p.seed);
      break;
    case 3:
      g = LargestComponent(RMat(9, 4, 0.57, 0.19, 0.19, p.seed)).graph;
      break;
    case 4:
      g = GridGraph(15, 20);
      break;
    default:
      g = CompleteBinaryTree(255);
      break;
  }
  QbsOptions options;
  options.num_landmarks = p.num_landmarks;
  options.landmark_strategy = p.strategy;
  options.num_threads = p.threads;
  options.precompute_delta = p.delta;
  options.seed = p.seed;
  QbsIndex index = QbsIndex::Build(g, options);

  const auto pairs = SampleQueryPairs(g, 60, p.seed + 1000);
  for (const auto& [u, v] : pairs) {
    ASSERT_EQ(index.Query(u, v), SpgByDoubleBfs(g, u, v))
        << "family=" << p.family << " u=" << u << " v=" << v;
  }
  // Landmark endpoints are valid queries too.
  for (VertexId r : index.landmarks()) {
    ASSERT_EQ(index.Query(r, pairs[0].v), SpgByDoubleBfs(g, r, pairs[0].v));
  }
  if (index.landmarks().size() >= 2) {
    const VertexId a = index.landmarks()[0];
    const VertexId b = index.landmarks()[1];
    ASSERT_EQ(index.Query(a, b), SpgByDoubleBfs(g, a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QbsOracleSweep,
    ::testing::Values(
        SweepParam{0, 1, 8, LandmarkStrategy::kHighestDegree, 1, false},
        SweepParam{0, 2, 8, LandmarkStrategy::kHighestDegree, 4, true},
        SweepParam{0, 3, 20, LandmarkStrategy::kRandom, 1, false},
        SweepParam{1, 4, 8, LandmarkStrategy::kHighestDegree, 1, false},
        SweepParam{1, 5, 20, LandmarkStrategy::kHighestDegree, 4, true},
        SweepParam{2, 6, 8, LandmarkStrategy::kHighestDegree, 1, false},
        SweepParam{2, 7, 8, LandmarkStrategy::kRandom, 1, true},
        SweepParam{3, 8, 8, LandmarkStrategy::kHighestDegree, 1, false},
        SweepParam{3, 9, 20, LandmarkStrategy::kHighestDegree, 4, false},
        SweepParam{4, 10, 8, LandmarkStrategy::kHighestDegree, 1, false},
        SweepParam{4, 11, 8, LandmarkStrategy::kRandom, 1, true},
        SweepParam{5, 12, 8, LandmarkStrategy::kHighestDegree, 1, false},
        SweepParam{5, 13, 1, LandmarkStrategy::kHighestDegree, 1, false},
        SweepParam{0, 14, 2, LandmarkStrategy::kHighestDegree, 1, false},
        SweepParam{2, 15, 50, LandmarkStrategy::kHighestDegree, 4, true}));

// Pair coverage classification agrees with a brute-force landmark check.
TEST(QbsIndexTest, CoverageClassificationMatchesBruteForce) {
  Graph g = BarabasiAlbert(250, 2, 21);
  QbsOptions options;
  options.num_landmarks = 6;
  QbsIndex index = QbsIndex::Build(g, options);
  std::vector<bool> is_landmark(g.NumVertices(), false);
  for (VertexId r : index.landmarks()) is_landmark[r] = true;

  const auto pairs = SampleQueryPairs(g, 80, 22);
  for (const auto& [u, v] : pairs) {
    if (is_landmark[u] || is_landmark[v]) continue;
    SearchStats stats;
    const auto spg = index.Query(u, v, &stats);
    ASSERT_TRUE(spg.Connected());
    // Brute force: does some / every shortest path pass a landmark?
    const auto du = BfsDistances(g, u);
    const auto dv = BfsDistances(g, v);
    bool some = false;
    for (VertexId r : index.landmarks()) {
      if (du[r] + dv[r] == spg.distance) some = true;
    }
    // "all" iff removing landmarks stretches the distance.
    std::vector<bool> removed(g.NumVertices(), false);
    for (VertexId r : index.landmarks()) removed[r] = true;
    const uint32_t masked = testing::MaskedDistance(g, u, v, removed);
    const bool all = masked != spg.distance;  // includes kUnreachable
    switch (stats.coverage) {
      case PairCoverage::kAllThroughLandmarks:
        EXPECT_TRUE(some && all);
        break;
      case PairCoverage::kSomeThroughLandmarks:
        EXPECT_TRUE(some && !all);
        break;
      case PairCoverage::kNoneThroughLandmarks:
        EXPECT_FALSE(some);
        break;
      case PairCoverage::kDisconnected:
        FAIL();
    }
  }
}

}  // namespace
}  // namespace qbs

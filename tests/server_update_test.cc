// kUpdateRequest end-to-end over loopback: the acceptance contract is that
// the daemon NEVER returns a stale cached answer through an applied delta
// — a pair cached before an update re-executes afterwards and matches a
// fresh index built on the updated graph — and that query traffic
// (including degraded answers) stays correct while updates churn the
// index.

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/qbs_index.h"
#include "gen/generators.h"
#include "graph/graph_delta.h"
#include "server/client.h"
#include "server/server.h"

namespace qbs::server {
namespace {

class ServerUpdateTest : public ::testing::Test {
 protected:
  ServerUpdateTest() : g_(BarabasiAlbert(400, 3, 29)) {
    QbsOptions options;
    options.num_landmarks = 8;
    index_ = QbsIndex::Build(g_, options);
  }

  std::unique_ptr<QueryServer> StartUpdatable(ServerOptions options = {}) {
    index_->EnableUpdates(&g_);
    options.allow_updates = true;
    return StartServer(options);
  }

  std::unique_ptr<QueryServer> StartServer(ServerOptions options = {}) {
    auto server = std::make_unique<QueryServer>(*index_, options);
    std::string error;
    EXPECT_TRUE(server->Start(&error)) << error;
    return server;
  }

  QueryClient ConnectTo(const QueryServer& server) {
    QueryClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server.port()))
        << client.last_error();
    return client;
  }

  Graph g_;
  std::optional<QbsIndex> index_;
};

TEST_F(ServerUpdateTest, CachedPairInvalidatedByUpdate) {
  auto server = StartUpdatable();
  QueryClient client = ConnectTo(*server);

  // Pick a non-adjacent pair (distance > 1), cache it, confirm the replay
  // is a hit.
  QueryRequest request;
  request.u = 5;
  request.v = 320;
  while (g_.HasEdge(request.u, request.v)) ++request.v;
  ASSERT_LT(request.v, g_.NumVertices());
  QueryResponse before;
  ASSERT_EQ(client.Query(request, &before), QueryClient::RpcStatus::kOk);
  EXPECT_FALSE(before.cache_hit);
  QueryResponse replay;
  ASSERT_EQ(client.Query(request, &replay), QueryClient::RpcStatus::kOk);
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_GT(before.spg.distance, 1u);

  // Insert the edge (u, v): the true distance drops to 1, so the cached
  // answer is now provably stale.
  GraphDelta delta;
  delta.Insert(request.u, request.v);
  UpdateStats stats;
  ASSERT_EQ(client.Update(delta, &stats), QueryClient::RpcStatus::kOk);
  EXPECT_EQ(stats.applied_inserts, 1u);
  EXPECT_GE(stats.repaired_columns + stats.rebuilt_columns, 1u);

  // The same request re-executes (no hit) and matches a fresh index built
  // on the updated graph — SameAnswer, the serving acceptance contract.
  QueryResponse after;
  ASSERT_EQ(client.Query(request, &after), QueryClient::RpcStatus::kOk);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.spg.distance, 1u);
  QbsIndex fresh = QbsIndex::BuildWithLandmarks(g_, index_->landmarks());
  const QueryResponse want = fresh.Query(request);
  EXPECT_TRUE(SameAnswer(after, want));

  const auto snap = server->GetStats();
  EXPECT_EQ(snap.updates, 1u);
}

TEST_F(ServerUpdateTest, NoopUpdateKeepsCacheWarm) {
  auto server = StartUpdatable();
  QueryClient client = ConnectTo(*server);
  QueryRequest request;
  request.u = 3;
  request.v = 250;
  QueryResponse response;
  ASSERT_EQ(client.Query(request, &response), QueryClient::RpcStatus::kOk);

  // A script whose net effect is empty must not blow the cache away.
  GraphDelta delta;
  const Edge existing = g_.EdgeList().front();
  delta.Insert(existing.u, existing.v);
  UpdateStats stats;
  ASSERT_EQ(client.Update(delta, &stats), QueryClient::RpcStatus::kOk);
  EXPECT_EQ(stats.AppliedTotal(), 0u);
  EXPECT_EQ(stats.noop_updates, 1u);

  ASSERT_EQ(client.Query(request, &response), QueryClient::RpcStatus::kOk);
  EXPECT_TRUE(response.cache_hit);
}

TEST_F(ServerUpdateTest, UpdatesRejectedWhenNotEnabled) {
  auto server = StartServer();  // allow_updates stays false
  QueryClient client = ConnectTo(*server);
  GraphDelta delta;
  delta.Insert(0, 399);
  EXPECT_EQ(client.Update(delta), QueryClient::RpcStatus::kRemoteError);
  EXPECT_EQ(client.last_error_code(), ErrorCode::kBadRequest);
  // The connection survives an update rejection.
  EXPECT_TRUE(client.Ping());
  EXPECT_EQ(server->GetStats().updates, 0u);
}

TEST_F(ServerUpdateTest, MalformedUpdatePayloadRejected) {
  auto server = StartUpdatable();
  QueryClient client = ConnectTo(*server);
  GraphDelta delta;
  delta.Insert(0, 1);
  // An unknown flag bit is a malformed payload, not a crash.
  EXPECT_EQ(client.Update(delta, nullptr, 0x80000000u),
            QueryClient::RpcStatus::kRemoteError);
  EXPECT_EQ(client.last_error_code(), ErrorCode::kBadRequest);
  EXPECT_TRUE(client.Ping());
}

TEST_F(ServerUpdateTest, DeferredUpdateReportsDeferredColumns) {
  auto server = StartUpdatable();
  QueryClient client = ConnectTo(*server);
  // Delete a parent-ish edge under the defer flag: affected columns are
  // tombstoned for later consolidation instead of rebuilt inline.
  GraphDelta delta;
  const Edge victim = g_.EdgeList().front();
  delta.Delete(victim.u, victim.v);
  UpdateStats stats;
  ASSERT_EQ(client.Update(delta, &stats, kUpdateFlagDefer),
            QueryClient::RpcStatus::kOk);
  EXPECT_EQ(stats.applied_deletes, 1u);
  EXPECT_EQ(stats.rebuilt_columns, 0u);
  // A follow-up eager (empty-net) update consolidates the dirty columns.
  GraphDelta none;
  none.Delete(victim.u, victim.v);  // already gone: no-op net
  ASSERT_EQ(client.Update(none, &stats), QueryClient::RpcStatus::kOk);
  EXPECT_FALSE(index_->HasDirtyColumns());
}

// Query + update churn: reader/writer locking must keep every served
// answer exact for its graph version. The toggled edge lives between two
// otherwise-isolated extra vertices, so the probed pairs' answers are
// version-independent — any deviation is a real race or a stale cache
// read. Degraded answers (saturation) must stay valid bounds.
TEST_F(ServerUpdateTest, AnswersStayCorrectUnderChurn) {
  ServerOptions options;
  options.degrade_after_inflight = 2;
  options.max_inflight = 2;
  auto server = StartUpdatable(options);

  // Baseline exact answers from a private (serverless) fresh index.
  QbsIndex baseline = QbsIndex::BuildWithLandmarks(g_, index_->landmarks());
  const std::vector<std::pair<VertexId, VertexId>> pairs = {
      {5, 320}, {17, 88}, {200, 399}, {1, 42}};
  std::vector<QueryResponse> want;
  want.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    QueryRequest request;
    request.u = u;
    request.v = v;
    want.push_back(baseline.Query(request));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checked{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      QueryClient client = ConnectTo(*server);
      for (int iter = 0; !stop.load() && iter < 200; ++iter) {
        const size_t i = static_cast<size_t>(t + iter) % pairs.size();
        QueryRequest request;
        request.u = pairs[i].first;
        request.v = pairs[i].second;
        QueryResponse response;
        if (client.Query(request, &response) != QueryClient::RpcStatus::kOk) {
          continue;  // busy under churn is fine; correctness is the claim
        }
        if (response.degraded()) {
          // A degraded answer is a bound pair around the true distance.
          EXPECT_LE(response.degraded_lower, want[i].spg.distance);
          EXPECT_GE(response.spg.distance, want[i].spg.distance);
        } else {
          EXPECT_TRUE(SameAnswer(response, want[i]))
              << "stale/raced answer for (" << request.u << ", " << request.v
              << ")";
        }
        checked.fetch_add(1);
      }
    });
  }

  // Updater: insert-then-delete of the same edge within one batch is a
  // net-empty script, so the graph (and every answer) stays fixed while
  // the writer-lock path still runs on every round — any reader deviation
  // is a locking bug, not a legitimate version change.
  std::thread updater([&] {
    QueryClient client = ConnectTo(*server);
    for (int i = 0; i < 60 && !stop.load(); ++i) {
      GraphDelta delta;
      delta.Insert(7, 391);
      delta.Delete(7, 391);  // cancels: graph unchanged, lock still taken
      UpdateStats stats;
      if (client.Update(delta, &stats) != QueryClient::RpcStatus::kOk) break;
      EXPECT_EQ(stats.AppliedTotal(), 0u);
    }
  });

  updater.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GT(checked.load(), 0u);
}

// Real churn variant: the updater genuinely inserts and then removes the
// same edge in separate batches. Answers may legitimately differ between
// versions for pairs near the edge, so the probes sit far from it and
// assert version-independent answers throughout.
TEST_F(ServerUpdateTest, AppliedTogglesNeverServeStaleCache) {
  auto server = StartUpdatable();
  QueryClient update_client = ConnectTo(*server);
  QueryClient query_client = ConnectTo(*server);

  // d(u, v) with and without the toggled edge must agree for the probe —
  // verify that up front with a fresh build per version.
  QueryRequest probe;
  probe.u = 11;
  probe.v = 207;
  while (g_.HasEdge(probe.u, probe.v)) ++probe.v;
  ASSERT_LT(probe.v, g_.NumVertices());
  const QueryResponse want_base = index_->Query(probe);

  for (int round = 0; round < 5; ++round) {
    GraphDelta ins;
    ins.Insert(probe.u, probe.v);
    UpdateStats stats;
    ASSERT_EQ(update_client.Update(ins, &stats), QueryClient::RpcStatus::kOk);
    ASSERT_EQ(stats.applied_inserts, 1u);
    QueryResponse with_edge;
    ASSERT_EQ(query_client.Query(probe, &with_edge),
              QueryClient::RpcStatus::kOk);
    EXPECT_EQ(with_edge.spg.distance, 1u) << "stale answer after insert";

    GraphDelta del;
    del.Delete(probe.u, probe.v);
    ASSERT_EQ(update_client.Update(del, &stats), QueryClient::RpcStatus::kOk);
    ASSERT_EQ(stats.applied_deletes, 1u);
    QueryResponse without_edge;
    ASSERT_EQ(query_client.Query(probe, &without_edge),
              QueryClient::RpcStatus::kOk);
    EXPECT_TRUE(SameAnswer(without_edge, want_base))
        << "stale answer after delete, round " << round;
  }
  EXPECT_EQ(server->GetStats().updates, 10u);
}

}  // namespace
}  // namespace qbs::server

// util/sync.h: the annotated Mutex/SharedMutex/CondVar wrappers and the
// lock-rank runtime checker. The static half of the contract (unguarded
// access fails to compile under clang -Wthread-safety) is covered by the
// tests/compile_fail harness; this file covers runtime behaviour: mutual
// exclusion, shared readers, condition signalling, and the death tests for
// rank inversion / re-entrant acquisition.

#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace qbs {
namespace {

TEST(SyncTest, MutexSerializesIncrements) {
  Mutex mu;
  int counter QBS_GUARDED_BY(mu) = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  {
    MutexLock lock(mu);
    // From another thread: the lock is held, so TryLock must fail.
    bool acquired = true;
    std::thread t([&mu, &acquired] { acquired = mu.TryLock(); });
    t.join();
    EXPECT_FALSE(acquired);
  }
  std::thread t([&mu] {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  t.join();
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  std::atomic<int> readers_in{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      ReaderLock lock(mu);
      readers_in.fetch_add(1);
      // Hold the shared lock until both readers are inside simultaneously.
      while (!release.load()) {
        std::this_thread::yield();
        if (readers_in.load() == 2) release.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(readers_in.load(), 2);
}

TEST(SyncTest, WriterExcludesReadersAndWriters) {
  SharedMutex mu;
  WriterLock lock(mu);
  bool got_shared = true;
  bool got_exclusive = true;
  std::thread t([&] {
    got_shared = mu.TryLockShared();
    if (got_shared) mu.UnlockShared();
    got_exclusive = mu.TryLock();
    if (got_exclusive) mu.Unlock();
  });
  t.join();
  EXPECT_FALSE(got_shared);
  EXPECT_FALSE(got_exclusive);
}

TEST(SyncTest, ReaderExcludesWriterButNotReader) {
  SharedMutex mu;
  ReaderLock lock(mu);
  bool got_shared = false;
  bool got_exclusive = true;
  std::thread t([&] {
    got_exclusive = mu.TryLock();
    if (got_exclusive) mu.Unlock();
    got_shared = mu.TryLockShared();
    if (got_shared) mu.UnlockShared();
  });
  t.join();
  EXPECT_FALSE(got_exclusive);
  EXPECT_TRUE(got_shared);
}

TEST(SyncTest, CondVarHandshake) {
  Mutex mu;
  CondVar cv;
  bool ready QBS_GUARDED_BY(mu) = false;
  bool consumed QBS_GUARDED_BY(mu) = false;

  std::thread producer([&] {
    {
      MutexLock lock(mu);
      ready = true;
      cv.NotifyAll();
      while (!consumed) cv.Wait(mu);
    }
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    consumed = true;
    cv.NotifyAll();
  }
  producer.join();
  MutexLock lock(mu);
  EXPECT_TRUE(ready);
  EXPECT_TRUE(consumed);
}

TEST(SyncTest, CondVarWaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  // Nobody notifies: the wait must return false at the deadline (spurious
  // wakeups may return true early, so loop like real call sites do).
  while (cv.WaitUntil(mu, deadline)) {
    if (std::chrono::steady_clock::now() >= deadline) break;
  }
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(SyncTest, AscendingRankAcquisitionIsClean) {
  // The full project order, outermost to innermost — must not abort.
  Mutex lifecycle(LockRank::kServerLifecycle);
  Mutex admission(LockRank::kAdmission);
  SharedMutex index(LockRank::kIndex);
  Mutex pool(LockRank::kSearcherPool);
  Mutex shard(LockRank::kResultCacheShard);
  MutexLock l1(lifecycle);
  MutexLock l2(admission);
  ReaderLock l3(index);
  MutexLock l4(pool);
  MutexLock l5(shard);
  SUCCEED();
}

TEST(SyncTest, LockRankNamesAreStable) {
  EXPECT_STREQ(LockRankName(LockRank::kIndex), "kIndex");
  EXPECT_STREQ(LockRankName(LockRank::kThreadPoolQueue), "kThreadPoolQueue");
}

// ---- Death tests: the lock-rank checker must abort, naming both ranks.

class LockRankDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!LockRankChecksEnabled()) {
      GTEST_SKIP() << "lock-rank checks compiled out (NDEBUG without "
                      "QBS_LOCK_RANK_CHECKS)";
    }
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockRankDeathTest, InversionAborts) {
  EXPECT_DEATH(
      {
        Mutex high(LockRank::kResultCacheShard);
        Mutex low(LockRank::kAdmission);
        MutexLock outer(high);
        MutexLock inner(low);  // rank 20 under rank 50: inversion
      },
      "lock-rank inversion.*kAdmission.*kResultCacheShard");
}

TEST_F(LockRankDeathTest, EqualRankAborts) {
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kResultCacheShard);
        Mutex b(LockRank::kResultCacheShard);
        MutexLock outer(a);
        MutexLock inner(b);  // equal rank: order must be STRICTLY increasing
      },
      "lock-rank inversion.*kResultCacheShard.*kResultCacheShard");
}

TEST_F(LockRankDeathTest, SharedUnderExclusiveSameRankAborts) {
  EXPECT_DEATH(
      {
        SharedMutex a(LockRank::kIndex);
        SharedMutex b(LockRank::kIndex);
        WriterLock outer(a);
        ReaderLock inner(b);
      },
      "lock-rank inversion.*kIndex.*kIndex");
}

TEST_F(LockRankDeathTest, ReentrantMutexAborts) {
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kThreadPool);
        MutexLock outer(mu);
        MutexLock inner(mu);  // same mutex twice on one thread
      },
      "re-entrant acquisition.*kThreadPool");
}

TEST_F(LockRankDeathTest, ReentrantSharedAborts) {
  // Re-acquiring a shared lock on the same thread can deadlock against a
  // queued writer, so the checker treats it like exclusive re-entrancy.
  EXPECT_DEATH(
      {
        SharedMutex mu(LockRank::kIndex);
        ReaderLock outer(mu);
        ReaderLock inner(mu);
      },
      "re-entrant acquisition.*kIndex");
}

TEST_F(LockRankDeathTest, UnrankedSkipsOrderCheckButNotReentrancy) {
  {
    // Unranked mutexes may interleave with ranked ones in any order...
    Mutex ranked(LockRank::kThreadPool);
    Mutex unranked;
    MutexLock outer(ranked);
    MutexLock inner(unranked);
  }
  // ...but re-entrancy still aborts.
  EXPECT_DEATH(
      {
        Mutex mu;
        MutexLock outer(mu);
        MutexLock inner(mu);
      },
      "re-entrant acquisition.*kUnranked");
}

}  // namespace
}  // namespace qbs

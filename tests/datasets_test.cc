// Tests for the real-dataset registry (workload/datasets.h): name/abbrev
// lookup, the error path listing available names, the synthetic stand-in
// fallback, and raw -> cache resolution against a local data directory.

#include "workload/datasets.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "workload/dataset_registry.h"

namespace qbs {
namespace {

namespace fs = std::filesystem;

TEST(DatasetsTest, FindsByNameAbbrevAndCase) {
  ASSERT_NE(FindRealDataset("dblp"), nullptr);
  EXPECT_EQ(FindRealDataset("dblp")->abbrev, "DB");
  EXPECT_EQ(FindRealDataset("DBLP"), FindRealDataset("dblp"));
  EXPECT_EQ(FindRealDataset("DB"), FindRealDataset("dblp"));
  EXPECT_EQ(FindRealDataset("db"), FindRealDataset("dblp"));
  ASSERT_NE(FindRealDataset("epinions"), nullptr);
  EXPECT_TRUE(FindRealDataset("epinions")->abbrev.empty());
  EXPECT_EQ(FindRealDataset("no-such-dataset"), nullptr);
}

TEST(DatasetsTest, RegistryCoversTable1AndIsWellFormed) {
  // Every Table 1 stand-in has exactly one real-registry counterpart.
  for (const DatasetSpec& standin : PaperDatasets()) {
    const RealDatasetSpec* real = FindRealDataset(standin.abbrev);
    ASSERT_NE(real, nullptr) << standin.abbrev;
    EXPECT_EQ(real->abbrev, standin.abbrev);
    EXPECT_NEAR(real->paper_vertices_m, standin.paper_vertices_m, 1e-9);
    EXPECT_NEAR(real->paper_edges_m, standin.paper_edges_m, 1e-9);
  }
  for (const RealDatasetSpec& s : RealDatasets()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.file.empty()) << s.name;
    EXPECT_TRUE(s.url.empty() || s.url.rfind("https://", 0) == 0) << s.name;
    // Download targets must be parseable by ReadEdgeListAuto: plain or gz.
    if (!s.url.empty()) {
      const bool txt =
          s.file.size() > 4 &&
          (s.file.rfind(".txt") == s.file.size() - 4 ||
           s.file.rfind(".txt.gz") == s.file.size() - 7);
      EXPECT_TRUE(txt) << s.file;
    }
  }
}

TEST(DatasetsTest, AvailableNamesListsEverything) {
  const std::string names = AvailableDatasetNames();
  for (const RealDatasetSpec& s : RealDatasets()) {
    EXPECT_NE(names.find(s.name), std::string::npos) << s.name;
  }
  EXPECT_NE(names.find("(DB)"), std::string::npos);
}

TEST(DatasetsTest, DefaultDataDirHonorsEnv) {
  const char* old = std::getenv("QBS_DATA_DIR");
  setenv("QBS_DATA_DIR", "/tmp/qbs-data-test", 1);
  EXPECT_EQ(DefaultDataDir(), "/tmp/qbs-data-test");
  if (old == nullptr) {
    unsetenv("QBS_DATA_DIR");
  } else {
    setenv("QBS_DATA_DIR", old, 1);
  }
  if (std::getenv("QBS_DATA_DIR") == nullptr) {
    EXPECT_EQ(DefaultDataDir(), "data");
  }
}

TEST(DatasetsTest, UnknownNameFailsResolution) {
  EXPECT_FALSE(
      ResolveDataset("no-such-dataset", ::testing::TempDir()).has_value());
}

TEST(DatasetsTest, MissingDataFallsBackToStandIn) {
  const std::string empty_dir =
      (fs::path(::testing::TempDir()) / "no-data-here").string();
  auto resolved = ResolveDataset("douban", empty_dir, /*synthetic_scale=*/0.1);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->source, "stand-in");
  EXPECT_EQ(resolved->name, "douban");
  EXPECT_EQ(resolved->abbrev, "DO");
  EXPECT_GT(resolved->graph.NumVertices(), 0u);
  // The fallback is the Table 1 stand-in generator, bit-for-bit.
  const Graph standin = MakeDataset(DatasetByAbbrev("DO"), 0.1);
  EXPECT_EQ(resolved->graph.NumVertices(), standin.NumVertices());
  EXPECT_EQ(resolved->graph.NumEdges(), standin.NumEdges());
}

TEST(DatasetsTest, NonPaperDatasetWithoutDataFailsResolution) {
  // Epinions has no Table 1 stand-in, so nothing can substitute for it.
  const std::string empty_dir =
      (fs::path(::testing::TempDir()) / "still-no-data").string();
  EXPECT_FALSE(ResolveDataset("epinions", empty_dir).has_value());
}

TEST(DatasetsTest, ResolvesRawThenHitsCache) {
  const std::string data_dir =
      (fs::path(::testing::TempDir()) / "datasets_test_data").string();
  fs::remove_all(data_dir);
  fs::create_directories(fs::path(data_dir) / "raw");
  // Douban's registry file is a plain .txt, so a tiny stand-in raw file
  // can be dropped in without gzip.
  {
    std::ofstream raw(fs::path(data_dir) / "raw" /
                      FindRealDataset("douban")->file);
    raw << "# two components\n0 1\n1 2\n2 0\n5 6\n";
  }

  auto first = ResolveDataset("douban", data_dir);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->source, "raw");
  EXPECT_EQ(first->graph.NumVertices(), 3u);  // largest CC: the triangle
  EXPECT_EQ(first->graph.NumEdges(), 3u);
  EXPECT_TRUE(first->cache_info.largest_cc_extracted);
  EXPECT_EQ(first->cache_info.raw_vertices, 5u);
  EXPECT_TRUE(fs::exists(fs::path(data_dir) / "cache" / "douban.qbsgrf"));

  auto second = ResolveDataset("douban", data_dir);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->source, "cache");
  EXPECT_EQ(second->graph.NumVertices(), 3u);
  EXPECT_EQ(second->cache_info.raw_vertices, 5u);
  fs::remove_all(data_dir);
}

}  // namespace
}  // namespace qbs

// GraphDelta / ComputeNetChanges / ApplyNetChanges semantics: script-order
// evaluation, no-op and invalid accounting, insert/delete cancellation,
// normalization, and CSR materialization.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"

namespace qbs {
namespace {

TEST(GraphDeltaTest, NetInsertAndDelete) {
  const Graph g = PathGraph(5);  // 0-1-2-3-4
  GraphDelta delta;
  delta.Insert(0, 4);
  delta.Delete(1, 2);
  const NetChanges net = ComputeNetChanges(g, delta);
  ASSERT_EQ(net.inserts.size(), 1u);
  EXPECT_EQ(net.inserts[0], Edge(0, 4));
  ASSERT_EQ(net.deletes.size(), 1u);
  EXPECT_EQ(net.deletes[0], Edge(1, 2));
  EXPECT_EQ(net.noop_inserts, 0u);
  EXPECT_EQ(net.noop_deletes, 0u);
  EXPECT_EQ(net.invalid, 0u);

  const Graph updated = ApplyNetChanges(g, net);
  EXPECT_EQ(updated.NumVertices(), g.NumVertices());
  EXPECT_EQ(updated.NumEdges(), g.NumEdges());  // one in, one out
  EXPECT_TRUE(updated.HasEdge(0, 4));
  EXPECT_FALSE(updated.HasEdge(1, 2));
  EXPECT_TRUE(updated.HasEdge(2, 3));
}

TEST(GraphDeltaTest, NoopsAreCountedNotApplied) {
  const Graph g = PathGraph(4);
  GraphDelta delta;
  delta.Insert(0, 1);  // already present
  delta.Delete(0, 3);  // absent
  const NetChanges net = ComputeNetChanges(g, delta);
  EXPECT_TRUE(net.EmptyNet());
  EXPECT_EQ(net.noop_inserts, 1u);
  EXPECT_EQ(net.noop_deletes, 1u);
}

TEST(GraphDeltaTest, InvalidEntriesAreSkipped) {
  const Graph g = PathGraph(4);
  GraphDelta delta;
  delta.Insert(2, 2);    // self-loop
  delta.Insert(0, 99);   // out of range
  delta.Delete(99, 0);   // out of range
  const NetChanges net = ComputeNetChanges(g, delta);
  EXPECT_TRUE(net.EmptyNet());
  EXPECT_EQ(net.invalid, 3u);
}

TEST(GraphDeltaTest, InsertThenDeleteCancels) {
  const Graph g = PathGraph(4);
  GraphDelta delta;
  delta.Insert(0, 2);
  delta.Delete(0, 2);
  const NetChanges net = ComputeNetChanges(g, delta);
  EXPECT_TRUE(net.EmptyNet());

  // The reverse direction on a present edge cancels too.
  GraphDelta delta2;
  delta2.Delete(0, 1);
  delta2.Insert(0, 1);
  const NetChanges net2 = ComputeNetChanges(g, delta2);
  EXPECT_TRUE(net2.EmptyNet());
}

TEST(GraphDeltaTest, ScriptOrderGovernsNoopAccounting) {
  const Graph g = PathGraph(4);
  GraphDelta delta;
  delta.Insert(0, 2);  // new
  delta.Insert(0, 2);  // now a no-op against the evolving set
  delta.Delete(0, 2);  // cancels the first insert
  delta.Delete(0, 2);  // no-op again
  const NetChanges net = ComputeNetChanges(g, delta);
  EXPECT_TRUE(net.EmptyNet());
  EXPECT_EQ(net.noop_inserts, 1u);
  EXPECT_EQ(net.noop_deletes, 1u);
}

TEST(GraphDeltaTest, EndpointOrderIsNormalized) {
  const Graph g = PathGraph(5);
  GraphDelta delta;
  delta.Insert(4, 0);  // given reversed
  const NetChanges net = ComputeNetChanges(g, delta);
  ASSERT_EQ(net.inserts.size(), 1u);
  EXPECT_EQ(net.inserts[0], Edge(0, 4));
  // Deleting it in the other order within the same script cancels.
  GraphDelta both;
  both.Insert(4, 0);
  both.Delete(0, 4);
  EXPECT_TRUE(ComputeNetChanges(g, both).EmptyNet());
}

TEST(GraphDeltaTest, MaterializationMatchesManualEdgeSet) {
  const Graph g = BarabasiAlbert(60, 2, 7);
  GraphDelta delta;
  delta.Insert(0, 59);
  delta.Insert(1, 58);
  delta.Delete(0, 1);
  const NetChanges net = ComputeNetChanges(g, delta);
  const Graph updated = ApplyNetChanges(g, net);

  std::vector<Edge> expected = g.EdgeList();
  expected.erase(std::remove(expected.begin(), expected.end(), Edge(0, 1)),
                 expected.end());
  expected.push_back(Edge(0, 59));
  expected.push_back(Edge(1, 58));
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(updated.EdgeList(), expected);
}

TEST(GraphDeltaTest, EmptyDeltaIsEmptyNet) {
  const Graph g = PathGraph(3);
  const NetChanges net = ComputeNetChanges(g, GraphDelta());
  EXPECT_TRUE(net.EmptyNet());
  const Graph updated = ApplyNetChanges(g, net);
  EXPECT_EQ(updated.EdgeList(), g.EdgeList());
}

}  // namespace
}  // namespace qbs

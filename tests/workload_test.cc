#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/components.h"
#include "workload/dataset_registry.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

TEST(QueryWorkloadTest, SamplerDeterministicAndValid) {
  Graph g = BarabasiAlbert(200, 2, 1);
  const auto a = SampleQueryPairs(g, 100, 7);
  const auto b = SampleQueryPairs(g, 100, 7);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_NE(a[i].u, a[i].v);
    EXPECT_LT(a[i].u, g.NumVertices());
    EXPECT_LT(a[i].v, g.NumVertices());
  }
}

TEST(QueryWorkloadTest, DistanceDistributionSums) {
  Graph g = PathGraph(10);
  std::vector<QueryPair> pairs{{0, 1}, {0, 9}, {3, 6}, {2, 4}};
  const auto dist = ComputeDistanceDistribution(g, pairs);
  EXPECT_EQ(dist.total, 4u);
  EXPECT_EQ(dist.disconnected, 0u);
  EXPECT_EQ(dist.counts[1], 1u);
  EXPECT_EQ(dist.counts[9], 1u);
  EXPECT_EQ(dist.counts[3], 1u);
  EXPECT_EQ(dist.counts[2], 1u);
  EXPECT_DOUBLE_EQ(dist.Mean(), (1 + 9 + 3 + 2) / 4.0);
  EXPECT_DOUBLE_EQ(dist.FractionAt(3), 0.25);
  EXPECT_DOUBLE_EQ(dist.FractionAt(4), 0.0);
}

TEST(QueryWorkloadTest, DisconnectedCounted) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  std::vector<QueryPair> pairs{{0, 1}, {0, 2}, {1, 3}};
  const auto dist = ComputeDistanceDistribution(g, pairs);
  EXPECT_EQ(dist.disconnected, 2u);
  EXPECT_EQ(dist.counts[1], 1u);
}

TEST(DatasetRegistryTest, TwelveDatasetsOrderedLikeTable1) {
  const auto& specs = PaperDatasets();
  ASSERT_EQ(specs.size(), 12u);
  EXPECT_EQ(specs.front().abbrev, "DO");
  EXPECT_EQ(specs.back().abbrev, "CW");
  EXPECT_EQ(DatasetByAbbrev("TW").name, "Twitter");
}

TEST(DatasetRegistryTest, SmallScaleDatasetsAreConnectedAndDeterministic) {
  // Generate every dataset at a tiny scale; each must be connected (largest
  // component is extracted) and deterministic.
  for (const auto& spec : PaperDatasets()) {
    Graph a = MakeDataset(spec, 0.05);
    Graph b = MakeDataset(spec, 0.05);
    EXPECT_GT(a.NumVertices(), 50u) << spec.abbrev;
    EXPECT_TRUE(IsConnected(a)) << spec.abbrev;
    EXPECT_EQ(a.EdgeList(), b.EdgeList()) << spec.abbrev;
  }
}

TEST(DatasetRegistryTest, RegimesMatchPaper) {
  // Hub-dominated stand-ins must have much higher max degree relative to
  // the mean than the Friendster (even-degree) stand-in.
  Graph tw = MakeDataset(DatasetByAbbrev("TW"), 0.1);
  Graph fr = MakeDataset(DatasetByAbbrev("FR"), 0.1);
  const double tw_skew = static_cast<double>(tw.MaxDegree()) /
                         std::max(1.0, tw.AverageDegree());
  const double fr_skew = static_cast<double>(fr.MaxDegree()) /
                         std::max(1.0, fr.AverageDegree());
  EXPECT_GT(tw_skew, 4 * fr_skew);
}

TEST(DatasetRegistryTest, DensityOrderingPreserved) {
  // Orkut's stand-in must be denser (higher average degree) than Douban's,
  // mirroring Table 1.
  Graph orkut = MakeDataset(DatasetByAbbrev("OR"), 0.05);
  Graph douban = MakeDataset(DatasetByAbbrev("DO"), 0.05);
  EXPECT_GT(orkut.AverageDegree(), 4 * douban.AverageDegree());
}

}  // namespace
}  // namespace qbs

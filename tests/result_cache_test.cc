// Hot-pair result cache: correctness of the bit-identity contract (a hit
// replays exactly the payload of the miss that stored it), LRU eviction
// under a byte budget, and shard-level thread safety (the concurrent
// hammer runs under TSan in CI's nightly job).

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/result_cache.h"

namespace qbs::server {
namespace {

QueryResponse MakeResponse(VertexId u, VertexId v, uint32_t distance,
                           std::vector<Edge> edges, uint32_t flags = 0) {
  QueryResponse response;
  response.spg.u = u;
  response.spg.v = v;
  response.spg.distance = distance;
  response.spg.edges = std::move(edges);
  response.flags = flags;
  response.stats.edges_scanned_search = 999;  // diagnostic, never cached
  return response;
}

TEST(ResultCacheTest, HitReplaysMissPayloadBitIdentically) {
  ResultCache cache({.capacity_bytes = 1 << 20, .shards = 4});
  const QueryRequest request(3, 9);
  const QueryResponse stored =
      MakeResponse(3, 9, 2, {{3, 5}, {5, 9}});

  QueryResponse out;
  EXPECT_FALSE(cache.Lookup(request, &out));
  cache.Insert(request, stored);
  ASSERT_TRUE(cache.Lookup(request, &out));
  EXPECT_TRUE(SameAnswer(out, stored));  // the bit-identity contract
  EXPECT_TRUE(out.cache_hit);
  // Diagnostics are not replayed: a hit did no search.
  EXPECT_EQ(out.stats.TotalEdgesScanned(), 0u);
}

TEST(ResultCacheTest, ReversedPairSharesEntryWithReorientedEcho) {
  ResultCache cache({.capacity_bytes = 1 << 20, .shards = 4});
  const QueryRequest forward(3, 9);
  const QueryRequest reverse(9, 3);
  cache.Insert(forward, MakeResponse(3, 9, 2, {{3, 5}, {5, 9}}));

  QueryResponse out;
  ASSERT_TRUE(cache.Lookup(reverse, &out));
  // Same normalized payload, echo re-stamped to the request orientation.
  EXPECT_EQ(out.spg.u, 9u);
  EXPECT_EQ(out.spg.v, 3u);
  EXPECT_EQ(out.spg.distance, 2u);
  EXPECT_EQ(out.spg.edges.size(), 2u);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ResultCacheTest, ModeAndBudgetAreDistinctKeys) {
  ResultCache cache({.capacity_bytes = 1 << 20, .shards = 1});
  QueryRequest spg(1, 2, QueryMode::kSpg);
  QueryRequest dist(1, 2, QueryMode::kDistance);
  QueryRequest budgeted(1, 2, QueryMode::kSpg, /*budget_in=*/3);
  cache.Insert(spg, MakeResponse(1, 2, 1, {{1, 2}}));

  QueryResponse out;
  EXPECT_TRUE(cache.Lookup(spg, &out));
  EXPECT_FALSE(cache.Lookup(dist, &out));
  EXPECT_FALSE(cache.Lookup(budgeted, &out));

  cache.Insert(dist, MakeResponse(1, 2, 1, {}));
  ASSERT_TRUE(cache.Lookup(dist, &out));
  EXPECT_TRUE(out.spg.edges.empty());
  ASSERT_TRUE(cache.Lookup(spg, &out));
  EXPECT_EQ(out.spg.edges.size(), 1u);
}

TEST(ResultCacheTest, FlagsArePartOfTheReplayedPayload) {
  ResultCache cache({.capacity_bytes = 1 << 20, .shards = 1});
  const QueryRequest request(4, 40, QueryMode::kSpg, /*budget_in=*/2);
  cache.Insert(request,
               MakeResponse(4, 40, 7, {}, kResponseFlagBudgetExceeded));
  QueryResponse out;
  ASSERT_TRUE(cache.Lookup(request, &out));
  EXPECT_EQ(out.flags, kResponseFlagBudgetExceeded);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderCapacity) {
  // A deliberately tiny single-shard cache whose entries are dominated by
  // their edge payloads (64 edges = 512 bytes each), so roughly three fit
  // in 2 KiB: inserting past the budget must evict from the cold end, and
  // touching an entry must protect it.
  ResultCache cache({.capacity_bytes = 2048, .shards = 1});
  const auto fill = [&](VertexId i) {
    std::vector<Edge> edges;
    for (VertexId e = 0; e < 64; ++e) edges.push_back({i + e, i + e + 1});
    cache.Insert(QueryRequest(i, i + 1000),
                 MakeResponse(i, i + 1000, 64, std::move(edges)));
  };
  fill(0);
  fill(1);
  fill(2);
  QueryResponse out;
  ASSERT_TRUE(cache.Lookup(QueryRequest(0, 1000), &out));  // 0 is now MRU
  fill(3);  // over budget: the cold end is entry 1, not the touched entry 0

  const auto stats = cache.GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 2048u);
  // Entry 1 (never touched again) must be gone; touched entry 0 survives.
  EXPECT_FALSE(cache.Lookup(QueryRequest(1, 1001), &out));
  EXPECT_TRUE(cache.Lookup(QueryRequest(0, 1000), &out));
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache({.capacity_bytes = 0, .shards = 4});
  const QueryRequest request(1, 2);
  cache.Insert(request, MakeResponse(1, 2, 1, {{1, 2}}));
  QueryResponse out;
  EXPECT_FALSE(cache.Lookup(request, &out));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ResultCacheTest, ReinsertRefreshesInPlace) {
  ResultCache cache({.capacity_bytes = 1 << 20, .shards = 1});
  const QueryRequest request(5, 6);
  cache.Insert(request, MakeResponse(5, 6, 1, {{5, 6}}));
  cache.Insert(request, MakeResponse(5, 6, 1, {{5, 6}}));
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);  // second insert was a refresh
}

TEST(ResultCacheTest, ClearDropsEntriesKeepsCounters) {
  ResultCache cache({.capacity_bytes = 1 << 20, .shards = 2});
  cache.Insert(QueryRequest(1, 2), MakeResponse(1, 2, 1, {{1, 2}}));
  QueryResponse out;
  ASSERT_TRUE(cache.Lookup(QueryRequest(1, 2), &out));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(QueryRequest(1, 2), &out));
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ResultCacheTest, ConcurrentHammer) {
  // 8 threads × mixed lookups/inserts over an overlapping key range on a
  // capacity-constrained cache: exercises eviction racing lookup splices.
  // Run under TSan in CI; asserts only invariants that hold under races.
  ResultCache cache({.capacity_bytes = 64 * 1024, .shards = 4});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const VertexId u = static_cast<VertexId>((t * 7 + i) % 97);
        const VertexId v = u + 1000;
        const QueryRequest request(u, v);
        QueryResponse out;
        if (cache.Lookup(request, &out)) {
          // Whatever is replayed must be the payload stored for this key.
          ASSERT_EQ(out.spg.distance, u % 5);
          ASSERT_TRUE(out.cache_hit);
        } else {
          cache.Insert(request,
                       MakeResponse(u, v, u % 5, {{u, u + 1}}));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.GetStats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.bytes, 64u * 1024u);
}

}  // namespace
}  // namespace qbs::server

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "tests/test_util.h"

namespace qbs {
namespace {

using testing::Figure3Graph;
using testing::PaperEdgeSet;

TEST(OracleTest, Figure3QueryAnswer) {
  // Example 3.1 / Figure 3(a): SPG(3, 7) consists of the two paths
  // 3-1-2-5-7 and 3-4-2-5-7.
  Graph g = Figure3Graph();
  const auto spg = SpgByDoubleBfs(g, 2, 6);  // paper vertices 3 and 7
  EXPECT_EQ(spg.distance, 4u);
  EXPECT_EQ(spg.edges, PaperEdgeSet({{3, 1},
                                     {1, 2},
                                     {3, 4},
                                     {4, 2},
                                     {2, 5},
                                     {5, 7}}));
  EXPECT_EQ(spg.CountShortestPaths(), 2u);
}

TEST(OracleTest, AdjacentVertices) {
  Graph g = Figure3Graph();
  const auto spg = SpgByDoubleBfs(g, 0, 1);
  EXPECT_EQ(spg.distance, 1u);
  EXPECT_EQ(spg.edges, PaperEdgeSet({{1, 2}}));
}

TEST(OracleTest, EveryEdgeOnSomeShortestPath) {
  // Structural invariant: for each returned edge (x, y), it must hold that
  // d(u,x) + 1 + d(y,v) == d(u,v) in some orientation.
  Graph g = BarabasiAlbert(200, 2, 17);
  const auto du = BfsDistances(g, 5);
  const auto dv = BfsDistances(g, 140);
  const auto spg = SpgFromDistances(g, 5, 140, du, dv);
  ASSERT_TRUE(spg.Connected());
  for (const Edge& e : spg.edges) {
    const bool fwd = du[e.u] + 1 + dv[e.v] == spg.distance;
    const bool bwd = du[e.v] + 1 + dv[e.u] == spg.distance;
    EXPECT_TRUE(fwd || bwd);
  }
}

TEST(OracleTest, SpgRealizesDistanceInternally) {
  // The SPG itself must contain a u-v path of exactly d(u, v) edges:
  // CountShortestPaths() validates levels internally and returns >= 1.
  Graph g = WattsStrogatz(300, 4, 0.2, 23);
  const auto spg = SpgByDoubleBfs(g, 0, 150);
  ASSERT_TRUE(spg.Connected());
  EXPECT_GE(spg.CountShortestPaths(), 1u);
}

TEST(OracleTest, SymmetricInEndpoints) {
  Graph g = BarabasiAlbert(150, 3, 29);
  const auto a = SpgByDoubleBfs(g, 10, 90);
  const auto b = SpgByDoubleBfs(g, 90, 10);
  EXPECT_EQ(a.distance, b.distance);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(OracleTest, CompleteGraphSpgIsSingleEdge) {
  Graph g = CompleteGraph(10);
  const auto spg = SpgByDoubleBfs(g, 2, 7);
  EXPECT_EQ(spg.distance, 1u);
  EXPECT_EQ(spg.edges.size(), 1u);
}

TEST(OracleTest, StarGraphThroughHub) {
  Graph g = StarGraph(8);
  const auto spg = SpgByDoubleBfs(g, 3, 6);
  EXPECT_EQ(spg.distance, 2u);
  EXPECT_EQ(spg.edges, (std::vector<Edge>{{0, 3}, {0, 6}}));
  EXPECT_EQ(spg.CriticalVertices(), std::vector<VertexId>{0});
}

}  // namespace
}  // namespace qbs

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "core/qbs_index.h"
#include "core/serialization.h"
#include "gen/generators.h"
#include "tests/test_util.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "/index.qbs"; }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SerializationTest, SchemeRoundTrip) {
  Graph g = testing::Figure4Graph();
  const auto scheme =
      BuildLabelingScheme(g, testing::Figure4Landmarks());
  ASSERT_TRUE(SaveLabelingScheme(scheme, path_));
  auto loaded = LoadLabelingScheme(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->labeling.landmarks(), scheme.labeling.landmarks());
  EXPECT_EQ(loaded->labeling.NumEntries(), scheme.labeling.NumEntries());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (LandmarkIndex i = 0; i < 3; ++i) {
      EXPECT_EQ(loaded->labeling.Get(v, i), scheme.labeling.Get(v, i));
    }
  }
  EXPECT_EQ(loaded->meta.Edges(), scheme.meta.Edges());
  for (LandmarkIndex i = 0; i < 3; ++i) {
    for (LandmarkIndex j = 0; j < 3; ++j) {
      EXPECT_EQ(loaded->meta.Distance(i, j), scheme.meta.Distance(i, j));
    }
  }
}

TEST_F(SerializationTest, IndexSaveLoadQueriesAgree) {
  Graph g = BarabasiAlbert(400, 3, 9);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex built = QbsIndex::Build(g, options);
  ASSERT_TRUE(built.Save(path_));

  auto loaded = QbsIndex::LoadFromFile(g, path_, options);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->landmarks(), built.landmarks());
  EXPECT_GT(loaded->DeltaSizeBytes(), 0u);  // Δ rebuilt on load
  for (const auto& [u, v] : SampleQueryPairs(g, 40, 3)) {
    ASSERT_EQ(loaded->Query(u, v), built.Query(u, v));
    ASSERT_EQ(loaded->Query(u, v), SpgByDoubleBfs(g, u, v));
  }
}

TEST_F(SerializationTest, LoadRejectsWrongGraph) {
  Graph g = BarabasiAlbert(300, 2, 5);
  QbsOptions options;
  options.num_landmarks = 5;
  QbsIndex built = QbsIndex::Build(g, options);
  ASSERT_TRUE(built.Save(path_));
  Graph other = BarabasiAlbert(301, 2, 5);
  EXPECT_FALSE(QbsIndex::LoadFromFile(other, path_, options).has_value());
}

TEST_F(SerializationTest, LoadRejectsGarbage) {
  std::ofstream out(path_, std::ios::binary);
  out << "this is not an index";
  out.close();
  EXPECT_FALSE(LoadLabelingScheme(path_).has_value());
}

TEST_F(SerializationTest, LoadRejectsTruncated) {
  Graph g = BarabasiAlbert(200, 2, 6);
  QbsOptions options;
  options.num_landmarks = 5;
  QbsIndex built = QbsIndex::Build(g, options);
  ASSERT_TRUE(built.Save(path_));
  // Truncate the file to half.
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();
  EXPECT_FALSE(LoadLabelingScheme(path_).has_value());
}

TEST_F(SerializationTest, MissingFile) {
  EXPECT_FALSE(LoadLabelingScheme("/nonexistent/index.qbs").has_value());
}

// The committed fixture was written by the v1 (QBSIDX01) writer, before the
// bit-parallel mask section existed. The v2 loader must still read it:
// identical labels and meta-graph, masks disabled.
TEST_F(SerializationTest, LoadsV1FormatFixture) {
  const std::string fixture =
      std::string(QBS_TEST_DATA_DIR) + "/figure4_v1.qbsidx";
  auto loaded = LoadLabelingScheme(fixture);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->labeling.has_bp_masks());

  Graph g = testing::Figure4Graph();
  const auto fresh = BuildLabelingScheme(g, testing::Figure4Landmarks());
  ASSERT_EQ(loaded->labeling.landmarks(), fresh.labeling.landmarks());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (LandmarkIndex i = 0; i < fresh.labeling.num_landmarks(); ++i) {
      EXPECT_EQ(loaded->labeling.Get(v, i), fresh.labeling.Get(v, i))
          << "v=" << v << " i=" << i;
    }
  }
  EXPECT_EQ(loaded->meta.Edges(), fresh.meta.Edges());

  // A v1 file still finishes into a working index: queries agree with the
  // oracle (falling back to the sketch-guided search, no masks).
  auto index = QbsIndex::LoadFromFile(g, fixture);
  ASSERT_TRUE(index.has_value());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      SearchStats stats;
      ASSERT_EQ(index->Query(u, v, &stats), SpgByDoubleBfs(g, u, v))
          << "u=" << u << " v=" << v;
      ASSERT_EQ(stats.label_short_circuits, 0u);
    }
  }
}

// A freshly saved (v2) file round-trips the mask section; disabling masks
// at build keeps the section empty and the loader agrees.
TEST_F(SerializationTest, V2RoundTripWithoutMasks) {
  Graph g = BarabasiAlbert(200, 2, 13);
  QbsOptions options;
  options.num_landmarks = 6;
  options.bit_parallel = false;
  QbsIndex built = QbsIndex::Build(g, options);
  ASSERT_TRUE(built.Save(path_));
  auto loaded = QbsIndex::LoadFromFile(g, path_, options);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->labeling().has_bp_masks());
  for (const auto& [u, v] : SampleQueryPairs(g, 30, 13)) {
    ASSERT_EQ(loaded->Query(u, v), built.Query(u, v));
  }
}

}  // namespace
}  // namespace qbs

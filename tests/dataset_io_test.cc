// Tests for the real-dataset ingestion layer (graph/dataset_io.h): the
// gz-aware edge-list reader and the QBSGRF01 binary cache — round-trip
// bit-identity, corruption rejection, and the convert-once-then-cache flow.

#include "graph/dataset_io.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/edge_list_io.h"
#include "graph/graph.h"

namespace qbs {
namespace {

namespace fs = std::filesystem;

const char* FixturePlain() {
  static const std::string* const kPath =
      new std::string(std::string(QBS_TEST_DATA_DIR) + "/tiny_edges.txt");
  return kPath->c_str();
}

const char* FixtureGz() {
  static const std::string* const kPath =
      new std::string(std::string(QBS_TEST_DATA_DIR) + "/tiny_edges.txt.gz");
  return kPath->c_str();
}

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

void ExpectBitIdentical(const Graph& a, const Graph& b) {
  const auto ao = a.RawOffsets();
  const auto bo = b.RawOffsets();
  ASSERT_EQ(ao.size(), bo.size());
  for (size_t i = 0; i < ao.size(); ++i) EXPECT_EQ(ao[i], bo[i]) << i;
  const auto aa = a.RawAdjacency();
  const auto ba = b.RawAdjacency();
  ASSERT_EQ(aa.size(), ba.size());
  for (size_t i = 0; i < aa.size(); ++i) EXPECT_EQ(aa[i], ba[i]) << i;
}

// The fixture: vertices 0..4 plus {10, 11, 12} relabelled to 5..7;
// dedup/self-loop removal leaves 7 undirected edges in two components.
TEST(DatasetIoTest, ReadsPlainFixture) {
  auto g = ReadEdgeListAuto(FixturePlain());
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumVertices(), 8u);
  EXPECT_EQ(g->NumEdges(), 7u);
  EXPECT_TRUE(g->HasEdge(0, 2));   // "2 0" line, normalized
  EXPECT_TRUE(g->HasEdge(5, 6));   // "10 11" relabelled
  EXPECT_FALSE(g->HasEdge(4, 4));  // self-loop dropped
}

TEST(DatasetIoTest, GzipFixtureMatchesPlain) {
  if (!GzipSupported()) {
    GTEST_SKIP() << "built without zlib";
  }
  auto plain = ReadEdgeListAuto(FixturePlain());
  auto gz = ReadEdgeListAuto(FixtureGz());
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(gz.has_value());
  ExpectBitIdentical(*plain, *gz);
}

TEST(DatasetIoTest, GzipWithoutZlibFailsCleanly) {
  if (GzipSupported()) {
    GTEST_SKIP() << "this build has zlib";
  }
  EXPECT_FALSE(ReadEdgeListAuto(FixtureGz()).has_value());
}

TEST(DatasetIoTest, CacheRoundTripIsBitIdentical) {
  auto g = ReadEdgeListAuto(FixturePlain());
  ASSERT_TRUE(g.has_value());
  const std::string path = TempPath("roundtrip.qbsgrf");
  DatasetCacheInfo info;
  info.largest_cc_extracted = true;
  info.raw_vertices = 123;
  info.raw_edges = 456;
  info.raw_file_bytes = 789;
  ASSERT_TRUE(SaveGraphCache(*g, info, path));

  DatasetCacheInfo loaded_info;
  auto loaded = LoadGraphCache(path, &loaded_info);
  ASSERT_TRUE(loaded.has_value());
  ExpectBitIdentical(*g, *loaded);
  EXPECT_TRUE(loaded_info.largest_cc_extracted);
  EXPECT_EQ(loaded_info.raw_vertices, 123u);
  EXPECT_EQ(loaded_info.raw_edges, 456u);
  EXPECT_EQ(loaded_info.raw_file_bytes, 789u);

  // Graph::LoadCached is the same loader.
  auto via_graph = Graph::LoadCached(path);
  ASSERT_TRUE(via_graph.has_value());
  ExpectBitIdentical(*g, *via_graph);
}

TEST(DatasetIoTest, EmptyGraphRoundTrips) {
  const std::string path = TempPath("empty.qbsgrf");
  ASSERT_TRUE(SaveGraphCache(Graph(), DatasetCacheInfo{}, path));
  auto loaded = LoadGraphCache(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumVertices(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
}

TEST(DatasetIoTest, CorruptedPayloadIsRejected) {
  auto g = ReadEdgeListAuto(FixturePlain());
  ASSERT_TRUE(g.has_value());
  const std::string path = TempPath("corrupt.qbsgrf");
  ASSERT_TRUE(SaveGraphCache(*g, DatasetCacheInfo{}, path));

  // Flip one bit in the last payload byte (an adjacency entry).
  const auto size = fs::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size) - 1);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(size) - 1);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(LoadGraphCache(path).has_value());
}

TEST(DatasetIoTest, CorruptedHeaderCountIsRejectedNotAllocated) {
  // The checksum covers only the payload, so a bit-flipped header count
  // must be caught by the file-size bound — not die in a ~2^62-byte
  // std::bad_alloc.
  auto g = ReadEdgeListAuto(FixturePlain());
  ASSERT_TRUE(g.has_value());
  const std::string path = TempPath("huge_header.qbsgrf");
  ASSERT_TRUE(SaveGraphCache(*g, DatasetCacheInfo{}, path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    // Header layout: magic u64 @0, num_vertices u32 @8, num_edges u64 @12.
    const uint64_t huge = 1ull << 60;
    f.seekp(12);
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_FALSE(LoadGraphCache(path).has_value());
}

TEST(DatasetIoTest, BadMagicAndTruncationAreRejected) {
  auto g = ReadEdgeListAuto(FixturePlain());
  ASSERT_TRUE(g.has_value());
  const std::string path = TempPath("header.qbsgrf");
  ASSERT_TRUE(SaveGraphCache(*g, DatasetCacheInfo{}, path));

  // Bad magic.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    char zero = 0;
    f.write(&zero, 1);
  }
  EXPECT_FALSE(LoadGraphCache(path).has_value());

  // Truncated payload.
  ASSERT_TRUE(SaveGraphCache(*g, DatasetCacheInfo{}, path));
  fs::resize_file(path, fs::file_size(path) - 8);
  EXPECT_FALSE(LoadGraphCache(path).has_value());

  // Missing file.
  EXPECT_FALSE(LoadGraphCache(TempPath("never_written.qbsgrf")).has_value());
}

TEST(DatasetIoTest, LoadOrConvertExtractsLargestComponentAndCaches) {
  // Copy the fixture so the raw file can be deleted to prove the second
  // load never re-parses it.
  const std::string raw = TempPath("convert_raw.txt");
  const std::string cache = TempPath("convert.qbsgrf");
  fs::remove(cache);
  fs::copy_file(FixturePlain(), raw, fs::copy_options::overwrite_existing);

  DatasetCacheInfo info;
  auto converted = LoadOrConvertDataset(raw, cache, &info);
  ASSERT_TRUE(converted.has_value());
  // Largest CC of the two-component fixture: the 5-vertex triangle+path.
  EXPECT_EQ(converted->NumVertices(), 5u);
  EXPECT_EQ(converted->NumEdges(), 5u);
  EXPECT_TRUE(info.largest_cc_extracted);
  EXPECT_EQ(info.raw_vertices, 8u);
  EXPECT_EQ(info.raw_edges, 7u);

  fs::remove(raw);
  DatasetCacheInfo info2;
  auto cached = LoadOrConvertDataset(raw, cache, &info2);
  ASSERT_TRUE(cached.has_value());
  ExpectBitIdentical(*converted, *cached);
  EXPECT_TRUE(info2.largest_cc_extracted);
  EXPECT_EQ(info2.raw_vertices, 8u);
}

TEST(DatasetIoTest, LoadOrConvertRebuildsWhenRawFileChanges) {
  // A replaced raw download (different size) must invalidate the cache:
  // serving the old conversion forever would silently bench stale data.
  const std::string raw = TempPath("stale_raw.txt");
  const std::string cache = TempPath("stale.qbsgrf");
  fs::remove(cache);
  {
    std::ofstream f(raw, std::ios::trunc);
    f << "0 1\n1 2\n";
  }
  auto first = LoadOrConvertDataset(raw, cache, nullptr);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->NumVertices(), 3u);

  {
    std::ofstream f(raw, std::ios::trunc);
    f << "0 1\n1 2\n2 3\n3 4\n";
  }
  DatasetCacheInfo info;
  auto second = LoadOrConvertDataset(raw, cache, &info);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->NumVertices(), 5u);
  EXPECT_EQ(info.raw_file_bytes, fs::file_size(raw));
  // And the rebuilt cache now matches the new raw file: a third call is a
  // cache hit (bit-identical, no re-parse needed).
  fs::remove(raw);
  auto third = LoadOrConvertDataset(raw, cache, nullptr);
  ASSERT_TRUE(third.has_value());
  ExpectBitIdentical(*second, *third);
}

TEST(DatasetIoTest, LoadOrConvertRebuildsRejectedCache) {
  const std::string raw = TempPath("rebuild_raw.txt");
  const std::string cache = TempPath("rebuild.qbsgrf");
  fs::copy_file(FixturePlain(), raw, fs::copy_options::overwrite_existing);
  {
    std::ofstream garbage(cache, std::ios::binary | std::ios::trunc);
    garbage << "not a qbsgrf file";
  }
  auto converted = LoadOrConvertDataset(raw, cache, nullptr);
  ASSERT_TRUE(converted.has_value());
  EXPECT_EQ(converted->NumVertices(), 5u);
  // The cache was rewritten and now verifies.
  EXPECT_TRUE(Graph::LoadCached(cache).has_value());
}

TEST(DatasetIoTest, LoadOrConvertWithNeitherSourceFails) {
  EXPECT_FALSE(LoadOrConvertDataset(TempPath("no_raw.txt"),
                                    TempPath("no_cache.qbsgrf"), nullptr)
                   .has_value());
}

TEST(DatasetIoTest, FromCsrMatchesFromEdges) {
  const Graph a = Graph::FromEdges(
      4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}});
  const Graph b = Graph::FromCsr(
      std::vector<uint64_t>(a.RawOffsets().begin(), a.RawOffsets().end()),
      std::vector<VertexId>(a.RawAdjacency().begin(),
                            a.RawAdjacency().end()));
  ExpectBitIdentical(a, b);
  EXPECT_EQ(b.NumEdges(), 5u);
  EXPECT_TRUE(b.HasEdge(1, 3));
}

}  // namespace
}  // namespace qbs

// Workload-generator determinism and shape: same seed must reproduce the
// request stream and arrival schedule byte-for-byte (the property the
// serving acceptance criterion — "same seed reproduces hit-rate exactly" —
// rests on), and the Zipfian skew / Poisson arrivals must have the
// advertised structure.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "workload/synthetic_workload.h"

namespace qbs {
namespace {

WorkloadOptions SmallWorkload() {
  WorkloadOptions options;
  options.num_queries = 2000;
  options.num_distinct_pairs = 50;
  options.zipf_s = 1.0;
  options.seed = 7;
  return options;
}

TEST(SyntheticWorkloadTest, SameSeedReproducesTheStreamExactly) {
  const Graph g = BarabasiAlbert(500, 3, 11);
  const auto options = SmallWorkload();
  const auto first = GenerateWorkload(g, options);
  const auto second = GenerateWorkload(g, options);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].request, second[i].request) << i;
    EXPECT_EQ(first[i].arrival_ns, second[i].arrival_ns) << i;
  }
}

TEST(SyntheticWorkloadTest, DifferentSeedsDiffer) {
  const Graph g = BarabasiAlbert(500, 3, 11);
  auto options = SmallWorkload();
  const auto first = GenerateWorkload(g, options);
  options.seed = 8;
  const auto second = GenerateWorkload(g, options);
  ASSERT_EQ(first.size(), second.size());
  bool any_difference = false;
  for (size_t i = 0; i < first.size() && !any_difference; ++i) {
    any_difference = !(first[i].request == second[i].request);
  }
  EXPECT_TRUE(any_difference);
}

TEST(SyntheticWorkloadTest, ClosedLoopHasZeroArrivals) {
  const Graph g = BarabasiAlbert(300, 3, 11);
  auto options = SmallWorkload();
  options.arrival_rate_qps = 0.0;
  for (const auto& q : GenerateWorkload(g, options)) {
    EXPECT_EQ(q.arrival_ns, 0u);
  }
}

TEST(SyntheticWorkloadTest, OpenLoopArrivalsAreMonotone) {
  const Graph g = BarabasiAlbert(300, 3, 11);
  auto options = SmallWorkload();
  options.arrival_rate_qps = 5000.0;
  options.burst_factor = 4.0;
  options.phases = 8;
  const auto queries = GenerateWorkload(g, options);
  uint64_t prev = 0;
  uint64_t last = 0;
  for (const auto& q : queries) {
    EXPECT_GE(q.arrival_ns, prev);
    prev = q.arrival_ns;
    last = q.arrival_ns;
  }
  EXPECT_GT(last, 0u);
  // Sanity: the schedule spans roughly num_queries / mean_rate seconds —
  // allow a generous factor for burst phases and randomness.
  const double span_s = static_cast<double>(last) * 1e-9;
  const double nominal_s =
      static_cast<double>(options.num_queries) / options.arrival_rate_qps;
  EXPECT_LT(span_s, nominal_s * 3.0);
  EXPECT_GT(span_s, nominal_s / 10.0);
}

TEST(SyntheticWorkloadTest, ZipfSkewMakesRankZeroHottest) {
  const Graph g = BarabasiAlbert(500, 3, 11);
  auto options = SmallWorkload();
  options.num_queries = 20000;
  options.zipf_s = 1.2;
  const auto universe = WorkloadUniverse(g, options);
  ASSERT_FALSE(universe.empty());
  const auto queries = GenerateWorkload(g, options);

  std::map<std::pair<VertexId, VertexId>, size_t> counts;
  for (const auto& q : queries) counts[{q.request.u, q.request.v}]++;
  const auto hottest = std::max_element(
      counts.begin(), counts.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  // The most frequent pair in the stream is the rank-0 pair of the
  // universe, and it dominates the uniform share by a wide margin.
  EXPECT_EQ(hottest->first.first, universe[0].u);
  EXPECT_EQ(hottest->first.second, universe[0].v);
  EXPECT_GT(hottest->second,
            4 * options.num_queries / options.num_distinct_pairs);
}

TEST(SyntheticWorkloadTest, UniversePairsAreValidAndDistinctEndpoints) {
  const Graph g = BarabasiAlbert(200, 3, 11);
  auto options = SmallWorkload();
  for (const auto& p : WorkloadUniverse(g, options)) {
    EXPECT_LT(p.u, g.NumVertices());
    EXPECT_LT(p.v, g.NumVertices());
    EXPECT_NE(p.u, p.v);
  }
}

TEST(SyntheticWorkloadTest, UniverseIsIndependentOfQueryCount) {
  // Growing the stream must not reshuffle which pairs are hot — otherwise
  // short smoke runs and long bench runs would disagree about the universe.
  const Graph g = BarabasiAlbert(500, 3, 11);
  auto options = SmallWorkload();
  const auto universe_small = WorkloadUniverse(g, options);
  options.num_queries *= 10;
  const auto universe_large = WorkloadUniverse(g, options);
  ASSERT_EQ(universe_small.size(), universe_large.size());
  for (size_t i = 0; i < universe_small.size(); ++i) {
    EXPECT_EQ(universe_small[i].u, universe_large[i].u) << i;
    EXPECT_EQ(universe_small[i].v, universe_large[i].v) << i;
  }
}

TEST(SyntheticWorkloadTest, OptionsAreStampedIntoEveryRequest) {
  const Graph g = BarabasiAlbert(200, 3, 11);
  auto options = SmallWorkload();
  options.mode = QueryMode::kDistance;
  options.budget = 6;
  options.flags = kQueryFlagNoCache;
  for (const auto& q : GenerateWorkload(g, options)) {
    EXPECT_EQ(q.request.mode, QueryMode::kDistance);
    EXPECT_EQ(q.request.budget, 6u);
    EXPECT_EQ(q.request.flags, kQueryFlagNoCache);
  }
}

}  // namespace
}  // namespace qbs

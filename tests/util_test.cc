#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/epoch_array.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace qbs {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformReal();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.UniformInRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(EpochArrayTest, DefaultUntilSet) {
  EpochArray<uint32_t> a(10, 99);
  EXPECT_EQ(a.Get(3), 99u);
  EXPECT_FALSE(a.IsSet(3));
  a.Set(3, 7);
  EXPECT_EQ(a.Get(3), 7u);
  EXPECT_TRUE(a.IsSet(3));
}

TEST(EpochArrayTest, ResetClearsAll) {
  EpochArray<uint32_t> a(10, 0);
  for (size_t i = 0; i < 10; ++i) a.Set(i, static_cast<uint32_t>(i));
  a.Reset();
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(a.IsSet(i));
    EXPECT_EQ(a.Get(i), 0u);
  }
}

TEST(EpochArrayTest, ManyResetCycles) {
  EpochArray<int> a(4, -1);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    a.Set(cycle % 4, cycle);
    EXPECT_EQ(a.Get(cycle % 4), cycle);
    a.Reset();
    EXPECT_EQ(a.Get(cycle % 4), -1);
  }
}

TEST(ThreadPoolTest, RunsAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ParallelForTest, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(hits.size(), 8,
              [&](size_t i, size_t) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SingleThreadInline) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](size_t i, size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, WorkerIndexInRange) {
  std::atomic<bool> ok{true};
  ParallelFor(100, 3, [&](size_t, size_t worker) {
    if (worker >= 3) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ParallelFor(0, 4, [](size_t, size_t) { FAIL(); });
}

TEST(WallTimerTest, Monotonic) {
  WallTimer t;
  const int64_t a = t.ElapsedNanos();
  const int64_t b = t.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

}  // namespace
}  // namespace qbs

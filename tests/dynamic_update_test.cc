// The dynamic-index gauntlet: random edit scripts against
// QbsIndex::ApplyUpdates must leave the index bit-identical to a
// from-scratch build on the updated graph — labels, bit-parallel masks,
// meta-graph, and answers (SameAnswer on sampled pairs, including d <= 2
// pairs that exercise the mask fast path).
//
// The labelling is uniquely determined by (G, R) (Lemma 5.2), which is
// what makes bit-identity a legitimate oracle: same updated graph, same
// landmarks, same bits.
//
// Seeds come from QBS_DYNAMIC_SEEDS (comma-separated) when set — the CI
// dynamic-gauntlet job passes 16 fresh seeds per run and logs them — and
// default to 1..16 locally. Every seed is printed, so any failure line is
// directly replayable with QBS_DYNAMIC_SEEDS=<seed>.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "core/qbs_index.h"
#include "gen/generators.h"
#include "graph/graph_delta.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

std::vector<uint64_t> GauntletSeeds() {
  std::vector<uint64_t> seeds;
  if (const char* env = std::getenv("QBS_DYNAMIC_SEEDS")) {
    const std::string s(env);
    size_t pos = 0;
    while (pos < s.size()) {
      size_t end = s.find(',', pos);
      if (end == std::string::npos) end = s.size();
      const std::string tok = s.substr(pos, end - pos);
      if (!tok.empty()) seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
      pos = end + 1;
    }
  }
  if (seeds.empty()) {
    for (uint64_t i = 1; i <= 16; ++i) seeds.push_back(i);
  }
  return seeds;
}

Graph MakeFamilyGraph(uint64_t seed) {
  switch (seed % 3) {
    case 0:
      return BarabasiAlbert(220, 3, seed);
    case 1:
      return WattsStrogatz(180, 4, 0.1, seed);
    default:
      // Raw G(n, m), possibly disconnected — exercises the unreachable
      // paths of detection and repair.
      return ErdosRenyi(200, 380, seed);
  }
}

// A script mixing fresh inserts, deletions of existing edges, likely
// no-ops, and the occasional invalid entry.
GraphDelta RandomScript(const Graph& g, std::mt19937_64& rng, size_t ops) {
  const std::vector<Edge> edges = g.EdgeList();
  std::uniform_int_distribution<VertexId> vtx(0, g.NumVertices() - 1);
  GraphDelta delta;
  for (size_t i = 0; i < ops; ++i) {
    const uint64_t roll = rng() % 100;
    if (roll < 45) {
      delta.Insert(vtx(rng), vtx(rng));  // may be a self-loop / duplicate
    } else if (roll < 85 && !edges.empty()) {
      const Edge& e = edges[rng() % edges.size()];
      delta.Delete(e.u, e.v);
    } else if (roll < 95) {
      delta.Delete(vtx(rng), vtx(rng));  // probably absent: a no-op
    } else {
      delta.Insert(vtx(rng), static_cast<VertexId>(g.NumVertices() + 7));
    }
  }
  return delta;
}

void AssertSameScheme(const Graph& g, const QbsIndex& updated,
                      const QbsIndex& fresh) {
  const PathLabeling& a = updated.labeling();
  const PathLabeling& b = fresh.labeling();
  ASSERT_EQ(a.landmarks(), b.landmarks());
  ASSERT_EQ(a.has_bp_masks(), b.has_bp_masks());
  const uint32_t k = a.num_landmarks();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t i = 0; i < k; ++i) {
      ASSERT_EQ(a.Get(v, i), b.Get(v, i))
          << "label mismatch at v=" << v << " landmark=" << i;
      if (a.has_bp_masks()) {
        ASSERT_EQ(a.GetBpMask(v, i), b.GetBpMask(v, i))
            << "bp mask mismatch at v=" << v << " landmark=" << i;
      }
    }
  }
  ASSERT_EQ(updated.meta_graph().Edges(), fresh.meta_graph().Edges());
}

// Sampled pairs + adjacent and two-hop pairs (the d <= 2 bit-parallel
// fast path must stay bit-identical too).
std::vector<QueryPair> ProbePairs(const Graph& g, std::mt19937_64& rng) {
  std::vector<QueryPair> pairs = SampleQueryPairs(g, 25, rng());
  for (int i = 0; i < 10; ++i) {
    const auto u = static_cast<VertexId>(rng() % g.NumVertices());
    const auto nu = g.Neighbors(u);
    if (nu.empty()) continue;
    const VertexId w = nu[rng() % nu.size()];
    pairs.push_back({u, w});  // d == 1
    const auto nw = g.Neighbors(w);
    if (!nw.empty()) pairs.push_back({u, nw[rng() % nw.size()]});  // d <= 2
  }
  return pairs;
}

void AssertSameAnswers(const Graph& g, QbsIndex& updated, QbsIndex& fresh,
                       std::mt19937_64& rng) {
  for (const auto& [u, v] : ProbePairs(g, rng)) {
    QueryRequest request;
    request.u = u;
    request.v = v;
    const QueryResponse got = updated.Query(request);
    const QueryResponse want = fresh.Query(request);
    ASSERT_TRUE(SameAnswer(got, want)) << "answer diverged for (" << u << ", "
                                       << v << ")";
  }
}

TEST(DynamicUpdateTest, GauntletMatchesFreshBuild) {
  for (const uint64_t seed : GauntletSeeds()) {
    std::mt19937_64 rng(seed);
    Graph g = MakeFamilyGraph(seed);
    QbsOptions options;
    options.num_landmarks = 8;
    options.num_threads = 2;
    options.bit_parallel = seed % 2 == 0;
    std::printf("[gauntlet] seed=%" PRIu64 " family=%" PRIu64 " bp=%d\n",
                seed, seed % 3, options.bit_parallel ? 1 : 0);
    QbsIndex index = QbsIndex::Build(g, options);
    index.EnableUpdates(&g, 2);
    const std::vector<VertexId> landmarks = index.landmarks();

    for (int batch = 0; batch < 3; ++batch) {
      const GraphDelta delta = RandomScript(g, rng, 10);
      index.ApplyUpdates(delta);
      ASSERT_FALSE(index.HasDirtyColumns());  // eager by default
      QbsIndex fresh = QbsIndex::BuildWithLandmarks(g, landmarks, options);
      AssertSameScheme(g, index, fresh);
      AssertSameAnswers(g, index, fresh, rng);
      if (::testing::Test::HasFatalFailure()) {
        return;  // the printed seed line identifies the failing script
      }
    }
  }
}

TEST(DynamicUpdateTest, DeferredConsolidationConvergesToEager) {
  for (const uint64_t seed : {3u, 8u, 11u}) {
    std::mt19937_64 rng(seed);
    Graph g_eager = MakeFamilyGraph(seed);
    Graph g_deferred = MakeFamilyGraph(seed);  // identical twin
    QbsOptions options;
    options.num_landmarks = 6;
    options.num_threads = 2;
    QbsIndex eager = QbsIndex::Build(g_eager, options);
    eager.EnableUpdates(&g_eager, 2);
    QbsIndex deferred =
        QbsIndex::BuildWithLandmarks(g_deferred, eager.landmarks(), options);
    deferred.EnableUpdates(&g_deferred, 2);

    // Same two-batch script on both; the deferred index leaves its
    // delete-dirty columns stale between batches.
    UpdateOptions defer;
    defer.consolidate = false;
    defer.num_threads = 2;
    uint32_t deferred_total = 0;
    for (int batch = 0; batch < 2; ++batch) {
      const GraphDelta delta = RandomScript(g_eager, rng, 12);
      eager.ApplyUpdates(delta);
      const UpdateStats stats = deferred.ApplyUpdates(delta, defer);
      deferred_total += stats.deferred_columns;
    }
    EXPECT_EQ(deferred.HasDirtyColumns(), deferred_total > 0);

    // Consolidation brings the stale columns back to exact — bit-identical
    // to the eagerly-maintained twin.
    deferred.Consolidate(2);
    EXPECT_FALSE(deferred.HasDirtyColumns());
    ASSERT_EQ(g_eager.EdgeList(), g_deferred.EdgeList());
    AssertSameScheme(g_eager, deferred, eager);
    AssertSameAnswers(g_eager, deferred, eager, rng);
  }
}

TEST(DynamicUpdateTest, UpdatableAfterLoadFromFile) {
  Graph g = BarabasiAlbert(150, 3, 21);
  QbsOptions options;
  options.num_landmarks = 6;
  const std::string path = ::testing::TempDir() + "/dynamic_update_idx.qbs";
  {
    const QbsIndex built = QbsIndex::Build(g, options);
    ASSERT_TRUE(built.Save(path));
  }
  auto loaded = QbsIndex::LoadFromFile(g, path, options);
  ASSERT_TRUE(loaded.has_value());
  // EnableUpdates recaptures per-column depths with fresh BFS sweeps, so a
  // deserialized index is just as updatable as a built one.
  loaded->EnableUpdates(&g);
  GraphDelta delta;
  delta.Insert(0, 149);
  delta.Delete(g.EdgeList().front().u, g.EdgeList().front().v);
  loaded->ApplyUpdates(delta);
  QbsIndex fresh = QbsIndex::BuildWithLandmarks(g, loaded->landmarks(), options);
  AssertSameScheme(g, *loaded, fresh);
  std::remove(path.c_str());
}

TEST(DynamicUpdateTest, InsertShortensDistanceImmediately) {
  Graph g = PathGraph(8);  // 0-1-...-7
  QbsOptions options;
  options.num_landmarks = 2;
  QbsIndex index = QbsIndex::Build(g, options);
  index.EnableUpdates(&g);
  GraphDelta delta;
  delta.Insert(0, 7);
  const UpdateStats stats = index.ApplyUpdates(delta);
  EXPECT_EQ(stats.applied_inserts, 1u);
  EXPECT_EQ(index.Query(0, 7), SpgByDoubleBfs(g, 0, 7));
  EXPECT_EQ(index.Query(1, 6), SpgByDoubleBfs(g, 1, 6));
}

TEST(DynamicUpdateTest, DeleteDisconnectsImmediately) {
  Graph g = PathGraph(8);
  QbsOptions options;
  options.num_landmarks = 2;
  QbsIndex index = QbsIndex::Build(g, options);
  index.EnableUpdates(&g);
  GraphDelta delta;
  delta.Delete(3, 4);  // the bridge
  const UpdateStats stats = index.ApplyUpdates(delta);
  EXPECT_EQ(stats.applied_deletes, 1u);
  EXPECT_FALSE(index.Query(0, 7).Connected());
  EXPECT_EQ(index.Query(0, 3), SpgByDoubleBfs(g, 0, 3));
  EXPECT_EQ(index.Query(4, 7), SpgByDoubleBfs(g, 4, 7));
}

TEST(DynamicUpdateTest, NoopScriptChangesNothing) {
  Graph g = BarabasiAlbert(120, 2, 5);
  QbsOptions options;
  options.num_landmarks = 5;
  QbsIndex index = QbsIndex::Build(g, options);
  index.EnableUpdates(&g);
  QbsIndex baseline = QbsIndex::BuildWithLandmarks(g, index.landmarks(),
                                                   options);
  GraphDelta delta;
  const Edge existing = g.EdgeList().front();
  delta.Insert(existing.u, existing.v);  // already present
  delta.Delete(0, 0);                    // self-loop: invalid
  delta.Insert(5, 5);                    // self-loop: invalid
  delta.Delete(1, 119);                  // absent (in BA order): no-op
  const bool absent = !g.HasEdge(1, 119);
  const UpdateStats stats = index.ApplyUpdates(delta);
  EXPECT_EQ(stats.AppliedTotal(), absent ? 0u : 1u);
  EXPECT_EQ(stats.invalid_updates, 2u);
  EXPECT_GE(stats.noop_updates, 1u);
  if (stats.AppliedTotal() == 0) {
    EXPECT_EQ(stats.repaired_columns, 0u);
    EXPECT_EQ(stats.rebuilt_columns, 0u);
    AssertSameScheme(g, index, baseline);
  }
}

}  // namespace
}  // namespace qbs

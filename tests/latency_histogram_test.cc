// server/latency_histogram.h: bucket edges, quantiles, and — the reason
// this file exists — the Snapshot ordering contract: total_nanos_ is
// written with release and read with acquire BEFORE the bucket loads, so a
// snapshot can never observe a total that includes samples whose bucket
// increments it missed (count >= samples summed into total). Verified here
// by hammering Record from many threads while snapshotting concurrently.

#include "server/latency_histogram.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace qbs::server {
namespace {

TEST(LatencyHistogramTest, BucketsAndQuantilesSingleThread) {
  LatencyHistogram h;
  h.Record(0);     // bucket 0: [0, 2)
  h.Record(1);     // bucket 0
  h.Record(2);     // bucket 1: [2, 4)
  h.Record(1000);  // bucket 9: [512, 1024)
  const auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.total_nanos, 1003u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[9], 1u);
  // p0 lands in bucket 0 (upper edge 1 ns); p100 in bucket 9 (edge 1023).
  EXPECT_EQ(snap.QuantileNanos(0.0), 1u);
  EXPECT_EQ(snap.QuantileNanos(1.0), 1023u);
  EXPECT_NEAR(snap.MeanMillis(), 1003.0 / 4 / 1e6, 1e-12);
}

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram h;
  const auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.QuantileNanos(0.99), 0u);
  EXPECT_EQ(snap.MeanMillis(), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentSnapshotsNeverOvercountTotal) {
  // Every sample has the same value, so the ordering contract becomes an
  // exact arithmetic invariant: any snapshot must satisfy
  // total_nanos <= count * kSample — i.e. every nanosecond in the total is
  // backed by a visible bucket increment. A racy (relaxed-load-buckets-
  // first) snapshot can violate this; the acquire/release pairing may not.
  constexpr uint64_t kSample = 1000;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  LatencyHistogram h;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(kSample);
    });
  }

  uint64_t last_count = 0;
  uint64_t snapshots_taken = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = h.GetSnapshot();
      ASSERT_LE(snap.total_nanos, snap.count * kSample);
      // Counts are monotone across snapshots from one reader.
      ASSERT_GE(snap.count, last_count);
      last_count = snap.count;
      ++snapshots_taken;
    }
  });

  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(snapshots_taken, 0u);

  // All writers joined: the final snapshot is exact.
  const auto snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.total_nanos, uint64_t{kThreads} * kPerThread * kSample);
}

}  // namespace
}  // namespace qbs::server

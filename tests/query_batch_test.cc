#include <thread>

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "core/qbs_index.h"
#include "gen/generators.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

std::vector<std::pair<VertexId, VertexId>> ToPairs(
    const std::vector<QueryPair>& pairs) {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) out.emplace_back(p.u, p.v);
  return out;
}

TEST(QueryBatchTest, MatchesSequentialQueries) {
  Graph g = BarabasiAlbert(800, 3, 3);
  QbsOptions options;
  options.num_landmarks = 12;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto pairs = ToPairs(SampleQueryPairs(g, 300, 5));
  const auto batch = index.QueryBatch(pairs, 8);
  ASSERT_EQ(batch.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(batch[i], index.Query(pairs[i].first, pairs[i].second))
        << "i=" << i;
  }
}

TEST(QueryBatchTest, MatchesOracle) {
  Graph g = WattsStrogatz(500, 6, 0.2, 4);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto pairs = ToPairs(SampleQueryPairs(g, 100, 6));
  const auto batch = index.QueryBatch(pairs, 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(batch[i], SpgByDoubleBfs(g, pairs[i].first, pairs[i].second));
  }
}

TEST(QueryBatchTest, ThreadCountInvariant) {
  Graph g = BarabasiAlbert(400, 2, 7);
  QbsOptions options;
  options.num_landmarks = 8;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto pairs = ToPairs(SampleQueryPairs(g, 150, 8));
  const auto one = index.QueryBatch(pairs, 1);
  const auto many = index.QueryBatch(pairs, 6);
  EXPECT_EQ(one, many);
}

TEST(QueryBatchTest, EmptyAndSingleton) {
  Graph g = PathGraph(10);
  QbsOptions options;
  options.num_landmarks = 2;
  QbsIndex index = QbsIndex::Build(g, options);
  EXPECT_TRUE(index.QueryBatch({}, 4).empty());
  const auto single = index.QueryBatch({{0, 9}}, 4);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], SpgByDoubleBfs(g, 0, 9));
}

TEST(QueryBatchTest, ConcurrentBatchesOnOneIndex) {
  // Concurrent QueryBatch calls must not share searchers (the pool is
  // checkout/checkin under a lock).
  Graph g = BarabasiAlbert(600, 3, 9);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto pairs = ToPairs(SampleQueryPairs(g, 200, 3));
  const auto expected = index.QueryBatch(pairs, 1);
  std::vector<std::vector<ShortestPathGraph>> got(4);
  std::vector<std::thread> callers;
  for (size_t t = 0; t < got.size(); ++t) {
    callers.emplace_back(
        [&, t] { got[t] = index.QueryBatch(pairs, 3); });
  }
  for (auto& c : callers) c.join();
  for (const auto& result : got) {
    ASSERT_EQ(result, expected);
  }
}

TEST(QueryBatchTest, DuplicateAndSelfPairs) {
  Graph g = CycleGraph(20);
  QbsOptions options;
  options.num_landmarks = 3;
  QbsIndex index = QbsIndex::Build(g, options);
  const std::vector<std::pair<VertexId, VertexId>> pairs{
      {0, 10}, {0, 10}, {5, 5}, {10, 0}};
  const auto batch = index.QueryBatch(pairs, 2);
  EXPECT_EQ(batch[0], batch[1]);
  EXPECT_EQ(batch[2].distance, 0u);
  EXPECT_EQ(batch[3].distance, batch[0].distance);
}

}  // namespace
}  // namespace qbs

#include <thread>

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "core/qbs_index.h"
#include "gen/generators.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

std::vector<QueryRequest> ToRequests(const std::vector<QueryPair>& pairs,
                                     QueryMode mode = QueryMode::kSpg) {
  std::vector<QueryRequest> out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) out.emplace_back(p.u, p.v, mode);
  return out;
}

QbsIndex::BatchOptions Threads(size_t n) {
  QbsIndex::BatchOptions options;
  options.num_threads = n;
  return options;
}

TEST(QueryBatchTest, MatchesSequentialQueries) {
  Graph g = BarabasiAlbert(800, 3, 3);
  QbsOptions options;
  options.num_landmarks = 12;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto requests = ToRequests(SampleQueryPairs(g, 300, 5));
  const auto batch = index.QueryBatch(requests, Threads(8));
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(batch[i].spg, index.Query(requests[i].u, requests[i].v))
        << "i=" << i;
  }
}

TEST(QueryBatchTest, MatchesOracle) {
  Graph g = WattsStrogatz(500, 6, 0.2, 4);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto requests = ToRequests(SampleQueryPairs(g, 100, 6));
  const auto batch = index.QueryBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(batch[i].spg,
              SpgByDoubleBfs(g, requests[i].u, requests[i].v));
  }
}

TEST(QueryBatchTest, ThreadCountInvariant) {
  Graph g = BarabasiAlbert(400, 2, 7);
  QbsOptions options;
  options.num_landmarks = 8;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto requests = ToRequests(SampleQueryPairs(g, 150, 8));
  const auto one = index.QueryBatch(requests, Threads(1));
  const auto many = index.QueryBatch(requests, Threads(6));
  ASSERT_EQ(one.size(), many.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(SameAnswer(one[i], many[i])) << "i=" << i;
  }
}

TEST(QueryBatchTest, DistanceModeDropsEdges) {
  Graph g = BarabasiAlbert(400, 3, 11);
  QbsOptions options;
  options.num_landmarks = 8;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto pairs = SampleQueryPairs(g, 100, 12);
  const auto spg = index.QueryBatch(ToRequests(pairs, QueryMode::kSpg));
  const auto dist =
      index.QueryBatch(ToRequests(pairs, QueryMode::kDistance));
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(dist[i].distance(), spg[i].distance()) << "i=" << i;
    EXPECT_TRUE(dist[i].spg.edges.empty()) << "i=" << i;
  }
}

TEST(QueryBatchTest, BudgetSemantics) {
  Graph g = PathGraph(50);  // distances are exactly |u - v|
  QbsOptions options;
  options.num_landmarks = 4;
  QbsIndex index = QbsIndex::Build(g, options);
  std::vector<QueryRequest> requests;
  requests.emplace_back(0, 3, QueryMode::kSpg, /*budget_in=*/5);   // within
  requests.emplace_back(0, 5, QueryMode::kSpg, /*budget_in=*/5);   // exactly
  requests.emplace_back(0, 40, QueryMode::kSpg, /*budget_in=*/5);  // beyond
  const auto batch = index.QueryBatch(requests);

  EXPECT_EQ(batch[0].distance(), 3u);
  EXPECT_FALSE(batch[0].spg.edges.empty());
  EXPECT_EQ(batch[0].flags, 0u);

  EXPECT_EQ(batch[1].distance(), 5u);
  EXPECT_EQ(batch[1].flags, 0u);

  // Beyond-budget answers carry no edges; either the labels certified the
  // bound up front (pruned, distance unknown) or the search resolved it
  // (exact distance, flagged exceeded).
  EXPECT_TRUE(batch[2].spg.edges.empty());
  EXPECT_NE(batch[2].flags & (kResponseFlagBudgetPruned |
                              kResponseFlagBudgetExceeded),
            0u);
  if (batch[2].flags & kResponseFlagBudgetExceeded) {
    EXPECT_EQ(batch[2].distance(), 40u);
  } else {
    EXPECT_FALSE(batch[2].spg.Connected());  // distance unknown
  }
}

TEST(QueryBatchTest, EmptyAndSingleton) {
  Graph g = PathGraph(10);
  QbsOptions options;
  options.num_landmarks = 2;
  QbsIndex index = QbsIndex::Build(g, options);
  EXPECT_TRUE(index.QueryBatch(std::vector<QueryRequest>{}).empty());
  const auto single =
      index.QueryBatch(std::vector<QueryRequest>{QueryRequest(0, 9)});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].spg, SpgByDoubleBfs(g, 0, 9));
}

TEST(QueryBatchTest, ConcurrentBatchesOnOneIndex) {
  // Concurrent QueryBatch calls must not share searchers (the pool is
  // checkout/checkin under a lock).
  Graph g = BarabasiAlbert(600, 3, 9);
  QbsOptions options;
  options.num_landmarks = 10;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto requests = ToRequests(SampleQueryPairs(g, 200, 3));
  const auto expected = index.QueryBatch(requests, Threads(1));
  std::vector<std::vector<QueryResponse>> got(4);
  std::vector<std::thread> callers;
  for (size_t t = 0; t < got.size(); ++t) {
    callers.emplace_back(
        [&, t] { got[t] = index.QueryBatch(requests, Threads(3)); });
  }
  for (auto& c : callers) c.join();
  for (const auto& result : got) {
    ASSERT_EQ(result.size(), expected.size());
    for (size_t i = 0; i < result.size(); ++i) {
      ASSERT_TRUE(SameAnswer(result[i], expected[i])) << "i=" << i;
    }
  }
}

TEST(QueryBatchTest, DuplicateAndSelfPairs) {
  Graph g = CycleGraph(20);
  QbsOptions options;
  options.num_landmarks = 3;
  QbsIndex index = QbsIndex::Build(g, options);
  const std::vector<QueryRequest> requests{
      QueryRequest(0, 10), QueryRequest(0, 10), QueryRequest(5, 5),
      QueryRequest(10, 0)};
  const auto batch = index.QueryBatch(requests);
  EXPECT_TRUE(SameAnswer(batch[0], batch[1]));
  EXPECT_EQ(batch[2].distance(), 0u);
  EXPECT_EQ(batch[3].distance(), batch[0].distance());
}

// The deprecated pair-based overloads must keep answering identically to
// the QueryRequest form until they are removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(QueryBatchTest, DeprecatedPairOverloadsStillAgree) {
  Graph g = BarabasiAlbert(300, 3, 15);
  QbsOptions options;
  options.num_landmarks = 8;
  QbsIndex index = QbsIndex::Build(g, options);
  const auto sampled = SampleQueryPairs(g, 80, 21);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (const auto& p : sampled) pairs.emplace_back(p.u, p.v);
  const auto via_pairs = index.QueryBatch(pairs, size_t{4});
  const auto via_requests = index.QueryBatch(ToRequests(sampled));
  ASSERT_EQ(via_pairs.size(), via_requests.size());
  for (size_t i = 0; i < via_pairs.size(); ++i) {
    EXPECT_EQ(via_pairs[i], via_requests[i].spg) << "i=" << i;
  }
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace qbs

// QueryBatch searcher-pool exception safety: the RAII SearcherLease must
// return every checked-out GuidedSearcher to the pool even when a query
// throws mid-batch (e.g. an allocation failure surfacing through
// ParallelFor's inline worker). Before the guard, the unwound checkout
// silently shrank the pool, so every later batch paid full searcher
// reconstruction.

#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/qbs_index.h"
#include "gen/generators.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

QbsIndex BuildSmallIndex(Graph& g) {
  QbsOptions options;
  options.num_landmarks = 8;
  return QbsIndex::Build(g, options);
}

// A query that throws between checkout and checkin must not shrink the
// pool: the lease destructor runs during unwinding and checks everything
// back in.
TEST(QueryBatchThrowTest, ThrowingQueryReturnsSearchersToPool) {
  Graph g = BarabasiAlbert(300, 3, 9);
  QbsIndex index = BuildSmallIndex(g);

  // Populate the pool.
  std::vector<QueryRequest> requests;
  for (const auto& [u, v] : SampleQueryPairs(g, 32, 9)) {
    requests.emplace_back(u, v);
  }
  QbsIndex::BatchOptions four;
  four.num_threads = 4;
  index.QueryBatch(requests, four);
  const size_t pool_before = index.BatchSearcherPoolSize();
  ASSERT_GT(pool_before, 0u);

  bool thrown = false;
  try {
    QbsIndex::SearcherLease lease(index, 3);
    ASSERT_EQ(lease.size(), 3u);
    // Checked out: the pool shrank by what it could supply.
    EXPECT_LT(index.BatchSearcherPoolSize(), pool_before);
    // Run a real query on a leased searcher, then fail "mid-batch".
    lease[0].Query(requests[0].u, requests[0].v);
    throw std::runtime_error("query failed mid-batch");
  } catch (const std::runtime_error&) {
    thrown = true;
  }
  ASSERT_TRUE(thrown);
  // Everything the lease held is back (including the freshly built
  // searchers the pool could not supply).
  EXPECT_GE(index.BatchSearcherPoolSize(), pool_before);
}

// Steady state: repeated batches neither shrink nor unboundedly grow the
// pool, and results stay correct.
TEST(QueryBatchThrowTest, PoolStableAcrossBatches) {
  Graph g = BarabasiAlbert(400, 3, 10);
  QbsIndex index = BuildSmallIndex(g);
  std::vector<QueryRequest> requests;
  for (const auto& [u, v] : SampleQueryPairs(g, 64, 10)) {
    requests.emplace_back(u, v);
  }
  QbsIndex::BatchOptions four;
  four.num_threads = 4;
  const auto first = index.QueryBatch(requests, four);
  const size_t pool_after_first = index.BatchSearcherPoolSize();
  ASSERT_GT(pool_after_first, 0u);
  for (int round = 0; round < 3; ++round) {
    const auto batch = index.QueryBatch(requests, four);
    ASSERT_EQ(batch.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(SameAnswer(batch[i], first[i]))
          << "round " << round << " pair " << i;
    }
    EXPECT_EQ(index.BatchSearcherPoolSize(), pool_after_first)
        << "round " << round;
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(index.Query(requests[i].u, requests[i].v), first[i].spg);
  }
}

}  // namespace
}  // namespace qbs

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/components.h"

namespace qbs {
namespace {

TEST(ComponentsTest, SingleComponent) {
  Graph g = PathGraph(5);
  const auto info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 1u);
  EXPECT_EQ(info.sizes[0], 5u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ComponentsTest, MultipleComponents) {
  Graph g = Graph::FromEdges(7, {{0, 1}, {1, 2}, {3, 4}});  // 5, 6 isolated
  const auto info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 4u);
  EXPECT_FALSE(IsConnected(g));
  EXPECT_EQ(info.sizes[info.largest], 3u);
}

TEST(ComponentsTest, ComponentIdsConsistent) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {2, 3}, {4, 5}});
  const auto info = ConnectedComponents(g);
  EXPECT_EQ(info.component[0], info.component[1]);
  EXPECT_EQ(info.component[2], info.component[3]);
  EXPECT_NE(info.component[0], info.component[2]);
}

TEST(LargestComponentTest, ExtractsAndRelabels) {
  Graph g = Graph::FromEdges(8, {{0, 1}, {1, 2}, {2, 0}, {5, 6}});
  const auto sub = LargestComponent(g);
  EXPECT_EQ(sub.graph.NumVertices(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 3u);
  EXPECT_TRUE(IsConnected(sub.graph));
  // Mapping points back to the original triangle.
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_LT(sub.to_original[v], 3u);
  }
}

TEST(LargestComponentTest, PreservesStructure) {
  // Two components: a 4-cycle and a 3-path; largest is the cycle.
  Graph g = Graph::FromEdges(7, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}});
  const auto sub = LargestComponent(g);
  EXPECT_EQ(sub.graph.NumVertices(), 4u);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(sub.graph.Degree(v), 2u);
  }
}

TEST(LargestComponentTest, EmptyGraph) {
  Graph g;
  const auto sub = LargestComponent(g);
  EXPECT_EQ(sub.graph.NumVertices(), 0u);
}

TEST(LargestComponentTest, ConnectedGraphUnchanged) {
  Graph g = BarabasiAlbert(100, 2, 9);
  const auto sub = LargestComponent(g);
  EXPECT_EQ(sub.graph.NumVertices(), g.NumVertices());
  EXPECT_EQ(sub.graph.NumEdges(), g.NumEdges());
}

}  // namespace
}  // namespace qbs

// RetryPolicy / RetryBackoff determinism and shape: the backoff schedule
// is a pure function of (policy, retry index) — same seed, same schedule,
// every run — honors the server's retry_after hint as a floor, and stays
// inside [0, max_backoff * (1 + jitter)].

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"

namespace qbs::server {
namespace {

std::vector<uint32_t> Schedule(const RetryPolicy& policy, uint32_t retries,
                               uint32_t hint = 0) {
  const RetryBackoff backoff(policy);
  std::vector<uint32_t> delays;
  for (uint32_t i = 0; i < retries; ++i) {
    delays.push_back(backoff.DelayMs(i, hint));
  }
  return delays;
}

TEST(RetryBackoffTest, SameSeedSameSchedule) {
  RetryPolicy policy;
  policy.seed = 0xDEADBEEFull;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 1000;
  policy.jitter = 0.3;
  EXPECT_EQ(Schedule(policy, 16), Schedule(policy, 16));

  // And a fresh RetryBackoff built from an equal policy replays it too
  // (no hidden state anywhere).
  RetryPolicy copy = policy;
  EXPECT_EQ(Schedule(policy, 16), Schedule(copy, 16));
}

TEST(RetryBackoffTest, DifferentSeedsProduceDifferentJitter) {
  RetryPolicy a;
  a.seed = 1;
  a.jitter = 0.5;
  RetryPolicy b = a;
  b.seed = 2;
  EXPECT_NE(Schedule(a, 16), Schedule(b, 16));
}

TEST(RetryBackoffTest, GrowsExponentiallyWithinBounds) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 200;
  policy.jitter = 0.0;  // exact growth, no jitter
  const RetryBackoff backoff(policy);
  EXPECT_EQ(backoff.DelayMs(0), 10u);
  EXPECT_EQ(backoff.DelayMs(1), 20u);
  EXPECT_EQ(backoff.DelayMs(2), 40u);
  EXPECT_EQ(backoff.DelayMs(3), 80u);
  EXPECT_EQ(backoff.DelayMs(4), 160u);
  EXPECT_EQ(backoff.DelayMs(5), 200u);   // capped
  EXPECT_EQ(backoff.DelayMs(20), 200u);  // stays capped, no overflow
}

TEST(RetryBackoffTest, JitterStaysWithinAmplitude) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100;
  policy.multiplier = 1.0;  // constant base isolates the jitter factor
  policy.max_backoff_ms = 100;
  policy.jitter = 0.2;
  const RetryBackoff backoff(policy);
  bool varied = false;
  for (uint32_t i = 0; i < 64; ++i) {
    const uint32_t d = backoff.DelayMs(i);
    EXPECT_GE(d, 80u);
    EXPECT_LE(d, 120u);
    if (d != 100u) varied = true;
  }
  EXPECT_TRUE(varied);  // jitter actually jitters
}

TEST(RetryBackoffTest, ServerHintActsAsAFloor) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.jitter = 0.0;
  const RetryBackoff backoff(policy);
  // Early retries would sleep less than the server asked: the hint wins.
  EXPECT_EQ(backoff.DelayMs(0, 500), 500u);
  // Once the schedule passes the hint, the schedule wins.
  EXPECT_EQ(backoff.DelayMs(8, 500), 1000u);
}

TEST(RetryBackoffTest, ZeroJitterScheduleIsHintMonotone) {
  RetryPolicy policy;
  policy.base_backoff_ms = 5;
  policy.jitter = 0.0;
  const RetryBackoff backoff(policy);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < 12; ++i) {
    const uint32_t d = backoff.DelayMs(i);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace qbs::server

#!/usr/bin/env python3
"""Compile-failure harness for the util/sync.h thread-safety annotations.

The point of the annotations is that unguarded access is a BUILD error, so
the test for them must assert that specific snippets fail to compile — a
passing unit test can't prove that. Each *.fail.cc snippet must (a) fail
`clang -fsyntax-only -Werror=thread-safety-analysis` and (b) produce
diagnostics matching every `// EXPECT-ERROR: <regex>` line it declares, so
a snippet can't "fail" for an unrelated reason (typo, missing include) and
silently stop guarding anything. Each *.ok.cc snippet must compile clean,
pinning down that the annotations don't reject the sanctioned patterns.

Usage: check_compile_fail.py <compiler> <src_include_dir> <snippet_dir>

Only meaningful under clang (gcc ignores the annotations); the CMake
registration gates on CMAKE_CXX_COMPILER_ID.
"""

import pathlib
import re
import subprocess
import sys


def run_snippet(compiler, include_dir, snippet):
    cmd = [
        compiler,
        "-std=c++20",
        "-fsyntax-only",
        "-I",
        include_dir,
        "-Wthread-safety",
        "-Werror=thread-safety-analysis",
        str(snippet),
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)

    problems = []
    if snippet.name.endswith(".fail.cc"):
        expected = re.findall(r"//\s*EXPECT-ERROR:\s*(.+)", snippet.read_text())
        if not expected:
            problems.append(f"{snippet.name}: no EXPECT-ERROR lines declared")
        if proc.returncode == 0:
            problems.append(
                f"{snippet.name}: compiled CLEAN but must fail "
                "(thread-safety annotation lost its teeth)"
            )
        else:
            for pattern in expected:
                if not re.search(pattern.strip(), proc.stderr):
                    problems.append(
                        f"{snippet.name}: diagnostics did not match "
                        f"/{pattern.strip()}/\n--- stderr ---\n{proc.stderr}"
                    )
    else:
        if proc.returncode != 0:
            problems.append(
                f"{snippet.name}: must compile clean but failed:\n"
                f"--- stderr ---\n{proc.stderr}"
            )
    return problems


def main():
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    compiler, include_dir, snippet_dir = sys.argv[1:4]
    snippets = sorted(
        p
        for p in pathlib.Path(snippet_dir).glob("*.cc")
        if p.name.endswith(".fail.cc") or p.name.endswith(".ok.cc")
    )
    if not snippets:
        print(f"no *.fail.cc / *.ok.cc snippets in {snippet_dir}", file=sys.stderr)
        return 2

    failures = []
    for snippet in snippets:
        failures.extend(run_snippet(compiler, include_dir, snippet))

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\n{len(failures)} compile-fail check(s) failed", file=sys.stderr)
        return 1
    print(f"{len(snippets)} snippets behaved as declared")
    return 0


if __name__ == "__main__":
    sys.exit(main())

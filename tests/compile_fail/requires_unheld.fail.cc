// Calling a QBS_REQUIRES function without the capability must not compile.
// EXPECT-ERROR: calling function 'GetLocked' requires holding mutex 'mu_'

#include "util/sync.h"

namespace {

class Counter {
 public:
  int GetLocked() const QBS_REQUIRES(mu_) { return value_; }

  int Get() const {
    return GetLocked();  // lock not held
  }

 private:
  mutable qbs::Mutex mu_;
  int value_ QBS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.Get();
}

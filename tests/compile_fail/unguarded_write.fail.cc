// Writing a guarded field without holding its mutex must not compile.
// EXPECT-ERROR: writing variable 'value_' requires holding mutex 'mu_'

#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // no lock
  }

 private:
  qbs::Mutex mu_;
  int value_ QBS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}

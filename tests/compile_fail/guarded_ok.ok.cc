// Sanctioned patterns must compile clean under -Werror=thread-safety-analysis:
// guarded access under MutexLock, shared reads under ReaderLock, a REQUIRES
// helper called with the lock held, and a CondVar wait loop.

#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    qbs::MutexLock lock(mu_);
    ++value_;
    cv_.NotifyAll();
  }

  void WaitForPositive() {
    qbs::MutexLock lock(mu_);
    while (value_ <= 0) cv_.Wait(mu_);
  }

  int GetLocked() const QBS_REQUIRES(mu_) { return value_; }

  int Get() const {
    qbs::MutexLock lock(mu_);
    return GetLocked();
  }

 private:
  mutable qbs::Mutex mu_;
  qbs::CondVar cv_;
  int value_ QBS_GUARDED_BY(mu_) = 0;
};

class Registry {
 public:
  int Read() const {
    qbs::ReaderLock lock(mu_);
    return size_;
  }

  void Write(int size) {
    qbs::WriterLock lock(mu_);
    size_ = size;
  }

 private:
  mutable qbs::SharedMutex mu_;
  int size_ QBS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  Registry r;
  r.Write(c.Get());
  return r.Read();
}

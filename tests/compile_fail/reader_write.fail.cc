// A ReaderLock grants only the shared capability: writing through it must
// not compile (this is the static half of the reader/writer protocol the
// server's index_mu_ relies on).
// EXPECT-ERROR: 'size_' requires holding mutex 'mu_' exclusively

#include "util/sync.h"

namespace {

class Registry {
 public:
  void Bump() {
    qbs::ReaderLock lock(mu_);
    ++size_;  // shared capability only
  }

 private:
  qbs::SharedMutex mu_;
  int size_ QBS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Registry r;
  r.Bump();
  return 0;
}

#include <gtest/gtest.h>

#include "baselines/bfs_oracle.h"
#include "baselines/parent_ppl.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/components.h"
#include "tests/test_util.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

TEST(ParentPplTest, Figure3Queries) {
  Graph g = testing::Figure3Graph();
  auto index = ParentPplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(index->QueryDistance(2, 6), 4u);
  EXPECT_EQ(index->QuerySpg(2, 6), SpgByDoubleBfs(g, 2, 6));
}

TEST(ParentPplTest, ParentsAreOneStepCloser) {
  Graph g = BarabasiAlbert(150, 2, 13);
  auto index = ParentPplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const ParentPplEntry& e : index->Label(v)) {
      if (e.dist == 0) {
        EXPECT_TRUE(e.parents.empty());
        continue;
      }
      const VertexId r = index->LandmarkVertex(e.rank);
      const auto dist = BfsDistances(g, r);
      EXPECT_FALSE(e.parents.empty());
      for (VertexId w : e.parents) {
        EXPECT_TRUE(g.HasEdge(v, w));
        EXPECT_EQ(dist[w], e.dist - 1);
      }
    }
  }
}

TEST(ParentPplTest, ParentSetsAreComplete) {
  // Every neighbour one step closer to the landmark must be recorded —
  // this is what distinguishes the paper's all-parents variant from PLL's
  // single parent, and what pruned-depth-only derivation would get wrong.
  Graph g = WattsStrogatz(120, 4, 0.3, 14);
  auto index = ParentPplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const ParentPplEntry& e : index->Label(v)) {
      if (e.dist == 0) continue;
      const auto dist = BfsDistances(g, index->LandmarkVertex(e.rank));
      size_t expected = 0;
      for (VertexId w : g.Neighbors(v)) {
        if (dist[w] == e.dist - 1) ++expected;
      }
      EXPECT_EQ(e.parents.size(), expected) << "v=" << v;
    }
  }
}

TEST(ParentPplTest, LargerThanPpl) {
  Graph g = BarabasiAlbert(200, 3, 15);
  auto ppl = PplIndex::Build(g);
  auto parent = ParentPplIndex::Build(g);
  ASSERT_TRUE(ppl.has_value());
  ASSERT_TRUE(parent.has_value());
  EXPECT_EQ(parent->NumEntries(), ppl->NumEntries());
  EXPECT_GT(parent->SizeBytes(), ppl->SizeBytes());
}

TEST(ParentPplTest, Budgets) {
  Graph g = BarabasiAlbert(1000, 3, 16);
  PplBuildOptions options;
  options.time_budget_seconds = 0.0;
  BuildStatus status;
  EXPECT_FALSE(ParentPplIndex::Build(g, options, &status).has_value());
  EXPECT_EQ(status, BuildStatus::kTimeBudgetExceeded);

  options = {};
  options.max_label_entries = 50;
  EXPECT_FALSE(ParentPplIndex::Build(g, options, &status).has_value());
  EXPECT_EQ(status, BuildStatus::kMemoryBudgetExceeded);
}

struct SweepParam {
  int family;
  uint64_t seed;
};

class ParentPplOracleSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ParentPplOracleSweep, MatchesOracle) {
  const auto& p = GetParam();
  Graph g;
  switch (p.family) {
    case 0:
      g = BarabasiAlbert(220, 2, p.seed);
      break;
    case 1:
      g = LargestComponent(ErdosRenyi(220, 400, p.seed)).graph;
      break;
    case 2:
      g = WattsStrogatz(220, 4, 0.25, p.seed);
      break;
    default:
      g = GridGraph(11, 13);
      break;
  }
  auto index = ParentPplIndex::Build(g);
  ASSERT_TRUE(index.has_value());
  const auto pairs = SampleQueryPairs(g, 50, p.seed + 77);
  for (const auto& [u, v] : pairs) {
    ASSERT_EQ(index->QuerySpg(u, v), SpgByDoubleBfs(g, u, v))
        << "u=" << u << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParentPplOracleSweep,
    ::testing::Values(SweepParam{0, 1}, SweepParam{0, 2}, SweepParam{1, 3},
                      SweepParam{1, 4}, SweepParam{2, 5}, SweepParam{2, 6},
                      SweepParam{3, 7}));

}  // namespace
}  // namespace qbs

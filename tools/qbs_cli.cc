// qbs — command-line front end for the library.
//
//   qbs generate <family> <out.edges> [args...]   synthesize a graph
//   qbs stats    <graph>                          print graph statistics
//   qbs build    <graph> <out.qbs> [opts]         build & save an index
//   qbs query    <graph> <index.qbs|-> [pairs | --requests F] [opts]
//   qbs serve    <graph> <index.qbs|-> [opts]     long-lived query daemon
//   qbs load     <graph> <host> <port> [opts]     drive a daemon with load
//   qbs update   <host> <port> [edits | --file F] send edge edits to a daemon
//   qbs datasets                                  list the dataset registry
//
// <graph> is an edge-list path (".gz" decompressed on the fly) or
// "dataset:<name>" — a real dataset resolved through the binary cache
// under $QBS_DATA_DIR (default data/; populate with
// tools/fetch_datasets.py), falling back to the Table 1 stand-in when no
// data is present.
//
// generate families:
//   ba <n> <m> [seed]           Barabási–Albert
//   er <n> <edges> [seed]       Erdős–Rényi G(n, m)
//   ws <n> <k> <beta> [seed]    Watts–Strogatz
//   rmat <scale> <ef> [seed]    R-MAT (2^scale vertices)
//   dataset <ABBREV> [scale]    Table 1 stand-in (DO, DB, ..., CW)
//
// build options: --landmarks K (default 20), --threads T (default all),
//                --strategy degree|random|deg-weighted|closeness,
//                --no-delta
//
// query: pass '-' as the index path to build one in memory on the fly.
// Pairs come either positionally (u v u v ...) or from --requests FILE
// ('-' = stdin; lines "u v [spg|distance] [budget]", '#' comments).
// --format human|tsv|jsonl selects output. Exit codes: 0 = all queries
// answered, 1 = runtime failure (bad graph/index/request input),
// 2 = usage error.
//
// serve/load quickstart (see docs/REPRODUCING.md for the full runbook):
//   qbs serve graph.edges index.qbs --port 7471 &
//   qbs load  graph.edges 127.0.0.1 7471 --queries 20000 --shutdown

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/qbs_index.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/components.h"
#include "graph/dataset_io.h"
#include "graph/edge_list_io.h"
#include "server/client.h"
#include "server/latency_histogram.h"
#include "server/server.h"
#include "util/timer.h"
#include "workload/dataset_registry.h"
#include "workload/datasets.h"
#include "workload/query_workload.h"
#include "workload/synthetic_workload.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: qbs generate <family> <out.edges> [args...]\n"
      "       qbs stats <graph>\n"
      "       qbs build <graph> <out.qbs> [--landmarks K] "
      "[--threads T] [--strategy S] [--no-delta]\n"
      "       qbs query <graph> <index.qbs|-> [u v ...] "
      "[--requests FILE|-] [--mode spg|distance] [--budget N]\n"
      "                 [--format human|tsv|jsonl] [--threads T]\n"
      "       qbs serve <graph> <index.qbs|-> [--host H] [--port P] "
      "[--max-inflight N] [--max-queue N]\n"
      "                 [--max-conns N] [--cache-mb MB] "
      "[--no-remote-shutdown] [--updatable]\n"
      "                 [--read-timeout-ms MS] [--idle-timeout-ms MS] "
      "[--degrade-after-inflight N]\n"
      "       qbs load <graph> <host> <port> [--queries N] [--pairs N] "
      "[--zipf S] [--seed S] [--conns C]\n"
      "                 [--mode spg|distance] [--budget N] [--rate QPS] "
      "[--burst F] [--deadline-ms MS]\n"
      "                 [--no-cache] [--shutdown]\n"
      "       qbs update <host> <port> [--insert U V]... [--delete U V]... "
      "[--file F|-] [--defer]\n"
      "       qbs datasets\n"
      "<graph>: an edge-list path (.gz ok) or dataset:<name> "
      "(see `qbs datasets`)\n");
  return 2;
}

// Resolves a <graph> argument: "dataset:<name>" goes through the real-
// dataset registry (cache -> raw -> stand-in fallback), anything else is
// an edge-list path (gz-aware).
std::optional<qbs::Graph> LoadGraphArg(const std::string& arg) {
  constexpr const char kPrefix[] = "dataset:";
  if (arg.rfind(kPrefix, 0) == 0) {
    auto resolved = qbs::ResolveDataset(arg.substr(sizeof(kPrefix) - 1),
                                        qbs::DefaultDataDir());
    if (!resolved.has_value()) return std::nullopt;
    std::fprintf(stderr, "dataset %s: %u vertices, %llu edges (%s)\n",
                 resolved->name.c_str(), resolved->graph.NumVertices(),
                 static_cast<unsigned long long>(resolved->graph.NumEdges()),
                 resolved->source.c_str());
    return std::move(resolved->graph);
  }
  return qbs::ReadEdgeListAuto(arg);
}

int Datasets() {
  const std::string data_dir = qbs::DefaultDataDir();
  std::printf("data dir: %s (override with QBS_DATA_DIR)\n", data_dir.c_str());
  std::printf("%-12s %-6s %-9s %-11s %-11s %s\n", "name", "Tbl.1", "status",
              "host|V|", "host|E|", "file");
  for (const auto& spec : qbs::RealDatasets()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    const bool cached = fs::exists(qbs::CachePathFor(spec, data_dir), ec);
    const bool raw = fs::exists(qbs::RawPathFor(spec, data_dir), ec);
    const char* status = cached ? "cached"
                         : raw  ? "raw"
                         : spec.url.empty() ? "manual"
                                            : "absent";
    std::printf("%-12s %-6s %-9s %-11llu %-11llu %s\n", spec.name.c_str(),
                spec.abbrev.empty() ? "-" : spec.abbrev.c_str(), status,
                static_cast<unsigned long long>(spec.host_vertices),
                static_cast<unsigned long long>(spec.host_edges),
                spec.file.c_str());
  }
  std::printf(
      "\nfetch:   tools/fetch_datasets.py --only <name>   (downloads + "
      "sha256)\nconvert: automatic on first dataset:<name> use (binary "
      "cache under %s/cache)\n",
      data_dir.c_str());
  return 0;
}

uint64_t ArgU64(const char* s) { return std::strtoull(s, nullptr, 10); }

int Generate(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string family = argv[0];
  const std::string out = argv[1];
  qbs::Graph g;
  if (family == "ba" && argc >= 4) {
    g = qbs::BarabasiAlbert(static_cast<qbs::VertexId>(ArgU64(argv[2])),
                            static_cast<uint32_t>(ArgU64(argv[3])),
                            argc > 4 ? ArgU64(argv[4]) : 1);
  } else if (family == "er" && argc >= 4) {
    g = qbs::LargestComponent(
            qbs::ErdosRenyi(static_cast<qbs::VertexId>(ArgU64(argv[2])),
                            ArgU64(argv[3]), argc > 4 ? ArgU64(argv[4]) : 1))
            .graph;
  } else if (family == "ws" && argc >= 5) {
    g = qbs::WattsStrogatz(static_cast<qbs::VertexId>(ArgU64(argv[2])),
                           static_cast<uint32_t>(ArgU64(argv[3])),
                           std::atof(argv[4]),
                           argc > 5 ? ArgU64(argv[5]) : 1);
  } else if (family == "rmat" && argc >= 4) {
    g = qbs::LargestComponent(
            qbs::RMat(static_cast<uint32_t>(ArgU64(argv[2])),
                      static_cast<uint32_t>(ArgU64(argv[3])), 0.57, 0.19,
                      0.19, argc > 4 ? ArgU64(argv[4]) : 1))
            .graph;
  } else if (family == "dataset" && argc >= 3) {
    g = qbs::MakeDataset(qbs::DatasetByAbbrev(argv[2]),
                         argc > 3 ? std::atof(argv[3]) : 1.0);
  } else {
    return Usage();
  }
  if (!qbs::WriteEdgeList(g, out)) return 1;
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              g.NumVertices(), static_cast<unsigned long long>(g.NumEdges()));
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto g = LoadGraphArg(argv[0]);
  if (!g.has_value()) return 1;
  const auto info = qbs::ConnectedComponents(*g);
  std::printf("vertices:        %u\n", g->NumVertices());
  std::printf("edges:           %llu\n",
              static_cast<unsigned long long>(g->NumEdges()));
  std::printf("max degree:      %u\n", g->MaxDegree());
  std::printf("avg degree:      %.2f\n", g->AverageDegree());
  std::printf("components:      %u (largest %u)\n", info.num_components,
              info.num_components == 0 ? 0 : info.sizes[info.largest]);
  std::printf("adjacency bytes: %llu\n",
              static_cast<unsigned long long>(g->SizeBytes()));
  const auto pairs = qbs::SampleQueryPairs(*g, 500, 1);
  const auto dist = qbs::ComputeDistanceDistribution(*g, pairs);
  std::printf("avg distance:    %.2f (over 500 sampled pairs)\n",
              dist.Mean());
  return 0;
}

bool ParseBuildOptions(int argc, char** argv, qbs::QbsOptions* options) {
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--landmarks" && i + 1 < argc) {
      options->num_landmarks = static_cast<uint32_t>(ArgU64(argv[++i]));
    } else if (a == "--threads" && i + 1 < argc) {
      options->num_threads = static_cast<size_t>(ArgU64(argv[++i]));
    } else if (a == "--no-delta") {
      options->precompute_delta = false;
    } else if (a == "--strategy" && i + 1 < argc) {
      const std::string s = argv[++i];
      if (s == "degree") {
        options->landmark_strategy = qbs::LandmarkStrategy::kHighestDegree;
      } else if (s == "random") {
        options->landmark_strategy = qbs::LandmarkStrategy::kRandom;
      } else if (s == "deg-weighted") {
        options->landmark_strategy =
            qbs::LandmarkStrategy::kDegreeWeightedRandom;
      } else if (s == "closeness") {
        options->landmark_strategy = qbs::LandmarkStrategy::kApproxCloseness;
      } else {
        std::fprintf(stderr, "unknown strategy %s\n", s.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

int Build(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto g = LoadGraphArg(argv[0]);
  if (!g.has_value()) return 1;
  qbs::QbsOptions options;
  options.num_threads = 0;
  if (!ParseBuildOptions(argc - 2, argv + 2, &options)) return 2;
  qbs::WallTimer timer;
  qbs::QbsIndex index = qbs::QbsIndex::Build(*g, options);
  std::printf("built |R|=%zu (%s) in %.3fs (labelling %.3fs, delta %.3fs)\n",
              index.landmarks().size(),
              qbs::LandmarkStrategyName(options.landmark_strategy),
              timer.ElapsedSeconds(), index.timings().labeling_seconds,
              index.timings().delta_seconds);
  std::printf("size(L)=%llu bytes, size(Delta)=%llu bytes\n",
              static_cast<unsigned long long>(index.LabelingSizeBytes()),
              static_cast<unsigned long long>(index.DeltaSizeBytes()));
  if (!index.Save(argv[1])) return 1;
  std::printf("saved %s\n", argv[1]);
  return 0;
}

// Loads-or-builds the index for serving/querying ('-' = build in memory).
std::optional<qbs::QbsIndex> LoadOrBuildIndex(const qbs::Graph& g,
                                              const char* index_arg) {
  qbs::QbsOptions options;
  options.num_threads = 0;
  if (std::strcmp(index_arg, "-") == 0) {
    return qbs::QbsIndex::Build(g, options);
  }
  return qbs::QbsIndex::LoadFromFile(g, index_arg, options);
}

bool ParseMode(const std::string& s, qbs::QueryMode* mode) {
  if (s == "spg") {
    *mode = qbs::QueryMode::kSpg;
  } else if (s == "distance" || s == "d") {
    *mode = qbs::QueryMode::kDistance;
  } else {
    return false;
  }
  return true;
}

// One request per line: "u v [spg|distance] [budget]". Blank lines and
// '#' comments are skipped. Defaults come from the command line.
bool ParseRequestLine(const std::string& line,
                      const qbs::QueryRequest& defaults,
                      qbs::QueryRequest* out, std::string* error) {
  std::istringstream in(line);
  std::string u_tok, v_tok, mode_tok, budget_tok;
  if (!(in >> u_tok >> v_tok)) {
    *error = "expected 'u v [spg|distance] [budget]'";
    return false;
  }
  *out = defaults;
  out->u = static_cast<qbs::VertexId>(ArgU64(u_tok.c_str()));
  out->v = static_cast<qbs::VertexId>(ArgU64(v_tok.c_str()));
  if (in >> mode_tok) {
    if (!ParseMode(mode_tok, &out->mode)) {
      *error = "unknown mode '" + mode_tok + "'";
      return false;
    }
  }
  if (in >> budget_tok) {
    out->budget = static_cast<uint32_t>(ArgU64(budget_tok.c_str()));
  }
  return true;
}

enum class QueryFormat { kHuman, kTsv, kJsonl };

void PrintTsvHeader() {
  std::printf("# u\tv\tmode\tbudget\tdistance\tflags\tedge_scans\tedges\n");
}

void PrintResponseTsv(const qbs::QueryRequest& request,
                      const qbs::QueryResponse& response) {
  std::printf("%u\t%u\t%s\t%u\t%lld\t%u\t%llu\t", request.u, request.v,
              request.mode == qbs::QueryMode::kDistance ? "distance" : "spg",
              request.budget,
              response.spg.Connected()
                  ? static_cast<long long>(response.spg.distance)
                  : -1LL,
              response.flags,
              static_cast<unsigned long long>(
                  response.stats.TotalEdgesScanned()));
  if (response.spg.edges.empty()) {
    std::printf("-");
  } else {
    for (size_t i = 0; i < response.spg.edges.size(); ++i) {
      std::printf("%s%u-%u", i == 0 ? "" : ";", response.spg.edges[i].u,
                  response.spg.edges[i].v);
    }
  }
  std::printf("\n");
}

void PrintResponseJsonl(const qbs::QueryRequest& request,
                        const qbs::QueryResponse& response) {
  std::printf("{\"u\":%u,\"v\":%u,\"mode\":\"%s\",\"budget\":%u,", request.u,
              request.v,
              request.mode == qbs::QueryMode::kDistance ? "distance" : "spg",
              request.budget);
  if (response.spg.Connected()) {
    std::printf("\"distance\":%u,", response.spg.distance);
  } else {
    std::printf("\"distance\":null,");
  }
  std::printf("\"flags\":%u,\"cache_hit\":%s,\"edge_scans\":%llu,\"edges\":[",
              response.flags, response.cache_hit ? "true" : "false",
              static_cast<unsigned long long>(
                  response.stats.TotalEdgesScanned()));
  for (size_t i = 0; i < response.spg.edges.size(); ++i) {
    std::printf("%s[%u,%u]", i == 0 ? "" : ",", response.spg.edges[i].u,
                response.spg.edges[i].v);
  }
  std::printf("]}\n");
}

void PrintResponseHuman(const qbs::QueryRequest& request,
                        const qbs::QueryResponse& response, double ms) {
  const auto u = request.u;
  const auto v = request.v;
  if (response.flags & qbs::kResponseFlagBudgetPruned) {
    std::printf("SPG(%u,%u): beyond budget %u (label-certified, %.4f ms)\n",
                u, v, request.budget, ms);
    return;
  }
  if (!response.spg.Connected()) {
    std::printf("SPG(%u,%u): disconnected (%.4f ms)\n", u, v, ms);
    return;
  }
  const auto& spg = response.spg;
  if (request.mode == qbs::QueryMode::kDistance ||
      (response.flags & qbs::kResponseFlagBudgetExceeded) != 0) {
    std::printf("SPG(%u,%u): d=%u (%.4f ms, %llu edge scans)\n", u, v,
                spg.distance, ms,
                static_cast<unsigned long long>(
                    response.stats.TotalEdgesScanned()));
    return;
  }
  std::printf("SPG(%u,%u): d=%u, %zu vertices, %zu edges, %llu paths "
              "(%.4f ms, %llu edge scans)\n",
              u, v, spg.distance, spg.Vertices().size(), spg.edges.size(),
              static_cast<unsigned long long>(spg.CountShortestPaths()), ms,
              static_cast<unsigned long long>(
                  response.stats.TotalEdgesScanned()));
  for (const qbs::Edge& e : spg.edges) {
    std::printf("  %u %u\n", e.u, e.v);
  }
}

int Query(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* graph_arg = argv[0];
  const char* index_arg = argv[1];

  qbs::QueryRequest defaults;
  QueryFormat format = QueryFormat::kHuman;
  std::string requests_path;
  size_t threads = 0;
  std::vector<qbs::VertexId> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--requests" && i + 1 < argc) {
      requests_path = argv[++i];
    } else if (a == "--mode" && i + 1 < argc) {
      if (!ParseMode(argv[++i], &defaults.mode)) {
        std::fprintf(stderr, "unknown mode %s\n", argv[i]);
        return 2;
      }
    } else if (a == "--budget" && i + 1 < argc) {
      defaults.budget = static_cast<uint32_t>(ArgU64(argv[++i]));
    } else if (a == "--threads" && i + 1 < argc) {
      threads = static_cast<size_t>(ArgU64(argv[++i]));
    } else if (a == "--format" && i + 1 < argc) {
      const std::string f = argv[++i];
      if (f == "human") {
        format = QueryFormat::kHuman;
      } else if (f == "tsv") {
        format = QueryFormat::kTsv;
      } else if (f == "jsonl") {
        format = QueryFormat::kJsonl;
      } else {
        std::fprintf(stderr, "unknown format %s\n", f.c_str());
        return 2;
      }
    } else if (!a.empty() && a[0] == '-' && a != "-") {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    } else {
      positional.push_back(static_cast<qbs::VertexId>(ArgU64(argv[i])));
    }
  }
  if (!requests_path.empty() && !positional.empty()) {
    std::fprintf(stderr,
                 "pass pairs positionally or via --requests, not both\n");
    return 2;
  }
  if (requests_path.empty() &&
      (positional.empty() || positional.size() % 2 != 0)) {
    return Usage();
  }

  auto g = LoadGraphArg(graph_arg);
  if (!g.has_value()) return 1;

  // Assemble the request batch before touching the index, so input errors
  // fail fast (exit 1) without paying for a build.
  std::vector<qbs::QueryRequest> requests;
  if (!requests_path.empty()) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (requests_path != "-") {
      file.open(requests_path);
      if (!file) {
        std::fprintf(stderr, "cannot read %s\n", requests_path.c_str());
        return 1;
      }
      in = &file;
    }
    std::string line;
    size_t line_no = 0;
    while (std::getline(*in, line)) {
      ++line_no;
      const size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      qbs::QueryRequest request;
      std::string error;
      if (!ParseRequestLine(line, defaults, &request, &error)) {
        std::fprintf(stderr, "%s:%zu: %s\n", requests_path.c_str(), line_no,
                     error.c_str());
        return 1;
      }
      requests.push_back(request);
    }
  } else {
    for (size_t i = 0; i + 1 < positional.size(); i += 2) {
      qbs::QueryRequest request = defaults;
      request.u = positional[i];
      request.v = positional[i + 1];
      requests.push_back(request);
    }
  }
  for (const auto& request : requests) {
    if (request.u >= g->NumVertices() || request.v >= g->NumVertices()) {
      std::fprintf(stderr, "vertex out of range: %u %u (|V| = %u)\n",
                   request.u, request.v, g->NumVertices());
      return 1;
    }
  }

  auto index = LoadOrBuildIndex(*g, index_arg);
  if (!index.has_value()) return 1;

  if (format == QueryFormat::kHuman) {
    // Sequential so each answer carries its own wall time.
    for (const auto& request : requests) {
      qbs::WallTimer timer;
      const qbs::QueryResponse response = index->Query(request);
      PrintResponseHuman(request, response, timer.ElapsedMillis());
    }
    return 0;
  }

  qbs::QbsIndex::BatchOptions batch_options;
  batch_options.num_threads = threads;
  const std::vector<qbs::QueryResponse> responses =
      index->QueryBatch(requests, batch_options);
  if (format == QueryFormat::kTsv) PrintTsvHeader();
  for (size_t i = 0; i < responses.size(); ++i) {
    if (format == QueryFormat::kTsv) {
      PrintResponseTsv(requests[i], responses[i]);
    } else {
      PrintResponseJsonl(requests[i], responses[i]);
    }
  }
  return 0;
}

std::atomic<int> g_signal{0};

void OnSignal(int sig) { g_signal.store(sig); }

int Serve(int argc, char** argv) {
  if (argc < 2) return Usage();
  qbs::server::ServerOptions options;
  bool updatable = false;
  for (int i = 2; i < argc; ++i) {
    // Accept underscore spellings too (--read_timeout_ms et al.).
    std::string a = argv[i];
    std::replace(a.begin(), a.end(), '_', '-');
    if (a == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (a == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(ArgU64(argv[++i]));
    } else if (a == "--max-inflight" && i + 1 < argc) {
      options.max_inflight = static_cast<size_t>(ArgU64(argv[++i]));
    } else if (a == "--max-queue" && i + 1 < argc) {
      options.max_queue = static_cast<size_t>(ArgU64(argv[++i]));
    } else if (a == "--max-conns" && i + 1 < argc) {
      options.max_connections = static_cast<size_t>(ArgU64(argv[++i]));
    } else if (a == "--cache-mb" && i + 1 < argc) {
      options.cache_bytes = static_cast<size_t>(ArgU64(argv[++i])) << 20;
    } else if (a == "--no-remote-shutdown") {
      options.allow_remote_shutdown = false;
    } else if (a == "--updatable") {
      updatable = true;
    } else if (a == "--read-timeout-ms" && i + 1 < argc) {
      options.read_timeout_ms = static_cast<uint32_t>(ArgU64(argv[++i]));
    } else if (a == "--idle-timeout-ms" && i + 1 < argc) {
      options.idle_timeout_ms = static_cast<uint32_t>(ArgU64(argv[++i]));
    } else if (a == "--write-timeout-ms" && i + 1 < argc) {
      options.write_timeout_ms = static_cast<uint32_t>(ArgU64(argv[++i]));
    } else if (a == "--degrade-after-inflight" && i + 1 < argc) {
      options.degrade_after_inflight =
          static_cast<size_t>(ArgU64(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    }
  }

  auto g = LoadGraphArg(argv[0]);
  if (!g.has_value()) return 1;
  auto index = LoadOrBuildIndex(*g, argv[1]);
  if (!index.has_value()) return 1;
  if (updatable) {
    // Snapshots per-landmark BFS state so kUpdateRequest frames can repair
    // columns incrementally instead of rebuilding the index.
    index->EnableUpdates(&*g);
    options.allow_updates = true;
  }

  qbs::server::QueryServer server(*index, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "qbs serve: %s\n", error.c_str());
    return 1;
  }
  // Machine-parseable readiness line (the CI smoke test and the runbook
  // grep for it), flushed before any query lands.
  std::printf(
      "qbs serve: listening on %s:%u (|V|=%u, cache %zu MiB, "
      "read-timeout %ums, idle-timeout %ums, degrade-after %zu)\n",
      options.host.c_str(), server.port(), g->NumVertices(),
      options.cache_bytes >> 20, options.read_timeout_ms,
      options.idle_timeout_ms, options.degrade_after_inflight);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!server.WaitFor(200)) {
    if (g_signal.load() != 0) server.RequestStop();
  }
  server.Stop();

  const auto stats = server.GetStats();
  std::printf(
      "qbs serve: stopped after %llu queries, %llu updates (%llu busy, "
      "%llu bad, %llu protocol errors, %llu connections)\n",
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.updates),
      static_cast<unsigned long long>(stats.busy_rejections),
      static_cast<unsigned long long>(stats.bad_requests),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.connections_accepted));
  std::printf(
      "  robustness: %llu deadline-exceeded, %llu degraded, "
      "%llu read timeouts, %llu idle reaps\n",
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.degraded),
      static_cast<unsigned long long>(stats.read_timeouts),
      static_cast<unsigned long long>(stats.idle_timeouts));
  std::printf("  cache: %llu hits / %llu lookups (%.1f%%), %zu entries\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.hits +
                                              stats.cache.misses),
              100.0 * stats.cache.HitRate(), stats.cache.entries);
  const auto print_class = [](const char* name,
                              const qbs::server::LatencyHistogram::Snapshot&
                                  snap) {
    if (snap.count == 0) return;
    std::printf("  %-7s n=%llu p50=%.3fms p99=%.3fms p999=%.3fms\n", name,
                static_cast<unsigned long long>(snap.count),
                snap.QuantileMillis(0.50), snap.QuantileMillis(0.99),
                snap.QuantileMillis(0.999));
  };
  print_class("cached", stats.lat_cached);
  print_class("short", stats.lat_short);
  print_class("long", stats.lat_long);
  return 0;
}

// Parses one edit per line: "i u v" / "insert u v" adds an edge,
// "d u v" / "delete u v" removes one. Blank lines and '#' comments skip.
bool ParseEditLine(const std::string& line, qbs::GraphDelta* delta,
                   std::string* error) {
  std::istringstream in(line);
  std::string op_tok, u_tok, v_tok;
  if (!(in >> op_tok >> u_tok >> v_tok)) {
    *error = "expected 'i|d u v'";
    return false;
  }
  const auto u = static_cast<qbs::VertexId>(ArgU64(u_tok.c_str()));
  const auto v = static_cast<qbs::VertexId>(ArgU64(v_tok.c_str()));
  if (op_tok == "i" || op_tok == "insert") {
    delta->Insert(u, v);
  } else if (op_tok == "d" || op_tok == "delete") {
    delta->Delete(u, v);
  } else {
    *error = "unknown op '" + op_tok + "' (want i|d)";
    return false;
  }
  return true;
}

int Update(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string host = argv[0];
  const auto port = static_cast<uint16_t>(ArgU64(argv[1]));
  qbs::GraphDelta delta;
  std::string file_path;
  uint32_t flags = 0;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    std::replace(a.begin(), a.end(), '_', '-');
    if (a == "--insert" && i + 2 < argc) {
      const auto u = static_cast<qbs::VertexId>(ArgU64(argv[++i]));
      const auto v = static_cast<qbs::VertexId>(ArgU64(argv[++i]));
      delta.Insert(u, v);
    } else if (a == "--delete" && i + 2 < argc) {
      const auto u = static_cast<qbs::VertexId>(ArgU64(argv[++i]));
      const auto v = static_cast<qbs::VertexId>(ArgU64(argv[++i]));
      delta.Delete(u, v);
    } else if (a == "--file" && i + 1 < argc) {
      file_path = argv[++i];
    } else if (a == "--defer") {
      flags |= qbs::server::kUpdateFlagDefer;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    }
  }
  if (!file_path.empty()) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (file_path != "-") {
      file.open(file_path);
      if (!file) {
        std::fprintf(stderr, "cannot read %s\n", file_path.c_str());
        return 1;
      }
      in = &file;
    }
    std::string line;
    size_t line_no = 0;
    while (std::getline(*in, line)) {
      ++line_no;
      const size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      std::string error;
      if (!ParseEditLine(line, &delta, &error)) {
        std::fprintf(stderr, "%s:%zu: %s\n", file_path.c_str(), line_no,
                     error.c_str());
        return 1;
      }
    }
  }
  if (delta.empty()) {
    std::fprintf(stderr, "qbs update: no edits given\n");
    return 2;
  }

  qbs::server::QueryClient client;
  if (!client.Connect(host, port)) {
    std::fprintf(stderr, "qbs update: connect failed: %s\n",
                 client.last_error().c_str());
    return 1;
  }
  qbs::UpdateStats stats;
  qbs::WallTimer timer;
  const auto status = client.Update(delta, &stats, flags);
  if (status != qbs::server::QueryClient::RpcStatus::kOk) {
    std::fprintf(stderr, "qbs update: %s\n", client.last_error().c_str());
    return 1;
  }
  std::printf(
      "qbs update: applied %llu inserts, %llu deletes "
      "(%llu no-ops, %llu invalid) in %.3fms\n",
      static_cast<unsigned long long>(stats.applied_inserts),
      static_cast<unsigned long long>(stats.applied_deletes),
      static_cast<unsigned long long>(stats.noop_updates),
      static_cast<unsigned long long>(stats.invalid_updates),
      timer.ElapsedMillis());
  std::printf("  columns: %u repaired, %u rebuilt, %u deferred\n",
              stats.repaired_columns, stats.rebuilt_columns,
              stats.deferred_columns);
  return 0;
}

int Load(int argc, char** argv) {
  if (argc < 3) return Usage();
  qbs::WorkloadOptions workload;
  size_t conns = 1;
  bool send_shutdown = false;
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    std::replace(a.begin(), a.end(), '_', '-');
    if (a == "--queries" && i + 1 < argc) {
      workload.num_queries = static_cast<size_t>(ArgU64(argv[++i]));
    } else if (a == "--pairs" && i + 1 < argc) {
      workload.num_distinct_pairs = static_cast<size_t>(ArgU64(argv[++i]));
    } else if (a == "--zipf" && i + 1 < argc) {
      workload.zipf_s = std::atof(argv[++i]);
    } else if (a == "--seed" && i + 1 < argc) {
      workload.seed = ArgU64(argv[++i]);
    } else if (a == "--conns" && i + 1 < argc) {
      conns = std::max<size_t>(1, static_cast<size_t>(ArgU64(argv[++i])));
    } else if (a == "--mode" && i + 1 < argc) {
      if (!ParseMode(argv[++i], &workload.mode)) {
        std::fprintf(stderr, "unknown mode %s\n", argv[i]);
        return 2;
      }
    } else if (a == "--budget" && i + 1 < argc) {
      workload.budget = static_cast<uint32_t>(ArgU64(argv[++i]));
    } else if (a == "--rate" && i + 1 < argc) {
      workload.arrival_rate_qps = std::atof(argv[++i]);
    } else if (a == "--burst" && i + 1 < argc) {
      workload.burst_factor = std::atof(argv[++i]);
    } else if (a == "--deadline-ms" && i + 1 < argc) {
      workload.deadline_ms = static_cast<uint32_t>(ArgU64(argv[++i]));
    } else if (a == "--no-cache") {
      workload.flags |= qbs::kQueryFlagNoCache;
    } else if (a == "--shutdown") {
      send_shutdown = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    }
  }
  const std::string host = argv[1];
  const auto port = static_cast<uint16_t>(ArgU64(argv[2]));

  auto g = LoadGraphArg(argv[0]);
  if (!g.has_value()) return 1;
  const std::vector<qbs::TimedQuery> queries =
      qbs::GenerateWorkload(*g, workload);

  // One connection per worker; workers claim queries through a shared
  // cursor (with conns=1 this is exactly the workload order, which is what
  // makes single-connection hit-rates reproducible).
  std::atomic<size_t> cursor{0};
  std::atomic<uint64_t> ok{0}, hits{0}, degraded{0}, busy_retries{0},
      reconnects{0}, shed{0}, deadline_exceeded{0}, errors{0};
  std::atomic<uint32_t> max_queue_depth{0};
  qbs::server::LatencyHistogram latency;
  const auto t0 = std::chrono::steady_clock::now();

  auto worker = [&](size_t worker_id) {
    qbs::server::QueryClient client;
    if (!client.Connect(host, port)) {
      errors.fetch_add(1);
      return;
    }
    // Deterministic exponential backoff with seeded jitter (per-worker
    // stream) instead of the old fixed-sleep busy loop; the server's
    // retry_after hint floors each delay.
    qbs::server::RetryPolicy policy;
    policy.max_attempts = 6;
    policy.base_backoff_ms = 5;
    policy.max_backoff_ms = 200;
    policy.seed = workload.seed ^ (0x9e3779b97f4a7c15ull * (worker_id + 1));
    for (;;) {
      const size_t i = cursor.fetch_add(1);
      if (i >= queries.size()) break;
      const qbs::TimedQuery& q = queries[i];
      if (q.arrival_ns > 0) {
        const auto target = t0 + std::chrono::nanoseconds(q.arrival_ns);
        std::this_thread::sleep_until(target);
      }
      const auto qt0 = std::chrono::steady_clock::now();
      qbs::QueryResponse response;
      qbs::server::RetryStats rstats;
      const auto status =
          client.QueryWithRetry(q.request, &response, policy, &rstats);
      busy_retries.fetch_add(rstats.busy_retries);
      reconnects.fetch_add(rstats.reconnects);
      uint32_t depth = rstats.last_queue_depth;
      uint32_t seen = max_queue_depth.load();
      while (depth > seen &&
             !max_queue_depth.compare_exchange_weak(seen, depth)) {
      }
      switch (status) {
        case qbs::server::QueryClient::RpcStatus::kOk:
          ok.fetch_add(1);
          if (response.cache_hit) hits.fetch_add(1);
          if (response.degraded()) degraded.fetch_add(1);
          break;
        case qbs::server::QueryClient::RpcStatus::kBusy:
          shed.fetch_add(1);  // still busy after every retry: load shed
          break;
        case qbs::server::QueryClient::RpcStatus::kDeadlineExceeded:
          deadline_exceeded.fetch_add(1);
          break;
        default:
          errors.fetch_add(1);
          if (status ==
                  qbs::server::QueryClient::RpcStatus::kTransportError &&
              !client.connected()) {
            return;  // retries (and reconnects) exhausted
          }
          break;
      }
      latency.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - qt0)
              .count()));
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(conns);
  for (size_t c = 0; c < conns; ++c) workers.emplace_back(worker, c);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto snap = latency.GetSnapshot();
  const uint64_t answered = ok.load();
  std::printf("qbs load: %llu/%zu ok in %.3fs (%.0f q/s, %zu conns)\n",
              static_cast<unsigned long long>(answered), queries.size(),
              elapsed, elapsed > 0 ? static_cast<double>(answered) / elapsed
                                   : 0.0,
              conns);
  std::printf(
      "  hit-rate %.4f (%llu hits), %llu busy retries, %llu reconnects, "
      "%llu errors\n",
      answered > 0 ? static_cast<double>(hits.load()) /
                         static_cast<double>(answered)
                   : 0.0,
      static_cast<unsigned long long>(hits.load()),
      static_cast<unsigned long long>(busy_retries.load()),
      static_cast<unsigned long long>(reconnects.load()),
      static_cast<unsigned long long>(errors.load()));
  std::printf(
      "  shed %llu (%.2f%% of %zu), %llu deadline-exceeded, "
      "%llu degraded, max queue depth %u\n",
      static_cast<unsigned long long>(shed.load()),
      queries.empty() ? 0.0
                      : 100.0 * static_cast<double>(shed.load()) /
                            static_cast<double>(queries.size()),
      queries.size(),
      static_cast<unsigned long long>(deadline_exceeded.load()),
      static_cast<unsigned long long>(degraded.load()),
      max_queue_depth.load());
  std::printf("  p50=%.3fms p99=%.3fms p999=%.3fms mean=%.3fms\n",
              snap.QuantileMillis(0.50), snap.QuantileMillis(0.99),
              snap.QuantileMillis(0.999), snap.MeanMillis());

  if (send_shutdown) {
    qbs::server::QueryClient client;
    if (!client.Connect(host, port) || !client.Shutdown()) {
      std::fprintf(stderr, "qbs load: shutdown request failed: %s\n",
                   client.last_error().c_str());
      return 1;
    }
    std::printf("qbs load: server acknowledged shutdown\n");
  }
  return errors.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return Generate(argc - 2, argv + 2);
  if (cmd == "stats") return Stats(argc - 2, argv + 2);
  if (cmd == "build") return Build(argc - 2, argv + 2);
  if (cmd == "query") return Query(argc - 2, argv + 2);
  if (cmd == "serve") return Serve(argc - 2, argv + 2);
  if (cmd == "load") return Load(argc - 2, argv + 2);
  if (cmd == "update") return Update(argc - 2, argv + 2);
  if (cmd == "datasets") return Datasets();
  return Usage();
}

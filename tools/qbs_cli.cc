// qbs — command-line front end for the library.
//
//   qbs generate <family> <out.edges> [args...]   synthesize a graph
//   qbs stats    <graph>                          print graph statistics
//   qbs build    <graph> <out.qbs> [opts]         build & save an index
//   qbs query    <graph> <index.qbs|-> <u> <v> [more u v ...]
//   qbs datasets                                  list the dataset registry
//
// <graph> is an edge-list path (".gz" decompressed on the fly) or
// "dataset:<name>" — a real dataset resolved through the binary cache
// under $QBS_DATA_DIR (default data/; populate with
// tools/fetch_datasets.py), falling back to the Table 1 stand-in when no
// data is present.
//
// generate families:
//   ba <n> <m> [seed]           Barabási–Albert
//   er <n> <edges> [seed]       Erdős–Rényi G(n, m)
//   ws <n> <k> <beta> [seed]    Watts–Strogatz
//   rmat <scale> <ef> [seed]    R-MAT (2^scale vertices)
//   dataset <ABBREV> [scale]    Table 1 stand-in (DO, DB, ..., CW)
//
// build options: --landmarks K (default 20), --threads T (default all),
//                --strategy degree|random|deg-weighted|closeness,
//                --no-delta
//
// query: pass '-' as the index path to build one in memory on the fly.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/qbs_index.h"
#include "gen/generators.h"
#include "graph/bfs.h"
#include "graph/components.h"
#include "graph/dataset_io.h"
#include "graph/edge_list_io.h"
#include "util/timer.h"
#include "workload/dataset_registry.h"
#include "workload/datasets.h"
#include "workload/query_workload.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: qbs generate <family> <out.edges> [args...]\n"
      "       qbs stats <graph>\n"
      "       qbs build <graph> <out.qbs> [--landmarks K] "
      "[--threads T] [--strategy S] [--no-delta]\n"
      "       qbs query <graph> <index.qbs|-> <u> <v> ...\n"
      "       qbs datasets\n"
      "<graph>: an edge-list path (.gz ok) or dataset:<name> "
      "(see `qbs datasets`)\n");
  return 2;
}

// Resolves a <graph> argument: "dataset:<name>" goes through the real-
// dataset registry (cache -> raw -> stand-in fallback), anything else is
// an edge-list path (gz-aware).
std::optional<qbs::Graph> LoadGraphArg(const std::string& arg) {
  constexpr const char kPrefix[] = "dataset:";
  if (arg.rfind(kPrefix, 0) == 0) {
    auto resolved = qbs::ResolveDataset(arg.substr(sizeof(kPrefix) - 1),
                                        qbs::DefaultDataDir());
    if (!resolved.has_value()) return std::nullopt;
    std::fprintf(stderr, "dataset %s: %u vertices, %llu edges (%s)\n",
                 resolved->name.c_str(), resolved->graph.NumVertices(),
                 static_cast<unsigned long long>(resolved->graph.NumEdges()),
                 resolved->source.c_str());
    return std::move(resolved->graph);
  }
  return qbs::ReadEdgeListAuto(arg);
}

int Datasets() {
  const std::string data_dir = qbs::DefaultDataDir();
  std::printf("data dir: %s (override with QBS_DATA_DIR)\n", data_dir.c_str());
  std::printf("%-12s %-6s %-9s %-11s %-11s %s\n", "name", "Tbl.1", "status",
              "host|V|", "host|E|", "file");
  for (const auto& spec : qbs::RealDatasets()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    const bool cached = fs::exists(qbs::CachePathFor(spec, data_dir), ec);
    const bool raw = fs::exists(qbs::RawPathFor(spec, data_dir), ec);
    const char* status = cached ? "cached"
                         : raw  ? "raw"
                         : spec.url.empty() ? "manual"
                                            : "absent";
    std::printf("%-12s %-6s %-9s %-11llu %-11llu %s\n", spec.name.c_str(),
                spec.abbrev.empty() ? "-" : spec.abbrev.c_str(), status,
                static_cast<unsigned long long>(spec.host_vertices),
                static_cast<unsigned long long>(spec.host_edges),
                spec.file.c_str());
  }
  std::printf(
      "\nfetch:   tools/fetch_datasets.py --only <name>   (downloads + "
      "sha256)\nconvert: automatic on first dataset:<name> use (binary "
      "cache under %s/cache)\n",
      data_dir.c_str());
  return 0;
}

uint64_t ArgU64(const char* s) { return std::strtoull(s, nullptr, 10); }

int Generate(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string family = argv[0];
  const std::string out = argv[1];
  qbs::Graph g;
  if (family == "ba" && argc >= 4) {
    g = qbs::BarabasiAlbert(static_cast<qbs::VertexId>(ArgU64(argv[2])),
                            static_cast<uint32_t>(ArgU64(argv[3])),
                            argc > 4 ? ArgU64(argv[4]) : 1);
  } else if (family == "er" && argc >= 4) {
    g = qbs::LargestComponent(
            qbs::ErdosRenyi(static_cast<qbs::VertexId>(ArgU64(argv[2])),
                            ArgU64(argv[3]), argc > 4 ? ArgU64(argv[4]) : 1))
            .graph;
  } else if (family == "ws" && argc >= 5) {
    g = qbs::WattsStrogatz(static_cast<qbs::VertexId>(ArgU64(argv[2])),
                           static_cast<uint32_t>(ArgU64(argv[3])),
                           std::atof(argv[4]),
                           argc > 5 ? ArgU64(argv[5]) : 1);
  } else if (family == "rmat" && argc >= 4) {
    g = qbs::LargestComponent(
            qbs::RMat(static_cast<uint32_t>(ArgU64(argv[2])),
                      static_cast<uint32_t>(ArgU64(argv[3])), 0.57, 0.19,
                      0.19, argc > 4 ? ArgU64(argv[4]) : 1))
            .graph;
  } else if (family == "dataset" && argc >= 3) {
    g = qbs::MakeDataset(qbs::DatasetByAbbrev(argv[2]),
                         argc > 3 ? std::atof(argv[3]) : 1.0);
  } else {
    return Usage();
  }
  if (!qbs::WriteEdgeList(g, out)) return 1;
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              g.NumVertices(), static_cast<unsigned long long>(g.NumEdges()));
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto g = LoadGraphArg(argv[0]);
  if (!g.has_value()) return 1;
  const auto info = qbs::ConnectedComponents(*g);
  std::printf("vertices:        %u\n", g->NumVertices());
  std::printf("edges:           %llu\n",
              static_cast<unsigned long long>(g->NumEdges()));
  std::printf("max degree:      %u\n", g->MaxDegree());
  std::printf("avg degree:      %.2f\n", g->AverageDegree());
  std::printf("components:      %u (largest %u)\n", info.num_components,
              info.num_components == 0 ? 0 : info.sizes[info.largest]);
  std::printf("adjacency bytes: %llu\n",
              static_cast<unsigned long long>(g->SizeBytes()));
  const auto pairs = qbs::SampleQueryPairs(*g, 500, 1);
  const auto dist = qbs::ComputeDistanceDistribution(*g, pairs);
  std::printf("avg distance:    %.2f (over 500 sampled pairs)\n",
              dist.Mean());
  return 0;
}

bool ParseBuildOptions(int argc, char** argv, qbs::QbsOptions* options) {
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--landmarks" && i + 1 < argc) {
      options->num_landmarks = static_cast<uint32_t>(ArgU64(argv[++i]));
    } else if (a == "--threads" && i + 1 < argc) {
      options->num_threads = static_cast<size_t>(ArgU64(argv[++i]));
    } else if (a == "--no-delta") {
      options->precompute_delta = false;
    } else if (a == "--strategy" && i + 1 < argc) {
      const std::string s = argv[++i];
      if (s == "degree") {
        options->landmark_strategy = qbs::LandmarkStrategy::kHighestDegree;
      } else if (s == "random") {
        options->landmark_strategy = qbs::LandmarkStrategy::kRandom;
      } else if (s == "deg-weighted") {
        options->landmark_strategy =
            qbs::LandmarkStrategy::kDegreeWeightedRandom;
      } else if (s == "closeness") {
        options->landmark_strategy = qbs::LandmarkStrategy::kApproxCloseness;
      } else {
        std::fprintf(stderr, "unknown strategy %s\n", s.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

int Build(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto g = LoadGraphArg(argv[0]);
  if (!g.has_value()) return 1;
  qbs::QbsOptions options;
  options.num_threads = 0;
  if (!ParseBuildOptions(argc - 2, argv + 2, &options)) return 2;
  qbs::WallTimer timer;
  qbs::QbsIndex index = qbs::QbsIndex::Build(*g, options);
  std::printf("built |R|=%zu (%s) in %.3fs (labelling %.3fs, delta %.3fs)\n",
              index.landmarks().size(),
              qbs::LandmarkStrategyName(options.landmark_strategy),
              timer.ElapsedSeconds(), index.timings().labeling_seconds,
              index.timings().delta_seconds);
  std::printf("size(L)=%llu bytes, size(Delta)=%llu bytes\n",
              static_cast<unsigned long long>(index.LabelingSizeBytes()),
              static_cast<unsigned long long>(index.DeltaSizeBytes()));
  if (!index.Save(argv[1])) return 1;
  std::printf("saved %s\n", argv[1]);
  return 0;
}

int Query(int argc, char** argv) {
  if (argc < 4 || (argc - 2) % 2 != 0) return Usage();
  auto g = LoadGraphArg(argv[0]);
  if (!g.has_value()) return 1;

  std::optional<qbs::QbsIndex> index;
  qbs::QbsOptions options;
  options.num_threads = 0;
  if (std::strcmp(argv[1], "-") == 0) {
    index = qbs::QbsIndex::Build(*g, options);
  } else {
    index = qbs::QbsIndex::LoadFromFile(*g, argv[1], options);
    if (!index.has_value()) return 1;
  }

  for (int i = 2; i + 1 < argc; i += 2) {
    const auto u = static_cast<qbs::VertexId>(ArgU64(argv[i]));
    const auto v = static_cast<qbs::VertexId>(ArgU64(argv[i + 1]));
    if (u >= g->NumVertices() || v >= g->NumVertices()) {
      std::fprintf(stderr, "vertex out of range: %u %u\n", u, v);
      return 2;
    }
    qbs::WallTimer timer;
    qbs::SearchStats stats;
    const auto spg = index->Query(u, v, &stats);
    const double ms = timer.ElapsedMillis();
    if (!spg.Connected()) {
      std::printf("SPG(%u,%u): disconnected (%.4f ms)\n", u, v, ms);
      continue;
    }
    std::printf("SPG(%u,%u): d=%u, %zu vertices, %zu edges, %llu paths "
                "(%.4f ms, %llu edge scans)\n",
                u, v, spg.distance, spg.Vertices().size(), spg.edges.size(),
                static_cast<unsigned long long>(spg.CountShortestPaths()),
                ms,
                static_cast<unsigned long long>(stats.TotalEdgesScanned()));
    for (const qbs::Edge& e : spg.edges) {
      std::printf("  %u %u\n", e.u, e.v);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return Generate(argc - 2, argv + 2);
  if (cmd == "stats") return Stats(argc - 2, argv + 2);
  if (cmd == "build") return Build(argc - 2, argv + 2);
  if (cmd == "query") return Query(argc - 2, argv + 2);
  if (cmd == "datasets") return Datasets();
  return Usage();
}

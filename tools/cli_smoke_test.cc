// End-to-end smoke test for tools/qbs_cli.cc. Drives the installed binary
// through its four subcommands: synthesize a small graph, print stats,
// build + save an index, then answer queries from the saved index and from
// a freshly built in-memory one ('-'), checking the two agree.
//
// The path to the CLI binary is passed as the first non-gtest argv.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace {

std::string g_cli_path;

// Shell-quotes one argument for the popen()'d command line; paths (the CLI
// binary under the build tree, TMPDIR) may contain spaces.
std::string Quoted(const std::string& arg) {
  std::string out = "'";
  for (const char c : arg) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

// Runs `cmd`, captures stdout, and returns it; fails the test on a non-zero
// exit status.
std::string RunOk(const std::string& cmd) {
  std::string out;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  if (pipe == nullptr) return out;
  std::array<char, 4096> buf;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  EXPECT_EQ(status, 0) << "command failed: " << cmd << "\noutput:\n" << out;
  return out;
}

class CliSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per-run dir: concurrent ctest invocations (e.g. two build
    // trees, or a shared CI runner) must not share scratch files.
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "qbs_cli_smoke.XXXXXX")
            .string();
    ASSERT_NE(mkdtemp(tmpl.data()), nullptr) << "mkdtemp: " << tmpl;
    dir_ = tmpl;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(CliSmokeTest, GenerateBuildSaveLoadQuery) {
  const std::string cli = Quoted(g_cli_path);
  const std::string edges = Path("g.edges");
  const std::string index = Path("g.qbs");

  // Synthesize a small Barabási–Albert graph (connected by construction).
  const std::string gen_out =
      RunOk(cli + " generate ba " + Quoted(edges) + " 300 3 7");
  EXPECT_NE(gen_out.find("300 vertices"), std::string::npos) << gen_out;

  const std::string stats_out = RunOk(cli + " stats " + Quoted(edges));
  EXPECT_NE(stats_out.find("vertices:"), std::string::npos) << stats_out;
  EXPECT_NE(stats_out.find("components:      1"), std::string::npos)
      << stats_out;

  // Build and save an index.
  const std::string build_out = RunOk(cli + " build " + Quoted(edges) + " " +
                                      Quoted(index) + " --landmarks 8");
  EXPECT_NE(build_out.find("saved"), std::string::npos) << build_out;
  EXPECT_TRUE(std::filesystem::exists(index));

  // Query through the saved index, and through a fresh in-memory build;
  // the reported SPG lines must match (deterministic landmark selection).
  const std::string q = " query " + Quoted(edges) + " ";
  const std::string pairs = " 0 299 5 250 17 123";
  const std::string loaded_out = RunOk(cli + q + Quoted(index) + pairs);
  const std::string fresh_out = RunOk(cli + q + "-" + pairs);

  for (const auto* needle : {"SPG(0,299)", "SPG(5,250)", "SPG(17,123)"}) {
    EXPECT_NE(loaded_out.find(needle), std::string::npos)
        << needle << " missing from:\n"
        << loaded_out;
  }
  // Distances from the loaded index must agree with the fresh build. Compare
  // just the "d=..." summary lines (timings differ run to run).
  auto summary_lines = [](const std::string& s) {
    std::string acc;
    size_t pos = 0;
    while ((pos = s.find("SPG(", pos)) != std::string::npos) {
      const size_t paren = s.find(" (", pos);
      const size_t eol = s.find('\n', pos);
      const size_t end = std::min(paren == std::string::npos ? eol : paren,
                                  eol == std::string::npos ? paren : eol);
      acc += s.substr(pos, end - pos);
      acc += '\n';
      pos = end == std::string::npos ? s.size() : end;
    }
    return acc;
  };
  EXPECT_EQ(summary_lines(loaded_out), summary_lines(fresh_out));
}

TEST_F(CliSmokeTest, QueryFormatsAndRequestFiles) {
  const std::string cli = Quoted(g_cli_path);
  const std::string edges = Path("g.edges");
  RunOk(cli + " generate ba " + Quoted(edges) + " 200 3 7");

  // A request file with comments, blank lines, and per-line mode/budget
  // overrides — the batch input surface of the restructured query verb.
  const std::string requests = Path("requests.txt");
  {
    FILE* f = fopen(requests.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "# u v [mode] [budget]\n"
        "0 199\n"
        "\n"
        "5 150 distance\n"
        "17 123 spg 2\n",
        f);
    fclose(f);
  }

  const std::string base = cli + " query " + Quoted(edges) +
                           " - --requests " + Quoted(requests);
  const std::string tsv = RunOk(base + " --format tsv");
  EXPECT_NE(tsv.find("# u\tv\tmode\tbudget\tdistance"), std::string::npos)
      << tsv;
  EXPECT_NE(tsv.find("5\t150\tdistance\t0\t"), std::string::npos) << tsv;
  EXPECT_NE(tsv.find("17\t123\tspg\t2\t"), std::string::npos) << tsv;

  const std::string jsonl = RunOk(base + " --format jsonl");
  EXPECT_NE(jsonl.find("{\"u\":0,\"v\":199,\"mode\":\"spg\""),
            std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"distance\":"), std::string::npos) << jsonl;

  // Out-of-range vertex: runtime failure, not a crash; exit code 1.
  FILE* pipe = popen((cli + " query " + Quoted(edges) +
                      " - 0 99999 --format tsv 2>/dev/null")
                         .c_str(),
                     "r");
  ASSERT_NE(pipe, nullptr);
  const int status = pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);
}

TEST_F(CliSmokeTest, ServeAndLoadRoundTrip) {
  const std::string cli = Quoted(g_cli_path);
  const std::string edges = Path("g.edges");
  const std::string index = Path("g.qbs");
  RunOk(cli + " generate ba " + Quoted(edges) + " 300 3 7");
  RunOk(cli + " build " + Quoted(edges) + " " + Quoted(index) +
        " --landmarks 8");

  // Start the daemon on an ephemeral port and parse it from the readiness
  // line, then drive it with the seeded load client and ask it to shut
  // down; the daemon must exit 0.
  FILE* server = popen((cli + " serve " + Quoted(edges) + " " +
                        Quoted(index) + " --port 0 2>&1")
                           .c_str(),
                       "r");
  ASSERT_NE(server, nullptr);
  std::array<char, 512> line{};
  ASSERT_NE(fgets(line.data(), line.size(), server), nullptr);
  const std::string ready(line.data());
  ASSERT_NE(ready.find("listening on"), std::string::npos) << ready;
  const size_t colon = ready.find("127.0.0.1:");
  ASSERT_NE(colon, std::string::npos) << ready;
  const int port = std::atoi(ready.c_str() + colon + 10);
  ASSERT_GT(port, 0) << ready;

  const std::string load_out =
      RunOk(cli + " load " + Quoted(edges) + " 127.0.0.1 " +
            std::to_string(port) +
            " --queries 500 --pairs 40 --seed 42 --shutdown");
  EXPECT_NE(load_out.find("500/500 ok"), std::string::npos) << load_out;
  EXPECT_NE(load_out.find("hit-rate"), std::string::npos) << load_out;
  EXPECT_NE(load_out.find("acknowledged shutdown"), std::string::npos)
      << load_out;

  // Drain the daemon's remaining output (stats dump) and reap it.
  while (fgets(line.data(), line.size(), server) != nullptr) {
  }
  const int status = pclose(server);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST_F(CliSmokeTest, UsageOnBadInvocation) {
  FILE* pipe = popen((Quoted(g_cli_path) + " bogus 2>/dev/null").c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  const int status = pclose(pipe);
  EXPECT_NE(status, 0);
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 2) {
    std::fprintf(stderr, "usage: cli_smoke_test <path-to-qbs-cli>\n");
    return 2;
  }
  g_cli_path = argv[1];
  return RUN_ALL_TESTS();
}

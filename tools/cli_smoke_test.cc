// End-to-end smoke test for tools/qbs_cli.cc. Drives the installed binary
// through its four subcommands: synthesize a small graph, print stats,
// build + save an index, then answer queries from the saved index and from
// a freshly built in-memory one ('-'), checking the two agree.
//
// The path to the CLI binary is passed as the first non-gtest argv.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace {

std::string g_cli_path;

// Shell-quotes one argument for the popen()'d command line; paths (the CLI
// binary under the build tree, TMPDIR) may contain spaces.
std::string Quoted(const std::string& arg) {
  std::string out = "'";
  for (const char c : arg) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

// Runs `cmd`, captures stdout, and returns it; fails the test on a non-zero
// exit status.
std::string RunOk(const std::string& cmd) {
  std::string out;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  if (pipe == nullptr) return out;
  std::array<char, 4096> buf;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  EXPECT_EQ(status, 0) << "command failed: " << cmd << "\noutput:\n" << out;
  return out;
}

class CliSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per-run dir: concurrent ctest invocations (e.g. two build
    // trees, or a shared CI runner) must not share scratch files.
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "qbs_cli_smoke.XXXXXX")
            .string();
    ASSERT_NE(mkdtemp(tmpl.data()), nullptr) << "mkdtemp: " << tmpl;
    dir_ = tmpl;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(CliSmokeTest, GenerateBuildSaveLoadQuery) {
  const std::string cli = Quoted(g_cli_path);
  const std::string edges = Path("g.edges");
  const std::string index = Path("g.qbs");

  // Synthesize a small Barabási–Albert graph (connected by construction).
  const std::string gen_out =
      RunOk(cli + " generate ba " + Quoted(edges) + " 300 3 7");
  EXPECT_NE(gen_out.find("300 vertices"), std::string::npos) << gen_out;

  const std::string stats_out = RunOk(cli + " stats " + Quoted(edges));
  EXPECT_NE(stats_out.find("vertices:"), std::string::npos) << stats_out;
  EXPECT_NE(stats_out.find("components:      1"), std::string::npos)
      << stats_out;

  // Build and save an index.
  const std::string build_out = RunOk(cli + " build " + Quoted(edges) + " " +
                                      Quoted(index) + " --landmarks 8");
  EXPECT_NE(build_out.find("saved"), std::string::npos) << build_out;
  EXPECT_TRUE(std::filesystem::exists(index));

  // Query through the saved index, and through a fresh in-memory build;
  // the reported SPG lines must match (deterministic landmark selection).
  const std::string q = " query " + Quoted(edges) + " ";
  const std::string pairs = " 0 299 5 250 17 123";
  const std::string loaded_out = RunOk(cli + q + Quoted(index) + pairs);
  const std::string fresh_out = RunOk(cli + q + "-" + pairs);

  for (const auto* needle : {"SPG(0,299)", "SPG(5,250)", "SPG(17,123)"}) {
    EXPECT_NE(loaded_out.find(needle), std::string::npos)
        << needle << " missing from:\n"
        << loaded_out;
  }
  // Distances from the loaded index must agree with the fresh build. Compare
  // just the "d=..." summary lines (timings differ run to run).
  auto summary_lines = [](const std::string& s) {
    std::string acc;
    size_t pos = 0;
    while ((pos = s.find("SPG(", pos)) != std::string::npos) {
      const size_t paren = s.find(" (", pos);
      const size_t eol = s.find('\n', pos);
      const size_t end = std::min(paren == std::string::npos ? eol : paren,
                                  eol == std::string::npos ? paren : eol);
      acc += s.substr(pos, end - pos);
      acc += '\n';
      pos = end == std::string::npos ? s.size() : end;
    }
    return acc;
  };
  EXPECT_EQ(summary_lines(loaded_out), summary_lines(fresh_out));
}

TEST_F(CliSmokeTest, UsageOnBadInvocation) {
  FILE* pipe = popen((Quoted(g_cli_path) + " bogus 2>/dev/null").c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  const int status = pclose(pipe);
  EXPECT_NE(status, 0);
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 2) {
    std::fprintf(stderr, "usage: cli_smoke_test <path-to-qbs-cli>\n");
    return 2;
  }
  g_cli_path = argv[1];
  return RUN_ALL_TESTS();
}

#!/usr/bin/env python3
"""Download the paper's real datasets into the local data directory.

Fetches the SNAP-hosted edge lists of conf_sigmod_WangWKL21's Table 1 (plus
Epinions, a small smoke dataset) into <data-dir>/raw/ with SHA-256
verification and resumable downloads. Datasets whose hosts only ship
zip/WebGraph containers (Douban, Baidu, Twitter, uk2007, ClueWeb09) are
listed with manual instructions instead.

Typical use:

    tools/fetch_datasets.py --list
    tools/fetch_datasets.py --only epinions
    tools/fetch_datasets.py --only dblp,youtube
    tools/fetch_datasets.py --all          # everything with a mirror (large!)

Checksums: entries with a pinned sha256 are verified against the pin.
Unpinned entries are trust-on-first-use: the computed hash is recorded as
<file>.sha256 next to the download and verified on later runs; pass
--require-checksum to refuse unpinned downloads outright.

Pin ratchet: `--audit` (run by the CI docs job) fails when any mirrored
registry entry has neither a pinned sha256 nor a PIN_PENDING entry naming
why the pin is still outstanding. Pins must come from a real download
(`verify` prints the hash to pin) — never write a hash you did not compute
from the fetched bytes. Once pinned, remove the PIN_PENDING entry; the
audit also fails on stale allowlist rows so the ratchet only tightens.

After fetching, the C++ side converts each raw file once into a checksummed
binary cache (<data-dir>/cache/<name>.qbsgrf) on first use — e.g.

    build/bench/bench_table1_datasets --dataset=epinions
    build/tools/qbs stats dataset:epinions

This registry must stay in sync with src/workload/datasets.cc
(the C++ side owns the name -> file mapping the benches resolve through).
"""

import argparse
import hashlib
import os
import sys
import urllib.error
import urllib.request

# name -> (url, filename, pinned_sha256, host_vertices, host_edges, note)
# url == "" means no plain edge-list mirror exists; `note` then carries the
# manual instructions. Keep in sync with src/workload/datasets.cc.
REGISTRY = {
    "douban": ("", "soc-douban.txt", "", 154908, 327162,
               "zip-only at networkrepository.com/soc-douban.php; unzip "
               "soc-douban.mtx, strip the header lines, save as the listed "
               "file"),
    "dblp": ("https://snap.stanford.edu/data/bigdata/communities/"
             "com-dblp.ungraph.txt.gz",
             "com-dblp.ungraph.txt.gz", "", 317080, 1049866, ""),
    "youtube": ("https://snap.stanford.edu/data/bigdata/communities/"
                "com-youtube.ungraph.txt.gz",
                "com-youtube.ungraph.txt.gz", "", 1134890, 2987624, ""),
    "wikitalk": ("https://snap.stanford.edu/data/wiki-Talk.txt.gz",
                 "wiki-Talk.txt.gz", "", 2394385, 5021410, ""),
    "skitter": ("https://snap.stanford.edu/data/as-skitter.txt.gz",
                "as-skitter.txt.gz", "", 1696415, 11095298, ""),
    "baidu": ("", "baidu-baike.txt", "", 2141300, 17794839,
              "KONECT 'baidu-internal' ships tar.bz2; extract the edge "
              "list (out.* file), drop '%' header lines, save as the "
              "listed file"),
    "livejournal": ("https://snap.stanford.edu/data/bigdata/communities/"
                    "com-lj.ungraph.txt.gz",
                    "com-lj.ungraph.txt.gz", "", 3997962, 34681189, ""),
    "orkut": ("https://snap.stanford.edu/data/bigdata/communities/"
              "com-orkut.ungraph.txt.gz",
              "com-orkut.ungraph.txt.gz", "", 3072441, 117185083, ""),
    "twitter": ("", "twitter-2010.txt", "", 41652230, 1468365182,
                "LAW hosts twitter-2010 in WebGraph format; decompress "
                "with the webgraph tools to an ASCII edge list"),
    "friendster": ("https://snap.stanford.edu/data/bigdata/communities/"
                   "com-friendster.ungraph.txt.gz",
                   "com-friendster.ungraph.txt.gz", "", 65608366,
                   1806067135, "~31 GB download"),
    "uk2007": ("", "uk-2007-05.txt", "", 105896555, 3738733648,
               "LAW hosts uk-2007-05 in WebGraph format; decompress with "
               "the webgraph tools to an ASCII edge list"),
    "clueweb09": ("", "clueweb09.txt", "", 1684868322, 7811385827,
                  "Lemur project access agreement required; export the "
                  "web graph as an ASCII edge list"),
    "epinions": ("https://snap.stanford.edu/data/soc-Epinions1.txt.gz",
                 "soc-Epinions1.txt.gz", "", 75879, 508837,
                 "small (~5 MB): the pipeline smoke dataset"),
}

# Mirrored entries allowed to ship without a pinned sha256, each with the
# reason the pin is outstanding. A pin can only come from hashing a real
# download (see verify's trust-on-first-use output) — this file has never
# been populated from anything else, and --audit enforces that every
# mirrored entry is either pinned or consciously listed here. When a pin
# lands, delete the entry; leaving it behind fails the audit.
PIN_PENDING = {
    "dblp": "pin pending first networked fetch from the SNAP mirror",
    "youtube": "pin pending first networked fetch from the SNAP mirror",
    "wikitalk": "pin pending first networked fetch from the SNAP mirror",
    "skitter": "pin pending first networked fetch from the SNAP mirror",
    "livejournal": "pin pending first networked fetch from the SNAP mirror",
    "orkut": "pin pending first networked fetch from the SNAP mirror",
    "friendster": "pin pending first networked fetch from the SNAP mirror",
    "epinions": "pin pending first networked fetch from the SNAP mirror",
}

CHUNK = 1 << 20  # 1 MiB read/hash granularity


def sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        while chunk := f.read(CHUNK):
            digest.update(chunk)
    return digest.hexdigest()


def human(n):
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{n}B"
        n /= 1024.0
    return f"{n}GB"


def list_datasets(data_dir):
    width = max(len(name) for name in REGISTRY) + 2
    print(f"data dir: {data_dir}")
    print(f"{'name':<{width}}{'status':<10}{'host |V|':>12}{'host |E|':>14}  "
          "source")
    for name, (url, filename, _, nv, ne, note) in REGISTRY.items():
        dest = os.path.join(data_dir, "raw", filename)
        if os.path.exists(dest):
            status = "fetched"
        elif os.path.exists(dest + ".part"):
            status = "partial"
        elif not url:
            status = "manual"
        else:
            status = "absent"
        source = url if url else f"manual: {note}"
        print(f"{name:<{width}}{status:<10}{nv:>12,}{ne:>14,}  {source}")


def resolve_names(only):
    if not only:
        return [n for n, spec in REGISTRY.items() if spec[0]]
    names = []
    for item in only.split(","):
        item = item.strip().lower()
        if not item:
            continue
        if item not in REGISTRY:
            sys.exit(f"unknown dataset '{item}'. "
                     f"Available: {', '.join(REGISTRY)}")
        names.append(item)
    return names


def download(url, dest, force):
    """Fetch url to dest with a resumable .part file. Returns True on a
    fresh/completed download, False if dest already existed."""
    if os.path.exists(dest) and not force:
        return False
    part = dest + ".part"
    offset = os.path.getsize(part) if os.path.exists(part) and not force \
        else 0
    request = urllib.request.Request(url)
    if offset:
        request.add_header("Range", f"bytes={offset}-")
        print(f"  resuming at {human(offset)}")
    mode = "ab" if offset else "wb"
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            if offset and response.status != 206:
                # Server ignored the Range header; restart from scratch.
                offset, mode = 0, "wb"
                print("  server does not support resume; restarting")
            total = response.headers.get("Content-Length")
            total = int(total) + offset if total else None
            done = offset
            with open(part, mode) as out:
                while chunk := response.read(CHUNK):
                    out.write(chunk)
                    done += len(chunk)
                    if total:
                        pct = 100.0 * done / total
                        print(f"\r  {human(done)} / {human(total)} "
                              f"({pct:.0f}%)", end="", flush=True)
                    else:
                        print(f"\r  {human(done)}", end="", flush=True)
            print()
    except urllib.error.HTTPError as err:
        if err.code == 416 and offset:
            # Range start == file size: the .part already holds the whole
            # file (e.g. killed between the last chunk and the rename).
            # Finalize it instead of 416-looping forever; verify() still
            # checks the hash.
            print("  server says the partial file is already complete")
            os.replace(part, dest)
            return True
        sys.exit(f"download failed for {url}: {err} "
                 f"(partial download kept at {part}; rerun to resume)")
    except urllib.error.URLError as err:
        sys.exit(f"download failed for {url}: {err} "
                 f"(partial download kept at {part}; rerun to resume)")
    os.replace(part, dest)
    return True


def verify(name, dest, pinned, require_checksum):
    """SHA-256 check: against the registry pin when present, else
    trust-on-first-use via a recorded <file>.sha256 sidecar."""
    record = dest + ".sha256"
    actual = sha256_file(dest)
    if pinned:
        if actual != pinned:
            sys.exit(f"{name}: SHA-256 mismatch!\n  expected {pinned}\n"
                     f"  actual   {actual}\n"
                     f"Delete {dest} and retry; if the mismatch persists "
                     "the mirror changed its file.")
        print(f"  sha256 ok (pinned): {actual}")
        return
    if require_checksum:
        sys.exit(f"{name}: no pinned sha256 in the registry and "
                 "--require-checksum was given")
    if os.path.exists(record):
        with open(record, encoding="ascii") as f:
            recorded = f.read().strip()
        if actual != recorded:
            sys.exit(f"{name}: SHA-256 differs from the first download!\n"
                     f"  recorded {recorded} ({record})\n"
                     f"  actual   {actual}\n"
                     f"Delete {dest} and {record} to accept the new file.")
        print(f"  sha256 ok (recorded): {actual}")
    else:
        with open(record, "w", encoding="ascii") as f:
            f.write(actual + "\n")
        print(f"  sha256 recorded (trust-on-first-use): {actual}")
        print(f"  pin it in tools/fetch_datasets.py + "
              f"src/workload/datasets.cc to make this tamper-evident")


def audit():
    """Pin ratchet (CI docs job). Exit non-zero unless every mirrored
    registry entry has a pinned sha256 or a PIN_PENDING reason, and every
    PIN_PENDING row still points at an unpinned mirrored entry."""
    problems = []
    pinned = unpinned = 0
    for name, (url, _, pin, *_rest) in REGISTRY.items():
        if not url:
            continue  # manual-fetch entries have nothing to pin
        if pin:
            pinned += 1
            if len(pin) != 64 or any(c not in "0123456789abcdef"
                                     for c in pin):
                problems.append(f"{name}: pinned value is not a lowercase "
                                f"hex sha256: {pin!r}")
            if name in PIN_PENDING:
                problems.append(f"{name}: pinned but still in PIN_PENDING "
                                "— remove the stale allowlist entry")
        else:
            unpinned += 1
            if name not in PIN_PENDING:
                problems.append(f"{name}: mirrored entry has no pinned "
                                "sha256 and no PIN_PENDING reason")
            elif not PIN_PENDING[name].strip():
                problems.append(f"{name}: PIN_PENDING reason is empty")
    for name in PIN_PENDING:
        if name not in REGISTRY:
            problems.append(f"PIN_PENDING names unknown dataset '{name}'")
        elif not REGISTRY[name][0]:
            problems.append(f"PIN_PENDING lists '{name}', which has no "
                            "mirror and needs no pin")
    print(f"audit: {pinned} pinned, {unpinned} awaiting a pin "
          f"(allowlisted), {len(problems)} problem(s)")
    if problems:
        for p in problems:
            print(f"  FAIL {p}", file=sys.stderr)
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--list", action="store_true",
                        help="show the registry and local status, then exit")
    parser.add_argument("--only", metavar="NAME[,NAME...]",
                        help="fetch only these datasets (default: every "
                        "dataset with a plain edge-list mirror)")
    parser.add_argument("--all", action="store_true",
                        help="fetch every dataset with a mirror (Friendster "
                        "alone is ~31 GB)")
    parser.add_argument("--data-dir",
                        default=os.environ.get("QBS_DATA_DIR", "data"),
                        help="destination directory (default: $QBS_DATA_DIR "
                        "or ./data)")
    parser.add_argument("--force", action="store_true",
                        help="re-download even if the file exists")
    parser.add_argument("--require-checksum", action="store_true",
                        help="fail on datasets without a pinned sha256 "
                        "instead of trust-on-first-use")
    parser.add_argument("--audit", action="store_true",
                        help="offline pin ratchet: fail unless every "
                        "mirrored entry is pinned or allowlisted in "
                        "PIN_PENDING (no network touched)")
    args = parser.parse_args()

    if args.audit:
        audit()
        return
    if args.list:
        list_datasets(args.data_dir)
        return
    if not args.only and not args.all:
        parser.error("pass --only NAME[,NAME...], --all, or --list")

    names = resolve_names(args.only)
    raw_dir = os.path.join(args.data_dir, "raw")
    os.makedirs(raw_dir, exist_ok=True)

    failures = []
    for name in names:
        url, filename, pinned, _, _, note = REGISTRY[name]
        dest = os.path.join(raw_dir, filename)
        if not url:
            print(f"{name}: no plain edge-list mirror — {note}\n"
                  f"  place the result at {dest}")
            failures.append(name)
            continue
        print(f"{name}: {url}")
        fresh = download(url, dest, args.force)
        if not fresh:
            print(f"  already present: {dest}")
        verify(name, dest, pinned, args.require_checksum)

    fetched = [n for n in names if n not in failures]
    if fetched:
        print(f"\nfetched/verified: {', '.join(fetched)}")
        print("next: build/bench/bench_table1_datasets "
              f"--dataset={fetched[0]}   (converts to the binary cache on "
              "first use)")
    if failures:
        sys.exit(f"needs manual fetching: {', '.join(failures)}")


if __name__ == "__main__":
    main()

// Regenerates Table 3: labelling sizes — QbS size(L) and size(Δ), PPL, and
// ParentPPL — per dataset, with -/DNF/OOE where a method's construction
// exceeds its budget, as in the paper.

#include <cstdio>

#include "baselines/parent_ppl.h"
#include "baselines/ppl.h"
#include "bench/bench_common.h"
#include "core/qbs_index.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Table 3: labelling sizes (|R| = 20; PPL budget %.1fs)\n",
              EnvBudgetSeconds());
  TablePrinter table("Table 3",
                     {"Dataset", "QbS size(L)", "QbS size(Delta)", "PPL",
                      "ParentPPL", "|G|"},
                     {12, 12, 15, 12, 12, 10});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    QbsOptions options;
    options.num_landmarks = 20;
    options.num_threads = EnvThreads();
    options.precompute_delta = true;
    QbsIndex index = QbsIndex::Build(d.graph, options);

    PplBuildOptions budget;
    budget.time_budget_seconds = EnvBudgetSeconds();
    budget.max_label_entries = 80'000'000;
    BuildStatus ppl_status;
    auto ppl = PplIndex::Build(d.graph, budget, &ppl_status);
    BuildStatus pppl_status;
    auto pppl = ParentPplIndex::Build(d.graph, budget, &pppl_status);

    table.Row(
        {d.spec.abbrev, HumanBytes(index.LabelingSizeBytes()),
         HumanBytes(index.DeltaSizeBytes()),
         ppl.has_value() ? HumanBytes(ppl->SizeBytes())
                         : (ppl_status == BuildStatus::kTimeBudgetExceeded
                                ? "DNF"
                                : "OOE"),
         pppl.has_value() ? HumanBytes(pppl->SizeBytes())
                          : (pppl_status == BuildStatus::kTimeBudgetExceeded
                                 ? "DNF"
                                 : "OOE"),
         HumanBytes(d.graph.SizeBytes())});
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

// Regenerates Figure 7: the distance distribution of randomly sampled
// vertex pairs per dataset (the paper plots the fraction of pairs at each
// distance, two panels: the six smaller and six larger datasets).

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/query_workload.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Figure 7: distance distribution of %zu random pairs\n",
              EnvPairs());
  constexpr uint32_t kMaxDistanceColumn = 14;
  std::vector<std::string> columns{"Dataset"};
  std::vector<int> widths{12};
  for (uint32_t d = 1; d <= kMaxDistanceColumn; ++d) {
    columns.push_back("d=" + std::to_string(d));
    widths.push_back(6);
  }
  columns.push_back("disc");
  widths.push_back(6);
  TablePrinter table("Figure 7 (fraction of pairs per distance)", columns,
                     widths);
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    const auto dist = ComputeDistanceDistribution(d.graph, d.pairs);
    std::vector<std::string> row{d.spec.abbrev};
    for (uint32_t x = 1; x <= kMaxDistanceColumn; ++x) {
      row.push_back(FormatDouble(dist.FractionAt(x), 3));
    }
    row.push_back(FormatDouble(
        dist.total == 0
            ? 0.0
            : static_cast<double>(dist.disconnected) / dist.total,
        3));
    table.Row(row);
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

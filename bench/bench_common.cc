#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#include "workload/datasets.h"

namespace qbs::bench {
namespace {

// Flag overrides (from InitBenchArgs); empty string = not set.
struct FlagOverrides {
  std::string scale, pairs, budget, threads, datasets, batch_size, grain;
  std::string dataset, data_dir;
};
FlagOverrides g_flags;

double ToDouble(const std::string& flag, const char* env_name,
                double fallback) {
  if (!flag.empty()) return std::atof(flag.c_str());
  const char* s = std::getenv(env_name);
  return s == nullptr ? fallback : std::atof(s);
}

}  // namespace

void InitBenchArgs(int argc, char** argv) {
  const struct {
    const char* name;
    std::string* slot;
  } known[] = {{"--scale=", &g_flags.scale},
               {"--pairs=", &g_flags.pairs},
               {"--budget=", &g_flags.budget},
               {"--threads=", &g_flags.threads},
               {"--datasets=", &g_flags.datasets},
               {"--batch_size=", &g_flags.batch_size},
               {"--grain=", &g_flags.grain},
               {"--dataset=", &g_flags.dataset},
               {"--data_dir=", &g_flags.data_dir}};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool matched = false;
    for (const auto& k : known) {
      const std::string prefix(k.name);
      if (arg.rfind(prefix, 0) == 0) {
        *k.slot = arg.substr(prefix.size());
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr,
                   "unknown flag: %s\nusage: %s [--scale=F] [--pairs=N] "
                   "[--budget=S] [--threads=N] [--datasets=DO,DB,...] "
                   "[--batch_size=N] [--grain=N] "
                   "[--dataset=dblp,epinions,...] [--data_dir=PATH]\n",
                   arg.c_str(), argv[0]);
      std::exit(2);
    }
  }
}

double EnvScale() { return ToDouble(g_flags.scale, "QBS_BENCH_SCALE", 1.0); }

size_t EnvPairs() {
  return static_cast<size_t>(ToDouble(g_flags.pairs, "QBS_BENCH_PAIRS", 500));
}

double EnvBudgetSeconds() {
  return ToDouble(g_flags.budget, "QBS_BENCH_BUDGET", 10.0);
}

size_t EnvThreads() {
  const double v = ToDouble(g_flags.threads, "QBS_BENCH_THREADS", 0);
  if (v > 0) return static_cast<size_t>(v);
  const size_t hw = std::thread::hardware_concurrency();
  // The paper parallelizes QbS-P with up to 12 threads.
  return std::min<size_t>(hw == 0 ? 1 : hw, 12);
}

size_t EnvBatchSize() {
  const double v =
      ToDouble(g_flags.batch_size, "QBS_BENCH_BATCH_SIZE", 256);
  return v > 0 ? static_cast<size_t>(v) : 256;
}

size_t EnvGrain() {
  return static_cast<size_t>(ToDouble(g_flags.grain, "QBS_BENCH_GRAIN", 0));
}

std::vector<DatasetSpec> SelectedDatasets() {
  std::vector<DatasetSpec> result;
  std::string s = g_flags.datasets;
  if (s.empty()) {
    const char* filter = std::getenv("QBS_BENCH_DATASETS");
    if (filter == nullptr) return PaperDatasets();
    s = filter;
  }
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    for (const auto& spec : PaperDatasets()) {
      if (spec.abbrev == item) result.push_back(spec);
    }
  }
  return result;
}

LoadedDataset LoadDataset(const DatasetSpec& spec) {
  LoadedDataset d;
  d.spec = spec;
  d.graph = MakeDataset(spec, EnvScale());
  d.pairs = SampleQueryPairs(d.graph, EnvPairs(), /*seed=*/20210402);
  return d;
}

std::string EnvDataDir() {
  if (!g_flags.data_dir.empty()) return g_flags.data_dir;
  return DefaultDataDir();  // honors QBS_DATA_DIR
}

std::vector<BenchDatasetRef> SelectedBenchDatasets() {
  std::string real = g_flags.dataset;
  if (real.empty()) {
    const char* env = std::getenv("QBS_BENCH_DATASET");
    if (env != nullptr) real = env;
  }
  std::vector<BenchDatasetRef> refs;
  if (real.empty()) {
    for (const DatasetSpec& spec : SelectedDatasets()) {
      BenchDatasetRef ref;
      ref.id = spec.abbrev;
      ref.spec = spec;
      refs.push_back(std::move(ref));
    }
    return refs;
  }
  std::stringstream ss(real);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    if (FindRealDataset(item) == nullptr) {
      std::fprintf(stderr,
                   "--dataset: unknown dataset '%s'. Available: %s\n",
                   item.c_str(), AvailableDatasetNames().c_str());
      std::exit(2);
    }
    BenchDatasetRef ref;
    ref.id = item;
    ref.real = true;
    refs.push_back(std::move(ref));
  }
  return refs;
}

LoadedDataset LoadDataset(const BenchDatasetRef& ref) {
  if (!ref.real) return LoadDataset(ref.spec);
  auto resolved = ResolveDataset(ref.id, EnvDataDir(), EnvScale());
  if (!resolved.has_value()) {
    // ResolveDataset already printed the reason + the available list.
    std::exit(2);
  }
  LoadedDataset d;
  d.source = resolved->source == "stand-in" ? "stand-in*" : resolved->source;
  d.spec.name = resolved->name;
  d.spec.abbrev =
      resolved->abbrev.empty() ? resolved->name : resolved->abbrev;
  d.spec.paper_vertices_m = resolved->paper_vertices_m;
  d.spec.paper_edges_m = resolved->paper_edges_m;
  if (!resolved->abbrev.empty()) {
    // The avg-degree / avg-distance reference columns live on the
    // stand-in spec.
    const DatasetSpec& standin = DatasetByAbbrev(resolved->abbrev);
    d.spec.paper_avg_deg = standin.paper_avg_deg;
    d.spec.paper_avg_dist = standin.paper_avg_dist;
  }
  d.graph = std::move(resolved->graph);
  d.pairs = SampleQueryPairs(d.graph, EnvPairs(), /*seed=*/20210402);
  return d;
}

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> columns,
                           std::vector<int> widths)
    : columns_(std::move(columns)), widths_(std::move(widths)) {
  std::printf("\n== %s ==\n", title.c_str());
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%-*s ", widths_[i], columns_[i].c_str());
  }
  std::printf("\n");
  // Self-describing CSV: one header row per table for downstream tooling.
  std::printf("csvh");
  for (const auto& c : columns_) std::printf(",%s", c.c_str());
  std::printf("\n");
  int total = 0;
  for (int w : widths_) total += w + 1;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::printf("%-*s ", widths_[i], cells[i].c_str());
  }
  std::printf("\n");
  std::printf("csv");
  for (const auto& c : cells) std::printf(",%s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

void TablePrinter::Footer() const { std::printf("\n"); }

std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2fKB",
                  static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatMs(double ms) {
  return FormatDouble(ms, ms < 1.0 ? 4 : (ms < 100.0 ? 2 : 1));
}

std::string FormatSeconds(double seconds) {
  return FormatDouble(seconds, seconds < 1.0 ? 3 : 2);
}

}  // namespace qbs::bench
